open Rlist_model
open Rlist_ot

let name = "ttf-adopted"

type message = {
  op : Op.t;
  ctx : Context.t;
  vc : int array;
  lamport : int;
  origin : int;
}

type peer = {
  id : int;
  npeers : int;
  lattice : Lattice.t;
  model : Ttf_model.t;
  mutable integrated : Op_id.Set.t;
  mutable next_seq : int;
  mutable clock : int;
  vc : int array;  (* integrated operations per origin *)
  mutable pend : message list;  (* not yet causally ready *)
}

let create_peer ~fastpath:_ ~npeers ~id ~initial =
  if id < 1 then invalid_arg "ttf-adopted: peer identifiers start at 1";
  {
    id;
    npeers;
    lattice = Lattice.create ~transform:Ttf_transform.xform ();
    model = Ttf_model.create ~initial;
    integrated = Op_id.Set.empty;
    next_seq = 1;
    clock = 0;
    vc = Array.make (npeers + 1) 0;
    pend = [];
  }

let causally_ready t (m : message) =
  m.vc.(m.origin) = t.vc.(m.origin) + 1
  && begin
       let ok = ref true in
       for q = 1 to t.npeers do
         if q <> m.origin && m.vc.(q) > t.vc.(q) then ok := false
       done;
       !ok
     end

let rec drain t =
  match List.find_opt (causally_ready t) t.pend with
  | None -> ()
  | Some m ->
    t.pend <- List.filter (fun m' -> m' != m) t.pend;
    t.clock <- max t.clock m.lamport + 1;
    Lattice.register t.lattice m.op ~ctx:m.ctx;
    let form = Lattice.form_at t.lattice m.op.Op.id t.integrated in
    Ttf_transform.apply form t.model;
    t.integrated <- Op_id.Set.add m.op.Op.id t.integrated;
    t.vc.(m.origin) <- t.vc.(m.origin) + 1;
    drain t

(* Resolve the intent against the view, then restate positions in the
   model: insertions at the model slot of the view position, deletions
   at the model slot of the targeted element. *)
let generate t intent =
  let view = Ttf_model.view t.model in
  let { Rlist_sim.Intent_resolver.outcome; op } =
    Rlist_sim.Intent_resolver.resolve ~client:t.id ~seq:t.next_seq ~doc:view
      intent
  in
  match op with
  | None -> outcome, None
  | Some view_op ->
    t.next_seq <- t.next_seq + 1;
    let model_op =
      match view_op.Op.action with
      | Op.Ins (elt, view_pos) ->
        Op.make_ins ~id:view_op.Op.id elt
          (Ttf_model.model_position_of_view t.model view_pos)
      | Op.Del (elt, view_pos) ->
        Op.make_del ~id:view_op.Op.id elt
          (Ttf_model.model_position_of_view t.model view_pos)
      | Op.Nop -> assert false
    in
    t.clock <- t.clock + 1;
    let lamport = t.clock in
    let ctx = t.integrated in
    Lattice.register t.lattice model_op ~ctx;
    Ttf_transform.apply model_op t.model;
    t.integrated <- Op_id.Set.add model_op.Op.id t.integrated;
    t.vc.(t.id) <- t.vc.(t.id) + 1;
    let vc = Array.copy t.vc in
    outcome, Some { op = model_op; ctx; vc; lamport; origin = t.id }

let receive t ~from message =
  ignore from;
  t.pend <- message :: t.pend;
  drain t;
  None

let message_op_id (m : message) = Some m.op.Op.id

let document t = Ttf_model.view t.model

let visible t = t.integrated

let ot_count t = Lattice.ot_count t.lattice

let metadata_size t =
  Lattice.size t.lattice
  + Ttf_model.model_length t.model
  + List.length t.pend

let buffered t = List.length t.pend

let tombstones t = Ttf_model.tombstones t.model

(* Batch delivery: integration is per operation here, so a batch is
   the in-order fold, reactions collected in order. *)
let receive_batch t ~from batch =
  List.concat_map (fun msg -> Option.to_list (receive t ~from msg)) batch
