open Rlist_model

type t = {
  initial : Document.t;
  events : Event.t list;
}

let make ~initial ~events = { initial; events }

let events t = t.events

let updates t = List.filter Event.is_update t.events

let reads t = List.filter Event.is_read t.events

let elems t =
  let inserted =
    List.filter_map
      (fun e ->
        match e.Event.op with
        | Event.Do_ins (elt, _) -> Some elt
        | Event.Do_del _ | Event.Do_read -> None)
      t.events
  in
  Document.elements t.initial @ inserted

let update_index t =
  List.fold_left
    (fun acc e ->
      match e.Event.op_id with
      | None -> acc
      | Some id -> Op_id.Map.add id e acc)
    Op_id.Map.empty t.events

let inserted_element t id =
  if Op_id.is_initial id then
    Seq.find
      (fun elt -> Op_id.equal elt.Element.id id)
      (Document.to_seq t.initial)
  else
    List.find_map
      (fun e ->
        match e.Event.op, e.Event.op_id with
        | Event.Do_ins (elt, _), Some id' when Op_id.equal id id' -> Some elt
        | _ -> None)
      t.events

let validate t =
  let exception Bad of string in
  let fail fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt in
  try
    let ids = Hashtbl.create 64 in
    List.iteri
      (fun i e ->
        if e.Event.eid <> i then
          fail "event %d carries eid %d" i e.Event.eid;
        match e.Event.op_id with
        | None -> ()
        | Some id ->
          if Hashtbl.mem ids id then
            fail "duplicate update identifier %a" Op_id.pp id;
          Hashtbl.add ids id ();
          if not (Op_id.Set.mem id e.Event.visible) then
            fail "update %a is not visible to itself" Op_id.pp id)
      t.events;
    let initial_ids =
      Document.fold
        (fun acc elt -> Op_id.Set.add elt.Element.id acc)
        Op_id.Set.empty t.initial
    in
    List.iter
      (fun e ->
        Op_id.Set.iter
          (fun id ->
            if not (Hashtbl.mem ids id || Op_id.Set.mem id initial_ids) then
              fail "event #%d sees unknown update %a" e.Event.eid Op_id.pp id)
          e.Event.visible)
      t.events;
    (* Thread of execution: per-replica visibility grows monotonically,
       so same-replica precedence implies visibility (Definition 2.9,
       condition 1). *)
    let last : (Replica_id.t, Op_id.Set.t) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun e ->
        (match Hashtbl.find_opt last e.Event.replica with
        | Some prev when not (Op_id.Set.subset prev e.Event.visible) ->
          fail "visibility shrank at %a before event #%d" Replica_id.pp
            e.Event.replica e.Event.eid
        | Some _ | None -> ());
        Hashtbl.replace last e.Event.replica e.Event.visible)
      t.events;
    Ok ()
  with Bad msg -> Error msg

let pp ppf t =
  Format.fprintf ppf "@[<v>initial: %a@,%a@]" Document.pp t.initial
    (Format.pp_print_list Event.pp)
    t.events
