open Rlist_model

let spec = "list specification, condition 1"

(* Classify every update identifier of the trace as the insertion or
   deletion of an element; initial elements count as pre-visible
   insertions. *)
let classify trace =
  let inserts = ref Op_id.Map.empty in
  let deletes = ref Op_id.Map.empty in
  Document.iter
    (fun elt -> inserts := Op_id.Map.add elt.Element.id elt !inserts)
    trace.Trace.initial;
  List.iter
    (fun e ->
      match e.Event.op, e.Event.op_id with
      | Event.Do_ins (elt, _), Some id ->
        inserts := Op_id.Map.add id elt !inserts
      | Event.Do_del (elt, _), Some id ->
        deletes := Op_id.Map.add id elt !deletes
      | _ -> ())
    trace.Trace.events;
  !inserts, !deletes

(* The set of elements an event must return: visible insertions minus
   visible deletions, plus the initial elements not visibly deleted. *)
let expected_elements ~inserts ~deletes e =
  let visible_or_initial id =
    Op_id.is_initial id || Op_id.Set.mem id e.Event.visible
  in
  let alive = ref [] in
  Op_id.Map.iter
    (fun id elt ->
      let inserted = visible_or_initial id in
      let deleted =
        Op_id.Map.exists
          (fun del_id del_elt ->
            Element.equal del_elt elt && Op_id.Set.mem del_id e.Event.visible)
          deletes
      in
      if inserted && not deleted then alive := elt :: !alive)
    inserts;
  !alive

let check_content trace =
  let inserts, deletes = classify trace in
  let rec go = function
    | [] -> Check.Satisfied
    | e :: rest ->
      let expected = expected_elements ~inserts ~deletes e in
      let got = Document.elements e.Event.result in
      let sort = List.sort Element.compare in
      let expected = sort expected and got = sort got in
      if List.length expected = List.length got
         && List.for_all2 Element.equal expected got
      then go rest
      else
        Check.violated ~spec ~culprits:[ e ]
          (Format.asprintf
             "event #%d returned {%a} but its visible live elements are {%a} \
              (condition 1a)"
             e.Event.eid
             (Format.pp_print_list ~pp_sep:Format.pp_print_space Element.pp)
             got
             (Format.pp_print_list ~pp_sep:Format.pp_print_space Element.pp)
             expected)
  in
  go trace.Trace.events

let check_insert_position trace =
  let rec go = function
    | [] -> Check.Satisfied
    | e :: rest -> (
      match e.Event.op with
      | Event.Do_del _ | Event.Do_read -> go rest
      | Event.Do_ins (a, k) ->
        let n = Document.length e.Event.result in
        let idx = min k (n - 1) in
        if n > 0 && Element.equal (Document.nth e.Event.result idx) a then
          go rest
        else
          Check.violated ~spec ~culprits:[ e ]
            (Format.asprintf
               "insertion of %a at %d did not land at index min(%d, %d) \
                (condition 1c)"
               Element.pp a k k (n - 1)))
  in
  go trace.Trace.events

let check_no_duplicates trace =
  let rec go = function
    | [] -> Check.Satisfied
    | e :: rest ->
      if Document.has_duplicates e.Event.result then
        Check.violated ~spec ~culprits:[ e ]
          (Format.asprintf "event #%d returned a list with duplicate elements"
             e.Event.eid)
      else go rest
  in
  go trace.Trace.events
