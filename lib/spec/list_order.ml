open Rlist_model

type t = {
  (* Adjacency by element identity; elements are recoverable through
     [repr]. *)
  succ : Op_id.Set.t Op_id.Map.t;
  repr : Element.t Op_id.Map.t;
}

let empty = { succ = Op_id.Map.empty; repr = Op_id.Map.empty }

let add_node t e =
  let id = e.Element.id in
  {
    succ =
      (if Op_id.Map.mem id t.succ then t.succ
       else Op_id.Map.add id Op_id.Set.empty t.succ);
    repr = Op_id.Map.add id e t.repr;
  }

let add_edge t a b =
  let t = add_node (add_node t a) b in
  let ida = a.Element.id and idb = b.Element.id in
  let old = Op_id.Map.find ida t.succ in
  { t with succ = Op_id.Map.add ida (Op_id.Set.add idb old) t.succ }

let of_documents docs =
  List.fold_left
    (fun t doc ->
      let t = Document.fold add_node t doc in
      List.fold_left
        (fun t (a, b) -> add_edge t a b)
        t (Document.order_pairs doc))
    empty docs

let num_nodes t = Op_id.Map.cardinal t.succ

let num_edges t =
  Op_id.Map.fold (fun _ s acc -> acc + Op_id.Set.cardinal s) t.succ 0

let mem_edge t a b =
  match Op_id.Map.find_opt a.Element.id t.succ with
  | None -> false
  | Some s -> Op_id.Set.mem b.Element.id s

(* Colored depth-first search: White = unvisited, Gray = on the current
   path, Black = done.  A Gray successor closes a cycle. *)
type color =
  | White
  | Gray
  | Black

let find_cycle t =
  let color = Op_id.Table.create 64 in
  let get id = Option.value (Op_id.Table.find_opt color id) ~default:White in
  let exception Cycle of Op_id.t list in
  let rec visit path id =
    match get id with
    | Black -> ()
    | Gray ->
      (* [path] holds the Gray chain, most recent first; the cycle is
         the segment of [path] up to (and including) [id]. *)
      let rec take acc = function
        | [] -> acc
        | x :: _ when Op_id.equal x id -> x :: acc
        | x :: rest -> take (x :: acc) rest
      in
      raise (Cycle (take [] path))
    | White ->
      Op_id.Table.replace color id Gray;
      let succs =
        Option.value (Op_id.Map.find_opt id t.succ) ~default:Op_id.Set.empty
      in
      Op_id.Set.iter (fun s -> visit (id :: path) s) succs;
      Op_id.Table.replace color id Black
  in
  try
    Op_id.Map.iter (fun id _ -> visit [] id) t.succ;
    None
  with Cycle ids ->
    Some (List.map (fun id -> Op_id.Map.find id t.repr) ids)

let linear_extension t =
  match find_cycle t with
  | Some _ -> None
  | None ->
    (* Depth-first post-order yields a reverse topological sort. *)
    let visited = Op_id.Table.create 64 in
    let out = ref [] in
    let rec visit id =
      if not (Op_id.Table.mem visited id) then begin
        Op_id.Table.replace visited id ();
        let succs =
          Option.value (Op_id.Map.find_opt id t.succ) ~default:Op_id.Set.empty
        in
        Op_id.Set.iter visit succs;
        out := Op_id.Map.find id t.repr :: !out
      end
    in
    Op_id.Map.iter (fun id _ -> visit id) t.succ;
    Some !out

let incompatibility_witness d1 d2 =
  (* Both restrictions to the common elements must agree position by
     position (cf. Document.compatible); the first disagreement gives
     the witnessing pair. *)
  let common1 =
    List.filter (fun e -> Document.mem d2 e) (Document.elements d1)
  in
  let common2 =
    List.filter (fun e -> Document.mem d1 e) (Document.elements d2)
  in
  let rec first_diff l1 l2 =
    match l1, l2 with
    | [], [] -> None
    | a :: r1, b :: r2 ->
      if Element.equal a b then first_diff r1 r2 else Some (a, b)
    | _ -> assert false (* same element sets, same lengths *)
  in
  first_diff common1 common2

let first_incompatible docs =
  let rec pairs = function
    | [] -> None
    | d :: rest -> (
      match
        List.find_map
          (fun d' ->
            match incompatibility_witness d d' with
            | Some (a, b) -> Some (d, d', a, b)
            | None -> None)
          rest
      with
      | Some _ as found -> found
      | None -> pairs rest)
  in
  pairs docs
