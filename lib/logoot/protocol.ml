open Rlist_model

let name = "logoot"

let server_is_replica = true

type logoot_op =
  | Lins of {
      elt : Element.t;
      at : Position.t;
    }
  | Ldel of {
      id : Op_id.t;
      target : Op_id.t;
    }

let op_id = function
  | Lins { elt; _ } -> elt.Element.id
  | Ldel { id; _ } -> id

type c2s = { lop : logoot_op }

type s2c =
  | Forward of logoot_op
  | Ack

type client = {
  id : int;
  list : Logoot_list.t;
  mutable next_seq : int;
  mutable visible : Op_id.Set.t;
}

type server = {
  nclients : int;
  slist : Logoot_list.t;
  mutable svisible : Op_id.Set.t;
}

let create_client ~fastpath:_ ~nclients ~id ~initial =
  ignore nclients;
  {
    id;
    (* The RNG only drives digit choices inside freshly allocated
       positions — determinism across replicas is irrelevant because
       allocations happen at one site and travel by message. *)
    list = Logoot_list.create ~rng:(Random.State.make [| 0x109007; id |])
             ~site:id ~initial;
    next_seq = 1;
    visible = Op_id.Set.empty;
  }

let create_server ~fastpath:_ ~nclients ~initial =
  {
    nclients;
    slist =
      Logoot_list.create ~rng:(Random.State.make [| 0x109007; 0 |]) ~site:0
        ~initial;
    svisible = Op_id.Set.empty;
  }

let integrate list = function
  | Lins { elt; at } -> Logoot_list.insert list ~elt ~at
  | Ldel { target; _ } -> Logoot_list.delete list ~target

let client_generate t intent =
  let doc = Logoot_list.document t.list in
  let { Rlist_sim.Intent_resolver.outcome; op } =
    Rlist_sim.Intent_resolver.resolve ~client:t.id ~seq:t.next_seq ~doc intent
  in
  match op, outcome.Rlist_sim.Protocol_intf.op with
  | None, _ -> outcome, None
  | Some _, Rlist_spec.Event.Do_ins (elt, pos) ->
    t.next_seq <- t.next_seq + 1;
    let at = Logoot_list.allocate t.list ~pos in
    let lop = Lins { elt; at } in
    integrate t.list lop;
    t.visible <- Op_id.Set.add elt.Element.id t.visible;
    outcome, Some { lop }
  | Some op, Rlist_spec.Event.Do_del (elt, _pos) ->
    t.next_seq <- t.next_seq + 1;
    let lop = Ldel { id = op.Rlist_ot.Op.id; target = elt.Element.id } in
    integrate t.list lop;
    t.visible <- Op_id.Set.add op.Rlist_ot.Op.id t.visible;
    outcome, Some { lop }
  | Some _, Rlist_spec.Event.Do_read -> assert false

let server_receive t ~from ({ lop } : c2s) =
  integrate t.slist lop;
  t.svisible <- Op_id.Set.add (op_id lop) t.svisible;
  List.init t.nclients (fun i ->
      let dest = i + 1 in
      if dest = from then dest, Ack else dest, Forward lop)

let client_receive t = function
  | Ack -> ()
  | Forward lop ->
    integrate t.list lop;
    t.visible <- Op_id.Set.add (op_id lop) t.visible

let c2s_op_id { lop } = Some (op_id lop)

let s2c_op_id = function
  | Forward lop -> Some (op_id lop)
  | Ack -> None

let client_document t = Logoot_list.document t.list

let server_document t = Logoot_list.document t.slist

let client_visible t = t.visible

let server_visible t = t.svisible

let client_ot_count _ = 0

let server_ot_count _ = 0

let client_metadata_size t = Logoot_list.size t.list

let server_metadata_size t = Logoot_list.size t.slist

(* Batch delivery: these protocols have no per-run shortcut (CRDT
   integration and 2D-space transformation are inherently per
   operation), so a batch is just the in-order fold. *)
let server_receive_batch t ~from batch =
  List.concat_map (fun msg -> server_receive t ~from msg) batch

let client_receive_batch t batch = List.iter (client_receive t) batch

(* No ack-driven pruning machinery; GC-enabled runs degrade to
   shim-level pruning only. *)
let gc_support = None
