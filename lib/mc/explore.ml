(* See explore.mli for the algorithm and its soundness argument. *)

module type SYSTEM = sig
  type t

  type action

  val fresh : unit -> t

  val apply : t -> action -> unit

  val enabled : t -> action list

  val equal_action : action -> action -> bool

  val independent : action -> action -> bool

  val footprint : action -> (int * char) list

  val nslots : int

  val finalize : t -> action list

  val checks : t -> action list -> (string * Rlist_spec.Check.result) list
end

type stats = {
  mutable states : int;
  mutable terminals : int;
  mutable pruned_state : int;
  mutable pruned_sleep : int;
  mutable truncated : bool;
}

type 'action violation = {
  v_spec : string;
  v_result : Rlist_spec.Check.result;
  v_schedule : 'action list;
}

module Make (S : SYSTEM) = struct
  type report = {
    stats : stats;
    violations : S.action violation list;
  }

  let mem_action a = List.exists (fun b -> S.equal_action a b)

  let subset s1 s2 = List.for_all (fun a -> mem_action a s2) s1

  (* Replay a path (root-first) on a fresh system. *)
  let replay path =
    let t = S.fresh () in
    List.iter (S.apply t) path;
    t

  let run ?(por = true) ?(max_states = 500_000) () =
    let stats =
      {
        states = 0;
        terminals = 0;
        pruned_state = 0;
        pruned_sleep = 0;
        truncated = false;
      }
    in
    (* First violation per spec name, in discovery order. *)
    let violations : (string, S.action violation) Hashtbl.t =
      Hashtbl.create 8
    in
    let order = ref [] in
    (* State cache: canonical key -> sleep sets it was explored with.
       A revisit is pruned only when some recorded sleep set is a
       subset of the current one (everything we would explore now was
       explored then). *)
    let visited : (string, S.action list list) Hashtbl.t =
      Hashtbl.create 1024
    in
    (* The canonical key: one buffer of history tokens per replica
       slot, extended on the way down and truncated on the way up. *)
    let slots = Array.init S.nslots (fun _ -> Buffer.create 16) in
    let key () =
      let b = Buffer.create (16 * S.nslots) in
      Array.iter
        (fun slot ->
          Buffer.add_buffer b slot;
          Buffer.add_char b '|')
        slots;
      Buffer.contents b
    in
    let record_terminal t path_rev =
      stats.terminals <- stats.terminals + 1;
      let reads = S.finalize t in
      let schedule = List.rev_append path_rev reads in
      List.iter
        (fun (spec, result) ->
          match result with
          | Rlist_spec.Check.Satisfied -> ()
          | Rlist_spec.Check.Violated _ ->
            if not (Hashtbl.mem violations spec) then begin
              Hashtbl.add violations spec
                { v_spec = spec; v_result = result; v_schedule = schedule };
              order := spec :: !order
            end)
        (S.checks t schedule)
    in
    let rec explore path_rev sleep =
      if stats.states >= max_states then stats.truncated <- true
      else begin
        stats.states <- stats.states + 1;
        let k = if por then key () else "" in
        let skip =
          por
          &&
          match Hashtbl.find_opt visited k with
          | Some sleeps when List.exists (fun s -> subset s sleep) sleeps ->
            true
          | Some sleeps ->
            Hashtbl.replace visited k (sleep :: sleeps);
            false
          | None ->
            Hashtbl.add visited k [ sleep ];
            false
        in
        if skip then stats.pruned_state <- stats.pruned_state + 1
        else begin
          let t = replay (List.rev path_rev) in
          match S.enabled t with
          | [] -> record_terminal t path_rev
          | enabled ->
            let sleep = ref sleep in
            List.iter
              (fun a ->
                if por && mem_action a !sleep then
                  stats.pruned_sleep <- stats.pruned_sleep + 1
                else begin
                  let child_sleep =
                    if por then
                      List.filter (fun s -> S.independent s a) !sleep
                    else []
                  in
                  let fp = S.footprint a in
                  let saved =
                    List.map
                      (fun (slot, _) -> (slot, Buffer.length slots.(slot)))
                      fp
                  in
                  List.iter
                    (fun (slot, token) -> Buffer.add_char slots.(slot) token)
                    fp;
                  explore (a :: path_rev) child_sleep;
                  List.iter
                    (fun (slot, len) -> Buffer.truncate slots.(slot) len)
                    saved;
                  if por then sleep := a :: !sleep
                end)
              enabled
        end
      end
    in
    explore [] [];
    {
      stats;
      violations =
        List.rev_map (fun spec -> Hashtbl.find violations spec) !order;
    }
end
