(** The bounded model checker (the mechanized theorem gate).

    For a protocol and a bounded {!Workload}, [check] drives the
    protocol's simulation engine through {e every} admissible
    interleaving of generations and deliveries (optionally reduced by
    sleep sets and state caching, see {!Explore}), evaluates the
    paper's specifications on each terminal execution, and minimizes
    the first witness of each violated specification with the
    {!Witness} shrinker.

    The theorems this gate mechanizes on bounded schedule spaces:
    convergence (Thm 6.7) and the weak list specification (Thm 8.2)
    must hold on every interleaving; the strong list specification
    must be violated on some interleaving of the {!Workload.thm81}
    scenario (Thm 8.1); and CSS and CSCW must produce identical
    behaviours on every schedule (Thm 7.1, the [equiv] check). *)

open Rlist_model

type spec =
  | Convergence
  | Weak
  | Strong

val spec_name : spec -> string

val spec_of_name : string -> spec option

val all_specs : spec list

type 'action outcome = {
  workload : Workload.t;
  stats : Explore.stats;
  violations : 'action Explore.violation list;
      (** First witness per violated spec, shrunk when [shrink]. *)
}

(** Client/server checker over {!Rlist_sim.Engine}. *)
module Cs (_ : Rlist_sim.Protocol_intf.PROTOCOL) : sig
  (** [check ~specs ~workload ()] explores the workload's schedule
      space.  [equiv = (name, replay)] additionally compares the
      engine's behaviour (Definition 2.5) on each terminal schedule
      against [replay]'s — use {!behavior_of} of another protocol for
      the Thm 7.1 gate.  [por] defaults to [true]; [shrink] to [true];
      [max_states] bounds visited configurations.

      [batching] (default [false]) runs the engine with per-channel
      operation batching ({!Rlist_sim.Engine.Make.create}), gating the
      batched delivery path.  The reduction adapts: a delivery flushes
      the target channel's outbox, so it stops commuting with the
      sends feeding that outbox — the independence relation shrinks
      accordingly and delivery footprints extend every outbox they
      touch, keeping both sleep sets and the state cache sound.

      [gc], when given, runs each explored execution with the
      continuous compaction discipline ({!Rlist_sim.Engine.Make.create}'s
      [gc]): cycles interleave with the enumerated deliveries at the
      trigger points the policy dictates.  Cycles are out of band, so
      they change no enabled-action set and no observable behaviour —
      which is exactly the property the compaction-race workload
      checks.  Because a cycle fires as a function of the {e path}
      (ops applied so far), not of the reduced state, gate runs that
      care about GC placement should pass [~por:false] and use the
      POR run as a cross-check. *)
  val check :
    ?equiv:
      (string
      * (nclients:int ->
         initial:Document.t ->
         Rlist_sim.Schedule.t ->
         (Replica_id.t * Document.t) list)) ->
    ?gc:Rlist_gc.policy ->
    ?por:bool ->
    ?max_states:int ->
    ?shrink:bool ->
    ?batching:bool ->
    specs:spec list ->
    workload:Workload.t ->
    unit ->
    Rlist_sim.Schedule.event outcome

  val pp_violation :
    Format.formatter -> Rlist_sim.Schedule.event Explore.violation -> unit
end

(** [behavior_of (module P)] replays a schedule under [P] and returns
    the recorded behaviour, for the [equiv] argument of {!Cs.check}.
    [batching] must match the checked engine's batching mode for the
    behaviours to be comparable event-by-event. *)
val behavior_of :
  ?batching:bool ->
  (module Rlist_sim.Protocol_intf.PROTOCOL) ->
  nclients:int ->
  initial:Document.t ->
  Rlist_sim.Schedule.t ->
  (Replica_id.t * Document.t) list

(** Peer-to-peer checker over {!Rlist_sim.P2p_engine}. *)
module P2p (_ : Rlist_sim.P2p_protocol_intf.P2P_PROTOCOL) : sig
  (** As {!Cs.check}; [batching] likewise shrinks the reduction's
      independence relation instead of disabling it, and [gc] runs
      the shim-level pruning cycles of {!Rlist_sim.P2p_engine}. *)
  val check :
    ?gc:Rlist_gc.policy ->
    ?por:bool ->
    ?max_states:int ->
    ?shrink:bool ->
    ?batching:bool ->
    specs:spec list ->
    workload:Workload.t ->
    unit ->
    Rlist_sim.P2p_engine.event outcome

  val pp_violation :
    Format.formatter -> Rlist_sim.P2p_engine.event Explore.violation -> unit
end
