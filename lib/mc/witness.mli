(** Delta-debugging shrinker for counterexample schedules.

    A violating schedule found by the explorer carries every delivery
    of every client's full script.  [shrink] minimizes it to a
    1-minimal witness: no single event can be removed without losing
    the violation.  Candidates that are not replayable (a delivery
    from an emptied channel, an orphaned acknowledgement) are simply
    rejected by the oracle, so minimization needs no schedule-repair
    logic. *)

(** [shrink ~still_fails schedule] returns a schedule that still
    satisfies [still_fails] and from which no single event can be
    dropped.  Uses ddmin-style chunk removal followed by a one-by-one
    sweep; [still_fails] must hold for [schedule] itself. *)
val shrink : still_fails:('a list -> bool) -> 'a list -> 'a list

(** Render a minimized witness in the paper's figure notation: the
    numbered event list, each generation labelled [o1, o2, ...] in
    schedule order, followed by the violated specification's
    verdict. *)
val pp :
  pp_action:(Format.formatter -> 'a -> unit) ->
  is_generate:('a -> bool) ->
  Format.formatter ->
  'a Explore.violation ->
  unit
