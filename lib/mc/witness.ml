let rec drop_chunks events ~size ~still_fails =
  let n = List.length events in
  if size < 1 || size > n then events
  else begin
    (* Try removing each aligned chunk of [size] events. *)
    let arr = Array.of_list events in
    let attempt start =
      let candidate = ref [] in
      Array.iteri
        (fun i e -> if i < start || i >= start + size then
            candidate := e :: !candidate)
        arr;
      let candidate = List.rev !candidate in
      if still_fails candidate then Some candidate else None
    in
    let rec scan start =
      if start >= n then None
      else
        match attempt start with
        | Some candidate -> Some candidate
        | None -> scan (start + size)
    in
    match scan 0 with
    | Some smaller -> drop_chunks smaller ~size ~still_fails
    | None -> drop_chunks events ~size:(size / 2) ~still_fails
  end

let shrink ~still_fails events =
  let n = List.length events in
  if n = 0 then events
  else begin
    let shrunk = drop_chunks events ~size:(n / 2) ~still_fails in
    (* One-by-one sweep until a fixpoint: 1-minimality. *)
    let rec sweep events =
      let arr = Array.of_list events in
      let n = Array.length arr in
      let rec try_at i =
        if i >= n then None
        else begin
          let candidate =
            List.filteri (fun j _ -> j <> i) (Array.to_list arr)
          in
          if still_fails candidate then Some candidate else try_at (i + 1)
        end
      in
      match try_at 0 with
      | Some smaller -> sweep smaller
      | None -> events
    in
    sweep shrunk
  end

let pp ~pp_action ~is_generate ppf (v : 'a Explore.violation) =
  let nops = ref 0 in
  Format.fprintf ppf "@[<v>minimal counterexample (%d events):"
    (List.length v.Explore.v_schedule);
  List.iteri
    (fun i a ->
      let label =
        if is_generate a then begin
          incr nops;
          Printf.sprintf "  -- o%d" !nops
        end
        else ""
      in
      Format.fprintf ppf "@,  %2d. %a%s" (i + 1) pp_action a label)
    v.Explore.v_schedule;
  Format.fprintf ppf "@,%a@]" Rlist_spec.Check.pp v.Explore.v_result
