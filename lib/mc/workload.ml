open Rlist_model

type t = {
  wname : string;
  nclients : int;
  initial : Document.t;
  scripts : Intent.t list array;
}

let make ~wname ~nclients ~initial scripts =
  if List.length scripts <> nclients then
    invalid_arg "Workload.make: one script per client";
  { wname; nclients; initial; scripts = Array.of_list ([] :: scripts) }

let thm81 =
  make ~wname:"thm81" ~nclients:3 ~initial:(Document.of_string "x")
    [
      [ Intent.Delete 0 ];  (* o2: Del(x, 0) *)
      [ Intent.Insert ('a', 0) ];  (* o3: Ins(a, 0) — list "ax" *)
      [ Intent.Insert ('b', 1) ];  (* o4: Ins(b, 1) — list "xb" *)
    ]

(* A deterministic mix with maximal conflict potential: every client
   hits the front region of a short document, and every third op is a
   deletion.  Element values are distinct letters so witnesses read
   like the paper's figures. *)
let combinatorial ~nclients ~ops =
  if nclients < 2 then invalid_arg "Workload.combinatorial: need >= 2 clients";
  if ops < 1 then invalid_arg "Workload.combinatorial: need >= 1 op";
  let value i j = Char.chr (Char.code 'a' + (((i - 1) * ops) + j) mod 26) in
  let script i =
    List.init ops (fun j ->
        match (i + j) mod 3 with
        | 0 -> Intent.Delete 0
        | 1 -> Intent.Insert (value i j, 0)
        | _ -> Intent.Insert (value i j, j + 1))
  in
  make
    ~wname:(Printf.sprintf "combinatorial-%dx%d" nclients ops)
    ~nclients
    ~initial:(Document.of_string "x")
    (List.init nclients (fun i -> script (i + 1)))

(* One client streams two dependent updates while two others inject
   single conflicting ops.  Under an aggressive GC policy
   (every-ops=1) a compaction cycle can fire between the generation
   and the delivery of the streak's second update, so the rebase onto
   the acked-stable state races a delivery whose context straddles
   the stable frontier — the scenario the out-of-band discipline
   (heartbeats only on empty channels) must keep legal. *)
let compaction_race =
  make ~wname:"compaction-race" ~nclients:3
    ~initial:(Document.of_string "x")
    [
      [ Intent.Insert ('a', 0); Intent.Delete 1 ];
      [ Intent.Insert ('b', 1) ];
      [ Intent.Delete 0 ];
    ]

let catalog ?(include_thm81 = true) ~nclients ~ops () =
  let base = [ combinatorial ~nclients ~ops ] in
  if include_thm81 then base @ [ thm81 ] else base

let clamp ~doc_length = function
  | Intent.Read -> Intent.Read
  | Intent.Insert (c, p) -> Intent.Insert (c, min p doc_length)
  | Intent.Delete p ->
    if doc_length = 0 then Intent.Read else Intent.Delete (min p (doc_length - 1))

let total_updates t =
  Array.fold_left
    (fun acc script ->
      acc
      + List.length
          (List.filter
             (function
               | Intent.Read -> false
               | Intent.Insert _ | Intent.Delete _ -> true)
             script))
    0 t.scripts

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %d clients, initial %a" t.wname t.nclients
    Document.pp t.initial;
  for i = 1 to t.nclients do
    Format.fprintf ppf "@,  c%d: %a" i
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         Intent.pp)
      t.scripts.(i)
  done;
  Format.fprintf ppf "@]"
