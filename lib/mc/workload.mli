(** Bounded workloads for the model checker.

    A workload fixes {e what} each client does — a finite script of
    intents per client, executed in order — while the checker
    enumerates {e when}: every admissible interleaving of generations
    and deliveries.  Scripts are written against anticipated document
    states; {!clamp} resolves each intent against the client's actual
    document at generation time (positions are clamped, deletions on
    an empty document degrade to reads), so every script stays valid
    under every interleaving. *)

open Rlist_model

type t = {
  wname : string;
  nclients : int;
  initial : Document.t;
  scripts : Intent.t list array;
      (** Per-client scripts, 1-based; slot 0 is empty. *)
}

(** The paper's Theorem 8.1 scenario (Figure 7 with the initial
    insertion folded into the initial document): three clients
    concurrently delete [x], insert before it, and insert after it.
    Some serialization makes the list order cyclic, so CSS violates
    the strong list specification on one of its interleavings. *)
val thm81 : t

(** [combinatorial ~nclients ~ops] is a deterministic conflict-heavy
    workload: [nclients] clients, [ops] update intents each, mixing
    front insertions, offset insertions and front deletions over a
    one-element initial document. *)
val combinatorial : nclients:int -> ops:int -> t

(** The compaction-vs-delivery race: three clients, one of which
    streams two dependent updates while the others inject single
    conflicting operations.  Checked with a GC policy of
    [every-ops=1], some interleavings run a compaction cycle between
    the streak's generation and its delivery, so the rebase onto the
    acked-stable state races an in-flight operation whose context
    straddles the stable frontier.  The gate asserts the discipline
    keeps every such interleaving legal and spec-clean. *)
val compaction_race : t

(** The workload family checked at bounds [(nclients, ops)]: the
    combinatorial workload at exactly those bounds, plus — for
    client/server protocols — the fixed {!thm81} scenario.  The
    theorem gate asserts a {e negative} result (Thm 8.1: CSS violates
    the strong list specification), and its witness needs three
    pairwise-concurrent operation contexts, which no 2-client
    schedule can produce; including the canonical scenario keeps the
    gate sound at every bound. *)
val catalog : ?include_thm81:bool -> nclients:int -> ops:int -> unit -> t list

(** Resolve a scripted intent against the current document length. *)
val clamp : doc_length:int -> Intent.t -> Intent.t

val total_updates : t -> int

val pp : Format.formatter -> t -> unit
