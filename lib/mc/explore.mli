(** The bounded model checker's search core: depth-first enumeration
    of every admissible action interleaving of a {!SYSTEM}, with two
    optional partial-order reductions.

    {b Sleep sets} (Godefroid): after a subtree rooted at action [a]
    has been fully explored, sibling subtrees need not re-execute [a]
    until a {e dependent} action wakes it, because every interleaving
    that merely commutes [a] with independent actions lies in the
    explored subtree's Mazurkiewicz trace class.

    {b State caching}: the key of a configuration is the tuple of
    per-replica local histories (which script steps and which channel
    consumptions each replica has performed, in order).  Replicas of a
    deterministic protocol interact only through FIFO channels, so
    equal keys imply equal global configurations {e and} equal
    multisets of recorded do events; since every specification checked
    here is insensitive to the interleaving order of its events, a
    revisited key with a no-smaller sleep set can be pruned.  A revisit
    with an incomparable sleep set is re-explored (the classic
    sleep-set/state-matching soundness condition).

    Both reductions preserve the set of terminal-execution verdicts;
    [test/test_mc.ml] cross-checks this against naive enumeration. *)

module type SYSTEM = sig
  type t

  type action

  val fresh : unit -> t

  val apply : t -> action -> unit

  (** Enabled actions of a configuration, in a deterministic order.
      An empty list means the configuration is terminal. *)
  val enabled : t -> action list

  val equal_action : action -> action -> bool

  (** A sound independence relation: [independent a b] may be [true]
      only if, from any configuration where both are enabled,
      executing them in either order yields the same configuration,
      the same recorded events, and the same enabled sets. *)
  val independent : action -> action -> bool

  (** [(slot, token)] pairs identifying which replicas' local
      histories an action extends, and how — the state-cache key
      material.  Two interleavings with equal per-slot projections
      must reach the same configuration, so an action must list every
      slot whose component it touches (e.g. a batched server delivery
      extends every client's outbox, not just the server's history).
      Slots must be distinct within one footprint. *)
  val footprint : action -> (int * char) list

  (** Number of local-history slots ([footprint] slot bound). *)
  val nslots : int

  (** Complete a terminal configuration (issue the final reads);
      returns the actions performed so the full schedule can be
      replayed elsewhere. *)
  val finalize : t -> action list

  (** Specification verdicts of a finalized terminal configuration.
      The second argument is the full schedule that produced it. *)
  val checks : t -> action list -> (string * Rlist_spec.Check.result) list
end

type stats = {
  mutable states : int;  (** Configurations expanded (nodes visited). *)
  mutable terminals : int;  (** Complete interleavings checked. *)
  mutable pruned_state : int;  (** Subtrees cut by the state cache. *)
  mutable pruned_sleep : int;  (** Branches cut by sleep sets. *)
  mutable truncated : bool;  (** The state budget was exhausted. *)
}

type 'action violation = {
  v_spec : string;
  v_result : Rlist_spec.Check.result;
  v_schedule : 'action list;  (** Full schedule, final reads included. *)
}

module Make (S : SYSTEM) : sig
  type report = {
    stats : stats;
    violations : S.action violation list;
        (** First witness found per violated specification. *)
  }

  (** [run ~por ~max_states ()] explores every interleaving (breadth
      bounded by [max_states] visited configurations; exceeding it
      sets [truncated]).  [por:false] disables both reductions —
      naive enumeration, the cross-check baseline. *)
  val run : ?por:bool -> ?max_states:int -> unit -> report
end
