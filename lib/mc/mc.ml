open Rlist_model

type spec =
  | Convergence
  | Weak
  | Strong

let spec_name = function
  | Convergence -> "convergence"
  | Weak -> "weak"
  | Strong -> "strong"

let spec_of_name = function
  | "convergence" -> Some Convergence
  | "weak" -> Some Weak
  | "strong" -> Some Strong
  | _ -> None

let all_specs = [ Convergence; Weak; Strong ]

type 'action outcome = {
  workload : Workload.t;
  stats : Explore.stats;
  violations : 'action Explore.violation list;
}

let equal_intent a b =
  match (a, b) with
  | Intent.Read, Intent.Read -> true
  | Intent.Insert (c1, p1), Intent.Insert (c2, p2) ->
    Char.equal c1 c2 && p1 = p2
  | Intent.Delete p1, Intent.Delete p2 -> p1 = p2
  | (Intent.Read | Intent.Insert _ | Intent.Delete _), _ -> false

let is_update_intent = function
  | Intent.Insert _ | Intent.Delete _ -> true
  | Intent.Read -> false

(* Shared by both checkers: replay a found violation's schedule on a
   fresh system, tolerate unreplayable candidates, and minimize. *)
let shrink_violations (type sys action)
    ~(fresh : unit -> sys)
    ~(apply : sys -> action -> unit)
    ~(checks : sys -> action list -> (string * Rlist_spec.Check.result) list)
    violations =
  let replay_verdict spec schedule =
    let t = fresh () in
    match List.iter (apply t) schedule with
    | exception Invalid_argument _ -> None
    | () -> List.assoc_opt spec (checks t schedule)
  in
  let shrink_one (v : action Explore.violation) =
    let still_fails candidate =
      match replay_verdict v.Explore.v_spec candidate with
      | Some (Rlist_spec.Check.Violated _) -> true
      | Some Rlist_spec.Check.Satisfied | None -> false
    in
    let v_schedule = Witness.shrink ~still_fails v.Explore.v_schedule in
    let v_result =
      (* Re-derive the verdict from the minimized schedule so its
         reason and culprits describe the witness we print. *)
      match replay_verdict v.Explore.v_spec v_schedule with
      | Some r -> r
      | None -> v.Explore.v_result
    in
    { v with Explore.v_schedule; v_result }
  in
  List.map shrink_one violations

let diverged ~spec =
  Rlist_spec.Check.violated ~spec ~culprits:[]
    "replicas hold different documents at quiescence"

let behavior_of ?(batching = false) (module P : Rlist_sim.Protocol_intf.PROTOCOL)
    ~nclients ~initial schedule =
  let module E = Rlist_sim.Engine.Make (P) in
  let e = E.create ~initial ~batching ~nclients () in
  E.run e schedule;
  E.behavior e

let compare_behaviors ~spec mine theirs =
  let pp_step ppf (r, d) =
    Format.fprintf ppf "%a:%a" Replica_id.pp r Document.pp d
  in
  let rec go i mine theirs =
    match (mine, theirs) with
    | [], [] -> Rlist_spec.Check.Satisfied
    | [], step :: _ | step :: _, [] ->
      Rlist_spec.Check.violated ~spec ~culprits:[]
        (Format.asprintf "behaviours differ in length at step %d (%a)" i
           pp_step step)
    | (r1, d1) :: rest1, (r2, d2) :: rest2 ->
      if Replica_id.equal r1 r2 && Document.equal d1 d2 then
        go (i + 1) rest1 rest2
      else
        Rlist_spec.Check.violated ~spec ~culprits:[]
          (Format.asprintf "behaviours diverge at step %d: %a vs %a" i
             pp_step (r1, d1) pp_step (r2, d2))
  in
  go 0 mine theirs

module Cs (P : Rlist_sim.Protocol_intf.PROTOCOL) = struct
  module E = Rlist_sim.Engine.Make (P)
  module S = Rlist_sim.Schedule

  let make_system ~(workload : Workload.t) ~equiv ~specs ~batching ~gc :
      (module Explore.SYSTEM with type action = S.event) =
    let n = workload.Workload.nclients in
    if n > 8 then invalid_arg "Mc.Cs: at most 8 clients";
    (module struct
      type t = {
        e : E.t;
        scripts : Intent.t list array;
      }

      type action = S.event

      let fresh () =
        {
          e =
            E.create ~initial:workload.Workload.initial ~batching ?gc
              ~nclients:n ();
          scripts = Array.copy workload.Workload.scripts;
        }

      let apply t ev =
        (match ev with
        | S.Generate (i, _) -> (
          (* The event already carries its clamped intent; the script
             slot only gates [enabled].  Tolerate an exhausted slot so
             shrunk candidate schedules remain replayable. *)
          match t.scripts.(i) with
          | [] -> ()
          | _ :: tl -> t.scripts.(i) <- tl)
        | S.Deliver_to_server _ | S.Deliver_to_client _ -> ());
        E.apply_event t.e ev

      let enabled t =
        let gens = ref [] in
        let dts = ref [] in
        let dtc = ref [] in
        for i = n downto 1 do
          (match t.scripts.(i) with
          | [] -> ()
          | intent :: _ ->
            let doc_length = Document.length (E.client_document t.e i) in
            gens := S.Generate (i, Workload.clamp ~doc_length intent) :: !gens);
          if E.pending_to_server t.e i > 0 then
            dts := S.Deliver_to_server i :: !dts;
          if E.pending_to_client t.e i > 0 then
            dtc := S.Deliver_to_client i :: !dtc
        done;
        !gens @ !dts @ !dtc

      let equal_action a b =
        match (a, b) with
        | S.Generate (i, x), S.Generate (j, y) -> i = j && equal_intent x y
        | S.Deliver_to_server i, S.Deliver_to_server j -> i = j
        | S.Deliver_to_client i, S.Deliver_to_client j -> i = j
        | (S.Generate _ | S.Deliver_to_server _ | S.Deliver_to_client _), _
          ->
          false

      (* Client [i]'s generate touches client [i] and the back of its
         to-server queue; a to-server delivery touches the server and
         the front of that queue (push-back and pop-front commute); a
         to-client delivery touches client [i] and the front of its
         from-server queue.  Only the server serializes: to-server
         deliveries conflict with each other, and nothing else does
         except actions on the same client.

         Batching shrinks the relation: a delivery flushes the target
         channel's outbox, so it no longer commutes with the sends
         that feed that outbox — the batch boundary (hence the batch
         handed to the protocol) depends on the order.  A to-server
         delivery conflicts with the same client's generate (its
         to-server outbox) and with every to-client delivery (it
         appends to all from-server outboxes). *)
      let independent a b =
        match (a, b) with
        | S.Generate (i, _), S.Generate (j, _) -> i <> j
        | S.Generate (i, _), S.Deliver_to_client j
        | S.Deliver_to_client j, S.Generate (i, _) ->
          i <> j
        | S.Generate (i, _), S.Deliver_to_server j
        | S.Deliver_to_server j, S.Generate (i, _) ->
          (not batching) || i <> j
        | S.Deliver_to_server _, S.Deliver_to_server _ -> false
        | S.Deliver_to_server _, S.Deliver_to_client _
        | S.Deliver_to_client _, S.Deliver_to_server _ ->
          not batching
        | S.Deliver_to_client i, S.Deliver_to_client j -> i <> j

      (* Unbatched, each action extends one local history.  Batched, a
         to-server delivery also extends every client's from-server
         outbox and flushes client [i]'s to-server outbox, so its
         token lands in every slot: per-slot projections again
         determine the configuration (each client slot orders its
         generates, its incoming deliveries, and all batch-boundary
         events; slot 0 orders the server's serialization). *)
      let footprint = function
        | S.Generate (i, _) -> [ (i, 'g') ]
        | S.Deliver_to_server i ->
          let token = Char.chr (Char.code '0' + i) in
          if batching then
            (0, token) :: List.init n (fun j -> (j + 1, token))
          else [ (0, token) ]
        | S.Deliver_to_client i -> [ (i, 'r') ]

      let nslots = n + 1

      let finalize t =
        let reads = S.final_reads ~nclients:n in
        List.iter (apply t) reads;
        reads

      let checks t schedule =
        let trace = lazy (E.trace t.e) in
        let spec_checks =
          List.map
            (fun spec ->
              let name = spec_name spec in
              let result =
                match spec with
                | Convergence ->
                  (* Replica equality is only judged at quiescence;
                     shrunk candidate schedules with messages still in
                     flight fall back to the trace-level check. *)
                  if E.pending_messages t.e = 0 && not (E.converged t.e)
                  then diverged ~spec:name
                  else Rlist_spec.Convergence.check (Lazy.force trace)
                | Weak -> Rlist_spec.Weak_spec.check (Lazy.force trace)
                | Strong -> Rlist_spec.Strong_spec.check (Lazy.force trace)
              in
              (name, result))
            specs
        in
        match equiv with
        | None -> spec_checks
        | Some (name, replay) ->
          let result =
            match
              replay ~nclients:n ~initial:workload.Workload.initial schedule
            with
            | exception Invalid_argument msg ->
              Rlist_spec.Check.violated ~spec:name ~culprits:[]
                ("partner protocol cannot replay the schedule: " ^ msg)
            | theirs -> compare_behaviors ~spec:name (E.behavior t.e) theirs
          in
          spec_checks @ [ (name, result) ]
    end)

  let check ?equiv ?gc ?(por = true) ?(max_states = 500_000) ?(shrink = true)
      ?(batching = false) ~specs ~workload () =
    let module Sys = (val make_system ~workload ~equiv ~specs ~batching ~gc) in
    let module X = Explore.Make (Sys) in
    let report = X.run ~por ~max_states () in
    let violations =
      if shrink then
        shrink_violations ~fresh:Sys.fresh ~apply:Sys.apply
          ~checks:Sys.checks report.X.violations
      else report.X.violations
    in
    { workload; stats = report.X.stats; violations }

  let pp_violation ppf v =
    Witness.pp ~pp_action:S.pp_event
      ~is_generate:(function
        | S.Generate (_, intent) -> is_update_intent intent
        | S.Deliver_to_server _ | S.Deliver_to_client _ -> false)
      ppf v
end

module P2p (P : Rlist_sim.P2p_protocol_intf.P2P_PROTOCOL) = struct
  module E = Rlist_sim.P2p_engine.Make (P)

  let make_system ~(workload : Workload.t) ~specs ~batching ~gc :
      (module Explore.SYSTEM with type action = Rlist_sim.P2p_engine.event) =
    let n = workload.Workload.nclients in
    if n > 8 then invalid_arg "Mc.P2p: at most 8 peers";
    (module struct
      type t = {
        e : E.t;
        scripts : Intent.t list array;
      }

      type action = Rlist_sim.P2p_engine.event

      let fresh () =
        {
          e =
            E.create ~initial:workload.Workload.initial ~batching ?gc
              ~npeers:n ();
          scripts = Array.copy workload.Workload.scripts;
        }

      let apply t ev =
        (match ev with
        | Rlist_sim.P2p_engine.Generate (i, _) -> (
          match t.scripts.(i) with
          | [] -> ()
          | _ :: tl -> t.scripts.(i) <- tl)
        | Rlist_sim.P2p_engine.Deliver _ -> ());
        E.apply_event t.e ev

      let enabled t =
        let gens = ref [] in
        let dels = ref [] in
        for dst = n downto 1 do
          for src = n downto 1 do
            if src <> dst && E.channel_depth t.e ~src ~dst > 0 then
              dels := Rlist_sim.P2p_engine.Deliver (src, dst) :: !dels
          done
        done;
        for i = n downto 1 do
          match t.scripts.(i) with
          | [] -> ()
          | intent :: _ ->
            let doc_length = Document.length (E.document t.e i) in
            gens :=
              Rlist_sim.P2p_engine.Generate
                (i, Workload.clamp ~doc_length intent)
              :: !gens
        done;
        !gens @ !dels

      let equal_action a b =
        match (a, b) with
        | ( Rlist_sim.P2p_engine.Generate (i, x),
            Rlist_sim.P2p_engine.Generate (j, y) ) ->
          i = j && equal_intent x y
        | ( Rlist_sim.P2p_engine.Deliver (s1, d1),
            Rlist_sim.P2p_engine.Deliver (s2, d2) ) ->
          s1 = s2 && d1 = d2
        | (Rlist_sim.P2p_engine.Generate _ | Rlist_sim.P2p_engine.Deliver _), _
          ->
          false

      (* A generate touches peer [i] and the backs of its outgoing
         channels; a delivery touches peer [dst], the front of one
         incoming channel, and (reactions) the backs of [dst]'s
         outgoing channels.  Two actions conflict exactly when they
         touch the same peer's state.

         Batching adds outbox conflicts (see the Cs relation): a
         delivery from [src] flushes the [src->dst] outbox, which the
         generates of [src] and the reactions of deliveries into
         [src] feed, so those pairs no longer commute. *)
      let independent a b =
        match (a, b) with
        | ( Rlist_sim.P2p_engine.Generate (i, _),
            Rlist_sim.P2p_engine.Generate (j, _) ) ->
          i <> j
        | Rlist_sim.P2p_engine.Generate (i, _),
          Rlist_sim.P2p_engine.Deliver (s, d)
        | Rlist_sim.P2p_engine.Deliver (s, d),
          Rlist_sim.P2p_engine.Generate (i, _) ->
          if batching then d <> i && s <> i else d <> i
        | ( Rlist_sim.P2p_engine.Deliver (s1, d1),
            Rlist_sim.P2p_engine.Deliver (s2, d2) ) ->
          if batching then d1 <> d2 && d1 <> s2 && d2 <> s1 else d1 <> d2

      (* Batched, a delivery also marks the source slot — with a token
         naming the destination, so the source slot records {e which}
         of its outboxes was flushed (two flushes towards different
         peers leave different batch contents behind and must not
         collapse to one cache key). *)
      let footprint = function
        | Rlist_sim.P2p_engine.Generate (i, _) -> [ (i, 'g') ]
        | Rlist_sim.P2p_engine.Deliver (src, dst) ->
          let token = Char.chr (Char.code '0' + src) in
          if batching then
            [ (dst, token); (src, Char.chr (Char.code 'A' + dst)) ]
          else [ (dst, token) ]

      let nslots = n + 1

      let finalize t =
        let reads =
          List.init n (fun i ->
              Rlist_sim.P2p_engine.Generate (i + 1, Intent.Read))
        in
        List.iter (apply t) reads;
        reads

      let checks t _schedule =
        let trace = lazy (E.trace t.e) in
        List.map
          (fun spec ->
            let name = spec_name spec in
            let result =
              match spec with
              | Convergence ->
                if E.pending_messages t.e = 0 && not (E.converged t.e) then
                  diverged ~spec:name
                else Rlist_spec.Convergence.check (Lazy.force trace)
              | Weak -> Rlist_spec.Weak_spec.check (Lazy.force trace)
              | Strong -> Rlist_spec.Strong_spec.check (Lazy.force trace)
            in
            (name, result))
          specs
    end)

  let check ?gc ?(por = true) ?(max_states = 500_000) ?(shrink = true)
      ?(batching = false) ~specs ~workload () =
    let module Sys = (val make_system ~workload ~specs ~batching ~gc) in
    let module X = Explore.Make (Sys) in
    let report = X.run ~por ~max_states () in
    let violations =
      if shrink then
        shrink_violations ~fresh:Sys.fresh ~apply:Sys.apply
          ~checks:Sys.checks report.X.violations
      else report.X.violations
    in
    { workload; stats = report.X.stats; violations }

  let pp_violation ppf v =
    Witness.pp ~pp_action:Rlist_sim.P2p_engine.pp_event
      ~is_generate:(function
        | Rlist_sim.P2p_engine.Generate (_, intent) -> is_update_intent intent
        | Rlist_sim.P2p_engine.Deliver _ -> false)
      ppf v
end
