(** Workload profiles for collaborative-editing simulations.

    A profile describes {e how} users edit; instantiating it with an
    RNG yields a stateful intent generator that plugs into
    [Engine.run_random].  The profiles model the editing behaviours
    collaborative-text-editing papers exercise: interactive typing,
    mixed revising, everyone fighting over one hot region, append-only
    logging, and uniformly random churn. *)

open Rlist_model

type profile =
  | Uniform  (** Positions uniform over the document; ~30% deletes. *)
  | Typing  (** Each client keeps a cursor: mostly consecutive inserts,
                occasional backspace, rare cursor jumps. *)
  | Hotspot  (** All clients edit near the front of the document
                 (geometric positions) — maximal conflict rate. *)
  | Append_log  (** Inserts only, always at the end of the document. *)
  | Churn  (** Half deletions: the document stays short while the
               operation history grows. *)

val all_profiles : profile list

val profile_name : profile -> string

val profile_of_name : string -> profile option

(** [intent_generator profile ~nclients ~rng] creates the stateful
    per-client generator.  Every produced intent is valid for the
    document length passed in. *)
val intent_generator :
  profile ->
  nclients:int ->
  rng:Random.State.t ->
  client:int ->
  doc_length:int ->
  Intent.t

(** Scheduling parameters that suit the profile (concurrency level,
    read mix) with the given number of updates. *)
val params : profile -> updates:int -> Rlist_sim.Schedule.random_params

(** Timed-scheduler counterpart of {!params}, for long-horizon soaks
    ([Engine.run_timed]).  Each profile picks a channel {e utilization}
    (its concurrency level); the mean latency is derived from it so
    that every FIFO channel — a single-server queue under the timed
    model's arrival discipline — stays stable.  An unstable channel's
    backlog, and with it the transform lattice, would grow linearly
    with the horizon; a stable one keeps the in-flight window at a
    bounded steady state over millions of operations. *)
val timed_params :
  profile -> nclients:int -> updates:int -> Rlist_sim.Schedule.timed_params
