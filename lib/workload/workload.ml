open Rlist_model

type profile =
  | Uniform
  | Typing
  | Hotspot
  | Append_log
  | Churn

let all_profiles = [ Uniform; Typing; Hotspot; Append_log; Churn ]

let profile_name = function
  | Uniform -> "uniform"
  | Typing -> "typing"
  | Hotspot -> "hotspot"
  | Append_log -> "append-log"
  | Churn -> "churn"

let profile_of_name name =
  List.find_opt (fun p -> profile_name p = name) all_profiles

let random_char rng = Char.chr (Char.code 'a' + Random.State.int rng 26)

(* A geometrically distributed position biased towards the front. *)
let geometric rng ~bound =
  if bound = 0 then 0
  else begin
    let rec go p = if p >= bound || Random.State.bool rng then p else go (p + 1)
    in
    go 0
  end

let uniform_intent rng ~delete_fraction ~doc_length =
  if doc_length > 0 && Random.State.float rng 1.0 < delete_fraction then
    Intent.Delete (Random.State.int rng doc_length)
  else Intent.Insert (random_char rng, Random.State.int rng (doc_length + 1))

let intent_generator profile ~nclients ~rng =
  match profile with
  | Uniform ->
    fun ~client:_ ~doc_length ->
      uniform_intent rng ~delete_fraction:0.3 ~doc_length
  | Typing ->
    (* Per-client cursor; clamped to the (shared) document each time
       since remote edits move text underneath the cursor. *)
    let cursors = Array.make (nclients + 1) 0 in
    fun ~client ~doc_length ->
      let cursor = min cursors.(client) doc_length in
      let roll = Random.State.float rng 1.0 in
      if roll < 0.75 || doc_length = 0 then begin
        (* type a character at the cursor *)
        cursors.(client) <- cursor + 1;
        Intent.Insert (random_char rng, cursor)
      end
      else if roll < 0.90 && cursor > 0 then begin
        (* backspace *)
        cursors.(client) <- cursor - 1;
        Intent.Delete (cursor - 1)
      end
      else begin
        (* jump the cursor somewhere else and type *)
        let target = Random.State.int rng (doc_length + 1) in
        cursors.(client) <- target + 1;
        Intent.Insert (random_char rng, target)
      end
  | Hotspot ->
    fun ~client:_ ~doc_length ->
      if doc_length > 0 && Random.State.float rng 1.0 < 0.35 then
        Intent.Delete (geometric rng ~bound:(doc_length - 1))
      else Intent.Insert (random_char rng, geometric rng ~bound:doc_length)
  | Append_log ->
    fun ~client:_ ~doc_length -> Intent.Insert (random_char rng, doc_length)
  | Churn ->
    fun ~client:_ ~doc_length ->
      uniform_intent rng ~delete_fraction:0.5 ~doc_length

let params profile ~updates =
  let base = { Rlist_sim.Schedule.default_params with updates } in
  match profile with
  | Uniform -> base
  | Typing ->
    (* Interactive typing: messages flow promptly, light conflicts. *)
    { base with read_fraction = 0.05; deliver_bias = 0.7 }
  | Hotspot ->
    (* Keep many operations in flight to maximize concurrency. *)
    { base with read_fraction = 0.05; deliver_bias = 0.35 }
  | Append_log -> { base with read_fraction = 0.0; deliver_bias = 0.6 }
  | Churn -> { base with delete_fraction = 0.5 }

(* The timed counterpart: channel utilization instead of deliver_bias.
   [run_timed] keeps each channel FIFO by pushing an arrival to
   [max last (now + latency)] — a Lindley recursion, so every s2c
   channel is a single-server queue whose arrival rate is the whole
   system's operation rate ([nclients / think]) and whose service time
   is the latency draw.  Stability therefore demands
   [latency * nclients / think < 1]; the profile picks the
   utilization, i.e. how hard it leans on concurrency, and the latency
   is derived.  An over-unity utilization would grow the in-flight
   window (and with it the transform lattice) linearly with the
   horizon — the exact failure mode a long soak exists to rule out. *)
let timed_params profile ~nclients ~updates =
  let think = 120.0 in
  let utilization =
    match profile with
    | Uniform -> 0.4
    | Typing -> 0.15 (* prompt network, light conflicts *)
    | Hotspot -> 0.8 (* slow network: maximal (stable) concurrency *)
    | Append_log -> 0.4
    | Churn -> 0.4
  in
  let latency = utilization *. think /. Float.of_int (max 1 nclients) in
  let base =
    {
      Rlist_sim.Schedule.default_timed_params with
      t_updates = updates;
      t_think_time = think;
      t_mean_latency = latency;
    }
  in
  match profile with
  | Uniform -> base
  | Typing -> { base with t_read_fraction = 0.05 }
  | Hotspot -> { base with t_read_fraction = 0.05 }
  | Append_log -> { base with t_read_fraction = 0.0 }
  | Churn -> { base with t_delete_fraction = 0.5 }
