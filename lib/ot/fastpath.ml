(* See fastpath.mli. *)

type t = {
  mutable enabled : bool;
  mutable baseline : bool;
  mutable context_hits : int;
  mutable append_hits : int;
  mutable generic_squares : int;
}

let create ?(enabled = false) ?(baseline = false) () =
  { enabled; baseline; context_hits = 0; append_hits = 0; generic_squares = 0 }

let reset t =
  t.context_hits <- 0;
  t.append_hits <- 0;
  t.generic_squares <- 0

let fields t =
  [
    "fastpath.context_hits", t.context_hits;
    "fastpath.append_hits", t.append_hits;
    "fastpath.generic_squares", t.generic_squares;
  ]
