open Rlist_model

type t = Op_id.Set.t

let empty = Op_id.Set.empty

let extend ctx op = Op_id.Set.add op.Op.id ctx

let mem ctx op = Op_id.Set.mem op.Op.id ctx

let equal = Op_id.Set.equal

let subset = Op_id.Set.subset

type op_in_context = {
  op : Op.t;
  ctx : t;
}

let with_context op ~ctx =
  (* Precondition guard at the API boundary, not a transform-path
     partial case: a caller pairing an operation with its own context
     is a programming error, never a reachable transform state. *)
  if Op_id.Set.mem op.Op.id ctx then
    (invalid_arg "Context.with_context: operation is inside its own context")
    [@lint.allow "exn-partial"];
  { op; ctx }

let pp = Op_id.Set.pp

let pp_op_in_context ppf { op; ctx } =
  Format.fprintf ppf "%a @@ %a" Op.pp op pp ctx
