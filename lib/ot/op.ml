open Rlist_model

type action =
  | Ins of Element.t * int
  | Del of Element.t * int
  | Nop

type t = {
  id : Op_id.t;
  action : action;
}

(* The [invalid_arg]s below are precondition guards at the smart-
   constructor/application API boundary, not partial cases inside the
   transform functions — the totality the exn-partial pass protects. *)

let make_ins ~id elt pos =
  if pos < 0 then
    (invalid_arg "Op.make_ins: negative position")
    [@lint.allow "exn-partial"];
  { id; action = Ins (elt, pos) }

let make_del ~id elt pos =
  if pos < 0 then
    (invalid_arg "Op.make_del: negative position")
    [@lint.allow "exn-partial"];
  { id; action = Del (elt, pos) }

let nop ~id = { id; action = Nop }

let is_nop t =
  match t.action with
  | Nop -> true
  | Ins _ | Del _ -> false

let is_ins t =
  match t.action with
  | Ins _ -> true
  | Del _ | Nop -> false

let is_del t =
  match t.action with
  | Del _ -> true
  | Ins _ | Nop -> false

let element t =
  match t.action with
  | Ins (e, _) | Del (e, _) -> Some e
  | Nop -> None

let position t =
  match t.action with
  | Ins (_, p) | Del (_, p) -> Some p
  | Nop -> None

let apply t doc =
  match t.action with
  | Nop -> doc
  | Ins (e, p) -> Document.insert doc ~pos:p e
  | Del (e, p) ->
    let deleted, doc' = Document.delete doc ~pos:p in
    if not (Element.equal deleted e) then
      (invalid_arg
         (Format.asprintf
            "Op.apply: delete %a at position %d found %a — operation applied \
             outside its context"
            Element.pp e p Element.pp deleted))
      [@lint.allow "exn-partial"];
    doc'

let compare_action a b =
  match a, b with
  | Ins (e1, p1), Ins (e2, p2) | Del (e1, p1), Del (e2, p2) -> (
    match Element.compare e1 e2 with
    | 0 -> Int.compare p1 p2
    | c -> c)
  | Ins _, (Del _ | Nop) -> -1
  | Del _, Nop -> -1
  | Del _, Ins _ -> 1
  | Nop, (Ins _ | Del _) -> 1
  | Nop, Nop -> 0

let compare a b =
  match Op_id.compare a.id b.id with
  | 0 -> compare_action a.action b.action
  | c -> c

let equal a b = compare a b = 0

let pp ppf t =
  match t.action with
  | Ins (e, p) -> Format.fprintf ppf "Ins(%a, %d)" Element.pp e p
  | Del (e, p) -> Format.fprintf ppf "Del(%a, %d)" Element.pp e p
  | Nop -> Format.fprintf ppf "Nop<%a>" Op_id.pp t.id

let to_string t = Format.asprintf "%a" pp t
