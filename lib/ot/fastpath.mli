(** Fast-path configuration and accounting for Algorithm 1's batched
    ladder walks — one record per engine run, threaded from the
    engine's constructor down to every {!State_space} it creates.

    This used to be a module-level switch with module-level counters;
    the escape/confinement pass (DESIGN.md §15) demands instance
    scoping: under the multi-domain sharded server (ROADMAP item 2)
    each document's spaces live on one domain, and a process-global
    knob written by one domain while another walks a ladder is a data
    race.  An engine passes the {e same} record to its server and all
    its clients, so the counters still aggregate per run — per-domain
    confinement, per-run accounting. *)

type t = {
  mutable enabled : bool;
      (** Switches the append specialization of
          {!Jupiter_css.State_space.add_run} on.  The context-match
          shortcut is a pure strength reduction and is always on. *)
  mutable baseline : bool;
      (** Benchmark ablation (C16): spaces created from a [baseline]
          record pay the pre-optimization cost model — every node
          created re-hashes its full state set instead of extending
          the parent's hash by one mix, and [add_op] replays the
          hash-table probes the seed performed at every ladder square
          instead of following the pointer mirror.  Captured at space
          creation time; structure and forms are unchanged (only the
          constant work per square).  Never set it in protocol code. *)
  mutable context_hits : int;
      (** Operations whose context matched the final state (ladder
          collapsed to one appended transition). *)
  mutable append_hits : int;
      (** Operations resolved by append-run position arithmetic
          instead of primitive transformations. *)
  mutable generic_squares : int;
      (** Ladder squares processed the ordinary way. *)
}

(** A fresh record, counters at zero.  [enabled] and [baseline]
    default to [false]. *)
val create : ?enabled:bool -> ?baseline:bool -> unit -> t

(** Reset the counters (not [enabled] or [baseline]). *)
val reset : t -> unit

(** The counters as metric fields, for publication:
    [("fastpath.context_hits", n); ...]. *)
val fields : t -> (string * int) list
