(** Operational transformation functions for the replicated list.

    These are the classic position-adjusting transformation functions
    for character-wise insertions and deletions (Ellis and Gibbs 1989;
    Imine et al. 2006), the ones the Jupiter protocols are built on
    (paper, Section 4.2).

    The central requirement is CP1 (Convergence Property 1,
    Definition 4.4): if [OT(o1, o2) = (o1', o2')] for [o1], [o2]
    defined on the same state [sigma], then
    [sigma; o1; o2' = sigma; o2; o1'].  {!xform} satisfies CP1 (the
    insert/insert tie is broken by {!Rlist_model.Element.priority});
    this is checked exhaustively by the property-based test suite.

    {!xform_no_priority} is a deliberately broken variant — it keeps
    the position of both inserts on a tie — used to reproduce the
    paper's running "counterexample" produced by an incorrect protocol
    (Figure 8). *)

open Rlist_model

(** [xform o1 o2] transforms [o1] to take into account the effect of
    [o2]: both must be defined on the same state, and the result
    [o1{o2}] is defined on that state extended with [o2]
    (Definition 4.6).  Written [o1' = OT(o1, o2)] in the paper. *)
val xform : Op.t -> Op.t -> Op.t

(** [xform_pair o1 o2 = (xform o1 o2, xform o2 o1)], the paper's
    [(o1', o2') = OT(o1, o2)]. *)
val xform_pair : Op.t -> Op.t -> Op.t * Op.t

(** [xform_seq o l] transforms [o] against the operation sequence [l]
    left to right, returning [o{l}] together with [l{o}] (every
    operation of [l] transformed against the appropriate form of [o]),
    as in the protocols' [OT(o, L) = (o{L}, L{o})]. *)
val xform_seq : Op.t -> Op.t list -> Op.t * Op.t list

(** [check_cp1 doc o1 o2] executes both orders of the transformed pair
    on [doc] and reports whether the results agree — a direct check of
    Definition 4.4 on one instance.  [o1] and [o2] must be defined on
    [doc]. *)
val check_cp1 : Document.t -> Op.t -> Op.t -> bool

(** [check_cp2 o1 o2 o3] checks Convergence Property 2 on one
    instance of three operations defined on the same state:
    transforming [o3] against [o1; o2{o1}] and against [o2; o1{o2}]
    must give the same operation.  The paper is "not concerned with
    CP2" (footnote 4) for a deep reason: the classic list
    transformation functions — including {!xform} — do {e not} satisfy
    it (the property tests exhibit witnesses), which is exactly why
    every Jupiter variant pins down a single total transformation
    order (server serialization, a sequencer, or Lamport timestamps)
    instead of transforming in arbitrary orders. *)
val check_cp2 : Op.t -> Op.t -> Op.t -> bool

(** The broken transformation used by the incorrect protocol of the
    paper's Figure 8: identical to {!xform} except that an
    insert/insert tie leaves {e both} positions unchanged, so
    concurrent inserts at the same position commute to different
    lists. *)
val xform_no_priority : Op.t -> Op.t -> Op.t
