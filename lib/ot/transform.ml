open Rlist_model

(* The transformation functions below adjust the position of [o1] to
   account for a concurrent [o2] applied first.  The cases follow the
   standard list-OT functions (Ellis & Gibbs 1989; Imine et al. 2006):

   - Ins/Ins: shift right if [o2] inserted strictly before, or at the
     same position with higher priority (the higher-priority element
     ends up leftmost).
   - Ins/Del: shift left if [o2] deleted strictly before.
   - Del/Ins: shift right if [o2] inserted at or before.
   - Del/Del: shift left if [o2] deleted strictly before; deleting the
     same position on the same state means deleting the same element,
     so the result is the idle operation Nop (footnote 10). *)

let generic_xform ~tie_shifts ~strict o1 o2 =
  match o1.Op.action, o2.Op.action with
  | Op.Nop, _ | _, Op.Nop -> o1
  | Op.Ins (e1, p1), Op.Ins (e2, p2) ->
    if p1 < p2 then o1
    else if p1 > p2 then Op.make_ins ~id:o1.Op.id e1 (p1 + 1)
    else if tie_shifts && Element.priority e1 e2 < 0 then
      Op.make_ins ~id:o1.Op.id e1 (p1 + 1)
    else o1
  | Op.Ins (e1, p1), Op.Del (_, p2) ->
    if p1 <= p2 then o1 else Op.make_ins ~id:o1.Op.id e1 (p1 - 1)
  | Op.Del (e1, p1), Op.Ins (_, p2) ->
    if p1 < p2 then o1 else Op.make_del ~id:o1.Op.id e1 (p1 + 1)
  | Op.Del (e1, p1), Op.Del (e2, p2) ->
    if p1 < p2 then o1
    else if p1 > p2 then Op.make_del ~id:o1.Op.id e1 (p1 - 1)
    else begin
      (* Same position on the same state: necessarily the same element.
         Only the broken variant, whose contexts are wrong by design,
         can reach this case with distinct elements. *)
      if strict then assert (Element.equal e1 e2);
      Op.nop ~id:o1.Op.id
    end

(* Pure: per-instance transform accounting lives with the caller —
   every state-space counts its own [ot_count] and the engines'
   [attach_obs] derives per-run transform metrics from those, so the
   old process-global [on_xform] tap (a shared-unsafe write under the
   multi-domain server, per the escape/confinement pass) is gone. *)
let xform o1 o2 = generic_xform ~tie_shifts:true ~strict:true o1 o2

let xform_no_priority o1 o2 =
  generic_xform ~tie_shifts:false ~strict:false o1 o2

let xform_pair o1 o2 = xform o1 o2, xform o2 o1

let xform_seq o l =
  let o', rev_l' =
    List.fold_left
      (fun (o, rev_l') ox ->
        let o', ox' = xform_pair o ox in
        o', ox' :: rev_l')
      (o, []) l
  in
  o', List.rev rev_l'

let check_cp2 o1 o2 o3 =
  let via_o1_first = xform (xform o3 o1) (xform o2 o1) in
  let via_o2_first = xform (xform o3 o2) (xform o1 o2) in
  Op.equal via_o1_first via_o2_first

let check_cp1 doc o1 o2 =
  let o1', o2' = xform_pair o1 o2 in
  let left = Op.apply o2' (Op.apply o1 doc) in
  let right = Op.apply o1' (Op.apply o2 doc) in
  Document.equal left right
