(* See recorded.mli. *)

open Rlist_model
module Recorder = Rlist_obs.Recorder
module Workload = Rlist_workload.Workload

type spec = {
  protocol : string;
  profile : Workload.profile;
  nclients : int;
  updates : int;
  seed : int;
  faults : Rlist_net.Faults.spec;
  shim : bool;
  rto : int;
  batching : bool;
  fastpath : bool;
  gc : Rlist_gc.policy option;
}

let default ~protocol =
  {
    protocol;
    profile = Workload.Uniform;
    nclients = 4;
    updates = 100;
    seed = 1;
    faults = Rlist_net.Faults.none;
    shim = true;
    rto = 12;
    batching = false;
    fastpath = false;
    gc = None;
  }

type outcome = {
  o_protocol : string;
  o_events : int;
  o_converged : bool;
  o_finals : (string * string) list;
  o_ots : int;
  o_metadata : int;
  o_convergence : bool;
  o_weak : bool;
  o_strong : bool;
  o_stats : (string * int) list;
  o_net : Rlist_net.Stats.t;
}

let protocol_names =
  [
    "css"; "cscw"; "rga"; "naive"; "css-pruned"; "logoot"; "css-seq";
    "treedoc"; "css-p2p"; "ttf";
  ]

let is_p2p name = String.equal name "css-p2p" || String.equal name "ttf"

(* The CSS append fast path is an engine-scoped record: one fresh
   record per run, handed to the engine's constructor, so the
   counters cover exactly this run and nothing leaks across runs (or,
   under the sharded server, across domains). *)
let publish obs net fp =
  match obs with
  | None -> ()
  | Some obs ->
    let m = obs.Rlist_obs.Obs.metrics in
    Rlist_net.Stats.publish (Rlist_net.Transport.stats net) m;
    List.iter
      (fun (name, v) ->
        Rlist_obs.Metrics.add (Rlist_obs.Metrics.counter m name) v)
      (Rlist_ot.Fastpath.fields fp)

let run_cs (type c s c2s s2c)
    (module P : Rlist_sim.Protocol_intf.PROTOCOL
      with type client = c
       and type server = s
       and type c2s = c2s
       and type s2c = s2c) ?obs ?recorder spec =
  let module E = Rlist_sim.Engine.Make (P) in
  let net =
    Rlist_net.Transport.config ~shim:spec.shim ~rto:spec.rto
      ~faults:spec.faults ~seed:spec.seed ()
  in
  let fp = Rlist_ot.Fastpath.create ~enabled:spec.fastpath () in
  let t =
    E.create ~net ~batching:spec.batching ?gc:spec.gc ~fastpath:fp
      ~nclients:spec.nclients ()
  in
  (match obs with Some o -> E.attach_obs t o | None -> ());
  (match recorder with Some r -> E.attach_recorder t r | None -> ());
  let rng = Random.State.make [| spec.seed |] in
  let intent =
    Workload.intent_generator spec.profile ~nclients:spec.nclients ~rng
  in
  let params = Workload.params spec.profile ~updates:spec.updates in
  let schedule = E.run_random ~intent t ~rng ~params in
  let trace = E.trace t in
  let sat = Rlist_spec.Check.is_satisfied in
  publish obs net fp;
  {
    o_protocol = P.name;
    o_events = List.length schedule;
    o_converged = E.converged t;
    o_finals =
      (if P.server_is_replica then
         [ "server", Document.to_string (E.server_document t) ]
       else [])
      @ List.init spec.nclients (fun i ->
            ( "c" ^ string_of_int (i + 1),
              Document.to_string (E.client_document t (i + 1)) ));
    o_ots = E.total_ot_count t;
    o_metadata = E.total_metadata_size t;
    o_convergence = sat (Rlist_spec.Convergence.check trace);
    o_weak = sat (Rlist_spec.Weak_spec.check trace);
    o_strong = sat (Rlist_spec.Strong_spec.check trace);
    o_stats =
      Rlist_net.Stats.fields (Rlist_net.Transport.stats net)
      @ Rlist_ot.Fastpath.fields fp;
    o_net = Rlist_net.Transport.stats net;
  }

let run_p2p (module P : Rlist_sim.P2p_protocol_intf.P2P_PROTOCOL) ?obs
    ?recorder spec =
  let module E = Rlist_sim.P2p_engine.Make (P) in
  let net =
    Rlist_net.Transport.config ~shim:spec.shim ~rto:spec.rto
      ~faults:spec.faults ~seed:spec.seed ()
  in
  let fp = Rlist_ot.Fastpath.create ~enabled:spec.fastpath () in
  let t =
    E.create ~net ~batching:spec.batching ?gc:spec.gc ~fastpath:fp
      ~npeers:spec.nclients ()
  in
  (match obs with Some o -> E.attach_obs t o | None -> ());
  (match recorder with Some r -> E.attach_recorder t r | None -> ());
  let rng = Random.State.make [| spec.seed |] in
  let intent =
    Workload.intent_generator spec.profile ~nclients:spec.nclients ~rng
  in
  let params = Workload.params spec.profile ~updates:spec.updates in
  let schedule = E.run_random ~intent t ~rng ~params in
  let trace = E.trace t in
  let sat = Rlist_spec.Check.is_satisfied in
  publish obs net fp;
  {
    o_protocol = P.name;
    o_events = List.length schedule;
    o_converged = E.converged t;
    o_finals =
      List.init spec.nclients (fun i ->
          ( "p" ^ string_of_int (i + 1),
            Document.to_string (E.document t (i + 1)) ));
    o_ots = E.total_ot_count t;
    o_metadata = E.total_metadata_size t;
    o_convergence = sat (Rlist_spec.Convergence.check trace);
    o_weak = sat (Rlist_spec.Weak_spec.check trace);
    o_strong = sat (Rlist_spec.Strong_spec.check trace);
    o_stats =
      Rlist_net.Stats.fields (Rlist_net.Transport.stats net)
      @ Rlist_ot.Fastpath.fields fp;
    o_net = Rlist_net.Transport.stats net;
  }

let run ?obs ?recorder spec =
  match spec.protocol with
  | "css" -> run_cs (module Jupiter_css.Protocol) ?obs ?recorder spec
  | "cscw" -> run_cs (module Jupiter_cscw.Protocol) ?obs ?recorder spec
  | "rga" -> run_cs (module Jupiter_rga.Protocol) ?obs ?recorder spec
  | "naive" -> run_cs (module Jupiter_cscw.Naive_p2p) ?obs ?recorder spec
  | "css-pruned" ->
    run_cs (module Jupiter_css.Pruned_protocol) ?obs ?recorder spec
  | "logoot" -> run_cs (module Jupiter_logoot.Protocol) ?obs ?recorder spec
  | "css-seq" ->
    run_cs (module Jupiter_css.Sequencer_protocol) ?obs ?recorder spec
  | "treedoc" -> run_cs (module Jupiter_treedoc.Protocol) ?obs ?recorder spec
  | "css-p2p" ->
    run_p2p (module Jupiter_css.Distributed_protocol) ?obs ?recorder spec
  | "ttf" -> run_p2p (module Jupiter_ttf.Adopted_protocol) ?obs ?recorder spec
  | other -> invalid_arg (Printf.sprintf "Recorded.run: unknown protocol %S" other)

(* The soak gate: strong-spec violations are a theorem for the OT
   protocols (Thm 8.1), so a run "fails" on convergence or the weak
   spec only. *)
let passed o = o.o_converged && o.o_convergence && o.o_weak

(* --- header / digest ---------------------------------------------- *)

let header_of ?(capacity = Recorder.default_capacity) spec =
  [
    "version", "1";
    "protocol", spec.protocol;
    "profile", Workload.profile_name spec.profile;
    "nclients", string_of_int spec.nclients;
    "updates", string_of_int spec.updates;
    "seed", string_of_int spec.seed;
    "faults", Rlist_net.Faults.to_string spec.faults;
    "shim", string_of_bool spec.shim;
    "rto", string_of_int spec.rto;
    "batching", string_of_bool spec.batching;
    "fastpath", string_of_bool spec.fastpath;
    "capacity", string_of_int capacity;
  ]
  @ match spec.gc with
    | None -> []
    | Some p -> [ "gc", Rlist_gc.to_string p ]

let spec_of_header header =
  let find key = List.assoc_opt key header in
  let int key default =
    match find key with
    | Some v -> (
      match int_of_string_opt v with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "recording header: bad %s %S" key v))
    | None -> Ok default
  in
  let bool key default =
    match find key with
    | Some "true" -> Ok true
    | Some "false" -> Ok false
    | Some v -> Error (Printf.sprintf "recording header: bad %s %S" key v)
    | None -> Ok default
  in
  let ( let* ) = Result.bind in
  let* protocol =
    match find "protocol" with
    | Some p when List.exists (String.equal p) protocol_names -> Ok p
    | Some p -> Error (Printf.sprintf "recording header: unknown protocol %S" p)
    | None -> Error "recording header: no protocol"
  in
  let* profile =
    match find "profile" with
    | None -> Ok Workload.Uniform
    | Some name -> (
      match Workload.profile_of_name name with
      | Some p -> Ok p
      | None -> Error (Printf.sprintf "recording header: unknown profile %S" name))
  in
  let* faults =
    match find "faults" with
    | None -> Ok Rlist_net.Faults.none
    | Some s -> (
      match Rlist_net.Faults.of_string s with
      | Ok f -> Ok f
      | Error msg -> Error ("recording header: " ^ msg))
  in
  let* gc =
    match find "gc" with
    | None -> Ok None
    | Some s -> (
      match Rlist_gc.of_string s with
      | Ok p -> Ok (Some p)
      | Error msg -> Error ("recording header: " ^ msg))
  in
  let* nclients = int "nclients" 4 in
  let* updates = int "updates" 100 in
  let* seed = int "seed" 1 in
  let* rto = int "rto" 12 in
  let* shim = bool "shim" true in
  let* batching = bool "batching" false in
  let* fastpath = bool "fastpath" false in
  Ok
    {
      protocol;
      profile;
      nclients;
      updates;
      seed;
      faults;
      shim;
      rto;
      batching;
      fastpath;
      gc;
    }

let digest_of outcome =
  [
    "protocol", outcome.o_protocol;
    "events", string_of_int outcome.o_events;
    "converged", string_of_bool outcome.o_converged;
    "convergence", string_of_bool outcome.o_convergence;
    "weak", string_of_bool outcome.o_weak;
    "strong", string_of_bool outcome.o_strong;
    "ots", string_of_int outcome.o_ots;
    "metadata", string_of_int outcome.o_metadata;
  ]
  @ List.map (fun (r, doc) -> "final." ^ r, doc) outcome.o_finals
  @ List.map (fun (k, v) -> "net." ^ k, string_of_int v) outcome.o_stats

(* --- record / replay ---------------------------------------------- *)

let record ?obs ?(capacity = Recorder.default_capacity) spec =
  let recorder = Recorder.create ~capacity () in
  let outcome = run ?obs ~recorder spec in
  outcome, recorder

let save ~spec ~outcome ~capacity recorder path =
  (* The stored capacity is the recorder's actual one, so a replay
     aligns its window with the recording even if the default ever
     changes. *)
  Recorder.dump
    ~header:(header_of ~capacity spec)
    ~digest:(digest_of outcome) recorder path

type verdict = {
  v_spec : spec;
  v_outcome : outcome;
  v_total_expected : int;
  v_total_got : int;
  v_mismatches : (string * string * string) list;
  v_divergence : (int * string * string) option;
  v_ok : bool;
}

let compare_decisions expected got =
  (* Align on the shorter suffix: a wrapped recording retains only its
     tail, and both lists are oldest-first. *)
  let le = List.length expected and lg = List.length got in
  let expected =
    if lg < le then
      List.filteri (fun i _ -> i >= le - lg) expected
    else expected
  in
  let got =
    if le < lg then List.filteri (fun i _ -> i >= lg - le) got else got
  in
  let rec go i = function
    | [], [] -> None
    | e :: es, g :: gs ->
      let se = Recorder.decision_to_string e in
      let sg = Recorder.decision_to_string g in
      if String.equal se sg then go (i + 1) (es, gs) else Some (i, se, sg)
    | e :: _, [] -> Some (i, Recorder.decision_to_string e, "<none>")
    | [], g :: _ -> Some (i, "<none>", Recorder.decision_to_string g)
  in
  go 0 (expected, got)

let verify ?obs (recording : Recorder.recording) =
  match spec_of_header recording.Recorder.header with
  | Error msg -> Error msg
  | Ok spec ->
    let capacity =
      match List.assoc_opt "capacity" recording.Recorder.header with
      | Some v -> Option.value (int_of_string_opt v) ~default:Recorder.default_capacity
      | None -> Recorder.default_capacity
    in
    let outcome, recorder = record ?obs ~capacity spec in
    let fresh = digest_of outcome in
    let mismatches =
      List.filter_map
        (fun (k, expected) ->
          match List.assoc_opt k fresh with
          | Some got when String.equal got expected -> None
          | Some got -> Some (k, expected, got)
          | None -> Some (k, expected, "<absent>"))
        recording.Recorder.digest
      @ List.filter_map
          (fun (k, got) ->
            if List.mem_assoc k recording.Recorder.digest then None
            else Some (k, "<absent>", got))
          fresh
    in
    let divergence =
      compare_decisions recording.Recorder.r_window (Recorder.window recorder)
    in
    let total_got = Recorder.total recorder in
    Ok
      {
        v_spec = spec;
        v_outcome = outcome;
        v_total_expected = recording.Recorder.r_total;
        v_total_got = total_got;
        v_mismatches = mismatches;
        v_divergence = divergence;
        v_ok =
          mismatches = [] && Option.is_none divergence
          && total_got = recording.Recorder.r_total;
      }

let replay ?obs path = verify ?obs (Recorder.load path)

(* --- schedule extraction (shrinker handoff) ----------------------- *)

let parse_intent s =
  match String.split_on_char ' ' s with
  | [ "read" ] -> Some Intent.Read
  | [ "del"; p ] ->
    Option.map (fun p -> Intent.Delete p) (int_of_string_opt p)
  | [ "ins"; c; p ] when String.length c = 1 ->
    Option.map (fun p -> Intent.Insert (c.[0], p)) (int_of_string_opt p)
  | _ -> None

let schedule_of_recording (recording : Recorder.recording) =
  if recording.Recorder.r_total > List.length recording.Recorder.r_window then
    Error
      "recording wrapped: the ring discarded early decisions, so the full \
       schedule cannot be reconstructed (re-record with a larger capacity)"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | d :: rest -> (
        match d with
        | Recorder.Generate { client; intent } -> (
          match parse_intent intent with
          | Some i -> go (Rlist_sim.Schedule.Generate (client, i) :: acc) rest
          | None ->
            Error (Printf.sprintf "unparseable recorded intent %S" intent))
        | Recorder.Deliver_to_server i ->
          go (Rlist_sim.Schedule.Deliver_to_server i :: acc) rest
        | Recorder.Deliver_to_client i ->
          go (Rlist_sim.Schedule.Deliver_to_client i :: acc) rest
        | Recorder.Deliver_peer _ ->
          Error
            "peer-to-peer recording: schedule extraction only supports the \
             client/server engine"
        | Recorder.Flush _ | Recorder.Transmit _ | Recorder.Retransmit _
        | Recorder.Ack _ | Recorder.Tick _ | Recorder.Gc _ ->
          go acc rest)
    in
    go [] recording.Recorder.r_window
