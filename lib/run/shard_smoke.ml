(* Two documents, two domains, digest equality.

   The escape pass (DESIGN.md §15) proves statically that every
   engine-reachable mutable allocation is stack- or instance-confined;
   this harness is the dynamic witness that the verdict means what it
   claims.  Two independent documents run the same soak workload under
   different seeds, once sequentially on the calling domain and once
   with each document pinned to its own [Domain].  If any state were
   shared between engine instances, the domain run would race or
   diverge; because everything mutable is instance-confined, both runs
   must produce bit-identical document digests. *)

type result = {
  s_protocol : string;
  s_profile : Rlist_workload.Workload.profile;
  s_updates : int;
  s_seed_a : int;
  s_seed_b : int;
  s_single : string * string;
  s_sharded : string * string;
  s_equal : bool;
}

let one ?gc ?faults ~now ~protocol ~profile ~nclients ~updates ~chunk ~seed
    () =
  (Longrun.run ?gc ?faults ~now ~protocol ~profile ~nclients ~updates ~chunk
     ~seed ())
    .Longrun.l_digest

let run ?gc ?faults ~now ~protocol ~profile ~nclients ~updates ~chunk ~seed
    () =
  let doc s = one ?gc ?faults ~now ~protocol ~profile ~nclients ~updates ~chunk ~seed:s () in
  let seed_b = seed + 1 in
  (* single-domain reference: both documents on the calling domain *)
  let single = doc seed, doc seed_b in
  (* sharded run: one fresh domain per document *)
  let da = Domain.spawn (fun () -> doc seed) in
  let db = Domain.spawn (fun () -> doc seed_b) in
  let sharded = Domain.join da, Domain.join db in
  {
    s_protocol = protocol;
    s_profile = profile;
    s_updates = updates;
    s_seed_a = seed;
    s_seed_b = seed_b;
    s_single = single;
    s_sharded = sharded;
    s_equal =
      String.equal (fst single) (fst sharded)
      && String.equal (snd single) (snd sharded);
  }

let result_to_json r =
  Printf.sprintf
    {|{"version":1,"protocol":%S,"profile":%S,"updates":%d,"seeds":[%d,%d],"single":[%S,%S],"sharded":[%S,%S],"equal":%b}|}
    r.s_protocol
    (Rlist_workload.Workload.profile_name r.s_profile)
    r.s_updates r.s_seed_a r.s_seed_b (fst r.s_single) (snd r.s_single)
    (fst r.s_sharded) (snd r.s_sharded) r.s_equal

let pp ppf r =
  Format.fprintf ppf
    "shard-smoke %s/%s: %d updates x 2 documents@,\
    \  single-domain digests: %s %s@,\
    \  two-domain digests:    %s %s@,\
    \  %s@."
    r.s_protocol
    (Rlist_workload.Workload.profile_name r.s_profile)
    r.s_updates (fst r.s_single) (snd r.s_single) (fst r.s_sharded)
    (snd r.s_sharded)
    (if r.s_equal then "EQUAL: domain run matches the single-domain run"
     else "MISMATCH: sharded state is not confined")
