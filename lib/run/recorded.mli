(** Recorded runs: one driver for every protocol over the unreliable
    network, shared by the CLI's soak/fuzz/replay commands, the
    benchmarks, and the tests.

    A run here is fully determined by its {!spec}: the engine draws
    its randomness from [Random.State.make [| seed |]] and the
    transport from a state derived from the same seed, so re-executing
    a spec reproduces the original run bit for bit.  The flight
    recorder does not drive the replay — it is the {e witness}: replay
    re-executes from the spec and then checks the fresh decision
    stream and outcome digest against the recording, flagging the
    first divergence. *)

module Recorder = Rlist_obs.Recorder
module Workload = Rlist_workload.Workload

(** Everything that determines a run. *)
type spec = {
  protocol : string;  (** One of {!protocol_names}. *)
  profile : Workload.profile;
  nclients : int;  (** Clients, or peers for the p2p protocols. *)
  updates : int;
  seed : int;
  faults : Rlist_net.Faults.spec;
  shim : bool;  (** Reliability shim on the wire. *)
  rto : int;  (** Retransmission timeout (ticks). *)
  batching : bool;
  fastpath : bool;  (** CSS append fast path. *)
  gc : Rlist_gc.policy option;
      (** Continuous metadata GC; [None] (the default) runs
          unbounded.  GC cycles are out of band, so the decision
          stream and digest of a run are identical with and without a
          policy — the header records it only so a replay reproduces
          the same memory profile and GC accounting. *)
}

(** A spec with the soak defaults: uniform profile, 4 clients, 100
    updates, seed 1, no faults, shim on, rto 12, no batching, no fast
    path, no GC. *)
val default : protocol:string -> spec

(** What a run produced — the replay digest is derived from this. *)
type outcome = {
  o_protocol : string;
  o_events : int;  (** Schedule length. *)
  o_converged : bool;
  o_finals : (string * string) list;
      (** Final document per replica: ["server"] (when the protocol
          keeps a server replica), ["c1"].. for clients, ["p1"].. for
          peers. *)
  o_ots : int;
  o_metadata : int;
  o_convergence : bool;
  o_weak : bool;
  o_strong : bool;
  o_stats : (string * int) list;
      (** Network counters plus the fast-path counters. *)
  o_net : Rlist_net.Stats.t;
      (** The live counter record, for {!Rlist_net.Stats.pp} /
          [to_json]. *)
}

val protocol_names : string list

val is_p2p : string -> bool

(** Run one spec.  [obs] attaches the observability bundle to the
    engine and the wire (and publishes the network and fast-path
    counters into its metrics registry after the run); [recorder]
    attaches the flight recorder to both.  Raises [Invalid_argument]
    on an unknown protocol name, and propagates the engine's
    [Invalid_argument] when a shim-less run violates a channel
    contract. *)
val run : ?obs:Rlist_obs.Obs.t -> ?recorder:Recorder.t -> spec -> outcome

(** The soak gate: converged, convergence spec, and weak spec.  Strong
    violations are expected for the OT protocols (Thm 8.1) and do not
    fail a run. *)
val passed : outcome -> bool

(** Header key/value pairs stored in a recording: the full spec plus
    the recorder capacity (default {!Recorder.default_capacity}). *)
val header_of : ?capacity:int -> spec -> (string * string) list

(** Inverse of {!header_of}; missing keys take the soak defaults. *)
val spec_of_header : (string * string) list -> (spec, string) result

(** The outcome rendered as key/value pairs: verdicts, counters, and
    one ["final.<replica>"] entry per replica. *)
val digest_of : outcome -> (string * string) list

(** Run a spec with a fresh recorder attached. *)
val record :
  ?obs:Rlist_obs.Obs.t -> ?capacity:int -> spec -> outcome * Recorder.t

(** Dump a recorded run to [path] (see {!Recorder.dump}). *)
val save :
  spec:spec -> outcome:outcome -> capacity:int -> Recorder.t -> string -> unit

(** Replay verdict: the fresh outcome plus every digest mismatch
    [(key, expected, got)] and the first decision divergence
    [(index, expected, got)] if any. *)
type verdict = {
  v_spec : spec;
  v_outcome : outcome;
  v_total_expected : int;
  v_total_got : int;
  v_mismatches : (string * string * string) list;
  v_divergence : (int * string * string) option;
  v_ok : bool;
}

(** Re-execute a recording's spec and check the fresh run against the
    stored digest and decision window.  [Error] on a malformed
    header. *)
val verify :
  ?obs:Rlist_obs.Obs.t -> Recorder.recording -> (verdict, string) result

(** [verify] on a recording loaded from disk.  Raises
    [Recorder.Corrupt] / [Sys_error] as {!Recorder.load} does. *)
val replay : ?obs:Rlist_obs.Obs.t -> string -> (verdict, string) result

(** Reconstruct the engine schedule from a recording's decision stream
    for the ddmin shrinker.  [Error] when the ring wrapped (early
    decisions lost) or the recording is peer-to-peer. *)
val schedule_of_recording :
  Recorder.recording -> (Rlist_sim.Schedule.t, string) result
