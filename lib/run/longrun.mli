(** Long-horizon soak driver: millions of operations through one
    engine, sampled in chunks, to measure whether metadata and per-op
    latency stay flat under the continuous GC ({!Rlist_gc}) or grow
    without bound without it.

    The driver applies the workload in chunks of [chunk] updates; each
    chunk runs {!Rlist_sim.Engine.Make.run_timed} (which quiesces and
    reads once per client) on the {e same} engine, so state carries
    across the whole horizon while the RNG stream stays one
    deterministic sequence per seed.  The timed scheduler — not the
    random one — because a long random walk lets the unacked window
    (and with it the transform lattice) grow without bound, making
    per-op cost scale with the horizon; the latency model holds the
    in-flight window at its steady state ({!Rlist_workload.Workload.timed_params}).  The engine runs with
    [history:false] — the spec trace and behaviour list are the only
    engine structures that grow with the horizon regardless of GC, and
    a million-op soak cannot afford them.

    The only wall-clock this module sees is the [now] argument, so the
    library stays clock-free (determinism lint); callers pass
    [Unix.gettimeofday].  All measured numbers (metadata, heap,
    digest, GC accounting) are seed-deterministic; only the latency
    samples vary run to run. *)

type sample = {
  x_ops : int;  (** Cumulative updates applied after this chunk. *)
  x_us_per_op : float;  (** Mean wall µs per update over the chunk. *)
  x_meta : int;  (** Live protocol metadata after the chunk quiesced. *)
  x_heap_words : int;  (** [Stdlib.Gc.quick_stat].heap_words. *)
  x_gc_cycles : int;  (** Cumulative compaction cycles. *)
  x_reclaimed : int;  (** Cumulative reclaimed states + log entries. *)
  x_dedup_keys : int;  (** Live dedup keys across the channel shims. *)
}

type result = {
  l_protocol : string;
  l_profile : Rlist_workload.Workload.profile;
  l_updates : int;
  l_chunk : int;
  l_seed : int;
  l_gc : Rlist_gc.policy option;
  l_samples : sample list;  (** Oldest first, one per chunk. *)
  l_meta_peak : int;
  l_heap_peak : int;
  l_p50_us : float;  (** Median of the chunk means. *)
  l_p99_us : float;  (** 99th percentile of the chunk means. *)
  l_flat_meta : float;
      (** Mean live metadata over the last quarter of chunks divided
          by the mean over the first quarter — ~1 when flat, growing
          with the horizon when unbounded. *)
  l_flat_latency : float;  (** Same ratio for the latency samples. *)
  l_digest : string;
      (** Hex digest of the concatenated final documents — identical
          for GC-on and GC-off runs of the same spec (the
          transparency gate). *)
  l_converged : bool;
  l_gc_stats : Rlist_gc.stats option;
  l_elapsed_s : float;
}

(** [run ~now ~protocol ~profile ~nclients ~updates ~chunk ~seed ()]
    soaks a client/server protocol (same names as
    {!Recorded.protocol_names} minus the peer-to-peer ones).  [gc]
    enables the compaction policy; [faults] (default none) wires the
    fault-injected transport with the reliability shim on.
    @raise Invalid_argument on an unknown or peer-to-peer protocol,
    or non-positive [updates]/[chunk]. *)
val run :
  ?gc:Rlist_gc.policy ->
  ?faults:Rlist_net.Faults.spec ->
  now:(unit -> float) ->
  protocol:string ->
  profile:Rlist_workload.Workload.profile ->
  nclients:int ->
  updates:int ->
  chunk:int ->
  seed:int ->
  unit ->
  result

(** One-object JSON rendering (samples included), for
    [BENCH_longrun.json] and the CLI's [--json]. *)
val result_to_json : result -> string

val pp : Format.formatter -> result -> unit
