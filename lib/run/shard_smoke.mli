(** The two-domain smoke harness: the dynamic witness behind the
    escape pass's [shard_ready] verdict (DESIGN.md §15).

    Two independent documents run the same soak workload
    ({!Longrun.run}) under two seeds — once sequentially on the
    calling domain, once with each document pinned to a fresh
    [Domain].  The static analysis says every engine-reachable mutable
    allocation is stack- or instance-confined, so the two runs must
    produce identical digests; a mismatch (or a crash) means some
    state is shared across engine instances after all. *)

type result = {
  s_protocol : string;
  s_profile : Rlist_workload.Workload.profile;
  s_updates : int;
  s_seed_a : int;  (** seed of document A ([seed]) *)
  s_seed_b : int;  (** seed of document B ([seed + 1]) *)
  s_single : string * string;
      (** digests of A and B run sequentially on one domain *)
  s_sharded : string * string;
      (** digests of A and B run on one domain each *)
  s_equal : bool;  (** componentwise equality of the two pairs *)
}

(** [run ~now ~protocol ~profile ~nclients ~updates ~chunk ~seed ()]
    soaks both documents through {!Longrun.run} (same parameters and
    protocol names) and compares digests.  [now] is only used for
    latency sampling and never affects the digests; pass a constant
    function for a fully deterministic run.
    @raise Invalid_argument as {!Longrun.run}. *)
val run :
  ?gc:Rlist_gc.policy ->
  ?faults:Rlist_net.Faults.spec ->
  now:(unit -> float) ->
  protocol:string ->
  profile:Rlist_workload.Workload.profile ->
  nclients:int ->
  updates:int ->
  chunk:int ->
  seed:int ->
  unit ->
  result

(** One-object JSON rendering, for the CI artifact and [--json]. *)
val result_to_json : result -> string

val pp : Format.formatter -> result -> unit
