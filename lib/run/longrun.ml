(* See longrun.mli. *)

open Rlist_model
module Workload = Rlist_workload.Workload

type sample = {
  x_ops : int;
  x_us_per_op : float;
  x_meta : int;
  x_heap_words : int;
  x_gc_cycles : int;
  x_reclaimed : int;
  x_dedup_keys : int;
}

type result = {
  l_protocol : string;
  l_profile : Workload.profile;
  l_updates : int;
  l_chunk : int;
  l_seed : int;
  l_gc : Rlist_gc.policy option;
  l_samples : sample list;
  l_meta_peak : int;
  l_heap_peak : int;
  l_p50_us : float;
  l_p99_us : float;
  l_flat_meta : float;
  l_flat_latency : float;
  l_digest : string;
  l_converged : bool;
  l_gc_stats : Rlist_gc.stats option;
  l_elapsed_s : float;
}

let percentile sorted q =
  match Array.length sorted with
  | 0 -> 0.
  | n ->
    let i = int_of_float (Float.of_int (n - 1) *. q) in
    sorted.(min (n - 1) (max 0 i))

(* Mean of the last quarter over mean of the first quarter — the
   flatness ratio both the CLI gate and the C18 bench report.  A
   bounded curve hovers near 1; unbounded growth scales with the
   horizon.  With fewer than 4 samples the ratio degenerates to
   last/first. *)
let flatness values =
  match values with
  | [] | [ _ ] -> 1.
  | _ ->
    let arr = Array.of_list values in
    let n = Array.length arr in
    let quarter = max 1 (n / 4) in
    let mean lo hi =
      let sum = ref 0. in
      for i = lo to hi - 1 do
        sum := !sum +. arr.(i)
      done;
      !sum /. Float.of_int (hi - lo)
    in
    let early = mean 0 quarter in
    let late = mean (n - quarter) n in
    if early <= 0. then 1. else late /. early

let run_cs (type c s c2s s2c)
    (module P : Rlist_sim.Protocol_intf.PROTOCOL
      with type client = c
       and type server = s
       and type c2s = c2s
       and type s2c = s2c) ?gc ~faults ~now ~profile ~nclients ~updates
    ~chunk ~seed () =
  let module E = Rlist_sim.Engine.Make (P) in
  (* The shim's retransmission timer counts ticks, and the timed driver
     ticks once per agenda event — about [nclients + 2] of those per
     update (one generation, one server delivery, one broadcast arrival
     per client).  An rto near the per-op event count retransmits
     perfectly healthy in-flight messages (the exponential latency tail
     regularly exceeds it); every duplicate occupies an arrival slot and
     pushes real deliveries further out through the per-channel FIFO
     stamp, which expires more timers — a retransmission storm that
     grows the in-flight window (and the transform lattice) linearly
     with the horizon.  Ten op-intervals of headroom keeps spurious
     retransmissions out of a fault-free soak while still recovering
     promptly when a fault model actually drops messages. *)
  let rto = 10 * (nclients + 2) in
  let net = Rlist_net.Transport.config ~shim:true ~rto ~faults ~seed () in
  let t = E.create ~net ?gc ~history:false ~nclients () in
  let rng = Random.State.make [| seed |] in
  let intent = Workload.intent_generator profile ~nclients ~rng in
  let samples = ref [] in
  let applied = ref 0 in
  let meta_peak = ref 0 in
  let heap_peak = ref 0 in
  let started = now () in
  while !applied < updates do
    let todo = min chunk (updates - !applied) in
    (* The timed scheduler, not the random one: a long random walk
       lets the unacked window — and with it the transform lattice —
       grow without bound, so per-op cost would scale with the
       horizon.  The latency model keeps the in-flight window at its
       steady state no matter how many ops flow. *)
    let params = Workload.timed_params profile ~nclients ~updates:todo in
    let t0 = now () in
    ignore (E.run_timed ~intent t ~rng ~params);
    let dt = now () -. t0 in
    applied := !applied + todo;
    let meta = E.total_metadata_size t in
    let heap = (Stdlib.Gc.quick_stat ()).Stdlib.Gc.heap_words in
    if meta > !meta_peak then meta_peak := meta;
    if heap > !heap_peak then heap_peak := heap;
    let gc_cycles, reclaimed =
      match E.gc_stats t with
      | None -> 0, 0
      | Some s ->
        ( s.Rlist_gc.cycles,
          s.Rlist_gc.reclaimed_states + s.Rlist_gc.reclaimed_log
          + s.Rlist_gc.reclaimed_keys )
    in
    samples :=
      {
        x_ops = !applied;
        x_us_per_op = dt *. 1e6 /. Float.of_int todo;
        x_meta = meta;
        x_heap_words = heap;
        x_gc_cycles = gc_cycles;
        x_reclaimed = reclaimed;
        x_dedup_keys = E.dedup_keys t;
      }
      :: !samples
  done;
  let elapsed = now () -. started in
  let samples = List.rev !samples in
  let finals =
    (if P.server_is_replica then
       [ Document.to_string (E.server_document t) ]
     else [])
    @ List.init nclients (fun i ->
          Document.to_string (E.client_document t (i + 1)))
  in
  let latencies = List.map (fun s -> s.x_us_per_op) samples in
  let sorted = Array.of_list latencies in
  Array.sort Float.compare sorted;
  {
    l_protocol = P.name;
    l_profile = profile;
    l_updates = updates;
    l_chunk = chunk;
    l_seed = seed;
    l_gc = gc;
    l_samples = samples;
    l_meta_peak = !meta_peak;
    l_heap_peak = !heap_peak;
    l_p50_us = percentile sorted 0.5;
    l_p99_us = percentile sorted 0.99;
    l_flat_meta =
      flatness (List.map (fun s -> Float.of_int s.x_meta) samples);
    l_flat_latency = flatness latencies;
    l_digest = Digest.to_hex (Digest.string (String.concat "\x00" finals));
    l_converged = E.converged t;
    l_gc_stats = E.gc_stats t;
    l_elapsed_s = elapsed;
  }

let run ?gc ?(faults = Rlist_net.Faults.none) ~now ~protocol ~profile
    ~nclients ~updates ~chunk ~seed () =
  if updates < 1 then invalid_arg "Longrun.run: need updates >= 1";
  if chunk < 1 then invalid_arg "Longrun.run: need chunk >= 1";
  let go p = run_cs p ?gc ~faults ~now ~profile ~nclients ~updates ~chunk ~seed () in
  match protocol with
  | "css" -> go (module Jupiter_css.Protocol)
  | "cscw" -> go (module Jupiter_cscw.Protocol)
  | "rga" -> go (module Jupiter_rga.Protocol)
  | "naive" -> go (module Jupiter_cscw.Naive_p2p)
  | "css-pruned" -> go (module Jupiter_css.Pruned_protocol)
  | "logoot" -> go (module Jupiter_logoot.Protocol)
  | "css-seq" -> go (module Jupiter_css.Sequencer_protocol)
  | "treedoc" -> go (module Jupiter_treedoc.Protocol)
  | "css-p2p" | "ttf" ->
    invalid_arg "Longrun.run: peer-to-peer protocols are not soakable here"
  | other ->
    invalid_arg (Printf.sprintf "Longrun.run: unknown protocol %S" other)

let result_to_json r =
  let b = Buffer.create 4096 in
  Printf.bprintf b
    "{\"protocol\": %S, \"profile\": %S, \"updates\": %d, \"chunk\": %d, \
     \"seed\": %d, \"gc\": %s, \"meta_peak\": %d, \"heap_peak_words\": %d, \
     \"p50_us_per_op\": %.3f, \"p99_us_per_op\": %.3f, \"flat_meta\": %.3f, \
     \"flat_latency\": %.3f, \"digest\": %S, \"converged\": %b, \
     \"elapsed_s\": %.3f"
    r.l_protocol
    (Workload.profile_name r.l_profile)
    r.l_updates r.l_chunk r.l_seed
    (match r.l_gc with
    | None -> "null"
    | Some p -> Printf.sprintf "%S" (Rlist_gc.to_string p))
    r.l_meta_peak r.l_heap_peak r.l_p50_us r.l_p99_us r.l_flat_meta
    r.l_flat_latency r.l_digest r.l_converged r.l_elapsed_s;
  (match r.l_gc_stats with
  | None -> ()
  | Some s ->
    Buffer.add_string b ", \"gc_stats\": {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ", ";
        Printf.bprintf b "%S: %d" k v)
      (Rlist_gc.stats_fields s);
    Buffer.add_char b '}');
  Buffer.add_string b ", \"samples\": [";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b
        "{\"ops\": %d, \"us_per_op\": %.3f, \"meta\": %d, \"heap_words\": \
         %d, \"gc_cycles\": %d, \"reclaimed\": %d, \"dedup_keys\": %d}"
        s.x_ops s.x_us_per_op s.x_meta s.x_heap_words s.x_gc_cycles
        s.x_reclaimed s.x_dedup_keys)
    r.l_samples;
  Buffer.add_string b "]}";
  Buffer.contents b

let pp ppf r =
  Format.fprintf ppf
    "@[<v>%s/%s: %d ops (chunks of %d, seed %d)%s@,\
     converged:   %b@,\
     digest:      %s@,\
     meta peak:   %d (flatness %.2f)@,\
     heap peak:   %d words@,\
     latency:     p50 %.2f us/op, p99 %.2f us/op (flatness %.2f)@,\
     elapsed:     %.1fs"
    r.l_protocol
    (Workload.profile_name r.l_profile)
    r.l_updates r.l_chunk r.l_seed
    (match r.l_gc with
    | None -> ", gc off"
    | Some p -> Printf.sprintf ", gc %s" (Rlist_gc.to_string p))
    r.l_converged r.l_digest r.l_meta_peak r.l_flat_meta r.l_heap_peak
    r.l_p50_us r.l_p99_us r.l_flat_latency r.l_elapsed_s;
  (match r.l_gc_stats with
  | None -> ()
  | Some s ->
    Format.fprintf ppf "@,gc:          ";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Format.fprintf ppf ", ";
        Format.fprintf ppf "%s %d" k v)
      (Rlist_gc.stats_fields s));
  Format.fprintf ppf "@]"
