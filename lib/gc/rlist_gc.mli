(** Continuous metadata garbage collection: the compaction policy and
    the per-run driver bookkeeping.

    The paper names metadata overhead as Jupiter's open problem: the
    n-ary ordered state space, the server's serialization log, and the
    reliability shim's dedup tables all grow without bound over an
    unbounded execution.  The pieces that bound each of them exist —
    [Pruned_protocol] rebases the space onto the acked-stable frontier
    with [State_space.compact], [Snapshot] serializes the stable
    document, and the shim ack-prunes its retransmission buffer — but a
    *discipline* has to decide when to run them.  This module is that
    discipline: a declarative {!policy} (which triggers fire, how much
    dedup history to retain, how often to snapshot) and a {!Driver}
    that owns the trigger state and the reclaimed-metadata counters.

    The module is deliberately dependency-free: the engines in
    [lib/sim] consume it, the CLI parses it, and recording headers
    round-trip it through {!to_string}/{!of_string}, so it must sit
    below all of them.

    Determinism contract: a GC cycle is driven entirely by simulation
    state (op counts, metadata sizes, ack lag) — never by wall-clock
    time or randomness — and the engines run cycles *out of band*
    (direct protocol calls on empty channels, no transport sends, no
    RNG draws).  Two runs of the same seed with GC on and off therefore
    produce bit-identical schedules, behaviours, and final documents;
    the GC-on run just carries less metadata.  [test/test_gc.ml] holds
    this differentially over ~300 seeded workloads. *)

(** When to start a compaction cycle.  A policy may carry several
    triggers; a cycle starts as soon as any of them fires. *)
type trigger =
  | Every_ops of int
      (** after every [n] list operations applied anywhere in the
          system (generates and op-bearing deliveries both count) *)
  | Metadata_above of int
      (** whenever the total live metadata (summed state-space sizes)
          exceeds [n] nodes *)
  | Ack_lag of int
      (** whenever the server's serialization log runs more than [n]
          serials ahead of the stable frontier *)

type policy = {
  triggers : trigger list;
  retain_keys : int;
      (** how many most-recently-delivered dedup keys each shim
          receiver keeps when pruning; the window must cover the
          checkpoint lag (a restored receiver replays keys from its
          last checkpoint) *)
  snapshot_every : int;
      (** take a stable snapshot every [n]-th cycle; [0] disables
          snapshotting *)
}

val default : policy
(** [Every_ops 64], [retain_keys = 64], [snapshot_every = 4]. *)

val trigger_name : trigger -> string
(** ["ops=64"], ["meta=4096"], ["lag=256"] — also the concrete syntax
    accepted by {!of_string}. *)

val to_string : policy -> string
(** Canonical comma-separated form, e.g. ["ops=64,retain=64,snap=4"].
    Round-trips through {!of_string}; recording headers store this. *)

val of_string : string -> (policy, string) result
(** Parse ["ops=N" | "meta=N" | "lag=N" | "retain=N" | "snap=N"]
    comma-separated, any order; unset fields take {!default}'s values,
    but at least one trigger must be given.  ["default"] is accepted
    as a synonym for {!default}. *)

val pp : Format.formatter -> policy -> unit

(** Cumulative per-run GC accounting.  None of these feed verdicts,
    digests, or recorded decisions — the GC-on/GC-off digest-equality
    gate depends on that. *)
type stats = {
  cycles : int;
  reclaimed_states : int;  (** state-space nodes freed by compaction *)
  reclaimed_log : int;  (** serialization-log (WAL) entries truncated *)
  reclaimed_keys : int;  (** shim dedup keys pruned *)
  heartbeats : int;  (** out-of-band heartbeats injected *)
  skipped_heartbeats : int;
      (** clients whose c2s channel was busy — their ack rides the
          next in-band update instead *)
  stables_delivered : int;
  skipped_stables : int;
      (** clients whose s2c channel was busy — their prune lags until
          a later cycle *)
  snapshots : int;
  last_snapshot_bytes : int;
  meta_peak : int;  (** high-water mark of live metadata seen at cycles *)
}

val stats_fields : stats -> (string * int) list
(** Stable field-name/value pairs, for JSON rendering and reports. *)

(** The mutable per-run trigger state and counters.  One driver per
    engine; the engine consults {!Driver.due} after every applied
    event and brackets each cycle with {!Driver.begin_cycle} /
    {!Driver.end_cycle}. *)
module Driver : sig
  type t

  val create : policy -> t
  val policy : t -> policy

  val note_ops : t -> int -> unit
  (** Count [n] list operations toward the [Every_ops] trigger. *)

  val due : t -> meta:int -> lag:int -> trigger option
  (** The first firing trigger, if any.  [meta] is the system's total
      live metadata, [lag] the server's serial-past-stable distance.
      Pure with respect to simulation state: no clock, no RNG. *)

  val begin_cycle : t -> trigger -> int
  (** Start a cycle; returns its 1-based index and resets the
      [Every_ops] counter. *)

  val note_heartbeat : t -> unit
  val note_skipped_heartbeat : t -> unit
  val note_stable : t -> unit
  val note_skipped_stable : t -> unit

  val snapshot_due : t -> bool
  (** Whether the cycle being finished should take a snapshot: every
      [snapshot_every]-th cycle, {e and} only once enough operations
      have passed since the previous snapshot to pay for its size (64
      serialized bytes of budget per operation).  Snapshots cost
      O(document), and the document grows with the edit history, so
      without the amortization a fixed cadence would make per-op
      latency grow with the horizon.  Deterministic: a pure function
      of the op and cycle counts. *)

  val end_cycle :
    t ->
    reclaimed_states:int ->
    reclaimed_log:int ->
    reclaimed_keys:int ->
    snapshot_bytes:int option ->
    meta:int ->
    unit

  val stats : t -> stats
end
