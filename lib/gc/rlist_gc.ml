type trigger =
  | Every_ops of int
  | Metadata_above of int
  | Ack_lag of int

type policy = {
  triggers : trigger list;
  retain_keys : int;
  snapshot_every : int;
}

let default =
  { triggers = [ Every_ops 64 ]; retain_keys = 64; snapshot_every = 4 }

let trigger_name = function
  | Every_ops n -> Printf.sprintf "ops=%d" n
  | Metadata_above n -> Printf.sprintf "meta=%d" n
  | Ack_lag n -> Printf.sprintf "lag=%d" n

let to_string p =
  let fields =
    List.map trigger_name p.triggers
    @ [
        Printf.sprintf "retain=%d" p.retain_keys;
        Printf.sprintf "snap=%d" p.snapshot_every;
      ]
  in
  String.concat "," fields

let of_string s =
  let s = String.trim s in
  if s = "default" then Ok default
  else begin
    let fields = String.split_on_char ',' s in
    let parse acc field =
      match acc with
      | Error _ as e -> e
      | Ok (triggers, retain, snap) -> (
        match String.index_opt field '=' with
        | None -> Error (Printf.sprintf "gc policy: expected key=value in %S" field)
        | Some i -> (
          let key = String.sub field 0 i in
          let value = String.sub field (i + 1) (String.length field - i - 1) in
          match int_of_string_opt (String.trim value) with
          | None ->
            Error (Printf.sprintf "gc policy: %S is not an integer" value)
          | Some n when n < 0 ->
            Error (Printf.sprintf "gc policy: %s must be non-negative" key)
          | Some n -> (
            match String.trim key with
            | "ops" when n > 0 -> Ok (Every_ops n :: triggers, retain, snap)
            | "meta" when n > 0 -> Ok (Metadata_above n :: triggers, retain, snap)
            | "lag" when n > 0 -> Ok (Ack_lag n :: triggers, retain, snap)
            | ("ops" | "meta" | "lag") as k ->
              Error (Printf.sprintf "gc policy: %s must be positive" k)
            | "retain" -> Ok (triggers, Some n, snap)
            | "snap" -> Ok (triggers, retain, Some n)
            | k -> Error (Printf.sprintf "gc policy: unknown key %S" k))))
    in
    match List.fold_left parse (Ok ([], None, None)) fields with
    | Error _ as e -> e
    | Ok ([], _, _) ->
      Error "gc policy: at least one trigger (ops=/meta=/lag=) is required"
    | Ok (triggers, retain, snap) ->
      Ok
        {
          triggers = List.rev triggers;
          retain_keys = Option.value retain ~default:default.retain_keys;
          snapshot_every = Option.value snap ~default:default.snapshot_every;
        }
  end

let pp ppf p = Format.pp_print_string ppf (to_string p)

type stats = {
  cycles : int;
  reclaimed_states : int;
  reclaimed_log : int;
  reclaimed_keys : int;
  heartbeats : int;
  skipped_heartbeats : int;
  stables_delivered : int;
  skipped_stables : int;
  snapshots : int;
  last_snapshot_bytes : int;
  meta_peak : int;
}

let stats_fields s =
  [
    "cycles", s.cycles;
    "reclaimed_states", s.reclaimed_states;
    "reclaimed_log", s.reclaimed_log;
    "reclaimed_keys", s.reclaimed_keys;
    "heartbeats", s.heartbeats;
    "skipped_heartbeats", s.skipped_heartbeats;
    "stables_delivered", s.stables_delivered;
    "skipped_stables", s.skipped_stables;
    "snapshots", s.snapshots;
    "last_snapshot_bytes", s.last_snapshot_bytes;
    "meta_peak", s.meta_peak;
  ]

module Driver = struct
  type t = {
    d_policy : policy;
    mutable ops_since : int;
    mutable ops_since_snapshot : int;
    mutable in_cycle : bool;
    mutable s : stats;
  }

  let zero_stats =
    {
      cycles = 0;
      reclaimed_states = 0;
      reclaimed_log = 0;
      reclaimed_keys = 0;
      heartbeats = 0;
      skipped_heartbeats = 0;
      stables_delivered = 0;
      skipped_stables = 0;
      snapshots = 0;
      last_snapshot_bytes = 0;
      meta_peak = 0;
    }

  let create policy =
    {
      d_policy = policy;
      ops_since = 0;
      ops_since_snapshot = 0;
      in_cycle = false;
      s = zero_stats;
    }

  let policy t = t.d_policy

  let note_ops t n =
    t.ops_since <- t.ops_since + n;
    t.ops_since_snapshot <- t.ops_since_snapshot + n

  let due t ~meta ~lag =
    if t.in_cycle then None
    else
      List.find_opt
        (function
          | Every_ops n -> t.ops_since >= n
          | Metadata_above n -> meta > n
          | Ack_lag n -> lag > n)
        t.d_policy.triggers

  let begin_cycle t _trigger =
    t.in_cycle <- true;
    t.ops_since <- 0;
    t.s <- { t.s with cycles = t.s.cycles + 1 };
    t.s.cycles

  let note_heartbeat t = t.s <- { t.s with heartbeats = t.s.heartbeats + 1 }

  let note_skipped_heartbeat t =
    t.s <- { t.s with skipped_heartbeats = t.s.skipped_heartbeats + 1 }

  let note_stable t =
    t.s <- { t.s with stables_delivered = t.s.stables_delivered + 1 }

  let note_skipped_stable t =
    t.s <- { t.s with skipped_stables = t.s.skipped_stables + 1 }

  (* Serialization budget per operation: a snapshot of [b] bytes is
     only taken once [b / snapshot_byte_budget] operations have passed
     since the previous one.  Snapshot cost is proportional to the
     live {e document} (which legitimately grows with the edit
     history), so a fixed cycle cadence would make the amortized
     per-op cost grow with the horizon — the amortization keeps it a
     constant, the same log-vs-state tradeoff that gates compaction in
     Raft-style systems. *)
  let snapshot_byte_budget = 64

  let snapshot_due t =
    t.d_policy.snapshot_every > 0
    && t.s.cycles mod t.d_policy.snapshot_every = 0
    && t.ops_since_snapshot * snapshot_byte_budget >= t.s.last_snapshot_bytes

  let end_cycle t ~reclaimed_states ~reclaimed_log ~reclaimed_keys
      ~snapshot_bytes ~meta =
    t.in_cycle <- false;
    let snapshots, last_snapshot_bytes =
      match snapshot_bytes with
      | None -> t.s.snapshots, t.s.last_snapshot_bytes
      | Some bytes ->
        t.ops_since_snapshot <- 0;
        t.s.snapshots + 1, bytes
    in
    t.s <-
      {
        t.s with
        reclaimed_states = t.s.reclaimed_states + reclaimed_states;
        reclaimed_log = t.s.reclaimed_log + reclaimed_log;
        reclaimed_keys = t.s.reclaimed_keys + reclaimed_keys;
        snapshots;
        last_snapshot_bytes;
        meta_peak = max t.s.meta_peak meta;
      }

  let stats t = t.s
end
