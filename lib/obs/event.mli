(** Typed structured trace events.

    One constructor per instrumented point of the replication stack:
    operation generation, message send/delivery, operational
    transformation, document application, and state-space growth.
    Events carry only plain values (replica labels, rendered operation
    identifiers, queue depths, byte estimates) so this module depends
    on nothing and every layer above can emit into it.

    The JSONL rendering ({!to_jsonl}) is one self-contained JSON
    object per event — the format consumed by [jupiter_sim trace] and
    by any log-processing pipeline. *)

(** A replica label: ["server"], ["c3"], ["p2"], ... *)
type replica = string

type t =
  | Generate of {
      replica : replica;
      op_id : string option;  (** [None] for reads. *)
      intent : string;  (** ["ins"], ["del"], or ["read"]. *)
      queue : int;  (** Outbound channel depth after enqueueing. *)
    }
  | Send of {
      src : replica;
      dst : replica;
      op_id : string option;
      bytes : int;  (** Estimated payload size of the message. *)
      queue : int;  (** Destination channel depth after enqueueing. *)
    }
  | Deliver of {
      replica : replica;  (** The receiving replica. *)
      src : replica;
      op_id : string option;
      transforms : int;  (** Primitive OT calls this delivery caused. *)
      queue : int;  (** Source channel depth after dequeueing. *)
    }
  | Transform of {
      replica : replica;
      count : int;  (** Primitive OT calls in this batch. *)
    }
  | Apply of {
      replica : replica;
      op_id : string option;
      doc_len : int;  (** Document length after application. *)
    }
  | State_space_grow of {
      replica : replica;
      level : int;  (** Operations in the final state after growth. *)
      states : int;  (** Total states after growth. *)
      transitions : int;  (** Total transitions after growth. *)
    }
  | Span of {
      name : string;
      dur_ns : float;
    }

(** The event's type tag as it appears in the JSON ([generate],
    [send], [deliver], [transform], [apply], [state_space_grow],
    [span]). *)
val kind : t -> string

(** [to_jsonl ~seq e] renders one JSON object (no trailing newline);
    [seq] is the event's position in the trace. *)
val to_jsonl : seq:int -> t -> string

val pp : Format.formatter -> t -> unit
