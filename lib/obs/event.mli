(** Typed structured trace events.

    One constructor per instrumented point of the replication stack:
    operation generation, message send/delivery, wire-level fault
    incidents, operational transformation, document application, and
    state-space growth.  Events carry only plain values (replica
    labels, rendered operation identifiers, queue depths, byte
    estimates, virtual-clock ticks) so this module depends on nothing
    and every layer above can emit into it.

    The JSONL rendering ({!to_jsonl}) is one self-contained JSON
    object per event — the format consumed by [jupiter_sim trace] and
    [jupiter_sim report]; {!of_jsonl} decodes it back, which is what
    lets the offline analyzer consume a trace file without replaying
    the run that produced it. *)

(** A replica label: ["server"], ["c3"], ["p2"], ... *)
type replica = string

type t =
  | Generate of {
      replica : replica;
      op_id : string option;  (** [None] for reads. *)
      intent : string;  (** ["ins"], ["del"], or ["read"]. *)
      queue : int;  (** Outbound channel depth after enqueueing. *)
      tick : int;  (** Virtual clock at the origin replica. *)
    }
  | Send of {
      src : replica;
      dst : replica;
      op_id : string option;
      bytes : int;  (** Estimated payload size of the message. *)
      queue : int;  (** Destination channel depth after enqueueing. *)
      tick : int;
    }
  | Deliver of {
      replica : replica;  (** The receiving replica. *)
      src : replica;
      op_id : string option;
      transforms : int;  (** Primitive OT calls this delivery caused. *)
      queue : int;  (** Source channel depth after dequeueing. *)
      tick : int;
    }
  | Transform of {
      replica : replica;
      count : int;  (** Primitive OT calls in this batch. *)
    }
  | Apply of {
      replica : replica;
      op_id : string option;
      doc_len : int;  (** Document length after application. *)
      tick : int;
    }
  | Wire of {
      channel : string;  (** Channel label, e.g. ["c1->server"]. *)
      action : string;
          (** One of ["drop"], ["partition_drop"], ["dup"], ["delay"],
              ["retransmit"], ["ack"], ["ack_drop"], ["dup_drop"],
              ["ooo"]. *)
      wseq : int;  (** The shim sequence number involved. *)
      info : int;
          (** Action-specific detail: jitter ticks for ["delay"],
              attempt count for ["retransmit"], otherwise [0]. *)
      tick : int;  (** The channel's virtual clock. *)
    }
  | State_space_grow of {
      replica : replica;
      level : int;  (** Operations in the final state after growth. *)
      states : int;  (** Total states after growth. *)
      transitions : int;  (** Total transitions after growth. *)
    }
  | Span of {
      name : string;
      dur_ns : float;
    }
  | Gc_begin of {
      cycle : int;  (** 1-based compaction-cycle index. *)
      trigger : string;  (** The fired trigger, e.g. ["ops=64"]. *)
      meta : int;  (** Total live metadata when the cycle started. *)
      tick : int;
    }
  | Gc_end of {
      cycle : int;
      reclaimed_states : int;  (** State-space nodes freed. *)
      reclaimed_log : int;  (** Serialization-log entries truncated. *)
      reclaimed_keys : int;  (** Shim dedup keys pruned. *)
      meta : int;  (** Total live metadata after the cycle. *)
      snapshot_bytes : int;  (** [0] when no snapshot was taken. *)
      skipped : int;
          (** Busy channels the cycle declined to touch (their
              pruning lags until a later cycle). *)
      tick : int;
    }

(** The event's type tag as it appears in the JSON ([generate],
    [send], [deliver], [transform], [apply], [wire],
    [state_space_grow], [span], [gc_begin], [gc_end]). *)
val kind : t -> string

(** The operation identifier the event concerns, when it carries one.
    Batched sends/delivers join member ids with ['+']. *)
val op_id : t -> string option

(** The virtual-clock stamp, for the event kinds that carry one. *)
val tick : t -> int option

(** JSON string escaping, shared with the other renderers in this
    library. *)
val escape : string -> string

(** [to_jsonl ~seq e] renders one JSON object (no trailing newline);
    [seq] is the event's position in the trace. *)
val to_jsonl : seq:int -> t -> string

(** [of_jsonl line] decodes one trace line back into its sequence
    number and event.  Returns [None] on anything that is not a trace
    event (summary lines, blank lines, unknown types) — the analyzer
    skips those. *)
val of_jsonl : string -> (int * t) option

val pp : Format.formatter -> t -> unit
