(** Causal op spans: the offline trace analyzer.

    A span stitches the op-id-keyed trace events back into one
    operation's lifecycle — generation at its origin, every (possibly
    batched) send it rode on, the transform work each delivery charged
    to it, and its application at each replica — stamped with the
    per-channel virtual clock.  Batched payloads join member op ids
    with ['+']; the span builder splits them back apart, so batched
    and unbatched runs yield the same per-op view (a batch's transform
    cost is shared evenly across its members).

    {!summarize} derives the first-class metrics the tentpole asks
    for: convergence lag (generation at the origin to application at
    the {e last} replica), per-replica staleness, per-op transform
    attribution, wire-incident totals and amplification, and a
    retransmission timeline.  Runs over perfect channels never advance
    a virtual clock, so the summary falls back from tick lag to
    trace-position lag and says which unit it used. *)

type span = {
  sp_op : string;
  sp_origin : string option;  (** Generating replica, when observed. *)
  sp_gen_tick : int;  (** [-1] when generation was not observed. *)
  sp_gen_index : int;  (** Trace position of the generate event. *)
  sp_sends : int;  (** Send events carrying this op. *)
  sp_batched_sends : int;  (** Of those, sends sharing a batch payload. *)
  sp_transforms : float;  (** Transform cost attributed to this op. *)
  sp_applies : (string * int * int) list;
      (** (replica, tick, trace position) of the first application at
          each replica, in application order. *)
}

type summary = {
  su_events : int;
  su_ops : int;
  su_replicas : string list;
  su_incomplete : int;  (** Ops generated but never applied anywhere. *)
  su_lag_unit : string;  (** ["ticks"] or ["events"]. *)
  su_lag_p50 : float;
  su_lag_p90 : float;
  su_lag_p99 : float;
  su_lag_max : float;
  su_staleness : (string * float * float) list;
      (** Per replica: mean and max lag from generation to local
          application. *)
  su_transforms_total : int;
  su_tf_p50 : float;
  su_tf_p90 : float;
  su_tf_max : float;
  su_sends : int;
  su_wire : (string * int) list;  (** Wire incidents by action. *)
  su_amplification : float;  (** (sends + retransmits) / sends. *)
  su_timeline : (int * int * int) list;
      (** (bucket start tick, retransmits, drops) — at most 20 buckets. *)
  su_gc_cycles : int;  (** Compaction cycles seen in the trace. *)
  su_gc_reclaimed : int;
      (** Metadata reclaimed across those cycles: state-space nodes +
          truncated log entries + pruned dedup keys (from the
          [gc_end] events). *)
  su_gc_skipped : int;
      (** Busy-channel heartbeats/stables the cycles skipped. *)
}

(** Build the per-op spans of a trace, in first-appearance order. *)
val build : Event.t list -> span list

val summarize : Event.t list -> summary

val pp_summary : Format.formatter -> summary -> unit

val summary_to_json : summary -> string
