(* See sink.mli. *)

type target =
  | Null
  | Memory of Event.t list ref  (* reversed *)
  | Channel of out_channel

type t = {
  target : target;
  mutable seq : int;
}

let null = { target = Null; seq = 0 }

let memory () = { target = Memory (ref []); seq = 0 }

let channel oc = { target = Channel oc; seq = 0 }

let enabled t =
  match t.target with
  | Null -> false
  | Memory _ | Channel _ -> true

let emit t e =
  match t.target with
  | Null -> ()
  | Memory events ->
    events := e :: !events;
    t.seq <- t.seq + 1
  | Channel oc ->
    output_string oc (Event.to_jsonl ~seq:t.seq e);
    output_char oc '\n';
    t.seq <- t.seq + 1

let events t =
  match t.target with
  | Null | Channel _ -> []
  | Memory events -> List.rev !events

let count t = t.seq
