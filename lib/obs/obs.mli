(** The observability bundle: one metrics registry plus one trace
    sink, handed to an engine with [Engine.attach_obs].

    Typical wiring:
    {[
      let obs = Obs.make ~sink:(Obs.Sink.memory ()) () in
      let t = E.create ~nclients:4 () in
      E.attach_obs t obs;
      E.run t schedule;
      Format.printf "%a@." Obs.report obs
    ]}

    With no sink ({!make} without [?sink]) the bundle still counts —
    metrics are cheap — while the trace path stays disabled. *)

module Metrics = Metrics
module Event = Event
module Sink = Sink
module Recorder = Recorder
module Spans = Spans

type t = {
  metrics : Metrics.t;
  sink : Sink.t;
}

val make : ?sink:Sink.t -> unit -> t

(** Whether the sink records events; engines guard event construction
    behind this. *)
val tracing : t -> bool

val emit : t -> Event.t -> unit

(** [count_kind events kind] — occurrences of an event kind in a
    recorded trace (see {!Event.kind}). *)
val count_kind : Event.t list -> string -> int

(** Sum of the [transforms] fields over the [deliver] events of a
    recorded trace. *)
val sum_deliver_transforms : Event.t list -> int

(** Human-readable report over the metrics registry. *)
val report : Format.formatter -> t -> unit

(** The metrics registry as one JSON object. *)
val metrics_json : t -> string
