(* See spans.mli. *)

type span = {
  sp_op : string;
  sp_origin : string option;
  sp_gen_tick : int;
  sp_gen_index : int;
  sp_sends : int;
  sp_batched_sends : int;
  sp_transforms : float;
  sp_applies : (string * int * int) list;
}

type summary = {
  su_events : int;
  su_ops : int;
  su_replicas : string list;
  su_incomplete : int;
  su_lag_unit : string;
  su_lag_p50 : float;
  su_lag_p90 : float;
  su_lag_p99 : float;
  su_lag_max : float;
  su_staleness : (string * float * float) list;
  su_transforms_total : int;
  su_tf_p50 : float;
  su_tf_p90 : float;
  su_tf_max : float;
  su_sends : int;
  su_wire : (string * int) list;
  su_amplification : float;
  su_timeline : (int * int * int) list;
  su_gc_cycles : int;
  su_gc_reclaimed : int;
  su_gc_skipped : int;
}

let split_ids id = String.split_on_char '+' id

(* Per-op accumulator.  Ops are keyed by their rendered identifier;
   an ordered list keeps output deterministic without iterating the
   table. *)
type acc = {
  mutable a_origin : string option;
  mutable a_gen_tick : int;
  mutable a_gen_index : int;
  mutable a_sends : int;
  mutable a_batched : int;
  mutable a_transforms : float;
  mutable a_applies : (string * int * int) list;  (* newest first *)
}

let build events =
  let tbl : (string, acc) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let get id =
    match Hashtbl.find_opt tbl id with
    | Some a -> a
    | None ->
      let a =
        {
          a_origin = None;
          a_gen_tick = -1;
          a_gen_index = -1;
          a_sends = 0;
          a_batched = 0;
          a_transforms = 0.0;
          a_applies = [];
        }
      in
      Hashtbl.add tbl id a;
      order := id :: !order;
      a
  in
  List.iteri
    (fun index e ->
      match e with
      | Event.Generate { replica; op_id = Some id; tick; _ } ->
        let a = get id in
        a.a_origin <- Some replica;
        a.a_gen_tick <- tick;
        a.a_gen_index <- index
      | Event.Send { op_id = Some id; _ } ->
        let members = split_ids id in
        let batched = List.length members > 1 in
        List.iter
          (fun m ->
            let a = get m in
            a.a_sends <- a.a_sends + 1;
            if batched then a.a_batched <- a.a_batched + 1)
          members
      | Event.Deliver { op_id = Some id; transforms; _ } ->
        let members = split_ids id in
        let share = float_of_int transforms /. float_of_int (List.length members) in
        List.iter (fun m -> (get m).a_transforms <- (get m).a_transforms +. share) members
      | Event.Apply { replica; op_id = Some id; tick; _ } ->
        let members = split_ids id in
        List.iter
          (fun m ->
            let a = get m in
            if not (List.exists (fun (r, _, _) -> String.equal r replica) a.a_applies)
            then a.a_applies <- (replica, tick, index) :: a.a_applies)
          members
      | _ -> ())
    events;
  List.rev_map
    (fun id ->
      let a = Hashtbl.find tbl id in
      {
        sp_op = id;
        sp_origin = a.a_origin;
        sp_gen_tick = a.a_gen_tick;
        sp_gen_index = a.a_gen_index;
        sp_sends = a.a_sends;
        sp_batched_sends = a.a_batched;
        sp_transforms = a.a_transforms;
        sp_applies = List.rev a.a_applies;
      })
    !order

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize events =
  let spans = build events in
  let replicas = ref [] in
  let note_replica r =
    if not (List.exists (String.equal r) !replicas) then
      replicas := r :: !replicas
  in
  List.iter
    (fun e ->
      match e with
      | Event.Generate { replica; _ }
      | Event.Apply { replica; _ }
      | Event.Deliver { replica; _ } ->
        note_replica replica
      | _ -> ())
    events;
  let replicas = List.rev !replicas in
  (* A tick-stamped run (anything through lib/net) measures lag on the
     virtual clock; a perfect-channel run has every tick at zero, so
     fall back to trace-position distance. *)
  let use_ticks =
    List.exists
      (fun s -> s.sp_gen_tick > 0 || List.exists (fun (_, t, _) -> t > 0) s.sp_applies)
      spans
  in
  let lag_of s =
    if s.sp_gen_index < 0 || s.sp_applies = [] then None
    else begin
      let last =
        List.fold_left
          (fun acc (_, t, i) -> max acc (if use_ticks then t else i))
          min_int s.sp_applies
      in
      let origin = if use_ticks then s.sp_gen_tick else s.sp_gen_index in
      Some (float_of_int (max 0 (last - origin)))
    end
  in
  let lags = List.filter_map lag_of spans in
  let incomplete =
    List.length (List.filter (fun s -> s.sp_gen_index >= 0 && s.sp_applies = []) spans)
  in
  let sorted_of l =
    let a = Array.of_list l in
    Array.sort Float.compare a;
    a
  in
  let lag_sorted = sorted_of lags in
  let tfs = List.map (fun s -> s.sp_transforms) spans in
  let tf_sorted = sorted_of tfs in
  (* Per-replica staleness: generation at the origin to application at
     that replica, averaged over the ops it applied. *)
  let staleness =
    List.map
      (fun r ->
        let samples =
          List.filter_map
            (fun s ->
              if s.sp_gen_index < 0 then None
              else
                List.find_map
                  (fun (rep, t, i) ->
                    if String.equal rep r then
                      Some
                        (float_of_int
                           (max 0
                              (if use_ticks then t - s.sp_gen_tick
                               else i - s.sp_gen_index)))
                    else None)
                  s.sp_applies)
            spans
        in
        let n = List.length samples in
        if n = 0 then (r, 0.0, 0.0)
        else
          ( r,
            List.fold_left ( +. ) 0.0 samples /. float_of_int n,
            List.fold_left max 0.0 samples ))
      replicas
  in
  let wire_counts = ref [] in
  let bump action =
    match List.assoc_opt action !wire_counts with
    | Some r -> incr r
    | None -> wire_counts := (action, ref 1) :: !wire_counts
  in
  let sends = ref 0 in
  let retransmits = ref 0 in
  let max_tick = ref 0 in
  let wire_incidents = ref [] in
  List.iter
    (fun e ->
      match e with
      | Event.Send _ -> incr sends
      | Event.Wire { action; tick; _ } ->
        bump action;
        max_tick := max !max_tick tick;
        if String.equal action "retransmit" then incr retransmits;
        if
          String.equal action "retransmit"
          || String.equal action "drop"
          || String.equal action "partition_drop"
        then wire_incidents := (tick, action) :: !wire_incidents
      | _ -> ())
    events;
  let wire =
    List.rev_map (fun (a, r) -> (a, !r)) !wire_counts
  in
  let amplification =
    if !sends = 0 then 1.0
    else float_of_int (!sends + !retransmits) /. float_of_int !sends
  in
  (* Retransmission/drop timeline: up to 20 tick buckets. *)
  let timeline =
    if !wire_incidents = [] then []
    else begin
      let width = max 1 ((!max_tick / 20) + 1) in
      let nbuckets = (!max_tick / width) + 1 in
      let rex = Array.make nbuckets 0 in
      let drops = Array.make nbuckets 0 in
      List.iter
        (fun (tick, action) ->
          let b = tick / width in
          if String.equal action "retransmit" then rex.(b) <- rex.(b) + 1
          else drops.(b) <- drops.(b) + 1)
        !wire_incidents;
      List.init nbuckets (fun i -> (i * width, rex.(i), drops.(i)))
    end
  in
  let tf_total =
    List.fold_left
      (fun acc e ->
        match e with
        | Event.Deliver { transforms; _ } -> acc + transforms
        | _ -> acc)
      0 events
  in
  (* GC attribution: cycle count and reclaimed metadata come from the
     gc_end events the engine emits at cycle boundaries. *)
  let gc_cycles = ref 0 in
  let gc_reclaimed = ref 0 in
  let gc_skipped = ref 0 in
  List.iter
    (fun e ->
      match e with
      | Event.Gc_end
          { reclaimed_states; reclaimed_log; reclaimed_keys; skipped; _ } ->
        incr gc_cycles;
        gc_reclaimed :=
          !gc_reclaimed + reclaimed_states + reclaimed_log + reclaimed_keys;
        gc_skipped := !gc_skipped + skipped
      | _ -> ())
    events;
  {
    su_events = List.length events;
    su_ops = List.length spans;
    su_replicas = replicas;
    su_incomplete = incomplete;
    su_lag_unit = (if use_ticks then "ticks" else "events");
    su_lag_p50 = percentile lag_sorted 50.0;
    su_lag_p90 = percentile lag_sorted 90.0;
    su_lag_p99 = percentile lag_sorted 99.0;
    su_lag_max = percentile lag_sorted 100.0;
    su_staleness = staleness;
    su_transforms_total = tf_total;
    su_tf_p50 = percentile tf_sorted 50.0;
    su_tf_p90 = percentile tf_sorted 90.0;
    su_tf_max = percentile tf_sorted 100.0;
    su_sends = !sends;
    su_wire = wire;
    su_amplification = amplification;
    su_timeline = timeline;
    su_gc_cycles = !gc_cycles;
    su_gc_reclaimed = !gc_reclaimed;
    su_gc_skipped = !gc_skipped;
  }

let pp_summary ppf s =
  Format.fprintf ppf "@[<v>--- trace report ---@,";
  Format.fprintf ppf "events: %d  ops: %d  replicas: %d  sends: %d@,"
    s.su_events s.su_ops (List.length s.su_replicas) s.su_sends;
  if s.su_incomplete > 0 then
    Format.fprintf ppf "ops never applied anywhere: %d@," s.su_incomplete;
  Format.fprintf ppf
    "convergence lag (%s): p50 %.1f  p90 %.1f  p99 %.1f  max %.1f@,"
    s.su_lag_unit s.su_lag_p50 s.su_lag_p90 s.su_lag_p99 s.su_lag_max;
  Format.fprintf ppf "staleness per replica (%s):@," s.su_lag_unit;
  List.iter
    (fun (r, mean, mx) ->
      Format.fprintf ppf "  %-8s mean %.1f  max %.1f@," r mean mx)
    s.su_staleness;
  Format.fprintf ppf
    "transforms: total %d  per-op p50 %.1f  p90 %.1f  max %.1f@,"
    s.su_transforms_total s.su_tf_p50 s.su_tf_p90 s.su_tf_max;
  if s.su_wire <> [] then begin
    Format.fprintf ppf "wire incidents:";
    List.iter (fun (a, n) -> Format.fprintf ppf " %s=%d" a n) s.su_wire;
    Format.fprintf ppf "@,";
    Format.fprintf ppf "amplification (sends+retransmits)/sends: %.2f@,"
      s.su_amplification
  end;
  if s.su_timeline <> [] then begin
    Format.fprintf ppf "retransmission timeline (tick: retransmits/drops):@,";
    List.iter
      (fun (t, rex, drops) ->
        if rex > 0 || drops > 0 then
          Format.fprintf ppf "  @@%-6d %d/%d@," t rex drops)
      s.su_timeline
  end;
  if s.su_gc_cycles > 0 then
    Format.fprintf ppf
      "gc: %d cycles, %d metadata reclaimed, %d busy-channel skips@,"
      s.su_gc_cycles s.su_gc_reclaimed s.su_gc_skipped;
  Format.fprintf ppf "@]"

let summary_to_json s =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"events\": %d, \"ops\": %d, \"sends\": %d, \"incomplete\": %d, "
    s.su_events s.su_ops s.su_sends s.su_incomplete;
  add "\"lag_unit\": \"%s\", " s.su_lag_unit;
  add
    "\"convergence_lag\": {\"p50\": %.2f, \"p90\": %.2f, \"p99\": %.2f, \
     \"max\": %.2f}, "
    s.su_lag_p50 s.su_lag_p90 s.su_lag_p99 s.su_lag_max;
  add "\"staleness\": {";
  List.iteri
    (fun i (r, mean, mx) ->
      if i > 0 then add ", ";
      add "\"%s\": {\"mean\": %.2f, \"max\": %.2f}" (Event.escape r) mean mx)
    s.su_staleness;
  add "}, ";
  add
    "\"transforms\": {\"total\": %d, \"p50\": %.2f, \"p90\": %.2f, \"max\": \
     %.2f}, "
    s.su_transforms_total s.su_tf_p50 s.su_tf_p90 s.su_tf_max;
  add "\"wire\": {";
  List.iteri
    (fun i (a, n) ->
      if i > 0 then add ", ";
      add "\"%s\": %d" (Event.escape a) n)
    s.su_wire;
  add "}, ";
  add "\"amplification\": %.3f, " s.su_amplification;
  add "\"timeline\": [";
  List.iteri
    (fun i (t, rex, drops) ->
      if i > 0 then add ", ";
      add "{\"tick\": %d, \"retransmits\": %d, \"drops\": %d}" t rex drops)
    s.su_timeline;
  add "], ";
  add "\"gc\": {\"cycles\": %d, \"reclaimed\": %d, \"skipped\": %d}}"
    s.su_gc_cycles s.su_gc_reclaimed s.su_gc_skipped;
  Buffer.contents b
