(** A zero-dependency metrics registry: counters, gauges, and
    histograms with percentile estimation and clock-based timers.

    The registry is the quantitative half of the observability layer
    ({!Obs}): engines and protocol layers increment named metrics as
    they run, and the CLI / bench harness read them back as a report
    or as JSON.  Everything lives in plain OCaml — no external
    dependencies — so the library can sit below every other layer of
    the repository.

    Metric names are free-form dotted strings ([engine.transforms],
    [channel.c2s.depth]).  Lookups create metrics on first use;
    repeated lookups return the same metric, so call sites can be
    written without registration ceremony.  All operations are O(1)
    amortized except percentiles, which sort a private copy. *)

(** {1 Clock}

    Timers need a monotonic wall clock, which the OCaml standard
    library does not provide.  The registry therefore exposes a
    settable clock: the bench harness installs bechamel's
    monotonic clock ([Harness.now_ns]); standalone users fall back to
    a monotonic event counter (durations are meaningless but ordering
    holds, and the registry stays dependency free). *)

(** Install the clock used by {!time} and {!Timer.start}.  The
    function must return nanoseconds from an arbitrary fixed origin. *)
val set_clock : (unit -> float) -> unit

(** Current clock reading, in nanoseconds. *)
val now_ns : unit -> float

(** {1 Registry} *)

type t

val create : unit -> t

(** {1 Counters} — monotonically increasing integers. *)

type counter

val counter : t -> string -> counter

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

(** Read a counter by name; [0] if it was never touched. *)
val counter_of : t -> string -> int

(** {1 Gauges} — last-write-wins floats. *)

type gauge

val gauge : t -> string -> gauge

val set_gauge : gauge -> float -> unit

val gauge_value : gauge -> float

(** {1 Histograms} — streaming value distributions. *)

type histogram

val histogram : t -> string -> histogram

val observe : histogram -> float -> unit

val hist_count : histogram -> int

val hist_sum : histogram -> float

val hist_min : histogram -> float
(** [nan] when empty. *)

val hist_max : histogram -> float
(** [nan] when empty. *)

val hist_mean : histogram -> float
(** [nan] when empty. *)

(** [percentile h p] for [p] in [0..100], by linear interpolation
    between closest ranks (the common "exclusive" definition reduces
    to min/max at the extremes).  [nan] when empty.
    @raise Invalid_argument when [p] is outside [0..100]. *)
val percentile : histogram -> float -> float

(** Time a thunk with the installed clock and record the elapsed
    nanoseconds into the histogram.  The thunk's exceptions pass
    through untimed. *)
val time : histogram -> (unit -> 'a) -> 'a

(** {1 Reading the registry} *)

type metric =
  | Counter of int
  | Gauge of float
  | Histogram of histogram

(** All metrics, sorted by name. *)
val fold : t -> init:'a -> f:('a -> string -> metric -> 'a) -> 'a

(** One-object JSON rendering: counters as integers, gauges as
    numbers, histograms as [{"count":..,"mean":..,"p50":..,"p90":..,
    "p99":..,"max":..}] summaries.  Keys sorted by name. *)
val to_json : t -> string

(** Human-readable table of the same content. *)
val pp : Format.formatter -> t -> unit
