(* See metrics.mli.  Plain hashtables and growable float arrays: the
   registry must not cost anything noticeable when metrics are being
   written on a hot path, and must not pull in any dependency. *)

(* --- clock ------------------------------------------------------------ *)

(* Fallback clock: a monotonic event counter, one "nanosecond" per
   reading.  Durations are meaningless until a caller installs a real
   clock (the bench harness installs bechamel's monotonic one), but
   ordering is preserved and the registry stays dependency-free. *)
let clock =
  let ticks = ref 0.0 in
  ref (fun () ->
      ticks := !ticks +. 1.0;
      !ticks)

let set_clock f = clock := f

let now_ns () = !clock ()

(* --- metric storage --------------------------------------------------- *)

type counter = { mutable c : int }

type gauge = { mutable g : float }

type histogram = {
  mutable values : float array;
  mutable len : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
}

type metric =
  | Counter of int
  | Gauge of float
  | Histogram of histogram

type cell =
  | C of counter
  | G of gauge
  | H of histogram

type t = { cells : (string, cell) Hashtbl.t }

let create () = { cells = Hashtbl.create 32 }

let find_or_add t name make classify =
  match Hashtbl.find_opt t.cells name with
  | Some cell -> (
    match classify cell with
    | Some m -> m
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %S already registered with another type"
           name))
  | None ->
    let m = make () in
    m

(* --- counters --------------------------------------------------------- *)

let counter t name =
  find_or_add t name
    (fun () ->
      let c = { c = 0 } in
      Hashtbl.add t.cells name (C c);
      c)
    (function C c -> Some c | G _ | H _ -> None)

let incr c = c.c <- c.c + 1

let add c n = c.c <- c.c + n

let counter_value c = c.c

let counter_of t name =
  match Hashtbl.find_opt t.cells name with
  | Some (C c) -> c.c
  | Some (G _ | H _) | None -> 0

(* --- gauges ----------------------------------------------------------- *)

let gauge t name =
  find_or_add t name
    (fun () ->
      let g = { g = 0.0 } in
      Hashtbl.add t.cells name (G g);
      g)
    (function G g -> Some g | C _ | H _ -> None)

let set_gauge g v = g.g <- v

let gauge_value g = g.g

(* --- histograms ------------------------------------------------------- *)

let histogram t name =
  find_or_add t name
    (fun () ->
      let h =
        { values = Array.make 64 0.0; len = 0; sum = 0.0; mn = nan; mx = nan }
      in
      Hashtbl.add t.cells name (H h);
      h)
    (function H h -> Some h | C _ | G _ -> None)

let observe h v =
  if h.len = Array.length h.values then begin
    let bigger = Array.make (2 * h.len) 0.0 in
    Array.blit h.values 0 bigger 0 h.len;
    h.values <- bigger
  end;
  h.values.(h.len) <- v;
  h.len <- h.len + 1;
  h.sum <- h.sum +. v;
  if Float.is_nan h.mn || v < h.mn then h.mn <- v;
  if Float.is_nan h.mx || v > h.mx then h.mx <- v

let hist_count h = h.len

let hist_sum h = h.sum

let hist_min h = h.mn

let hist_max h = h.mx

let hist_mean h = if h.len = 0 then nan else h.sum /. float_of_int h.len

let percentile h p =
  if p < 0.0 || p > 100.0 then
    invalid_arg (Printf.sprintf "Metrics.percentile: %g not in [0,100]" p);
  if h.len = 0 then nan
  else begin
    let sorted = Array.sub h.values 0 h.len in
    Array.sort Float.compare sorted;
    (* Linear interpolation between closest ranks over [0, len-1]. *)
    let rank = p /. 100.0 *. float_of_int (h.len - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else
      let w = rank -. float_of_int lo in
      ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))
  end

let time h f =
  let t0 = now_ns () in
  let result = f () in
  observe h (now_ns () -. t0);
  result

(* --- reading ---------------------------------------------------------- *)

let fold t ~init ~f =
  let entries =
    Hashtbl.fold
      (fun name cell acc ->
        let m =
          match cell with
          | C c -> Counter c.c
          | G g -> Gauge g.g
          | H h -> Histogram h
        in
        (name, m) :: acc)
      t.cells []
  in
  let entries =
    List.sort (fun (a, _) (b, _) -> String.compare a b) entries
  in
  List.fold_left (fun acc (name, m) -> f acc name m) init entries

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* JSON number: no NaN/inf in the output, ever. *)
let json_float v =
  if Float.is_finite v then Printf.sprintf "%.3f" v else "null"

let to_json t =
  let b = Buffer.create 256 in
  Buffer.add_string b "{";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string b ", "
  in
  fold t ~init:() ~f:(fun () name m ->
      sep ();
      Buffer.add_string b (Printf.sprintf "\"%s\": " (json_escape name));
      match m with
      | Counter c -> Buffer.add_string b (string_of_int c)
      | Gauge g -> Buffer.add_string b (json_float g)
      | Histogram h ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"count\": %d, \"sum\": %s, \"mean\": %s, \"p50\": %s, \
              \"p90\": %s, \"p99\": %s, \"max\": %s}"
             (hist_count h) (json_float h.sum)
             (json_float (hist_mean h))
             (json_float (percentile h 50.0))
             (json_float (percentile h 90.0))
             (json_float (percentile h 99.0))
             (json_float h.mx)));
  Buffer.add_string b "}";
  Buffer.contents b

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  fold t ~init:() ~f:(fun () name m ->
      match m with
      | Counter c -> Format.fprintf ppf "%-36s %12d@," name c
      | Gauge g -> Format.fprintf ppf "%-36s %12.2f@," name g
      | Histogram h ->
        Format.fprintf ppf
          "%-36s count=%d mean=%.1f p50=%.1f p90=%.1f p99=%.1f max=%.1f@,"
          name (hist_count h) (hist_mean h) (percentile h 50.0)
          (percentile h 90.0) (percentile h 99.0) (hist_max h));
  Format.fprintf ppf "@]"
