(* See obs.mli. *)

module Metrics = Metrics
module Event = Event
module Sink = Sink
module Recorder = Recorder
module Spans = Spans

type t = {
  metrics : Metrics.t;
  sink : Sink.t;
}

let make ?(sink = Sink.null) () = { metrics = Metrics.create (); sink }

let tracing t = Sink.enabled t.sink

let emit t e = Sink.emit t.sink e

let count_kind events kind =
  List.fold_left
    (fun acc e -> if String.equal (Event.kind e) kind then acc + 1 else acc)
    0 events

let sum_deliver_transforms events =
  List.fold_left
    (fun acc e ->
      match e with
      | Event.Deliver { transforms; _ } -> acc + transforms
      | _ -> acc)
    0 events

let report ppf t =
  Format.fprintf ppf "@[<v>--- observability report ---@,%a" Metrics.pp
    t.metrics;
  if tracing t then
    Format.fprintf ppf "trace events emitted: %d@," (Sink.count t.sink);
  Format.fprintf ppf "@]"

let metrics_json t = Metrics.to_json t.metrics
