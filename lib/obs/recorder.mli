(** The deterministic flight recorder.

    A recorder is a fixed-capacity ring buffer of {e decisions} — one
    entry per nondeterministic choice a simulation run makes: which
    client generates which intent, which channel delivers next, where
    each batch flush falls, what the fault-injected wire did to each
    transmission, and the tick schedule.  Because every run is fully
    determined by its seeds, the recording does not need to {e drive}
    a replay; the run's configuration (saved in the dump header)
    re-executes bit-identically on its own, and the decision window
    plus the outcome digest are the {e witness} the replay is checked
    against, step by step.

    Recording is designed to be cheap: {!record} stores the boxed
    decision in the ring and bumps two integers — encoding happens
    only at {!dump} time.  When the ring wraps, the oldest decisions
    are overwritten but {!total} keeps counting, so a replay can still
    verify the retained suffix.

    The dump format ("JFR1") is a compact binary layout: magic,
    header key/value pairs (run configuration), digest key/value pairs
    (expected final states, verdicts, and statistics), the total
    decision count, and the LEB128-varint-encoded decision window. *)

type outcome =
  | Sent
  | Dropped
  | Partition_dropped
  | Duplicated
  | Delayed of int  (** Reorder jitter, in ticks. *)

type decision =
  | Generate of {
      client : int;
      intent : string;  (** Schedule-text syntax: ["ins c 3"], ["del 0"], ["read"]. *)
    }
  | Deliver_to_server of int
  | Deliver_to_client of int
  | Deliver_peer of {
      src : int;
      dst : int;
    }
  | Flush of {
      channel : string;
      ops : int;  (** Operations coalesced into this batch payload. *)
    }
  | Transmit of {
      channel : string;
      seq : int;
      outcome : outcome;
    }
  | Retransmit of {
      channel : string;
      seq : int;
      attempts : int;
    }
  | Ack of {
      channel : string;
      seq : int;
      dropped : bool;
    }
  | Tick of int  (** Engine clock after advancing every channel. *)
  | Gc of {
      cycle : int;
      trigger : string;  (** The fired trigger, e.g. ["ops=64"]. *)
    }
      (** A compaction cycle started here.  GC cycles are themselves
          deterministic functions of the simulation state, so the
          entry carries no outcome — it exists so the replayed
          decision stream (and hence [jupiter_sim replay]) stays
          bit-identical when GC is enabled. *)

type t

val default_capacity : int

val create : ?capacity:int -> unit -> t

val record : t -> decision -> unit

(** Decisions ever recorded, including ones the ring has discarded. *)
val total : t -> int

(** Whether the ring has overwritten old decisions ([total > capacity]).
    A wrapped recording still replays — only the witness comparison is
    restricted to the retained suffix — but schedule extraction for
    the shrinker needs the full window. *)
val wrapped : t -> bool

(** The retained decisions, oldest first. *)
val window : t -> decision list

val clear : t -> unit

val outcome_to_string : outcome -> string

val decision_to_string : decision -> string

(** [encode ~header ~digest t] renders the full binary recording. *)
val encode :
  header:(string * string) list -> digest:(string * string) list -> t -> string

(** [dump ~header ~digest t path] writes the binary recording to
    [path]. *)
val dump :
  header:(string * string) list ->
  digest:(string * string) list ->
  t ->
  string ->
  unit

(** A parsed recording. *)
type recording = {
  header : (string * string) list;
  digest : (string * string) list;
  r_total : int;
  r_window : decision list;
}

(** Raised by {!decode}/{!load} on malformed input, with a reason. *)
exception Corrupt of string

val decode : string -> recording

(** [is_recording path] — whether the file starts with the "JFR1"
    magic (how the CLI tells a recording from a text schedule). *)
val is_recording : string -> bool

val load : string -> recording
