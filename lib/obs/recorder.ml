(* See recorder.mli. *)

type outcome =
  | Sent
  | Dropped
  | Partition_dropped
  | Duplicated
  | Delayed of int

type decision =
  | Generate of {
      client : int;
      intent : string;
    }
  | Deliver_to_server of int
  | Deliver_to_client of int
  | Deliver_peer of {
      src : int;
      dst : int;
    }
  | Flush of {
      channel : string;
      ops : int;
    }
  | Transmit of {
      channel : string;
      seq : int;
      outcome : outcome;
    }
  | Retransmit of {
      channel : string;
      seq : int;
      attempts : int;
    }
  | Ack of {
      channel : string;
      seq : int;
      dropped : bool;
    }
  | Tick of int
  | Gc of {
      cycle : int;
      trigger : string;
    }

type t = {
  capacity : int;
  buf : decision option array;
  mutable head : int;  (* next write slot *)
  mutable total : int;  (* decisions ever recorded *)
}

let default_capacity = 1 lsl 18

let create ?(capacity = default_capacity) () =
  let capacity = max 1 capacity in
  { capacity; buf = Array.make capacity None; head = 0; total = 0 }

let record t d =
  t.buf.(t.head) <- Some d;
  t.head <- (t.head + 1) mod t.capacity;
  t.total <- t.total + 1

let total t = t.total

let wrapped t = t.total > t.capacity

let window t =
  if t.total = 0 then []
  else begin
    let stored = min t.total t.capacity in
    let start = (t.head - stored + t.capacity) mod t.capacity in
    let out = ref [] in
    for i = stored - 1 downto 0 do
      match t.buf.((start + i) mod t.capacity) with
      | Some d -> out := d :: !out
      | None -> ()
    done;
    !out
  end

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.head <- 0;
  t.total <- 0

let outcome_to_string = function
  | Sent -> "sent"
  | Dropped -> "dropped"
  | Partition_dropped -> "partition_dropped"
  | Duplicated -> "duplicated"
  | Delayed j -> Printf.sprintf "delayed+%d" j

let decision_to_string = function
  | Generate { client; intent } -> Printf.sprintf "gen %d %s" client intent
  | Deliver_to_server i -> Printf.sprintf "c2s %d" i
  | Deliver_to_client i -> Printf.sprintf "s2c %d" i
  | Deliver_peer { src; dst } -> Printf.sprintf "p2p %d %d" src dst
  | Flush { channel; ops } -> Printf.sprintf "flush %s %d" channel ops
  | Transmit { channel; seq; outcome } ->
    Printf.sprintf "xmit %s #%d %s" channel seq (outcome_to_string outcome)
  | Retransmit { channel; seq; attempts } ->
    Printf.sprintf "rexmit %s #%d try%d" channel seq attempts
  | Ack { channel; seq; dropped } ->
    Printf.sprintf "ack %s #%d%s" channel seq (if dropped then " dropped" else "")
  | Tick n -> Printf.sprintf "tick %d" n
  | Gc { cycle; trigger } -> Printf.sprintf "gc #%d %s" cycle trigger

(* --- binary format ------------------------------------------------- *)

(* File layout (all integers unsigned LEB128 varints, all strings
   length-prefixed):

     "JFR1"
     nheader  (key value)*        -- run configuration
     ndigest  (key value)*        -- expected outcome fingerprint
     total                        -- decisions ever recorded
     stored                       -- decisions in the window below
     record*                      -- tag byte + fields

   The header carries everything needed to re-execute the run (the
   runs are seed-deterministic); the digest carries everything needed
   to check the re-execution is bit-identical; the decision window is
   the witness that is compared step by step. *)

let magic = "JFR1"

let put_varint b n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let byte = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char b (Char.chr byte);
      continue := false
    end
    else Buffer.add_char b (Char.chr (byte lor 0x80))
  done

let put_string b s =
  put_varint b (String.length s);
  Buffer.add_string b s

let put_pairs b pairs =
  put_varint b (List.length pairs);
  List.iter
    (fun (k, v) ->
      put_string b k;
      put_string b v)
    pairs

let outcome_tag = function
  | Sent -> 0
  | Dropped -> 1
  | Partition_dropped -> 2
  | Duplicated -> 3
  | Delayed _ -> 4

let put_decision b = function
  | Generate { client; intent } ->
    Buffer.add_char b '\001';
    put_varint b client;
    put_string b intent
  | Deliver_to_server i ->
    Buffer.add_char b '\002';
    put_varint b i
  | Deliver_to_client i ->
    Buffer.add_char b '\003';
    put_varint b i
  | Deliver_peer { src; dst } ->
    Buffer.add_char b '\004';
    put_varint b src;
    put_varint b dst
  | Flush { channel; ops } ->
    Buffer.add_char b '\005';
    put_string b channel;
    put_varint b ops
  | Transmit { channel; seq; outcome } ->
    Buffer.add_char b '\006';
    put_string b channel;
    put_varint b seq;
    put_varint b (outcome_tag outcome);
    (match outcome with
    | Delayed j -> put_varint b j
    | _ -> ())
  | Retransmit { channel; seq; attempts } ->
    Buffer.add_char b '\007';
    put_string b channel;
    put_varint b seq;
    put_varint b attempts
  | Ack { channel; seq; dropped } ->
    Buffer.add_char b '\008';
    put_string b channel;
    put_varint b seq;
    put_varint b (if dropped then 1 else 0)
  | Tick n ->
    Buffer.add_char b '\009';
    put_varint b n
  | Gc { cycle; trigger } ->
    Buffer.add_char b '\010';
    put_varint b cycle;
    put_string b trigger

let encode ~header ~digest t =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  put_pairs b header;
  put_pairs b digest;
  put_varint b t.total;
  let w = window t in
  put_varint b (List.length w);
  List.iter (put_decision b) w;
  Buffer.contents b

let dump ~header ~digest t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (encode ~header ~digest t))

(* --- decoding ------------------------------------------------------ *)

type recording = {
  header : (string * string) list;
  digest : (string * string) list;
  r_total : int;
  r_window : decision list;
}

exception Corrupt of string

let corrupt msg = raise (Corrupt msg)

type cursor = {
  data : string;
  mutable pos : int;
}

let get_byte c =
  if c.pos >= String.length c.data then corrupt "truncated";
  let b = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  b

let get_varint c =
  let rec loop shift acc =
    let b = get_byte c in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then loop (shift + 7) acc else acc
  in
  loop 0 0

let get_string c =
  let len = get_varint c in
  if c.pos + len > String.length c.data then corrupt "truncated string";
  let s = String.sub c.data c.pos len in
  c.pos <- c.pos + len;
  s

let get_pairs c =
  let n = get_varint c in
  List.init n (fun _ ->
      let k = get_string c in
      let v = get_string c in
      (k, v))

let get_outcome c =
  match get_varint c with
  | 0 -> Sent
  | 1 -> Dropped
  | 2 -> Partition_dropped
  | 3 -> Duplicated
  | 4 -> Delayed (get_varint c)
  | n -> corrupt (Printf.sprintf "unknown outcome tag %d" n)

let get_decision c =
  match get_byte c with
  | 1 ->
    let client = get_varint c in
    let intent = get_string c in
    Generate { client; intent }
  | 2 -> Deliver_to_server (get_varint c)
  | 3 -> Deliver_to_client (get_varint c)
  | 4 ->
    let src = get_varint c in
    let dst = get_varint c in
    Deliver_peer { src; dst }
  | 5 ->
    let channel = get_string c in
    let ops = get_varint c in
    Flush { channel; ops }
  | 6 ->
    let channel = get_string c in
    let seq = get_varint c in
    let outcome = get_outcome c in
    Transmit { channel; seq; outcome }
  | 7 ->
    let channel = get_string c in
    let seq = get_varint c in
    let attempts = get_varint c in
    Retransmit { channel; seq; attempts }
  | 8 ->
    let channel = get_string c in
    let seq = get_varint c in
    let dropped = get_varint c <> 0 in
    Ack { channel; seq; dropped }
  | 9 -> Tick (get_varint c)
  | 10 ->
    let cycle = get_varint c in
    let trigger = get_string c in
    Gc { cycle; trigger }
  | n -> corrupt (Printf.sprintf "unknown decision tag %d" n)

let decode data =
  if String.length data < 4 || not (String.equal (String.sub data 0 4) magic)
  then corrupt "bad magic";
  let c = { data; pos = 4 } in
  let header = get_pairs c in
  let digest = get_pairs c in
  let r_total = get_varint c in
  let stored = get_varint c in
  let r_window = List.init stored (fun _ -> get_decision c) in
  { header; digest; r_total; r_window }

let is_recording path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic 4 with
        | exception End_of_file -> false
        | m -> String.equal m magic)

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> decode (really_input_string ic (in_channel_length ic)))
