(* See event.mli. *)

type replica = string

type t =
  | Generate of {
      replica : replica;
      op_id : string option;
      intent : string;
      queue : int;
    }
  | Send of {
      src : replica;
      dst : replica;
      op_id : string option;
      bytes : int;
      queue : int;
    }
  | Deliver of {
      replica : replica;
      src : replica;
      op_id : string option;
      transforms : int;
      queue : int;
    }
  | Transform of {
      replica : replica;
      count : int;
    }
  | Apply of {
      replica : replica;
      op_id : string option;
      doc_len : int;
    }
  | State_space_grow of {
      replica : replica;
      level : int;
      states : int;
      transitions : int;
    }
  | Span of {
      name : string;
      dur_ns : float;
    }

let kind = function
  | Generate _ -> "generate"
  | Send _ -> "send"
  | Deliver _ -> "deliver"
  | Transform _ -> "transform"
  | Apply _ -> "apply"
  | State_space_grow _ -> "state_space_grow"
  | Span _ -> "span"

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let opt_id = function
  | None -> "null"
  | Some id -> Printf.sprintf "\"%s\"" (escape id)

let to_jsonl ~seq e =
  let head = Printf.sprintf "{\"seq\": %d, \"type\": \"%s\", " seq (kind e) in
  let body =
    match e with
    | Generate { replica; op_id; intent; queue } ->
      Printf.sprintf
        "\"replica\": \"%s\", \"op\": %s, \"intent\": \"%s\", \"queue\": %d"
        (escape replica) (opt_id op_id) (escape intent) queue
    | Send { src; dst; op_id; bytes; queue } ->
      Printf.sprintf
        "\"src\": \"%s\", \"dst\": \"%s\", \"op\": %s, \"bytes\": %d, \
         \"queue\": %d"
        (escape src) (escape dst) (opt_id op_id) bytes queue
    | Deliver { replica; src; op_id; transforms; queue } ->
      Printf.sprintf
        "\"replica\": \"%s\", \"src\": \"%s\", \"op\": %s, \"transforms\": \
         %d, \"queue\": %d"
        (escape replica) (escape src) (opt_id op_id) transforms queue
    | Transform { replica; count } ->
      Printf.sprintf "\"replica\": \"%s\", \"count\": %d" (escape replica)
        count
    | Apply { replica; op_id; doc_len } ->
      Printf.sprintf "\"replica\": \"%s\", \"op\": %s, \"doc_len\": %d"
        (escape replica) (opt_id op_id) doc_len
    | State_space_grow { replica; level; states; transitions } ->
      Printf.sprintf
        "\"replica\": \"%s\", \"level\": %d, \"states\": %d, \
         \"transitions\": %d"
        (escape replica) level states transitions
    | Span { name; dur_ns } ->
      Printf.sprintf "\"name\": \"%s\", \"dur_ns\": %.0f" (escape name)
        dur_ns
  in
  head ^ body ^ "}"

let pp ppf e = Format.pp_print_string ppf (to_jsonl ~seq:0 e)
