(* See event.mli. *)

type replica = string

type t =
  | Generate of {
      replica : replica;
      op_id : string option;
      intent : string;
      queue : int;
      tick : int;
    }
  | Send of {
      src : replica;
      dst : replica;
      op_id : string option;
      bytes : int;
      queue : int;
      tick : int;
    }
  | Deliver of {
      replica : replica;
      src : replica;
      op_id : string option;
      transforms : int;
      queue : int;
      tick : int;
    }
  | Transform of {
      replica : replica;
      count : int;
    }
  | Apply of {
      replica : replica;
      op_id : string option;
      doc_len : int;
      tick : int;
    }
  | Wire of {
      channel : string;
      action : string;
      wseq : int;
      info : int;
      tick : int;
    }
  | State_space_grow of {
      replica : replica;
      level : int;
      states : int;
      transitions : int;
    }
  | Span of {
      name : string;
      dur_ns : float;
    }
  | Gc_begin of {
      cycle : int;
      trigger : string;
      meta : int;
      tick : int;
    }
  | Gc_end of {
      cycle : int;
      reclaimed_states : int;
      reclaimed_log : int;
      reclaimed_keys : int;
      meta : int;
      snapshot_bytes : int;
      skipped : int;
      tick : int;
    }

let kind = function
  | Generate _ -> "generate"
  | Send _ -> "send"
  | Deliver _ -> "deliver"
  | Transform _ -> "transform"
  | Apply _ -> "apply"
  | Wire _ -> "wire"
  | State_space_grow _ -> "state_space_grow"
  | Span _ -> "span"
  | Gc_begin _ -> "gc_begin"
  | Gc_end _ -> "gc_end"

let op_id = function
  | Generate { op_id; _ } | Send { op_id; _ } | Deliver { op_id; _ }
  | Apply { op_id; _ } ->
    op_id
  | Transform _ | Wire _ | State_space_grow _ | Span _ | Gc_begin _ | Gc_end _
    ->
    None

let tick = function
  | Generate { tick; _ } | Send { tick; _ } | Deliver { tick; _ }
  | Apply { tick; _ } | Wire { tick; _ } | Gc_begin { tick; _ }
  | Gc_end { tick; _ } ->
    Some tick
  | Transform _ | State_space_grow _ | Span _ -> None

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let opt_id = function
  | None -> "null"
  | Some id -> Printf.sprintf "\"%s\"" (escape id)

let to_jsonl ~seq e =
  let head = Printf.sprintf "{\"seq\": %d, \"type\": \"%s\", " seq (kind e) in
  let body =
    match e with
    | Generate { replica; op_id; intent; queue; tick } ->
      Printf.sprintf
        "\"replica\": \"%s\", \"op\": %s, \"intent\": \"%s\", \"queue\": %d, \
         \"tick\": %d"
        (escape replica) (opt_id op_id) (escape intent) queue tick
    | Send { src; dst; op_id; bytes; queue; tick } ->
      Printf.sprintf
        "\"src\": \"%s\", \"dst\": \"%s\", \"op\": %s, \"bytes\": %d, \
         \"queue\": %d, \"tick\": %d"
        (escape src) (escape dst) (opt_id op_id) bytes queue tick
    | Deliver { replica; src; op_id; transforms; queue; tick } ->
      Printf.sprintf
        "\"replica\": \"%s\", \"src\": \"%s\", \"op\": %s, \"transforms\": \
         %d, \"queue\": %d, \"tick\": %d"
        (escape replica) (escape src) (opt_id op_id) transforms queue tick
    | Transform { replica; count } ->
      Printf.sprintf "\"replica\": \"%s\", \"count\": %d" (escape replica)
        count
    | Apply { replica; op_id; doc_len; tick } ->
      Printf.sprintf
        "\"replica\": \"%s\", \"op\": %s, \"doc_len\": %d, \"tick\": %d"
        (escape replica) (opt_id op_id) doc_len tick
    | Wire { channel; action; wseq; info; tick } ->
      Printf.sprintf
        "\"channel\": \"%s\", \"action\": \"%s\", \"wseq\": %d, \"info\": \
         %d, \"tick\": %d"
        (escape channel) (escape action) wseq info tick
    | State_space_grow { replica; level; states; transitions } ->
      Printf.sprintf
        "\"replica\": \"%s\", \"level\": %d, \"states\": %d, \
         \"transitions\": %d"
        (escape replica) level states transitions
    | Span { name; dur_ns } ->
      Printf.sprintf "\"name\": \"%s\", \"dur_ns\": %.0f" (escape name)
        dur_ns
    | Gc_begin { cycle; trigger; meta; tick } ->
      Printf.sprintf
        "\"cycle\": %d, \"trigger\": \"%s\", \"meta\": %d, \"tick\": %d"
        cycle (escape trigger) meta tick
    | Gc_end
        {
          cycle;
          reclaimed_states;
          reclaimed_log;
          reclaimed_keys;
          meta;
          snapshot_bytes;
          skipped;
          tick;
        } ->
      Printf.sprintf
        "\"cycle\": %d, \"reclaimed_states\": %d, \"reclaimed_log\": %d, \
         \"reclaimed_keys\": %d, \"meta\": %d, \"snapshot_bytes\": %d, \
         \"skipped\": %d, \"tick\": %d"
        cycle reclaimed_states reclaimed_log reclaimed_keys meta
        snapshot_bytes skipped tick
  in
  head ^ body ^ "}"

let pp ppf e = Format.pp_print_string ppf (to_jsonl ~seq:0 e)

(* --- JSONL decoding ------------------------------------------------ *)

(* The trace format is deliberately flat: every line is one JSON
   object whose values are strings, numbers, or null.  A few dozen
   lines of scanner therefore decode it without a JSON dependency. *)

type jv =
  | Jstr of string
  | Jnum of float
  | Jnull

exception Bad_line

let parse_fields line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos >= n then raise Bad_line else line.[!pos] in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (peek () = ' ' || peek () = '\t') do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    if peek () <> c then raise Bad_line;
    advance ()
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | c -> Buffer.add_char b c);
        advance ();
        loop ()
      | c ->
        Buffer.add_char b c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> Jstr (parse_string ())
    | 'n' ->
      pos := !pos + 4;
      Jnull
    | 't' ->
      pos := !pos + 4;
      Jnum 1.0
    | 'f' ->
      pos := !pos + 5;
      Jnum 0.0
    | _ ->
      let start = !pos in
      while
        !pos < n
        &&
        match peek () with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      do
        advance ()
      done;
      if !pos = start then raise Bad_line;
      (match float_of_string_opt (String.sub line start (!pos - start)) with
      | Some f -> Jnum f
      | None -> raise Bad_line)
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if peek () = '}' then []
  else begin
    let rec members () =
      skip_ws ();
      let key = parse_string () in
      expect ':';
      let v = parse_value () in
      fields := (key, v) :: !fields;
      skip_ws ();
      match peek () with
      | ',' ->
        advance ();
        members ()
      | '}' -> ()
      | _ -> raise Bad_line
    in
    members ();
    List.rev !fields
  end

let fstr fields key =
  match List.assoc_opt key fields with
  | Some (Jstr s) -> s
  | _ -> raise Bad_line

let fint fields key =
  match List.assoc_opt key fields with
  | Some (Jnum f) -> int_of_float f
  | _ -> raise Bad_line

let ffloat fields key =
  match List.assoc_opt key fields with
  | Some (Jnum f) -> f
  | _ -> raise Bad_line

let fopt fields key =
  match List.assoc_opt key fields with
  | Some (Jstr s) -> Some s
  | _ -> None

let of_jsonl line =
  match parse_fields line with
  | exception Bad_line -> None
  | fields -> (
    try
      let seq = fint fields "seq" in
      let e =
        match fstr fields "type" with
        | "generate" ->
          Generate
            {
              replica = fstr fields "replica";
              op_id = fopt fields "op";
              intent = fstr fields "intent";
              queue = fint fields "queue";
              tick = fint fields "tick";
            }
        | "send" ->
          Send
            {
              src = fstr fields "src";
              dst = fstr fields "dst";
              op_id = fopt fields "op";
              bytes = fint fields "bytes";
              queue = fint fields "queue";
              tick = fint fields "tick";
            }
        | "deliver" ->
          Deliver
            {
              replica = fstr fields "replica";
              src = fstr fields "src";
              op_id = fopt fields "op";
              transforms = fint fields "transforms";
              queue = fint fields "queue";
              tick = fint fields "tick";
            }
        | "transform" ->
          Transform
            { replica = fstr fields "replica"; count = fint fields "count" }
        | "apply" ->
          Apply
            {
              replica = fstr fields "replica";
              op_id = fopt fields "op";
              doc_len = fint fields "doc_len";
              tick = fint fields "tick";
            }
        | "wire" ->
          Wire
            {
              channel = fstr fields "channel";
              action = fstr fields "action";
              wseq = fint fields "wseq";
              info = fint fields "info";
              tick = fint fields "tick";
            }
        | "state_space_grow" ->
          State_space_grow
            {
              replica = fstr fields "replica";
              level = fint fields "level";
              states = fint fields "states";
              transitions = fint fields "transitions";
            }
        | "span" ->
          Span { name = fstr fields "name"; dur_ns = ffloat fields "dur_ns" }
        | "gc_begin" ->
          Gc_begin
            {
              cycle = fint fields "cycle";
              trigger = fstr fields "trigger";
              meta = fint fields "meta";
              tick = fint fields "tick";
            }
        | "gc_end" ->
          Gc_end
            {
              cycle = fint fields "cycle";
              reclaimed_states = fint fields "reclaimed_states";
              reclaimed_log = fint fields "reclaimed_log";
              reclaimed_keys = fint fields "reclaimed_keys";
              meta = fint fields "meta";
              snapshot_bytes = fint fields "snapshot_bytes";
              skipped = fint fields "skipped";
              tick = fint fields "tick";
            }
        | _ -> raise Bad_line
      in
      Some (seq, e)
    with Bad_line -> None)
