(** Trace sinks: where structured events go.

    Three sinks cover every use:
    - {!null} drops everything — the production default.  Call sites
      guard event {e construction} behind {!enabled}, so a disabled
      sink costs one branch on the hot path and allocates nothing.
    - {!memory} accumulates events for in-process analysis (tests,
      the trace CLI's aggregation pass).
    - {!channel} streams JSONL lines to an [out_channel] as events
      arrive (the trace CLI's [--json] output).

    Sinks assign each event its trace sequence number. *)

type t

val null : t

val memory : unit -> t

(** [channel oc] writes one JSONL line per event to [oc].  The caller
    keeps ownership of [oc] (closing it, flushing on exit). *)
val channel : out_channel -> t

(** Whether {!emit} would record anything.  Guard event construction
    with this to keep the disabled path free. *)
val enabled : t -> bool

val emit : t -> Event.t -> unit

(** Events recorded so far, oldest first.  Empty for {!null} and
    {!channel} sinks. *)
val events : t -> Event.t list

(** Number of events emitted (including to a channel sink). *)
val count : t -> int
