open Rlist_model
open Rlist_ot

let name = "cscw"

let server_is_replica = true

type c2s = {
  op : Op.t;
  seen : int;
}

type s2c =
  | Forward of {
      op : Op.t;
      ack_local : int;
    }
  | Ack

type client = {
  id : int;
  space : Two_d_space.t;
  mutable doc : Document.t;
  mutable next_seq : int;
  mutable seen : int;  (* remote operations received from the server *)
  mutable visible : Op_id.Set.t;
  ot_counter : int ref;
}

type server = {
  nclients : int;
  spaces : Two_d_space.t array;  (* index 1..n: DSS_{s,i} *)
  mutable server_doc : Document.t;
  mutable server_visible : Op_id.Set.t;
  server_ot_counter : int ref;
}

let create_client ~fastpath:_ ~nclients ~id ~initial =
  ignore nclients;
  if id < 1 then invalid_arg "CSCW: client identifiers start at 1";
  let ot_counter = ref 0 in
  {
    id;
    space = Two_d_space.create ~ot_counter ();
    doc = initial;
    next_seq = 1;
    seen = 0;
    visible = Op_id.Set.empty;
    ot_counter;
  }

let create_server ~fastpath:_ ~nclients ~initial =
  let server_ot_counter = ref 0 in
  {
    nclients;
    spaces =
      Array.init (nclients + 1) (fun _ ->
          Two_d_space.create ~ot_counter:server_ot_counter ());
    server_doc = initial;
    server_visible = Op_id.Set.empty;
    server_ot_counter;
  }

(* Local processing (Section 5.2.1): execute immediately, save along
   the local dimension, propagate. *)
let client_generate t intent =
  let doc_length = Document.length t.doc in
  if not (Intent.valid_for ~doc_length intent) then
    invalid_arg
      (Format.asprintf "CSCW client %d: intent %a out of bounds (length %d)"
         t.id Intent.pp intent doc_length);
  let emit op outcome =
    t.doc <- Op.apply op t.doc;
    t.visible <- Op_id.Set.add op.Op.id t.visible;
    let top = Two_d_space.add_local t.space op ~at_global:t.seen in
    (* The client generates on its current state, so no transformation
       happens here. *)
    assert (Op.equal top op);
    outcome, Some { op; seen = t.seen }
  in
  match intent with
  | Intent.Read ->
    ( { Rlist_sim.Protocol_intf.op = Rlist_spec.Event.Do_read; op_id = None },
      None )
  | Intent.Insert (value, pos) ->
    let id = Op_id.make ~client:t.id ~seq:t.next_seq in
    t.next_seq <- t.next_seq + 1;
    let elt = Element.make ~value ~id in
    emit
      (Op.make_ins ~id elt pos)
      {
        Rlist_sim.Protocol_intf.op = Rlist_spec.Event.Do_ins (elt, pos);
        op_id = Some id;
      }
  | Intent.Delete pos ->
    let elt = Document.nth t.doc pos in
    let id = Op_id.make ~client:t.id ~seq:t.next_seq in
    t.next_seq <- t.next_seq + 1;
    emit
      (Op.make_del ~id elt pos)
      {
        Rlist_sim.Protocol_intf.op = Rlist_spec.Event.Do_del (elt, pos);
        op_id = Some id;
      }

(* Server processing (Section 5.2.2): transform the incoming operation
   in the originator's space, execute it, append the transformed form
   to every other space's global dimension, and propagate. *)
let server_receive t ~from ({ op; seen } : c2s) =
  let transformed = Two_d_space.add_local t.spaces.(from) op ~at_global:seen in
  t.server_doc <- Op.apply transformed t.server_doc;
  t.server_visible <- Op_id.Set.add op.Op.id t.server_visible;
  List.init t.nclients (fun i ->
      let dest = i + 1 in
      if dest = from then dest, Ack
      else begin
        let local, _global = Two_d_space.extent t.spaces.(dest) in
        (* [transformed] is defined on the server's current state, the
           top of every per-client space. *)
        let top = Two_d_space.add_global t.spaces.(dest) transformed ~at_local:local in
        assert (Op.equal top transformed);
        dest, Forward { op = transformed; ack_local = local }
      end)

(* Remote processing (Section 5.2.3): transform the server's operation
   against the client's concurrent local operations and execute. *)
let client_receive t = function
  | Ack -> ()
  | Forward { op; ack_local } ->
    let transformed = Two_d_space.add_global t.space op ~at_local:ack_local in
    t.doc <- Op.apply transformed t.doc;
    t.visible <- Op_id.Set.add op.Op.id t.visible;
    t.seen <- t.seen + 1

let c2s_op_id ({ op; _ } : c2s) = Some op.Op.id

let s2c_op_id = function
  | Forward { op; _ } -> Some op.Op.id
  | Ack -> None

let client_document t = t.doc

let server_document t = t.server_doc

let client_visible t = t.visible

let server_visible t = t.server_visible

let client_ot_count t = !(t.ot_counter)

let server_ot_count t = !(t.server_ot_counter)

let client_metadata_size t = Two_d_space.size t.space

let server_metadata_size t =
  let sum = ref 0 in
  for i = 1 to t.nclients do
    sum := !sum + Two_d_space.size t.spaces.(i)
  done;
  !sum

(* Observability: the dispersed footprint, space by space.  The CSS
   comparison ("one compact space vs 2n 2D spaces") needs the
   per-dimension breakdown, not just the sum. *)
let server_space_sizes t =
  List.init t.nclients (fun i -> i + 1, Two_d_space.size t.spaces.(i + 1))

let client_space_extent t = Two_d_space.extent t.space

(* Batch delivery: these protocols have no per-run shortcut (CRDT
   integration and 2D-space transformation are inherently per
   operation), so a batch is just the in-order fold. *)
let server_receive_batch t ~from batch =
  List.concat_map (fun msg -> server_receive t ~from msg) batch

let client_receive_batch t batch = List.iter (client_receive t) batch

(* No ack-driven pruning machinery; GC-enabled runs degrade to
   shim-level pruning only. *)
let gc_support = None
