open Rlist_model
open Rlist_ot

let name = "naive-dopt"

let server_is_replica = true

type c2s = {
  op : Op.t;
  clock : int array;
}

type s2c = {
  op : Op.t;
  clock : int array;
  origin : int;
}

(* [orig_clock] is the concurrency information a correct algorithm
   would consult; the naive foil records it and never reads it — that
   omission is the bug being demonstrated. *)
type executed = {
  form : Op.t;  (* the form actually applied to the document *)
  orig_clock : int array;  (* the generator's knowledge *)
  orig_client : int;
  orig_seq : int;
}
[@@warning "-69"]

type client = {
  id : int;
  nclients : int; [@warning "-69"]
  mutable doc : Document.t;
  mutable next_seq : int;
  mutable log : executed list;  (* reversed execution order *)
  clock : int array;
  mutable visible : Op_id.Set.t;
  mutable ot_count : int;
}

type server = {
  snclients : int;
  mutable sdoc : Document.t;
  mutable svisible : Op_id.Set.t;
  mutable slog : executed list;
  sclock : int array;
  mutable sot_count : int;
}

let create_client ~fastpath:_ ~nclients ~id ~initial =
  {
    id;
    nclients;
    doc = initial;
    next_seq = 1;
    log = [];
    clock = Array.make (nclients + 1) 0;
    visible = Op_id.Set.empty;
    ot_count = 0;
  }

let create_server ~fastpath:_ ~nclients ~initial =
  {
    snclients = nclients;
    sdoc = initial;
    svisible = Op_id.Set.empty;
    slog = [];
    sclock = Array.make (nclients + 1) 0;
    sot_count = 0;
  }

(* [known clock e]: was [e]'s original operation known to the
   generator of the incoming operation? *)
let known clock e = clock.(e.orig_client) >= e.orig_seq

(* dOPT-style integration: transform the remote operation against the
   concurrent executed operations, in execution order, with the
   non-convergent tie-break. *)
let integrate ~count log clock op =
  List.fold_left
    (fun o e ->
      if known clock e then o
      else begin
        incr count;
        Transform.xform_no_priority o e.form
      end)
    op (List.rev log)

let record_execution t form ~orig_clock ~orig_client ~orig_seq =
  t.log <- { form; orig_clock; orig_client; orig_seq } :: t.log

let client_generate t intent =
  let doc_length = Document.length t.doc in
  if not (Intent.valid_for ~doc_length intent) then
    invalid_arg
      (Format.asprintf "naive client %d: intent %a out of bounds (length %d)"
         t.id Intent.pp intent doc_length);
  let emit op outcome =
    t.doc <- Op.apply op t.doc;
    t.clock.(t.id) <- t.clock.(t.id) + 1;
    t.visible <- Op_id.Set.add op.Op.id t.visible;
    let clock = Array.copy t.clock in
    record_execution t op ~orig_clock:clock ~orig_client:t.id
      ~orig_seq:op.Op.id.Op_id.seq;
    outcome, Some { op; clock }
  in
  match intent with
  | Intent.Read ->
    ( { Rlist_sim.Protocol_intf.op = Rlist_spec.Event.Do_read; op_id = None },
      None )
  | Intent.Insert (value, pos) ->
    let id = Op_id.make ~client:t.id ~seq:t.next_seq in
    t.next_seq <- t.next_seq + 1;
    let elt = Element.make ~value ~id in
    emit
      (Op.make_ins ~id elt pos)
      {
        Rlist_sim.Protocol_intf.op = Rlist_spec.Event.Do_ins (elt, pos);
        op_id = Some id;
      }
  | Intent.Delete pos ->
    let elt = Document.nth t.doc pos in
    let id = Op_id.make ~client:t.id ~seq:t.next_seq in
    t.next_seq <- t.next_seq + 1;
    emit
      (Op.make_del ~id elt pos)
      {
        Rlist_sim.Protocol_intf.op = Rlist_spec.Event.Do_del (elt, pos);
        op_id = Some id;
      }

(* The relay "server" integrates the operation into its own copy (it
   is a replica like any other) and forwards the original to
   everyone. *)
let server_receive t ~from ({ op; clock } : c2s) =
  let count = ref t.sot_count in
  let form = integrate ~count t.slog clock op in
  t.sot_count <- !count;
  t.sdoc <- Op.apply form t.sdoc;
  t.sclock.(from) <- t.sclock.(from) + 1;
  t.svisible <- Op_id.Set.add op.Op.id t.svisible;
  t.slog <-
    {
      form;
      orig_clock = clock;
      orig_client = from;
      orig_seq = op.Op.id.Op_id.seq;
    }
    :: t.slog;
  List.init t.snclients (fun i -> i + 1, { op; clock; origin = from })

let client_receive t ({ op; clock; origin } : s2c) =
  if origin <> t.id then begin
    let count = ref t.ot_count in
    let form = integrate ~count t.log clock op in
    t.ot_count <- !count;
    t.doc <- Op.apply form t.doc;
    t.clock.(origin) <- t.clock.(origin) + 1;
    t.visible <- Op_id.Set.add op.Op.id t.visible;
    record_execution t form ~orig_clock:clock ~orig_client:origin
      ~orig_seq:op.Op.id.Op_id.seq
  end

let c2s_op_id ({ op; _ } : c2s) = Some op.Op.id

let s2c_op_id ({ op; _ } : s2c) = Some op.Op.id

let client_document t = t.doc

let server_document t = t.sdoc

let client_visible t = t.visible

let server_visible t = t.svisible

let client_ot_count t = t.ot_count

let server_ot_count t = t.sot_count

let client_metadata_size t = List.length t.log

let server_metadata_size t = List.length t.slog

let client_log t = List.rev_map (fun e -> e.form) t.log

(* Batch delivery: these protocols have no per-run shortcut (CRDT
   integration and 2D-space transformation are inherently per
   operation), so a batch is just the in-order fold. *)
let server_receive_batch t ~from batch =
  List.concat_map (fun msg -> server_receive t ~from msg) batch

let client_receive_batch t batch = List.iter (client_receive t) batch

(* No ack-driven pruning machinery; GC-enabled runs degrade to
   shim-level pruning only. *)
let gc_support = None
