(** The CSCW Jupiter protocol (paper, Section 5): the complete
    multi-client description of the original Jupiter two-way
    synchronization protocol.

    Each client maintains one 2D state-space ({!Two_d_space}); the
    server maintains one per client — [2n] spaces in total for [n]
    clients, against which the CSS protocol's single compact space is
    measured.  The server serializes operations; it propagates
    {e transformed} operations [o{L1}] (unlike the CSS protocol, which
    redirects originals), which is exactly the implementation
    optimization eliminating redundant OTs at clients (Section 7.2).

    Messages carry the classic Jupiter state-vector counters: a client
    message says how many server messages the client had seen; a
    server message says how many of the destination's own operations
    the server had processed.  The message sent back to the
    originating client is a pure acknowledgement, keeping the message
    schedule aligned with the CSS protocol for the equivalence theorem
    (Theorem 7.1). *)

open Rlist_ot

type c2s = {
  op : Op.t;  (** Original operation. *)
  seen : int;  (** Server messages (remote operations) the client had
                   received when generating it. *)
}

type s2c =
  | Forward of {
      op : Op.t;  (** The operation transformed at the server,
                      [o{L1}]. *)
      ack_local : int;  (** Operations of the {e destination} client
                            the server had processed. *)
    }
  | Ack  (** The destination's own oldest unacknowledged operation was
             processed by the server. *)

include
  Rlist_sim.Protocol_intf.PROTOCOL with type c2s := c2s and type s2c := s2c

(** {2 Observability} *)

(** The server's dispersed metadata, space by space: [(client, size)]
    for each of the [n] per-client 2D spaces.  The sum is
    {!server_metadata_size}; the breakdown feeds the compactness
    comparison against the CSS protocol's single space. *)
val server_space_sizes : server -> (int * int) list

(** The client's grid extent [(local, global)]: how many own and
    remote operations its 2D space has integrated. *)
val client_space_extent : client -> int * int
