open Rlist_ot

type t = {
  right : (int * int, Op.t) Hashtbl.t;  (* (l,g) -> (l+1,g) *)
  up : (int * int, Op.t) Hashtbl.t;  (* (l,g) -> (l,g+1) *)
  mutable local_count : int;
  mutable global_count : int;
  ot_counter : int ref;
}

let create ~ot_counter () =
  {
    right = Hashtbl.create 64;
    up = Hashtbl.create 64;
    local_count = 0;
    global_count = 0;
    ot_counter;
  }

let extent t = t.local_count, t.global_count

let xform t o1 o2 =
  incr t.ot_counter;
  Transform.xform o1 o2

(* Fill the grid lazily, square by square.  Both recursions bottom out
   at stored original operations: [right] entries decrease [g], [up]
   entries decrease [l]. *)
let rec get_right t (l, g) =
  match Hashtbl.find_opt t.right (l, g) with
  | Some op -> op
  | None ->
    let r = get_right t (l, g - 1) in
    let u = get_up t (l, g - 1) in
    let r' = xform t r u in
    Hashtbl.add t.right (l, g) r';
    r'

and get_up t (l, g) =
  match Hashtbl.find_opt t.up (l, g) with
  | Some op -> op
  | None ->
    let u = get_up t (l - 1, g) in
    let r = get_right t (l - 1, g) in
    let u' = xform t u r in
    Hashtbl.add t.up (l, g) u';
    u'

(* The two [invalid_arg]s below guard the entry points of the 2-D
   space against out-of-range context levels — API-boundary
   validation, not partiality inside the xform recursion itself. *)

let add_local t op ~at_global =
  if at_global < 0 || at_global > t.global_count then
    (invalid_arg
       (Printf.sprintf "Two_d_space.add_local: context global level %d not \
                        in [0, %d]" at_global t.global_count))
    [@lint.allow "exn-partial"];
  Hashtbl.add t.right (t.local_count, at_global) op;
  let top = get_right t (t.local_count, t.global_count) in
  t.local_count <- t.local_count + 1;
  top

let add_global t op ~at_local =
  if at_local < 0 || at_local > t.local_count then
    (invalid_arg
       (Printf.sprintf "Two_d_space.add_global: context local level %d not \
                        in [0, %d]" at_local t.local_count))
    [@lint.allow "exn-partial"];
  Hashtbl.add t.up (at_local, t.global_count) op;
  let top = get_up t (t.local_count, t.global_count) in
  t.global_count <- t.global_count + 1;
  top

let size t = Hashtbl.length t.right + Hashtbl.length t.up
