(** The simulation engine: drives a protocol through a schedule.

    The engine owns the FIFO channels (one per direction per client,
    Section 4.4), records the trace of do events for the specification
    checkers, and records each replica's behaviour — the sequence of
    list states it goes through (Definition 2.5) — for the equivalence
    theorem tests. *)

open Rlist_model

module Make (P : Protocol_intf.PROTOCOL) : sig
  type t

  (** [net], when given, replaces the perfect FIFO queues with
      fault-injected channels drawn from that network configuration
      (all channels share its RNG and statistics).  With the
      configuration's reliability shim enabled the engine still
      presents the protocols with the FIFO-exactly-once channels they
      assume; with it disabled, whatever the fault model does reaches
      the protocol unfiltered.

      [batching] (default [false]) coalesces consecutive sends towards
      a channel into one batch message: outgoing operations accumulate
      in a per-channel outbox and enter the transport — one sequence
      number, one retransmission unit — only when a delivery event
      targets that channel.  Multi-operation batches are handed to the
      protocol's [server_receive_batch]/[client_receive_batch];
      singletons take the ordinary one-message path, so a
      non-coalescing run is identical to the unbatched engine.  FIFO
      order is preserved because the outbox drains entirely, in send
      order, before the payload behind it is delivered.

      [gc], when given, runs the continuous compaction discipline: the
      policy's triggers are checked after every applied event, and a
      firing trigger runs one cycle — an out-of-band heartbeat
      exchange on the empty channels (protocols with
      [Protocol_intf.gc_support]; others degrade to shim-level
      pruning), dedup-key pruning in the reliability shim, and a
      periodic stable snapshot.  Cycles consume no transport sends, no
      sequence numbers, no RNG draws, and no behavior entries, so a
      GC-on run is schedule- and behavior-identical to the same seed
      with GC off — it just retains less metadata.  Cycle boundaries
      land in the flight recorder and (as [gc_begin]/[gc_end] events)
      in the trace.

      [history] (default [true]): retain the spec-event trace and the
      behavior list.  These are the engine's only structures that grow
      with the horizon regardless of GC, so unbounded soaks switch
      them off; {!trace} and {!behavior} then return empty. *)
  val create :
    ?initial:Document.t ->
    ?net:Rlist_net.Transport.config ->
    ?batching:bool ->
    ?gc:Rlist_gc.policy ->
    ?history:bool ->
    ?fastpath:Rlist_ot.Fastpath.t ->
    nclients:int ->
    unit ->
    t

  val nclients : t -> int

  (** Apply one schedule event.
      @raise Invalid_argument on a delivery from an empty channel or an
      out-of-bounds intent. *)
  val apply_event : t -> Schedule.event -> unit

  val run : t -> Schedule.t -> unit

  (** Enqueue a protocol control message (e.g. a {!Pruned_protocol}
      heartbeat) on client [i]'s client-to-server channel, outside any
      generate event.  It flows through the normal channel (faults,
      shim and all) and is consumed by [Deliver_to_server] /
      {!quiesce}. *)
  val inject_c2s : t -> int -> P.c2s -> unit

  (** Drive the engine through a random but valid interleaving of
      generations and deliveries, then quiesce and issue one final read
      per client.  Deterministic in the given RNG state.  Returns the
      concrete schedule performed, ready to be replayed verbatim
      against another protocol.

      [intent], when given, chooses each generated intent (it must be
      valid for the given document length) — this is how the workload
      profiles plug in; by default intents are drawn uniformly
      following [params]. *)
  val run_random :
    ?intent:(client:int -> doc_length:int -> Intent.t) ->
    t ->
    rng:Random.State.t ->
    params:Schedule.random_params ->
    Schedule.t

  (** Drive the engine under a latency model: clients generate at
      exponentially distributed intervals, every message takes an
      exponentially distributed one-way latency, and deliveries happen
      in virtual-time order — but FIFO per channel, like TCP, so the
      protocols' channel assumption holds.  Quiesces (all messages
      delivered) before returning the realized schedule, which replays
      verbatim on any behaviour-equivalent protocol. *)
  val run_timed :
    ?intent:(client:int -> doc_length:int -> Intent.t) ->
    t ->
    rng:Random.State.t ->
    params:Schedule.timed_params ->
    Schedule.t

  (** Deliver every pending message (client-to-server first, then
      server-to-client, round-robin) until all channels are empty,
      advancing the network clock whenever nothing is ready so delayed
      payloads arrive and lost ones are retransmitted.  Returns the
      delivery events performed, so the completed schedule can be
      replayed against another protocol.
      @raise Invalid_argument when the channels cannot quiesce (total
      loss, or a lossy network with the shim disabled). *)
  val quiesce : t -> Schedule.event list

  val pending_messages : t -> int

  (** Depth of one FIFO channel in {e operations} (unflushed outbox
      included), for enumerating the enabled delivery events of a
      configuration (the model checker's frontier). *)
  val pending_to_server : t -> int -> int

  val pending_to_client : t -> int -> int

  val client_document : t -> int -> Document.t

  val server_document : t -> Document.t

  (** All replicas (server included) hold equal documents. *)
  val converged : t -> bool

  (** The recorded trace of do events, for specification checking. *)
  val trace : t -> Rlist_spec.Trace.t

  (** The concatenated behaviours: after each processed event, which
      replica changed and its document.  Two protocols are equivalent
      under a schedule iff these sequences agree (Theorem 7.1). *)
  val behavior : t -> (Replica_id.t * Document.t) list

  val total_ot_count : t -> int

  val client_ot_count : t -> int -> int

  val server_ot_count : t -> int

  val total_metadata_size : t -> int

  val client_metadata_size : t -> int -> int

  val server_metadata_size : t -> int

  (** Direct access for protocol-specific inspection (rendering state
      spaces, structural lemma checks). *)
  val server : t -> P.server

  val client : t -> int -> P.client

  (** Cumulative GC accounting; [None] when the engine was created
      without a policy. *)
  val gc_stats : t -> Rlist_gc.stats option

  (** The most recent stable snapshot taken by a GC cycle
      ([Snapshot.stable_of_string] parses it), if any cycle has
      snapshotted yet. *)
  val gc_last_snapshot : t -> string option

  (** Total dedup-key population across all channel shims — the
      metadata the GC's shim-pruning step bounds. *)
  val dedup_keys : t -> int

  (** Attach an observability context: from now on the engine feeds
      counters and histograms into [obs]'s metrics registry and, when
      the sink is enabled, emits one structured event per generate /
      send / deliver / apply.  Transform counts are reported as deltas
      of the protocol's cumulative OT counters, so they attribute each
      primitive transformation to the delivery that caused it.  An
      engine without an attached context pays a single [None] branch
      per event. *)
  val attach_obs : t -> Rlist_obs.Obs.t -> unit

  val obs : t -> Rlist_obs.Obs.t option

  (** Attach a flight recorder: every nondeterministic decision the
      run makes from now on — generated intents, delivery order, batch
      flush boundaries, the tick schedule, and (through the network
      configuration, when one was given) every fault draw the wire
      takes — is recorded as a replay witness.  Costs one [None]
      branch per decision when detached. *)
  val attach_recorder : t -> Rlist_obs.Recorder.t -> unit

  (** The engine's virtual clock: how many times the channels have
      been ticked.  Mirrors [Transport.now] of every channel; trace
      events are stamped with it. *)
  val clock : t -> int
end
