(** The interface for fully distributed (server-less) replicated-list
    protocols: [n] peers, pairwise FIFO channels, broadcast-based
    dissemination.

    This is the substrate for the paper's first future-work direction:
    running the CSS protocol over "a distributed scheme to totally
    order operations" instead of a central server. *)

(* Interface-carrier module: this file holds module types only and
   *is* the interface; a duplicated .mli would just drift. *)
[@@@lint.allow "missing-mli"]

open Rlist_model

module type P2P_PROTOCOL = sig
  val name : string

  type peer

  type message

  (** [fastpath] is the engine run's fast-path configuration record
      ({!Rlist_ot.Fastpath}), one record shared by every peer of a
      run; peers without Algorithm 1 ladders ignore it. *)
  val create_peer :
    fastpath:Rlist_ot.Fastpath.t ->
    npeers:int ->
    id:int ->
    initial:Document.t ->
    peer

  (** Perform a user intent; the returned message, if any, is
      broadcast to every other peer.
      @raise Invalid_argument on out-of-bounds positions. *)
  val generate : peer -> Intent.t -> Protocol_intf.do_outcome * message option

  (** Receive one message from peer [from]; the returned message, if
      any, is broadcast in reaction (e.g. a clock announcement for
      stability detection).  Reactions to reactions must eventually
      stop for executions to quiesce. *)
  val receive : peer -> from:int -> message -> message option

  (** Receive a coalesced batch of messages from one channel flush;
      the returned reactions are broadcast in order.  Must be
      observably identical to receiving the messages one by one.
      Engines deliver singleton batches through {!receive}. *)
  val receive_batch : peer -> from:int -> message list -> message list

  (** The identifier of the operation a message carries, for trace
      labelling; [None] for control messages (clock announcements). *)
  val message_op_id : message -> Op_id.t option

  val document : peer -> Document.t

  val visible : peer -> Op_id.Set.t

  val ot_count : peer -> int

  val metadata_size : peer -> int

  (** Operations received but not yet integrated (awaiting
      stability). *)
  val buffered : peer -> int
end
