open Rlist_model
module Obs = Rlist_obs.Obs
module Metrics = Rlist_obs.Metrics
module Ev = Rlist_obs.Event
module Recorder = Rlist_obs.Recorder
module Transport = Rlist_net.Transport

(* The flight-recorder rendering of an intent; Schedule_text's [gen]
   syntax, so recorded schedules parse back for the shrinker. *)
let intent_string = function
  | Intent.Insert (c, p) -> Printf.sprintf "ins %c %d" c p
  | Intent.Delete p -> Printf.sprintf "del %d" p
  | Intent.Read -> "read"

(* Channels stuck for this many consecutive virtual-clock ticks (no
   delivery possible anywhere, retransmission timers included) mean the
   network cannot quiesce — e.g. a permanent partition, or loss with
   the shim disabled. *)
let quiesce_fuel = 100_000

module Driver = Rlist_gc.Driver

module Make (P : Protocol_intf.PROTOCOL) = struct
  (* Everything the observability layer needs, allocated once at
     {!attach_obs}: metric handles plus per-replica counter snapshots
     (index 0 is the server) so each delivery can report {e deltas} of
     the protocol's cumulative OT/metadata counters. *)
  type obs_state = {
    obs : Obs.t;
    c_updates : Metrics.counter;
    c_reads : Metrics.counter;
    c_c2s : Metrics.counter;
    c_s2c : Metrics.counter;
    c_deliver_s : Metrics.counter;
    c_deliver_c : Metrics.counter;
    c_transforms : Metrics.counter;
    h_batch_size : Metrics.histogram;
    h_deliver_tr : Metrics.histogram;
    h_c2s_depth : Metrics.histogram;
    h_s2c_depth : Metrics.histogram;
    h_msg_bytes : Metrics.histogram;
    h_latency : Metrics.histogram;
    g_metadata : Metrics.gauge;
    last_ot : int array;
    last_meta : int array;
    mutable meta_total : int;
  }

  (* Channels carry {e batches}: with batching off every payload is a
     singleton, delivered through the protocol's one-message receive
     functions, so the default mode is observably the unbatched
     engine.  With batching on, consecutive sends towards one channel
     accumulate in an engine-level outbox (in front of the transport,
     which assigns a sequence number at [send]) and are flushed as one
     payload — one seqno, one retransmission unit — when a delivery
     event targets that channel. *)
  type t = {
    nclients : int;
    server : P.server;
    clients : P.client array;  (* index 0 unused; clients are 1-based *)
    to_server : P.c2s list Transport.t array;
    to_client : P.s2c list Transport.t array;
    batching : bool;
    out_c2s : P.c2s list array;  (* per-client outbox, reversed *)
    out_s2c : P.s2c list array;  (* per-destination outbox, reversed *)
    mutable events : Rlist_spec.Event.t list;  (* reversed *)
    mutable next_eid : int;
    mutable behavior : (Replica_id.t * Document.t) list;  (* reversed *)
    initial : Document.t;
    mutable obs : obs_state option;
    net : Transport.config option;
    mutable clock : int;  (* mirrors the per-channel virtual clocks *)
    mutable recorder : Recorder.t option;
    gc : gc_state option;
    history : bool;
        (* retain the spec-event trace and behavior lists; switched
           off for unbounded soaks, where they are the one engine
           structure that grows with the horizon *)
  }

  and gc_state = {
    g_driver : Driver.t;
    g_support : (P.client, P.server, P.c2s) Protocol_intf.gc_support option;
    mutable g_last_snapshot : string option;
  }

  (* The dedup key of a batch joins its operations' identifiers: a
     retransmitted batch is suppressed as a unit, and a singleton's
     key is the seed engine's. *)
  let batch_key ids =
    match List.filter_map (Option.map Op_id.to_string) ids with
    | [] -> None
    | keys -> Some (String.concat "+" keys)

  let create ?(initial = Document.empty) ?net ?(batching = false) ?gc
      ?(history = true) ?fastpath ~nclients () =
    if nclients < 1 then invalid_arg "Engine.create: need at least one client";
    let fastpath =
      match fastpath with
      | Some fp -> fp
      | None -> Rlist_ot.Fastpath.create ()
    in
    let channel key name =
      match net with
      | None -> Transport.perfect ()
      | Some cfg -> Transport.create ~key ~weight:List.length ~name cfg
    in
    let c2s_key batch = batch_key (List.map P.c2s_op_id batch) in
    let s2c_key batch = batch_key (List.map P.s2c_op_id batch) in
    {
      nclients;
      server = P.create_server ~fastpath ~nclients ~initial;
      clients =
        Array.init (nclients + 1) (fun i ->
            P.create_client ~fastpath ~nclients ~id:(max i 1) ~initial);
      to_server =
        Array.init (nclients + 1) (fun i ->
            channel c2s_key (Printf.sprintf "c%d->server" i));
      to_client =
        Array.init (nclients + 1) (fun i ->
            channel s2c_key (Printf.sprintf "server->c%d" i));
      batching;
      out_c2s = Array.make (nclients + 1) [];
      out_s2c = Array.make (nclients + 1) [];
      events = [];
      next_eid = 0;
      behavior = [];
      initial;
      obs = None;
      net;
      clock = 0;
      recorder = None;
      gc =
        Option.map
          (fun policy ->
            {
              g_driver = Driver.create policy;
              g_support = P.gc_support;
              g_last_snapshot = None;
            })
          gc;
      history;
    }

  let record_decision t d =
    match t.recorder with
    | Some r -> Recorder.record r d
    | None -> ()

  let tick_channels t =
    for i = 1 to t.nclients do
      Transport.tick t.to_server.(i);
      Transport.tick t.to_client.(i)
    done;
    t.clock <- t.clock + 1;
    record_decision t (Recorder.Tick t.clock)

  let nclients t = t.nclients

  let check_client t i =
    if i < 1 || i > t.nclients then
      invalid_arg (Printf.sprintf "Engine: client %d out of range" i)

  (* Channel occupancy, outbox included: an unflushed outbox is one
     deliverable unit (the delivery event flushes it first) and
     [length] pending operations. *)
  let pending_c2s t i =
    Transport.pending t.to_server.(i) + List.length t.out_c2s.(i)

  let pending_s2c t i =
    Transport.pending t.to_client.(i) + List.length t.out_s2c.(i)

  let deliverable_c2s t i =
    Transport.deliverable t.to_server.(i)
    + (match t.out_c2s.(i) with [] -> 0 | _ -> 1)

  let deliverable_s2c t i =
    Transport.deliverable t.to_client.(i)
    + (match t.out_s2c.(i) with [] -> 0 | _ -> 1)

  (* --- observability ------------------------------------------------- *)

  (* Replica 0 is the server in the per-replica snapshot arrays. *)
  let replica_ot t i =
    if i = 0 then P.server_ot_count t.server
    else P.client_ot_count t.clients.(i)

  let replica_meta t i =
    if i = 0 then P.server_metadata_size t.server
    else P.client_metadata_size t.clients.(i)

  let rname i = if i = 0 then "server" else "c" ^ string_of_int i

  (* A crude but protocol-agnostic payload estimate: the heap words
     reachable from the message, in bytes.  Shared substructure is
     counted once per message, mirroring what a naive serializer would
     transmit. *)
  let bytes_estimate v = Obj.reachable_words (Obj.repr v) * (Sys.word_size / 8)

  let attach_obs t obs =
    let m = obs.Obs.metrics in
    let last_ot = Array.init (t.nclients + 1) (fun i -> replica_ot t i) in
    let last_meta = Array.init (t.nclients + 1) (fun i -> replica_meta t i) in
    let meta_total = Array.fold_left ( + ) 0 last_meta in
    let os =
      {
        obs;
        c_updates = Metrics.counter m "engine.updates_generated";
        c_reads = Metrics.counter m "engine.reads_generated";
        c_c2s = Metrics.counter m "engine.msgs_c2s_sent";
        c_s2c = Metrics.counter m "engine.msgs_s2c_sent";
        c_deliver_s = Metrics.counter m "engine.deliveries_to_server";
        c_deliver_c = Metrics.counter m "engine.deliveries_to_client";
        c_transforms = Metrics.counter m "engine.transforms";
        h_batch_size = Metrics.histogram m "engine.batch_size";
        h_deliver_tr = Metrics.histogram m "engine.transforms_per_delivery";
        h_c2s_depth = Metrics.histogram m "channel.c2s.depth";
        h_s2c_depth = Metrics.histogram m "channel.s2c.depth";
        h_msg_bytes = Metrics.histogram m "engine.msg_bytes";
        h_latency = Metrics.histogram m "engine.virtual_latency";
        g_metadata = Metrics.gauge m "engine.metadata_total";
        last_ot;
        last_meta;
        meta_total;
      }
    in
    Metrics.set_gauge os.g_metadata (float_of_int meta_total);
    (match t.net with
    | Some cfg -> Transport.set_obs cfg (Some obs)
    | None -> ());
    t.obs <- Some os

  let obs t = Option.map (fun (os : obs_state) -> os.obs) t.obs

  let attach_recorder t r =
    t.recorder <- Some r;
    match t.net with
    | Some cfg -> Transport.set_recorder cfg (Some r)
    | None -> ()

  let clock t = t.clock

  (* Consume the replica's OT-counter delta since the last probe. *)
  let ot_delta os t i =
    let current = replica_ot t i in
    let delta = current - os.last_ot.(i) in
    os.last_ot.(i) <- current;
    delta

  let meta_delta os t i =
    let current = replica_meta t i in
    let delta = current - os.last_meta.(i) in
    os.last_meta.(i) <- current;
    os.meta_total <- os.meta_total + delta;
    Metrics.set_gauge os.g_metadata (float_of_int os.meta_total);
    delta

  let id_str = Option.map Op_id.to_string

  (* Payload estimate of a batch: unwrap singletons so the default
     mode reports exactly what the unbatched engine did. *)
  let batch_bytes = function [ m ] -> bytes_estimate m | batch ->
    bytes_estimate batch

  (* Flush an outbox into its transport as one batch payload; the
     send-side observability (message counters, depth and size
     histograms, trace Send event) fires here, where the message
     actually enters the channel. *)
  let flush_outbox t ~(outbox : 'm list array) ~channels ~i ~src ~dst
      ~op_id_of =
    match outbox.(i) with
    | [] -> ()
    | rev -> (
      outbox.(i) <- [];
      let batch = List.rev rev in
      record_decision t
        (Recorder.Flush
           { channel = src ^ "->" ^ dst; ops = List.length batch });
      Transport.send channels.(i) batch;
      match t.obs with
      | None -> ()
      | Some os ->
        (if src = "server" then Metrics.incr os.c_s2c
         else Metrics.incr os.c_c2s);
        Metrics.observe os.h_batch_size (float_of_int (List.length batch));
        let depth = Transport.pending channels.(i) in
        Metrics.observe
          (if src = "server" then os.h_s2c_depth else os.h_c2s_depth)
          (float_of_int depth);
        Metrics.observe os.h_msg_bytes (float_of_int (batch_bytes batch));
        if Obs.tracing os.obs then
          Obs.emit os.obs
            (Ev.Send
               {
                 src;
                 dst;
                 op_id = batch_key (List.map op_id_of batch);
                 bytes = batch_bytes batch;
                 queue = depth;
                 tick = t.clock;
               }))

  let flush_c2s t i =
    flush_outbox t ~outbox:t.out_c2s ~channels:t.to_server ~i ~src:(rname i)
      ~dst:"server" ~op_id_of:P.c2s_op_id

  let flush_s2c t i =
    flush_outbox t ~outbox:t.out_s2c ~channels:t.to_client ~i ~src:"server"
      ~dst:(rname i) ~op_id_of:P.s2c_op_id

  let record_behavior t replica doc =
    if t.history then t.behavior <- (replica, doc) :: t.behavior

  let record_do t i (outcome : Protocol_intf.do_outcome) =
    if t.history then begin
      let client = t.clients.(i) in
      let event =
        Rlist_spec.Event.make ~eid:t.next_eid ~replica:(Replica_id.Client i)
          ~op:outcome.Protocol_intf.op ~op_id:outcome.Protocol_intf.op_id
          ~result:(P.client_document client)
          ~visible:(P.client_visible client)
      in
      t.next_eid <- t.next_eid + 1;
      t.events <- event :: t.events
    end

  (* --- continuous GC ------------------------------------------------- *)

  let note_gc_ops t n =
    match t.gc with
    | Some g when n > 0 -> Driver.note_ops g.g_driver n
    | _ -> ()

  let op_count op_id_of batch =
    List.fold_left
      (fun n m -> match op_id_of m with Some _ -> n + 1 | None -> n)
      0 batch

  let system_meta t =
    let sum = ref (P.server_metadata_size t.server) in
    for i = 1 to t.nclients do
      sum := !sum + P.client_metadata_size t.clients.(i)
    done;
    !sum

  let emit_gc_event t ev =
    match t.obs with
    | Some os when Obs.tracing os.obs -> Obs.emit os.obs ev
    | _ -> ()

  (* One compaction cycle.  Everything here is out of band: heartbeats
     are injected and processed atomically only for clients whose c2s
     channel (transport + outbox) is empty, and the resulting [Stable]
     notifications are applied directly only to clients whose s2c
     channel is empty — busy channels are skipped and their pruning
     lags until a later cycle.  Under that restriction the synchronous
     exchange is equivalent to appending legal delivery events to the
     schedule (nothing in flight is overtaken), and no transport send,
     sequence number, RNG draw, or behavior entry is consumed — which
     is what keeps a GC-on run's schedule, behavior, and final
     documents bit-identical to the same seed with GC off.  The MC
     workload [Workload.compaction_race] checks the racy variant of
     this argument; DESIGN.md section 14 spells it out. *)
  let run_gc_cycle t g trigger ~meta_before =
    let d = g.g_driver in
    let before = Driver.stats d in
    let cycle = Driver.begin_cycle d trigger in
    let trigger_s = Rlist_gc.trigger_name trigger in
    record_decision t (Recorder.Gc { cycle; trigger = trigger_s });
    emit_gc_event t
      (Ev.Gc_begin
         { cycle; trigger = trigger_s; meta = meta_before; tick = t.clock });
    let frontier_sum support =
      let sum = ref (support.Protocol_intf.gc_server_frontier t.server) in
      for i = 1 to t.nclients do
        sum := !sum + support.Protocol_intf.gc_client_frontier t.clients.(i)
      done;
      !sum
    in
    let log_before =
      match g.g_support with None -> 0 | Some s -> frontier_sum s
    in
    (* 1. Ack-driven pruning: synchronous heartbeat exchange on the
       empty channels. *)
    (match g.g_support with
    | None -> ()
    | Some s ->
      for i = 1 to t.nclients do
        if pending_c2s t i = 0 then begin
          Driver.note_heartbeat d;
          let outgoing =
            P.server_receive t.server ~from:i
              (s.Protocol_intf.gc_heartbeat t.clients.(i))
          in
          List.iter
            (fun (dest, m) ->
              check_client t dest;
              if pending_s2c t dest = 0 then begin
                P.client_receive t.clients.(dest) m;
                Driver.note_stable d
              end
              else Driver.note_skipped_stable d)
            outgoing
        end
        else Driver.note_skipped_heartbeat d
      done);
    (* 2. Shim pruning: acked retransmission entries are already
       dropped by [Transport.tick]; what grows is the receiver-side
       dedup table. *)
    let retain = (Driver.policy d).Rlist_gc.retain_keys in
    let reclaimed_keys = ref 0 in
    for i = 1 to t.nclients do
      reclaimed_keys :=
        !reclaimed_keys
        + Transport.prune_delivered t.to_server.(i) ~retain
        + Transport.prune_delivered t.to_client.(i) ~retain
    done;
    (* 3. Periodic stable snapshot. *)
    let snapshot_bytes =
      match g.g_support with
      | Some s when Driver.snapshot_due d ->
        let snap = s.Protocol_intf.gc_snapshot t.server in
        g.g_last_snapshot <- Some snap;
        Some (String.length snap)
      | _ -> None
    in
    let meta_after = system_meta t in
    let reclaimed_log =
      match g.g_support with None -> 0 | Some s -> frontier_sum s - log_before
    in
    Driver.end_cycle d
      ~reclaimed_states:(max 0 (meta_before - meta_after))
      ~reclaimed_log ~reclaimed_keys:!reclaimed_keys ~snapshot_bytes
      ~meta:meta_after;
    let after = Driver.stats d in
    (* Re-baseline the per-replica metadata snapshots so the next
       delivery's [meta_delta] is not charged with the compaction. *)
    (match t.obs with
    | None -> ()
    | Some os ->
      for i = 0 to t.nclients do
        ignore (meta_delta os t i)
      done);
    emit_gc_event t
      (Ev.Gc_end
         {
           cycle;
           reclaimed_states = max 0 (meta_before - meta_after);
           reclaimed_log;
           reclaimed_keys = !reclaimed_keys;
           meta = meta_after;
           snapshot_bytes = Option.value snapshot_bytes ~default:0;
           skipped =
             after.Rlist_gc.skipped_heartbeats
             - before.Rlist_gc.skipped_heartbeats
             + after.Rlist_gc.skipped_stables
             - before.Rlist_gc.skipped_stables;
           tick = t.clock;
         })

  let maybe_gc t =
    match t.gc with
    | None -> ()
    | Some g -> (
      let meta = system_meta t in
      let lag =
        match g.g_support with
        | None -> 0
        | Some s -> s.Protocol_intf.gc_server_lag t.server
      in
      match Driver.due g.g_driver ~meta ~lag with
      | None -> ()
      | Some trigger -> run_gc_cycle t g trigger ~meta_before:meta)

  let apply_one t = function
    | Schedule.Generate (i, intent) ->
      check_client t i;
      record_decision t
        (Recorder.Generate { client = i; intent = intent_string intent });
      let outcome, msg = P.client_generate t.clients.(i) intent in
      record_do t i outcome;
      (match outcome.Protocol_intf.op_id with
      | Some _ -> note_gc_ops t 1
      | None -> ());
      (match msg with
      | None -> ()
      | Some m ->
        if t.batching then t.out_c2s.(i) <- m :: t.out_c2s.(i)
        else Transport.send t.to_server.(i) [ m ]);
      (match t.obs with
      | None -> ()
      | Some os ->
        let transforms = ot_delta os t i in
        ignore (meta_delta os t i);
        let op_id = outcome.Protocol_intf.op_id in
        (match op_id with
        | Some _ -> Metrics.incr os.c_updates
        | None -> Metrics.incr os.c_reads);
        Metrics.add os.c_transforms transforms;
        let depth = pending_c2s t i in
        (match msg with
        | None -> ()
        | Some m ->
          (* With batching on, the send-side counters fire at flush
             time instead (the message has not entered the channel
             yet). *)
          if not t.batching then begin
            Metrics.incr os.c_c2s;
            Metrics.observe os.h_batch_size 1.0;
            Metrics.observe os.h_c2s_depth (float_of_int depth);
            Metrics.observe os.h_msg_bytes (float_of_int (bytes_estimate m))
          end);
        if Obs.tracing os.obs then begin
          let intent_kind =
            match outcome.Protocol_intf.op with
            | Rlist_spec.Event.Do_read -> "read"
            | Rlist_spec.Event.Do_ins _ -> "ins"
            | Rlist_spec.Event.Do_del _ -> "del"
          in
          Obs.emit os.obs
            (Ev.Generate
               {
                 replica = rname i;
                 op_id = id_str op_id;
                 intent = intent_kind;
                 queue = depth;
                 tick = t.clock;
               });
          match msg with
          | None -> ()
          | Some m ->
            if not t.batching then
              Obs.emit os.obs
                (Ev.Send
                   {
                     src = rname i;
                     dst = "server";
                     op_id = id_str (P.c2s_op_id m);
                     bytes = bytes_estimate m;
                     queue = depth;
                     tick = t.clock;
                   });
            Obs.emit os.obs
              (Ev.Apply
                 {
                   replica = rname i;
                   op_id = id_str op_id;
                   doc_len = Document.length (P.client_document t.clients.(i));
                   tick = t.clock;
                 })
        end);
      record_behavior t (Replica_id.Client i) (P.client_document t.clients.(i))
    | Schedule.Deliver_to_server i -> (
      check_client t i;
      if deliverable_c2s t i = 0 then
        invalid_arg
          (Printf.sprintf "Engine: no pending message from client %d" i);
      flush_c2s t i;
      (* On a faulty channel the just-flushed payload may not be ready
         yet; the delivery then falls into the tolerated None case
         below, like any other consumed arrival. *)
      match Transport.deliver t.to_server.(i) with
      | None -> () (* the fault layer / shim consumed the arrival *)
      | Some batch ->
        (* Recorded only for payloads that reach the protocol, so the
           decision stream is the logical (exactly-once) delivery
           schedule — replayable on perfect channels. *)
        record_decision t (Recorder.Deliver_to_server i);
        note_gc_ops t (op_count P.c2s_op_id batch);
        let msg_op_id, outgoing =
          match batch with
          | [ msg ] ->
            id_str (P.c2s_op_id msg), P.server_receive t.server ~from:i msg
          | _ ->
            ( batch_key (List.map P.c2s_op_id batch),
              P.server_receive_batch t.server ~from:i batch )
        in
        List.iter
          (fun (dest, m) ->
            check_client t dest;
            if t.batching then t.out_s2c.(dest) <- m :: t.out_s2c.(dest)
            else Transport.send t.to_client.(dest) [ m ])
          outgoing;
        (match t.obs with
        | None -> ()
        | Some os ->
          let transforms = ot_delta os t 0 in
          ignore (meta_delta os t 0);
          Metrics.incr os.c_deliver_s;
          Metrics.add os.c_transforms transforms;
          Metrics.observe os.h_deliver_tr (float_of_int transforms);
          if not t.batching then begin
            Metrics.add os.c_s2c (List.length outgoing);
            List.iter
              (fun (dest, m) ->
                Metrics.observe os.h_batch_size 1.0;
                Metrics.observe os.h_s2c_depth
                  (float_of_int (Transport.pending t.to_client.(dest)));
                Metrics.observe os.h_msg_bytes
                  (float_of_int (bytes_estimate m)))
              outgoing
          end;
          if Obs.tracing os.obs then begin
            Obs.emit os.obs
              (Ev.Deliver
                 {
                   replica = "server";
                   src = rname i;
                   op_id = msg_op_id;
                   transforms;
                   queue = pending_c2s t i;
                   tick = t.clock;
                 });
            Obs.emit os.obs
              (Ev.Apply
                 {
                   replica = "server";
                   op_id = msg_op_id;
                   doc_len = Document.length (P.server_document t.server);
                   tick = t.clock;
                 });
            if not t.batching then
              List.iter
                (fun (dest, m) ->
                  Obs.emit os.obs
                    (Ev.Send
                       {
                         src = "server";
                         dst = rname dest;
                         op_id = id_str (P.s2c_op_id m);
                         bytes = bytes_estimate m;
                         queue = Transport.pending t.to_client.(dest);
                         tick = t.clock;
                       }))
                outgoing
          end);
        record_behavior t Replica_id.Server (P.server_document t.server))
    | Schedule.Deliver_to_client i -> (
      check_client t i;
      if deliverable_s2c t i = 0 then
        invalid_arg
          (Printf.sprintf "Engine: no pending message for client %d" i);
      flush_s2c t i;
      match Transport.deliver t.to_client.(i) with
      | None -> () (* the fault layer / shim consumed the arrival *)
      | Some batch ->
        record_decision t (Recorder.Deliver_to_client i);
        note_gc_ops t (op_count P.s2c_op_id batch);
        let op_id =
          match batch with
          | [ msg ] ->
            P.client_receive t.clients.(i) msg;
            id_str (P.s2c_op_id msg)
          | _ ->
            P.client_receive_batch t.clients.(i) batch;
            batch_key (List.map P.s2c_op_id batch)
        in
        (match t.obs with
        | None -> ()
        | Some os ->
          let transforms = ot_delta os t i in
          ignore (meta_delta os t i);
          Metrics.incr os.c_deliver_c;
          Metrics.add os.c_transforms transforms;
          Metrics.observe os.h_deliver_tr (float_of_int transforms);
          if Obs.tracing os.obs then begin
            Obs.emit os.obs
              (Ev.Deliver
                 {
                   replica = rname i;
                   src = "server";
                   op_id;
                   transforms;
                   queue = pending_s2c t i;
                   tick = t.clock;
                 });
            match op_id with
            | None -> ()  (* pure acknowledgement: nothing was applied *)
            | Some _ ->
              Obs.emit os.obs
                (Ev.Apply
                   {
                     replica = rname i;
                     op_id;
                     doc_len =
                       Document.length (P.client_document t.clients.(i));
                     tick = t.clock;
                   })
          end);
        record_behavior t (Replica_id.Client i)
          (P.client_document t.clients.(i)))

  (* Every simulation event, from any driver, funnels through here;
     the GC trigger check rides on the tail so a cycle can start at
     any point of the execution — which is what "continuous" means. *)
  let apply_event t ev =
    apply_one t ev;
    maybe_gc t

  let run t schedule = List.iter (apply_event t) schedule

  (* Hand-inject a protocol control message (e.g. a Pruned_protocol
     heartbeat) onto client [i]'s client-to-server channel; it is
     delivered by the normal [Deliver_to_server] events / [quiesce]. *)
  let inject_c2s t i m =
    check_client t i;
    if t.batching then t.out_c2s.(i) <- m :: t.out_c2s.(i)
    else Transport.send t.to_server.(i) [ m ]

  let pending_messages t =
    let count = ref 0 in
    for i = 1 to t.nclients do
      count := !count + pending_c2s t i;
      count := !count + pending_s2c t i
    done;
    !count

  let pending_to_server t i =
    check_client t i;
    pending_c2s t i

  let pending_to_client t i =
    check_client t i;
    pending_s2c t i

  (* Deliver everything recoverable, ticking the virtual clock whenever
     the channels are stalled (payloads in flight or awaiting
     retransmission, nothing ready yet).  Client messages first: only
     they can produce new (server) messages.  With the shim and a fault
     model that lets messages through eventually, this terminates with
     probability 1; [quiesce_fuel] bounds the pathological cases. *)
  let drain t step =
    let stalled = ref 0 in
    while pending_messages t > 0 do
      let any = ref false in
      for i = 1 to t.nclients do
        while deliverable_c2s t i > 0 do
          any := true;
          step (Schedule.Deliver_to_server i)
        done
      done;
      for i = 1 to t.nclients do
        while deliverable_s2c t i > 0 do
          any := true;
          step (Schedule.Deliver_to_client i)
        done
      done;
      if !any then stalled := 0
      else begin
        incr stalled;
        if !stalled > quiesce_fuel then
          invalid_arg
            "Engine.quiesce: channels cannot quiesce (total loss, or shim \
             disabled)"
      end;
      if pending_messages t > 0 then tick_channels t
    done

  let quiesce t =
    let performed = ref [] in
    let step ev =
      apply_event t ev;
      performed := ev :: !performed
    in
    drain t step;
    List.rev !performed

  let client_document t i =
    check_client t i;
    P.client_document t.clients.(i)

  let random_intent t rng ~params i =
    let doc_length = Document.length (client_document t i) in
    if Random.State.float rng 1.0 < params.Schedule.read_fraction then
      Intent.Read
    else if
      doc_length > 0
      && Random.State.float rng 1.0 < params.Schedule.delete_fraction
    then Intent.Delete (Random.State.int rng doc_length)
    else
      let value = Char.chr (Char.code 'a' + Random.State.int rng 26) in
      Intent.Insert (value, Random.State.int rng (doc_length + 1))

  (* Timed driver: a virtual-clock event heap.  Per-channel "last
     arrival" stamps keep deliveries FIFO under random latencies. *)
  let run_timed ?intent t ~rng ~params =
    let open Schedule in
    let exponential mean = -.mean *. log (1.0 -. Random.State.float rng 1.0) in
    (* pending timed actions, kept sorted by time *)
    let agenda = ref [] in
    let push time action =
      let rec insert = function
        | [] -> [ time, action ]
        | ((time', _) :: _) as all when time < time' -> (time, action) :: all
        | x :: rest -> x :: insert rest
      in
      agenda := insert !agenda
    in
    let last_c2s = Array.make (t.nclients + 1) 0.0 in
    let last_s2c = Array.make (t.nclients + 1) 0.0 in
    let remaining = ref params.t_updates in
    let performed = ref [] in
    let step ev =
      apply_event t ev;
      performed := ev :: !performed
    in
    let choose_intent i =
      let doc_length = Document.length (client_document t i) in
      match intent with
      | Some choose -> choose ~client:i ~doc_length
      | None ->
        if Random.State.float rng 1.0 < params.t_read_fraction then Intent.Read
        else if
          doc_length > 0
          && Random.State.float rng 1.0 < params.t_delete_fraction
        then Intent.Delete (Random.State.int rng doc_length)
        else
          Intent.Insert
            ( Char.chr (Char.code 'a' + Random.State.int rng 26),
              Random.State.int rng (doc_length + 1) )
    in
    (* seed one future generation per client *)
    for i = 1 to t.nclients do
      push (exponential params.t_think_time) (`Gen i)
    done;
    let arrival last index now =
      let time = Float.max last.(index) (now +. exponential params.t_mean_latency) in
      (* strictly increasing per channel keeps the heap order stable *)
      let time = time +. 1e-9 in
      last.(index) <- time;
      (match t.obs with
      | None -> ()
      | Some os -> Metrics.observe os.h_latency (time -. now));
      time
    in
    let rec loop () =
      match !agenda with
      | [] -> ()
      | (now, action) :: rest ->
        agenda := rest;
        tick_channels t;
        (match action with
        | `Gen i ->
          if !remaining > 0 then begin
            let intent = choose_intent i in
            (match intent with
            | Intent.Read -> ()
            | Intent.Insert _ | Intent.Delete _ -> decr remaining);
            let before = pending_c2s t i in
            step (Generate (i, intent));
            if pending_c2s t i > before then
              push (arrival last_c2s i now) (`C2s i);
            if !remaining > 0 then
              push (now +. exponential params.t_think_time) (`Gen i)
          end
        | `C2s i ->
          (* deliveries fan out a broadcast: schedule its arrivals.
             Under a fault model the payload may be delayed or lost;
             skip, the closing drain recovers it. *)
          if deliverable_c2s t i > 0 then begin
            let before = Array.init (t.nclients + 1) (fun j ->
                if j = 0 then 0 else pending_s2c t j)
            in
            step (Deliver_to_server i);
            for j = 1 to t.nclients do
              for _ = 1 to pending_s2c t j - before.(j) do
                push (arrival last_s2c j now) (`S2c j)
              done
            done
          end
        | `S2c i ->
          if deliverable_s2c t i > 0 then
            step (Deliver_to_client i));
        loop ()
    in
    loop ();
    drain t step;
    List.iter step (Schedule.final_reads ~nclients:t.nclients);
    List.rev !performed

  let run_random ?intent t ~rng ~params =
    let performed = ref [] in
    let step ev =
      apply_event t ev;
      performed := ev :: !performed
    in
    let deliverable () =
      let evs = ref [] in
      for i = t.nclients downto 1 do
        if deliverable_c2s t i > 0 then
          evs := Schedule.Deliver_to_server i :: !evs;
        if deliverable_s2c t i > 0 then
          evs := Schedule.Deliver_to_client i :: !evs
      done;
      !evs
    in
    let remaining = ref params.Schedule.updates in
    let stalled = ref 0 in
    while !remaining > 0 || pending_messages t > 0 do
      let deliveries = deliverable () in
      let deliver () =
        stalled := 0;
        let n = List.length deliveries in
        step (List.nth deliveries (Random.State.int rng n))
      in
      let generate () =
        let i = 1 + Random.State.int rng t.nclients in
        let intent =
          match intent with
          | None -> random_intent t rng ~params i
          | Some choose ->
            choose ~client:i
              ~doc_length:(Document.length (client_document t i))
        in
        (match intent with
        | Intent.Read -> ()
        | Intent.Insert _ | Intent.Delete _ -> decr remaining);
        step (Schedule.Generate (i, intent))
      in
      (match deliveries, !remaining with
      | [], n when n > 0 -> generate ()
      | [], _ ->
        (* payloads in flight but none ready: let the clock advance
           (below) until a delay expires or a retransmission fires *)
        incr stalled;
        if !stalled > quiesce_fuel then
          invalid_arg
            "Engine.run_random: channels cannot quiesce (total loss, or \
             shim disabled)"
      | _ :: _, 0 -> deliver ()
      | _ :: _, _ ->
        if Random.State.float rng 1.0 < params.Schedule.deliver_bias then
          deliver ()
        else generate ());
      tick_channels t
    done;
    let reads = Schedule.final_reads ~nclients:t.nclients in
    List.iter step reads;
    List.rev !performed

  let server_document t = P.server_document t.server

  let converged t =
    let reference =
      if P.server_is_replica then server_document t else client_document t 1
    in
    let ok = ref true in
    for i = 1 to t.nclients do
      if not (Document.equal reference (client_document t i)) then ok := false
    done;
    !ok

  let trace t =
    Rlist_spec.Trace.make ~initial:t.initial ~events:(List.rev t.events)

  let behavior t = List.rev t.behavior

  let client_ot_count t i =
    check_client t i;
    P.client_ot_count t.clients.(i)

  let server_ot_count t = P.server_ot_count t.server

  let total_ot_count t =
    let sum = ref (server_ot_count t) in
    for i = 1 to t.nclients do
      sum := !sum + client_ot_count t i
    done;
    !sum

  let client_metadata_size t i =
    check_client t i;
    P.client_metadata_size t.clients.(i)

  let server_metadata_size t = P.server_metadata_size t.server

  let total_metadata_size t =
    let sum = ref (server_metadata_size t) in
    for i = 1 to t.nclients do
      sum := !sum + client_metadata_size t i
    done;
    !sum

  let server t = t.server

  let client t i =
    check_client t i;
    t.clients.(i)

  let gc_stats t = Option.map (fun g -> Driver.stats g.g_driver) t.gc

  let gc_last_snapshot t = Option.bind t.gc (fun g -> g.g_last_snapshot)

  let dedup_keys t =
    let sum = ref 0 in
    for i = 1 to t.nclients do
      sum :=
        !sum
        + Transport.dedup_keys t.to_server.(i)
        + Transport.dedup_keys t.to_client.(i)
    done;
    !sum
end
