open Rlist_model
module Obs = Rlist_obs.Obs
module Metrics = Rlist_obs.Metrics
module Ev = Rlist_obs.Event
module Recorder = Rlist_obs.Recorder
module Transport = Rlist_net.Transport

(* Same stall bound as {!Engine}. *)
let quiesce_fuel = 100_000

(* Schedule-text rendering of an intent, for the flight recorder. *)
let intent_string = function
  | Intent.Insert (c, p) -> Printf.sprintf "ins %c %d" c p
  | Intent.Delete p -> Printf.sprintf "del %d" p
  | Intent.Read -> "read"

type event =
  | Generate of int * Intent.t
  | Deliver of int * int

let pp_event ppf = function
  | Generate (i, intent) -> Format.fprintf ppf "p%d: %a" i Intent.pp intent
  | Deliver (src, dst) -> Format.fprintf ppf "deliver p%d->p%d" src dst

module Make (P : P2p_protocol_intf.P2P_PROTOCOL) = struct
  (* Same delta-snapshot scheme as {!Engine}, but per peer (1-based;
     slot 0 unused). *)
  type obs_state = {
    obs : Obs.t;
    c_updates : Metrics.counter;
    c_reads : Metrics.counter;
    c_broadcast : Metrics.counter;
    c_deliveries : Metrics.counter;
    c_transforms : Metrics.counter;
    h_deliver_tr : Metrics.histogram;
    h_chan_depth : Metrics.histogram;
    h_msg_bytes : Metrics.histogram;
    g_metadata : Metrics.gauge;
    g_buffered : Metrics.gauge;
    last_ot : int array;
    last_meta : int array;
    mutable meta_total : int;
  }

  (* As in {!Engine}, channels carry batches; with batching off every
     payload is a singleton and the behaviour is the unbatched
     engine's. *)
  type t = {
    npeers : int;
    peers : P.peer array;  (* 1-based *)
    channels : (int * P.message) list Transport.t array array;
        (* channels.(src).(dst) *)
    batching : bool;
    outbox : (int * P.message) list array array;  (* reversed *)
    mutable events : Rlist_spec.Event.t list;  (* reversed *)
    mutable next_eid : int;
    initial : Document.t;
    mutable obs : obs_state option;
    net : Transport.config option;
    mutable clock : int;
    mutable recorder : Recorder.t option;
    gc : Rlist_gc.Driver.t option;
        (* Peer-to-peer protocols carry no ack-driven stable frontier
           (no [gc_support] analogue), so a GC policy here drives the
           shim-level dedup-key pruning only — the same out-of-band,
           schedule-transparent discipline as {!Engine}. *)
  }

  let batch_key ids =
    match List.filter_map (Option.map Op_id.to_string) ids with
    | [] -> None
    | keys -> Some (String.concat "+" keys)

  let create ?(initial = Document.empty) ?net ?(batching = false) ?gc
      ?fastpath ~npeers () =
    if npeers < 2 then invalid_arg "P2p_engine.create: need at least two peers";
    let fastpath =
      match fastpath with
      | Some fp -> fp
      | None -> Rlist_ot.Fastpath.create ()
    in
    let key batch =
      batch_key (List.map (fun (_, m) -> P.message_op_id m) batch)
    in
    let channel src dst =
      match net with
      | None -> Transport.perfect ()
      | Some cfg ->
        Transport.create ~key ~weight:List.length
          ~name:(Printf.sprintf "p%d->p%d" src dst)
          cfg
    in
    {
      npeers;
      peers =
        Array.init (npeers + 1) (fun i ->
            P.create_peer ~fastpath ~npeers ~id:(max i 1) ~initial);
      channels =
        Array.init (npeers + 1) (fun src ->
            Array.init (npeers + 1) (fun dst -> channel src dst));
      batching;
      outbox =
        Array.init (npeers + 1) (fun _ -> Array.make (npeers + 1) []);
      events = [];
      next_eid = 0;
      initial;
      obs = None;
      net;
      clock = 0;
      recorder = None;
      gc = Option.map Rlist_gc.Driver.create gc;
    }

  let npeers t = t.npeers

  let record_decision t d =
    match t.recorder with
    | Some r -> Recorder.record r d
    | None -> ()

  let tick_channels t =
    for src = 1 to t.npeers do
      for dst = 1 to t.npeers do
        if src <> dst then Transport.tick t.channels.(src).(dst)
      done
    done;
    t.clock <- t.clock + 1;
    record_decision t (Recorder.Tick t.clock)

  let check_peer t i =
    if i < 1 || i > t.npeers then
      invalid_arg (Printf.sprintf "P2p_engine: peer %d out of range" i)

  (* --- observability ------------------------------------------------- *)

  let pname i = "p" ^ string_of_int i

  let bytes_estimate v = Obj.reachable_words (Obj.repr v) * (Sys.word_size / 8)

  let total_buffered t =
    let sum = ref 0 in
    for i = 1 to t.npeers do
      sum := !sum + P.buffered t.peers.(i)
    done;
    !sum

  let attach_obs t obs =
    let m = obs.Obs.metrics in
    let last_ot =
      Array.init (t.npeers + 1) (fun i ->
          if i = 0 then 0 else P.ot_count t.peers.(i))
    in
    let last_meta =
      Array.init (t.npeers + 1) (fun i ->
          if i = 0 then 0 else P.metadata_size t.peers.(i))
    in
    let meta_total = Array.fold_left ( + ) 0 last_meta in
    let os =
      {
        obs;
        c_updates = Metrics.counter m "p2p.updates_generated";
        c_reads = Metrics.counter m "p2p.reads_generated";
        c_broadcast = Metrics.counter m "p2p.msgs_broadcast";
        c_deliveries = Metrics.counter m "p2p.deliveries";
        c_transforms = Metrics.counter m "p2p.transforms";
        h_deliver_tr = Metrics.histogram m "p2p.transforms_per_delivery";
        h_chan_depth = Metrics.histogram m "p2p.channel.depth";
        h_msg_bytes = Metrics.histogram m "p2p.msg_bytes";
        g_metadata = Metrics.gauge m "p2p.metadata_total";
        g_buffered = Metrics.gauge m "p2p.buffered";
        last_ot;
        last_meta;
        meta_total;
      }
    in
    Metrics.set_gauge os.g_metadata (float_of_int meta_total);
    (match t.net with
    | Some cfg -> Transport.set_obs cfg (Some obs)
    | None -> ());
    t.obs <- Some os

  let obs t = Option.map (fun (os : obs_state) -> os.obs) t.obs

  let attach_recorder t r =
    t.recorder <- Some r;
    match t.net with
    | Some cfg -> Transport.set_recorder cfg (Some r)
    | None -> ()

  let clock t = t.clock

  let ot_delta os t i =
    let current = P.ot_count t.peers.(i) in
    let delta = current - os.last_ot.(i) in
    os.last_ot.(i) <- current;
    delta

  let meta_delta os t i =
    let current = P.metadata_size t.peers.(i) in
    let delta = current - os.last_meta.(i) in
    os.last_meta.(i) <- current;
    os.meta_total <- os.meta_total + delta;
    Metrics.set_gauge os.g_metadata (float_of_int os.meta_total);
    delta

  let id_str = Option.map Op_id.to_string

  (* Channel occupancy with the unflushed outbox included. *)
  let chan_pending t ~src ~dst =
    Transport.pending t.channels.(src).(dst)
    + List.length t.outbox.(src).(dst)

  let chan_deliverable t ~src ~dst =
    Transport.deliverable t.channels.(src).(dst)
    + (match t.outbox.(src).(dst) with [] -> 0 | _ -> 1)

  (* Bytes of what a serializer would frame: the messages, without the
     engine-internal origin tags; singletons report what the unbatched
     engine did. *)
  let batch_bytes = function
    | [ (_, m) ] -> bytes_estimate m
    | batch -> bytes_estimate (List.map snd batch)

  let flush t ~src ~dst =
    match t.outbox.(src).(dst) with
    | [] -> ()
    | rev -> (
      t.outbox.(src).(dst) <- [];
      let batch = List.rev rev in
      record_decision t
        (Recorder.Flush
           {
             channel = Printf.sprintf "p%d->p%d" src dst;
             ops = List.length batch;
           });
      Transport.send t.channels.(src).(dst) batch;
      match t.obs with
      | None -> ()
      | Some os ->
        Metrics.incr os.c_broadcast;
        Metrics.observe os.h_chan_depth
          (float_of_int (Transport.pending t.channels.(src).(dst)));
        Metrics.observe os.h_msg_bytes (float_of_int (batch_bytes batch));
        if Obs.tracing os.obs then
          Obs.emit os.obs
            (Ev.Send
               {
                 src = pname src;
                 dst = pname dst;
                 op_id =
                   batch_key
                     (List.map (fun (_, m) -> P.message_op_id m) batch);
                 bytes = batch_bytes batch;
                 queue = Transport.pending t.channels.(src).(dst);
                 tick = t.clock;
               }))

  let broadcast t ~from message =
    for dst = 1 to t.npeers do
      if dst <> from then
        if t.batching then
          t.outbox.(from).(dst) <- (from, message) :: t.outbox.(from).(dst)
        else begin
          Transport.send t.channels.(from).(dst) [ from, message ];
          match t.obs with
          | None -> ()
          | Some os ->
            Metrics.incr os.c_broadcast;
            Metrics.observe os.h_chan_depth
              (float_of_int (Transport.pending t.channels.(from).(dst)));
            Metrics.observe os.h_msg_bytes
              (float_of_int (bytes_estimate message));
            if Obs.tracing os.obs then
              Obs.emit os.obs
                (Ev.Send
                   {
                     src = pname from;
                     dst = pname dst;
                     op_id = id_str (P.message_op_id message);
                     bytes = bytes_estimate message;
                     queue = Transport.pending t.channels.(from).(dst);
                     tick = t.clock;
                   })
        end
    done

  let record_do t i (outcome : Protocol_intf.do_outcome) =
    let peer = t.peers.(i) in
    let event =
      Rlist_spec.Event.make ~eid:t.next_eid ~replica:(Replica_id.Client i)
        ~op:outcome.Protocol_intf.op ~op_id:outcome.Protocol_intf.op_id
        ~result:(P.document peer) ~visible:(P.visible peer)
    in
    t.next_eid <- t.next_eid + 1;
    t.events <- event :: t.events

  (* --- continuous GC (shim-level only; see the [gc] field) ---------- *)

  let note_gc_ops t n =
    match t.gc with
    | Some d when n > 0 -> Rlist_gc.Driver.note_ops d n
    | _ -> ()

  let system_meta t =
    let sum = ref 0 in
    for i = 1 to t.npeers do
      sum := !sum + P.metadata_size t.peers.(i)
    done;
    !sum

  let run_gc_cycle t d trigger ~meta_before =
    let cycle = Rlist_gc.Driver.begin_cycle d trigger in
    let trigger_s = Rlist_gc.trigger_name trigger in
    record_decision t (Recorder.Gc { cycle; trigger = trigger_s });
    let emit ev =
      match t.obs with
      | Some os when Obs.tracing os.obs -> Obs.emit os.obs ev
      | _ -> ()
    in
    emit
      (Ev.Gc_begin
         { cycle; trigger = trigger_s; meta = meta_before; tick = t.clock });
    let retain = (Rlist_gc.Driver.policy d).Rlist_gc.retain_keys in
    let reclaimed_keys = ref 0 in
    for src = 1 to t.npeers do
      for dst = 1 to t.npeers do
        if src <> dst then
          reclaimed_keys :=
            !reclaimed_keys
            + Transport.prune_delivered t.channels.(src).(dst) ~retain
      done
    done;
    let meta_after = system_meta t in
    Rlist_gc.Driver.end_cycle d ~reclaimed_states:0 ~reclaimed_log:0
      ~reclaimed_keys:!reclaimed_keys ~snapshot_bytes:None ~meta:meta_after;
    emit
      (Ev.Gc_end
         {
           cycle;
           reclaimed_states = 0;
           reclaimed_log = 0;
           reclaimed_keys = !reclaimed_keys;
           meta = meta_after;
           snapshot_bytes = 0;
           skipped = 0;
           tick = t.clock;
         })

  let maybe_gc t =
    match t.gc with
    | None -> ()
    | Some d -> (
      let meta = system_meta t in
      match Rlist_gc.Driver.due d ~meta ~lag:0 with
      | None -> ()
      | Some trigger -> run_gc_cycle t d trigger ~meta_before:meta)

  let apply_one t = function
    | Generate (i, intent) ->
      check_peer t i;
      record_decision t
        (Recorder.Generate { client = i; intent = intent_string intent });
      let outcome, message = P.generate t.peers.(i) intent in
      record_do t i outcome;
      (match outcome.Protocol_intf.op_id with
      | Some _ -> note_gc_ops t 1
      | None -> ());
      (match t.obs with
      | None -> ()
      | Some os ->
        let transforms = ot_delta os t i in
        ignore (meta_delta os t i);
        let op_id = outcome.Protocol_intf.op_id in
        (match op_id with
        | Some _ -> Metrics.incr os.c_updates
        | None -> Metrics.incr os.c_reads);
        Metrics.add os.c_transforms transforms;
        if Obs.tracing os.obs then begin
          let intent_kind =
            match outcome.Protocol_intf.op with
            | Rlist_spec.Event.Do_read -> "read"
            | Rlist_spec.Event.Do_ins _ -> "ins"
            | Rlist_spec.Event.Do_del _ -> "del"
          in
          Obs.emit os.obs
            (Ev.Generate
               {
                 replica = pname i;
                 op_id = id_str op_id;
                 intent = intent_kind;
                 queue = 0;
                 tick = t.clock;
               });
          match op_id with
          | None -> ()
          | Some _ ->
            Obs.emit os.obs
              (Ev.Apply
                 {
                   replica = pname i;
                   op_id = id_str op_id;
                   doc_len = Document.length (P.document t.peers.(i));
                   tick = t.clock;
                 })
        end);
      (match message with
      | None -> ()
      | Some m -> broadcast t ~from:i m)
    | Deliver (src, dst) -> (
      check_peer t src;
      check_peer t dst;
      if chan_deliverable t ~src ~dst = 0 then
        invalid_arg
          (Printf.sprintf "P2p_engine: channel p%d->p%d is empty" src dst);
      flush t ~src ~dst;
      match Transport.deliver t.channels.(src).(dst) with
      | None -> () (* the fault layer / shim consumed the arrival *)
      | Some batch ->
        record_decision t (Recorder.Deliver_peer { src; dst });
        note_gc_ops t
          (List.fold_left
             (fun n (_, m) ->
               match P.message_op_id m with Some _ -> n + 1 | None -> n)
             0 batch);
        let op_id, reactions =
          match batch with
          | [ (from, message) ] ->
            ( id_str (P.message_op_id message),
              Option.to_list (P.receive t.peers.(dst) ~from message) )
          | (from, _) :: _ ->
            ( batch_key (List.map (fun (_, m) -> P.message_op_id m) batch),
              P.receive_batch t.peers.(dst) ~from (List.map snd batch) )
          | [] -> None, []
        in
        (match t.obs with
        | None -> ()
        | Some os ->
          let transforms = ot_delta os t dst in
          ignore (meta_delta os t dst);
          Metrics.incr os.c_deliveries;
          Metrics.add os.c_transforms transforms;
          Metrics.observe os.h_deliver_tr (float_of_int transforms);
          Metrics.set_gauge os.g_buffered (float_of_int (total_buffered t));
          if Obs.tracing os.obs then
            Obs.emit os.obs
              (Ev.Deliver
                 {
                   replica = pname dst;
                   src = pname src;
                   op_id;
                   transforms;
                   queue = chan_pending t ~src ~dst;
                   tick = t.clock;
                 }));
        List.iter (fun reaction -> broadcast t ~from:dst reaction) reactions)

  let apply_event t ev =
    apply_one t ev;
    maybe_gc t

  let run t events = List.iter (apply_event t) events

  let pending_messages t =
    let count = ref 0 in
    for src = 1 to t.npeers do
      for dst = 1 to t.npeers do
        if src <> dst then count := !count + chan_pending t ~src ~dst
      done
    done;
    !count

  let channel_depth t ~src ~dst =
    check_peer t src;
    check_peer t dst;
    chan_pending t ~src ~dst

  let quiesce t =
    let performed = ref [] in
    (* Round-robin until no channel holds a message (reactions keep the
       loop going), ticking the clock whenever nothing is ready. *)
    let stalled = ref 0 in
    while pending_messages t > 0 do
      let any = ref false in
      for src = 1 to t.npeers do
        for dst = 1 to t.npeers do
          if src <> dst then
            while chan_deliverable t ~src ~dst > 0 do
              apply_event t (Deliver (src, dst));
              performed := Deliver (src, dst) :: !performed;
              any := true
            done
        done
      done;
      if !any then stalled := 0
      else begin
        incr stalled;
        if !stalled > quiesce_fuel then
          invalid_arg
            "P2p_engine.quiesce: channels cannot quiesce (total loss, or \
             shim disabled)"
      end;
      if pending_messages t > 0 then tick_channels t
    done;
    List.rev !performed

  let document t i =
    check_peer t i;
    P.document t.peers.(i)

  let converged t =
    let reference = document t 1 in
    let ok = ref true in
    for i = 2 to t.npeers do
      if not (Document.equal reference (document t i)) then ok := false
    done;
    !ok

  let trace t =
    Rlist_spec.Trace.make ~initial:t.initial ~events:(List.rev t.events)

  let total_ot_count t =
    let sum = ref 0 in
    for i = 1 to t.npeers do
      sum := !sum + P.ot_count t.peers.(i)
    done;
    !sum

  let total_metadata_size t =
    let sum = ref 0 in
    for i = 1 to t.npeers do
      sum := !sum + P.metadata_size t.peers.(i)
    done;
    !sum

  let peer t i =
    check_peer t i;
    t.peers.(i)

  let gc_stats t = Option.map Rlist_gc.Driver.stats t.gc

  let random_intent t rng ~params i =
    let doc_length = Document.length (document t i) in
    if Random.State.float rng 1.0 < params.Schedule.read_fraction then
      Intent.Read
    else if
      doc_length > 0
      && Random.State.float rng 1.0 < params.Schedule.delete_fraction
    then Intent.Delete (Random.State.int rng doc_length)
    else
      let value = Char.chr (Char.code 'a' + Random.State.int rng 26) in
      Intent.Insert (value, Random.State.int rng (doc_length + 1))

  let run_random ?intent t ~rng ~params =
    let performed = ref [] in
    let step ev =
      apply_event t ev;
      performed := ev :: !performed
    in
    let deliverable () =
      let evs = ref [] in
      for src = t.npeers downto 1 do
        for dst = t.npeers downto 1 do
          if src <> dst && chan_deliverable t ~src ~dst > 0 then
            evs := Deliver (src, dst) :: !evs
        done
      done;
      !evs
    in
    let remaining = ref params.Schedule.updates in
    let stalled = ref 0 in
    while !remaining > 0 || pending_messages t > 0 do
      let deliveries = deliverable () in
      let deliver () =
        stalled := 0;
        let n = List.length deliveries in
        step (List.nth deliveries (Random.State.int rng n))
      in
      let generate () =
        let i = 1 + Random.State.int rng t.npeers in
        let chosen =
          match intent with
          | None -> random_intent t rng ~params i
          | Some choose ->
            choose ~client:i ~doc_length:(Document.length (document t i))
        in
        (match chosen with
        | Intent.Read -> ()
        | Intent.Insert _ | Intent.Delete _ -> decr remaining);
        step (Generate (i, chosen))
      in
      (match deliveries, !remaining with
      | [], n when n > 0 -> generate ()
      | [], _ ->
        incr stalled;
        if !stalled > quiesce_fuel then
          invalid_arg
            "P2p_engine.run_random: channels cannot quiesce (total loss, \
             or shim disabled)"
      | _ :: _, 0 -> deliver ()
      | _ :: _, _ ->
        if Random.State.float rng 1.0 < params.Schedule.deliver_bias then
          deliver ()
        else generate ());
      tick_channels t
    done;
    List.iter
      (fun i -> step (Generate (i, Intent.Read)))
      (List.init t.npeers (fun i -> i + 1));
    List.rev !performed
end
