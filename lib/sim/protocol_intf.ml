(** The interface every replicated-list protocol implementation
    (CSS Jupiter, CSCW Jupiter, RGA, the broken dOPT foil) exposes to
    the simulation engine.

    The architecture is the paper's (Section 4.4): one server, [n]
    clients, FIFO channels in both directions.  The server does not
    generate operations; it serializes and propagates them.  To keep
    schedules comparable across protocols (needed for the equivalence
    theorem, Theorem 7.1), every protocol produces exactly one
    server-to-client message per client per update — the message to
    the originating client acts as an acknowledgement. *)

(* Interface-carrier module: this file holds module types only and
   *is* the interface; a duplicated .mli would just drift. *)
[@@@lint.allow "missing-mli"]

open Rlist_model

(** What a [do] event performed, as reported by the client to the
    engine for trace recording. *)
type do_outcome = {
  op : Rlist_spec.Event.operation;
  op_id : Op_id.t option;  (** [None] for reads. *)
}

(** The hooks a protocol exposes to the continuous GC driver
    ([Rlist_gc], wired in by the engines).  Only protocols with an
    ack-driven stable frontier (css-pruned) provide them; everything
    else sets {!PROTOCOL.gc_support} to [None] and a GC-enabled run
    degrades to shim-level pruning only.

    Contract for the engine: the calls are {e out of band} — they
    bypass the transports, so the engine may only invoke
    [gc_heartbeat]+[server_receive] for a client whose c2s channel is
    empty, and may only deliver the resulting [Stable] messages
    directly to clients whose s2c channel is empty.  Under that
    restriction the synchronous exchange is equivalent to appending
    legal deliveries to the schedule (there is nothing in flight to
    overtake), so FIFO and the context invariants are preserved; a
    heartbeat that {e did} overtake an in-flight update could advance
    the stable frontier past that update's context and crash
    compaction.  [test/test_mc.ml] checks the race. *)
type ('client, 'server, 'c2s) gc_support = {
  gc_heartbeat : 'client -> 'c2s;
      (** The client's current acknowledgement, as a c2s message. *)
  gc_client_frontier : 'client -> int;
      (** The serial the client has pruned to. *)
  gc_server_frontier : 'server -> int;
      (** The serial the server has pruned to. *)
  gc_server_lag : 'server -> int;
      (** Serials past the stable frontier — the retained log length,
          the [Ack_lag] trigger input. *)
  gc_snapshot : 'server -> string;
      (** Serialized stable snapshot ([Snapshot.stable_to_string]). *)
}

module type PROTOCOL = sig
  val name : string

  (** Whether the server holds a document replica of its own.  The
      Jupiter servers and CRDT relays do; a pure sequencer (the
      decoupled CSS variant) does not, and convergence is then judged
      on the clients only. *)
  val server_is_replica : bool

  type client

  type server

  type c2s
  (** Client-to-server message. *)

  type s2c
  (** Server-to-client message. *)

  (** [fastpath] is the engine run's fast-path configuration record
      ({!Rlist_ot.Fastpath}): the engine passes the {e same} record to
      the server and every client, so its counters aggregate per run.
      Protocols without Algorithm 1 ladders (the CRDT baselines, the
      naive foil) ignore it. *)
  val create_client :
    fastpath:Rlist_ot.Fastpath.t ->
    nclients:int ->
    id:int ->
    initial:Document.t ->
    client

  val create_server :
    fastpath:Rlist_ot.Fastpath.t -> nclients:int -> initial:Document.t -> server

  (** Perform a user intent at a client: execute it locally and
      immediately (optimistic replication) and return the message to
      propagate, if any ([Read] produces none).

      @raise Invalid_argument if the intent's position is out of
      bounds for the client's current document. *)
  val client_generate : client -> Intent.t -> do_outcome * c2s option

  (** Process one client message at the server; returns the messages
      to send, in order, as [(destination client, message)] pairs. *)
  val server_receive : server -> from:int -> c2s -> (int * s2c) list

  val client_receive : client -> s2c -> unit

  (** Process a coalesced batch of client messages — consecutive
      messages from the same channel delivered in one flush.  The
      observable outcome must be identical to receiving the messages
      one by one, in order; implementations are free to exploit the
      batch shape (the CSS server walks a contiguous run through
      Algorithm 1's ladder once).  Engines deliver singleton batches
      through {!server_receive}, so implementations may assume
      [List.length >= 2] but must not rely on it. *)
  val server_receive_batch : server -> from:int -> c2s list -> (int * s2c) list

  (** Batch counterpart of {!client_receive}; same contract as
      {!server_receive_batch}. *)
  val client_receive_batch : client -> s2c list -> unit

  (** The identifier of the operation a message carries, for trace
      labelling by the observability layer; [None] for pure
      acknowledgements and control messages. *)
  val c2s_op_id : c2s -> Op_id.t option

  val s2c_op_id : s2c -> Op_id.t option

  val client_document : client -> Document.t

  val server_document : server -> Document.t

  (** Identifiers of the update operations the replica has processed —
      its state in the sense of Definition 4.5, and the visibility set
      of its next do event. *)
  val client_visible : client -> Op_id.Set.t

  val server_visible : server -> Op_id.Set.t

  (** Cumulative number of primitive transformation-function calls
      performed, for the redundant-OT experiment (paper,
      Section 7.2). *)
  val client_ot_count : client -> int

  val server_ot_count : server -> int

  (** An abstract measure of the replica's metadata footprint (number
      of states plus transitions of its state-space(s), or node count
      for CRDTs), for the compactness experiments (Proposition 6.6). *)
  val client_metadata_size : client -> int

  val server_metadata_size : server -> int

  (** Hooks for the continuous compaction driver; [None] when the
      protocol has no ack-driven pruning machinery. *)
  val gc_support : (client, server, c2s) gc_support option
end
