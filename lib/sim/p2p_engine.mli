(** Simulation engine for peer-to-peer protocols: [n] peers with a
    FIFO channel per ordered pair, schedule-driven like
    {!Engine}. *)

open Rlist_model

type event =
  | Generate of int * Intent.t  (** Peer [i] performs an intent. *)
  | Deliver of int * int  (** Deliver the oldest message on the channel
                              from the first peer to the second. *)

val pp_event : Format.formatter -> event -> unit

module Make (P : P2p_protocol_intf.P2P_PROTOCOL) : sig
  type t

  (** [net] as in {!Engine.Make.create}: fault-injected channels drawn
      from a shared network configuration instead of perfect FIFO
      queues.  [batching] (default [false]) as in
      {!Engine.Make.create}: broadcasts accumulate in per-channel
      outboxes, flushed as one batch payload — one sequence number,
      one retransmission unit — when a delivery event targets the
      channel; multi-message batches reach the protocol through
      [receive_batch].

      [gc], when given, runs the continuous compaction discipline at
      the shim level: peer-to-peer protocols have no ack-driven stable
      frontier, so a cycle prunes the channels' dedup tables only.
      Cycles are out of band (no sends, no RNG draws), so a GC-on run
      is schedule-identical to the same seed with GC off. *)
  val create :
    ?initial:Document.t ->
    ?net:Rlist_net.Transport.config ->
    ?batching:bool ->
    ?gc:Rlist_gc.policy ->
    ?fastpath:Rlist_ot.Fastpath.t ->
    npeers:int ->
    unit ->
    t

  val npeers : t -> int

  val apply_event : t -> event -> unit

  val run : t -> event list -> unit

  (** Deliver all pending messages (round-robin over channels) until
      quiescent; reactions may enqueue further messages.  Returns the
      deliveries performed. *)
  val quiesce : t -> event list

  val pending_messages : t -> int

  (** Depth of the FIFO channel from [src] to [dst], for enumerating
      the enabled delivery events of a configuration. *)
  val channel_depth : t -> src:int -> dst:int -> int

  val document : t -> int -> Document.t

  val converged : t -> bool

  val trace : t -> Rlist_spec.Trace.t

  val total_ot_count : t -> int

  val total_metadata_size : t -> int

  val total_buffered : t -> int

  val peer : t -> int -> P.peer

  (** Cumulative GC accounting; [None] without a policy. *)
  val gc_stats : t -> Rlist_gc.stats option

  (** Random driver, mirroring [Engine.run_random]: generates [updates]
      intents at random peers under random valid interleavings, then
      quiesces and reads everywhere.  Returns the concrete schedule. *)
  val run_random :
    ?intent:(client:int -> doc_length:int -> Intent.t) ->
    t ->
    rng:Random.State.t ->
    params:Schedule.random_params ->
    event list

  (** Attach an observability context (see {!Engine.attach_obs}):
      per-delivery transform deltas, broadcast counts, channel depths,
      buffered-operation and metadata gauges. *)
  val attach_obs : t -> Rlist_obs.Obs.t -> unit

  val obs : t -> Rlist_obs.Obs.t option

  (** Attach a flight recorder (see {!Engine.attach_recorder}):
      records generated intents, peer deliveries, batch flushes, the
      tick schedule, and — through the network configuration — the
      wire's fault draws. *)
  val attach_recorder : t -> Rlist_obs.Recorder.t -> unit

  (** The engine's virtual clock (ticks performed). *)
  val clock : t -> int
end
