(* The typed front end: load [.cmt] artifacts (dune emits them under
   [_build/default/**/.objs/byte/]) and index what the interprocedural
   passes need — each implementation unit's Typedtree, and a corpus-
   wide table of type declarations so "visibly comparable" questions
   can be answered across module boundaries without re-running the
   typer.

   Everything here is keyed on the *flat* unit names the compiler
   itself uses ("Rlist_net__Transport" for dune's wrapped
   [lib/net/transport.ml]), so resolution of a reference like
   [Rlist_net.Faults.validate] is a table lookup, not a guess. *)

let normalize path =
  if String.length path >= 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

type unit_info = {
  modname : string;  (* flat unit name, e.g. "Rlist_net__Transport" *)
  source : string;  (* normalized source path recorded in the .cmt *)
  str : Typedtree.structure;
}

type t = {
  units : unit_info list;
  by_name : (string, unit_info) Hashtbl.t;
  type_decls : (string, Types.type_declaration) Hashtbl.t;
  aliases : (string, string) Hashtbl.t;
      (* "Unit.Prefix.Alias" -> target module path ("Rlist_obs.Event")
         for top-level [module A = Path] bindings, so type names
         spelled through a local alias resolve across units *)
  errors : string list;
}

let strip_stdlib name =
  if String.starts_with ~prefix:"Stdlib." name then
    String.sub name 7 (String.length name - 7)
  else name

let units t = t.units
let errors t = t.errors
let mem_unit t name = Hashtbl.mem t.by_name name
let find_type t name = Hashtbl.find_opt t.type_decls name

(* Record every type declaration of [u], keyed "Unit.Sub.t", walking
   into nested modules (functor bodies included), plus every
   [module A = Path] alias binding, keyed the same way. *)
let collect_type_decls table aliases (u : unit_info) =
  let rec structure prefix (str : Typedtree.structure) =
    List.iter (item prefix) str.str_items
  and item prefix (si : Typedtree.structure_item) =
    match si.str_desc with
    | Tstr_type (_, decls) ->
      List.iter
        (fun (d : Typedtree.type_declaration) ->
          let key =
            String.concat "." (u.modname :: (prefix @ [ d.typ_name.txt ]))
          in
          if not (Hashtbl.mem table key) then
            Hashtbl.replace table key d.typ_type)
        decls
    | Tstr_module mb -> module_binding prefix mb
    | Tstr_recmodule mbs -> List.iter (module_binding prefix) mbs
    | _ -> ()
  and module_binding prefix (mb : Typedtree.module_binding) =
    match mb.mb_id with
    | None -> ()
    | Some id ->
      let prefix = prefix @ [ Ident.name id ] in
      (match alias_target mb.mb_expr with
      | Some target ->
        let key = String.concat "." (u.modname :: prefix) in
        if not (Hashtbl.mem aliases key) then
          Hashtbl.replace aliases key target
      | None -> ());
      module_expr prefix mb.mb_expr
  and alias_target (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_ident (p, _) -> Some (strip_stdlib (Path.name p))
    | Tmod_constraint (me, _, _, _) -> alias_target me
    | _ -> None
  and module_expr prefix (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_structure str -> structure prefix str
    | Tmod_constraint (me, _, _, _) -> module_expr prefix me
    | Tmod_functor (_, me) -> module_expr prefix me
    | _ -> ()
  in
  structure [] u.str

let read_one path =
  match Cmt_format.read_cmt path with
  | exception _ -> Error (Printf.sprintf "%s: unreadable .cmt" path)
  | cmt -> (
    match cmt.cmt_annots with
    | Cmt_format.Implementation str ->
      let source =
        match cmt.cmt_sourcefile with
        | Some s -> normalize s
        | None -> cmt.cmt_modname
      in
      Ok (Some { modname = cmt.cmt_modname; source; str })
    | _ -> Ok None)

(* All [.cmt] files under [dir], dot-directories included (that is
   where dune keeps them), sorted for run-to-run stability. *)
let scan dir =
  let acc = ref [] in
  let rec go path =
    match Sys.is_directory path with
    | true ->
      Array.iter
        (fun entry ->
          if not (String.equal entry "..") && not (String.equal entry ".")
          then go (Filename.concat path entry))
        (Sys.readdir path)
    | false -> if Filename.check_suffix path ".cmt" then acc := path :: !acc
    | exception _ -> ()
  in
  if Sys.file_exists dir then go dir;
  List.sort String.compare !acc

let under prefixes source =
  match prefixes with
  | [] -> true
  | _ ->
    List.exists
      (fun p ->
        let lp = String.length p and ls = String.length source in
        ls >= lp
        && String.equal (String.sub source 0 lp) p
        && (ls = lp || source.[lp] = '/'))
      prefixes

let load_files ?(roots = []) paths =
  let by_name = Hashtbl.create 64 in
  let errors = ref [] in
  let units = ref [] in
  List.iter
    (fun path ->
      match read_one path with
      | Error e -> errors := e :: !errors
      | Ok None -> ()
      | Ok (Some u) ->
        if under roots u.source && not (Hashtbl.mem by_name u.modname)
        then begin
          Hashtbl.replace by_name u.modname u;
          units := u :: !units
        end)
    paths;
  let units =
    List.sort (fun a b -> String.compare a.modname b.modname) !units
  in
  let type_decls = Hashtbl.create 256 in
  let aliases = Hashtbl.create 64 in
  List.iter (collect_type_decls type_decls aliases) units;
  { units; by_name; type_decls; aliases; errors = List.rev !errors }

let load_dir ?roots dir = load_files ?roots (scan dir)

(* "Rlist_net__Transport" -> "Transport": the short display base of a
   flat unit name, shared by every pass that prints module paths. *)
let short_base modname =
  let n = String.length modname in
  let rec last_sep i best =
    if i + 1 >= n then best
    else if modname.[i] = '_' && modname.[i + 1] = '_' then
      last_sep (i + 2) (i + 2)
    else last_sep (i + 1) best
  in
  let cut = last_sep 0 0 in
  String.sub modname cut (n - cut)

(* --- qualified-name resolution --------------------------------------- *)

(* Map the component list of a [Path.t] as seen at a use site onto a
   corpus unit: ["Rlist_net"; "Faults"; "validate"] resolves through
   the wrapper alias to unit "Rlist_net__Faults" with ["validate"]
   left over.  Order matters — the two-component wrapped form is the
   common case and must win over the bare library alias module. *)
let has_flat_sep name =
  let n = String.length name in
  let rec go i = i + 1 < n && ((name.[i] = '_' && name.[i + 1] = '_') || go (i + 1)) in
  go 0

let resolve_qualified t = function
  | [] -> None
  | head :: rest -> (
    if has_flat_sep head && mem_unit t head then Some (head, rest)
    else
      match rest with
      | sub :: rest' when mem_unit t (head ^ "__" ^ sub) ->
        Some (head ^ "__" ^ sub, rest')
      | _ -> if mem_unit t head then Some (head, rest) else None)

(* --- visible comparability ------------------------------------------- *)

(* --- relative declaration lookup ------------------------------------- *)

let prefix_of key =
  match String.rindex_opt key '.' with
  | Some i -> Some (String.sub key 0 i)
  | None -> None

(* Resolve a type-constructor spelling as it appears *inside* the
   declaration prefix [home] ("Rlist_model__Document", or deeper for
   nested modules): try home-relative keys walking outwards, then the
   spelling as-is, then top-level module aliases of the home unit
   ([module Ev = Rlist_obs.Event] makes "Ev.replica" resolve), then
   the wrapped-library flat mapping.  Returns the declaration together
   with the prefix it was found under — the [home] for recursing into
   its components. *)
let find_decl_rel t ~home name =
  let try_key k =
    match find_type t k with
    | Some d -> Some (d, prefix_of k)
    | None -> None
  in
  let flat n =
    match resolve_qualified t (String.split_on_char '.' n) with
    | Some (unit_name, rest) ->
      try_key (String.concat "." (unit_name :: rest))
    | None -> None
  in
  let rec outward h =
    match try_key (h ^ "." ^ name) with
    | Some r -> Some r
    | None -> ( match prefix_of h with Some h' -> outward h' | None -> None)
  in
  let home_relative () =
    match home with Some h -> outward h | None -> None
  in
  let via_alias () =
    match home, String.index_opt name '.' with
    | Some h, Some i -> (
      let unit =
        match String.index_opt h '.' with
        | Some j -> String.sub h 0 j
        | None -> h
      in
      let head = String.sub name 0 i in
      let rest = String.sub name (i + 1) (String.length name - i - 1) in
      match Hashtbl.find_opt t.aliases (unit ^ "." ^ head) with
      | Some target ->
        let expanded = target ^ "." ^ rest in
        (match try_key expanded with
        | Some r -> Some r
        | None -> flat expanded)
      | None -> None)
    | _ -> None
  in
  match home_relative () with
  | Some r -> Some r
  | None -> (
    match try_key name with
    | Some r -> Some r
    | None -> (
      match via_alias () with Some r -> Some r | None -> flat name))

let base_comparable =
  [
    "int"; "string"; "char"; "bool"; "unit"; "float"; "int32"; "int64";
    "nativeint"; "bytes";
    "Int.t"; "String.t"; "Char.t"; "Bool.t"; "Float.t"; "Unit.t";
    "Int32.t"; "Int64.t"; "Nativeint.t"; "Bytes.t";
  ]

(* Would polymorphic [=]/[compare] at this type be structurally
   deterministic and total "by inspection"?  Builtins and containers
   of comparable things are; so are records/variants whose components
   all are (resolved through the corpus type table, across modules).
   Anything abstract, functional, polymorphic or unresolvable is not —
   conservative in the direction that produces a finding. *)
let visibly_comparable ?home t ty =
  let rec comparable home seen ty =
    match Types.get_desc ty with
    | Ttuple ts -> List.for_all (comparable home seen) ts
    | Tpoly (ty, _) -> comparable home seen ty
    | Tconstr (p, args, _) -> (
      let name = strip_stdlib (Path.name p) in
      if List.mem name base_comparable then true
      else
        match name with
        | "list" | "option" | "array" | "ref" ->
          List.for_all (comparable home seen) args
        | _ ->
          if List.mem name seen then true (* recursive type: assume *)
          else
            let seen = name :: seen in
            decl_comparable home seen args (find_decl_rel t ~home name))
    | _ -> false
  and decl_comparable home seen args = function
    | None -> false
    | Some ((d : Types.type_declaration), dhome) -> (
      let home = match dhome with Some _ -> dhome | None -> home in
      (* Parameterized abbreviations would need substitution; only the
         closed cases are decided, everything else stays "not visibly
         comparable". *)
      match d.type_manifest with
      | Some m when List.is_empty d.type_params -> comparable home seen m
      | Some _ -> false
      | None -> (
        match d.type_kind with
        | Type_record (fields, _) ->
          List.is_empty d.type_params && List.is_empty args
          && List.for_all
               (fun (f : Types.label_declaration) ->
                 comparable home seen f.ld_type)
               fields
        | Type_variant (cstrs, _) ->
          List.is_empty d.type_params && List.is_empty args
          && List.for_all
               (fun (c : Types.constructor_declaration) ->
                 match c.cd_args with
                 | Cstr_tuple ts -> List.for_all (comparable home seen) ts
                 | Cstr_record fields ->
                   List.for_all
                     (fun (f : Types.label_declaration) ->
                       comparable home seen f.ld_type)
                     fields)
               cstrs
        | _ -> false))
  in
  comparable home [] ty

let type_to_string ty =
  match Format.asprintf "%a" Printtyp.type_expr ty with
  | s -> s
  | exception _ -> "<type>"

(* --- mutability ------------------------------------------------------- *)

(* What kind of mutability, if any, does a value at this type expose?
   Containers are looked through one level (a [ref list] is still
   mutable state); record types resolve through the corpus so
   cross-module mutable records are caught too.  Shared by the
   domain-safety scan (module-level bindings) and the escape pass
   (module-path reads). *)
let mutable_kind corpus ty =
  let rec kind depth seen ty =
    if depth > 4 then None
    else
      match Types.get_desc ty with
      | Ttuple ts -> List.find_map (kind (depth + 1) seen) ts
      | Tconstr (p, args, _) -> (
        let name = strip_stdlib (Path.name p) in
        match name with
        | "ref" -> Some "ref"
        | "array" -> Some "array"
        | "bytes" | "Bytes.t" -> Some "bytes"
        | "Hashtbl.t" -> Some "Hashtbl.t"
        | "Queue.t" -> Some "Queue.t"
        | "Stack.t" -> Some "Stack.t"
        | "Buffer.t" -> Some "Buffer.t"
        | "Atomic.t" -> Some "Atomic.t"
        | "Mutex.t" -> Some "Mutex.t"
        | "Condition.t" -> Some "Condition.t"
        | "list" | "option" | "Lazy.t" ->
          List.find_map (kind (depth + 1) seen) args
        | _ ->
          if List.mem name seen then None
          else
            let seen = name :: seen in
            let decl =
              match find_type corpus name with
              | Some d -> Some d
              | None -> (
                match
                  resolve_qualified corpus (String.split_on_char '.' name)
                with
                | Some (unit_name, rest) ->
                  find_type corpus (String.concat "." (unit_name :: rest))
                | None -> None)
            in
            Option.bind decl (fun (d : Types.type_declaration) ->
                match d.type_kind with
                | Type_record (fields, _)
                  when List.exists
                         (fun (f : Types.label_declaration) ->
                           match f.ld_mutable with
                           | Mutable -> true
                           | Immutable -> false)
                         fields ->
                  Some "record with mutable fields"
                | _ -> (
                  match d.type_manifest with
                  | Some m -> kind (depth + 1) seen m
                  | None -> None)))
      | _ -> None
  in
  kind 0 [] ty

(* Can a value of this type transitively hold mutable state at all?
   [inert_type] answers the *negative* question: [true] means the type
   provably cannot carry a ref/array/table/closure, so a value-flow
   pass can drop its tokens.  Scalars and immutable compositions of
   inert things are inert; arrows are not (a closure captures
   anything); abstract, polymorphic and unresolvable types are not —
   conservative in the direction that keeps tokens flowing. *)
let inert_base =
  [
    "int"; "bool"; "char"; "unit"; "float"; "string"; "int32"; "int64";
    "nativeint";
    "Int.t"; "Bool.t"; "Char.t"; "Float.t"; "Unit.t"; "String.t";
    "Int32.t"; "Int64.t"; "Nativeint.t";
  ]

let inert_type ?home corpus ty =
  let rec inert home depth seen ty =
    depth <= 8
    &&
    match Types.get_desc ty with
    | Ttuple ts -> List.for_all (inert home (depth + 1) seen) ts
    | Tconstr (p, args, _) -> (
      let name = strip_stdlib (Path.name p) in
      if List.mem name inert_base then true
      else
        match name with
        | "list" | "option" | "result" | "Either.t" ->
          List.for_all (inert home (depth + 1) seen) args
        (* A lazy of an inert payload is accepted: the memo cell is the
           only mutation, concurrent force raises rather than corrupts,
           and nothing mutable is reachable through the value.  Stdlib
           [Map.Make]/[Set.Make] instances are immutable trees; the key
           type is baked into the functor and assumed immutable (an
           [OrderedType] with mutable keys is broken anyway).  Both are
           stated soundness caveats in DESIGN.md §15. *)
        | "Lazy.t" | "lazy_t" ->
          List.for_all (inert home (depth + 1) seen) args
        | _
          when String.ends_with ~suffix:".Map.t" name
               || String.ends_with ~suffix:".Set.t" name ->
          List.for_all (inert home (depth + 1) seen) args
        | "ref" | "array" | "bytes" | "Bytes.t" | "Hashtbl.t" | "Queue.t"
        | "Stack.t" | "Buffer.t" | "Atomic.t" | "Mutex.t" | "Condition.t" ->
          false
        | _ ->
          if List.mem name seen then true (* recursive type: assume *)
          else
            let seen = name :: seen in
            decl_inert home depth seen args (find_decl_rel corpus ~home name))
    | _ -> false
  and decl_inert home depth seen args = function
    | None -> false
    | Some ((d : Types.type_declaration), dhome) -> (
      let home = match dhome with Some _ -> dhome | None -> home in
      match d.type_manifest with
      | Some m when List.is_empty d.type_params -> inert home depth seen m
      | Some _ -> false
      | None -> (
        match d.type_kind with
        | Type_record (fields, _) ->
          List.is_empty d.type_params && List.is_empty args
          && List.for_all
               (fun (f : Types.label_declaration) ->
                 (match f.ld_mutable with
                 | Mutable -> false
                 | Immutable -> true)
                 && inert home (depth + 1) seen f.ld_type)
               fields
        | Type_variant (cstrs, _) ->
          List.is_empty d.type_params && List.is_empty args
          && List.for_all
               (fun (c : Types.constructor_declaration) ->
                 match c.cd_args with
                 | Cstr_tuple ts ->
                   List.for_all (inert home (depth + 1) seen) ts
                 | Cstr_record fields ->
                   List.for_all
                     (fun (f : Types.label_declaration) ->
                       (match f.ld_mutable with
                       | Mutable -> false
                       | Immutable -> true)
                       && inert home (depth + 1) seen f.ld_type)
                     fields)
               cstrs
        | _ -> false))
  in
  inert home 0 [] ty
