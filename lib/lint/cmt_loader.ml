(* The typed front end: load [.cmt] artifacts (dune emits them under
   [_build/default/**/.objs/byte/]) and index what the interprocedural
   passes need — each implementation unit's Typedtree, and a corpus-
   wide table of type declarations so "visibly comparable" questions
   can be answered across module boundaries without re-running the
   typer.

   Everything here is keyed on the *flat* unit names the compiler
   itself uses ("Rlist_net__Transport" for dune's wrapped
   [lib/net/transport.ml]), so resolution of a reference like
   [Rlist_net.Faults.validate] is a table lookup, not a guess. *)

let normalize path =
  if String.length path >= 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

type unit_info = {
  modname : string;  (* flat unit name, e.g. "Rlist_net__Transport" *)
  source : string;  (* normalized source path recorded in the .cmt *)
  str : Typedtree.structure;
}

type t = {
  units : unit_info list;
  by_name : (string, unit_info) Hashtbl.t;
  type_decls : (string, Types.type_declaration) Hashtbl.t;
  errors : string list;
}

let units t = t.units
let errors t = t.errors
let mem_unit t name = Hashtbl.mem t.by_name name
let find_type t name = Hashtbl.find_opt t.type_decls name

(* Record every type declaration of [u], keyed "Unit.Sub.t", walking
   into nested (non-functor) modules. *)
let collect_type_decls table (u : unit_info) =
  let rec structure prefix (str : Typedtree.structure) =
    List.iter (item prefix) str.str_items
  and item prefix (si : Typedtree.structure_item) =
    match si.str_desc with
    | Tstr_type (_, decls) ->
      List.iter
        (fun (d : Typedtree.type_declaration) ->
          let key =
            String.concat "." (u.modname :: (prefix @ [ d.typ_name.txt ]))
          in
          if not (Hashtbl.mem table key) then
            Hashtbl.replace table key d.typ_type)
        decls
    | Tstr_module mb -> module_binding prefix mb
    | Tstr_recmodule mbs -> List.iter (module_binding prefix) mbs
    | _ -> ()
  and module_binding prefix (mb : Typedtree.module_binding) =
    match mb.mb_id with
    | None -> ()
    | Some id -> module_expr (prefix @ [ Ident.name id ]) mb.mb_expr
  and module_expr prefix (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_structure str -> structure prefix str
    | Tmod_constraint (me, _, _, _) -> module_expr prefix me
    | _ -> ()
  in
  structure [] u.str

let read_one path =
  match Cmt_format.read_cmt path with
  | exception _ -> Error (Printf.sprintf "%s: unreadable .cmt" path)
  | cmt -> (
    match cmt.cmt_annots with
    | Cmt_format.Implementation str ->
      let source =
        match cmt.cmt_sourcefile with
        | Some s -> normalize s
        | None -> cmt.cmt_modname
      in
      Ok (Some { modname = cmt.cmt_modname; source; str })
    | _ -> Ok None)

(* All [.cmt] files under [dir], dot-directories included (that is
   where dune keeps them), sorted for run-to-run stability. *)
let scan dir =
  let acc = ref [] in
  let rec go path =
    match Sys.is_directory path with
    | true ->
      Array.iter
        (fun entry ->
          if not (String.equal entry "..") && not (String.equal entry ".")
          then go (Filename.concat path entry))
        (Sys.readdir path)
    | false -> if Filename.check_suffix path ".cmt" then acc := path :: !acc
    | exception _ -> ()
  in
  if Sys.file_exists dir then go dir;
  List.sort String.compare !acc

let under prefixes source =
  match prefixes with
  | [] -> true
  | _ ->
    List.exists
      (fun p ->
        let lp = String.length p and ls = String.length source in
        ls >= lp
        && String.equal (String.sub source 0 lp) p
        && (ls = lp || source.[lp] = '/'))
      prefixes

let load_files ?(roots = []) paths =
  let by_name = Hashtbl.create 64 in
  let errors = ref [] in
  let units = ref [] in
  List.iter
    (fun path ->
      match read_one path with
      | Error e -> errors := e :: !errors
      | Ok None -> ()
      | Ok (Some u) ->
        if under roots u.source && not (Hashtbl.mem by_name u.modname)
        then begin
          Hashtbl.replace by_name u.modname u;
          units := u :: !units
        end)
    paths;
  let units =
    List.sort (fun a b -> String.compare a.modname b.modname) !units
  in
  let type_decls = Hashtbl.create 256 in
  List.iter (collect_type_decls type_decls) units;
  { units; by_name; type_decls; errors = List.rev !errors }

let load_dir ?roots dir = load_files ?roots (scan dir)

(* --- qualified-name resolution --------------------------------------- *)

(* Map the component list of a [Path.t] as seen at a use site onto a
   corpus unit: ["Rlist_net"; "Faults"; "validate"] resolves through
   the wrapper alias to unit "Rlist_net__Faults" with ["validate"]
   left over.  Order matters — the two-component wrapped form is the
   common case and must win over the bare library alias module. *)
let has_flat_sep name =
  let n = String.length name in
  let rec go i = i + 1 < n && ((name.[i] = '_' && name.[i + 1] = '_') || go (i + 1)) in
  go 0

let resolve_qualified t = function
  | [] -> None
  | head :: rest -> (
    if has_flat_sep head && mem_unit t head then Some (head, rest)
    else
      match rest with
      | sub :: rest' when mem_unit t (head ^ "__" ^ sub) ->
        Some (head ^ "__" ^ sub, rest')
      | _ -> if mem_unit t head then Some (head, rest) else None)

(* --- visible comparability ------------------------------------------- *)

let strip_stdlib name =
  if String.starts_with ~prefix:"Stdlib." name then
    String.sub name 7 (String.length name - 7)
  else name

let base_comparable =
  [
    "int"; "string"; "char"; "bool"; "unit"; "float"; "int32"; "int64";
    "nativeint"; "bytes";
    "Int.t"; "String.t"; "Char.t"; "Bool.t"; "Float.t"; "Unit.t";
    "Int32.t"; "Int64.t"; "Nativeint.t"; "Bytes.t";
  ]

(* Would polymorphic [=]/[compare] at this type be structurally
   deterministic and total "by inspection"?  Builtins and containers
   of comparable things are; so are records/variants whose components
   all are (resolved through the corpus type table, across modules).
   Anything abstract, functional, polymorphic or unresolvable is not —
   conservative in the direction that produces a finding. *)
let visibly_comparable t ty =
  let rec comparable seen ty =
    match Types.get_desc ty with
    | Ttuple ts -> List.for_all (comparable seen) ts
    | Tpoly (ty, _) -> comparable seen ty
    | Tconstr (p, args, _) -> (
      let name = strip_stdlib (Path.name p) in
      if List.mem name base_comparable then true
      else
        match name with
        | "list" | "option" | "array" | "ref" ->
          List.for_all (comparable seen) args
        | _ ->
          if List.mem name seen then true (* recursive type: assume *)
          else
            let seen = name :: seen in
            let decl =
              match find_type t name with
              | Some d -> Some d
              | None -> (
                (* use-site spelling -> flat unit spelling *)
                match resolve_qualified t (String.split_on_char '.' name) with
                | Some (unit_name, rest) ->
                  find_type t (String.concat "." (unit_name :: rest))
                | None -> None)
            in
            decl_comparable seen args decl)
    | _ -> false
  and decl_comparable seen args = function
    | None -> false
    | Some (d : Types.type_declaration) -> (
      (* Parameterized abbreviations would need substitution; only the
         closed cases are decided, everything else stays "not visibly
         comparable". *)
      match d.type_manifest with
      | Some m when List.is_empty d.type_params -> comparable seen m
      | Some _ -> false
      | None -> (
        match d.type_kind with
        | Type_record (fields, _) ->
          List.is_empty d.type_params && List.is_empty args
          && List.for_all
               (fun (f : Types.label_declaration) ->
                 comparable seen f.ld_type)
               fields
        | Type_variant (cstrs, _) ->
          List.is_empty d.type_params && List.is_empty args
          && List.for_all
               (fun (c : Types.constructor_declaration) ->
                 match c.cd_args with
                 | Cstr_tuple ts -> List.for_all (comparable seen) ts
                 | Cstr_record fields ->
                   List.for_all
                     (fun (f : Types.label_declaration) ->
                       comparable seen f.ld_type)
                     fields)
               cstrs
        | _ -> false))
  in
  comparable [] ty

let type_to_string ty =
  match Format.asprintf "%a" Printtyp.type_expr ty with
  | s -> s
  | exception _ -> "<type>"
