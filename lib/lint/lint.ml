(* The analysis driver.  One file at a time: parse with the compiler's
   own front end, then walk the Parsetree with an [Ast_iterator] that
   tracks [[@lint.allow]] suppression scopes and reports findings
   through a single [report] choke point (which also applies the rule
   scopes from {!Rules} and any [--rules] selection).

   Working on the AST rather than text means string literals, comments
   and shadowed names can no longer produce false positives, and
   suppressions attach to the exact syntactic node they excuse. *)

open Parsetree

let normalize path =
  if String.length path >= 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

(* "rule1 rule2" / "rule1,rule2" -> ["rule1"; "rule2"] *)
let split_names s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char ',')
  |> List.filter_map (fun s ->
       let s = String.trim s in
       if String.equal s "" then None else Some s)

(* Rule names carried by [lint.allow] attributes.  A malformed payload
   contributes nothing: the underlying finding then still fires, which
   is how the author discovers the typo. *)
let allows_of_attrs attrs =
  List.concat_map
    (fun (a : attribute) ->
      if String.equal a.attr_name.txt "lint.allow" then
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                      _ );
                _;
              };
            ] ->
          split_names s
        | _ -> []
      else [])
    attrs

(* One [[@lint.allow]] occurrence, tracked so suppressions that never
   suppress anything can themselves be reported (unused-allow). *)
type allow_site = {
  a_loc : Location.t;
  a_names : string list;
  mutable a_used : string list;
}

let site_of_attrs attrs =
  match
    List.find_opt
      (fun (a : attribute) -> String.equal a.attr_name.txt "lint.allow")
      attrs
  with
  | Some a -> (
    match allows_of_attrs attrs with
    | [] -> None
    | names -> Some { a_loc = a.attr_loc; a_names = names; a_used = [] })
  | None -> None

let rec flatten = function
  | Longident.Lident s -> s
  | Longident.Ldot (l, s) -> flatten l ^ "." ^ s
  | Longident.Lapply (a, b) -> flatten a ^ "(" ^ flatten b ^ ")"

let strip_stdlib name =
  if String.starts_with ~prefix:"Stdlib." name then
    String.sub name 7 (String.length name - 7)
  else name

let file_loc path =
  let pos =
    { Lexing.pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 }
  in
  { Location.loc_start = pos; loc_end = pos; loc_ghost = true }

(* Is this expression a (polymorphic-variant or capitalized) construct
   whose comparison the poly-eq rule targets?  [true]/[false]/[[]] and
   friends are lowercase or symbolic and stay out, matching the old
   scanner's intent. *)
let is_ctor (e : expression) =
  match e.pexp_desc with
  | Pexp_construct ({ txt; _ }, _) -> (
    let name = Longident.last txt in
    String.length name > 0
    && match name.[0] with 'A' .. 'Z' -> true | _ -> false)
  | Pexp_variant _ -> true
  | _ -> false

let exn_msg = function
  | "raise" | "raise_notrace" ->
    "raise in a transform path; OT transforms must be total"
  | "failwith" ->
    "failwith in a transform path; return a total result instead"
  | "invalid_arg" ->
    "invalid_arg in a transform path; validate at the API boundary"
  | "List.hd" -> "List.hd raises on []; match the list instead"
  | "List.tl" -> "List.tl raises on []; match the list instead"
  | "Option.get" -> "Option.get raises on None; match instead"
  | "Array.get" ->
    "a.(i)/Array.get raises Invalid_argument; bounds-check or restructure"
  | other -> other ^ " is partial"

let check_source ?(mli_exists = true) ?rules ~path source =
  let path = normalize path in
  let is_ml = Filename.check_suffix path ".ml" in
  let findings = ref [] in
  let file_allows = ref [] in
  let allow_stack = ref [] in
  let all_sites = ref [] in
  let parse_failed = ref false in
  let defines_compare = ref false in
  let suppressed rule =
    (* Every in-scope site naming the rule (or "all") counts as doing
       work — marking them keeps nested duplicates out of the
       unused-allow report rather than litigating which one "won". *)
    let hits site =
      if
        List.exists
          (fun a -> String.equal a "all" || String.equal a rule)
          site.a_names
      then begin
        if not (List.mem rule site.a_used) then
          site.a_used <- rule :: site.a_used;
        true
      end
      else false
    in
    let in_stack =
      List.fold_left (fun acc s -> hits s || acc) false !allow_stack
    in
    let in_file =
      List.fold_left (fun acc s -> hits s || acc) false !file_allows
    in
    in_stack || in_file
  in
  let selected rule =
    match rules with None -> true | Some l -> List.mem rule l
  in
  let report ~loc rule msg =
    match Rules.find rule with
    | Some r
      when Rules.applies r path && selected rule && not (suppressed rule) ->
      let p = loc.Location.loc_start in
      findings :=
        Finding.v ~file:path ~line:p.Lexing.pos_lnum
          ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol + 1)
          ~rule msg
        :: !findings
    | _ -> ()
  in
  let report_parse_error exn =
    parse_failed := true;
    let loc, what =
      match exn with
      | Syntaxerr.Error err -> Syntaxerr.location_of_error err, "syntax error"
      | Lexer.Error (_, loc) -> loc, "lexical error"
      | _ -> file_loc path, "parse failure"
    in
    report ~loc "parse-error" (what ^ "; the analyzer could not parse this file")
  in
  let check_ident name loc =
    match name with
    | "Obj.magic" -> report ~loc "obj-magic" "Obj.magic is forbidden"
    | "Sys.time" ->
      report ~loc "sys-time"
        "Sys.time measures CPU seconds and silently masquerades as a wall \
         clock; use the metrics clock (Rlist_obs.Metrics.now_ns)"
    | "Unix.gettimeofday" | "Unix.time" ->
      report ~loc "wall-clock"
        (name
        ^ " reads the wall clock inside replayed code; take time through \
           the obs/bench clock seams")
    | "Hashtbl.iter" | "Hashtbl.fold" ->
      report ~loc "hashtbl-iter"
        (name
        ^ " visits bindings in hash-bucket order, which depends on \
           insertion history; iterate a sorted view instead")
    | "Hashtbl.hash" | "Hashtbl.seeded_hash" ->
      report ~loc "poly-hash"
        (name ^ " is structural; hash the relevant fields")
    | "compare" when not !defines_compare ->
      report ~loc "poly-cmp" "bare polymorphic compare; use the type's compare"
    | "string_of_float" | "Float.to_string" ->
      report ~loc "float-format"
        (name
        ^ " uses shortest-round-trip formatting and is representation- \
           sensitive; print with an explicit format (e.g. %.17g)")
    | "raise" | "raise_notrace" | "failwith" | "invalid_arg" | "List.hd"
    | "List.tl" | "Option.get" | "Array.get" ->
      report ~loc "exn-partial" (exn_msg name)
    | "print_string" | "print_char" | "print_int" | "print_float"
    | "print_endline" | "print_newline" | "print_bytes" | "prerr_string"
    | "prerr_char" | "prerr_int" | "prerr_float" | "prerr_endline"
    | "prerr_newline" | "prerr_bytes" | "Printf.printf" | "Printf.eprintf"
    | "Format.printf" | "Format.eprintf" ->
      report ~loc "print-direct"
        (name
        ^ " writes directly to stdout/stderr from library code, which \
           interleaves nondeterministically with the trace stream; route \
           output through the obs sink or a caller-supplied formatter")
    | n
      when String.starts_with ~prefix:"Random." n
           && not (String.starts_with ~prefix:"Random.State." n) ->
      report ~loc "rand-global"
        (n
       ^ " draws from the global PRNG (hidden shared state); thread an \
          explicitly seeded Random.State.t")
    | _ -> ()
  in
  let check_expr (e : expression) =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } ->
      check_ident (strip_stdlib (flatten txt)) e.pexp_loc
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Lident (("=" | "<>") as op); _ }; _ },
          args )
      when List.exists (fun (_, a) -> is_ctor a) args ->
      report ~loc:e.pexp_loc "poly-eq"
        (Printf.sprintf "polymorphic %s against a constructor; match instead"
           op)
    | Pexp_assert
        { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ }
      ->
      report ~loc:e.pexp_loc "exn-partial"
        "assert false in a transform path; make the case impossible by \
         construction"
    | _ -> ()
  in
  let with_allows attrs f =
    match site_of_attrs attrs with
    | None -> f ()
    | Some site ->
      all_sites := site :: !all_sites;
      allow_stack := site :: !allow_stack;
      Fun.protect ~finally:(fun () -> allow_stack := List.tl !allow_stack) f
  in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  (if is_ml then begin
     match Parse.implementation lexbuf with
     | exception exn -> report_parse_error exn
     | ast ->
       (* Pre-pass: file-wide facts the main walk depends on — floating
          [[@@@lint.allow]] attributes (they scope the whole file, so
          they must be known before any finding is reported) and
          whether the file binds its own [compare]. *)
       let default = Ast_iterator.default_iterator in
       let pre =
         {
           default with
           value_binding =
             (fun it vb ->
               (match vb.pvb_pat.ppat_desc with
               | Ppat_var { txt = "compare"; _ } -> defines_compare := true
               | _ -> ());
               default.value_binding it vb);
           structure_item =
             (fun it si ->
               (match si.pstr_desc with
               | Pstr_attribute a -> (
                 match site_of_attrs [ a ] with
                 | Some site ->
                   all_sites := site :: !all_sites;
                   file_allows := site :: !file_allows
                 | None -> ())
               | _ -> ());
               default.structure_item it si);
         }
       in
       pre.structure pre ast;
       let it =
         {
           default with
           expr =
             (fun it e ->
               with_allows e.pexp_attributes (fun () ->
                   check_expr e;
                   default.expr it e));
           value_binding =
             (fun it vb ->
               with_allows vb.pvb_attributes (fun () ->
                   default.value_binding it vb));
           module_binding =
             (fun it mb ->
               with_allows mb.pmb_attributes (fun () ->
                   default.module_binding it mb));
         }
       in
       it.structure it ast;
       if not mli_exists then
         report ~loc:(file_loc path) "missing-mli"
           "library module without a matching .mli; every lib/ module must \
            declare its interface"
   end
   else
     match Parse.interface lexbuf with
     | exception exn -> report_parse_error exn
     | _signature -> ());
  (* Suppression hygiene: a [[@lint.allow]] under which the named rule
     never fired is stale and reported.  Judged only on a full-rule
     run of a parseable file; rules of the typed (.cmt) passes and
     rules whose scope does not cover this file are out of the
     Parsetree pass's jurisdiction and skipped. *)
  (if Option.is_none rules && not !parse_failed then
     let judge site name =
       if List.mem name site.a_used then ()
       else
         let stale reason =
           report ~loc:site.a_loc "unused-allow"
             (Printf.sprintf
                "[@lint.allow %S] suppresses nothing here (%s); remove the \
                 stale seam"
                name reason)
         in
         match name with
         | "all" -> if List.is_empty site.a_used then stale "no rule fires"
         | _ -> (
           match Rules.find name with
           | None -> stale "no such rule"
           | Some r when r.Rules.typed -> ()
           | Some r when not (Rules.applies r path) -> ()
           | Some _ -> stale "the rule never fires in this scope")
     in
     List.iter (fun site -> List.iter (judge site) site.a_names) !all_sites);
  List.sort_uniq Finding.compare !findings

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_file ?rules path =
  let mli_exists =
    (not (Filename.check_suffix path ".ml")) || Sys.file_exists (path ^ "i")
  in
  check_source ?rules ~mli_exists ~path (read_file path)

let walk roots =
  let rec add acc path =
    if Sys.is_directory path then
      Array.fold_left
        (fun acc entry ->
          if
            String.equal entry "_build"
            || (String.length entry > 0 && entry.[0] = '.')
          then acc
          else add acc (Filename.concat path entry))
        acc (Sys.readdir path)
    else if
      Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
    then normalize path :: acc
    else acc
  in
  (* [Sys.readdir] order is unspecified; sort so runs are stable. *)
  List.sort_uniq String.compare (List.fold_left add [] roots)

let run ?rules roots =
  List.sort Finding.compare
    (List.concat_map (fun f -> check_file ?rules f) (walk roots))

type baseline = (string * string) list

let load_baseline file =
  let entries = ref [] in
  String.split_on_char '\n' (read_file file)
  |> List.iter (fun line ->
       let line = String.trim line in
       if (not (String.equal line "")) && line.[0] <> '#' then
         match String.rindex_opt line ':' with
         | Some i ->
           let path = normalize (String.sub line 0 i) in
           let rule =
             String.sub line (i + 1) (String.length line - i - 1)
           in
           entries := (path, String.trim rule) :: !entries
         | None -> ());
  !entries

let apply_baseline baseline findings =
  List.filter
    (fun (f : Finding.t) ->
      not
        (List.exists
           (fun (path, rule) ->
             String.equal path f.file && String.equal rule f.rule)
           baseline))
    findings

(* When the Parsetree and Typedtree passes flag the same site — e.g.
   [rand-global] and a [det-reach] whose sink is that same call — keep
   the typed finding only: it is the more precise one (it carries the
   witness chain).  Matching is by (file, line) plus the registry's
   subsumption map; exit-code bits are stable because a typed rule
   shares its family with the rules it subsumes. *)
let dedupe findings =
  let typed_sites =
    List.filter_map
      (fun (f : Finding.t) ->
        match Rules.find f.rule with
        | Some r when r.Rules.typed -> Some (f.file, f.line, f.rule)
        | _ -> None)
      findings
  in
  List.filter
    (fun (f : Finding.t) ->
      not
        (List.exists
           (fun (file, line, typed_rule) ->
             String.equal file f.file && line = f.line
             && Rules.subsumed_by ~typed_rule f.rule)
           typed_sites))
    findings

let exit_code findings =
  List.fold_left
    (fun acc (f : Finding.t) ->
      let bit =
        match Rules.find f.rule with
        | Some r -> Rules.family_bit r.Rules.family
        | None -> 1
      in
      acc lor bit)
    0 findings

let report_json findings =
  let buf = Buffer.create 1024 in
  let by_rule =
    List.sort_uniq String.compare
      (List.map (fun (f : Finding.t) -> f.rule) findings)
    |> List.map (fun rule ->
         ( rule,
           List.length
             (List.filter
                (fun (f : Finding.t) -> String.equal f.rule rule)
                findings) ))
  in
  Buffer.add_string buf
    (Printf.sprintf "{\"version\":1,\"total\":%d,\"exit_code\":%d,"
       (List.length findings) (exit_code findings));
  Buffer.add_string buf "\"by_rule\":{";
  List.iteri
    (fun i (rule, n) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":%d" (Finding.json_escape rule) n))
    by_rule;
  Buffer.add_string buf "},\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Finding.to_json f))
    findings;
  Buffer.add_string buf "]}";
  Buffer.contents buf
