(* The two interprocedural passes over the typed call graph:

   - determinism reachability: BFS from the protocol/engine entry
     points to every nondeterministic sink, reporting one [det-reach]
     finding per reachable, unsuppressed sink site with the shortest
     witness call chain;

   - domain safety: an inventory of module-level mutable state across
     the corpus, each item classified for the sharded-server plan
     (ROADMAP item 2) and rendered as a machine-readable
     shard-readiness report.  Unsuppressed shared-unsafe state is a
     [module-mutable] finding; suppressed state stays visible in the
     report as the burn-down list. *)

(* Entry-point patterns: a name with a dot matches a node's display
   name ("State_space.add_square"); a bare name matches the final
   component only.  '*' is the single wildcard. *)
let default_entries =
  [
    "transform";
    "server_receive*";
    "client_receive*";
    "Engine.*";
    "P2p_engine.*";
    "State_space.add_*";
  ]

let glob_match pat s =
  let np = String.length pat and ns = String.length s in
  let rec go i j =
    if i = np then j = ns
    else
      match pat.[i] with
      | '*' -> go (i + 1) j || (j < ns && go i (j + 1))
      | c -> j < ns && Char.equal c s.[j] && go (i + 1) (j + 1)
  in
  go 0 0

let last_component s =
  match String.rindex_opt s '.' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> s

let entry_matches pat (d : Callgraph.def) =
  if String.contains pat '.' then glob_match pat d.d_disp
  else glob_match pat (last_component d.d_disp)

let entry_ids g patterns =
  List.filter
    (fun id ->
      match Callgraph.find g id with
      | Some d -> List.exists (fun p -> entry_matches p d) patterns
      | None -> false)
    (Callgraph.order g)

(* lib/obs is the sanctioned observability seam: its sinks are the
   whole point of the module and do not count as determinism leaks. *)
let in_obs_seam file = String.starts_with ~prefix:"lib/obs/" file

type reach = {
  r_entries : string list;
  r_reached : string list;
  r_findings : Finding.t list;
}

let det_reach ?(entries = default_entries) g =
  let roots = entry_ids g entries in
  (* BFS from all entries at once: the parent pointers then give each
     node its shortest witness chain from the *nearest* entry. *)
  let parent : (string, string option) Hashtbl.t = Hashtbl.create 64 in
  let q = Queue.create () in
  List.iter
    (fun id ->
      if not (Hashtbl.mem parent id) then begin
        Hashtbl.replace parent id None;
        Queue.add id q
      end)
    roots;
  let reached = ref [] in
  while not (Queue.is_empty q) do
    let id = Queue.pop q in
    reached := id :: !reached;
    match Callgraph.find g id with
    | None -> ()
    | Some d ->
      List.iter
        (fun callee ->
          if
            Option.is_some (Callgraph.find g callee)
            && not (Hashtbl.mem parent callee)
          then begin
            Hashtbl.replace parent callee (Some id);
            Queue.add callee q
          end)
        d.d_calls
  done;
  let reached = List.rev !reached in
  let disp id =
    match Callgraph.find g id with Some d -> d.Callgraph.d_disp | None -> id
  in
  let rec chain_to id acc =
    match Hashtbl.find_opt parent id with
    | Some (Some p) -> chain_to p (disp id :: acc)
    | _ -> disp id :: acc
  in
  let findings =
    List.concat_map
      (fun id ->
        match Callgraph.find g id with
        | None -> []
        | Some d ->
          List.filter_map
            (fun (s : Callgraph.sink) ->
              if s.s_suppressed || in_obs_seam s.s_file then None
              else
                let chain = chain_to id [ s.s_what ] in
                Some
                  (Finding.v ~chain ~file:s.s_file ~line:s.s_line
                     ~col:s.s_col ~rule:"det-reach"
                     (Printf.sprintf
                        "%s (%s) is reachable from entry point %s; the \
                         replicated state machine must be deterministic"
                        s.s_what s.s_rule (List.hd chain))))
            d.d_sinks)
      reached
  in
  {
    r_entries = roots;
    r_reached = reached;
    r_findings = List.sort_uniq Finding.compare findings;
  }

(* --- domain safety ---------------------------------------------------- *)

type mut_class = Obs_seam | Domain_confined | Shared_unsafe

let class_name = function
  | Obs_seam -> "obs-seam"
  | Domain_confined -> "domain-confined"
  | Shared_unsafe -> "shared-unsafe"

type mut_entry = {
  m_id : string;  (* "Flat_unit.Sub.name" *)
  m_disp : string;
  m_file : string;
  m_line : int;
  m_col : int;
  m_kind : string;  (* "ref", "Hashtbl.t", "record with mutable fields"… *)
  m_class : mut_class;
  m_suppressed : bool;
}

let classify ~file ~kind =
  if in_obs_seam file then Obs_seam
  else
    match kind with
    | "Atomic.t" | "Mutex.t" | "Condition.t" -> Domain_confined
    | _ -> Shared_unsafe

let domain_scan corpus =
  let entries = ref [] in
  let scan_unit (u : Cmt_loader.unit_info) =
    let file_allows = ref [] in
    let rec collect_file_allows (str : Typedtree.structure) =
      List.iter
        (fun (si : Typedtree.structure_item) ->
          match si.str_desc with
          | Tstr_attribute a ->
            file_allows := Callgraph.allows_of_attrs [ a ] @ !file_allows
          | Tstr_module { mb_expr = { mod_desc = Tmod_structure s; _ }; _ } ->
            collect_file_allows s
          | _ -> ())
        str.str_items
    in
    collect_file_allows u.str;
    let short = Cmt_loader.short_base u.modname in
    let rec structure prefix (str : Typedtree.structure) =
      List.iter (item prefix) str.str_items
    and item prefix (si : Typedtree.structure_item) =
      match si.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            let allows = Callgraph.allows_of_attrs vb.vb_attributes in
            let suppressed =
              let hit l = List.mem "all" l || List.mem "module-mutable" l in
              hit allows || hit !file_allows
            in
            List.iter
              (fun (_, name, loc, ty) ->
                match Cmt_loader.mutable_kind corpus ty with
                | None -> ()
                | Some kind ->
                  let pos = loc.Location.loc_start in
                  entries :=
                    {
                      m_id =
                        String.concat "." (u.modname :: (prefix @ [ name ]));
                      m_disp =
                        String.concat "." (short :: (prefix @ [ name ]));
                      m_file = u.source;
                      m_line = pos.Lexing.pos_lnum;
                      m_col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol + 1;
                      m_kind = kind;
                      m_class = classify ~file:u.source ~kind;
                      m_suppressed = suppressed;
                    }
                    :: !entries)
              (Callgraph.pat_vars vb.vb_pat))
          vbs
      | Tstr_module mb -> module_binding prefix mb
      | Tstr_recmodule mbs -> List.iter (module_binding prefix) mbs
      | _ -> ()
    and module_binding prefix (mb : Typedtree.module_binding) =
      match mb.mb_id with
      | None -> ()
      | Some id -> module_expr (prefix @ [ Ident.name id ]) mb.mb_expr
    and module_expr prefix (me : Typedtree.module_expr) =
      match me.mod_desc with
      | Tmod_structure str -> structure prefix str
      | Tmod_constraint (me, _, _, _) -> module_expr prefix me
      | Tmod_functor (_, me) -> module_expr prefix me
      | _ -> ()
    in
    structure [] u.str
  in
  List.iter scan_unit (Cmt_loader.units corpus);
  List.sort
    (fun a b ->
      match String.compare a.m_file b.m_file with
      | 0 -> Int.compare a.m_line b.m_line
      | c -> c)
    (List.rev !entries)

let domain_findings entries =
  List.filter_map
    (fun e ->
      match e.m_class with
      | Shared_unsafe when not e.m_suppressed ->
        Some
          (Finding.v ~file:e.m_file ~line:e.m_line ~col:e.m_col
             ~rule:"module-mutable"
             (Printf.sprintf
                "module-level mutable state %s (%s) is shared-unsafe under \
                 a multi-domain server; confine it to a domain, guard it \
                 with Atomic/Mutex, or suppress with a sharding \
                 justification"
                e.m_disp e.m_kind))
      | _ -> None)
    entries

let domain_report_json ?(escaping_unsuppressed = 0) entries =
  let count cls =
    List.length (List.filter (fun e -> e.m_class == cls) entries)
  in
  let unsuppressed_unsafe =
    List.length
      (List.filter
         (fun e -> e.m_class == Shared_unsafe && not e.m_suppressed)
         entries)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"version\":1,\"total\":%d,\"shard_ready\":%b,\"classes\":{\"obs-seam\":%d,\"domain-confined\":%d,\"shared-unsafe\":%d},\"unsuppressed_shared_unsafe\":%d,\"escaping_unsuppressed\":%d,\"entries\":["
       (List.length entries)
       (unsuppressed_unsafe = 0 && escaping_unsuppressed = 0)
       (count Obs_seam) (count Domain_confined) (count Shared_unsafe)
       unsuppressed_unsafe escaping_unsuppressed);
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"id\":\"%s\",\"name\":\"%s\",\"file\":\"%s\",\"line\":%d,\"kind\":\"%s\",\"class\":\"%s\",\"suppressed\":%b}"
           (Finding.json_escape e.m_id)
           (Finding.json_escape e.m_disp)
           (Finding.json_escape e.m_file)
           e.m_line
           (Finding.json_escape e.m_kind)
           (class_name e.m_class) e.m_suppressed))
    entries;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let run ?entries corpus =
  let g = Callgraph.build corpus in
  let reach = det_reach ?entries g in
  let muts = domain_scan corpus in
  let esc = Escape.analyze ~reached:reach.r_reached corpus in
  List.sort Finding.compare
    (reach.r_findings @ domain_findings muts @ Escape.findings esc)
