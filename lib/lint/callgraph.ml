(* The cross-module call graph, keyed on resolved [Path.t]s.

   One node per module-level value binding (nested non-functor modules
   included).  Edges are references from the body of one binding to
   another module-level binding — same-unit references resolve by
   [Ident] stamp (so a local [let] shadowing a toplevel name cannot
   fabricate an edge), cross-unit references resolve through
   {!Cmt_loader.resolve_qualified} (so aliases, wrapped-library paths
   and [open]s are handled by the typer, not by string matching).

   While walking each body the builder also records *sink hits*:
   occurrences of the nondeterministic primitives the determinism-
   reachability pass cares about, each tagged with the untyped rule it
   corresponds to and with the [[@lint.allow]] names in scope at the
   site.

   Known soundness caveats (documented in DESIGN.md §13): functor
   bodies and first-class modules are not resolved (their innards are
   walked as part of the enclosing binding, but calls *into* a functor
   instantiation do not connect to the functor's body), and values
   brought in by [include] keep their original defining node. *)

type sink = {
  s_rule : string;  (* the untyped rule this primitive maps to *)
  s_what : string;  (* e.g. "Random.int" or "polymorphic = at t" *)
  s_file : string;
  s_line : int;
  s_col : int;
  s_suppressed : bool;
}

type def = {
  d_id : string;  (* "Flat_unit.Sub.name" *)
  d_unit : string;
  d_disp : string;  (* "Transport.flush" — short module path *)
  d_file : string;
  d_line : int;
  mutable d_calls : string list;
  mutable d_sinks : sink list;
}

type t = { defs : (string, def) Hashtbl.t; order : string list }

let find t id = Hashtbl.find_opt t.defs id
let order t = t.order

let short_base = Cmt_loader.short_base

let print_names =
  [
    "print_string"; "print_char"; "print_int"; "print_float";
    "print_endline"; "print_newline"; "print_bytes"; "prerr_string";
    "prerr_char"; "prerr_int"; "prerr_float"; "prerr_endline";
    "prerr_newline"; "prerr_bytes"; "Printf.printf"; "Printf.eprintf";
    "Format.printf"; "Format.eprintf";
  ]

(* Primitive -> (base untyped rule, display). Polymorphic comparison is
   handled separately because it needs the instantiated type. *)
let sink_of_name name =
  match name with
  | "Hashtbl.iter" | "Hashtbl.fold" -> Some ("hashtbl-iter", name)
  | "Hashtbl.hash" | "Hashtbl.seeded_hash" -> Some ("poly-hash", name)
  | "Sys.time" -> Some ("sys-time", name)
  | "Unix.gettimeofday" | "Unix.time" -> Some ("wall-clock", name)
  | "string_of_float" | "Float.to_string" -> Some ("float-format", name)
  | n when List.mem n print_names -> Some ("print-direct", n)
  | n
    when String.starts_with ~prefix:"Random." n
         && not (String.starts_with ~prefix:"Random.State." n) ->
    Some ("rand-global", n)
  | _ -> None

let poly_ops = [ "="; "<>"; "compare" ]

(* The first argument type of a (possibly partially applied) use of a
   polymorphic comparison: its instantiated type is an arrow whose
   domain is the compared type. *)
let compared_type ty =
  match Types.get_desc ty with
  | Tarrow (_, a, _, _) -> Some a
  | _ -> None

let allows_of_attrs attrs =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if String.equal a.attr_name.txt "lint.allow" then
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ( {
                        pexp_desc =
                          Pexp_constant (Pconst_string (s, _, _));
                        _;
                      },
                      _ );
                _;
              };
            ] ->
          String.split_on_char ' ' s
          |> List.concat_map (String.split_on_char ',')
          |> List.filter_map (fun s ->
               let s = String.trim s in
               if String.equal s "" then None else Some s)
        | _ -> []
      else [])
    attrs

let rec pat_vars : type k. k Typedtree.general_pattern -> (Ident.t * string * Location.t * Types.type_expr) list =
 fun p ->
  match p.pat_desc with
  | Tpat_var (id, l) -> [ (id, l.txt, l.loc, p.pat_type) ]
  | Tpat_alias (inner, id, l) ->
    (id, l.txt, l.loc, p.pat_type) :: pat_vars inner
  | Tpat_tuple ps -> List.concat_map pat_vars ps
  | Tpat_record (fields, _) ->
    List.concat_map (fun (_, _, p) -> pat_vars p) fields
  | Tpat_construct (_, _, ps, _) -> List.concat_map pat_vars ps
  | Tpat_variant (_, Some p, _) -> pat_vars p
  | Tpat_array ps -> List.concat_map pat_vars ps
  | Tpat_lazy p -> pat_vars p
  | Tpat_or (a, b, _) -> pat_vars a @ pat_vars b
  | Tpat_value v -> pat_vars (v :> Typedtree.pattern)
  | _ -> []

let build corpus =
  let defs = Hashtbl.create 512 in
  let order = ref [] in
  (* Ident.unique_name of a unit's module-level bindings -> def id *)
  let local = Hashtbl.create 512 in
  let add_def ~unit_ ~prefix ~name ~file ~loc id_opt =
    let d_id = String.concat "." (unit_ :: (prefix @ [ name ])) in
    let d_disp = String.concat "." (short_base unit_ :: (prefix @ [ name ])) in
    if not (Hashtbl.mem defs d_id) then begin
      Hashtbl.replace defs d_id
        {
          d_id;
          d_unit = unit_;
          d_disp;
          d_file = file;
          d_line = loc.Location.loc_start.Lexing.pos_lnum;
          d_calls = [];
          d_sinks = [];
        };
      order := d_id :: !order
    end;
    (match id_opt with
    | Some id -> Hashtbl.replace local (Ident.unique_name id) d_id
    | None -> ());
    d_id
  in
  (* Pass 1: every module-level binding becomes a node. *)
  let collect_unit (u : Cmt_loader.unit_info) =
    let rec structure prefix (str : Typedtree.structure) =
      List.iter (item prefix) str.str_items
    and item prefix (si : Typedtree.structure_item) =
      match si.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            List.iter
              (fun (id, name, loc, _ty) ->
                ignore
                  (add_def ~unit_:u.modname ~prefix ~name ~file:u.source ~loc
                     (Some id)))
              (pat_vars vb.vb_pat))
          vbs
      | Tstr_module mb -> module_binding prefix mb
      | Tstr_recmodule mbs -> List.iter (module_binding prefix) mbs
      | _ -> ()
    and module_binding prefix (mb : Typedtree.module_binding) =
      match mb.mb_id with
      | None -> ()
      | Some id -> module_expr (prefix @ [ Ident.name id ]) mb.mb_expr
    and module_expr prefix (me : Typedtree.module_expr) =
      match me.mod_desc with
      | Tmod_structure str -> structure prefix str
      | Tmod_constraint (me, _, _, _) -> module_expr prefix me
      | Tmod_functor (_, me) -> module_expr prefix me
      | _ -> ()
    in
    structure [] u.str
  in
  List.iter collect_unit (Cmt_loader.units corpus);
  (* Pass 2: walk each binding's body for edges and sink hits. *)
  let walk_unit (u : Cmt_loader.unit_info) =
    (* floating [@@@lint.allow] names, file-wide *)
    let file_allows = ref [] in
    let rec collect_file_allows (str : Typedtree.structure) =
      List.iter
        (fun (si : Typedtree.structure_item) ->
          match si.str_desc with
          | Tstr_attribute a -> file_allows := allows_of_attrs [ a ] @ !file_allows
          | Tstr_module { mb_expr = { mod_desc = Tmod_structure s; _ }; _ } ->
            collect_file_allows s
          | _ -> ())
        str.str_items
    in
    collect_file_allows u.str;
    let resolve_path p =
      match p with
      | Path.Pident id -> (
        match Hashtbl.find_opt local (Ident.unique_name id) with
        | Some d_id -> `Internal d_id
        | None -> `Local)
      | _ -> (
        let name = Path.name p in
        let comps = String.split_on_char '.' name in
        match Cmt_loader.resolve_qualified corpus comps with
        | Some (unit_, rest) ->
          `Internal (String.concat "." (unit_ :: rest))
        | None -> `External (Cmt_loader.strip_stdlib name))
    in
    let walk_body (def : def) allow0 (body : Typedtree.expression) =
      let allows = ref [ allow0 ] in
      let in_scope rule =
        let hit l = List.mem "all" l || List.mem rule l in
        List.exists hit !allows || hit !file_allows
      in
      let add_sink ~loc s_rule s_what =
        let pos = loc.Location.loc_start in
        let s_suppressed = in_scope "det-reach" || in_scope s_rule in
        def.d_sinks <-
          {
            s_rule;
            s_what;
            s_file = def.d_file;
            s_line = pos.Lexing.pos_lnum;
            s_col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol + 1;
            s_suppressed;
          }
          :: def.d_sinks
      in
      let check_ident (e : Typedtree.expression) p =
        match resolve_path p with
        | `Local -> ()
        | `Internal callee ->
          if not (List.mem callee def.d_calls) then
            def.d_calls <- callee :: def.d_calls
        | `External name -> (
          match sink_of_name name with
          | Some (rule, what) -> add_sink ~loc:e.exp_loc rule what
          | None ->
            if List.mem name poly_ops then (
              let home =
                match String.rindex_opt def.d_id '.' with
                | Some i -> String.sub def.d_id 0 i
                | None -> def.d_id
              in
              match compared_type e.exp_type with
              | Some ty
                when not (Cmt_loader.visibly_comparable ~home corpus ty) ->
                let rule =
                  if String.equal name "compare" then "poly-cmp" else "poly-eq"
                in
                add_sink ~loc:e.exp_loc rule
                  (Printf.sprintf
                     "polymorphic %s at %s (not visibly comparable)" name
                     (Cmt_loader.type_to_string ty))
              | _ -> ()))
      in
      let default = Tast_iterator.default_iterator in
      let with_allows attrs f =
        match allows_of_attrs attrs with
        | [] -> f ()
        | names ->
          allows := names :: !allows;
          Fun.protect ~finally:(fun () -> allows := List.tl !allows) f
      in
      let it =
        {
          default with
          expr =
            (fun it (e : Typedtree.expression) ->
              with_allows e.exp_attributes (fun () ->
                  (match e.exp_desc with
                  | Texp_ident (p, _, _) -> check_ident e p
                  | _ -> ());
                  default.expr it e));
          value_binding =
            (fun it (vb : Typedtree.value_binding) ->
              with_allows vb.vb_attributes (fun () ->
                  default.value_binding it vb));
        }
      in
      it.expr it body
    in
    let rec structure prefix (str : Typedtree.structure) =
      List.iter (item prefix) str.str_items
    and item prefix (si : Typedtree.structure_item) =
      match si.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            let def =
              match pat_vars vb.vb_pat with
              | (_, name, _, _) :: _ ->
                Hashtbl.find_opt defs
                  (String.concat "." (u.modname :: (prefix @ [ name ])))
              | [] -> None
            in
            let def =
              match def with
              | Some d -> d
              | None ->
                (* a binding that introduces no variables, e.g.
                   [let () = ...]: module-initialization effects *)
                let d_id =
                  String.concat "." (u.modname :: (prefix @ [ "(init)" ]))
                in
                (match Hashtbl.find_opt defs d_id with
                | Some d -> d
                | None ->
                  let d =
                    {
                      d_id;
                      d_unit = u.modname;
                      d_disp =
                        String.concat "."
                          (short_base u.modname :: (prefix @ [ "(init)" ]));
                      d_file = u.source;
                      d_line =
                        vb.vb_loc.Location.loc_start.Lexing.pos_lnum;
                      d_calls = [];
                      d_sinks = [];
                    }
                  in
                  Hashtbl.replace defs d_id d;
                  order := d_id :: !order;
                  d)
            in
            walk_body def (allows_of_attrs vb.vb_attributes) vb.vb_expr)
          vbs
      | Tstr_eval (e, attrs) ->
        let d_id = String.concat "." (u.modname :: (prefix @ [ "(init)" ])) in
        let def =
          match Hashtbl.find_opt defs d_id with
          | Some d -> d
          | None ->
            let d =
              {
                d_id;
                d_unit = u.modname;
                d_disp =
                  String.concat "."
                    (short_base u.modname :: (prefix @ [ "(init)" ]));
                d_file = u.source;
                d_line = e.exp_loc.Location.loc_start.Lexing.pos_lnum;
                d_calls = [];
                d_sinks = [];
              }
            in
            Hashtbl.replace defs d_id d;
            order := d_id :: !order;
            d
        in
        walk_body def (allows_of_attrs attrs) e
      | Tstr_module mb -> module_binding prefix mb
      | Tstr_recmodule mbs -> List.iter (module_binding prefix) mbs
      | _ -> ()
    and module_binding prefix (mb : Typedtree.module_binding) =
      match mb.mb_id with
      | None -> ()
      | Some id -> module_expr (prefix @ [ Ident.name id ]) mb.mb_expr
    and module_expr prefix (me : Typedtree.module_expr) =
      match me.mod_desc with
      | Tmod_structure str -> structure prefix str
      | Tmod_constraint (me, _, _, _) -> module_expr prefix me
      | Tmod_functor (_, me) -> module_expr prefix me
      | _ -> ()
    in
    structure [] u.str
  in
  List.iter walk_unit (Cmt_loader.units corpus);
  let order = List.rev !order in
  (* stable edge order for deterministic traversal and output *)
  List.iter
    (fun id ->
      match Hashtbl.find_opt defs id with
      | Some d -> d.d_calls <- List.sort String.compare d.d_calls
      | None -> ())
    order;
  { defs; order }

(* --- exports ---------------------------------------------------------- *)

(* Escape a string for a double-quoted DOT id or label: backslashes
   and quotes are escaped, and angle brackets are too (a quoted label
   starting with [<] would otherwise be parsed as an HTML-like label —
   nested-module names like "M.(init)" or functor spellings can carry
   any of these). *)
let dot_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '<' -> Buffer.add_string buf "\\<"
      | '>' -> Buffer.add_string buf "\\>"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let dot ?(entries = []) ?(reached = []) t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.defs id with
      | None -> ()
      | Some d ->
        let attrs =
          if List.mem id entries then
            ", style=filled, fillcolor=lightblue"
          else if d.d_sinks <> [] then ", style=filled, fillcolor=salmon"
          else if List.mem id reached then
            ", style=filled, fillcolor=lightyellow"
          else ""
        in
        Buffer.add_string buf
          (Printf.sprintf "  \"%s\" [label=\"%s\\n%s\"%s];\n" (dot_escape d.d_id)
             (dot_escape d.d_disp) (dot_escape d.d_file) attrs))
    t.order;
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.defs id with
      | None -> ()
      | Some d ->
        List.iter
          (fun callee ->
            if Hashtbl.mem t.defs callee then
              Buffer.add_string buf
                (Printf.sprintf "  \"%s\" -> \"%s\";\n" (dot_escape d.d_id)
                   (dot_escape callee)))
          d.d_calls)
    t.order;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let json ?(entries = []) ?(reached = []) t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"version\":1,\"nodes\":[";
  let first = ref true in
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.defs id with
      | None -> ()
      | Some d ->
        if not !first then Buffer.add_char buf ',';
        first := false;
        Buffer.add_string buf
          (Printf.sprintf
             "{\"id\":\"%s\",\"name\":\"%s\",\"file\":\"%s\",\"line\":%d,\"entry\":%b,\"reached\":%b,\"sinks\":%d}"
             (Finding.json_escape d.d_id)
             (Finding.json_escape d.d_disp)
             (Finding.json_escape d.d_file)
             d.d_line (List.mem id entries) (List.mem id reached)
             (List.length d.d_sinks)))
    t.order;
  Buffer.add_string buf "],\"edges\":[";
  first := true;
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.defs id with
      | None -> ()
      | Some d ->
        List.iter
          (fun callee ->
            if Hashtbl.mem t.defs callee then begin
              if not !first then Buffer.add_char buf ',';
              first := false;
              Buffer.add_string buf
                (Printf.sprintf "[\"%s\",\"%s\"]" (Finding.json_escape d.d_id)
                   (Finding.json_escape callee))
            end)
          d.d_calls)
    t.order;
  Buffer.add_string buf "]}";
  Buffer.contents buf
