type family = Hygiene | Determinism | Exception_safety | Interface

let family_name = function
  | Hygiene -> "hygiene"
  | Determinism -> "determinism"
  | Exception_safety -> "exception-safety"
  | Interface -> "interface"

let family_bit = function
  | Hygiene -> 1
  | Determinism -> 2
  | Exception_safety -> 4
  | Interface -> 8

type t = {
  name : string;
  family : family;
  scope : string list option;
  summary : string;
}

(* The protocol libraries, where operation and state types carry
   semantically irrelevant fields and must only be compared with their
   dedicated functions. *)
let strict = Some [ "lib/core"; "lib/ot"; "lib/cscw" ]

(* Everything the differential runs and the bounded model checker
   replay byte-for-byte; lib/obs and bench are the sanctioned clock
   seams and stay outside. *)
let deterministic =
  Some [ "lib/core"; "lib/ot"; "lib/cscw"; "lib/net"; "lib/mc"; "lib/sim" ]

(* The OT core plus the CSCW 2-D transform path: the functions whose
   totality Thm 7.1's differential evidence silently assumes. *)
let transform_paths = Some [ "lib/ot"; "lib/cscw/two_d_space.ml" ]

let libraries = Some [ "lib" ]

let all =
  [
    (* -- Hygiene: ports of the old textual scanner ------------------ *)
    {
      name = "obj-magic";
      family = Hygiene;
      scope = None;
      summary = "Obj.magic is forbidden";
    };
    {
      name = "sys-time";
      family = Hygiene;
      scope = None;
      summary =
        "Sys.time measures CPU seconds; use the metrics clock or \
         Unix.gettimeofday (outside the deterministic core)";
    };
    {
      name = "poly-eq";
      family = Hygiene;
      scope = strict;
      summary =
        "polymorphic =/<> against a constructor; match instead";
    };
    {
      name = "poly-cmp";
      family = Hygiene;
      scope = strict;
      summary =
        "bare polymorphic compare; use the type's own compare";
    };
    {
      name = "poly-hash";
      family = Hygiene;
      scope = strict;
      summary =
        "Hashtbl.hash is structural and follows irrelevant fields";
    };
    {
      name = "parse-error";
      family = Hygiene;
      scope = None;
      summary = "the file does not parse (analysis impossible)";
    };
    (* -- Determinism ------------------------------------------------ *)
    {
      name = "rand-global";
      family = Determinism;
      scope = deterministic;
      summary =
        "global-state Random.* call; thread an explicit seeded \
         Random.State.t instead";
    };
    {
      name = "hashtbl-iter";
      family = Determinism;
      scope = deterministic;
      summary =
        "Hashtbl.iter/fold visits in hash-bucket order, which is not \
         deterministic across inputs; iterate a sorted view instead";
    };
    {
      name = "wall-clock";
      family = Determinism;
      scope = deterministic;
      summary =
        "wall-clock read in replayed code; take time through the \
         obs/bench clock seams";
    };
    {
      name = "float-format";
      family = Determinism;
      scope = deterministic;
      summary =
        "shortest-round-trip float formatting is representation- \
         sensitive; print with an explicit format (e.g. %.17g)";
    };
    {
      name = "print-direct";
      family = Determinism;
      scope = libraries;
      summary =
        "direct stdout/stderr write in library code; route output \
         through the obs sink or a caller-supplied formatter";
    };
    (* -- Exception safety ------------------------------------------- *)
    {
      name = "exn-partial";
      family = Exception_safety;
      scope = transform_paths;
      summary =
        "partial construct in a transform path (raise/failwith/\
         invalid_arg/assert false/List.hd/Option.get/array access); \
         OT transforms must be total";
    };
    (* -- Interface completeness ------------------------------------- *)
    {
      name = "missing-mli";
      family = Interface;
      scope = libraries;
      summary = "library module without a matching .mli";
    };
  ]

let find name = List.find_opt (fun r -> String.equal r.name name) all

let applies r path =
  match r.scope with
  | None -> true
  | Some prefixes ->
    List.exists
      (fun p ->
        let lp = String.length p and lpath = String.length path in
        lpath >= lp
        && String.equal (String.sub path 0 lp) p
        && (lpath = lp || path.[lp] = '/'))
      prefixes
