type family =
  | Hygiene
  | Determinism
  | Exception_safety
  | Interface
  | Domain_safety

let family_name = function
  | Hygiene -> "hygiene"
  | Determinism -> "determinism"
  | Exception_safety -> "exception-safety"
  | Interface -> "interface"
  | Domain_safety -> "domain-safety"

let family_bit = function
  | Hygiene -> 1
  | Determinism -> 2
  | Exception_safety -> 4
  | Interface -> 8
  | Domain_safety -> 16

type t = {
  name : string;
  family : family;
  scope : string list option;
  summary : string;
  typed : bool;
  subsumes : string list;
}

(* The protocol libraries, where operation and state types carry
   semantically irrelevant fields and must only be compared with their
   dedicated functions. *)
let strict = Some [ "lib/core"; "lib/ot"; "lib/cscw" ]

(* Everything the differential runs and the bounded model checker
   replay byte-for-byte; lib/obs and bench are the sanctioned clock
   seams and stay outside. *)
let deterministic =
  Some [ "lib/core"; "lib/ot"; "lib/cscw"; "lib/net"; "lib/mc"; "lib/sim" ]

(* The OT core plus the CSCW 2-D transform path: the functions whose
   totality Thm 7.1's differential evidence silently assumes. *)
let transform_paths = Some [ "lib/ot"; "lib/cscw/two_d_space.ml" ]

let libraries = Some [ "lib" ]

let rule ?(typed = false) ?(subsumes = []) name family scope summary =
  { name; family; scope; summary; typed; subsumes }

let all =
  [
    (* -- Hygiene: ports of the old textual scanner ------------------ *)
    rule "obj-magic" Hygiene None "Obj.magic is forbidden";
    rule "sys-time" Hygiene None
      "Sys.time measures CPU seconds; use the metrics clock or \
       Unix.gettimeofday (outside the deterministic core)";
    rule "poly-eq" Hygiene strict
      "polymorphic =/<> against a constructor; match instead";
    rule "poly-cmp" Hygiene strict
      "bare polymorphic compare; use the type's own compare";
    rule "poly-hash" Hygiene strict
      "Hashtbl.hash is structural and follows irrelevant fields";
    rule "parse-error" Hygiene None
      "the file does not parse (analysis impossible)";
    rule "unused-allow" Hygiene None
      "a [@lint.allow] suppression under which the named rule never \
       fires; remove the stale seam before it excuses a future bug";
    (* -- Determinism ------------------------------------------------ *)
    rule "rand-global" Determinism deterministic
      "global-state Random.* call; thread an explicit seeded \
       Random.State.t instead";
    rule "hashtbl-iter" Determinism deterministic
      "Hashtbl.iter/fold visits in hash-bucket order, which is not \
       deterministic across inputs; iterate a sorted view instead";
    rule "wall-clock" Determinism deterministic
      "wall-clock read in replayed code; take time through the \
       obs/bench clock seams";
    rule "float-format" Determinism deterministic
      "shortest-round-trip float formatting is representation- \
       sensitive; print with an explicit format (e.g. %.17g)";
    rule "print-direct" Determinism libraries
      "direct stdout/stderr write in library code; route output \
       through the obs sink or a caller-supplied formatter";
    rule "det-reach" Determinism None ~typed:true
      ~subsumes:
        [
          "rand-global";
          "hashtbl-iter";
          "wall-clock";
          "sys-time";
          "poly-hash";
          "float-format";
          "print-direct";
          "poly-eq";
          "poly-cmp";
        ]
      "a protocol entry point transitively reaches a nondeterministic \
       primitive (typed interprocedural pass over .cmt call graphs; \
       the finding prints the witness call chain)";
    (* -- Exception safety ------------------------------------------- *)
    rule "exn-partial" Exception_safety transform_paths
      "partial construct in a transform path (raise/failwith/\
       invalid_arg/assert false/List.hd/Option.get/array access); \
       OT transforms must be total";
    (* -- Interface completeness ------------------------------------- *)
    rule "missing-mli" Interface libraries
      "library module without a matching .mli";
    (* -- Domain safety (shard readiness, ROADMAP item 2) ------------- *)
    rule "module-mutable" Domain_safety None ~typed:true
      "module-level mutable state (toplevel ref/Hashtbl/Buffer/array \
       or escaping mutable record) is shared the moment documents are \
       pinned to domains; confine it to a shard, make it atomic, or \
       carry a justified suppression";
    rule "escape" Domain_safety None ~typed:true
      "an engine-reachable mutable allocation escapes to module-level \
       state (typed value-flow pass over the .cmt corpus; the finding \
       prints the witness flow chain); escaping state is shared the \
       moment documents are pinned to domains";
  ]

let find name = List.find_opt (fun r -> String.equal r.name name) all

let applies r path =
  match r.scope with
  | None -> true
  | Some prefixes ->
    List.exists
      (fun p ->
        let lp = String.length p and lpath = String.length path in
        lpath >= lp
        && String.equal (String.sub path 0 lp) p
        && (lpath = lp || path.[lp] = '/'))
      prefixes

let subsumed_by ~typed_rule untyped_rule =
  match find typed_rule with
  | Some r -> r.typed && List.mem untyped_rule r.subsumes
  | None -> false
