(** The analysis driver: parse OCaml sources into the Parsetree
    (compiler-libs front end) and run the {!Rules} registry over them
    with an attribute-aware AST walk.

    Suppressions are scoped attributes read from the AST, not magic
    comments:
    {ul
    {- [[@lint.allow "rule"]] on an expression and [[@@lint.allow
       "rule"]] on a [let] binding or module binding silence the named
       rule(s) for that subtree only.}
    {- [[@@@lint.allow "rule"]] (floating, anywhere in the file)
       silences the rule(s) for the whole file — including the
       file-level [missing-mli] check.}}
    The payload is a string of one or more rule names separated by
    spaces or commas; ["all"] silences every rule. *)

val check_source :
  ?mli_exists:bool ->
  ?rules:string list ->
  path:string ->
  string ->
  Finding.t list
(** Analyze one compilation unit given as a string.  [path] decides
    which rules apply (see {!Rules.applies}) and whether the unit is an
    implementation or an interface (by extension; interfaces are only
    parsed, the expression rules have nothing to say about them).
    [mli_exists] (default [true]) feeds the [missing-mli] check.
    [rules], when given, restricts the run to the named rules.
    Findings come back sorted. *)

val check_file : ?rules:string list -> string -> Finding.t list
(** Read a file from disk and {!check_source} it; [mli_exists] is
    taken from the file system. *)

val walk : string list -> string list
(** All [.ml]/[.mli] files under the given roots (files are accepted
    as roots too), sorted, [_build] and dot-directories excluded. *)

val run : ?rules:string list -> string list -> Finding.t list
(** [run roots] — {!walk} then {!check_file} everything, sorted. *)

(** {1 Baselines} *)

type baseline
(** A set of accepted findings: the CLI's [--baseline] file, one
    [path:rule] pair per line ([#] comments and blank lines ignored).
    Matching is by file and rule, not line number, so baselined
    findings survive unrelated edits. *)

val load_baseline : string -> baseline
val apply_baseline : baseline -> Finding.t list -> Finding.t list

val dedupe : Finding.t list -> Finding.t list
(** Drop Parsetree findings that a typed finding at the same
    [(file, line)] subsumes (see {!Rules.subsumed_by}): the typed rule
    is the more precise report of the same defect, and shares its
    exit-code family with the rules it subsumes. *)

(** {1 Reporting} *)

val exit_code : Finding.t list -> int
(** Bitwise OR of {!Rules.family_bit} over the findings' families:
    0 means clean, and e.g. 6 means determinism + exception-safety
    findings (and nothing else). *)

val report_json : Finding.t list -> string
(** The full machine-readable report: version, totals, per-rule
    counts, exit code, and the findings array. *)
