(** The shard-confinement escape pass (DESIGN.md §15): a value-flow
    analysis over the {!Cmt_loader} corpus that classifies every
    mutable allocation — refs, arrays, bytes, Hashtbls, Queues,
    Stacks, Buffers, and records with mutable fields — by how far it
    travels from its allocation site.

    The analysis builds one global "held-by" graph whose nodes are
    allocation sites, per-function parameter/return summaries, and a
    single module-scope node; classification is reachability, and the
    BFS path is the witness flow chain attached to the finding.
    Instance-confined verdicts are what make ROADMAP item 2 safe:
    state reachable only through a constructor's return value is owned
    by whichever engine or document instance the caller builds, so
    pinning documents to domains cannot share it. *)

type verdict =
  | Stack_confined  (** never leaves the allocating function *)
  | Instance_confined
      (** leaves only via return values or caller-supplied structures:
          owned by one engine/document instance *)
  | Escaping  (** reachable from module-level state: shared across
                  every domain of a multi-domain server *)

val verdict_name : verdict -> string
(** ["stack-confined"] / ["instance-confined"] / ["escaping"]. *)

type alloc = {
  a_idx : int;
  a_def : string;  (** enclosing def node id (callgraph spelling) *)
  a_def_disp : string;  (** short display name, e.g. ["State_space.create"] *)
  a_file : string;
  a_line : int;
  a_col : int;
  a_kind : string;  (** ["ref"], ["Hashtbl.t"], ["mutable record t"], … *)
  a_exempt : bool;
      (** [Atomic.t]/[Mutex.t]/[Condition.t]: built for cross-domain
          sharing, never a finding — but still a graph node, so what
          is stored {e inside} one is tracked *)
  a_suppressed : bool;  (** [[@lint.allow "escape"]] in scope *)
  mutable a_verdict : verdict;
  mutable a_chain : string list;
      (** witness flow chain, allocation first, each hop a labelled
          edge ("stored into field fp (lib/core/state_space.ml:72)",
          "returned from State_space.create", …) *)
  mutable a_reachable : bool;
      (** the enclosing definition is reachable from a protocol/engine
          entry point (the det-reach BFS set) *)
}

type result = { allocs : alloc list }

val analyze : ?reached:string list -> Cmt_loader.t -> result
(** Run the pass.  [reached] is the determinism pass's
    entry-reachability set ({!Typed.reach}[.r_reached]); allocations
    whose enclosing definition is in it are flagged engine-reachable
    and eligible for findings.  Allocations inside [lib/obs/] (the
    sanctioned observability seam) are not inventoried. *)

val findings : result -> Finding.t list
(** One [escape] finding per engine-reachable, unsuppressed,
    non-exempt escaping allocation, witness chain attached. *)

val unsuppressed_escaping : result -> int
(** Count behind {!findings} — the number that gates [shard_ready]. *)

val report_json : result -> string
(** The full inventory as JSON: totals per class and every allocation
    with verdict, witness chain, reachability, exemption and
    suppression bits (the [--escape-report] artifact). *)
