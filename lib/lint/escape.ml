(* The shard-confinement escape pass: a value-flow analysis over the
   Typedtree corpus that classifies every mutable allocation — refs,
   arrays, bytes, Hashtbls, Queues, Stacks, Buffers, and records with
   mutable fields — by how far it can travel from its allocation
   site:

     stack-confined     never leaves the allocating function
     instance-confined  leaves only through return values or stores
                        into caller-supplied structures (so it is
                        owned by whichever instance the caller builds
                        — a document's state space, an engine, a
                        transport)
     escaping           reachable from module-level state, i.e.
                        shared by every domain of a multi-domain
                        server

   The analysis builds one global "held-by" graph.  Nodes are
   allocation sites, per-function parameter and return summaries
   ([Params f] / [Ret f]), and a single [Global] node for module
   scope.  Intraprocedural walks emit labelled edges (bound, stored,
   passed, captured, returned, module-level); classification is then
   plain reachability — [Alloc -> ... -> Global] means escaping, and
   the BFS path is the witness flow chain printed with the finding.
   Making parameters and returns graph nodes gives the
   interprocedural fixpoint for free: an allocation returned by
   [create] whose result a caller binds at module level follows
   [Alloc -> Ret create -> Global] with no per-function summary
   iteration.

   Soundness caveats (DESIGN.md §15): calls into functor parameters
   and first-class modules are treated as external; external calls
   propagate their arguments to their result but are not assumed to
   stash them (the known stdlib mutators are modelled explicitly);
   higher-order uses of corpus functions (passing [create] itself
   around) are not tracked.  [Atomic.t]/[Mutex.t]/[Condition.t]
   allocations are exempt from findings — they are built for sharing
   — but still propagate what is stored inside them.  [lib/obs] is
   the sanctioned observability seam and its allocations are not
   inventoried, mirroring the determinism pass. *)

let in_obs_seam file = String.starts_with ~prefix:"lib/obs/" file

type verdict = Stack_confined | Instance_confined | Escaping

let verdict_name = function
  | Stack_confined -> "stack-confined"
  | Instance_confined -> "instance-confined"
  | Escaping -> "escaping"

type alloc = {
  a_idx : int;
  a_def : string;  (* enclosing def node id, callgraph spelling *)
  a_def_disp : string;
  a_file : string;
  a_line : int;
  a_col : int;
  a_kind : string;  (* "ref", "Hashtbl.t", "mutable record t", … *)
  a_exempt : bool;  (* Atomic/Mutex/Condition: built for sharing *)
  a_suppressed : bool;  (* [@lint.allow "escape"] in scope at the site *)
  mutable a_verdict : verdict;
  mutable a_chain : string list;  (* witness flow chain, alloc first *)
  mutable a_reachable : bool;  (* enclosing def reachable from an entry *)
}

type node = Alloc of int | Params of string | Ret of string | Global

let node_compare a b =
  match (a, b) with
  | Alloc i, Alloc j -> Int.compare i j
  | Alloc _, _ -> -1
  | _, Alloc _ -> 1
  | Params x, Params y -> String.compare x y
  | Params _, _ -> -1
  | _, Params _ -> 1
  | Ret x, Ret y -> String.compare x y
  | Ret _, _ -> -1
  | _, Ret _ -> 1
  | Global, Global -> 0

module NodeSet = Set.Make (struct
  type t = node

  let compare = node_compare
end)

module NodeTbl = Hashtbl.Make (struct
  type t = node

  let equal a b = node_compare a b = 0

  let hash = function
    | Alloc i -> Hashtbl.hash (0, i)
    | Params s -> Hashtbl.hash (1, s)
    | Ret s -> Hashtbl.hash (2, s)
    | Global -> Hashtbl.hash 3
end)

type result = { allocs : alloc list }

(* --- the allocation / mutation model of the stdlib ------------------- *)

let allocator_kind name =
  match name with
  | "ref" -> Some "ref"
  | "Array.make" | "Array.create_float" | "Array.init" | "Array.make_matrix"
  | "Array.of_list" | "Array.copy" | "Array.sub" | "Array.append"
  | "Array.concat" | "Array.map" | "Array.mapi" ->
    Some "array"
  | "Bytes.create" | "Bytes.make" | "Bytes.of_string" | "Bytes.copy"
  | "Bytes.sub" ->
    Some "bytes"
  | "Hashtbl.create" | "Hashtbl.copy" | "Hashtbl.of_seq" -> Some "Hashtbl.t"
  | "Queue.create" | "Queue.copy" -> Some "Queue.t"
  | "Stack.create" | "Stack.copy" -> Some "Stack.t"
  | "Buffer.create" -> Some "Buffer.t"
  | "Atomic.make" -> Some "Atomic.t"
  | "Mutex.create" -> Some "Mutex.t"
  | "Condition.create" -> Some "Condition.t"
  | _ -> None

let exempt_kind = function
  | "Atomic.t" | "Mutex.t" | "Condition.t" -> true
  | _ -> false

(* Stdlib calls that store their other arguments *inside* the
   container argument (by index). *)
let mutator_container name =
  match name with
  | ":=" | "Hashtbl.add" | "Hashtbl.replace" | "Array.set"
  | "Array.unsafe_set" | "Array.fill" | "Buffer.add_string"
  | "Buffer.add_char" | "Buffer.add_bytes" | "Buffer.add_buffer"
  | "Atomic.set" | "Atomic.exchange" ->
    Some 0
  | "Queue.add" | "Queue.push" | "Stack.push" -> Some 1
  | "Array.blit" | "Bytes.blit" -> Some 2
  | _ -> None

(* --- analysis state ---------------------------------------------------- *)

type st = {
  corpus : Cmt_loader.t;
  mutable allocs_rev : alloc list;
  mutable n_allocs : int;
  by_site : (string * int * int, int) Hashtbl.t;
  edges : (node * string) list ref NodeTbl.t;
  (* Ident.unique_name of a module-level binding -> def node id *)
  local : (string, string) Hashtbl.t;
  disp : (string, string) Hashtbl.t;  (* def id -> display name *)
  (* Ident.unique_name -> tokens carried by that variable *)
  env : (string, NodeSet.t) Hashtbl.t;
}

(* Per-def walking context: where we are and which suppressions are in
   scope, mirroring the callgraph walker. *)
type ctx = {
  file : string;
  def_id : string;
  def_disp : string;
  skip_allocs : bool;  (* lib/obs: sanctioned seam *)
  allows : string list list ref;
  file_allows : string list ref;
}

let in_scope ctx rule =
  let hit l = List.mem "all" l || List.mem rule l in
  List.exists hit !(ctx.allows) || hit !(ctx.file_allows)

let with_allows ctx attrs f =
  match Callgraph.allows_of_attrs attrs with
  | [] -> f ()
  | names ->
    ctx.allows := names :: !(ctx.allows);
    Fun.protect ~finally:(fun () -> ctx.allows := List.tl !(ctx.allows)) f

let loc_str ctx (loc : Location.t) =
  Printf.sprintf "%s:%d" ctx.file loc.loc_start.Lexing.pos_lnum

let add_edge st src dst label =
  if node_compare src dst <> 0 then begin
    let cell =
      match NodeTbl.find_opt st.edges src with
      | Some c -> c
      | None ->
        let c = ref [] in
        NodeTbl.replace st.edges src c;
        c
    in
    if not (List.exists (fun (d, _) -> node_compare d dst = 0) !cell) then
      cell := (dst, label) :: !cell
  end

(* Every token of [set] becomes reachable from [dst]'s holder — i.e.
   [dst] now holds them. *)
let flow st set dst label = NodeSet.iter (fun n -> add_edge st n dst label) set

(* [store values ~into label]: the stored values are held by whatever
   the destination expression denoted. *)
let store st values ~into label =
  NodeSet.iter (fun holder -> flow st values holder label) into

let fresh_alloc st ctx ~kind (loc : Location.t) =
  if ctx.skip_allocs then NodeSet.empty
  else begin
    let pos = loc.loc_start in
    let line = pos.Lexing.pos_lnum in
    let col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol + 1 in
    let site = (ctx.file, line, col) in
    match Hashtbl.find_opt st.by_site site with
    | Some i -> NodeSet.singleton (Alloc i)
    | None ->
      let i = st.n_allocs in
      st.n_allocs <- i + 1;
      Hashtbl.replace st.by_site site i;
      st.allocs_rev <-
        {
          a_idx = i;
          a_def = ctx.def_id;
          a_def_disp = ctx.def_disp;
          a_file = ctx.file;
          a_line = line;
          a_col = col;
          a_kind = kind;
          a_exempt = exempt_kind kind;
          a_suppressed = in_scope ctx "escape";
          a_verdict = Stack_confined;
          a_chain = [];
          a_reachable = false;
        }
        :: st.allocs_rev;
      NodeSet.singleton (Alloc i)
  end

let disp_of st d_id =
  match Hashtbl.find_opt st.disp d_id with Some d -> d | None -> d_id

(* Does this record expression build a value with mutable fields? *)
let record_mutability (fields : _ array) =
  Array.exists
    (fun ((lbl : Types.label_description), _) ->
      match lbl.lbl_mut with Mutable -> true | Immutable -> false)
    fields

let record_kind (fields : _ array) =
  if Array.length fields = 0 then "mutable record"
  else
    let lbl, _ = fields.(0) in
    let tyname =
      match Types.get_desc (lbl : Types.label_description).lbl_res with
      | Tconstr (p, _, _) -> Path.name p
      | _ -> "record"
    in
    Printf.sprintf "mutable record %s" tyname

let resolve_head st p =
  match p with
  | Path.Pident id -> (
    let key = Ident.unique_name id in
    match Hashtbl.find_opt st.env key with
    | Some s -> `Closure s
    | None -> (
      match Hashtbl.find_opt st.local key with
      | Some d_id -> `Corpus d_id
      | None -> `External))
  | _ -> (
    let name = Cmt_loader.strip_stdlib (Path.name p) in
    match allocator_kind name with
    | Some k -> `Allocator k
    | None -> (
      match mutator_container name with
      | Some i -> `Mutator i
      | None -> (
        match
          Cmt_loader.resolve_qualified st.corpus
            (String.split_on_char '.' name)
        with
        | Some (unit_, rest) -> `Corpus (String.concat "." (unit_ :: rest))
        | None -> `External)))

let bind_pat :
    type k. st -> k Typedtree.general_pattern -> NodeSet.t -> unit =
 fun st pat set ->
  List.iter
    (fun (id, _, _, _) ->
      let key = Ident.unique_name id in
      let prev =
        match Hashtbl.find_opt st.env key with
        | Some s -> s
        | None -> NodeSet.empty
      in
      Hashtbl.replace st.env key (NodeSet.union prev set))
    (Callgraph.pat_vars pat)

(* Tokens a closure body captures from the enclosing scope: every
   reference to a token-carrying variable.  A closure value carries
   its captures — stash the closure globally and the captured ref is
   shared state even if the body never returns it. *)
let captured_tokens st (body : Typedtree.expression) =
  let acc = ref NodeSet.empty in
  let default = Tast_iterator.default_iterator in
  let it =
    {
      default with
      expr =
        (fun it e ->
          (match e.exp_desc with
          | Texp_ident (Path.Pident id, _, _) -> (
            match Hashtbl.find_opt st.env (Ident.unique_name id) with
            | Some s -> acc := NodeSet.union !acc s
            | None -> ())
          | _ -> ());
          default.expr it e);
    }
  in
  it.expr it body;
  !acc

let union_all sets = List.fold_left NodeSet.union NodeSet.empty sets

(* [raw_tokens] computes the token set structurally; the [tokens_of]
   wrapper below then drops it when the expression's *type* provably
   cannot carry mutable state ([Cmt_loader.inert_type]).  The type
   filter is what keeps the context-insensitive graph precise: without
   it, every scalar-typed helper ([Document.length : t -> int], digest
   and clock reads, …) becomes a junction that merges all its callers'
   flows. *)
let rec raw_tokens st ctx (e : Typedtree.expression) : NodeSet.t =
  with_allows ctx e.exp_attributes @@ fun () ->
  match e.exp_desc with
  | Texp_ident (p, _, _) -> ident_tokens st e p
  | Texp_constant _ -> NodeSet.empty
  | Texp_let (_, vbs, body) ->
    List.iter (bind_vb st ctx) vbs;
    tokens_of st ctx body
  | Texp_function { cases; _ } ->
    List.iter
      (fun (c : _ Typedtree.case) -> bind_pat st c.c_lhs NodeSet.empty)
      cases;
    let body =
      List.fold_left
        (fun acc (c : _ Typedtree.case) ->
          (match c.c_guard with
          | Some g -> ignore (tokens_of st ctx g)
          | None -> ());
          NodeSet.union acc (tokens_of st ctx c.c_rhs))
        NodeSet.empty cases
    in
    List.fold_left
      (fun acc (c : _ Typedtree.case) ->
        NodeSet.union acc (captured_tokens st c.c_rhs))
      body cases
  | Texp_apply (fn, args) -> apply_tokens st ctx e fn args
  | Texp_match (scrut, cases, _) ->
    let ts = tokens_of st ctx scrut in
    List.fold_left
      (fun acc (c : _ Typedtree.case) ->
        bind_pat st c.c_lhs ts;
        (match c.c_guard with
        | Some g -> ignore (tokens_of st ctx g)
        | None -> ());
        NodeSet.union acc (tokens_of st ctx c.c_rhs))
      NodeSet.empty cases
  | Texp_try (body, cases) ->
    let ts = tokens_of st ctx body in
    List.fold_left
      (fun acc (c : _ Typedtree.case) ->
        bind_pat st c.c_lhs NodeSet.empty;
        NodeSet.union acc (tokens_of st ctx c.c_rhs))
      ts cases
  | Texp_tuple es | Texp_construct (_, _, es) ->
    union_all (List.map (tokens_of st ctx) es)
  | Texp_variant (_, eo) -> (
    match eo with Some e -> tokens_of st ctx e | None -> NodeSet.empty)
  | Texp_record { fields; extended_expression; _ } ->
    let ext =
      match extended_expression with
      | Some e0 -> tokens_of st ctx e0
      | None -> NodeSet.empty
    in
    let fts =
      Array.fold_left
        (fun acc (_, (def : Typedtree.record_label_definition)) ->
          match def with
          | Typedtree.Overridden (_, fe) ->
            NodeSet.union acc (tokens_of st ctx fe)
          | Typedtree.Kept _ -> acc)
        ext fields
    in
    if record_mutability fields then begin
      let t = fresh_alloc st ctx ~kind:(record_kind fields) e.exp_loc in
      store st fts ~into:t
        (Printf.sprintf "stored in %s (%s)" (record_kind fields)
           (loc_str ctx e.exp_loc));
      t
    end
    else fts
  | Texp_field (r, _, _) -> tokens_of st ctx r
  | Texp_setfield (r, _, lbl, v) ->
    let rt = tokens_of st ctx r in
    let vt = tokens_of st ctx v in
    store st vt ~into:rt
      (Printf.sprintf "stored into field %s (%s)" lbl.Types.lbl_name
         (loc_str ctx e.exp_loc));
    NodeSet.empty
  | Texp_array es ->
    let ets = union_all (List.map (tokens_of st ctx) es) in
    let t = fresh_alloc st ctx ~kind:"array" e.exp_loc in
    store st ets ~into:t
      (Printf.sprintf "stored in array literal (%s)" (loc_str ctx e.exp_loc));
    t
  | Texp_ifthenelse (c, t, eo) ->
    ignore (tokens_of st ctx c);
    let tt = tokens_of st ctx t in
    let et =
      match eo with Some e -> tokens_of st ctx e | None -> NodeSet.empty
    in
    NodeSet.union tt et
  | Texp_sequence (a, b) ->
    ignore (tokens_of st ctx a);
    tokens_of st ctx b
  | Texp_while (c, body) ->
    ignore (tokens_of st ctx c);
    ignore (tokens_of st ctx body);
    NodeSet.empty
  | Texp_for (id, _, lo, hi, _, body) ->
    ignore (tokens_of st ctx lo);
    ignore (tokens_of st ctx hi);
    Hashtbl.replace st.env (Ident.unique_name id) NodeSet.empty;
    ignore (tokens_of st ctx body);
    NodeSet.empty
  | Texp_lazy e -> tokens_of st ctx e
  | Texp_assert (e, _) ->
    ignore (tokens_of st ctx e);
    NodeSet.empty
  | Texp_open (_, body) -> tokens_of st ctx body
  | _ -> children_tokens st ctx e

(* Catch-all for constructs without a dedicated case (letop, objects,
   local modules, …): union the token sets of the direct
   sub-expressions so flows are never silently dropped. *)
and children_tokens st ctx (e : Typedtree.expression) =
  let acc = ref NodeSet.empty in
  let it =
    {
      Tast_iterator.default_iterator with
      expr = (fun _ ce -> acc := NodeSet.union !acc (tokens_of st ctx ce));
    }
  in
  Tast_iterator.default_iterator.expr it e;
  !acc

and tokens_of st ctx (e : Typedtree.expression) : NodeSet.t =
  let ts = raw_tokens st ctx e in
  if NodeSet.is_empty ts then ts
  else
    let home =
      match String.rindex_opt ctx.def_id '.' with
      | Some i -> String.sub ctx.def_id 0 i
      | None -> ctx.def_id
    in
    if Cmt_loader.inert_type ~home st.corpus e.exp_type then NodeSet.empty
    else ts

and ident_tokens st (e : Typedtree.expression) p =
  match p with
  | Path.Pident id -> (
    match Hashtbl.find_opt st.env (Ident.unique_name id) with
    | Some s -> s
    | None -> NodeSet.empty)
  | _ ->
    (* A module-path read: if the value's type is mutable, it *is*
       module-level shared state, so anything stored into it
       escapes. *)
    if Option.is_some (Cmt_loader.mutable_kind st.corpus e.exp_type) then
      NodeSet.singleton Global
    else NodeSet.empty

and bind_vb st ctx (vb : Typedtree.value_binding) =
  with_allows ctx vb.vb_attributes @@ fun () ->
  bind_pat st vb.vb_pat (tokens_of st ctx vb.vb_expr)

and apply_tokens st ctx (e : Typedtree.expression) fn args =
  let arg_exprs = List.filter_map (fun (_, a) -> a) args in
  match fn.exp_desc with
  | Texp_ident (p, _, _) -> (
    match resolve_head st p with
    | `Allocator kind ->
      let ats = List.map (tokens_of st ctx) arg_exprs in
      let t = fresh_alloc st ctx ~kind e.exp_loc in
      List.iter
        (fun s ->
          store st s ~into:t
            (Printf.sprintf "stored in %s (%s)" kind (loc_str ctx e.exp_loc)))
        ats;
      t
    | `Mutator idx ->
      let ats = List.map (tokens_of st ctx) arg_exprs in
      (match List.nth_opt ats idx with
      | Some container ->
        List.iteri
          (fun i s ->
            if i <> idx then
              store st s ~into:container
                (Printf.sprintf "stored via %s (%s)"
                   (Cmt_loader.strip_stdlib (Path.name p))
                   (loc_str ctx e.exp_loc)))
          ats
      | None -> ());
      NodeSet.empty
    | `Corpus d_id ->
      List.iter
        (fun ae ->
          let s = tokens_of st ctx ae in
          flow st s (Params d_id)
            (Printf.sprintf "passed to %s (%s)" (disp_of st d_id)
               (loc_str ctx ae.Typedtree.exp_loc)))
        arg_exprs;
      NodeSet.singleton (Ret d_id)
    | `Closure s ->
      let argu = union_all (List.map (tokens_of st ctx) arg_exprs) in
      store st argu ~into:s
        (Printf.sprintf "passed to local closure (%s)"
           (loc_str ctx e.exp_loc));
      NodeSet.union s argu
    | `External ->
      (* unknown call: the result may carry the arguments (List.map,
         Option.value, …) but is not assumed to stash them *)
      union_all (List.map (tokens_of st ctx) arg_exprs))
  | _ ->
    let ft = tokens_of st ctx fn in
    union_all (ft :: List.map (tokens_of st ctx) arg_exprs)

(* --- per-unit walk ----------------------------------------------------- *)

(* Peel the parameter lambdas of a module-level function definition:
   parameters carry the [Params def] summary token, and the innermost
   body's tokens flow to [Ret def]. *)
let rec walk_function st ctx d_id (e : Typedtree.expression) =
  with_allows ctx e.exp_attributes @@ fun () ->
  match e.exp_desc with
  | Texp_function { cases; _ } ->
    List.iter
      (fun (c : _ Typedtree.case) ->
        bind_pat st c.c_lhs (NodeSet.singleton (Params d_id)))
      cases;
    List.iter
      (fun (c : _ Typedtree.case) ->
        match c.c_guard with
        | Some g -> ignore (tokens_of st ctx g)
        | None -> ())
      cases;
    (match cases with
    | [ c ] -> walk_function st ctx d_id c.c_rhs
    | cs ->
      List.iter
        (fun (c : _ Typedtree.case) ->
          flow st
            (tokens_of st ctx c.c_rhs)
            (Ret d_id)
            (Printf.sprintf "returned from %s" ctx.def_disp))
        cs)
  | _ ->
    flow st (tokens_of st ctx e) (Ret d_id)
      (Printf.sprintf "returned from %s" ctx.def_disp)

let is_function (e : Typedtree.expression) =
  match e.exp_desc with Texp_function _ -> true | _ -> false

(* [let alias = Other.f]: connect the alias's summary nodes to the
   target's so flows through eta-style re-exports keep composing. *)
let alias_target st (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
    match resolve_head st p with `Corpus d_id -> Some d_id | _ -> None)
  | _ -> None

let walk_unit st reached (u : Cmt_loader.unit_info) =
  let file_allows = ref [] in
  let rec collect_file_allows (str : Typedtree.structure) =
    List.iter
      (fun (si : Typedtree.structure_item) ->
        match si.str_desc with
        | Tstr_attribute a ->
          file_allows := Callgraph.allows_of_attrs [ a ] @ !file_allows
        | Tstr_module { mb_expr = { mod_desc = Tmod_structure s; _ }; _ } ->
          collect_file_allows s
        | _ -> ())
      str.str_items
  in
  collect_file_allows u.str;
  let short = Cmt_loader.short_base u.modname in
  let skip_allocs = in_obs_seam u.source in
  let ctx_for prefix name =
    let def_id = String.concat "." (u.modname :: (prefix @ [ name ])) in
    let def_disp = String.concat "." (short :: (prefix @ [ name ])) in
    Hashtbl.replace st.disp def_id def_disp;
    {
      file = u.source;
      def_id;
      def_disp;
      skip_allocs;
      allows = ref [];
      file_allows;
    }
  in
  let module_vb prefix (vb : Typedtree.value_binding) =
    let name =
      match Callgraph.pat_vars vb.vb_pat with
      | (_, name, _, _) :: _ -> name
      | [] -> "(init)"
    in
    let ctx = ctx_for prefix name in
    with_allows ctx vb.vb_attributes @@ fun () ->
    if is_function vb.vb_expr then begin
      (* bind the name first so recursive references resolve *)
      walk_function st ctx ctx.def_id vb.vb_expr
    end
    else begin
      (match alias_target st vb.vb_expr with
      | Some target ->
        add_edge st (Params ctx.def_id) (Params target)
          (Printf.sprintf "via alias %s" ctx.def_disp);
        add_edge st (Ret target) (Ret ctx.def_id)
          (Printf.sprintf "via alias %s" ctx.def_disp)
      | None -> ());
      let ts = tokens_of st ctx vb.vb_expr in
      flow st ts Global
        (Printf.sprintf "module-level binding %s (%s:%d)" ctx.def_disp
           u.source vb.vb_loc.Location.loc_start.Lexing.pos_lnum);
      bind_pat st vb.vb_pat ts;
      (* the summary nodes of a module-level value used as a function
         elsewhere (a non-lambda binding can still be an arrow) also
         live at module scope *)
      if not (NodeSet.is_empty ts) then
        flow st ts (Ret ctx.def_id) "carried by module binding"
    end
  in
  let rec structure prefix (str : Typedtree.structure) =
    List.iter (item prefix) str.str_items
  and item prefix (si : Typedtree.structure_item) =
    match si.str_desc with
    | Tstr_value (_, vbs) -> List.iter (module_vb prefix) vbs
    | Tstr_eval (e, attrs) ->
      let ctx = ctx_for prefix "(init)" in
      with_allows ctx attrs @@ fun () -> ignore (tokens_of st ctx e)
    | Tstr_module mb -> module_binding prefix mb
    | Tstr_recmodule mbs -> List.iter (module_binding prefix) mbs
    | _ -> ()
  and module_binding prefix (mb : Typedtree.module_binding) =
    match mb.mb_id with
    | None -> ()
    | Some id -> module_expr (prefix @ [ Ident.name id ]) mb.mb_expr
  and module_expr prefix (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_structure str -> structure prefix str
    | Tmod_constraint (me, _, _, _) -> module_expr prefix me
    | Tmod_functor (_, me) -> module_expr prefix me
    | _ -> ()
  in
  ignore reached;
  structure [] u.str

(* --- verdicts ---------------------------------------------------------- *)

(* BFS over the held-by graph from one allocation.  The first path to
   [Global] is the escape witness; failing that, the first summary
   node ([Ret]/[Params]) shows how it leaves its function; failing
   that it is stack-confined. *)
let classify_alloc st (a : alloc) =
  let seen = NodeTbl.create 64 in
  let q = Queue.create () in
  let parent = NodeTbl.create 64 in
  NodeTbl.replace seen (Alloc a.a_idx) ();
  Queue.add (Alloc a.a_idx) q;
  let global_hit = ref None in
  let summary_hit = ref None in
  (try
     while not (Queue.is_empty q) do
       let n = Queue.pop q in
       (match n with
       | Global ->
         global_hit := Some n;
         raise Exit
       | Ret _ | Params _ ->
         if Option.is_none !summary_hit then summary_hit := Some n
       | Alloc _ -> ());
       match NodeTbl.find_opt st.edges n with
       | None -> ()
       | Some cell ->
         List.iter
           (fun (dst, label) ->
             if not (NodeTbl.mem seen dst) then begin
               NodeTbl.replace seen dst ();
               NodeTbl.replace parent dst (n, label);
               Queue.add dst q
             end)
           (List.rev !cell)
     done
   with Exit -> ());
  let chain_to target =
    let rec go n acc =
      match NodeTbl.find_opt parent n with
      | Some (p, label) -> go p (label :: acc)
      | None -> acc
    in
    Printf.sprintf "%s allocated in %s (%s:%d)" a.a_kind a.a_def_disp a.a_file
      a.a_line
    :: go target []
  in
  match (!global_hit, !summary_hit) with
  | Some g, _ ->
    a.a_verdict <- Escaping;
    a.a_chain <- chain_to g
  | None, Some s ->
    a.a_verdict <- Instance_confined;
    a.a_chain <- chain_to s
  | None, None ->
    a.a_verdict <- Stack_confined;
    a.a_chain <- []

let analyze ?(reached = []) corpus =
  let st =
    {
      corpus;
      allocs_rev = [];
      n_allocs = 0;
      by_site = Hashtbl.create 256;
      edges = NodeTbl.create 1024;
      local = Hashtbl.create 512;
      disp = Hashtbl.create 512;
      env = Hashtbl.create 1024;
    }
  in
  (* pass 1: module-level binding idents -> def node ids, so same-unit
     applications resolve by stamp, mirroring the callgraph *)
  let collect (u : Cmt_loader.unit_info) =
    let rec structure prefix (str : Typedtree.structure) =
      List.iter (item prefix) str.str_items
    and item prefix (si : Typedtree.structure_item) =
      match si.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            List.iter
              (fun (id, name, _, _) ->
                let d_id =
                  String.concat "." (u.modname :: (prefix @ [ name ]))
                in
                Hashtbl.replace st.local (Ident.unique_name id) d_id;
                Hashtbl.replace st.disp d_id
                  (String.concat "."
                     (Cmt_loader.short_base u.modname :: (prefix @ [ name ]))))
              (Callgraph.pat_vars vb.vb_pat))
          vbs
      | Tstr_module mb -> module_binding prefix mb
      | Tstr_recmodule mbs -> List.iter (module_binding prefix) mbs
      | _ -> ()
    and module_binding prefix (mb : Typedtree.module_binding) =
      match mb.mb_id with
      | None -> ()
      | Some id -> module_expr (prefix @ [ Ident.name id ]) mb.mb_expr
    and module_expr prefix (me : Typedtree.module_expr) =
      match me.mod_desc with
      | Tmod_structure str -> structure prefix str
      | Tmod_constraint (me, _, _, _) -> module_expr prefix me
      | Tmod_functor (_, me) -> module_expr prefix me
      | _ -> ()
    in
    structure [] u.str
  in
  List.iter collect (Cmt_loader.units corpus);
  (* pass 2: value flow *)
  List.iter (walk_unit st reached) (Cmt_loader.units corpus);
  (* verdicts *)
  let reached_tbl = Hashtbl.create 256 in
  List.iter (fun id -> Hashtbl.replace reached_tbl id ()) reached;
  let allocs =
    List.sort
      (fun a b ->
        match String.compare a.a_file b.a_file with
        | 0 -> (
          match Int.compare a.a_line b.a_line with
          | 0 -> Int.compare a.a_col b.a_col
          | c -> c)
        | c -> c)
      (List.rev st.allocs_rev)
  in
  List.iter
    (fun a ->
      a.a_reachable <- Hashtbl.mem reached_tbl a.a_def;
      classify_alloc st a)
    allocs;
  { allocs }

(* --- reporting --------------------------------------------------------- *)

let findings { allocs } =
  List.filter_map
    (fun a ->
      match a.a_verdict with
      | Escaping when (not a.a_suppressed) && (not a.a_exempt) && a.a_reachable
        ->
        Some
          (Finding.v ~chain:a.a_chain ~file:a.a_file ~line:a.a_line
             ~col:a.a_col ~rule:"escape"
             (Printf.sprintf
                "%s allocated in %s escapes to module-level state and is \
                 shared the moment documents are pinned to domains; confine \
                 it to an instance or suppress with a sharding justification"
                a.a_kind a.a_def_disp))
      | _ -> None)
    allocs

let unsuppressed_escaping { allocs } =
  List.length
    (List.filter
       (fun a ->
         a.a_verdict == Escaping && (not a.a_suppressed) && (not a.a_exempt)
         && a.a_reachable)
       allocs)

let report_json { allocs } =
  let count v =
    List.length (List.filter (fun a -> a.a_verdict == v) allocs)
  in
  let reachable =
    List.length (List.filter (fun a -> a.a_reachable) allocs)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"version\":1,\"total\":%d,\"reachable\":%d,\"classes\":{\"stack-confined\":%d,\"instance-confined\":%d,\"escaping\":%d},\"escaping_unsuppressed\":%d,\"entries\":["
       (List.length allocs) reachable (count Stack_confined)
       (count Instance_confined) (count Escaping)
       (unsuppressed_escaping { allocs }));
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char buf ',';
      let chain =
        String.concat ","
          (List.map
             (fun l -> Printf.sprintf "\"%s\"" (Finding.json_escape l))
             a.a_chain)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"def\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"kind\":\"%s\",\"class\":\"%s\",\"reachable\":%b,\"exempt\":%b,\"suppressed\":%b,\"chain\":[%s]}"
           (Finding.json_escape a.a_def_disp)
           (Finding.json_escape a.a_file)
           a.a_line a.a_col
           (Finding.json_escape a.a_kind)
           (verdict_name a.a_verdict) a.a_reachable a.a_exempt a.a_suppressed
           chain))
    allocs;
  Buffer.add_string buf "]}";
  Buffer.contents buf
