(** A single analyzer finding, anchored to a precise source location. *)

type t = {
  file : string;  (** normalized, '/'-separated, repo-relative *)
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
  rule : string;  (** rule name, see {!Rules.all} *)
  msg : string;
  chain : string list;
      (** witness call chain for interprocedural findings (entry point
          first, sink last); empty for single-site findings *)
}

val v :
  ?chain:string list ->
  file:string ->
  line:int ->
  col:int ->
  rule:string ->
  string ->
  t
(** Build a finding; [chain] defaults to empty. *)

val compare : t -> t -> int
(** Order by file, then line, column, rule — the report order. *)

val pp : Format.formatter -> t -> unit
(** [file:line:col: [rule] msg], the greppable text form; findings
    with a witness chain print it on a continuation line. *)

val to_json : t -> string
(** One finding as a JSON object (file/line/col/rule/family/message,
    plus [chain] when the finding carries a witness call chain). *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal. *)
