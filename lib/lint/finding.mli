(** A single analyzer finding, anchored to a precise source location. *)

type t = {
  file : string;  (** normalized, '/'-separated, repo-relative *)
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
  rule : string;  (** rule name, see {!Rules.all} *)
  msg : string;
}

val compare : t -> t -> int
(** Order by file, then line, column, rule — the report order. *)

val pp : Format.formatter -> t -> unit
(** [file:line:col: [rule] msg], the greppable text form. *)

val to_json : t -> string
(** One finding as a JSON object (file/line/col/rule/family/message). *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal. *)
