(** The rule registry: every analysis rule the engine knows, with the
    family it belongs to and the part of the tree it applies to.

    Families map to exit-code bits so CI can tell at a glance which
    class of invariant broke:
    {ul
    {- [Hygiene] (bit 1) — comparison/unsafe-cast hygiene ported from
       the old textual scanner, plus suppression hygiene
       ([unused-allow]).}
    {- [Determinism] (bit 2) — sources of hidden nondeterminism that
       would invalidate byte-for-byte differential replays (Thm 7.1
       evidence), including the typed reachability pass
       ([det-reach]).}
    {- [Exception_safety] (bit 4) — partial constructs in the OT
       transform paths, which must be demonstrably total.}
    {- [Interface] (bit 8) — interface completeness of the libraries.}
    {- [Domain_safety] (bit 16) — module-level mutable state that
       becomes a data race once documents are sharded across OCaml 5
       domains (ROADMAP item 2).}} *)

type family =
  | Hygiene
  | Determinism
  | Exception_safety
  | Interface
  | Domain_safety

val family_name : family -> string
val family_bit : family -> int

type t = {
  name : string;  (** kebab-case rule name, as used in suppressions *)
  family : family;
  scope : string list option;
      (** path prefixes ('/'-separated, repo-relative) the rule fires
          under; [None] means everywhere under the scanned roots.  The
          typed rules carry [None]: their scope is whatever set of
          [.cmt] units the corpus was loaded with. *)
  summary : string;  (** one-line description for [--list-rules] *)
  typed : bool;
      (** [true] for rules produced by the typed (.cmt) passes only;
          the Parsetree pass can neither fire nor judge the staleness
          of suppressions for these. *)
  subsumes : string list;
      (** untyped rules this rule reports more precisely; when both
          fire at the same [(file, line)] the untyped finding is
          dropped (see {!Lint.dedupe}). *)
}

val all : t list
(** Every rule, in registry order. *)

val find : string -> t option
(** Look a rule up by name. *)

val applies : t -> string -> bool
(** [applies rule path] — does [rule]'s scope cover the (normalized)
    [path]?  Prefix matching respects path-component boundaries, so
    ["lib/ot"] covers ["lib/ot/op.ml"] but not ["lib/other/x.ml"]. *)

val subsumed_by : typed_rule:string -> string -> bool
(** [subsumed_by ~typed_rule untyped] — is a finding of [untyped] at
    the same location a less precise duplicate of one of
    [typed_rule]? *)
