(** The rule registry: every analysis rule the engine knows, with the
    family it belongs to and the part of the tree it applies to.

    Families map to exit-code bits so CI can tell at a glance which
    class of invariant broke:
    {ul
    {- [Hygiene] (bit 1) — comparison/unsafe-cast hygiene ported from
       the old textual scanner.}
    {- [Determinism] (bit 2) — sources of hidden nondeterminism that
       would invalidate byte-for-byte differential replays (Thm 7.1
       evidence).}
    {- [Exception_safety] (bit 4) — partial constructs in the OT
       transform paths, which must be demonstrably total.}
    {- [Interface] (bit 8) — interface completeness of the libraries.}} *)

type family = Hygiene | Determinism | Exception_safety | Interface

val family_name : family -> string
val family_bit : family -> int

type t = {
  name : string;  (** kebab-case rule name, as used in suppressions *)
  family : family;
  scope : string list option;
      (** path prefixes ('/'-separated, repo-relative) the rule fires
          under; [None] means everywhere under the scanned roots *)
  summary : string;  (** one-line description for [--list-rules] *)
}

val all : t list
(** Every rule, in registry order. *)

val find : string -> t option
(** Look a rule up by name. *)

val applies : t -> string -> bool
(** [applies rule path] — does [rule]'s scope cover the (normalized)
    [path]?  Prefix matching respects path-component boundaries, so
    ["lib/ot"] covers ["lib/ot/op.ml"] but not ["lib/other/x.ml"]. *)
