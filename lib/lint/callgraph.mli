(** The cross-module call graph over a {!Cmt_loader} corpus.

    One node per module-level value binding (nested non-functor
    modules included; bindings that introduce no variables, like
    [let () = ...], collapse into a per-module ["(init)"] node).
    Edges are resolved through the typer's [Path.t]s: same-unit
    references by [Ident] stamp, cross-unit references through the
    wrapped-library alias scheme — never by string matching on
    source text.

    While building, every occurrence of a nondeterministic primitive
    (the determinism sinks: global [Random.*], [Hashtbl.iter/fold] and
    polymorphic hashing, wall clocks, float formatting, direct
    printing, and polymorphic [=]/[<>]/[compare] at types that are not
    visibly comparable) is recorded on the enclosing node together
    with the [[@lint.allow]] suppressions in scope at the site. *)

type sink = {
  s_rule : string;  (** the untyped rule this primitive maps to *)
  s_what : string;  (** e.g. ["Random.int"] *)
  s_file : string;
  s_line : int;
  s_col : int;
  s_suppressed : bool;
      (** an in-scope [[@lint.allow]] named this rule, ["det-reach"],
          or ["all"] *)
}

type def = {
  d_id : string;  (** ["Flat_unit.Sub.name"] — the node key *)
  d_unit : string;  (** flat compilation-unit name *)
  d_disp : string;  (** short display name, e.g. ["Transport.flush"] *)
  d_file : string;
  d_line : int;
  mutable d_calls : string list;  (** callee node ids, sorted *)
  mutable d_sinks : sink list;
}

type t

val build : Cmt_loader.t -> t

val allows_of_attrs : Parsetree.attributes -> string list
(** Rule names carried by [lint.allow] attributes (Typedtree nodes
    keep their Parsetree attributes, so this serves both passes). *)

val pat_vars :
  'k Typedtree.general_pattern ->
  (Ident.t * string * Location.t * Types.type_expr) list
(** The variables a pattern binds, with their types — including
    through aliases (a type-constrained [let x : t = ...] typechecks
    to an alias pattern, not a plain var). *)

val find : t -> string -> def option
val order : t -> string list
(** Node ids in deterministic (definition) order. *)

val dot_escape : string -> string
(** Escape a string for a double-quoted DOT id or label: quotes,
    backslashes, newlines and angle brackets (nested-module spellings
    like ["M.(init)"] or operator names can carry any of these;
    unescaped angle brackets make Graphviz read the label as
    HTML-like). *)

val dot : ?entries:string list -> ?reached:string list -> t -> string
(** Graphviz rendering; entry nodes are blue, sink-bearing nodes
    salmon, other reached nodes yellow. *)

val json : ?entries:string list -> ?reached:string list -> t -> string
(** Machine-readable [{nodes; edges}] rendering. *)
