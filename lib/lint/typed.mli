(** The interprocedural passes over a {!Cmt_loader} corpus: the
    determinism-reachability check (call-graph BFS from protocol entry
    points to nondeterministic sinks, with witness chains) and the
    domain-safety inventory (module-level mutable state classified for
    the sharded-server plan, ROADMAP item 2). *)

val default_entries : string list
(** The protocol/engine surface: [transform], [server_receive*],
    [client_receive*], [Engine.*], [P2p_engine.*],
    [State_space.add_*].  A pattern containing a dot matches a node's
    display name ([State_space.add_square]); a bare pattern matches
    the final name component only.  ['*'] is the one wildcard. *)

val entry_ids : Callgraph.t -> string list -> string list
(** Node ids matching any of the patterns, in definition order. *)

type reach = {
  r_entries : string list;  (** matched entry node ids *)
  r_reached : string list;  (** every node reachable from an entry *)
  r_findings : Finding.t list;
      (** one [det-reach] finding per reachable, unsuppressed sink
          site, witness chain attached (entry first, primitive last) *)
}

val det_reach : ?entries:string list -> Callgraph.t -> reach
(** BFS from all entries at once, so each sink's chain runs from its
    nearest entry.  Sink sites inside [lib/obs/] (the sanctioned
    observability seam) and sites with an in-scope [[@lint.allow]]
    naming the sink's rule, ["det-reach"], or ["all"] are exempt. *)

(** {1 Domain safety} *)

type mut_class =
  | Obs_seam  (** lives in [lib/obs/]: sanctioned, replay-invisible *)
  | Domain_confined  (** [Atomic.t]/[Mutex.t]/[Condition.t]: built for
                         cross-domain use *)
  | Shared_unsafe  (** plain mutable state a sharded server may race on *)

val class_name : mut_class -> string

type mut_entry = {
  m_id : string;  (** ["Flat_unit.Sub.name"] *)
  m_disp : string;  (** short display name *)
  m_file : string;
  m_line : int;
  m_col : int;
  m_kind : string;
      (** what makes it mutable: ["ref"], ["Hashtbl.t"], ["array"],
          ["record with mutable fields"], … *)
  m_class : mut_class;
  m_suppressed : bool;
      (** a [[@@lint.allow "module-mutable"]] (or file-wide allow)
          covers the binding; still listed in the report *)
}

val domain_scan : Cmt_loader.t -> mut_entry list
(** Every module-level binding whose type exposes mutability
    (containers looked through one level; record types resolved
    through the corpus), sorted by file and line. *)

val domain_findings : mut_entry list -> Finding.t list
(** A [module-mutable] finding for each unsuppressed shared-unsafe
    entry. *)

val domain_report_json : ?escaping_unsuppressed:int -> mut_entry list -> string
(** The shard-readiness report: totals per class, a [shard_ready]
    verdict (no unsuppressed shared-unsafe state {e and} no
    unsuppressed escaping allocation from the escape pass — pass the
    count via [escaping_unsuppressed]), and every entry — including
    suppressed ones, which are the burn-down list. *)

val run : ?entries:string list -> Cmt_loader.t -> Finding.t list
(** Build the graph and run the determinism, domain-safety and escape
    passes; findings come back sorted. *)
