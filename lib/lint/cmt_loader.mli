(** The typed front end: a corpus of [.cmt] artifacts (the Typedtree
    the compiler saved next to each object file) indexed for the
    interprocedural passes.

    Loading is forgiving by design: unreadable or non-implementation
    [.cmt]s are skipped (and recorded in {!errors}) rather than
    aborting the run — the analyzer must stay usable on a partially
    built tree. *)

type unit_info = {
  modname : string;
      (** flat compilation-unit name, e.g. ["Rlist_net__Transport"]
          for dune's wrapped [lib/net/transport.ml] *)
  source : string;  (** normalized source path recorded in the .cmt *)
  str : Typedtree.structure;
}

type t

val load_dir : ?roots:string list -> string -> t
(** Scan [dir] recursively (dot-directories included — that is where
    dune keeps [.objs]) for [.cmt] files and load every implementation
    unit.  [roots], when non-empty, keeps only units whose recorded
    source path lies under one of the given '/'-separated prefixes
    (e.g. [["lib"]]). *)

val load_files : ?roots:string list -> string list -> t
(** Load an explicit list of [.cmt] paths (same filtering). *)

val units : t -> unit_info list
(** Loaded units, sorted by unit name. *)

val errors : t -> string list
(** Files that could not be read as [.cmt] implementations. *)

val mem_unit : t -> string -> bool
(** Is this flat unit name in the corpus? *)

val find_type : t -> string -> Types.type_declaration option
(** Look up a type declaration by its corpus key
    (["Unit.Sub.t"], flat unit name first). *)

val resolve_qualified : t -> string list -> (string * string list) option
(** Map the dot-components of a path as spelled at a use site
    (["Rlist_net"; "Faults"; "validate"]) onto [(flat_unit,
    remaining_components)] — here [("Rlist_net__Faults",
    ["validate"])].  [None] when the head does not resolve to a
    corpus unit (an external reference). *)

val visibly_comparable : ?home:string -> t -> Types.type_expr -> bool
(** Would polymorphic [=]/[compare] at this type be structurally
    deterministic and total "by inspection"?  Builtin scalars and
    containers of comparable things are; records/variants whose
    components all are (resolved through the corpus across modules)
    are too.  Abstract, functional, polymorphic or unresolvable types
    are not — conservative in the direction that produces a
    finding. *)

val type_to_string : Types.type_expr -> string
(** Render a type for a finding message (best effort). *)

val strip_stdlib : string -> string
(** Drop a leading ["Stdlib."] from a printed path. *)

val short_base : string -> string
(** ["Rlist_net__Transport"] -> ["Transport"]: the display base of a
    flat unit name, shared by every pass that prints module paths. *)

val inert_type : ?home:string -> t -> Types.type_expr -> bool
(** Can a value of this type provably {e not} carry mutable state
    (directly or nested)?  Scalars and immutable compositions of inert
    things are inert; arrows, abstract, polymorphic and unresolvable
    types are not — conservative in the direction that keeps a
    value-flow pass tracking.  Used by the escape pass to prune flows
    through scalar-typed intermediaries. *)

val mutable_kind : t -> Types.type_expr -> string option
(** What kind of mutability, if any, does a value at this type
    expose?  ["ref"], ["array"], ["Hashtbl.t"], ["record with mutable
    fields"], … — containers are looked through one level, record
    types resolve through the corpus.  [None] for immutable types. *)

val normalize : string -> string
(** Strip a leading ["./"]. *)
