type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
  chain : string list;
}

let v ?(chain = []) ~file ~line ~col ~rule msg =
  { file; line; col; rule; msg; chain }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match Int.compare a.col b.col with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
    | c -> c)
  | c -> c

let pp ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.msg;
  match f.chain with
  | [] -> ()
  | chain ->
    Format.fprintf ppf "@\n    via %s" (String.concat " -> " chain)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  let family =
    match Rules.find f.rule with
    | Some r -> Rules.family_name r.Rules.family
    | None -> "unknown"
  in
  let chain =
    match f.chain with
    | [] -> ""
    | links ->
      Printf.sprintf ",\"chain\":[%s]"
        (String.concat ","
           (List.map (fun l -> Printf.sprintf "\"%s\"" (json_escape l)) links))
  in
  Printf.sprintf
    "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"family\":\"%s\",\"message\":\"%s\"%s}"
    (json_escape f.file) f.line f.col (json_escape f.rule) family
    (json_escape f.msg) chain
