(** A directed message channel: either the perfect FIFO queue the
    paper's system model assumes (Section 4.4), or an unreliable link
    driven by a {!Faults.spec} with an optional reliability shim.

    The shim stamps every payload with a per-channel sequence number,
    buffers unacknowledged payloads at the sender, retransmits them on
    a backed-off timeout, resequences out-of-order arrivals, suppresses
    duplicates (by sequence number, plus an application-supplied
    operation-identifier guard), and returns cumulative
    acknowledgements over the equally unreliable reverse link.  As
    long as the fault model lets some transmission through eventually
    (drop < 1, partitions heal), every payload is delivered exactly
    once, in order — the FIFO-exactly-once contract restored.

    Time is a per-channel virtual clock advanced by {!tick}; the
    simulation engines tick every channel once per scheduler step.
    All randomness comes from the config's seeded RNG, so runs are
    deterministic. *)

(** Shared configuration: one per simulated network.  Channels created
    from the same config share its RNG (deterministic given the
    engine's event order) and its {!Stats.t} aggregate. *)
type config

(** [config ~faults ~seed ()] — [shim] defaults to [true]; [rto] is
    the retransmission timeout in ticks (default 12, backed off
    exponentially per attempt, capped at 16x).
    @raise Invalid_argument on an invalid fault spec or [rto < 1]. *)
val config :
  ?shim:bool -> ?rto:int -> faults:Faults.spec -> seed:int -> unit -> config

val stats : config -> Stats.t

(** Attach (or detach, with [None]) an observability bundle: channels
    of this config emit a [Wire] trace event for every fault incident
    the wire produces — drops, partition drops, duplicates, reorder
    jitter, retransmissions, acks, duplicate suppressions and
    out-of-order buffering — stamped with the channel label and its
    virtual clock.  Detached, the hook costs one [None] branch. *)
val set_obs : config -> Rlist_obs.Obs.t option -> unit

(** Attach (or detach) a flight recorder: every transmission outcome,
    retransmission, and ack decision the fault model takes is recorded
    as a replay witness. *)
val set_recorder : config -> Rlist_obs.Recorder.t option -> unit

type 'a t

(** The seed repository's channel: a plain FIFO queue, no overhead. *)
val perfect : unit -> 'a t

(** A channel under [config]'s fault model.  [key], when given, names
    each payload's operation identifier; the shim refuses to deliver
    the same key twice on one channel (defense in depth for
    reconnects).  [weight] is the number of operations a payload
    carries (default 1) — batching engines pass [List.length] so
    {!Stats.t}'s per-operation counters ([op_payloads],
    [op_transmissions]) stay meaningful.  [name] labels the channel in
    wire trace events and recorder decisions (default ["wire"]). *)
val create :
  ?key:('a -> string option) ->
  ?weight:('a -> int) ->
  ?name:string ->
  config ->
  'a t

val is_lossy : 'a t -> bool

val send : 'a t -> 'a -> unit

(** How many delivery attempts can currently succeed: ready wire
    arrivals plus resequenced payloads the shim can already release. *)
val deliverable : 'a t -> int

(** Process one arrival.  [None] when nothing is ready or when the
    fault layer / shim consumed the arrival internally (a duplicate, an
    out-of-order payload entering the resequencing buffer).  Exactly
    the engine's delivery event. *)
val deliver : 'a t -> 'a option

(** Application payloads sent but not yet delivered.  With the shim
    these are all still recoverable, so a driver loop that ticks and
    delivers until [pending = 0] terminates with probability 1. *)
val pending : 'a t -> int

(** Advance the virtual clock one step: move acknowledgements, flush
    the receiver's pending cumulative ack, and retransmit whatever
    timed out. *)
val tick : 'a t -> unit

val now : 'a t -> int

(** {1 Metadata GC}

    The receiver-side dedup table ([seen_keys]) grows with every
    keyed delivery and is the shim's only unbounded structure (the
    retransmission buffer is already ack-pruned on {!tick}).  The GC
    driver calls {!prune_delivered} during each compaction cycle. *)

(** [prune_delivered t ~retain] drops dedup keys for payloads
    delivered more than [retain] sequence numbers before the newest
    delivery; returns how many were dropped.  In-session duplicates
    are already suppressed by the sequence check alone (a key is only
    ever sent under one seqno), so the retained window only needs to
    cover the checkpoint lag: a receiver restored from a checkpoint
    replays that checkpoint's keys to catch rolled-back seqno reuse.
    No-op on perfect channels. *)
val prune_delivered : 'a t -> retain:int -> int

(** Current dedup-table population ([0] for perfect channels). *)
val dedup_keys : 'a t -> int

(** {1 Crash / reconnect}

    A crash loses a replica's volatile state; what survives is
    whatever it checkpointed.  The sender state (sequence counter plus
    retransmission buffer) and receiver state (expected sequence
    number, resequencing buffer, delivered-key set) of each endpoint
    can be checkpointed and restored; {!drop_wire} models the
    connection reset.  Recovery is complete as long as checkpoints
    follow write-ahead discipline: a replica checkpoints {e before}
    its next cumulative ack leaves (acks only leave on {!tick}), so
    the peer still buffers everything past the checkpoint. *)

type 'a sender_state

type 'a receiver_state

val sender_checkpoint : 'a t -> 'a sender_state

val restore_sender : 'a t -> 'a sender_state -> unit

val receiver_checkpoint : 'a t -> 'a receiver_state

val restore_receiver : 'a t -> 'a receiver_state -> unit

(** Lose everything in flight (payloads and acks) on this channel. *)
val drop_wire : 'a t -> unit
