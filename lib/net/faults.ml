type spec = {
  drop : float;
  duplicate : float;
  reorder : float;
  delay : int;
  partition_period : int;
  partition_down : int;
}

let none =
  {
    drop = 0.0;
    duplicate = 0.0;
    reorder = 0.0;
    delay = 4;
    partition_period = 0;
    partition_down = 0;
  }

let validate spec =
  let prob name p =
    if p < 0.0 || p > 1.0 then
      Error (Printf.sprintf "%s must be in [0,1], got %g" name p)
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let* () = prob "drop" spec.drop in
  let* () = prob "duplicate" spec.duplicate in
  let* () = prob "reorder" spec.reorder in
  if spec.delay < 1 then Error "delay must be >= 1 tick"
  else if spec.partition_period < 0 || spec.partition_down < 0 then
    Error "partition durations must be >= 0"
  else if
    spec.partition_period > 0 && spec.partition_down >= spec.partition_period
  then Error "partition down-time must be shorter than its period"
  else if spec.partition_period = 0 && spec.partition_down > 0 then
    Error "partition down-time needs a period"
  else Ok spec

(* Every link is down during the first [partition_down] ticks of each
   [partition_period]-tick window. *)
let down_at spec ~tick =
  spec.partition_period > 0 && tick mod spec.partition_period < spec.partition_down

let presets =
  [
    "none", none;
    "drop", { none with drop = 0.25 };
    "dup", { none with duplicate = 0.3 };
    "reorder", { none with reorder = 0.5; delay = 4 };
    ( "partition",
      { none with drop = 0.05; partition_period = 60; partition_down = 20 } );
    ( "chaos",
      {
        drop = 0.3;
        duplicate = 0.15;
        reorder = 0.3;
        delay = 6;
        partition_period = 80;
        partition_down = 20;
      } );
    ( "heavy-loss",
      { none with drop = 0.5; duplicate = 0.1; reorder = 0.3; delay = 4 } );
  ]

let preset name = List.assoc_opt name presets

let of_string text =
  match preset text with
  | Some spec -> Ok spec
  | None -> (
    let parse_field spec field =
      match String.split_on_char '=' field with
      | [ key; value ] -> (
        let float_field f =
          match float_of_string_opt value with
          | Some v -> Ok (f v)
          | None -> Error (Printf.sprintf "bad number %S for %s" value key)
        in
        let int_field f =
          match int_of_string_opt value with
          | Some v -> Ok (f v)
          | None -> Error (Printf.sprintf "bad integer %S for %s" value key)
        in
        match key with
        | "drop" -> float_field (fun v -> { spec with drop = v })
        | "dup" | "duplicate" -> float_field (fun v -> { spec with duplicate = v })
        | "reorder" -> float_field (fun v -> { spec with reorder = v })
        | "delay" -> int_field (fun v -> { spec with delay = v })
        | "partition" -> (
          (* partition=PERIOD:DOWN *)
          match String.split_on_char ':' value with
          | [ p; d ] -> (
            match int_of_string_opt p, int_of_string_opt d with
            | Some p, Some d ->
              Ok { spec with partition_period = p; partition_down = d }
            | _ -> Error (Printf.sprintf "bad partition window %S" value))
          | _ ->
            Error
              (Printf.sprintf "partition wants PERIOD:DOWN ticks, got %S" value))
        | _ -> Error (Printf.sprintf "unknown fault field %S" key))
      | _ -> Error (Printf.sprintf "expected key=value, got %S" field)
    in
    let rec go spec = function
      | [] -> validate spec
      | field :: rest -> (
        match parse_field spec (String.trim field) with
        | Ok spec -> go spec rest
        | Error _ as e -> e)
    in
    match String.split_on_char ',' text with
    | [ "" ] -> Error "empty fault spec"
    | fields -> go none fields)

let to_string spec =
  let fields =
    List.concat
      [
        (if spec.drop > 0.0 then [ Printf.sprintf "drop=%g" spec.drop ] else []);
        (if spec.duplicate > 0.0 then
           [ Printf.sprintf "dup=%g" spec.duplicate ]
         else []);
        (if spec.reorder > 0.0 then
           [
             Printf.sprintf "reorder=%g" spec.reorder;
             Printf.sprintf "delay=%d" spec.delay;
           ]
         else []);
        (if spec.partition_period > 0 then
           [
             Printf.sprintf "partition=%d:%d" spec.partition_period
               spec.partition_down;
           ]
         else []);
      ]
  in
  match fields with [] -> "none" | fields -> String.concat "," fields

let pp ppf spec = Format.pp_print_string ppf (to_string spec)
