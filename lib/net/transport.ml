(* One directed channel.  [Perfect] is the seed repository's FIFO
   queue, bit-for-bit.  [Lossy] stamps every payload with a per-channel
   sequence number, pushes it through the fault model onto a virtual
   wire (a list sorted by arrival time), and — when the shim is on —
   runs a retransmission/resequencing protocol that restores the
   FIFO-exactly-once contract the Jupiter protocols assume
   (Section 4.4 of the paper; DESIGN.md section 9 has the argument). *)

type config = {
  faults : Faults.spec;
  shim : bool;
  rto : int;
  rng : Random.State.t;
  stats : Stats.t;
  mutable obs : Rlist_obs.Obs.t option;
  mutable recorder : Rlist_obs.Recorder.t option;
}

let config ?(shim = true) ?(rto = 12) ~faults ~seed () =
  if rto < 1 then invalid_arg "Transport.config: rto must be >= 1";
  (match Faults.validate faults with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Transport.config: " ^ msg));
  {
    faults;
    shim;
    rto;
    rng = Random.State.make [| seed; 0x4E37 |];
    stats = Stats.create ();
    obs = None;
    recorder = None;
  }

let stats cfg = cfg.stats

let set_obs cfg obs = cfg.obs <- obs

let set_recorder cfg recorder = cfg.recorder <- recorder

type 'a wire_item = {
  w_seq : int;
  w_payload : 'a;
  w_ready : int;  (* earliest tick the item can be delivered *)
  w_birth : int;  (* tie-break: wire insertion order *)
}

type 'a inflight = {
  i_seq : int;
  i_payload : 'a;
  mutable i_last_sent : int;
  mutable i_attempts : int;
}

type 'a lossy = {
  cfg : config;
  name : string;  (* channel label for wire trace events *)
  key : 'a -> string option;
  weight : 'a -> int;  (* operations carried by a payload *)
  mutable now : int;
  mutable births : int;
  mutable wire : 'a wire_item list;  (* sorted by (w_ready, w_birth) *)
  mutable ack_wire : (int * int) list;  (* (ready tick, cumulative seq) *)
  mutable next_seq : int;  (* sender: next sequence number to assign *)
  mutable unacked : 'a inflight list;  (* sender retransmit buffer, by seq *)
  mutable expected : int;  (* receiver: next seq to hand to the app *)
  mutable resequencer : (int * 'a) list;  (* receiver buffer, by seq *)
  mutable ack_pending : bool;
  seen_keys : (string, unit) Hashtbl.t;
  seen_order : (int * string) Queue.t;
      (* the same keys in delivery (seq) order, so the GC driver can
         prune the oldest without iterating the hash table *)
  mutable was_down : bool;
}

type 'a t = Perfect of 'a Queue.t | Lossy of 'a lossy

let perfect () = Perfect (Queue.create ())

let no_key _ = None

let create ?(key = no_key) ?(weight = fun _ -> 1) ?(name = "wire") cfg =
  Lossy
    {
      cfg;
      name;
      key;
      weight;
      now = 0;
      births = 0;
      wire = [];
      ack_wire = [];
      next_seq = 1;
      unacked = [];
      expected = 1;
      resequencer = [];
      ack_pending = false;
      seen_keys = Hashtbl.create 64;
      seen_order = Queue.create ();
      was_down = false;
    }

let is_lossy = function Perfect _ -> false | Lossy _ -> true

let down l = Faults.down_at l.cfg.faults ~tick:l.now

let roll l p = p > 0.0 && Random.State.float l.cfg.rng 1.0 < p

(* Wire-level observability: trace anomalies the fault model or the
   shim produces (drops, duplicates, jitter, retransmissions, acks) so
   a span analyzer can reconstruct an op's transit, and record the
   corresponding decision in the flight recorder.  Both are single
   [None]-branch no-ops when detached. *)
let emit_wire l ~action ~wseq ~info =
  match l.cfg.obs with
  | Some obs when Rlist_obs.Obs.tracing obs ->
    Rlist_obs.Obs.emit obs
      (Rlist_obs.Event.Wire { channel = l.name; action; wseq; info; tick = l.now })
  | _ -> ()

let record_decision l d =
  match l.cfg.recorder with
  | Some r -> Rlist_obs.Recorder.record r d
  | None -> ()

let wire_insert l item =
  let rec go = function
    | [] -> [ item ]
    | x :: rest ->
      if
        item.w_ready < x.w_ready
        || (item.w_ready = x.w_ready && item.w_birth < x.w_birth)
      then item :: x :: rest
      else x :: go rest
  in
  l.wire <- go l.wire

(* Push one copy of (seq, payload) through the fault model.  May drop
   it, jitter its arrival time, or enqueue an extra copy. *)
let transmit l seq payload =
  let s = l.cfg.stats in
  s.Stats.transmissions <- s.Stats.transmissions + 1;
  s.Stats.op_transmissions <- s.Stats.op_transmissions + l.weight payload;
  if down l then begin
    s.Stats.partition_drops <- s.Stats.partition_drops + 1;
    emit_wire l ~action:"partition_drop" ~wseq:seq ~info:0;
    record_decision l
      (Rlist_obs.Recorder.Transmit
         { channel = l.name; seq; outcome = Rlist_obs.Recorder.Partition_dropped })
  end
  else if roll l l.cfg.faults.Faults.drop then begin
    s.Stats.dropped <- s.Stats.dropped + 1;
    emit_wire l ~action:"drop" ~wseq:seq ~info:0;
    record_decision l
      (Rlist_obs.Recorder.Transmit
         { channel = l.name; seq; outcome = Rlist_obs.Recorder.Dropped })
  end
  else begin
    let enqueue () =
      let jitter =
        if roll l l.cfg.faults.Faults.reorder then begin
          s.Stats.reordered <- s.Stats.reordered + 1;
          1 + Random.State.int l.cfg.rng l.cfg.faults.Faults.delay
        end
        else 0
      in
      let item =
        { w_seq = seq; w_payload = payload; w_ready = l.now + jitter;
          w_birth = l.births }
      in
      l.births <- l.births + 1;
      wire_insert l item;
      jitter
    in
    let jitter = enqueue () in
    if jitter > 0 then emit_wire l ~action:"delay" ~wseq:seq ~info:jitter;
    record_decision l
      (Rlist_obs.Recorder.Transmit
         {
           channel = l.name;
           seq;
           outcome =
             (if jitter > 0 then Rlist_obs.Recorder.Delayed jitter
              else Rlist_obs.Recorder.Sent);
         });
    if roll l l.cfg.faults.Faults.duplicate then begin
      s.Stats.duplicated <- s.Stats.duplicated + 1;
      let jitter = enqueue () in
      emit_wire l ~action:"dup" ~wseq:seq ~info:jitter;
      record_decision l
        (Rlist_obs.Recorder.Transmit
           { channel = l.name; seq; outcome = Rlist_obs.Recorder.Duplicated })
    end
  end

let send t payload =
  match t with
  | Perfect q -> Queue.push payload q
  | Lossy l ->
    let s = l.cfg.stats in
    s.Stats.payloads <- s.Stats.payloads + 1;
    s.Stats.op_payloads <- s.Stats.op_payloads + l.weight payload;
    let seq = l.next_seq in
    l.next_seq <- seq + 1;
    if l.cfg.shim then
      l.unacked <-
        l.unacked
        @ [ { i_seq = seq; i_payload = payload; i_last_sent = l.now;
              i_attempts = 1 } ];
    transmit l seq payload

(* Length of the contiguous run of buffered sequence numbers starting
   at [expected] — deliverable without any wire arrival. *)
let resequencer_run l =
  let rec go n expected = function
    | (seq, _) :: rest when seq = expected -> go (n + 1) (expected + 1) rest
    | _ -> n
  in
  go 0 l.expected l.resequencer

let ready_count l =
  List.fold_left
    (fun n item -> if item.w_ready <= l.now then n + 1 else n)
    0 l.wire

let deliverable = function
  | Perfect q -> Queue.length q
  | Lossy l -> ready_count l + resequencer_run l

(* Application payloads sent but not yet delivered.  With the shim
   every one of them is still recoverable (retransmission), so this is
   exactly [next_seq - expected]; without the shim only what is
   physically on the wire can still arrive. *)
let pending = function
  | Perfect q -> Queue.length q
  | Lossy l ->
    if l.cfg.shim then l.next_seq - l.expected else List.length l.wire

(* Pop the first wire item that is ready at the current tick. *)
let pop_ready l =
  let rec go = function
    | [] -> None, []
    | item :: rest when item.w_ready <= l.now -> Some item, rest
    | item :: rest ->
      let found, remaining = go rest in
      found, item :: remaining
  in
  (* The wire is sorted by readiness, so only the head can be ready —
     but keep the scan robust to future ordering tweaks. *)
  let found, remaining = go l.wire in
  (match found with Some _ -> l.wire <- remaining | None -> ());
  found

let accept_app l ~seq payload =
  let s = l.cfg.stats in
  match l.key payload with
  | Some k when Hashtbl.mem l.seen_keys k ->
    (* Belt-and-braces guard: the payload's operation identifier was
       already delivered on this channel (possible after a reconnect
       with rolled-back sequence numbers). *)
    s.Stats.opid_dup_dropped <- s.Stats.opid_dup_dropped + 1;
    None
  | key ->
    (match key with
    | Some k ->
      Hashtbl.replace l.seen_keys k ();
      Queue.push (seq, k) l.seen_order
    | None -> ());
    s.Stats.delivered <- s.Stats.delivered + 1;
    Some payload

let deliver t =
  match t with
  | Perfect q -> Queue.take_opt q
  | Lossy l ->
    let s = l.cfg.stats in
    if l.cfg.shim then begin
      match l.resequencer with
      | (seq, payload) :: rest when seq = l.expected ->
        l.resequencer <- rest;
        l.expected <- l.expected + 1;
        l.ack_pending <- true;
        accept_app l ~seq payload
      | _ -> (
        match pop_ready l with
        | None -> None
        | Some item ->
          if item.w_seq < l.expected then begin
            (* Already delivered: suppress, but re-acknowledge so a
               lost ack cannot retransmit forever. *)
            s.Stats.dup_dropped <- s.Stats.dup_dropped + 1;
            emit_wire l ~action:"dup_drop" ~wseq:item.w_seq ~info:0;
            l.ack_pending <- true;
            None
          end
          else if item.w_seq > l.expected then begin
            if List.mem_assoc item.w_seq l.resequencer then begin
              s.Stats.dup_dropped <- s.Stats.dup_dropped + 1;
              emit_wire l ~action:"dup_drop" ~wseq:item.w_seq ~info:0
            end
            else begin
              s.Stats.out_of_order <- s.Stats.out_of_order + 1;
              emit_wire l ~action:"ooo" ~wseq:item.w_seq ~info:0;
              let rec insert = function
                | [] -> [ item.w_seq, item.w_payload ]
                | (seq, _) :: _ as all when item.w_seq < seq ->
                  (item.w_seq, item.w_payload) :: all
                | x :: rest -> x :: insert rest
              in
              l.resequencer <- insert l.resequencer
            end;
            None
          end
          else begin
            l.expected <- l.expected + 1;
            l.ack_pending <- true;
            accept_app l ~seq:item.w_seq item.w_payload
          end)
    end
    else begin
      (* Raw unreliable channel: hand over whatever arrives, but keep
         score of how far it strays from FIFO-exactly-once. *)
      match pop_ready l with
      | None -> None
      | Some item ->
        if item.w_seq <> l.expected then
          s.Stats.contract_violations <- s.Stats.contract_violations + 1;
        l.expected <- max l.expected (item.w_seq + 1);
        s.Stats.delivered <- s.Stats.delivered + 1;
        Some item.w_payload
    end

(* Retransmission backs off exponentially (capped) so a long partition
   does not flood the wire the moment it heals. *)
let timeout cfg attempts =
  cfg.rto * (1 lsl min (attempts - 1) 4)

let tick t =
  match t with
  | Perfect _ -> ()
  | Lossy l ->
    let s = l.cfg.stats in
    l.now <- l.now + 1;
    s.Stats.ticks <- s.Stats.ticks + 1;
    let d = down l in
    if l.was_down && not d then
      s.Stats.partitions_healed <- s.Stats.partitions_healed + 1;
    l.was_down <- d;
    (* 1. Consume acknowledgements that have arrived back at the
       sender; they are cumulative, so only the maximum matters. *)
    let ready, in_flight =
      List.partition (fun (ready, _) -> ready <= l.now) l.ack_wire
    in
    l.ack_wire <- in_flight;
    (match ready with
    | [] -> ()
    | _ :: _ ->
      let acked = List.fold_left (fun acc (_, a) -> max acc a) 0 ready in
      l.unacked <- List.filter (fun i -> i.i_seq > acked) l.unacked);
    (* 2. Flush the receiver's pending cumulative ack through the same
       fault model (acks travel the reverse link). *)
    if l.ack_pending then begin
      l.ack_pending <- false;
      let cum = l.expected - 1 in
      if d || roll l l.cfg.faults.Faults.drop then begin
        s.Stats.acks_dropped <- s.Stats.acks_dropped + 1;
        emit_wire l ~action:"ack_drop" ~wseq:cum ~info:0;
        record_decision l
          (Rlist_obs.Recorder.Ack { channel = l.name; seq = cum; dropped = true })
      end
      else begin
        s.Stats.acks_sent <- s.Stats.acks_sent + 1;
        emit_wire l ~action:"ack" ~wseq:cum ~info:0;
        record_decision l
          (Rlist_obs.Recorder.Ack { channel = l.name; seq = cum; dropped = false });
        l.ack_wire <- l.ack_wire @ [ l.now + 1, cum ]
      end
    end;
    (* 3. Retransmit whatever timed out.  The timer models an ideal
       RTT estimator rather than a fixed TCP-style clock: a payload
       still physically in flight (neither dropped nor delivered) is
       never retransmitted, because the virtual wire also absorbs the
       engine scheduler's choice latency, which a fixed timeout would
       misread as loss. *)
    let on_wire seq = List.exists (fun w -> w.w_seq = seq) l.wire in
    List.iter
      (fun i ->
        if
          l.now - i.i_last_sent >= timeout l.cfg i.i_attempts
          && not (on_wire i.i_seq)
        then begin
          i.i_last_sent <- l.now;
          i.i_attempts <- i.i_attempts + 1;
          s.Stats.retransmits <- s.Stats.retransmits + 1;
          emit_wire l ~action:"retransmit" ~wseq:i.i_seq ~info:i.i_attempts;
          record_decision l
            (Rlist_obs.Recorder.Retransmit
               { channel = l.name; seq = i.i_seq; attempts = i.i_attempts });
          transmit l i.i_seq i.i_payload
        end)
      l.unacked

let now = function Perfect _ -> 0 | Lossy l -> l.now

(* Drop dedup keys for payloads delivered more than [retain] sequence
   numbers ago.  In an uninterrupted session the sequence check alone
   suppresses duplicates (a key is only ever sent under one seqno, and
   retransmits reuse it), so the keys exist for the reconnect path: a
   restored receiver replays the keys from its last checkpoint to
   catch rolled-back seqno reuse.  [retain] therefore only needs to
   cover the checkpoint lag; the GC policy's [retain_keys] documents
   that contract. *)
let prune_delivered t ~retain =
  match t with
  | Perfect _ -> 0
  | Lossy l ->
    let cutoff = l.expected - 1 - retain in
    let removed = ref 0 in
    let continue = ref true in
    while !continue do
      match Queue.peek_opt l.seen_order with
      | Some (seq, key) when seq <= cutoff ->
        ignore (Queue.pop l.seen_order);
        Hashtbl.remove l.seen_keys key;
        incr removed
      | _ -> continue := false
    done;
    !removed

let dedup_keys = function
  | Perfect _ -> 0
  | Lossy l -> Hashtbl.length l.seen_keys

(* --- crash / reconnect ------------------------------------------------- *)

type 'a sender_state = { ck_next_seq : int; ck_unacked : (int * 'a) list }

type 'a receiver_state = {
  ck_expected : int;
  ck_resequencer : (int * 'a) list;
  ck_keys : (int * string) list;  (* (delivery seq, key), seq-sorted *)
}

let lossy_of name = function
  | Perfect _ -> invalid_arg ("Transport." ^ name ^ ": perfect channel")
  | Lossy l -> l

let sender_checkpoint t =
  let l = lossy_of "sender_checkpoint" t in
  {
    ck_next_seq = l.next_seq;
    ck_unacked = List.map (fun i -> i.i_seq, i.i_payload) l.unacked;
  }

let restore_sender t ck =
  let l = lossy_of "restore_sender" t in
  l.next_seq <- ck.ck_next_seq;
  l.unacked <-
    List.map
      (fun (seq, payload) ->
        { i_seq = seq; i_payload = payload; i_last_sent = l.now;
          i_attempts = 1 })
      ck.ck_unacked

let receiver_checkpoint t =
  let l = lossy_of "receiver_checkpoint" t in
  {
    ck_expected = l.expected;
    ck_resequencer = l.resequencer;
    ck_keys =
      (* The queue mirrors the hash table in delivery order, which is
         already deterministic; sorting by seq keeps the checkpoint
         bytes canonical even so. *)
      List.sort
        (fun (a, _) (b, _) -> Int.compare a b)
        (Queue.fold (fun acc entry -> entry :: acc) [] l.seen_order);
  }

let restore_receiver t ck =
  let l = lossy_of "restore_receiver" t in
  l.expected <- ck.ck_expected;
  l.resequencer <- ck.ck_resequencer;
  l.ack_pending <- false;
  Hashtbl.reset l.seen_keys;
  Queue.clear l.seen_order;
  List.iter
    (fun (seq, k) ->
      Hashtbl.replace l.seen_keys k ();
      Queue.push (seq, k) l.seen_order)
    ck.ck_keys

(* A connection reset: everything in flight (data and acks) is lost.
   The endpoints' shim state survives — or is restored from a
   checkpoint by the caller — and retransmission resynchronizes. *)
let drop_wire t =
  let l = lossy_of "drop_wire" t in
  let s = l.cfg.stats in
  s.Stats.dropped <- s.Stats.dropped + List.length l.wire;
  l.wire <- [];
  l.ack_wire <- []
