(** Deterministic fault models for the unreliable-channel layer.

    A [spec] describes how one simulated network misbehaves.  All
    randomness is drawn from the transport's own seeded RNG, so a run
    is reproducible from its seed; the partition schedule is purely a
    function of the virtual clock. *)

type spec = {
  drop : float;  (** Probability a transmission is lost. *)
  duplicate : float;  (** Probability a transmission arrives twice. *)
  reorder : float;
      (** Probability a transmission is jittered behind later ones. *)
  delay : int;  (** Maximum extra ticks of jitter (>= 1). *)
  partition_period : int;
      (** Every link is severed cyclically with this period in ticks;
          [0] disables partitions. *)
  partition_down : int;
      (** Ticks of down-time at the start of each period
          (< [partition_period]). *)
}

(** The perfect network: no faults at all. *)
val none : spec

(** Whether the link is partitioned at the given virtual time. *)
val down_at : spec -> tick:int -> bool

(** Named built-in models: [none], [drop], [dup], [reorder],
    [partition], [chaos], [heavy-loss]. *)
val presets : (string * spec) list

val preset : string -> spec option

(** Parse a preset name or a comma-separated field list
    ([drop=0.3,dup=0.1,reorder=0.2,delay=4,partition=60:20]). *)
val of_string : string -> (spec, string) result

val to_string : spec -> string

val validate : spec -> (spec, string) result

val pp : Format.formatter -> spec -> unit
