(** Aggregate counters for one simulated network (all its channels).

    The sender-side counters distinguish logical {e payloads} (what the
    application asked to send) from physical {e transmissions}
    (payloads plus retransmissions); their ratio is the message
    amplification the fault model costs.  The receiver-side counters
    record what the reliability shim absorbed: suppressed duplicates,
    resequenced out-of-order arrivals, and — with the shim off — the
    FIFO-exactly-once contract violations that reached the
    application. *)

type t = {
  mutable payloads : int;  (** Logical sends (messages). *)
  mutable transmissions : int;  (** Physical sends incl. retransmits. *)
  mutable op_payloads : int;
      (** Operations asked to be sent: each logical send weighted by
          the number of operations the message carries
          ({!Transport.create}'s [weight]).  Equal to [payloads] on
          unweighted channels. *)
  mutable op_transmissions : int;
      (** Operations physically sent, incl. retransmissions of whole
          batches. *)
  mutable dropped : int;  (** Lost by the fault model. *)
  mutable duplicated : int;  (** Extra copies created by the network. *)
  mutable reordered : int;  (** Transmissions jittered out of order. *)
  mutable partition_drops : int;  (** Lost to a severed link. *)
  mutable partitions_healed : int;  (** Down-to-up transitions. *)
  mutable retransmits : int;  (** Shim timeout-driven resends. *)
  mutable dup_dropped : int;  (** Duplicates the shim suppressed. *)
  mutable opid_dup_dropped : int;
      (** Duplicates caught by the operation-identifier guard. *)
  mutable out_of_order : int;  (** Arrivals the shim resequenced. *)
  mutable acks_sent : int;
  mutable acks_dropped : int;
  mutable delivered : int;  (** Payloads handed to the application. *)
  mutable contract_violations : int;
      (** Deliveries violating FIFO-exactly-once (shim off). *)
  mutable ticks : int;  (** Virtual-clock advances. *)
}

val create : unit -> t

(** Amplification, in {e operations}: [op_transmissions /
    op_payloads] ([1.0] when idle).  Counting ops rather than messages
    keeps the figure comparable with and without engine-level
    batching — a retransmitted batch of [k] operations costs [k], just
    as [k] retransmitted singletons would. *)
val amplification : t -> float

(** The counters as ordered (name, value) pairs. *)
val fields : t -> (string * int) list

(** Copy the counters into a metrics registry under the [net.] prefix
    (plus the [net.amplification] gauge).  Cumulative — publish once
    per run. *)
val publish : t -> Rlist_obs.Metrics.t -> unit

val to_json : t -> string

val pp : Format.formatter -> t -> unit
