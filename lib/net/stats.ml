type t = {
  mutable payloads : int;
  mutable transmissions : int;
  mutable op_payloads : int;
  mutable op_transmissions : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable partition_drops : int;
  mutable partitions_healed : int;
  mutable retransmits : int;
  mutable dup_dropped : int;
  mutable opid_dup_dropped : int;
  mutable out_of_order : int;
  mutable acks_sent : int;
  mutable acks_dropped : int;
  mutable delivered : int;
  mutable contract_violations : int;
  mutable ticks : int;
}

let create () =
  {
    payloads = 0;
    transmissions = 0;
    op_payloads = 0;
    op_transmissions = 0;
    dropped = 0;
    duplicated = 0;
    reordered = 0;
    partition_drops = 0;
    partitions_healed = 0;
    retransmits = 0;
    dup_dropped = 0;
    opid_dup_dropped = 0;
    out_of_order = 0;
    acks_sent = 0;
    acks_dropped = 0;
    delivered = 0;
    contract_violations = 0;
    ticks = 0;
  }

(* Per-operation, not per-message: a batch message counts once per
   operation it carries, on both sides of the ratio, so the figure
   stays comparable whether or not the engine coalesces. *)
let amplification t =
  if t.op_payloads = 0 then 1.0
  else float_of_int t.op_transmissions /. float_of_int t.op_payloads

let fields t =
  [
    "payloads", t.payloads;
    "transmissions", t.transmissions;
    "op_payloads", t.op_payloads;
    "op_transmissions", t.op_transmissions;
    "dropped", t.dropped;
    "duplicated", t.duplicated;
    "reordered", t.reordered;
    "partition_drops", t.partition_drops;
    "partitions_healed", t.partitions_healed;
    "retransmits", t.retransmits;
    "dup_dropped", t.dup_dropped;
    "opid_dup_dropped", t.opid_dup_dropped;
    "out_of_order", t.out_of_order;
    "acks_sent", t.acks_sent;
    "acks_dropped", t.acks_dropped;
    "delivered", t.delivered;
    "contract_violations", t.contract_violations;
    "ticks", t.ticks;
  ]

(* Copy the counters into a metrics registry under the [net.] prefix.
   The counters are cumulative, so publish once per run (the soak
   driver does, after quiescence). *)
let publish t metrics =
  List.iter
    (fun (name, value) ->
      Rlist_obs.Metrics.add (Rlist_obs.Metrics.counter metrics ("net." ^ name)) value)
    (fields t);
  Rlist_obs.Metrics.set_gauge
    (Rlist_obs.Metrics.gauge metrics "net.amplification")
    (amplification t)

let to_json t =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, value) ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "\"%s\": %d" name value)
    (fields t);
  Printf.bprintf b ", \"amplification\": %.3f}" (amplification t);
  Buffer.contents b

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, value) ->
      if value > 0 then Format.fprintf ppf "%-20s %d@," name value)
    (fields t);
  Format.fprintf ppf "%-20s %.3f@]" "amplification" (amplification t)
