(** The seed's linked-list document, preserved as a testing oracle.

    Same signature as {!Document} (a document is a finite sequence of
    unique {!Element.t} values); deliberately naive implementation:
    O(n) positional access and O(n^2) compatibility.  The property
    tests in [test/test_document.ml] replay random operation sequences
    against this oracle and the rope-backed {!Document} and require
    identical observations.  Do not use outside tests and benchmarks. *)

type t

val empty : t

val of_string : string -> t

val of_elements : Element.t list -> t

val elements : t -> Element.t list

val iter : (Element.t -> unit) -> t -> unit

val fold : ('a -> Element.t -> 'a) -> 'a -> t -> 'a

val to_seq : t -> Element.t Seq.t

val to_string : t -> string

val length : t -> int

val is_empty : t -> bool

val nth : t -> int -> Element.t

val insert : t -> pos:int -> Element.t -> t

val delete : t -> pos:int -> Element.t * t

val index_of : t -> Element.t -> int option

val mem : t -> Element.t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int

val compatible : t -> t -> bool

val order_pairs : t -> (Element.t * Element.t) list

val has_duplicates : t -> bool

val pp : Format.formatter -> t -> unit

val pp_detailed : Format.formatter -> t -> unit
