(* Rope-backed documents.

   The document is the hot data structure of every protocol family: all
   of them funnel through [Op.apply], which calls [insert]/[delete]/
   [nth] here.  The representation is a height-balanced binary tree
   (the same balancing discipline as the stdlib's [Map]) whose in-order
   traversal is the sequence; every node caches its subtree size, so
   positional access is O(log n) instead of the O(n) of the original
   linked-list representation (kept as {!Document_reference}, the
   testing oracle).

   Alongside the tree we maintain a persistent index keyed by element
   identity ([Op_id]): a multiset of the identifiers present in the
   document.  [mem], and through it [compatible], become O(log n) per
   query instead of a linear scan, and [has_duplicates] is O(1) via a
   cached count of identifiers appearing more than once. *)

module Tree = struct
  type t =
    | Empty
    | Node of {
        l : t;
        v : Element.t;
        r : t;
        h : int;
        size : int;
      }

  let height = function
    | Empty -> 0
    | Node n -> n.h

  let size = function
    | Empty -> 0
    | Node n -> n.size

  let node l v r =
    Node { l; v; r; h = 1 + max (height l) (height r); size = 1 + size l + size r }

  (* Rebalance a tree whose children differ in height by at most 3
     (one insertion or deletion beyond the invariant), as in the
     stdlib's [Map.bal]. *)
  let bal l v r =
    let hl = height l and hr = height r in
    if hl > hr + 2 then
      match l with
      | Empty -> assert false
      | Node { l = ll; v = lv; r = lr; _ } ->
        if height ll >= height lr then node ll lv (node lr v r)
        else (
          match lr with
          | Empty -> assert false
          | Node { l = lrl; v = lrv; r = lrr; _ } ->
            node (node ll lv lrl) lrv (node lrr v r))
    else if hr > hl + 2 then
      match r with
      | Empty -> assert false
      | Node { l = rl; v = rv; r = rr; _ } ->
        if height rr >= height rl then node (node l v rl) rv rr
        else (
          match rl with
          | Empty -> assert false
          | Node { l = rll; v = rlv; r = rlr; _ } ->
            node (node l v rll) rlv (node rlr rv rr))
    else node l v r

  (* [i] is in [0, size t]. *)
  let rec insert_at t i e =
    match t with
    | Empty -> node Empty e Empty
    | Node { l; v; r; _ } ->
      let sl = size l in
      if i <= sl then bal (insert_at l i e) v r
      else bal l v (insert_at r (i - sl - 1) e)

  let rec min_elt = function
    | Empty -> assert false
    | Node { l = Empty; v; _ } -> v
    | Node { l; _ } -> min_elt l

  let rec remove_min = function
    | Empty -> assert false
    | Node { l = Empty; r; _ } -> r
    | Node { l; v; r; _ } -> bal (remove_min l) v r

  let merge l r =
    match l, r with
    | Empty, t | t, Empty -> t
    | _ -> bal l (min_elt r) (remove_min r)

  (* [i] is in [0, size t). *)
  let rec delete_at t i =
    match t with
    | Empty -> assert false
    | Node { l; v; r; _ } ->
      let sl = size l in
      if i < sl then
        let deleted, l' = delete_at l i in
        deleted, bal l' v r
      else if i > sl then
        let deleted, r' = delete_at r (i - sl - 1) in
        deleted, bal l v r'
      else v, merge l r

  let rec nth t i =
    match t with
    | Empty -> assert false
    | Node { l; v; r; _ } ->
      let sl = size l in
      if i < sl then nth l i else if i > sl then nth r (i - sl - 1) else v

  let rec iter f = function
    | Empty -> ()
    | Node { l; v; r; _ } ->
      iter f l;
      f v;
      iter f r

  let rec fold f acc = function
    | Empty -> acc
    | Node { l; v; r; _ } -> fold f (f (fold f acc l) v) r

  let rec seq_of t tail () =
    match t with
    | Empty -> tail ()
    | Node { l; v; r; _ } -> seq_of l (fun () -> Seq.Cons (v, seq_of r tail)) ()

  let to_seq t = seq_of t (fun () -> Seq.Nil)

  (* Build a perfectly balanced tree from a sub-array in O(n). *)
  let of_array a =
    let rec build lo hi =
      if lo >= hi then Empty
      else
        let mid = (lo + hi) / 2 in
        node (build lo mid) a.(mid) (build (mid + 1) hi)
    in
    build 0 (Array.length a)
end

(* Identifier multiset: id -> number of occurrences, plus the number
   of identifiers occurring more than once ([has_duplicates] in O(1)).
   Well-formed documents never hold duplicates (Lemma 6.3), but
   [of_elements] is unrestricted and [has_duplicates] must observe
   them. *)
type index = {
  ids : int Op_id.Map.t;
  dups : int;
}

type t = {
  tree : Tree.t;
  (* Lazy so that [of_elements] — called per read by the CRDT
     protocols to expose their native state as a document — stays a
     plain O(n) tree build.  [insert]/[delete] keep an already-forced
     index up to date ([Lazy.from_val]), so the OT hot path never
     re-indexes and no thunk chains accumulate. *)
  index : index Lazy.t;
}

let length t = Tree.size t.tree

let is_empty t = length t = 0

let add_id idx id =
  match Op_id.Map.find_opt id idx.ids with
  | None -> { idx with ids = Op_id.Map.add id 1 idx.ids }
  | Some n ->
    {
      ids = Op_id.Map.add id (n + 1) idx.ids;
      dups = (if n = 1 then idx.dups + 1 else idx.dups);
    }

let remove_id idx id =
  match Op_id.Map.find_opt id idx.ids with
  | None -> assert false
  | Some 1 -> { idx with ids = Op_id.Map.remove id idx.ids }
  | Some n ->
    {
      ids = Op_id.Map.add id (n - 1) idx.ids;
      dups = (if n = 2 then idx.dups - 1 else idx.dups);
    }

let empty_index = { ids = Op_id.Map.empty; dups = 0 }

let index_of_tree tree =
  Tree.fold (fun idx e -> add_id idx e.Element.id) empty_index tree

let empty = { tree = Tree.Empty; index = Lazy.from_val empty_index }

let of_array a =
  let tree = Tree.of_array a in
  { tree; index = lazy (index_of_tree tree) }

let of_string s =
  of_array
    (Array.init (String.length s) (fun i ->
         Element.make ~value:s.[i] ~id:(Op_id.initial ~seq:(i + 1))))

let of_elements es = of_array (Array.of_list es)

let elements t = List.rev (Tree.fold (fun acc e -> e :: acc) [] t.tree)

let iter f t = Tree.iter f t.tree

let fold f acc t = Tree.fold f acc t.tree

let to_seq t = Tree.to_seq t.tree

let to_string t =
  let b = Buffer.create (length t) in
  Tree.iter (fun e -> Buffer.add_char b e.Element.value) t.tree;
  Buffer.contents b

let nth t p =
  if p < 0 || p >= length t then
    invalid_arg
      (Printf.sprintf "Document.nth: position %d out of bounds (length %d)" p
         (length t));
  Tree.nth t.tree p

let insert t ~pos e =
  if pos < 0 || pos > length t then
    invalid_arg
      (Printf.sprintf "Document.insert: position %d out of bounds (length %d)"
         pos (length t));
  {
    tree = Tree.insert_at t.tree pos e;
    index = Lazy.from_val (add_id (Lazy.force t.index) e.Element.id);
  }

let delete t ~pos =
  if pos < 0 || pos >= length t then
    invalid_arg
      (Printf.sprintf "Document.delete: position %d out of bounds (length %d)"
         pos (length t));
  let deleted, tree = Tree.delete_at t.tree pos in
  ( deleted,
    {
      tree;
      index = Lazy.from_val (remove_id (Lazy.force t.index) deleted.Element.id);
    } )

let mem t e = Op_id.Map.mem e.Element.id (Lazy.force t.index).ids

let index_of t e =
  if not (mem t e) then None
  else
    (* The id index answers presence in O(log n); recovering the
       position still walks the sequence, but only when the element is
       actually there. *)
    let rec go offset = function
      | Tree.Empty -> None
      | Tree.Node { l; v; r; _ } -> (
        match go offset l with
        | Some _ as found -> found
        | None ->
          let pos = offset + Tree.size l in
          if Element.equal v e then Some pos else go (pos + 1) r)
    in
    go 0 t.tree

let compare a b =
  let rec go sa sb =
    match sa (), sb () with
    | Seq.Nil, Seq.Nil -> 0
    | Seq.Nil, Seq.Cons _ -> -1
    | Seq.Cons _, Seq.Nil -> 1
    | Seq.Cons (x, sa'), Seq.Cons (y, sb') -> (
      match Element.compare x y with
      | 0 -> go sa' sb'
      | c -> c)
  in
  go (to_seq a) (to_seq b)

let equal a b = length a = length b && compare a b = 0

let compatible d1 d2 =
  (* Restrict both documents to their common elements; compatibility
     holds iff the two restrictions are the same sequence.  Membership
     comes from the id index, so the whole check is O(n log n) rather
     than the O(n^2) of scanning one list per element. *)
  let common1 = List.filter (fun e -> mem d2 e) (elements d1) in
  let common2 = List.filter (fun e -> mem d1 e) (elements d2) in
  List.length common1 = List.length common2
  && List.for_all2 Element.equal common1 common2

let order_pairs t =
  let rec go acc = function
    | [] -> List.rev acc
    | x :: rest ->
      let acc = List.fold_left (fun acc y -> (x, y) :: acc) acc rest in
      go acc rest
  in
  go [] (elements t)

let has_duplicates t = (Lazy.force t.index).dups > 0

let pp ppf t = Format.fprintf ppf "%S" (to_string t)

let pp_detailed ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Element.pp)
    (elements t)
