(** Documents: the state of a replicated list replica.

    A document is a finite sequence of unique {!Element.t} values.  It
    is the value returned by the [Read] operation and by every [do]
    event (paper, Section 3.1: all three user operations return the
    updated list).

    The representation is a balanced rope (size-annotated balanced
    tree) plus a persistent identifier index: {!insert}, {!delete} and
    {!nth} are O(log n); {!to_string}, {!elements}, {!iter} and
    {!fold} are single O(n) traversals; {!mem} is O(log n) and
    {!has_duplicates} O(1).  {!Document_reference} keeps the original
    linked-list implementation as a differential-testing oracle. *)

type t

val empty : t

(** [of_string s] builds an initial document whose elements carry the
    characters of [s], identified as pre-existing elements
    ({!Op_id.initial}). *)
val of_string : string -> t

val of_elements : Element.t list -> t

val elements : t -> Element.t list

(** [iter f d] applies [f] to every element in document order, without
    materialising an intermediate list. *)
val iter : (Element.t -> unit) -> t -> unit

(** [fold f acc d] folds [f] left-to-right over the elements. *)
val fold : ('a -> Element.t -> 'a) -> 'a -> t -> 'a

(** [to_seq d] is the elements as a lazy sequence, in document order. *)
val to_seq : t -> Element.t Seq.t

(** The user-visible content, one character per element. *)
val to_string : t -> string

val length : t -> int

val is_empty : t -> bool

(** [nth d p] is the element at position [p] (0-based).
    @raise Invalid_argument if [p] is out of bounds. *)
val nth : t -> int -> Element.t

(** [insert d ~pos e] inserts [e] at position [pos], shifting later
    elements right.  Positions run from [0] to [length d] inclusive.
    @raise Invalid_argument if [pos] is out of bounds. *)
val insert : t -> pos:int -> Element.t -> t

(** [delete d ~pos] removes the element at position [pos] and returns
    it together with the shorter document.
    @raise Invalid_argument if [pos] is out of bounds. *)
val delete : t -> pos:int -> Element.t * t

(** [index_of d e] is the position of element [e] in [d], if present. *)
val index_of : t -> Element.t -> int option

val mem : t -> Element.t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int

(** [compatible d1 d2] decides state compatibility (paper,
    Definition 8.2): for any two elements common to [d1] and [d2],
    their relative order is the same in both.  Pairwise compatibility
    of all returned lists is equivalent to irreflexivity of the list
    order (Lemma 8.3) and is the heart of the weak-list-specification
    proof. *)
val compatible : t -> t -> bool

(** [order_pairs d] is the list of all ordered pairs [(a, b)] with [a]
    before [b] in [d] — the contribution of [d] to the list order
    (Definition 8.1). *)
val order_pairs : t -> (Element.t * Element.t) list

(** [has_duplicates d] reports whether some element identity occurs
    twice.  Well-formed protocol states never contain duplicates
    (Lemma 6.3). *)
val has_duplicates : t -> bool

val pp : Format.formatter -> t -> unit

(** Like {!pp} but prints element identities too. *)
val pp_detailed : Format.formatter -> t -> unit
