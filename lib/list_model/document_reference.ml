(* The original linked-list document implementation, kept verbatim as
   a differential-testing oracle for the rope-backed {!Document}: it is
   obviously correct, and the property tests replay random operation
   sequences against both and demand identical observations.

   The only change from the seed implementation is [to_string], which
   was O(n^2) ([List.nth] inside [String.init]) and is now a single
   Buffer-filling traversal so the oracle stays usable at 10^5
   elements.  Everything else is intentionally naive: O(n) positional
   access, O(n^2) compatibility. *)

type t = Element.t list

let empty = []

let of_string s =
  List.init (String.length s) (fun i ->
      Element.make ~value:s.[i] ~id:(Op_id.initial ~seq:(i + 1)))

let of_elements es = es

let elements t = t

let iter = List.iter

let fold = List.fold_left

let to_seq = List.to_seq

let to_string t =
  let b = Buffer.create (List.length t) in
  List.iter (fun e -> Buffer.add_char b e.Element.value) t;
  Buffer.contents b

let length = List.length

let is_empty t = t = []

let nth t p =
  if p < 0 || p >= List.length t then
    invalid_arg
      (Printf.sprintf "Document.nth: position %d out of bounds (length %d)" p
         (List.length t));
  List.nth t p

let insert t ~pos e =
  if pos < 0 || pos > List.length t then
    invalid_arg
      (Printf.sprintf "Document.insert: position %d out of bounds (length %d)"
         pos (List.length t));
  let rec go i = function
    | rest when i = pos -> e :: rest
    | [] -> invalid_arg "Document.insert: unreachable"
    | x :: rest -> x :: go (i + 1) rest
  in
  go 0 t

let delete t ~pos =
  if pos < 0 || pos >= List.length t then
    invalid_arg
      (Printf.sprintf "Document.delete: position %d out of bounds (length %d)"
         pos (List.length t));
  let rec go i = function
    | [] -> invalid_arg "Document.delete: unreachable"
    | x :: rest when i = pos -> x, rest
    | x :: rest ->
      let deleted, rest' = go (i + 1) rest in
      deleted, x :: rest'
  in
  go 0 t

let index_of t e =
  let rec go i = function
    | [] -> None
    | x :: rest -> if Element.equal x e then Some i else go (i + 1) rest
  in
  go 0 t

let mem t e = index_of t e <> None

let compare a b = List.compare Element.compare a b

let equal a b = compare a b = 0

let compatible d1 d2 =
  (* Restrict both documents to their common elements; compatibility
     holds iff the two restrictions are the same sequence. *)
  let common1 = List.filter (fun e -> mem d2 e) d1 in
  let common2 = List.filter (fun e -> mem d1 e) d2 in
  List.length common1 = List.length common2
  && List.for_all2 Element.equal common1 common2

let order_pairs t =
  let rec go acc = function
    | [] -> List.rev acc
    | x :: rest ->
      let acc = List.fold_left (fun acc y -> (x, y) :: acc) acc rest in
      go acc rest
  in
  go [] t

let has_duplicates t =
  let rec go seen = function
    | [] -> false
    | e :: rest ->
      Op_id.Set.mem e.Element.id seen
      || go (Op_id.Set.add e.Element.id seen) rest
  in
  go Op_id.Set.empty t

let pp ppf t = Format.fprintf ppf "%S" (to_string t)

let pp_detailed ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Element.pp)
    t
