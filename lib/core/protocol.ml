open Rlist_model
open Rlist_ot

let name = "css"

let server_is_replica = true

type c2s = {
  op : Op.t;
  ctx : Context.t;
}

type s2c = {
  op : Op.t;
  ctx : Context.t;
  serial : int;
  origin : int;
}

type replica = {
  space : State_space.t;
  serials : int Op_id.Table.t;
  mutable doc : Document.t;
  mutable path : State_space.state list;  (* reversed *)
}

type client = {
  id : int;
  replica : replica;
  mutable next_seq : int;
}

type server = {
  nclients : int;
  server_replica : replica;
  mutable next_serial : int;
}

let make_replica ~fastpath ~initial ~own_client =
  let serials = Op_id.Table.create 64 in
  let key_of id =
    match Op_id.Table.find_opt serials id with
    | Some serial -> Order_key.Serialized serial
    | None ->
      (* Only the replica's own unacknowledged operations may lack a
         serial number (FIFO channels deliver every other operation
         with its serial). *)
      if id.Op_id.client = own_client then Order_key.Pending id.Op_id.seq
      else
        invalid_arg
          (Format.asprintf
             "CSS replica %d: no order key for foreign operation %a"
             own_client Op_id.pp id)
  in
  let space = State_space.create ~fastpath ~key_of () in
  { space; serials; doc = initial; path = [ State_space.initial_state ] }

(* Uniform processing (Section 6.2): match the context, extend the
   state-space per Algorithm 1, and execute the transformed form. *)
let process replica (oc : Context.op_in_context) =
  let form = State_space.add_op replica.space oc in
  replica.doc <- Op.apply form replica.doc;
  replica.path <- State_space.final replica.space :: replica.path

let create_client ~fastpath ~nclients ~id ~initial =
  ignore nclients;
  if id < 1 then invalid_arg "CSS: client identifiers start at 1";
  { id; replica = make_replica ~fastpath ~initial ~own_client:id; next_seq = 1 }

let create_server ~fastpath ~nclients ~initial =
  {
    nclients;
    (* The server has no own operations; [own_client = 0] makes every
       unknown identifier an error. *)
    server_replica = make_replica ~fastpath ~initial ~own_client:0;
    next_serial = 1;
  }

let client_generate t intent =
  let r = t.replica in
  let { Rlist_sim.Intent_resolver.outcome; op } =
    Rlist_sim.Intent_resolver.resolve ~client:t.id ~seq:t.next_seq ~doc:r.doc
      intent
  in
  match op with
  | None -> outcome, None
  | Some op ->
    t.next_seq <- t.next_seq + 1;
    let ctx = State_space.final r.space in
    process r (Context.with_context op ~ctx);
    outcome, Some { op; ctx }

let server_receive t ~from ({ op; ctx } : c2s) =
  let serial = t.next_serial in
  t.next_serial <- serial + 1;
  Op_id.Table.replace t.server_replica.serials op.Op.id serial;
  process t.server_replica (Context.with_context op ~ctx);
  List.init t.nclients (fun i -> i + 1, { op; ctx; serial; origin = from })

let client_receive t ({ op; ctx; serial; origin } : s2c) =
  let r = t.replica in
  Op_id.Table.replace r.serials op.Op.id serial;
  if origin <> t.id then process r (Context.with_context op ~ctx)
(* else: acknowledgement of an own operation — already processed at
   generation time; recording the serial above is all that is needed
   (the pending transition silently becomes serialized, keeping its
   relative order, cf. Order_key). *)

(* Batched processing: record every serial first (so the ordering keys
   are final before any insertion), then walk the whole run through
   Algorithm 1's ladder with a single leftmost-path lookup
   (State_space.add_run), then execute the transformed forms in
   order. *)
let process_run replica ocs =
  let forms = State_space.add_run replica.space ocs in
  List.iter (fun form -> replica.doc <- Op.apply form replica.doc) forms;
  (* Reconstruct the intermediate final states the one-by-one path
     would have recorded: each operation grows the final state by its
     own identifier. *)
  let rec record ctx = function
    | [] -> ()
    | (oc : Context.op_in_context) :: rest ->
      let ctx = Op_id.Set.add oc.Context.op.Op.id ctx in
      replica.path <- ctx :: replica.path;
      record ctx rest
  in
  (match replica.path with
  | latest :: _ -> record latest ocs
  | [] -> assert false)

let server_receive_batch t ~from batch =
  let stamped =
    List.map
      (fun ({ op; ctx } : c2s) ->
        let serial = t.next_serial in
        t.next_serial <- serial + 1;
        Op_id.Table.replace t.server_replica.serials op.Op.id serial;
        op, ctx, serial)
      batch
  in
  process_run t.server_replica
    (List.map (fun (op, ctx, _) -> Context.with_context op ~ctx) stamped);
  List.concat_map
    (fun (op, ctx, serial) ->
      List.init t.nclients (fun i -> i + 1, { op; ctx; serial; origin = from }))
    stamped

let client_receive_batch t batch =
  let r = t.replica in
  (* All serials first: a batch may interleave acknowledgements of own
     operations with foreign operations, and the foreign ones must see
     every serial the batch carries before insertion. *)
  List.iter
    (fun ({ op; serial; _ } : s2c) ->
      Op_id.Table.replace r.serials op.Op.id serial)
    batch;
  (* Own acknowledgements need no processing; they also break run
     contiguity for the foreign operations around them (the context
     cardinality jumps), which add_run's segmentation handles. *)
  let foreign =
    List.filter_map
      (fun ({ op; ctx; origin; _ } : s2c) ->
        if origin <> t.id then Some (Context.with_context op ~ctx) else None)
      batch
  in
  match foreign with [] -> () | _ :: _ -> process_run r foreign

let c2s_op_id ({ op; _ } : c2s) = Some op.Op.id

let s2c_op_id ({ op; _ } : s2c) = Some op.Op.id

let client_document t = t.replica.doc

let server_document t = t.server_replica.doc

let client_visible t = State_space.final t.replica.space

let server_visible t = State_space.final t.server_replica.space

let client_ot_count t = State_space.ot_count t.replica.space

let server_ot_count t = State_space.ot_count t.server_replica.space

let client_metadata_size t = State_space.size t.replica.space

let server_metadata_size t = State_space.size t.server_replica.space

let client_space t = t.replica.space

let server_space t = t.server_replica.space

let client_set_space_observer t notify =
  State_space.set_observer t.replica.space notify

let server_set_space_observer t notify =
  State_space.set_observer t.server_replica.space notify

let client_path t = List.rev t.replica.path

let server_path t = List.rev t.server_replica.path

let client_state t =
  let serials =
    Op_id.Table.fold (fun id s acc -> (id, s) :: acc) t.replica.serials []
  in
  t.id, t.next_seq, t.replica.doc, serials

let rebuild_client ~id ~next_seq ~doc ~serials ~space ~root ~final =
  if id < 1 then invalid_arg "CSS: client identifiers start at 1";
  let table = Op_id.Table.create 64 in
  List.iter (fun (op_id, serial) -> Op_id.Table.replace table op_id serial)
    serials;
  let key_of op_id =
    match Op_id.Table.find_opt table op_id with
    | Some serial -> Order_key.Serialized serial
    | None ->
      if op_id.Op_id.client = id then Order_key.Pending op_id.Op_id.seq
      else
        invalid_arg
          (Format.asprintf
             "CSS rebuild %d: no order key for foreign operation %a" id
             Op_id.pp op_id)
  in
  let space = State_space.of_raw ~key_of ~root ~final space in
  {
    id;
    replica = { space; serials = table; doc; path = [ final ] };
    next_seq;
  }

(* No ack-driven pruning machinery; GC-enabled runs degrade to
   shim-level pruning only. *)
let gc_support = None
