(** The CSS (Compact State-Space) Jupiter protocol (paper, Section 6).

    Every replica — the server and each client — runs the same uniform
    processing (Section 6.2) over its own n-ary ordered state-space.
    The server serializes operations and redirects the {e original}
    operations (not transformed ones, unlike the CSCW protocol) to all
    clients; the copy sent back to the originating client acts as the
    acknowledgement carrying the serial number.

    Proposition 6.6: replicas having processed the same set of
    operations have {e equal} state-spaces, so the system conceptually
    maintains a single compact state-space.  {!client_space} and
    {!server_space} expose the spaces so tests can verify this
    directly. *)

open Rlist_ot

type c2s = {
  op : Op.t;  (** Original operation. *)
  ctx : Context.t;  (** The state it was generated from. *)
}

type s2c = {
  op : Op.t;  (** Original operation, as redirected by the server. *)
  ctx : Context.t;
  serial : int;  (** Position in the server's total order. *)
  origin : int;  (** Generating client. *)
}

include
  Rlist_sim.Protocol_intf.PROTOCOL with type c2s := c2s and type s2c := s2c

val client_space : client -> State_space.t

val server_space : server -> State_space.t

(** {2 Observability}

    Install a {!State_space.set_observer} growth observer on a
    replica's space — the per-level hook the trace layer uses to emit
    [state_space_grow] events.  Uninstrumented replicas pay one branch
    per processed operation. *)

val client_set_space_observer :
  client ->
  (level:int -> states:int -> transitions:int -> ots:int -> unit) ->
  unit

val server_set_space_observer :
  server ->
  (level:int -> states:int -> transitions:int -> ots:int -> unit) ->
  unit

(** The documents each replica went through, oldest first — its path
    through the state-space (Example 6.3). *)
val client_path : client -> State_space.state list

val server_path : server -> State_space.state list

(** {2 Introspection and reconstruction (for {!Snapshot})} *)

(** The client's persistent state: identifier, next sequence number,
    document, and serial-number bindings.  (The state-space is
    reachable through {!client_space}.) *)
val client_state :
  client -> int * int * Rlist_model.Document.t * (Rlist_model.Op_id.t * int) list

(** Rebuild a client from persisted state.  The state-space listing is
    in {!State_space.of_raw} form; the construction path collapses to
    the final state. *)
val rebuild_client :
  id:int ->
  next_seq:int ->
  doc:Rlist_model.Document.t ->
  serials:(Rlist_model.Op_id.t * int) list ->
  space:(State_space.state * State_space.transition list) list ->
  root:State_space.state ->
  final:State_space.state ->
  client
