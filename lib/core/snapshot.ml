open Rlist_model
open Rlist_ot

(* Line-oriented format:

     css-client 1
     client <id> <next_seq>
     delt <char-code> <client> <seq>         one per document element
     serial <client> <seq> <serial>
     root <c.s>*
     final <c.s>*
     node <c.s>*                             then its transitions:
     tr <c> <s> ins <code> <ec> <es> <pos>
     tr <c> <s> del <code> <ec> <es> <pos>
     tr <c> <s> nop

   A transition's target is implicit: source + its original operation.
   Identifier tokens are "c.s"; initial elements use client 0. *)

let id_token id = Printf.sprintf "%d.%d" id.Op_id.client id.Op_id.seq

let state_tokens state =
  String.concat " " (List.map id_token (Op_id.Set.canonical state))

let form_tokens (form : Op.t) =
  match form.Op.action with
  | Op.Ins (e, p) ->
    Printf.sprintf "ins %d %d %d %d" (Char.code e.Element.value)
      e.Element.id.Op_id.client e.Element.id.Op_id.seq p
  | Op.Del (e, p) ->
    Printf.sprintf "del %d %d %d %d" (Char.code e.Element.value)
      e.Element.id.Op_id.client e.Element.id.Op_id.seq p
  | Op.Nop -> "nop"

let client_to_string client =
  let id, next_seq, doc, serials = Protocol.client_state client in
  let space = Protocol.client_space client in
  let buffer = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer (s ^ "\n")) fmt in
  line "css-client 1";
  line "client %d %d" id next_seq;
  Document.iter
    (fun e ->
      line "delt %d %d %d" (Char.code e.Element.value) e.Element.id.Op_id.client
        e.Element.id.Op_id.seq)
    doc;
  List.iter
    (fun (op_id, serial) ->
      line "serial %d %d %d" op_id.Op_id.client op_id.Op_id.seq serial)
    (List.sort
       (fun (a, _) (b, _) -> Op_id.compare a b)
       serials);
  line "root %s" (state_tokens (State_space.root space));
  line "final %s" (state_tokens (State_space.final space));
  List.iter
    (fun state ->
      line "node %s" (state_tokens state);
      List.iter
        (fun tr ->
          line "tr %d %d %s" tr.State_space.orig.Op_id.client
            tr.State_space.orig.Op_id.seq
            (form_tokens tr.State_space.form))
        (State_space.transitions space state))
    (List.sort Op_id.Set.compare (State_space.states space));
  Buffer.contents buffer

let client_of_string text =
  let fail lineno fmt =
    Format.kasprintf
      (fun s ->
        invalid_arg (Printf.sprintf "Snapshot: line %d: %s" lineno s))
      fmt
  in
  let parse_int lineno s =
    match int_of_string_opt s with
    | Some n -> n
    | None -> fail lineno "bad integer %S" s
  in
  let parse_id lineno token =
    match String.split_on_char '.' token with
    | [ c; s ] -> (
      let c = parse_int lineno c and s = parse_int lineno s in
      if c = 0 then Op_id.initial ~seq:s else Op_id.make ~client:c ~seq:s)
    | _ -> fail lineno "bad identifier token %S" token
  in
  let parse_state lineno tokens =
    Op_id.Set.of_list (List.map (parse_id lineno) tokens)
  in
  let parse_form lineno orig tokens =
    match tokens with
    | [ "nop" ] -> Op.nop ~id:orig
    | [ "ins"; code; ec; es; pos ] ->
      let value = Char.chr (parse_int lineno code) in
      let eid =
        let c = parse_int lineno ec and s = parse_int lineno es in
        if c = 0 then Op_id.initial ~seq:s else Op_id.make ~client:c ~seq:s
      in
      Op.make_ins ~id:orig (Element.make ~value ~id:eid) (parse_int lineno pos)
    | [ "del"; code; ec; es; pos ] ->
      let value = Char.chr (parse_int lineno code) in
      let eid =
        let c = parse_int lineno ec and s = parse_int lineno es in
        if c = 0 then Op_id.initial ~seq:s else Op_id.make ~client:c ~seq:s
      in
      Op.make_del ~id:orig (Element.make ~value ~id:eid) (parse_int lineno pos)
    | _ -> fail lineno "bad transition form"
  in
  let header = ref false in
  let id = ref 0 in
  let next_seq = ref 1 in
  let doc_elements = ref [] in
  let serials = ref [] in
  let root = ref None in
  let final = ref None in
  let nodes = ref [] in  (* (state, transitions rev) list, reversed *)
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then ()
      else
        match String.split_on_char ' ' line with
        | [ "css-client"; "1" ] -> header := true
        | "css-client" :: v -> fail lineno "unsupported version %s" (String.concat " " v)
        | [ "client"; i; seq ] ->
          id := parse_int lineno i;
          next_seq := parse_int lineno seq
        | [ "delt"; code; ec; es ] ->
          let value = Char.chr (parse_int lineno code) in
          let c = parse_int lineno ec and s = parse_int lineno es in
          let eid =
            if c = 0 then Op_id.initial ~seq:s else Op_id.make ~client:c ~seq:s
          in
          doc_elements := Element.make ~value ~id:eid :: !doc_elements
        | [ "serial"; c; s; serial ] ->
          serials :=
            ( Op_id.make ~client:(parse_int lineno c) ~seq:(parse_int lineno s),
              parse_int lineno serial )
            :: !serials
        | "root" :: tokens -> root := Some (parse_state lineno tokens)
        | "final" :: tokens -> final := Some (parse_state lineno tokens)
        | "node" :: tokens ->
          nodes := (parse_state lineno tokens, []) :: !nodes
        | "tr" :: c :: s :: form_tokens -> (
          match !nodes with
          | [] -> fail lineno "transition before any node"
          | (state, transitions) :: rest ->
            let orig =
              Op_id.make ~client:(parse_int lineno c) ~seq:(parse_int lineno s)
            in
            let form = parse_form lineno orig form_tokens in
            let target = Op_id.Set.add orig state in
            nodes :=
              (state, { State_space.orig; form; target } :: transitions)
              :: rest)
        | _ -> fail lineno "unrecognized directive %S" line)
    (String.split_on_char '\n' text);
  if not !header then invalid_arg "Snapshot: missing css-client header";
  match !root, !final with
  | None, _ | _, None -> invalid_arg "Snapshot: missing root or final state"
  | Some root, Some final ->
    Protocol.rebuild_client ~id:!id ~next_seq:!next_seq
      ~doc:(Document.of_elements (List.rev !doc_elements))
      ~serials:!serials
      ~space:(List.rev_map (fun (s, trs) -> s, List.rev trs) !nodes)
      ~root ~final

(* --- stable snapshots ---------------------------------------------- *)

(* The stable snapshot is the Raft-style compaction artifact: the
   document at the acked-stable frontier plus the serial it covers.
   It deliberately carries no state-space — everything at or below
   [at_serial] has been executed at every replica, so the ladder above
   it is reconstructible from the retained log suffix.

     css-stable 1
     at <serial>
     delt <char-code> <client> <seq>         one per document element *)

type stable = {
  at_serial : int;
  stable_doc : Document.t;
}

let stable_to_string { at_serial; stable_doc } =
  let buffer = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer (s ^ "\n")) fmt in
  line "css-stable 1";
  line "at %d" at_serial;
  Document.iter
    (fun e ->
      line "delt %d %d %d" (Char.code e.Element.value) e.Element.id.Op_id.client
        e.Element.id.Op_id.seq)
    stable_doc;
  Buffer.contents buffer

let stable_of_string text =
  let fail lineno fmt =
    Format.kasprintf
      (fun s -> invalid_arg (Printf.sprintf "Snapshot: line %d: %s" lineno s))
      fmt
  in
  let parse_int lineno s =
    match int_of_string_opt s with
    | Some n -> n
    | None -> fail lineno "bad integer %S" s
  in
  let header = ref false in
  let at_serial = ref 0 in
  let doc_elements = ref [] in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then ()
      else
        match String.split_on_char ' ' line with
        | [ "css-stable"; "1" ] -> header := true
        | "css-stable" :: v ->
          fail lineno "unsupported version %s" (String.concat " " v)
        | [ "at"; serial ] -> at_serial := parse_int lineno serial
        | [ "delt"; code; ec; es ] ->
          let value = Char.chr (parse_int lineno code) in
          let c = parse_int lineno ec and s = parse_int lineno es in
          let eid =
            if c = 0 then Op_id.initial ~seq:s else Op_id.make ~client:c ~seq:s
          in
          doc_elements := Element.make ~value ~id:eid :: !doc_elements
        | _ -> fail lineno "unrecognized directive %S" line)
    (String.split_on_char '\n' text);
  if not !header then invalid_arg "Snapshot: missing css-stable header";
  {
    at_serial = !at_serial;
    stable_doc = Document.of_elements (List.rev !doc_elements);
  }

let save_client ~path client =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (client_to_string client))

let load_client ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      client_of_string (really_input_string ic n))
