open Rlist_model
open Rlist_ot

let name = "css-pruned"

let server_is_replica = true

type c2s =
  | Update of {
      op : Op.t;
      ctx : Context.t;
      acked : int;
    }
  | Heartbeat of { acked : int }

type s2c =
  | Deliver of {
      op : Op.t;
      ctx : Context.t;
      serial : int;
      origin : int;
      stable : int;
      base : int;
          (* the server's compaction frontier [ctx] is relative to:
             the receiver widens [ctx] with the operations between its
             own frontier and [base] before looking it up *)
    }
  | Stable of { stable : int }

type replica = {
  space : State_space.t;
  serials : int Op_id.Table.t;
  by_serial : (int, Op_id.t) Hashtbl.t;
  mutable doc : Document.t;
  mutable base_doc : Document.t;  (* document at the space's root *)
  mutable pruned_to : int;
  (* Per-client stable watermarks: client [c]'s operations with
     sequence number <= [stable_seqs.(c)] have been compacted into the
     space's root.  FIFO channels serialize each client's operations
     in sequence order, so the compacted prefix of every client is
     contiguous and these [nclients + 1] integers are the {e entire}
     bookkeeping needed to reconstruct the absolute visible set — the
     rebased space itself only holds the live window. *)
  stable_seqs : int array;
}

type client = {
  id : int;
  replica : replica;
  mutable next_seq : int;
  mutable acked : int;  (* highest serial processed *)
}

type server = {
  nclients : int;
  server_replica : replica;
  mutable next_serial : int;
  client_acked : int array;  (* per-client acknowledged serial *)
}

let make_replica ~fastpath ~nclients ~initial ~own_client =
  let serials = Op_id.Table.create 64 in
  let key_of id =
    match Op_id.Table.find_opt serials id with
    | Some serial -> Order_key.Serialized serial
    | None ->
      if id.Op_id.client = own_client then Order_key.Pending id.Op_id.seq
      else
        invalid_arg
          (Format.asprintf
             "css-pruned replica %d: no order key for foreign operation %a"
             own_client Op_id.pp id)
  in
  {
    space = State_space.create ~fastpath ~key_of ();
    serials;
    by_serial = Hashtbl.create 64;
    doc = initial;
    base_doc = initial;
    pruned_to = 0;
    stable_seqs = Array.make (nclients + 1) 0;
  }

let record_serial r id serial =
  Op_id.Table.replace r.serials id serial;
  Hashtbl.replace r.by_serial serial id

let process r (oc : Context.op_in_context) =
  let form = State_space.add_op r.space oc in
  r.doc <- Op.apply form r.doc

(* Compact the replica's space onto the state holding every operation
   with serial <= [stable], then truncate the serial log (the WAL) up
   to that point.  Truncation is safe because after compaction the
   space's root contains every operation with serial <= stable, so no
   retained transition has one as its original operation, and [prune]
   itself only ever walks serials from [pruned_to + 1] up — the
   truncated entries can never be consulted again. *)
let prune r ~stable =
  if stable > r.pruned_to then begin
    let stable_state =
      let rec extend state serial =
        if serial > stable then state
        else
          match Hashtbl.find_opt r.by_serial serial with
          | Some id -> extend (Op_id.Set.add id state) (serial + 1)
          | None ->
            invalid_arg
              (Printf.sprintf
                 "css-pruned: stable serial %d references an unknown \
                  operation %d"
                 stable serial)
      in
      extend (State_space.root r.space) (r.pruned_to + 1)
    in
    r.base_doc <-
      State_space.compact r.space ~stable:stable_state ~base_doc:r.base_doc;
    for serial = r.pruned_to + 1 to stable do
      match Hashtbl.find_opt r.by_serial serial with
      | Some id ->
        (* FIFO serialization: per client the seqs arrive in order, so
           a max-update keeps the watermark at the compacted prefix. *)
        let c = id.Op_id.client in
        if id.Op_id.seq > r.stable_seqs.(c) then
          r.stable_seqs.(c) <- id.Op_id.seq;
        Hashtbl.remove r.by_serial serial;
        Op_id.Table.remove r.serials id
      | None -> ()
    done;
    r.pruned_to <- stable
  end

(* --- context translation across compaction frontiers ----------------

   The rebased space represents states relative to its own frontier
   ([pruned_to]); contexts cross replica boundaries relative to the
   {e sender's} frontier, so each receive translates.

   c2s: a client's frontier never runs ahead of the server's (clients
   learn stability from the server), so the server only has to {e drop}
   the context's already-compacted identifiers.  Membership in the
   serial table is the test: every identifier in a client context has
   been serialized by the server (the client's own earlier updates by
   c2s FIFO, everything else because the client saw it in a Deliver),
   so an unknown identifier can only be a compacted one.

   s2c: the server's frontier at broadcast time ([Deliver.base]) may
   run ahead of the receiving client's, so the client {e widens} the
   context with the operations between its own frontier and [base] —
   all present in its serial log, because [base] only covers serials
   every client acknowledged and s2c FIFO delivered them here first. *)

let narrow_ctx r ctx = Op_id.Set.filter (Op_id.Table.mem r.serials) ctx

let widen_ctx r ctx ~base =
  let rec go ctx serial =
    if serial > base then ctx
    else
      match Hashtbl.find_opt r.by_serial serial with
      | Some id -> go (Op_id.Set.add id ctx) (serial + 1)
      | None ->
        invalid_arg
          (Printf.sprintf
             "css-pruned: deliver base %d references an unknown serial %d"
             base serial)
  in
  go ctx (r.pruned_to + 1)

let create_client ~fastpath ~nclients ~id ~initial =
  if id < 1 then invalid_arg "css-pruned: client identifiers start at 1";
  {
    id;
    replica = make_replica ~fastpath ~nclients ~initial ~own_client:id;
    next_seq = 1;
    acked = 0;
  }

let create_server ~fastpath ~nclients ~initial =
  {
    nclients;
    server_replica = make_replica ~fastpath ~nclients ~initial ~own_client:0;
    next_serial = 1;
    client_acked = Array.make (nclients + 1) 0;
  }

let client_generate t intent =
  let r = t.replica in
  let { Rlist_sim.Intent_resolver.outcome; op } =
    Rlist_sim.Intent_resolver.resolve ~client:t.id ~seq:t.next_seq ~doc:r.doc
      intent
  in
  match op with
  | None -> outcome, None
  | Some op ->
    t.next_seq <- t.next_seq + 1;
    let ctx = State_space.final r.space in
    process r (Context.with_context op ~ctx);
    outcome, Some (Update { op; ctx; acked = t.acked })

let stable_serial t =
  let stable = ref max_int in
  for i = 1 to t.nclients do
    stable := min !stable t.client_acked.(i)
  done;
  !stable

let server_receive t ~from (msg : c2s) =
  match msg with
  | Update { op; ctx; acked } ->
    t.client_acked.(from) <- max t.client_acked.(from) acked;
    let r = t.server_replica in
    let serial = t.next_serial in
    t.next_serial <- serial + 1;
    record_serial r op.Op.id serial;
    let ctx = narrow_ctx r ctx in
    (* [base] is the frontier [ctx] was narrowed against, captured
       {e before} the prune below advances it.  Soundness: any stable
       point the server computed strictly before processing this
       update is covered by the update's own acknowledgement (the
       origin's acks are monotone and c2s is FIFO), so the absolute
       context covers [base] — which is exactly what the receiver's
       widening assumes.  The {e post}-prune frontier does not have
       this property: acknowledgements piggybacked on later updates of
       the same batch can push stability past what this context ever
       saw, and advertising that frontier would make the receiver
       widen operations into the context that were never in it. *)
    let base = r.pruned_to in
    process r (Context.with_context op ~ctx);
    let stable = stable_serial t in
    prune r ~stable;
    List.init t.nclients (fun i ->
        i + 1, Deliver { op; ctx; serial; origin = from; stable; base })
  | Heartbeat { acked } ->
    t.client_acked.(from) <- max t.client_acked.(from) acked;
    let stable = stable_serial t in
    if stable > t.server_replica.pruned_to then begin
      prune t.server_replica ~stable;
      List.init t.nclients (fun i -> i + 1, Stable { stable })
    end
    else []

let client_receive t (msg : s2c) =
  match msg with
  | Deliver { op; ctx; serial; origin; stable; base } ->
    let r = t.replica in
    record_serial r op.Op.id serial;
    if origin <> t.id then begin
      let ctx = widen_ctx r ctx ~base in
      process r (Context.with_context op ~ctx)
    end;
    t.acked <- max t.acked serial;
    prune r ~stable
  | Stable { stable } -> prune t.replica ~stable

let client_heartbeat t = Heartbeat { acked = t.acked }

(* Batched delivery.  A batch of updates is stamped upfront, walked
   through the ladder as one run (State_space.add_run), and pruned
   once; the emitted [Deliver]s all carry the post-batch stable serial
   — stability only grows, and the acknowledgements it is computed
   from were genuinely received, so the earlier messages advertising a
   slightly later stable point is sound.  Mixed batches (heartbeats
   interleaved) fall back to the one-by-one fold. *)
let server_receive_batch t ~from batch =
  let updates =
    List.filter_map
      (function Update { op; ctx; acked } -> Some (op, ctx, acked) | _ -> None)
      batch
  in
  if List.length updates <> List.length batch then
    List.concat_map (fun msg -> server_receive t ~from msg) batch
  else begin
    let r = t.server_replica in
    let stamped =
      List.map
        (fun (op, ctx, acked) ->
          t.client_acked.(from) <- max t.client_acked.(from) acked;
          let serial = t.next_serial in
          t.next_serial <- serial + 1;
          record_serial r op.Rlist_ot.Op.id serial;
          op, narrow_ctx r ctx, serial)
        updates
    in
    (* As in {!server_receive}: the broadcast base is the stamp-time
       frontier, captured before the batch's acks advance it — the
       batch's later acknowledgements can push stability past what its
       earlier contexts cover. *)
    let base = r.pruned_to in
    let forms =
      State_space.add_run r.space
        (List.map (fun (op, ctx, _) -> Context.with_context op ~ctx) stamped)
    in
    List.iter (fun form -> r.doc <- Op.apply form r.doc) forms;
    let stable = stable_serial t in
    prune r ~stable;
    List.concat_map
      (fun (op, ctx, serial) ->
        List.init t.nclients (fun i ->
            i + 1, Deliver { op; ctx; serial; origin = from; stable; base }))
      stamped
  end

let client_receive_batch t batch =
  let r = t.replica in
  List.iter
    (function
      | Deliver { op; serial; _ } -> record_serial r op.Op.id serial
      | Stable _ -> ())
    batch;
  let foreign =
    List.filter_map
      (function
        | Deliver { op; ctx; origin; base; _ } when origin <> t.id ->
          Some (Context.with_context op ~ctx:(widen_ctx r ctx ~base))
        | _ -> None)
      batch
  in
  (match foreign with
  | [] -> ()
  | _ :: _ ->
    let forms = State_space.add_run r.space foreign in
    List.iter (fun form -> r.doc <- Op.apply form r.doc) forms);
  let stable =
    List.fold_left
      (fun acc -> function
        | Deliver { serial; stable; _ } ->
          t.acked <- max t.acked serial;
          max acc stable
        | Stable { stable } -> max acc stable)
      r.pruned_to batch
  in
  prune r ~stable

let c2s_op_id : c2s -> Op_id.t option = function
  | Update { op; _ } -> Some op.Op.id
  | Heartbeat _ -> None

let s2c_op_id : s2c -> Op_id.t option = function
  | Deliver { op; _ } -> Some op.Op.id
  | Stable _ -> None

let client_document t = t.replica.doc

let server_document t = t.server_replica.doc

(* The absolute visible set (Definition 4.5): the rebased space's
   final state covers only the live window, so the compacted prefix is
   reconstructed from the per-client stable watermarks.  O(total ops)
   per call — the spec checker's and history mode's price, never paid
   on the message path. *)
let absolute r set =
  let abs = ref set in
  Array.iteri
    (fun c m ->
      if c > 0 then
        for seq = 1 to m do
          abs := Op_id.Set.add (Op_id.make ~client:c ~seq) !abs
        done)
    r.stable_seqs;
  !abs

let client_visible t = absolute t.replica (State_space.final t.replica.space)

let server_visible t =
  absolute t.server_replica (State_space.final t.server_replica.space)

let client_ot_count t = State_space.ot_count t.replica.space

let server_ot_count t = State_space.ot_count t.server_replica.space

let client_metadata_size t = State_space.size t.replica.space

let server_metadata_size t = State_space.size t.server_replica.space

let client_space t = t.replica.space

let server_space t = t.server_replica.space

let client_pruned_to t = t.replica.pruned_to

let server_pruned_to t = t.server_replica.pruned_to

let server_log_length t = t.next_serial - 1 - t.server_replica.pruned_to

(* The server's stable snapshot: the document at the space's root (the
   stable state — every replica has executed everything in it) plus
   the serial it covers.  This is the Raft snapshot at the
   log-truncation point: snapshot + retained log suffix reconstructs
   the replica. *)
let server_snapshot t =
  Snapshot.stable_to_string
    {
      Snapshot.at_serial = t.server_replica.pruned_to;
      stable_doc = t.server_replica.base_doc;
    }

let gc_support =
  Some
    {
      Rlist_sim.Protocol_intf.gc_heartbeat = client_heartbeat;
      gc_client_frontier = client_pruned_to;
      gc_server_frontier = server_pruned_to;
      gc_server_lag = server_log_length;
      gc_snapshot = server_snapshot;
    }
