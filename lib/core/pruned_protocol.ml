open Rlist_model
open Rlist_ot

let name = "css-pruned"

let server_is_replica = true

type c2s =
  | Update of {
      op : Op.t;
      ctx : Context.t;
      acked : int;
    }
  | Heartbeat of { acked : int }

type s2c =
  | Deliver of {
      op : Op.t;
      ctx : Context.t;
      serial : int;
      origin : int;
      stable : int;
    }
  | Stable of { stable : int }

type replica = {
  space : State_space.t;
  serials : int Op_id.Table.t;
  by_serial : (int, Op_id.t) Hashtbl.t;
  mutable doc : Document.t;
  mutable base_doc : Document.t;  (* document at the space's root *)
  mutable pruned_to : int;
}

type client = {
  id : int;
  replica : replica;
  mutable next_seq : int;
  mutable acked : int;  (* highest serial processed *)
}

type server = {
  nclients : int;
  server_replica : replica;
  mutable next_serial : int;
  client_acked : int array;  (* per-client acknowledged serial *)
}

let make_replica ~initial ~own_client =
  let serials = Op_id.Table.create 64 in
  let key_of id =
    match Op_id.Table.find_opt serials id with
    | Some serial -> Order_key.Serialized serial
    | None ->
      if id.Op_id.client = own_client then Order_key.Pending id.Op_id.seq
      else
        invalid_arg
          (Format.asprintf
             "css-pruned replica %d: no order key for foreign operation %a"
             own_client Op_id.pp id)
  in
  {
    space = State_space.create ~key_of ();
    serials;
    by_serial = Hashtbl.create 64;
    doc = initial;
    base_doc = initial;
    pruned_to = 0;
  }

let record_serial r id serial =
  Op_id.Table.replace r.serials id serial;
  Hashtbl.replace r.by_serial serial id

let process r (oc : Context.op_in_context) =
  let form = State_space.add_op r.space oc in
  r.doc <- Op.apply form r.doc

(* Compact the replica's space onto the state holding every operation
   with serial <= [stable]. *)
let prune r ~stable =
  if stable > r.pruned_to then begin
    let stable_state =
      let rec extend state serial =
        if serial > stable then state
        else
          match Hashtbl.find_opt r.by_serial serial with
          | Some id -> extend (Op_id.Set.add id state) (serial + 1)
          | None ->
            invalid_arg
              (Printf.sprintf
                 "css-pruned: stable serial %d references an unknown \
                  operation %d"
                 stable serial)
      in
      extend (State_space.root r.space) (r.pruned_to + 1)
    in
    r.base_doc <-
      State_space.compact r.space ~stable:stable_state ~base_doc:r.base_doc;
    r.pruned_to <- stable
  end

let create_client ~nclients ~id ~initial =
  ignore nclients;
  if id < 1 then invalid_arg "css-pruned: client identifiers start at 1";
  { id; replica = make_replica ~initial ~own_client:id; next_seq = 1; acked = 0 }

let create_server ~nclients ~initial =
  {
    nclients;
    server_replica = make_replica ~initial ~own_client:0;
    next_serial = 1;
    client_acked = Array.make (nclients + 1) 0;
  }

let client_generate t intent =
  let r = t.replica in
  let { Rlist_sim.Intent_resolver.outcome; op } =
    Rlist_sim.Intent_resolver.resolve ~client:t.id ~seq:t.next_seq ~doc:r.doc
      intent
  in
  match op with
  | None -> outcome, None
  | Some op ->
    t.next_seq <- t.next_seq + 1;
    let ctx = State_space.final r.space in
    process r (Context.with_context op ~ctx);
    outcome, Some (Update { op; ctx; acked = t.acked })

let stable_serial t =
  let stable = ref max_int in
  for i = 1 to t.nclients do
    stable := min !stable t.client_acked.(i)
  done;
  !stable

let server_receive t ~from (msg : c2s) =
  match msg with
  | Update { op; ctx; acked } ->
    t.client_acked.(from) <- max t.client_acked.(from) acked;
    let serial = t.next_serial in
    t.next_serial <- serial + 1;
    record_serial t.server_replica op.Op.id serial;
    process t.server_replica (Context.with_context op ~ctx);
    let stable = stable_serial t in
    prune t.server_replica ~stable;
    List.init t.nclients (fun i ->
        i + 1, Deliver { op; ctx; serial; origin = from; stable })
  | Heartbeat { acked } ->
    t.client_acked.(from) <- max t.client_acked.(from) acked;
    let stable = stable_serial t in
    if stable > t.server_replica.pruned_to then begin
      prune t.server_replica ~stable;
      List.init t.nclients (fun i -> i + 1, Stable { stable })
    end
    else []

let client_receive t (msg : s2c) =
  match msg with
  | Deliver { op; ctx; serial; origin; stable } ->
    let r = t.replica in
    record_serial r op.Op.id serial;
    if origin <> t.id then process r (Context.with_context op ~ctx);
    t.acked <- max t.acked serial;
    prune r ~stable
  | Stable { stable } -> prune t.replica ~stable

let client_heartbeat t = Heartbeat { acked = t.acked }

(* Batched delivery.  A batch of updates is stamped upfront, walked
   through the ladder as one run (State_space.add_run), and pruned
   once; the emitted [Deliver]s all carry the post-batch stable serial
   — stability only grows, and the acknowledgements it is computed
   from were genuinely received, so the earlier messages advertising a
   slightly later stable point is sound.  Mixed batches (heartbeats
   interleaved) fall back to the one-by-one fold. *)
let server_receive_batch t ~from batch =
  let updates =
    List.filter_map
      (function Update { op; ctx; acked } -> Some (op, ctx, acked) | _ -> None)
      batch
  in
  if List.length updates <> List.length batch then
    List.concat_map (fun msg -> server_receive t ~from msg) batch
  else begin
    let stamped =
      List.map
        (fun (op, ctx, acked) ->
          t.client_acked.(from) <- max t.client_acked.(from) acked;
          let serial = t.next_serial in
          t.next_serial <- serial + 1;
          record_serial t.server_replica op.Rlist_ot.Op.id serial;
          op, ctx, serial)
        updates
    in
    let r = t.server_replica in
    let forms =
      State_space.add_run r.space
        (List.map (fun (op, ctx, _) -> Context.with_context op ~ctx) stamped)
    in
    List.iter (fun form -> r.doc <- Op.apply form r.doc) forms;
    let stable = stable_serial t in
    prune r ~stable;
    List.concat_map
      (fun (op, ctx, serial) ->
        List.init t.nclients (fun i ->
            i + 1, Deliver { op; ctx; serial; origin = from; stable }))
      stamped
  end

let client_receive_batch t batch =
  let r = t.replica in
  List.iter
    (function
      | Deliver { op; serial; _ } -> record_serial r op.Op.id serial
      | Stable _ -> ())
    batch;
  let foreign =
    List.filter_map
      (function
        | Deliver { op; ctx; origin; _ } when origin <> t.id ->
          Some (Context.with_context op ~ctx)
        | _ -> None)
      batch
  in
  (match foreign with
  | [] -> ()
  | _ :: _ ->
    let forms = State_space.add_run r.space foreign in
    List.iter (fun form -> r.doc <- Op.apply form r.doc) forms);
  let stable =
    List.fold_left
      (fun acc -> function
        | Deliver { serial; stable; _ } ->
          t.acked <- max t.acked serial;
          max acc stable
        | Stable { stable } -> max acc stable)
      r.pruned_to batch
  in
  prune r ~stable

let c2s_op_id : c2s -> Op_id.t option = function
  | Update { op; _ } -> Some op.Op.id
  | Heartbeat _ -> None

let s2c_op_id : s2c -> Op_id.t option = function
  | Deliver { op; _ } -> Some op.Op.id
  | Stable _ -> None

let client_document t = t.replica.doc

let server_document t = t.server_replica.doc

let client_visible t = State_space.final t.replica.space

let server_visible t = State_space.final t.server_replica.space

let client_ot_count t = State_space.ot_count t.replica.space

let server_ot_count t = State_space.ot_count t.server_replica.space

let client_metadata_size t = State_space.size t.replica.space

let server_metadata_size t = State_space.size t.server_replica.space

let client_space t = t.replica.space

let server_space t = t.server_replica.space

let client_pruned_to t = t.replica.pruned_to

let server_pruned_to t = t.server_replica.pruned_to
