open Rlist_model
open Rlist_ot

let name = "css-p2p"

type message =
  | Op_msg of {
      op : Op.t;
      ctx : Context.t;
      ts : int;
    }
  | Clock of int

type buffered = {
  b_op : Op.t;
  b_ctx : Context.t;
  b_ts : int;
  b_origin : int;
}

type peer = {
  id : int;
  npeers : int;
  space : State_space.t;
  order : (int * int) Op_id.Table.t;  (* op id -> (timestamp, origin) *)
  mutable doc : Document.t;
  mutable next_seq : int;
  mutable clock : int;
  heard : int array;  (* highest clock heard per peer *)
  mutable pending : buffered list;  (* sorted by (ts, origin) *)
}

(* The total order (ts, origin) packed into a single serialized key.
   Peer ids are small and positive, so the packing is injective and
   order-preserving. *)
let packed_key ~npeers (ts, origin) = (ts * (npeers + 1)) + origin

let create_peer ~fastpath ~npeers ~id ~initial =
  if id < 1 then invalid_arg "css-p2p: peer identifiers start at 1";
  let order = Op_id.Table.create 64 in
  let key_of op_id =
    match Op_id.Table.find_opt order op_id with
    | Some stamp -> Order_key.Serialized (packed_key ~npeers stamp)
    | None ->
      invalid_arg
        (Format.asprintf "css-p2p peer %d: no timestamp for %a" id Op_id.pp
           op_id)
  in
  {
    id;
    npeers;
    space = State_space.create ~fastpath ~key_of ();
    order;
    doc = initial;
    next_seq = 1;
    clock = 0;
    heard = Array.make (npeers + 1) 0;
    pending = [];
  }

let process t op ctx =
  let form = State_space.add_op t.space (Context.with_context op ~ctx) in
  t.doc <- Op.apply form t.doc

(* An operation is stable once every other peer's heard clock has
   reached its timestamp: anything they send later is stamped strictly
   higher, hence ordered after. *)
let stable t b =
  let ok = ref true in
  for q = 1 to t.npeers do
    if q <> t.id && q <> b.b_origin && t.heard.(q) < b.b_ts then ok := false
  done;
  (* The origin's own later operations are ordered after by FIFO and
     strictly increasing clocks. *)
  !ok

let rec integrate_stable t =
  match t.pending with
  | b :: rest when stable t b ->
    t.pending <- rest;
    process t b.b_op b.b_ctx;
    integrate_stable t
  | _ -> ()

let buffer_compare a b =
  match Int.compare a.b_ts b.b_ts with
  | 0 -> Int.compare a.b_origin b.b_origin
  | c -> c

let insert_buffered t b =
  let rec insert = function
    | [] -> [ b ]
    | x :: rest as all ->
      if buffer_compare b x < 0 then b :: all else x :: insert rest
  in
  t.pending <- insert t.pending

let generate t intent =
  let { Rlist_sim.Intent_resolver.outcome; op } =
    Rlist_sim.Intent_resolver.resolve ~client:t.id ~seq:t.next_seq ~doc:t.doc
      intent
  in
  match op with
  | None -> outcome, None
  | Some op ->
    t.next_seq <- t.next_seq + 1;
    t.clock <- t.clock + 1;
    let ts = t.clock in
    t.heard.(t.id) <- ts;
    Op_id.Table.replace t.order op.Op.id (ts, t.id);
    let ctx = State_space.final t.space in
    process t op ctx;
    outcome, Some (Op_msg { op; ctx; ts })

let receive t ~from message =
  match message with
  | Clock c ->
    t.heard.(from) <- max t.heard.(from) c;
    t.clock <- max t.clock c;
    integrate_stable t;
    None
  | Op_msg { op; ctx; ts } ->
    t.heard.(from) <- max t.heard.(from) ts;
    t.clock <- max t.clock ts + 1;
    Op_id.Table.replace t.order op.Op.id (ts, from);
    insert_buffered t { b_op = op; b_ctx = ctx; b_ts = ts; b_origin = from };
    integrate_stable t;
    (* Announce the advanced clock so the others' stability frontiers
       move past [ts]; Clock messages trigger no reactions, so the
       exchange quiesces. *)
    Some (Clock t.clock)

let message_op_id = function
  | Op_msg { op; _ } -> Some op.Op.id
  | Clock _ -> None

let document t = t.doc

let visible t = State_space.final t.space

let ot_count t = State_space.ot_count t.space

let metadata_size t = State_space.size t.space + List.length t.pending

let buffered t = List.length t.pending

let space t = t.space

(* Batch delivery: integration is per operation here, so a batch is
   the in-order fold, reactions collected in order. *)
let receive_batch t ~from batch =
  List.concat_map (fun msg -> Option.to_list (receive t ~from msg)) batch
