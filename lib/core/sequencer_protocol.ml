open Rlist_model

let name = "css-sequencer"

let server_is_replica = false

type client = Protocol.client

type c2s = Protocol.c2s

type s2c = Protocol.s2c

type server = {
  nclients : int;
  mutable next_serial : int;
  mutable seen : Op_id.Set.t;  (* operations sequenced so far *)
}

let create_client = Protocol.create_client

let create_server ~fastpath:_ ~nclients ~initial =
  ignore initial;
  { nclients; next_serial = 1; seen = Op_id.Set.empty }

let client_generate = Protocol.client_generate

(* The whole center: stamp a serial number and fan out the original
   operation.  No document, no state-space, no OT. *)
let server_receive t ~from ({ op; ctx } : c2s) =
  let serial = t.next_serial in
  t.next_serial <- serial + 1;
  t.seen <- Op_id.Set.add op.Rlist_ot.Op.id t.seen;
  List.init t.nclients (fun i ->
      i + 1, { Protocol.op; ctx; serial; origin = from })

let client_receive = Protocol.client_receive

let server_receive_batch t ~from batch =
  List.concat_map (fun msg -> server_receive t ~from msg) batch

(* The client side is the CSS client, so it inherits the run-at-once
   ladder walk. *)
let client_receive_batch = Protocol.client_receive_batch

let c2s_op_id = Protocol.c2s_op_id

let s2c_op_id = Protocol.s2c_op_id

let client_document = Protocol.client_document

let server_document _ = Document.empty

let client_visible = Protocol.client_visible

let server_visible t = t.seen

let client_ot_count = Protocol.client_ot_count

let server_ot_count _ = 0

let client_metadata_size = Protocol.client_metadata_size

let server_metadata_size _ = 0

let client_space = Protocol.client_space

(* No ack-driven pruning machinery; GC-enabled runs degrade to
   shim-level pruning only. *)
let gc_support = None
