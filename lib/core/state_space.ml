open Rlist_model
open Rlist_ot

(* Fast-path accounting and the opt-in toggle: an engine-scoped
   record ({!Rlist_ot.Fastpath.t}) passed in at {!create} — the
   engine hands the same record to every replica of one run, so the
   counters aggregate per run, while nothing is shared across runs
   (or, under the sharded server, across domains).  Only {!add_run}'s
   append specialization changes any observable number (it skips
   primitive transformations, so [ot_count] drops); the context-match
   shortcut is a pure strength reduction and is always on. *)
module Fastpath = Fastpath

type state = Op_id.Set.t

type transition = {
  orig : Op_id.t;
  form : Op.t;
  target : state;
}

(* Zobrist-style state hashing: a state's hash is the {e sum} of a
   well-mixed per-identifier hash, so the hash of [s + id] is one
   addition away from the hash of [s].  Every state the ladders create
   extends a known node by one operation, which makes node creation
   O(1) in the size of the state — a content hash that folds over the
   whole set would make every square of every ladder O(|state|). *)
let mix x =
  (* splitmix64-style finalizer, constants truncated to OCaml's int. *)
  let x = x * 0x1E3779B97F4A7C15 in
  let x = x lxor (x lsr 31) in
  let x = x * 0x3F58476D1CE4E5B9 in
  x lxor (x lsr 29)

let id_mix id = mix (Op_id.hash id)

let state_hash s = Op_id.Set.fold (fun id acc -> acc + id_mix id) s 0

(* [children] mirrors [transitions] with the target {e nodes}: path
   walks follow pointers instead of re-hashing target states.  The
   mirror is unordered (lookups go through the transition's [orig])
   and its fanout is bounded by the client count. *)
type node = {
  (* [state] and [shash] are mutable for exactly one writer:
     {!compact}'s rebase, which subtracts the newly stable operations
     from every surviving state in place (pointer identity is load-
     bearing — the [children] mirror and [final_node] cache hold node
     pointers). *)
  mutable state : state;
  mutable shash : int;  (* [state_hash state], maintained incrementally *)
  mutable transitions : transition list;  (* sorted, leftmost first *)
  mutable children : (Op_id.t * node) list;
}

type t = {
  (* Buckets keyed by the incremental state hash; the rare same-hash
     states share a bucket and are told apart by set equality.  (The
     generic prefix-sampling [Hashtbl.hash] is defeated by states
     sharing long prefixes; a full content hash is defeated by state
     size.) *)
  nodes : (int, node list) Hashtbl.t;
  mutable nstates : int;
  key_of : Op_id.t -> Order_key.t;
  transform : Op.t -> Op.t -> Op.t;
  (* The append specialization reproduces the arithmetic of the
     standard view-position functions; a space built over any other
     transform (TTF, the broken no-priority variant) must never take
     it. *)
  fast_ok : bool;
  (* The run's fast-path switch and counters, shared with every other
     space of the same engine run. *)
  fp : Fastpath.t;
  (* [fp.baseline] at creation time: recompute node hashes from
     scratch (seed-equivalent cost, benchmark ablation only). *)
  baseline : bool;
  mutable root : state;
  mutable final : state;
  (* Cache of the node holding [final], so the (frequent) additions at
     the final state skip the hash lookup. *)
  mutable final_node : node;
  mutable ot_count : int;
  mutable ntransitions : int;
  (* Growth observer (observability layer): called once per {!add_op}
     with the new final level and the post-growth totals.  [None]
     costs one branch per operation. *)
  mutable observer :
    (level:int -> states:int -> transitions:int -> ots:int -> unit) option;
}

let initial_state = Op_id.Set.empty

let set_eq a b = a == b || Op_id.Set.equal a b

let register t node =
  let bucket =
    match Hashtbl.find_opt t.nodes node.shash with
    | None -> []
    | Some l -> l
  in
  Hashtbl.replace t.nodes node.shash (node :: bucket);
  t.nstates <- t.nstates + 1

(* A state known to be absent (every ladder state contains an
   operation no existing state does): no bucket search.  The
   incrementally maintained [shash] equals [state_hash state]; a
   baseline-mode space discards it and pays the full fold, which is
   what the pre-optimization implementation paid on every square. *)
let fresh_node t ~shash state =
  let shash = if t.baseline then state_hash state else shash in
  let node = { state; shash; transitions = []; children = [] } in
  register t node;
  node

let bucket_find t shash state =
  match Hashtbl.find_opt t.nodes shash with
  | None -> None
  | Some [ n ] -> if set_eq n.state state then Some n else None
  | Some l -> List.find_opt (fun n -> set_eq n.state state) l

(* Every caller either builds an unordered collection, filters by a
   set predicate, or sorts afterwards, so bucket order cannot leak. *)
let fold_nodes t f acc =
  (Hashtbl.fold
     (fun _ l acc -> List.fold_left (fun acc n -> f n acc) acc l)
     t.nodes acc
   [@lint.allow "hashtbl-iter"])

let create ?(transform = Transform.xform) ?fastpath ~key_of () =
  let fp =
    match fastpath with Some fp -> fp | None -> Fastpath.create ()
  in
  let nodes = Hashtbl.create 64 in
  let root_node =
    { state = initial_state; shash = 0; transitions = []; children = [] }
  in
  Hashtbl.replace nodes 0 [ root_node ];
  {
    nodes;
    nstates = 1;
    key_of;
    transform;
    fast_ok = transform == Transform.xform;
    fp;
    baseline = fp.Fastpath.baseline;
    root = initial_state;
    final = initial_state;
    final_node = root_node;
    ot_count = 0;
    ntransitions = 0;
    observer = None;
  }

let root t = t.root

let final t = t.final

let find_node_opt t state = bucket_find t (state_hash state) state

let find_node t state =
  match find_node_opt t state with
  | Some node -> node
  | None ->
    invalid_arg
      (Format.asprintf "State_space: no state matches context %a" Op_id.Set.pp
         state)

let mem_state t state = Option.is_some (find_node_opt t state)

let transitions t state = (find_node t state).transitions

let states t = fold_nodes t (fun node acc -> node.state :: acc) []

let num_states t = t.nstates

(* Maintained incrementally by {!insert_transition} / {!compact}: the
   growth observer reads it after every operation, so the O(states)
   fold is too slow to recompute each time. *)
let num_transitions t = t.ntransitions

let size t = num_states t + num_transitions t

(* Insert a transition among a node's ordered children.  Equal keys
   cannot occur: an operation identifier labels at most one transition
   per state (Lemma 6.3's "parallel transitions" are at distinct
   states).  [tnode] is the node holding [tr.target], recorded in the
   pointer mirror. *)
let insert_transition t node ~tnode tr =
  let key = t.key_of tr.orig in
  let rec insert = function
    | [] -> [ tr ]
    | tr' :: rest as all ->
      if Op_id.equal tr'.orig tr.orig then
        invalid_arg
          (Format.asprintf
             "State_space: operation %a already has a transition from state \
              %a"
             Op_id.pp tr.orig Op_id.Set.pp node.state)
      else if Order_key.compare key (t.key_of tr'.orig) < 0 then tr :: all
      else tr' :: insert rest
  in
  node.transitions <- insert node.transitions;
  node.children <- (tr.orig, tnode) :: node.children;
  t.ntransitions <- t.ntransitions + 1

let child_node node orig =
  let rec find = function
    | [] ->
      invalid_arg
        (Format.asprintf "State_space: transition %a has no recorded target"
           Op_id.pp orig)
    | (o, n) :: rest -> if Op_id.equal o orig then n else find rest
  in
  find node.children

(* The leftmost path with its target nodes, for the internal walks. *)
let leftmost_steps t start node =
  let rec walk node acc =
    match node.transitions with
    | [] ->
      if not (set_eq node.state t.final) then
        invalid_arg
          (Format.asprintf
             "State_space: leftmost path from %a ends at %a, not at the \
              final state %a"
             Op_id.Set.pp start Op_id.Set.pp node.state Op_id.Set.pp t.final);
      List.rev acc
    | leftmost :: _ ->
      let tgt = child_node node leftmost.orig in
      walk tgt ((leftmost, tgt) :: acc)
  in
  walk node []

let leftmost_path t state =
  List.map fst (leftmost_steps t state (find_node t state))

let xform t o1 o2 =
  t.ot_count <- t.ot_count + 1;
  t.transform o1 o2

(* Baseline-mode cost replay (see {!Fastpath.t}'s [baseline]): one probe of
   the node table as the seed performed it — an O(|state|) content
   hash, plus an O(|state|) set equality when the bucket hits.  The
   rewrite either follows the pointer mirror or knows the state is
   fresh, so outside baseline mode these probes never happen. *)
let baseline_probe t state = ignore (bucket_find t (state_hash state) state)

(* The context of a quiescent replica's next operation is its current
   final state: the leftmost path is empty, no transformation can
   happen, and the whole of Algorithm 1 collapses to appending one
   transition at the final node.  The physical-equality test catches
   the common case (protocols pass [final t] through) without paying
   the set comparison. *)
let context_is_final t ctx = ctx == t.final || Op_id.Set.equal ctx t.final

let notify_growth t ~ot_before =
  match t.observer with
  | None -> ()
  | Some notify ->
    notify
      ~level:(Op_id.Set.cardinal t.final)
      ~states:(num_states t) ~transitions:t.ntransitions
      ~ots:(t.ot_count - ot_before)

let add_op t { Context.op; ctx } =
  if Op_id.Set.mem op.Op.id t.final then
    invalid_arg
      (Format.asprintf "State_space: operation %a already processed" Op_id.pp
         op.Op.id);
  let ot_before = t.ot_count in
  let mh = id_mix op.Op.id in
  if context_is_final t ctx then begin
    (* Context-match fast path: O(1) node work, zero transformations,
       and — by Lemma 6.4 — exactly what the generic walk below would
       have produced from an empty leftmost path. *)
    t.fp.Fastpath.context_hits <- t.fp.Fastpath.context_hits + 1;
    let node = t.final_node in
    let final_plus = Op_id.Set.add op.Op.id node.state in
    let fnode = fresh_node t ~shash:(node.shash + mh) final_plus in
    if t.baseline then begin
      (* Seed: leftmost_path + the ladder entry each resolved [ctx]
         through the table, and the final append was a find_or_create. *)
      baseline_probe t ctx;
      baseline_probe t ctx;
      baseline_probe t final_plus
    end;
    insert_transition t node ~tnode:fnode
      { orig = op.Op.id; form = op; target = final_plus };
    t.final_node <- fnode;
    t.final <- final_plus;
    notify_growth t ~ot_before;
    op
  end
  else begin
    let entry = find_node t ctx in
    let path = leftmost_steps t ctx entry in
    if t.baseline then begin
      (* Seed: [ctx] was resolved twice (leftmost_path + the ladder
         entry) and the path walk re-found every step's target. *)
      baseline_probe t ctx;
      baseline_probe t ctx;
      List.iter (fun (tr, _) -> baseline_probe t tr.target) path
    end;
    let o = ref op in
    let src = ref entry in
    (* The node above the current source, [src + op]: fresh in the
       first square, the previous square's upper target afterwards. *)
    let src_plus = ref None in
    (* One "square" of the commuting ladder per step: from the current
       source [s] with leftmost transition [tr : s -> s'], add
       [s -o-> s+o] (in its order among the children of [s]) and
       [s+o -tr{o}-> s'+o], then continue from [s'] with [o{tr}]. *)
    List.iter
      (fun (tr, tgt) ->
        let o_here = !o in
        let s = !src in
        let s_plus =
          match !src_plus with
          | Some n -> n
          | None ->
            fresh_node t ~shash:(s.shash + mh) (Op_id.Set.add op.Op.id s.state)
        in
        insert_transition t s ~tnode:s_plus
          { orig = op.Op.id; form = o_here; target = s_plus.state };
        let tgt_plus =
          fresh_node t ~shash:(tgt.shash + mh)
            (Op_id.Set.add op.Op.id tgt.state)
        in
        if t.baseline then begin
          (* Seed, per square: find_or_create on both upper corners and
             find_node on the step target. *)
          baseline_probe t s_plus.state;
          baseline_probe t tgt_plus.state;
          baseline_probe t tgt.state
        end;
        let tr_form' = xform t tr.form o_here in
        insert_transition t s_plus ~tnode:tgt_plus
          { orig = tr.orig; form = tr_form'; target = tgt_plus.state };
        t.fp.Fastpath.generic_squares <- t.fp.Fastpath.generic_squares + 1;
        o := xform t o_here tr.form;
        src := tgt;
        src_plus := Some tgt_plus)
      path;
    (* [src] is now the final state: record the fully transformed form
       along the last op-labelled transition. *)
    let fnode =
      match !src_plus with
      | Some n -> n
      | None -> assert false (* ctx <> final, so the path was non-empty *)
    in
    if t.baseline then baseline_probe t fnode.state;
    insert_transition t !src ~tnode:fnode
      { orig = op.Op.id; form = !o; target = fnode.state };
    t.final_node <- fnode;
    t.final <- fnode.state;
    notify_growth t ~ot_before;
    !o
  end

(* --- Batched processing --------------------------------------------- *)

(* [extends_by ~prev ctx'] holds when [ctx'] is [prev]'s context
   extended by exactly [prev]'s operation — the shape of two
   operations generated back to back by one replica.  Within one FIFO
   stream contexts grow monotonically, so this test is also how a
   mixed batch is split back into contiguous runs. *)
let extends_by ~prev ctx' =
  Op_id.Set.equal ctx'
    (Op_id.Set.add prev.Context.op.Op.id prev.Context.ctx)

(* Maximal contiguous runs of a batch, order preserved. *)
let segment_runs ops =
  match ops with
  | [] -> []
  | first :: rest ->
    let closed, last =
      List.fold_left
        (fun (closed, seg) oc ->
          match seg with
          | prev :: _ when extends_by ~prev oc.Context.ctx -> closed, oc :: seg
          | _ -> List.rev seg :: closed, [ oc ])
        ([], [ first ]) rest
    in
    List.rev (List.rev last :: closed)

(* A pure append run: [k] insertions at consecutive ascending
   positions ([q] for the first, [q + i] for the [i]-th) — the shape
   the append-log and typing workloads emit.  Returns the start
   position. *)
let run_start_of forms =
  match forms.(0).Op.action with
  | Op.Ins (_, q) ->
    let k = Array.length forms in
    let rec ok i =
      if i >= k then Some q
      else
        match forms.(i).Op.action with
        | Op.Ins (_, p) when p = q + i -> ok (i + 1)
        | Op.Ins _ | Op.Del _ | Op.Nop -> None
    in
    ok 1
  | Op.Del _ | Op.Nop -> None

let shift_by d o =
  match o.Op.action with
  | Op.Ins (e, p) -> Op.make_ins ~id:o.Op.id e (p + d)
  | Op.Del (e, p) -> Op.make_del ~id:o.Op.id e (p + d)
  | Op.Nop -> o

(* Process one contiguous run of [k >= 2] operations with a single
   leftmost-path walk.  The run enters the ladder as [k] stacked
   lanes; every path step advances all lanes at once, inserting
   exactly the transitions the operation-by-operation {!add_op} fold
   would have inserted, with the same forms — the per-square
   recurrences are identical, only their evaluation order changes
   (level-major instead of operation-major), and each square depends
   only on its own neighbours.  [ot_count] is therefore unchanged by
   batching alone.

   The append specialization (enabled by the run's {!Fastpath.t}, valid
   only for the standard view-position transform): when the lanes are
   a pure append run starting at [q] and the path form acts strictly
   outside the run — an insertion at [r <> q], any deletion, or a
   no-op — the whole level resolves by position arithmetic, replacing
   [2k] primitive transformations with [O(k)] shifts that reproduce
   the transform's case analysis exactly (ties at [r = q], where
   element priority decides, fall back to the generic squares). *)
let run_segment t seg =
  List.iter
    (fun { Context.op; _ } ->
      if Op_id.Set.mem op.Op.id t.final then
        invalid_arg
          (Format.asprintf "State_space: operation %a already processed"
             Op_id.pp op.Op.id))
    seg;
  let ot_before = t.ot_count in
  let k = List.length seg in
  let ids = Array.of_list (List.map (fun oc -> oc.Context.op.Op.id) seg) in
  let mixes = Array.map id_mix ids in
  let forms = Array.of_list (List.map (fun oc -> oc.Context.op) seg) in
  let entry_ctx = (List.hd seg).Context.ctx in
  let quiescent = context_is_final t entry_ctx in
  let entry_node =
    if quiescent then t.final_node else find_node t entry_ctx
  in
  let path = if quiescent then [] else leftmost_steps t entry_ctx entry_node in
  if quiescent then
    t.fp.Fastpath.context_hits <- t.fp.Fastpath.context_hits + k;
  (* While [Some q], the lanes form a pure append run starting at [q]. *)
  let run_q =
    ref (if t.fp.Fastpath.enabled && t.fast_ok then run_start_of forms else None)
  in
  (* Entry row: lane nodes [ctx ∪ {o1..oi}], each original operation
     saved along its transition in order (Algorithm 1's first step,
     once per operation of the run).  Every lane state is fresh: it
     contains its operation, which no existing state does. *)
  let entry = Array.make (k + 1) entry_node in
  for i = 1 to k do
    let below = entry.(i - 1) in
    let st = Op_id.Set.add ids.(i - 1) below.state in
    let node = fresh_node t ~shash:(below.shash + mixes.(i - 1)) st in
    insert_transition t below ~tnode:node
      { orig = ids.(i - 1); form = forms.(i - 1); target = st };
    entry.(i) <- node
  done;
  let row = ref entry in
  List.iter
    (fun (tr, tgt) ->
      let prev = !row in
      let next = Array.make (k + 1) entry_node in
      next.(0) <- tgt;
      let fast =
        match !run_q with
        | None -> None
        | Some q -> (
          match tr.form.Op.action with
          | Op.Nop -> Some (0, false)
          | Op.Ins (_, r) ->
            if r < q then Some (1, false)
            else if r > q then Some (0, true)
            else None (* position tie: element priority decides *)
          | Op.Del (_, r) -> if r < q then Some (-1, false) else Some (0, true))
      in
      (match fast with
      | Some (lane_shift, path_shifts) ->
        (* Arithmetic level: the lanes shift together (or not at all)
           and the path form crosses them accumulating one shift per
           insertion it passes. *)
        for i = 1 to k do
          let below = next.(i - 1) in
          let st = Op_id.Set.add ids.(i - 1) below.state in
          let node = fresh_node t ~shash:(below.shash + mixes.(i - 1)) st in
          if lane_shift <> 0 then
            forms.(i - 1) <- shift_by lane_shift forms.(i - 1);
          let f_i = if path_shifts then shift_by i tr.form else tr.form in
          insert_transition t below ~tnode:node
            { orig = ids.(i - 1); form = forms.(i - 1); target = st };
          insert_transition t prev.(i) ~tnode:node
            { orig = tr.orig; form = f_i; target = st };
          next.(i) <- node
        done;
        t.fp.Fastpath.append_hits <- t.fp.Fastpath.append_hits + k;
        run_q := Option.map (fun q -> q + lane_shift) !run_q
      | None ->
        let f = ref tr.form in
        for i = 1 to k do
          let below = next.(i - 1) in
          let st = Op_id.Set.add ids.(i - 1) below.state in
          let node = fresh_node t ~shash:(below.shash + mixes.(i - 1)) st in
          let f' = xform t !f forms.(i - 1) in
          forms.(i - 1) <- xform t forms.(i - 1) !f;
          insert_transition t below ~tnode:node
            { orig = ids.(i - 1); form = forms.(i - 1); target = st };
          insert_transition t prev.(i) ~tnode:node
            { orig = tr.orig; form = f'; target = st };
          f := f';
          next.(i) <- node;
          t.fp.Fastpath.generic_squares <- t.fp.Fastpath.generic_squares + 1
        done;
        (* A tie level transforms lanes individually; the run shape
           may or may not survive. *)
        if Option.is_some !run_q then run_q := run_start_of forms);
      row := next)
    path;
  let last = !row in
  t.final <- last.(k).state;
  t.final_node <- last.(k);
  notify_growth t ~ot_before;
  Array.to_list forms

let add_run t ops =
  List.concat_map
    (fun seg ->
      match seg with
      | [ single ] -> [ add_op t single ]
      | seg -> run_segment t seg)
    (segment_runs ops)

let ot_count t = t.ot_count

let fastpath t = t.fp

let set_observer t notify = t.observer <- Some notify

let compact t ~stable ~base_doc =
  if Option.is_none (find_node_opt t stable) then
    invalid_arg
      (Format.asprintf "State_space.compact: %a is not a state" Op_id.Set.pp
         stable);
  if not (Op_id.Set.subset t.root stable) then
    invalid_arg "State_space.compact: stable state below the current root";
  (* The document at the stable state: the stable operations are the
     first ones in total order, so the leftmost path from the root
     passes through [stable] (Lemma 6.4); replay its prefix. *)
  let rec replay doc node =
    if Op_id.Set.equal node.state stable then doc
    else
      match node.transitions with
      | [] ->
        invalid_arg
          (Format.asprintf
             "State_space.compact: stable state %a not reachable along the \
              leftmost path"
             Op_id.Set.pp stable)
      | leftmost :: _ ->
        if not (Op_id.Set.subset leftmost.target stable) then
          invalid_arg
            (Format.asprintf
               "State_space.compact: %a is not a prefix of the total order"
               Op_id.Set.pp stable)
        else
          replay (Op.apply leftmost.form doc) (child_node node leftmost.orig)
  in
  let stable_doc = replay base_doc (find_node t t.root) in
  (* Drop every state that does not contain the stable set: no future
     context can match it.  (A transition from a surviving state
     targets a superset of it, hence also survives — only the doomed
     nodes' own transitions leave the count.) *)
  let doomed, survivors =
    fold_nodes t
      (fun node (doomed, survivors) ->
        if Op_id.Set.subset stable node.state then doomed, node :: survivors
        else node :: doomed, survivors)
      ([], [])
  in
  List.iter
    (fun node ->
      t.ntransitions <- t.ntransitions - List.length node.transitions)
    doomed;
  (* Rebase the survivors: subtract the stable set from every retained
     state, in place, so set sizes track the live window rather than
     the full operation history — without this, every context lookup
     and state hash would cost O(total ops ever) and a long-running
     replica's per-op latency would grow with its uptime.  The Zobrist
     sum makes the hash update O(|stable|) overall, and the root
     returns to the empty set: states are always relative to the
     current compaction frontier, which is why contexts crossing
     replica boundaries must be translated by the protocol (see
     Pruned_protocol).  The bucket table is rebuilt because the hashes
     changed; node pointers (the [children] mirror, [final_node])
     survive untouched. *)
  let stable_mix = Op_id.Set.fold (fun id acc -> acc + id_mix id) stable 0 in
  Hashtbl.reset t.nodes;
  t.nstates <- 0;
  List.iter
    (fun node ->
      node.state <- Op_id.Set.diff node.state stable;
      node.shash <-
        (if t.baseline then state_hash node.state else node.shash - stable_mix);
      node.transitions <-
        List.map
          (fun tr -> { tr with target = Op_id.Set.diff tr.target stable })
          node.transitions;
      register t node)
    survivors;
  t.root <- initial_state;
  t.final <- Op_id.Set.diff t.final stable;
  stable_doc

let transition_equal a b =
  Op_id.equal a.orig b.orig && Op.equal a.form b.form
  && Op_id.Set.equal a.target b.target

let equal t1 t2 =
  Op_id.Set.equal t1.final t2.final
  && num_states t1 = num_states t2
  && fold_nodes t1
       (fun node acc ->
         acc
         &&
         match bucket_find t2 node.shash node.state with
         | None -> false
         | Some node' ->
           List.length node.transitions = List.length node'.transitions
           && List.for_all2 transition_equal node.transitions node'.transitions)
       true

let of_raw ~key_of ~root ~final assoc =
  let t =
    {
      nodes = Hashtbl.create 64;
      nstates = 0;
      key_of;
      transform = Transform.xform;
      fast_ok = true;
      fp = Fastpath.create ();
      baseline = false;
      root;
      final;
      final_node =
        { state = final; shash = 0; transitions = []; children = [] };
      (* patched below *)
      ot_count = 0;
      ntransitions = 0;
      observer = None;
    }
  in
  List.iter
    (fun (state, _) ->
      let shash = state_hash state in
      if Option.is_some (bucket_find t shash state) then
        invalid_arg
          (Format.asprintf "State_space.of_raw: duplicate state %a"
             Op_id.Set.pp state);
      ignore (fresh_node t ~shash state))
    assoc;
  let require state =
    match find_node_opt t state with
    | Some node -> node
    | None ->
      invalid_arg
        (Format.asprintf "State_space.of_raw: missing state %a" Op_id.Set.pp
           state)
  in
  ignore (require root);
  t.final_node <- require final;
  List.iter
    (fun (state, transitions) ->
      let node = require state in
      List.iter
        (fun tr ->
          let tnode = require tr.target in
          insert_transition t node ~tnode tr)
        transitions)
    assoc;
  t

let union a b =
  let listing space =
    List.map (fun s -> s, (find_node space s).transitions) (states space)
  in
  let merged : transition list Op_id.State_table.t =
    Op_id.State_table.create 64
  in
  let add (state, transitions) =
    let existing =
      Option.value (Op_id.State_table.find_opt merged state) ~default:[]
    in
    let extended =
      List.fold_left
        (fun acc tr ->
          match List.find_opt (fun tr' -> Op_id.equal tr'.orig tr.orig) acc with
          | None -> tr :: acc
          | Some tr' ->
            if transition_equal tr tr' then acc
            else
              invalid_arg
                (Format.asprintf
                   "State_space.union: conflicting transitions for %a at %a"
                   Op_id.pp tr.orig Op_id.Set.pp state))
        existing transitions
    in
    Op_id.State_table.replace merged state extended
  in
  List.iter add (listing a);
  List.iter add (listing b);
  let final =
    if Op_id.Set.cardinal (final a) >= Op_id.Set.cardinal (final b) then
      final a
    else final b
  in
  let assoc =
    Op_id.State_table.fold (fun state trs acc -> (state, trs) :: acc) merged []
  in
  of_raw ~key_of:a.key_of ~root:a.root ~final assoc

let pp_state ppf state =
  if Op_id.Set.is_empty state then Format.pp_print_string ppf "{0}"
  else Op_id.Set.pp ppf state

let pp ppf t =
  let all =
    List.sort
      (fun n1 n2 -> Op_id.Set.compare n1.state n2.state)
      (fold_nodes t (fun node acc -> node :: acc) [])
  in
  let all =
    List.sort
      (fun n1 n2 ->
        Int.compare (Op_id.Set.cardinal n1.state) (Op_id.Set.cardinal n2.state))
      all
  in
  Format.fprintf ppf "@[<v>final: %a@," pp_state t.final;
  List.iter
    (fun node ->
      Format.fprintf ppf "%a:@," pp_state node.state;
      List.iter
        (fun tr ->
          Format.fprintf ppf "  -[%a %a]-> %a@," Op_id.pp tr.orig Op.pp tr.form
            pp_state tr.target)
        node.transitions)
    all;
  Format.fprintf ppf "@]"
