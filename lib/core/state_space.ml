open Rlist_model
open Rlist_ot

type state = Op_id.Set.t

type transition = {
  orig : Op_id.t;
  form : Op.t;
  target : state;
}

type node = {
  state : state;
  mutable transitions : transition list;  (* sorted, leftmost first *)
}

type t = {
  (* Keyed by the state set itself, with a content hash over all
     elements (states share long prefixes, which defeats the generic
     prefix-sampling Hashtbl.hash). *)
  nodes : node Op_id.State_table.t;
  key_of : Op_id.t -> Order_key.t;
  transform : Op.t -> Op.t -> Op.t;
  mutable root : state;
  mutable final : state;
  mutable ot_count : int;
  mutable ntransitions : int;
  (* Growth observer (observability layer): called once per {!add_op}
     with the new final level and the post-growth totals.  [None]
     costs one branch per operation. *)
  mutable observer :
    (level:int -> states:int -> transitions:int -> ots:int -> unit) option;
}

let initial_state = Op_id.Set.empty

let create ?(transform = Transform.xform) ~key_of () =
  let nodes = Op_id.State_table.create 64 in
  Op_id.State_table.add nodes initial_state
    { state = initial_state; transitions = [] };
  {
    nodes;
    key_of;
    transform;
    root = initial_state;
    final = initial_state;
    ot_count = 0;
    ntransitions = 0;
    observer = None;
  }

let root t = t.root

let final t = t.final

let find_node_opt t state = Op_id.State_table.find_opt t.nodes state

let find_node t state =
  match find_node_opt t state with
  | Some node -> node
  | None ->
    invalid_arg
      (Format.asprintf "State_space: no state matches context %a" Op_id.Set.pp
         state)

let find_or_create t state =
  match find_node_opt t state with
  | Some node -> node
  | None ->
    let node = { state; transitions = [] } in
    Op_id.State_table.add t.nodes state node;
    node

let mem_state t state = Option.is_some (find_node_opt t state)

let transitions t state = (find_node t state).transitions

let states t =
  Op_id.State_table.fold (fun _ node acc -> node.state :: acc) t.nodes []

let num_states t = Op_id.State_table.length t.nodes

(* Maintained incrementally by {!insert_transition} / {!compact}: the
   growth observer reads it after every operation, so the O(states)
   fold is too slow to recompute each time. *)
let num_transitions t = t.ntransitions

let size t = num_states t + num_transitions t

(* Insert a transition among a node's ordered children.  Equal keys
   cannot occur: an operation identifier labels at most one transition
   per state (Lemma 6.3's "parallel transitions" are at distinct
   states). *)
let insert_transition t node tr =
  let key = t.key_of tr.orig in
  let rec insert = function
    | [] -> [ tr ]
    | tr' :: rest as all ->
      if Op_id.equal tr'.orig tr.orig then
        invalid_arg
          (Format.asprintf
             "State_space: operation %a already has a transition from state \
              %a"
             Op_id.pp tr.orig Op_id.Set.pp node.state)
      else if Order_key.compare key (t.key_of tr'.orig) < 0 then tr :: all
      else tr' :: insert rest
  in
  node.transitions <- insert node.transitions;
  t.ntransitions <- t.ntransitions + 1

let leftmost_path t state =
  let node = find_node t state in
  let rec walk node acc =
    match node.transitions with
    | [] ->
      if not (Op_id.Set.equal node.state t.final) then
        invalid_arg
          (Format.asprintf
             "State_space: leftmost path from %a ends at %a, not at the \
              final state %a"
             Op_id.Set.pp state Op_id.Set.pp node.state Op_id.Set.pp t.final);
      List.rev acc
    | leftmost :: _ -> walk (find_node t leftmost.target) (leftmost :: acc)
  in
  walk node []

let xform t o1 o2 =
  t.ot_count <- t.ot_count + 1;
  t.transform o1 o2

let add_op t { Context.op; ctx } =
  if Op_id.Set.mem op.Op.id t.final then
    invalid_arg
      (Format.asprintf "State_space: operation %a already processed" Op_id.pp
         op.Op.id);
  let ot_before = t.ot_count in
  let path = leftmost_path t ctx in
  let o = ref op in
  let src = ref (find_node t ctx) in
  (* One "square" of the commuting ladder per step: from the current
     source [s] with leftmost transition [tr : s -> s'], add
     [s -o-> s+o] (in its order among the children of [s]) and
     [s+o -tr{o}-> s'+o], then continue from [s'] with [o{tr}]. *)
  List.iter
    (fun tr ->
      let o_here = !o in
      let s = !src in
      let s_plus = Op_id.Set.add op.Op.id s.state in
      insert_transition t s { orig = op.Op.id; form = o_here; target = s_plus };
      let node_plus = find_or_create t s_plus in
      let target_plus = Op_id.Set.add op.Op.id tr.target in
      let tr_form' = xform t tr.form o_here in
      insert_transition t node_plus
        { orig = tr.orig; form = tr_form'; target = target_plus };
      ignore (find_or_create t target_plus);
      o := xform t o_here tr.form;
      src := find_node t tr.target)
    path;
  (* [src] is now the final state: record the fully transformed form. *)
  let final_plus = Op_id.Set.add op.Op.id !src.state in
  insert_transition t !src { orig = op.Op.id; form = !o; target = final_plus };
  ignore (find_or_create t final_plus);
  t.final <- final_plus;
  (match t.observer with
  | None -> ()
  | Some notify ->
    notify
      ~level:(Op_id.Set.cardinal final_plus)
      ~states:(num_states t) ~transitions:t.ntransitions
      ~ots:(t.ot_count - ot_before));
  !o

let ot_count t = t.ot_count

let set_observer t notify = t.observer <- Some notify

let compact t ~stable ~base_doc =
  if Option.is_none (find_node_opt t stable) then
    invalid_arg
      (Format.asprintf "State_space.compact: %a is not a state" Op_id.Set.pp
         stable);
  if not (Op_id.Set.subset t.root stable) then
    invalid_arg "State_space.compact: stable state below the current root";
  (* The document at the stable state: the stable operations are the
     first ones in total order, so the leftmost path from the root
     passes through [stable] (Lemma 6.4); replay its prefix. *)
  let rec replay doc state =
    if Op_id.Set.equal state stable then doc
    else
      match (find_node t state).transitions with
      | [] ->
        invalid_arg
          (Format.asprintf
             "State_space.compact: stable state %a not reachable along the \
              leftmost path"
             Op_id.Set.pp stable)
      | leftmost :: _ ->
        if not (Op_id.Set.subset leftmost.target stable) then
          invalid_arg
            (Format.asprintf
               "State_space.compact: %a is not a prefix of the total order"
               Op_id.Set.pp stable)
        else replay (Op.apply leftmost.form doc) leftmost.target
  in
  let stable_doc = replay base_doc t.root in
  (* Drop every state that does not contain the stable set: no future
     context can match it.  (A transition from a surviving state
     targets a superset of it, hence also survives — only the doomed
     nodes' own transitions leave the count.) *)
  let doomed =
    Op_id.State_table.fold
      (fun state node acc ->
        if Op_id.Set.subset stable state then acc else (state, node) :: acc)
      t.nodes []
  in
  List.iter
    (fun (state, node) ->
      t.ntransitions <- t.ntransitions - List.length node.transitions;
      Op_id.State_table.remove t.nodes state)
    doomed;
  t.root <- stable;
  stable_doc

let transition_equal a b =
  Op_id.equal a.orig b.orig && Op.equal a.form b.form
  && Op_id.Set.equal a.target b.target

let equal t1 t2 =
  Op_id.Set.equal t1.final t2.final
  && num_states t1 = num_states t2
  && Op_id.State_table.fold
       (fun key node acc ->
         acc
         &&
         match Op_id.State_table.find_opt t2.nodes key with
         | None -> false
         | Some node' ->
           List.length node.transitions = List.length node'.transitions
           && List.for_all2 transition_equal node.transitions node'.transitions)
       t1.nodes true

let of_raw ~key_of ~root ~final assoc =
  let t =
    {
      nodes = Op_id.State_table.create 64;
      key_of;
      transform = Transform.xform;
      root;
      final;
      ot_count = 0;
      ntransitions = 0;
      observer = None;
    }
  in
  List.iter
    (fun (state, _) ->
      if Op_id.State_table.mem t.nodes state then
        invalid_arg
          (Format.asprintf "State_space.of_raw: duplicate state %a"
             Op_id.Set.pp state);
      Op_id.State_table.add t.nodes state { state; transitions = [] })
    assoc;
  let require state =
    if not (Op_id.State_table.mem t.nodes state) then
      invalid_arg
        (Format.asprintf "State_space.of_raw: missing state %a" Op_id.Set.pp
           state)
  in
  require root;
  require final;
  List.iter
    (fun (state, transitions) ->
      let node = Op_id.State_table.find t.nodes state in
      List.iter
        (fun tr ->
          require tr.target;
          insert_transition t node tr)
        transitions)
    assoc;
  t

let union a b =
  let listing space =
    List.map (fun s -> s, (find_node space s).transitions) (states space)
  in
  let merged : transition list Op_id.State_table.t =
    Op_id.State_table.create 64
  in
  let add (state, transitions) =
    let existing =
      Option.value (Op_id.State_table.find_opt merged state) ~default:[]
    in
    let extended =
      List.fold_left
        (fun acc tr ->
          match List.find_opt (fun tr' -> Op_id.equal tr'.orig tr.orig) acc with
          | None -> tr :: acc
          | Some tr' ->
            if transition_equal tr tr' then acc
            else
              invalid_arg
                (Format.asprintf
                   "State_space.union: conflicting transitions for %a at %a"
                   Op_id.pp tr.orig Op_id.Set.pp state))
        existing transitions
    in
    Op_id.State_table.replace merged state extended
  in
  List.iter add (listing a);
  List.iter add (listing b);
  let final =
    if Op_id.Set.cardinal (final a) >= Op_id.Set.cardinal (final b) then
      final a
    else final b
  in
  let assoc =
    Op_id.State_table.fold (fun state trs acc -> (state, trs) :: acc) merged []
  in
  of_raw ~key_of:a.key_of ~root:a.root ~final assoc

let pp_state ppf state =
  if Op_id.Set.is_empty state then Format.pp_print_string ppf "{0}"
  else Op_id.Set.pp ppf state

let pp ppf t =
  let all =
    List.sort
      (fun n1 n2 -> Op_id.Set.compare n1.state n2.state)
      (Op_id.State_table.fold (fun _ node acc -> node :: acc) t.nodes [])
  in
  let all =
    List.sort
      (fun n1 n2 ->
        Int.compare (Op_id.Set.cardinal n1.state) (Op_id.Set.cardinal n2.state))
      all
  in
  Format.fprintf ppf "@[<v>final: %a@," pp_state t.final;
  List.iter
    (fun node ->
      Format.fprintf ppf "%a:@," pp_state node.state;
      List.iter
        (fun tr ->
          Format.fprintf ppf "  -[%a %a]-> %a@," Op_id.pp tr.orig Op.pp tr.form
            pp_state tr.target)
        node.transitions)
    all;
  Format.fprintf ppf "@]"
