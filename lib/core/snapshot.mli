(** Snapshot and restore of CSS clients — crash recovery.

    A client's entire protocol state (document, sequence counter,
    serial table, and the full n-ary ordered state-space with its
    transition forms and ordering) round-trips through a line-oriented
    text format.  A restored client is observationally identical to
    the original: same document, same visible set, and a structurally
    equal state-space, so it continues the session as if nothing
    happened (the test suite feeds both the original and the restored
    client the same messages and compares).

    Pending (unacknowledged) operations are preserved: they are the
    client's own, and their order keys are reconstructed from their
    sequence numbers. *)

val client_to_string : Protocol.client -> string

(** @raise Invalid_argument on malformed input (message names the
    offending line). *)
val client_of_string : string -> Protocol.client

val save_client : path:string -> Protocol.client -> unit

val load_client : path:string -> Protocol.client

(** A stable snapshot — the Raft-style compaction artifact the GC
    driver emits: the document at the acked-stable frontier together
    with the serial it covers.  Everything at or below [at_serial] has
    been executed by every replica, so the snapshot plus the retained
    log suffix reconstructs any replica's state; no state-space ladder
    needs to be serialized. *)
type stable = {
  at_serial : int;
  stable_doc : Rlist_model.Document.t;
}

val stable_to_string : stable -> string

(** @raise Invalid_argument on malformed input (message names the
    offending line). *)
val stable_of_string : string -> stable
