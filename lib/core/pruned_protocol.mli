(** The CSS protocol with acknowledgement-driven state-space pruning —
    the executable answer to the metadata-overhead question the paper's
    conclusion raises.

    Without garbage collection, the n-ary ordered state-space (like the
    CSCW protocol's 2D spaces) grows for the lifetime of the execution
    (benchmark C5).  This variant adds the classic Jupiter remedy:

    - every client piggybacks on its update messages the highest
      serial number it has processed;
    - the server maintains the minimum acknowledged serial across all
      clients — the {e stable} prefix of the total order: every replica
      has processed those operations, and (by FIFO) every operation
      still in flight was generated on a context containing them;
    - the stable serial rides on every broadcast, and each replica
      {!State_space.compact}s its space onto the stable state.

    The protocol is observationally identical to {!Protocol} (the test
    suite replays identical schedules against both); only the metadata
    footprint changes.  The classic caveat applies: a client that never
    generates operations never acknowledges, so the stable prefix — and
    pruning — stalls (benchmark C7 quantifies both situations).  The
    remedy is the explicit heartbeat: {!client_heartbeat} carries the
    client's acknowledgement without an operation, and the server
    answers with a [Stable] notification when the stable prefix
    advances ([test_pruning.ml] exercises the stall and the fix). *)

open Rlist_ot

type c2s =
  | Update of {
      op : Op.t;
      ctx : Context.t;
      acked : int;  (** Highest serial this client has processed. *)
    }
  | Heartbeat of { acked : int }
      (** A bare acknowledgement from a silent client. *)

type s2c =
  | Deliver of {
      op : Op.t;
      ctx : Context.t;
      serial : int;
      origin : int;
      stable : int;  (** Minimum acknowledged serial across clients. *)
      base : int;
          (** The server's compaction frontier [ctx] is relative to.
              Spaces represent states relative to their own frontier
              (see {!State_space.compact}), so the receiving client
              widens [ctx] with the serials between its frontier and
              [base] before the lookup — they are always in its serial
              log, because [base] only ever covers operations every
              client acknowledged. *)
    }
  | Stable of { stable : int }
      (** The stable prefix advanced on acknowledgements alone. *)

include
  Rlist_sim.Protocol_intf.PROTOCOL with type c2s := c2s and type s2c := s2c

(** A heartbeat message for the engine to inject ([Transport.send] via
    the test harness, or any driver with access to the client): carries
    the client's current acknowledgement so a silent client no longer
    stalls everyone's compaction. *)
val client_heartbeat : client -> c2s

val client_space : client -> State_space.t

val server_space : server -> State_space.t

(** The serial up to which this replica has pruned. *)
val client_pruned_to : client -> int

val server_pruned_to : server -> int

(** Serials past the stable frontier — the length of the retained
    serialization log (the WAL suffix that survives truncation). *)
val server_log_length : server -> int

(** The server's stable snapshot ({!Snapshot.stable_to_string}): the
    document at the acked-stable frontier plus the serial it covers.
    The GC driver persists this as the Raft-style compaction
    artifact. *)
val server_snapshot : server -> string
