(** The n-ary ordered state-space (paper, Section 6.1) and the uniform
    operation processing of the CSS protocol (Section 6.2,
    Algorithm 1).

    States are sets of (original) operation identifiers — the
    operations a replica passing through that state has processed
    (Definition 4.5).  A transition between two states is labelled
    with the (original or transformed) operation involved; the
    transitions leaving a state are totally ordered by the server's
    serialization order ({!Order_key}).  Unlike a 2D state-space, a
    state may have up to [n] children (Lemma 6.1).

    {!add_op} implements Algorithm 1: look up the state matching the
    operation's context, save the operation there along the transition
    of the right order, transform it iteratively along the {e leftmost}
    transitions to the final state — arranging every new transition in
    its appropriate order — and return the fully transformed form for
    execution. *)

open Rlist_model
open Rlist_ot

type state = Op_id.Set.t

type transition = {
  orig : Op_id.t;  (** Identity of the (original) operation. *)
  form : Op.t;  (** The possibly-transformed operation labelling this
                    transition. *)
  target : state;
}

type t

(** [create ~key_of ()] builds a state-space containing only the
    initial state [{}].  [key_of] maps an operation identifier to its
    current ordering key; it is consulted at every insertion, so it
    may answer [Pending] early on and [Serialized] later (the relative
    order never changes, see {!Order_key}).

    [transform] is the transformation function driving Algorithm 1's
    ladders (default: the Jupiter view-position functions,
    {!Rlist_ot.Transform.xform}).  Passing a CP2-satisfying function
    (e.g. the TTF functions) makes the space tolerate integration in
    {e any} causally-consistent order, which is what the
    total-order-free adOPTed-style protocol exploits. *)
val create :
  ?transform:(Rlist_ot.Op.t -> Rlist_ot.Op.t -> Rlist_ot.Op.t) ->
  ?fastpath:Rlist_ot.Fastpath.t ->
  key_of:(Op_id.t -> Order_key.t) ->
  unit ->
  t

(** The empty state every space starts from. *)
val initial_state : state

(** The current root of the space.  Always {!initial_state}: states
    are represented {e relative} to the compaction frontier, and
    {!compact} rebases every survivor back onto the empty set.  Kept
    in the signature (rather than hard-coding the constant at call
    sites) so compaction-frontier bookkeeping reads explicitly. *)
val root : t -> state

val final : t -> state

val mem_state : t -> state -> bool

(** Ordered outgoing transitions of a state (leftmost first).
    @raise Invalid_argument if the state is absent. *)
val transitions : t -> state -> transition list

val states : t -> state list

val num_states : t -> int

val num_transitions : t -> int

(** States plus transitions: the replica's metadata footprint. *)
val size : t -> int

(** The operations along the leftmost transitions from [state] to the
    final state — the sequence [L] of Algorithm 1 (empty iff [state]
    is final, Lemma 6.4).
    @raise Invalid_argument if the state is absent. *)
val leftmost_path : t -> state -> transition list

(** [add_op t op_in_ctx] processes one operation per Algorithm 1 and
    returns its fully transformed form [o{L}], which the caller must
    execute on its document.  The final state gains the operation.

    When the operation's context {e is} the current final state (a
    quiescent replica), the leftmost path is empty and the whole
    algorithm collapses to appending one transition — this
    context-match fast path is taken unconditionally (it is a pure
    strength reduction) and counted in the space's {!Fastpath.t}.

    @raise Invalid_argument if no state matches the operation's
    context (a protocol violation), or if the operation was already
    processed. *)
val add_op : t -> Context.op_in_context -> Op.t

(** [add_run t ops] processes a batch of operations — in order — and
    returns their fully transformed forms, in order.  The batch is
    split into maximal {e contiguous} runs (each operation's context
    extends the previous one's by exactly that operation, the shape of
    operations generated back to back by one replica); each run is
    walked through Algorithm 1's ladder with a single leftmost-path
    lookup instead of one per operation.

    The resulting space — states, transitions, forms, and {!ot_count}
    — is identical to folding {!add_op} over the batch: the per-square
    transformation recurrences are the same, only their evaluation
    order changes.  Exception: when the space's {!Fastpath.t} is
    enabled and the space uses the standard transform, runs of consecutive ascending
    insertions (pure appends) resolve path steps by position
    arithmetic, skipping the primitive transformations a fold would
    perform — forms and structure are still identical, but
    {!ot_count} grows more slowly.

    The growth observer is notified once per contiguous run, with the
    run's aggregate transformation count.

    @raise Invalid_argument under the same conditions as {!add_op}. *)
val add_run : t -> Context.op_in_context list -> Op.t list

(** Fast-path configuration and accounting, re-exported from
    {!Rlist_ot.Fastpath}: an engine-scoped record passed to {!create}
    and shared by every space of one engine run — [enabled] switches
    the append specialization of {!add_run} on; the counters attribute
    the speedup ([context_hits] and [append_hits] count operations
    that skipped ladder work, [generic_squares] counts ladder squares
    processed the ordinary way). *)
module Fastpath = Rlist_ot.Fastpath

(** The fast-path record this space was created with ({!create}'s
    [?fastpath], or a private fresh record when none was passed). *)
val fastpath : t -> Fastpath.t

(** Number of primitive transformation-function calls performed by
    this state-space so far. *)
val ot_count : t -> int

(** Install a growth observer (the observability layer's per-level
    hook): after every {!add_op} it receives the new final level
    (operations in the final state), the post-growth totals of states
    and transitions, and the number of primitive OT calls that single
    operation caused.  At most one observer; uninstalled spaces pay
    one branch per operation. *)
val set_observer :
  t ->
  (level:int -> states:int -> transitions:int -> ots:int -> unit) ->
  unit

(** [compact t ~stable ~base_doc] prunes every state that is not a
    superset of [stable], then {e rebases} the survivors: [stable] is
    subtracted from every retained state and transition target, so the
    root returns to the empty set and set sizes track the live window
    rather than the full operation history — the garbage collection
    addressing the metadata-overhead question the paper's conclusion
    raises, and the property that keeps a long-running replica's
    per-op cost flat (an absolute representation would make every
    context hash and lookup O(total ops ever)).  [stable] must be
    safe: every operation context that can still arrive covers it (in
    the pruning protocol, the set of operations acknowledged by every
    client), and after the rebase such contexts must be translated to
    the new frontier before lookup — the pruning protocol's job.
    [base_doc] is the document at the current root; the document at
    the new root is returned.

    @raise Invalid_argument if [stable] is not a state of the space or
    is not reachable from the root along serialized operations. *)
val compact : t -> stable:state -> base_doc:Rlist_model.Document.t ->
  Rlist_model.Document.t

(** Structural equality: same states, and the same ordered transition
    lists (identity, form, and target) at every state.  This is the
    equality of Proposition 6.6. *)
val equal : t -> t -> bool

(** {2 Algebra}

    The paper's second future-work direction is to "algebraically
    manipulate and reason about n-ary ordered state-spaces".  These
    operations support the executable counterparts of Examples 8.2
    and 8.3: taking the union of replica state-spaces {e without} the
    guarantee of Proposition 6.6 produces spaces on which the
    Section 8 lemmas fail. *)

(** [of_raw ~key_of ~root ~final assoc] builds a space from an explicit
    state/transition listing (analysis and testing only — protocol
    spaces are built through {!add_op}).  Transitions are re-sorted by
    [key_of].
    @raise Invalid_argument if [root], [final], or a transition target
    is missing from [assoc], or if a state repeats. *)
val of_raw :
  key_of:(Op_id.t -> Order_key.t) ->
  root:state ->
  final:state ->
  (state * transition list) list ->
  t

(** [union a b] merges two spaces state by state (ordering keys and
    root from [a]; the final state is the larger of the two finals).
    Transitions with the same origin from the same state must agree.
    The result need not satisfy the Section 8 lemmas — that is the
    point of Example 8.2. *)
val union : t -> t -> t

val pp_state : Format.formatter -> state -> unit

val pp : Format.formatter -> t -> unit
