open Rlist_model
open Rlist_ot

type state = State_space.state

let documents t ~initial =
  (* Breadth-first replay from the initial state.  Each state's
     document is computed once; any further path reaching it must
     agree (confluence, from CP1). *)
  let docs : Document.t Op_id.State_table.t = Op_id.State_table.create 64 in
  Op_id.State_table.add docs (State_space.root t) initial;
  let queue = Queue.create () in
  Queue.push (State_space.root t) queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    let doc = Op_id.State_table.find docs s in
    List.iter
      (fun tr ->
        let doc' = Op.apply tr.State_space.form doc in
        match Op_id.State_table.find_opt docs tr.State_space.target with
        | None ->
          Op_id.State_table.add docs tr.State_space.target doc';
          Queue.push tr.State_space.target queue
        | Some existing ->
          if not (Document.equal existing doc') then
            invalid_arg
              (Format.asprintf
                 "Analysis.documents: paths to state %a disagree (%a vs %a) — \
                  the state-space is not confluent"
                 Op_id.Set.pp tr.State_space.target Document.pp existing
                 Document.pp doc'))
      (State_space.transitions t s)
  done;
  List.map
    (fun s -> s, Op_id.State_table.find docs s)
    (State_space.states t)

let document_at t ~initial s =
  match
    List.find_opt (fun (s', _) -> Op_id.Set.equal s s') (documents t ~initial)
  with
  | Some (_, doc) -> doc
  | None ->
    invalid_arg
      (Format.asprintf "Analysis.document_at: unknown state %a" Op_id.Set.pp s)

let all_paths ?(limit = 10_000) t ~src ~dst =
  let count = ref 0 in
  let rec go s acc =
    if Op_id.Set.equal s dst then begin
      incr count;
      if !count > limit then
        invalid_arg "Analysis.all_paths: too many paths";
      [ List.rev acc ]
    end
    else
      List.concat_map
        (fun tr ->
          (* States grow along transitions, so only transitions whose
             target stays below [dst] can be on a path to it. *)
          if Op_id.Set.subset tr.State_space.target dst then
            go tr.State_space.target (tr :: acc)
          else [])
        (State_space.transitions t s)
  in
  go src []

(* Reachability: [s'] is an ancestor of [s] iff a path leads from [s']
   to [s].  Since states are the sets of processed operations and
   transitions only add operations, reachability implies set
   inclusion; we still follow actual transitions (inclusion alone is
   not sufficient, cf. Example 8.2). *)
let descendants t s =
  let seen : unit Op_id.State_table.t = Op_id.State_table.create 16 in
  let rec go s =
    if not (Op_id.State_table.mem seen s) then begin
      Op_id.State_table.add seen s ();
      List.iter
        (fun tr -> go tr.State_space.target)
        (State_space.transitions t s)
    end
  in
  go s;
  seen

let reaches t s1 s2 = Op_id.State_table.mem (descendants t s1) s2

let lowest_common_ancestors t s1 s2 =
  let common =
    List.filter
      (fun s -> reaches t s s1 && reaches t s s2)
      (State_space.states t)
  in
  List.filter
    (fun s ->
      not
        (List.exists
           (fun s' ->
             (not (Op_id.Set.equal s s'))
             && reaches t s s')
           common))
    common

let check_nary t ~nclients =
  let bad =
    List.find_opt
      (fun s -> List.length (State_space.transitions t s) > nclients)
      (State_space.states t)
  in
  match bad with
  | None -> Ok ()
  | Some s ->
    Error
      (Format.asprintf "state %a has %d children, more than the %d clients"
         Op_id.Set.pp s
         (List.length (State_space.transitions t s))
         nclients)

let path_ops path = List.map (fun tr -> tr.State_space.orig) path

let check_simple_paths t =
  let exception Bad of string in
  try
    List.iter
      (fun s ->
        List.iter
          (fun path ->
            let ops = path_ops path in
            let set = Op_id.Set.of_list ops in
            if Op_id.Set.cardinal set <> List.length ops then
              raise
                (Bad
                   (Format.asprintf
                      "a path from the root to %a repeats an operation"
                      Op_id.Set.pp s)))
          (all_paths t ~src:(State_space.root t) ~dst:s))
      (State_space.states t);
    Ok ()
  with Bad msg -> Error msg

let rec all_pairs = function
  | [] -> []
  | x :: rest -> List.map (fun y -> x, y) rest @ all_pairs rest

let check_unique_lca t =
  let exception Bad of string in
  try
    List.iter
      (fun (s1, s2) ->
        match lowest_common_ancestors t s1 s2 with
        | [ _ ] -> ()
        | lcas ->
          raise
            (Bad
               (Format.asprintf "states %a and %a have %d LCAs" Op_id.Set.pp s1
                  Op_id.Set.pp s2 (List.length lcas))))
      (all_pairs (State_space.states t));
    Ok ()
  with Bad msg -> Error msg

let check_disjoint_paths t =
  let exception Bad of string in
  try
    List.iter
      (fun (s1, s2) ->
        match lowest_common_ancestors t s1 s2 with
        | [ lca ] ->
          let ops_to s =
            List.map
              (fun path -> Op_id.Set.of_list (path_ops path))
              (all_paths t ~src:lca ~dst:s)
          in
          List.iter
            (fun o1 ->
              List.iter
                (fun o2 ->
                  if not (Op_id.Set.is_empty (Op_id.Set.inter o1 o2)) then
                    raise
                      (Bad
                         (Format.asprintf
                            "paths from the LCA %a to %a and %a share \
                             operations"
                            Op_id.Set.pp lca Op_id.Set.pp s1 Op_id.Set.pp s2)))
                (ops_to s2))
            (ops_to s1)
        | _ -> () (* reported by check_unique_lca *))
      (all_pairs (State_space.states t));
    Ok ()
  with Bad msg -> Error msg

let check_pairwise_compatibility t ~initial =
  let docs = documents t ~initial in
  let rec go = function
    | [] -> Ok ()
    | ((s1, d1), (s2, d2)) :: rest ->
      if Document.compatible d1 d2 then go rest
      else
        Error
          (Format.asprintf
             "states %a (%a) and %a (%a) are incompatible (Definition 8.2)"
             Op_id.Set.pp s1 Document.pp d1 Op_id.Set.pp s2 Document.pp d2)
  in
  go (all_pairs docs)

let check_all t ~nclients ~initial =
  let ( let* ) = Result.bind in
  let* () = check_nary t ~nclients in
  let* () = check_simple_paths t in
  let* () = check_unique_lca t in
  let* () = check_disjoint_paths t in
  let* () = check_pairwise_compatibility t ~initial in
  Ok ()

type stats = {
  states : int;
  transitions : int;
  depth : int;
  max_branching : int;
  nop_forms : int;
  width_per_level : (int * int) list;
}

let stats t =
  let states = State_space.states t in
  let transitions, max_branching, nop_forms =
    List.fold_left
      (fun (total, widest, nops) s ->
        let outgoing = State_space.transitions t s in
        let nops_here =
          List.length
            (List.filter (fun tr -> Op.is_nop tr.State_space.form) outgoing)
        in
        ( total + List.length outgoing,
          max widest (List.length outgoing),
          nops + nops_here ))
      (0, 0, 0) states
  in
  let widths = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let level = Op_id.Set.cardinal s in
      Hashtbl.replace widths level
        (1 + Option.value (Hashtbl.find_opt widths level) ~default:0))
    states;
  {
    states = List.length states;
    transitions;
    depth = Op_id.Set.cardinal (State_space.final t);
    max_branching;
    nop_forms;
    width_per_level =
      (* Order-insensitive: the fold only collects, the sort fixes the
         order. *)
      List.sort
        (fun (l1, _) (l2, _) -> Int.compare l1 l2)
        ((Hashtbl.fold (fun k v acc -> (k, v) :: acc) widths [])
        [@lint.allow "hashtbl-iter"]);
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>states: %d@,transitions: %d@,depth: %d@,max branching: %d@,nop \
     forms: %d@,width per level: %a@]"
    s.states s.transitions s.depth s.max_branching s.nop_forms
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf (level, width) -> Format.fprintf ppf "%d:%d" level width))
    s.width_per_level
