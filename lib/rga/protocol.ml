open Rlist_model

let name = "rga"

let server_is_replica = true

type rga_op =
  | Rins of {
      elt : Element.t;
      after : Op_id.t option;
      ts : Rga_list.timestamp;
    }
  | Rdel of {
      id : Op_id.t;
      target : Op_id.t;
      ts : Rga_list.timestamp;
    }

let op_id = function
  | Rins { elt; _ } -> elt.Element.id
  | Rdel { id; _ } -> id

let op_ts = function
  | Rins { ts; _ } | Rdel { ts; _ } -> ts

type c2s = { rop : rga_op }

type s2c =
  | Forward of rga_op
  | Ack of Rga_list.timestamp

type client = {
  id : int;
  rga : Rga_list.t;
  mutable next_seq : int;
  mutable visible : Op_id.Set.t;
}

type server = {
  nclients : int;
  srga : Rga_list.t;
  mutable svisible : Op_id.Set.t;
}

let create_client ~fastpath:_ ~nclients ~id ~initial =
  ignore nclients;
  { id; rga = Rga_list.create ~initial; next_seq = 1; visible = Op_id.Set.empty }

let create_server ~fastpath:_ ~nclients ~initial =
  { nclients; srga = Rga_list.create ~initial; svisible = Op_id.Set.empty }

let integrate rga op =
  Rga_list.observe_timestamp rga (op_ts op);
  match op with
  | Rins { elt; after; ts } -> Rga_list.insert rga ~elt ~after ~ts
  | Rdel { target; _ } -> Rga_list.delete rga ~target

let client_generate t intent =
  let doc = Rga_list.document t.rga in
  let doc_length = Document.length doc in
  if not (Intent.valid_for ~doc_length intent) then
    invalid_arg
      (Format.asprintf "RGA client %d: intent %a out of bounds (length %d)"
         t.id Intent.pp intent doc_length);
  let emit rop outcome =
    integrate t.rga rop;
    t.visible <- Op_id.Set.add (op_id rop) t.visible;
    outcome, Some { rop }
  in
  match intent with
  | Intent.Read ->
    ( { Rlist_sim.Protocol_intf.op = Rlist_spec.Event.Do_read; op_id = None },
      None )
  | Intent.Insert (value, pos) ->
    let id = Op_id.make ~client:t.id ~seq:t.next_seq in
    t.next_seq <- t.next_seq + 1;
    let elt = Element.make ~value ~id in
    let after = Rga_list.anchor_of t.rga ~pos in
    let ts = Rga_list.next_timestamp t.rga ~client:t.id in
    emit
      (Rins { elt; after; ts })
      {
        Rlist_sim.Protocol_intf.op = Rlist_spec.Event.Do_ins (elt, pos);
        op_id = Some id;
      }
  | Intent.Delete pos ->
    let elt = Document.nth doc pos in
    let id = Op_id.make ~client:t.id ~seq:t.next_seq in
    t.next_seq <- t.next_seq + 1;
    let ts = Rga_list.next_timestamp t.rga ~client:t.id in
    emit
      (Rdel { id; target = elt.Element.id; ts })
      {
        Rlist_sim.Protocol_intf.op = Rlist_spec.Event.Do_del (elt, pos);
        op_id = Some id;
      }

let server_receive t ~from ({ rop } : c2s) =
  integrate t.srga rop;
  t.svisible <- Op_id.Set.add (op_id rop) t.svisible;
  List.init t.nclients (fun i ->
      let dest = i + 1 in
      if dest = from then dest, Ack (op_ts rop) else dest, Forward rop)

let client_receive t = function
  | Ack ts -> Rga_list.observe_timestamp t.rga ts
  | Forward rop ->
    integrate t.rga rop;
    t.visible <- Op_id.Set.add (op_id rop) t.visible

let c2s_op_id { rop } = Some (op_id rop)

let s2c_op_id = function
  | Forward rop -> Some (op_id rop)
  | Ack _ -> None

let client_document t = Rga_list.document t.rga

let server_document t = Rga_list.document t.srga

let client_visible t = t.visible

let server_visible t = t.svisible

(* CRDTs perform no transformations. *)
let client_ot_count _ = 0

let server_ot_count _ = 0

let client_metadata_size t = Rga_list.size t.rga

let server_metadata_size t = Rga_list.size t.srga

let client_tombstones t = Rga_list.tombstones t.rga

(* Batch delivery: these protocols have no per-run shortcut (CRDT
   integration and 2D-space transformation are inherently per
   operation), so a batch is just the in-order fold. *)
let server_receive_batch t ~from batch =
  List.concat_map (fun msg -> server_receive t ~from msg) batch

let client_receive_batch t batch = List.iter (client_receive t) batch

(* No ack-driven pruning machinery; GC-enabled runs degrade to
   shim-level pruning only. *)
let gc_support = None
