open Rlist_model

let name = "treedoc"

let server_is_replica = true

type treedoc_op =
  | Tins of {
      elt : Element.t;
      at : Tree_path.t;
    }
  | Tdel of {
      id : Op_id.t;
      target : Op_id.t;
    }

let op_id = function
  | Tins { elt; _ } -> elt.Element.id
  | Tdel { id; _ } -> id

type c2s = { top : treedoc_op }

type s2c =
  | Forward of treedoc_op
  | Ack

type client = {
  id : int;
  list : Treedoc_list.t;
  mutable next_seq : int;
  mutable visible : Op_id.Set.t;
}

type server = {
  nclients : int;
  slist : Treedoc_list.t;
  mutable svisible : Op_id.Set.t;
}

let create_client ~fastpath:_ ~nclients ~id ~initial =
  ignore nclients;
  {
    id;
    list = Treedoc_list.create ~site:id ~initial;
    next_seq = 1;
    visible = Op_id.Set.empty;
  }

let create_server ~fastpath:_ ~nclients ~initial =
  {
    nclients;
    slist = Treedoc_list.create ~site:0 ~initial;
    svisible = Op_id.Set.empty;
  }

let integrate list = function
  | Tins { elt; at } -> Treedoc_list.insert list ~elt ~at
  | Tdel { target; _ } -> Treedoc_list.delete list ~target

let client_generate t intent =
  let doc = Treedoc_list.document t.list in
  let { Rlist_sim.Intent_resolver.outcome; op } =
    Rlist_sim.Intent_resolver.resolve ~client:t.id ~seq:t.next_seq ~doc intent
  in
  match op, outcome.Rlist_sim.Protocol_intf.op with
  | None, _ -> outcome, None
  | Some _, Rlist_spec.Event.Do_ins (elt, pos) ->
    t.next_seq <- t.next_seq + 1;
    let at = Treedoc_list.allocate t.list ~pos in
    let top = Tins { elt; at } in
    integrate t.list top;
    t.visible <- Op_id.Set.add elt.Element.id t.visible;
    outcome, Some { top }
  | Some op, Rlist_spec.Event.Do_del (elt, _pos) ->
    t.next_seq <- t.next_seq + 1;
    let top = Tdel { id = op.Rlist_ot.Op.id; target = elt.Element.id } in
    integrate t.list top;
    t.visible <- Op_id.Set.add op.Rlist_ot.Op.id t.visible;
    outcome, Some { top }
  | Some _, Rlist_spec.Event.Do_read -> assert false

let server_receive t ~from ({ top } : c2s) =
  integrate t.slist top;
  t.svisible <- Op_id.Set.add (op_id top) t.svisible;
  List.init t.nclients (fun i ->
      let dest = i + 1 in
      if dest = from then dest, Ack else dest, Forward top)

let client_receive t = function
  | Ack -> ()
  | Forward top ->
    integrate t.list top;
    t.visible <- Op_id.Set.add (op_id top) t.visible

let c2s_op_id { top } = Some (op_id top)

let s2c_op_id = function
  | Forward top -> Some (op_id top)
  | Ack -> None

let client_document t = Treedoc_list.document t.list

let server_document t = Treedoc_list.document t.slist

let client_visible t = t.visible

let server_visible t = t.svisible

let client_ot_count _ = 0

let server_ot_count _ = 0

let client_metadata_size t = Treedoc_list.size t.list

let server_metadata_size t = Treedoc_list.size t.slist

let client_tombstones t = Treedoc_list.tombstones t.list

(* Batch delivery: these protocols have no per-run shortcut (CRDT
   integration and 2D-space transformation are inherently per
   operation), so a batch is just the in-order fold. *)
let server_receive_batch t ~from batch =
  List.concat_map (fun msg -> server_receive t ~from msg) batch

let client_receive_batch t batch = List.iter (client_receive t) batch

(* No ack-driven pruning machinery; GC-enabled runs degrade to
   shim-level pruning only. *)
let gc_support = None
