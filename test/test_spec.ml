(* Tests for the specification framework: traces, the list-order
   digraph, and the three checkers (convergence, weak, strong). *)

open Rlist_model
open Rlist_spec

let a = Helpers.elt ~client:1 ~seq:1 'a'
let b = Helpers.elt ~client:2 ~seq:1 'b'
let x = Helpers.elt ~client:3 ~seq:1 'x'

let id_of e = e.Element.id

let set ids = Op_id.Set.of_list ids

(* A tiny builder for hand-made traces. *)
let event ~eid ~replica ~op ~op_id ~result ~visible =
  Event.make ~eid ~replica:(Replica_id.Client replica) ~op ~op_id
    ~result:(Document.of_elements result) ~visible:(set visible)

let trace ?(initial = Document.empty) events = Trace.make ~initial ~events

(* --- the Check combinators ------------------------------------------- *)

let violation name = Check.violated ~spec:name ~culprits:[] "because"

let test_check_is_satisfied () =
  Alcotest.(check bool) "satisfied" true (Check.is_satisfied Check.Satisfied);
  Alcotest.(check bool)
    "violated" false
    (Check.is_satisfied (violation "spec"))

let test_check_all_first_violation () =
  Alcotest.(check bool) "empty is satisfied" true
    (Check.is_satisfied (Check.all []));
  Alcotest.(check bool) "all satisfied" true
    (Check.is_satisfied
       (Check.all [ (fun () -> Check.Satisfied); (fun () -> Check.Satisfied) ]));
  match
    Check.all
      [
        (fun () -> Check.Satisfied);
        (fun () -> violation "first");
        (fun () -> violation "second");
      ]
  with
  | Check.Violated v ->
    Alcotest.(check string) "first violation wins" "first" v.Check.spec
  | Check.Satisfied -> Alcotest.fail "expected a violation"

let test_check_all_lazy () =
  (* Thunks after the first violation must not be forced. *)
  let forced = ref [] in
  let thunk name result () =
    forced := name :: !forced;
    result
  in
  (match
     Check.all
       [
         thunk "a" Check.Satisfied;
         thunk "b" (violation "b");
         thunk "c" Check.Satisfied;
         thunk "d" (violation "d");
       ]
   with
  | Check.Violated v -> Alcotest.(check string) "b wins" "b" v.Check.spec
  | Check.Satisfied -> Alcotest.fail "expected a violation");
  Alcotest.(check (list string))
    "later thunks not forced" [ "a"; "b" ] (List.rev !forced)

let test_check_pp () =
  let show r = Format.asprintf "%a" Check.pp r in
  Alcotest.(check string) "satisfied" "satisfied" (show Check.Satisfied);
  let rendered = show (violation "weak list specification") in
  Alcotest.(check bool)
    "violation names the spec" true
    (Helpers.contains rendered "weak list specification");
  Alcotest.(check bool)
    "violation carries the reason" true
    (Helpers.contains rendered "because");
  (* Culprit events are listed under a witnesses header. *)
  let e =
    event ~eid:1 ~replica:1 ~op:(Event.Do_ins (a, 0)) ~op_id:(Some (id_of a))
      ~result:[ a ] ~visible:[]
  in
  let with_culprits =
    show (Check.violated ~spec:"s" ~culprits:[ e ] "boom")
  in
  Alcotest.(check bool)
    "witnesses are printed" true
    (Helpers.contains with_culprits "witnesses")

(* --- Event and trace basics ------------------------------------------ *)

let test_event_invariants () =
  Alcotest.(check bool)
    "update without id rejected" true
    (try
       ignore
         (event ~eid:0 ~replica:1 ~op:(Event.Do_ins (a, 0)) ~op_id:None
            ~result:[ a ] ~visible:[ id_of a ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "read with id rejected" true
    (try
       ignore
         (event ~eid:0 ~replica:1 ~op:Event.Do_read ~op_id:(Some (id_of a))
            ~result:[] ~visible:[]);
       false
     with Invalid_argument _ -> true)

let good_two_client_trace () =
  (* c1 inserts a; c2 inserts b; each then reads after receiving the
     other's update; both converge on [a; b]. *)
  [
    event ~eid:0 ~replica:1
      ~op:(Event.Do_ins (a, 0))
      ~op_id:(Some (id_of a)) ~result:[ a ] ~visible:[ id_of a ];
    event ~eid:1 ~replica:2
      ~op:(Event.Do_ins (b, 0))
      ~op_id:(Some (id_of b)) ~result:[ b ] ~visible:[ id_of b ];
    event ~eid:2 ~replica:1 ~op:Event.Do_read ~op_id:None ~result:[ a; b ]
      ~visible:[ id_of a; id_of b ];
    event ~eid:3 ~replica:2 ~op:Event.Do_read ~op_id:None ~result:[ a; b ]
      ~visible:[ id_of a; id_of b ];
  ]

let test_trace_accessors () =
  let t = trace (good_two_client_trace ()) in
  Alcotest.(check int) "updates" 2 (List.length (Trace.updates t));
  Alcotest.(check int) "reads" 2 (List.length (Trace.reads t));
  Alcotest.(check int) "elems" 2 (List.length (Trace.elems t));
  Alcotest.(check bool)
    "inserted_element finds a" true
    (match Trace.inserted_element t (id_of a) with
    | Some e -> Element.equal e a
    | None -> false)

let test_trace_initial_elements () =
  let init = Document.of_string "xy" in
  let t = trace ~initial:init [] in
  Alcotest.(check int) "initial elems counted" 2 (List.length (Trace.elems t));
  Alcotest.(check bool)
    "initial element resolvable" true
    (Trace.inserted_element t (Op_id.initial ~seq:1) <> None)

let test_validate_good () =
  match Trace.validate (trace (good_two_client_trace ())) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected valid trace: %s" e

let test_validate_bad_eids () =
  let events =
    [
      event ~eid:5 ~replica:1
        ~op:(Event.Do_ins (a, 0))
        ~op_id:(Some (id_of a)) ~result:[ a ] ~visible:[ id_of a ];
    ]
  in
  Alcotest.(check bool)
    "wrong eid rejected" true
    (Result.is_error (Trace.validate (trace events)))

let test_validate_not_self_visible () =
  let events =
    [
      event ~eid:0 ~replica:1
        ~op:(Event.Do_ins (a, 0))
        ~op_id:(Some (id_of a)) ~result:[ a ] ~visible:[];
    ]
  in
  Alcotest.(check bool)
    "update not visible to itself rejected" true
    (Result.is_error (Trace.validate (trace events)))

let test_validate_unknown_visible () =
  let events =
    [
      event ~eid:0 ~replica:1 ~op:Event.Do_read ~op_id:None ~result:[]
        ~visible:[ id_of b ];
    ]
  in
  Alcotest.(check bool)
    "unknown visible id rejected" true
    (Result.is_error (Trace.validate (trace events)))

let test_validate_shrinking_visibility () =
  let events =
    [
      event ~eid:0 ~replica:1
        ~op:(Event.Do_ins (a, 0))
        ~op_id:(Some (id_of a)) ~result:[ a ] ~visible:[ id_of a ];
      event ~eid:1 ~replica:1 ~op:Event.Do_read ~op_id:None ~result:[]
        ~visible:[];
    ]
  in
  Alcotest.(check bool)
    "per-replica visibility must grow" true
    (Result.is_error (Trace.validate (trace events)))

(* --- List order ------------------------------------------------------ *)

let test_list_order_acyclic () =
  let g =
    List_order.of_documents
      [ Document.of_elements [ a; b ]; Document.of_elements [ b; x ] ]
  in
  Alcotest.(check int) "nodes" 3 (List_order.num_nodes g);
  Alcotest.(check bool) "a->b" true (List_order.mem_edge g a b);
  Alcotest.(check bool) "no b->a" false (List_order.mem_edge g b a);
  Alcotest.(check bool) "acyclic" true (List_order.find_cycle g = None);
  match List_order.linear_extension g with
  | None -> Alcotest.fail "expected a linear extension"
  | Some order ->
    let pos e =
      let rec go i = function
        | [] -> -1
        | y :: rest -> if Element.equal y e then i else go (i + 1) rest
      in
      go 0 order
    in
    Alcotest.(check bool) "a before b" true (pos a < pos b);
    Alcotest.(check bool) "b before x" true (pos b < pos x)

let test_list_order_cycle () =
  (* The Figure 7 cycle: (a,x), (x,b), (b,a). *)
  let g =
    List_order.of_documents
      [
        Document.of_elements [ a; x ];
        Document.of_elements [ x; b ];
        Document.of_elements [ b; a ];
      ]
  in
  (match List_order.find_cycle g with
  | Some cycle ->
    Alcotest.(check bool) "cycle length >= 2" true (List.length cycle >= 2)
  | None -> Alcotest.fail "expected a cycle");
  Alcotest.(check bool)
    "no linear extension" true
    (List_order.linear_extension g = None)

let test_first_incompatible () =
  let d1 = Document.of_elements [ a; b ] in
  let d2 = Document.of_elements [ b; a ] in
  let d3 = Document.of_elements [ a; x ] in
  (match List_order.first_incompatible [ d3; d1; d2 ] with
  | Some (_, _, e1, e2) ->
    Alcotest.(check bool)
      "witnesses are a and b" true
      ((Element.equal e1 a && Element.equal e2 b)
      || (Element.equal e1 b && Element.equal e2 a))
  | None -> Alcotest.fail "expected an incompatible pair");
  Alcotest.(check bool)
    "compatible family" true
    (List_order.first_incompatible [ d1; d3 ] = None)

(* --- Convergence ----------------------------------------------------- *)

let test_convergence_satisfied () =
  Helpers.check_satisfied "convergence"
    (Convergence.check (trace (good_two_client_trace ())))

let test_convergence_violated () =
  let events =
    [
      event ~eid:0 ~replica:1
        ~op:(Event.Do_ins (a, 0))
        ~op_id:(Some (id_of a)) ~result:[ a ] ~visible:[ id_of a ];
      event ~eid:1 ~replica:2
        ~op:(Event.Do_ins (b, 0))
        ~op_id:(Some (id_of b)) ~result:[ b ] ~visible:[ id_of b ];
      event ~eid:2 ~replica:1 ~op:Event.Do_read ~op_id:None ~result:[ a; b ]
        ~visible:[ id_of a; id_of b ];
      event ~eid:3 ~replica:2 ~op:Event.Do_read ~op_id:None ~result:[ b; a ]
        ~visible:[ id_of a; id_of b ];
    ]
  in
  Helpers.check_violated "diverging reads" (Convergence.check (trace events))

let test_convergence_ignores_reads_with_different_views () =
  (* Reads with different visible sets are allowed to differ. *)
  let events =
    [
      event ~eid:0 ~replica:1
        ~op:(Event.Do_ins (a, 0))
        ~op_id:(Some (id_of a)) ~result:[ a ] ~visible:[ id_of a ];
      event ~eid:1 ~replica:1 ~op:Event.Do_read ~op_id:None ~result:[ a ]
        ~visible:[ id_of a ];
      event ~eid:2 ~replica:2 ~op:Event.Do_read ~op_id:None ~result:[]
        ~visible:[];
    ]
  in
  Helpers.check_satisfied "different views" (Convergence.check (trace events))

(* --- Condition 1 ----------------------------------------------------- *)

let test_content_violation_missing () =
  (* The read should contain the visible a but returns empty. *)
  let events =
    [
      event ~eid:0 ~replica:1
        ~op:(Event.Do_ins (a, 0))
        ~op_id:(Some (id_of a)) ~result:[ a ] ~visible:[ id_of a ];
      event ~eid:1 ~replica:1 ~op:Event.Do_read ~op_id:None ~result:[]
        ~visible:[ id_of a ];
    ]
  in
  Helpers.check_violated "missing element"
    (Conditions.check_content (trace events))

let test_content_violation_deleted_still_present () =
  let da = Op_id.make ~client:1 ~seq:2 in
  let events =
    [
      event ~eid:0 ~replica:1
        ~op:(Event.Do_ins (a, 0))
        ~op_id:(Some (id_of a)) ~result:[ a ] ~visible:[ id_of a ];
      event ~eid:1 ~replica:1
        ~op:(Event.Do_del (a, 0))
        ~op_id:(Some da)
        ~result:[ a ] (* bug: a still present *)
        ~visible:[ id_of a; da ];
    ]
  in
  Helpers.check_violated "deleted element still present"
    (Conditions.check_content (trace events))

let test_content_with_initial () =
  (* Initial elements count as inserted and visible to everyone. *)
  let init = Document.of_string "q" in
  let q = Document.nth init 0 in
  let events =
    [
      event ~eid:0 ~replica:1 ~op:Event.Do_read ~op_id:None ~result:[ q ]
        ~visible:[];
    ]
  in
  Helpers.check_satisfied "initial element expected"
    (Conditions.check_content (trace ~initial:init events))

let test_insert_position_ok_and_violated () =
  let events_ok =
    [
      event ~eid:0 ~replica:1
        ~op:(Event.Do_ins (a, 0))
        ~op_id:(Some (id_of a)) ~result:[ a; b ]
        ~visible:[ id_of a; id_of b ];
    ]
  in
  Helpers.check_satisfied "landed at 0"
    (Conditions.check_insert_position (trace events_ok));
  let events_bad =
    [
      event ~eid:0 ~replica:1
        ~op:(Event.Do_ins (a, 0))
        ~op_id:(Some (id_of a)) ~result:[ b; a ]
        ~visible:[ id_of a; id_of b ];
    ]
  in
  Helpers.check_violated "landed at 1 instead of 0"
    (Conditions.check_insert_position (trace events_bad))

let test_insert_position_clamped () =
  (* Condition 1c clamps the index: Ins(a, 5) into a 2-element result
     must land at min(5, n-1). *)
  let events =
    [
      event ~eid:0 ~replica:1
        ~op:(Event.Do_ins (a, 5))
        ~op_id:(Some (id_of a)) ~result:[ b; a ]
        ~visible:[ id_of a; id_of b ];
    ]
  in
  Helpers.check_satisfied "clamped index"
    (Conditions.check_insert_position (trace events))

let test_no_duplicates () =
  let events =
    [
      event ~eid:0 ~replica:1 ~op:Event.Do_read ~op_id:None ~result:[ a; a ]
        ~visible:[ id_of a ];
    ]
  in
  Helpers.check_violated "duplicated element"
    (Conditions.check_no_duplicates (trace events))

(* --- Weak vs strong -------------------------------------------------- *)

(* A figure-7-shaped trace: x inserted then deleted; a and b inserted
   concurrently around it; intermediate reads pin (a,x) and (x,b);
   the final state is [b; a]. *)
let figure7_shaped_trace () =
  let dx = Op_id.make ~client:3 ~seq:2 in
  let all = [ id_of x; dx; id_of a; id_of b ] in
  [
    event ~eid:0 ~replica:3
      ~op:(Event.Do_ins (x, 0))
      ~op_id:(Some (id_of x)) ~result:[ x ] ~visible:[ id_of x ];
    event ~eid:1 ~replica:1
      ~op:(Event.Do_ins (a, 0))
      ~op_id:(Some (id_of a)) ~result:[ a; x ] ~visible:[ id_of x; id_of a ];
    event ~eid:2 ~replica:2
      ~op:(Event.Do_ins (b, 1))
      ~op_id:(Some (id_of b)) ~result:[ x; b ] ~visible:[ id_of x; id_of b ];
    event ~eid:3 ~replica:3
      ~op:(Event.Do_del (x, 0))
      ~op_id:(Some dx) ~result:[] ~visible:[ id_of x; dx ];
    event ~eid:4 ~replica:1 ~op:Event.Do_read ~op_id:None ~result:[ b; a ]
      ~visible:all;
    event ~eid:5 ~replica:2 ~op:Event.Do_read ~op_id:None ~result:[ b; a ]
      ~visible:all;
    event ~eid:6 ~replica:3 ~op:Event.Do_read ~op_id:None ~result:[ b; a ]
      ~visible:all;
  ]

let test_weak_holds_on_figure7_shape () =
  Helpers.check_satisfied "weak"
    (Weak_spec.check (trace (figure7_shaped_trace ())))

let test_strong_fails_on_figure7_shape () =
  Helpers.check_violated "strong"
    (Strong_spec.check (trace (figure7_shaped_trace ())))

let test_weak_fails_on_incompatible_lists () =
  (* Two live elements returned in opposite orders: even the weak
     specification has no list order. *)
  let events =
    [
      event ~eid:0 ~replica:1
        ~op:(Event.Do_ins (a, 0))
        ~op_id:(Some (id_of a)) ~result:[ a ] ~visible:[ id_of a ];
      event ~eid:1 ~replica:2
        ~op:(Event.Do_ins (b, 0))
        ~op_id:(Some (id_of b)) ~result:[ b ] ~visible:[ id_of b ];
      event ~eid:2 ~replica:1 ~op:Event.Do_read ~op_id:None ~result:[ a; b ]
        ~visible:[ id_of a; id_of b ];
      event ~eid:3 ~replica:2 ~op:Event.Do_read ~op_id:None ~result:[ b; a ]
        ~visible:[ id_of a; id_of b ];
    ]
  in
  Helpers.check_violated "weak" (Weak_spec.check (trace events))

let test_strong_satisfied_simple () =
  Helpers.check_satisfied "strong"
    (Strong_spec.check (trace (good_two_client_trace ())));
  match Strong_spec.witness_order (trace (good_two_client_trace ())) with
  | Some order ->
    Alcotest.(check int) "total over all elements" 2 (List.length order)
  | None -> Alcotest.fail "expected a witness order"

let test_weak_list_order_edges () =
  let g = Weak_spec.list_order (trace (good_two_client_trace ())) in
  Alcotest.(check bool) "a -> b recorded" true (List_order.mem_edge g a b)

(* --- properties on protocol-generated traces --------------------------- *)

let gen_seed = QCheck2.Gen.int_range 1 1_000_000

let prop_strong_iff_witness =
  (* witness_order returns Some exactly when the strong checker is
     satisfied, and the witness really extends every returned list's
     order. *)
  Helpers.qtest ~count:40 "strong spec <-> witness order exists" gen_seed
    (fun seed ->
      let t, _ =
        Helpers.Css_run.random
          ~params:
            {
              Rlist_sim.Schedule.default_params with
              updates = 15;
              deliver_bias = 0.45;
            }
          seed
      in
      let tr = Helpers.Css_run.E.trace t in
      let strong =
        Rlist_spec.Check.is_satisfied (Strong_spec.check tr)
      in
      match Strong_spec.witness_order tr, strong with
      | None, false -> true
      | None, true -> false
      | Some _, false -> false
      | Some order, true ->
        let position e =
          let rec go i = function
            | [] -> None
            | y :: rest ->
              if Element.equal y e then Some i else go (i + 1) rest
          in
          go 0 order
        in
        List.for_all
          (fun ev ->
            let rec pairs_ok = function
              | [] | [ _ ] -> true
              | e1 :: (e2 :: _ as rest) ->
                (match position e1, position e2 with
                | Some i, Some j -> i < j
                | _ -> false)
                && pairs_ok rest
            in
            pairs_ok (Document.elements ev.Event.result))
          (Trace.events tr))

let prop_weak_implies_conditions =
  (* When the weak checker passes, each of its constituent conditions
     passes individually (internal consistency of the checker). *)
  Helpers.qtest ~count:30 "weak satisfied => all conditions satisfied"
    gen_seed (fun seed ->
      let t, _ = Helpers.Css_run.random seed in
      let tr = Helpers.Css_run.E.trace t in
      (not (Rlist_spec.Check.is_satisfied (Weak_spec.check tr)))
      || (Rlist_spec.Check.is_satisfied (Conditions.check_content tr)
         && Rlist_spec.Check.is_satisfied (Conditions.check_insert_position tr)
         && Rlist_spec.Check.is_satisfied (Conditions.check_no_duplicates tr)))

let prop_lemma_8_3 =
  (* Lemma 8.3 on protocol traces: the union list order restricted to
     live elements never contains a 2-cycle when all states are
     pairwise compatible — i.e. weak satisfaction implies no pair of
     elements is ordered both ways. *)
  Helpers.qtest ~count:30 "no two-way ordering under weak satisfaction"
    gen_seed (fun seed ->
      let t, _ = Helpers.Css_run.random seed in
      let tr = Helpers.Css_run.E.trace t in
      (not (Rlist_spec.Check.is_satisfied (Weak_spec.check tr)))
      ||
      let g = Weak_spec.list_order tr in
      List.for_all
        (fun ev ->
          let elements = Document.elements ev.Event.result in
          List.for_all
            (fun e1 ->
              List.for_all
                (fun e2 ->
                  Element.equal e1 e2
                  || not (List_order.mem_edge g e1 e2 && List_order.mem_edge g e2 e1))
                elements)
            elements)
        (Trace.events tr))

let test_delete_of_initial_element () =
  (* A trace that deletes a pre-existing element: condition 1a must
     treat the initial element as inserted, then deleted. *)
  let init = Document.of_string "pq" in
  let p = Document.nth init 0 in
  let dp = Op_id.make ~client:1 ~seq:1 in
  let q = Document.nth init 1 in
  let events =
    [
      event ~eid:0 ~replica:1 ~op:(Event.Do_del (p, 0)) ~op_id:(Some dp)
        ~result:[ q ] ~visible:[ dp ];
      event ~eid:1 ~replica:1 ~op:Event.Do_read ~op_id:None ~result:[ q ]
        ~visible:[ dp ];
    ]
  in
  Helpers.check_satisfied "weak with initial delete"
    (Weak_spec.check (trace ~initial:init events));
  Helpers.check_satisfied "strong with initial delete"
    (Strong_spec.check (trace ~initial:init events))

let test_check_all_events_mixed_bucket () =
  (* check_all_events compares updates with reads observing the same
     set; a read right after an update shares its bucket. *)
  let events =
    [
      event ~eid:0 ~replica:1
        ~op:(Event.Do_ins (a, 0))
        ~op_id:(Some (id_of a)) ~result:[ a ] ~visible:[ id_of a ];
      event ~eid:1 ~replica:2 ~op:Event.Do_read ~op_id:None
        ~result:[ b ] (* wrong list for the same view *)
        ~visible:[ id_of a ];
    ]
  in
  Helpers.check_violated "update/read bucket mismatch caught"
    (Convergence.check_all_events (trace events))

let () =
  Alcotest.run "spec"
    [
      ( "trace",
        [
          Alcotest.test_case "event invariants" `Quick test_event_invariants;
          Alcotest.test_case "accessors" `Quick test_trace_accessors;
          Alcotest.test_case "initial elements" `Quick
            test_trace_initial_elements;
          Alcotest.test_case "validate accepts good" `Quick test_validate_good;
          Alcotest.test_case "validate rejects bad eids" `Quick
            test_validate_bad_eids;
          Alcotest.test_case "validate requires self-visibility" `Quick
            test_validate_not_self_visible;
          Alcotest.test_case "validate rejects unknown ids" `Quick
            test_validate_unknown_visible;
          Alcotest.test_case "validate rejects shrinking views" `Quick
            test_validate_shrinking_visibility;
        ] );
      ( "list_order",
        [
          Alcotest.test_case "acyclic digraph" `Quick test_list_order_acyclic;
          Alcotest.test_case "figure 7 cycle" `Quick test_list_order_cycle;
          Alcotest.test_case "incompatibility witness" `Quick
            test_first_incompatible;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "satisfied" `Quick test_convergence_satisfied;
          Alcotest.test_case "violated" `Quick test_convergence_violated;
          Alcotest.test_case "different views may differ" `Quick
            test_convergence_ignores_reads_with_different_views;
        ] );
      ( "condition 1",
        [
          Alcotest.test_case "missing element (1a)" `Quick
            test_content_violation_missing;
          Alcotest.test_case "deleted element present (1a)" `Quick
            test_content_violation_deleted_still_present;
          Alcotest.test_case "initial elements (1a)" `Quick
            test_content_with_initial;
          Alcotest.test_case "insert position (1c)" `Quick
            test_insert_position_ok_and_violated;
          Alcotest.test_case "insert position clamped (1c)" `Quick
            test_insert_position_clamped;
          Alcotest.test_case "duplicates" `Quick test_no_duplicates;
        ] );
      ( "weak vs strong",
        [
          Alcotest.test_case "weak holds on figure-7 shape" `Quick
            test_weak_holds_on_figure7_shape;
          Alcotest.test_case "strong fails on figure-7 shape" `Quick
            test_strong_fails_on_figure7_shape;
          Alcotest.test_case "weak fails on incompatible lists" `Quick
            test_weak_fails_on_incompatible_lists;
          Alcotest.test_case "strong satisfied with witness" `Quick
            test_strong_satisfied_simple;
          Alcotest.test_case "list order edges" `Quick
            test_weak_list_order_edges;
        ] );
      ( "check combinators",
        [
          Alcotest.test_case "is_satisfied" `Quick test_check_is_satisfied;
          Alcotest.test_case "all returns the first violation" `Quick
            test_check_all_first_violation;
          Alcotest.test_case "all is lazy past the first violation" `Quick
            test_check_all_lazy;
          Alcotest.test_case "pp" `Quick test_check_pp;
        ] );
      ( "properties on protocol traces",
        [
          prop_strong_iff_witness;
          prop_weak_implies_conditions;
          prop_lemma_8_3;
          Alcotest.test_case "deleting an initial element" `Quick
            test_delete_of_initial_element;
          Alcotest.test_case "mixed update/read buckets" `Quick
            test_check_all_events_mixed_bucket;
        ] );
    ]
