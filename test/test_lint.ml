(* Tests for the AST-based project analyzer (lib/lint): every rule
   fires on a minimal flagged fixture and stays quiet on a clean or
   suppressed twin; scopes follow the path the fixture pretends to
   live at; and the JSON report has the machine-readable shape CI
   consumes.

   Fixtures are inline sources handed to [Lint.check_source] with an
   invented [path] — the path is what selects the applicable rules, so
   scope behaviour is testable without touching the file system. *)

open Rlist_lint

let rules_of findings = List.map (fun f -> f.Finding.rule) findings

let check_rules name expected ?mli_exists ~path src =
  Alcotest.(check (list string))
    name expected
    (rules_of (Lint.check_source ?mli_exists ~path src))

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.equal (String.sub haystack i nn) needle || go (i + 1)
  in
  go 0

(* --- hygiene: the ported scanner rules ------------------------------- *)

let test_poly_eq () =
  check_rules "comparison against a constructor fires" [ "poly-eq" ]
    ~path:"lib/core/fixture.ml" "let f x = x = Some 1\n";
  check_rules "<> against a polymorphic variant fires" [ "poly-eq" ]
    ~path:"lib/ot/fixture.ml" "let f x = x <> `Ready\n";
  check_rules "matching instead is clean" []
    ~path:"lib/core/fixture.ml"
    "let f x = match x with Some _ -> true | None -> false\n";
  check_rules "booleans and [] stay out" []
    ~path:"lib/core/fixture.ml" "let f x l = x = true && l = []\n";
  check_rules "outside the strict dirs the rule is off" []
    ~path:"lib/sim/fixture.ml" "let f x = x = Some 1\n";
  check_rules "constructor comparison in a string literal is not code" []
    ~path:"lib/core/fixture.ml" "let s = \"if x = Some 1 then\"\n";
  check_rules "constructor comparison in a comment is not code" []
    ~path:"lib/core/fixture.ml" "(* x = Some 1 *)\nlet f = ()\n";
  check_rules "expression-scoped suppression silences it" []
    ~path:"lib/core/fixture.ml"
    "let f x = (x = Some 1) [@lint.allow \"poly-eq\"]\n"

let test_poly_cmp () =
  check_rules "bare compare fires" [ "poly-cmp" ]
    ~path:"lib/ot/fixture.ml" "let f a b = compare a b\n";
  check_rules "a file defining its own compare is exempt" []
    ~path:"lib/ot/fixture.ml"
    "let compare a b = Int.compare a b\nlet equal a b = compare a b = 0\n";
  check_rules "String.compare is fine" []
    ~path:"lib/ot/fixture.ml" "let f a b = String.compare a b\n"

let test_poly_hash () =
  check_rules "Hashtbl.hash fires in the strict dirs" [ "poly-hash" ]
    ~path:"lib/cscw/fixture.ml" "let h x = Hashtbl.hash x\n";
  check_rules "outside the strict dirs it is allowed" []
    ~path:"lib/obs/fixture.ml" "let h x = Hashtbl.hash x\n"

let test_obj_magic_and_sys_time () =
  check_rules "Obj.magic fires everywhere" [ "obj-magic" ]
    ~path:"test/fixture.ml" "let f x = Obj.magic x\n";
  check_rules "Sys.time fires everywhere" [ "sys-time" ]
    ~path:"bench/fixture.ml" "let t () = Sys.time ()\n";
  check_rules "a comment naming Sys.time is not a call" []
    ~path:"bench/fixture.ml" "(* Sys.time measures CPU seconds *)\nlet t = 0\n"

(* --- determinism ----------------------------------------------------- *)

let test_rand_global () =
  check_rules "global Random.int fires in the deterministic core"
    [ "rand-global" ] ~path:"lib/mc/fixture.ml" "let r () = Random.int 5\n";
  check_rules "Random.self_init fires" [ "rand-global" ]
    ~path:"lib/net/fixture.ml" "let () = Random.self_init ()\n";
  check_rules "a threaded Random.State is the sanctioned form" []
    ~path:"lib/mc/fixture.ml" "let r st = Random.State.int st 5\n";
  check_rules "outside the deterministic core Random is allowed" []
    ~path:"bench/fixture.ml" "let r () = Random.int 5\n"

let test_hashtbl_iter () =
  check_rules "Hashtbl.iter fires in the deterministic core"
    [ "hashtbl-iter" ] ~path:"lib/net/fixture.ml"
    "let f t = Hashtbl.iter (fun _ _ -> ()) t\n";
  check_rules "Hashtbl.fold fires too" [ "hashtbl-iter" ]
    ~path:"lib/core/fixture.ml"
    "let f t = Hashtbl.fold (fun k _ acc -> k :: acc) t []\n";
  check_rules "a sorted collection under suppression is accepted" []
    ~path:"lib/net/fixture.ml"
    "let f t =\n\
    \  List.sort String.compare\n\
    \    ((Hashtbl.fold (fun k _ acc -> k :: acc) t [])\n\
    \    [@lint.allow \"hashtbl-iter\"])\n";
  check_rules "Hashtbl.find_opt and replace stay legal" []
    ~path:"lib/net/fixture.ml"
    "let f t k = Hashtbl.replace t k (); Hashtbl.find_opt t k\n"

let test_wall_clock () =
  check_rules "Unix.gettimeofday fires in replayed code" [ "wall-clock" ]
    ~path:"lib/sim/fixture.ml" "let t () = Unix.gettimeofday ()\n";
  check_rules "the obs clock seam is outside the scope" []
    ~path:"lib/obs/fixture.ml" "let t () = Unix.gettimeofday ()\n";
  check_rules "bench harness wall-clock reads are sanctioned" []
    ~path:"bench/fixture.ml" "let t () = Unix.gettimeofday ()\n"

let test_print_direct () =
  check_rules "print_endline fires in library code" [ "print-direct" ]
    ~path:"lib/sim/fixture.ml" "let f () = print_endline \"hi\"\n";
  check_rules "Printf.eprintf fires too" [ "print-direct" ]
    ~path:"lib/obs/fixture.ml"
    "let warn msg = Printf.eprintf \"warning: %s\\n\" msg\n";
  check_rules "prerr_string fires" [ "print-direct" ]
    ~path:"lib/net/fixture.ml" "let f () = prerr_string \"x\"\n";
  check_rules "Format.printf fires" [ "print-direct" ]
    ~path:"lib/core/fixture.ml" "let f () = Format.printf \"x\"\n";
  check_rules "printing to an explicit formatter is the sanctioned form" []
    ~path:"lib/sim/fixture.ml"
    "let pp ppf x = Format.fprintf ppf \"%d\" x\n";
  check_rules "Printf.sprintf builds a string, not output" []
    ~path:"lib/sim/fixture.ml" "let s x = Printf.sprintf \"%d\" x\n";
  check_rules "bin and test code may print" []
    ~path:"bin/fixture.ml" "let f () = print_endline \"hi\"\n";
  check_rules "a suppressed debug seam is accepted" []
    ~path:"lib/sim/fixture.ml"
    "let f () = (print_endline \"dbg\") [@lint.allow \"print-direct\"]\n"

let test_float_format () =
  check_rules "string_of_float fires in the deterministic core"
    [ "float-format" ] ~path:"lib/core/fixture.ml"
    "let s x = string_of_float x\n";
  check_rules "an explicit format is the sanctioned form" []
    ~path:"lib/core/fixture.ml" "let s x = Printf.sprintf \"%.17g\" x\n"

(* --- exception safety ------------------------------------------------ *)

let test_exn_partial () =
  check_rules "failwith fires in lib/ot" [ "exn-partial" ]
    ~path:"lib/ot/fixture.ml" "let f () = failwith \"no\"\n";
  check_rules "List.hd fires" [ "exn-partial" ]
    ~path:"lib/ot/fixture.ml" "let f l = List.hd l\n";
  check_rules "Option.get fires" [ "exn-partial" ]
    ~path:"lib/ot/fixture.ml" "let f o = Option.get o\n";
  check_rules "array access desugars to Array.get and fires"
    [ "exn-partial" ] ~path:"lib/ot/fixture.ml" "let f a i = a.(i)\n";
  check_rules "assert false fires" [ "exn-partial" ]
    ~path:"lib/ot/fixture.ml" "let f () = assert false\n";
  check_rules "an assert with a real condition is not assert false" []
    ~path:"lib/ot/fixture.ml" "let f x = assert (x > 0)\n";
  check_rules "the CSCW 2-D space is a transform path too" [ "exn-partial" ]
    ~path:"lib/cscw/two_d_space.ml" "let f () = failwith \"no\"\n";
  check_rules "the rest of lib/cscw is not in the exn scope" []
    ~path:"lib/cscw/protocol.ml" "let f () = failwith \"no\"\n";
  check_rules "binding-scoped suppression silences a guard" []
    ~path:"lib/ot/fixture.ml"
    "let f pos =\n\
    \  if pos < 0 then (invalid_arg \"f: negative\") [@lint.allow \
     \"exn-partial\"];\n\
    \  pos\n"

(* --- interface completeness ------------------------------------------ *)

let test_missing_mli () =
  check_rules "a lib module without .mli fires" [ "missing-mli" ]
    ~mli_exists:false ~path:"lib/sim/fixture.ml" "let x = 1\n";
  check_rules "with the .mli present it is clean" [] ~mli_exists:true
    ~path:"lib/sim/fixture.ml" "let x = 1\n";
  check_rules "bin modules do not need interfaces" [] ~mli_exists:false
    ~path:"bin/fixture.ml" "let x = 1\n";
  check_rules "a floating allow covers the whole file" [] ~mli_exists:false
    ~path:"lib/sim/fixture.ml"
    "[@@@lint.allow \"missing-mli\"]\nlet x = 1\n"

(* --- the suppression machinery itself -------------------------------- *)

let test_suppressions () =
  check_rules "allow lists silence several rules at once" []
    ~path:"lib/core/fixture.ml"
    "[@@@lint.allow \"poly-eq, poly-cmp\"]\n\
     let f x = x = Some 1\n\
     let g a b = compare a b\n";
  check_rules "allow \"all\" silences everything" []
    ~path:"lib/ot/fixture.ml"
    "[@@@lint.allow \"all\"]\nlet f () = failwith (string_of_float 1.0)\n";
  (* rule B's finding still fires, and the allow for A — which did no
     work here — is now itself stale *)
  check_rules "an allow for rule A does not silence rule B"
    [ "poly-eq"; "unused-allow" ] ~path:"lib/core/fixture.ml"
    "let f x = (x = Some 1) [@lint.allow \"poly-cmp\"]\n";
  check_rules "suppression is scoped, not file-wide" [ "poly-eq" ]
    ~path:"lib/core/fixture.ml"
    "let f x = (x = Some 1) [@lint.allow \"poly-eq\"]\n\
     let g x = x = Some 2\n";
  (* A malformed payload must not silence anything: the finding
     surfacing is how the author discovers the typo. *)
  check_rules "a payload-less allow suppresses nothing" [ "poly-eq" ]
    ~path:"lib/core/fixture.ml"
    "let f x = (x = Some 1) [@lint.allow]\n"

let test_unused_allow () =
  check_rules "a suppression that suppresses nothing is reported"
    [ "unused-allow" ] ~path:"lib/core/fixture.ml"
    "let f x = (x + 1) [@lint.allow \"poly-eq\"]\n";
  check_rules "a floating allow that never fires is reported"
    [ "unused-allow" ] ~path:"lib/core/fixture.ml"
    "[@@@lint.allow \"poly-cmp\"]\nlet f x = x + 1\n";
  check_rules "an allow naming a nonexistent rule is reported"
    [ "unused-allow" ] ~path:"lib/core/fixture.ml"
    "let f x = x [@@lint.allow \"poly-eqq\"]\n";
  check_rules "allows for typed rules are outside this pass's jurisdiction"
    [] ~path:"lib/core/fixture.ml"
    "let t = ref 0 [@@lint.allow \"module-mutable\"]\n";
  check_rules "an allow for a rule out of scope here is left alone" []
    ~path:"bench/fixture.ml"
    "let r () = (Random.int 5) [@lint.allow \"rand-global\"]\n";
  check_rules "a used allow is not stale" []
    ~path:"lib/core/fixture.ml"
    "let f x = (x = Some 1) [@lint.allow \"poly-eq\"]\n";
  (* staleness is only judged on full-rule runs: under --rules the
     unselected rules never got the chance to do the suppressing *)
  Alcotest.(check (list string))
    "not judged under --rules selection" []
    (rules_of
       (Lint.check_source ~rules:[ "poly-cmp" ] ~path:"lib/core/fixture.ml"
          "let f x = (x = Some 1) [@lint.allow \"poly-eq\"]\n"))

let test_rule_selection () =
  let src = "let f x = x = Some 1\nlet g a b = compare a b\n" in
  Alcotest.(check (list string))
    "only the selected rule runs" [ "poly-cmp" ]
    (rules_of
       (Lint.check_source ~rules:[ "poly-cmp" ] ~path:"lib/core/fixture.ml"
          src))

let test_parse_error () =
  check_rules "garbage reports parse-error, not silence" [ "parse-error" ]
    ~path:"lib/core/fixture.ml" "let let let\n";
  check_rules "a broken .mli reports too" [ "parse-error" ]
    ~path:"lib/core/fixture.mli" "val val\n"

let test_locations () =
  match Lint.check_source ~path:"lib/core/fixture.ml"
          "let a = 1\nlet f x =\n  x = Some a\n"
  with
  | [ f ] ->
    Alcotest.(check string) "rule" "poly-eq" f.Finding.rule;
    Alcotest.(check int) "line" 3 f.Finding.line;
    Alcotest.(check int) "col" 3 f.Finding.col
  | fs ->
    Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

(* --- baseline -------------------------------------------------------- *)

let test_baseline () =
  let findings =
    Lint.check_source ~path:"lib/core/fixture.ml"
      "let f x = x = Some 1\nlet g a b = compare a b\n"
  in
  Alcotest.(check (list string))
    "both findings before the baseline" [ "poly-eq"; "poly-cmp" ]
    (rules_of findings);
  let file = Filename.temp_file "lint_baseline" ".txt" in
  Out_channel.with_open_text file (fun oc ->
      output_string oc
        "# accepted findings\n\nlib/core/fixture.ml:poly-eq\n");
  let baseline = Lint.load_baseline file in
  Sys.remove file;
  Alcotest.(check (list string))
    "the baselined finding is accepted" [ "poly-cmp" ]
    (rules_of (Lint.apply_baseline baseline findings))

(* --- report shape ---------------------------------------------------- *)

let test_exit_code () =
  let at path src = Lint.check_source ~path src in
  Alcotest.(check int) "clean is 0" 0 (Lint.exit_code []);
  Alcotest.(check int) "hygiene is bit 1" 1
    (Lint.exit_code (at "lib/core/f.ml" "let f x = x = Some 1\n"));
  Alcotest.(check int) "determinism is bit 2" 2
    (Lint.exit_code (at "lib/mc/f.ml" "let r () = Random.int 5\n"));
  Alcotest.(check int) "exception safety is bit 4" 4
    (Lint.exit_code (at "lib/ot/f.ml" "let f () = failwith \"no\"\n"));
  Alcotest.(check int) "interface is bit 8" 8
    (Lint.exit_code
       (Lint.check_source ~mli_exists:false ~path:"lib/sim/f.ml" "let x = 1\n"));
  Alcotest.(check int) "families OR together" 6
    (Lint.exit_code
       (at "lib/ot/f.ml" "let f t = Hashtbl.iter ignore t; failwith \"no\"\n"));
  Alcotest.(check int) "domain safety is bit 16" 16
    (Lint.exit_code
       [ Finding.v ~file:"lib/x.ml" ~line:1 ~col:1 ~rule:"module-mutable" "m" ]);
  Alcotest.(check int) "det-reach shares the determinism bit" 2
    (Lint.exit_code
       [ Finding.v ~file:"lib/x.ml" ~line:1 ~col:1 ~rule:"det-reach" "m" ])

let test_dedupe () =
  let untyped =
    Finding.v ~file:"lib/core/f.ml" ~line:3 ~col:14 ~rule:"rand-global"
      "global PRNG"
  in
  let typed =
    Finding.v
      ~chain:[ "Engine.tick"; "F.pick"; "Random.int" ]
      ~file:"lib/core/f.ml" ~line:3 ~col:14 ~rule:"det-reach"
      "reachable global PRNG"
  in
  let other =
    Finding.v ~file:"lib/core/f.ml" ~line:9 ~col:1 ~rule:"rand-global"
      "another site, no typed twin"
  in
  let kept = Lint.dedupe [ untyped; typed; other ] in
  Alcotest.(check (list string))
    "the typed finding subsumes its same-site untyped twin"
    [ "det-reach"; "rand-global" ] (rules_of kept);
  Alcotest.(check int)
    "exit bits are unchanged by the dedupe"
    (Lint.exit_code [ untyped; typed; other ])
    (Lint.exit_code kept);
  Alcotest.(check (list string))
    "unrelated rules at the same site survive"
    [ "det-reach"; "exn-partial" ]
    (rules_of
       (Lint.dedupe
          [
            typed;
            Finding.v ~file:"lib/core/f.ml" ~line:3 ~col:2 ~rule:"exn-partial"
              "partial";
          ]))

let test_json_report () =
  let findings =
    Lint.check_source ~path:"lib/core/fixture.ml"
      "let f x = x = Some 1\nlet g a b = compare a b\n"
  in
  let json = Lint.report_json findings in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "report contains %s" needle)
        true
        (contains ~needle json))
    [
      "\"version\":1";
      "\"total\":2";
      "\"exit_code\":1";
      "\"by_rule\":{\"poly-cmp\":1,\"poly-eq\":1}";
      "\"file\":\"lib/core/fixture.ml\"";
      "\"rule\":\"poly-eq\"";
      "\"family\":\"hygiene\"";
      "\"line\":1";
    ];
  Alcotest.(check string)
    "an empty report is still well-formed"
    "{\"version\":1,\"total\":0,\"exit_code\":0,\"by_rule\":{},\"findings\":[]}"
    (Lint.report_json [])

let test_registry () =
  Alcotest.(check bool) "every rule resolves by name" true
    (List.for_all
       (fun (r : Rules.t) ->
         match Rules.find r.Rules.name with
         | Some r' -> String.equal r'.Rules.name r.Rules.name
         | None -> false)
       Rules.all);
  Alcotest.(check bool) "scope prefixes respect component boundaries" false
    (match Rules.find "poly-eq" with
    | Some r -> Rules.applies r "lib/core_extras/x.ml"
    | None -> true);
  Alcotest.(check bool) "scope prefixes cover their subtree" true
    (match Rules.find "poly-eq" with
    | Some r -> Rules.applies r "lib/core/x.ml"
    | None -> false)

let () =
  Alcotest.run "lint"
    [
      ( "hygiene rules",
        [
          Alcotest.test_case "poly-eq" `Quick test_poly_eq;
          Alcotest.test_case "poly-cmp" `Quick test_poly_cmp;
          Alcotest.test_case "poly-hash" `Quick test_poly_hash;
          Alcotest.test_case "obj-magic / sys-time" `Quick
            test_obj_magic_and_sys_time;
        ] );
      ( "determinism rules",
        [
          Alcotest.test_case "rand-global" `Quick test_rand_global;
          Alcotest.test_case "hashtbl-iter" `Quick test_hashtbl_iter;
          Alcotest.test_case "wall-clock" `Quick test_wall_clock;
          Alcotest.test_case "float-format" `Quick test_float_format;
          Alcotest.test_case "print-direct" `Quick test_print_direct;
        ] );
      ( "exception safety",
        [ Alcotest.test_case "exn-partial" `Quick test_exn_partial ] );
      ( "interface completeness",
        [ Alcotest.test_case "missing-mli" `Quick test_missing_mli ] );
      ( "suppressions and selection",
        [
          Alcotest.test_case "lint.allow scoping" `Quick test_suppressions;
          Alcotest.test_case "unused-allow" `Quick test_unused_allow;
          Alcotest.test_case "--rules selection" `Quick test_rule_selection;
          Alcotest.test_case "parse errors surface" `Quick test_parse_error;
          Alcotest.test_case "locations are precise" `Quick test_locations;
          Alcotest.test_case "baseline" `Quick test_baseline;
        ] );
      ( "report",
        [
          Alcotest.test_case "exit-code bits" `Quick test_exit_code;
          Alcotest.test_case "typed/untyped dedupe" `Quick test_dedupe;
          Alcotest.test_case "JSON shape" `Quick test_json_report;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
    ]
