(* Tests for the observability layer: the metrics registry's counter /
   histogram / percentile arithmetic, the trace sink, the differential
   check that traced transform counts on figure2 reproduce the paper's
   worked CSS schedule (Figures 2 and 4), and that an engine without a
   trace sink behaves byte-identically to an uninstrumented one. *)

open Rlist_model
module Metrics = Rlist_obs.Metrics
module Obs = Rlist_obs.Obs
module Sink = Rlist_obs.Sink
module Event = Rlist_obs.Event
module Css = Rlist_sim.Engine.Make (Jupiter_css.Protocol)

(* --- metrics arithmetic ------------------------------------------------ *)

let test_counters () =
  let m = Metrics.create () in
  let c = Metrics.counter m "a.b" in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 40;
  Alcotest.(check int) "value" 42 (Metrics.counter_value c);
  Alcotest.(check int) "by name" 42 (Metrics.counter_of m "a.b");
  Alcotest.(check int) "untouched name" 0 (Metrics.counter_of m "nope");
  let c' = Metrics.counter m "a.b" in
  Metrics.incr c';
  Alcotest.(check int) "same cell on re-lookup" 43 (Metrics.counter_value c)

let test_gauge () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "g" in
  Metrics.set_gauge g 1.5;
  Metrics.set_gauge g 2.5;
  Alcotest.(check (float 0.0)) "last write wins" 2.5 (Metrics.gauge_value g)

let test_histogram_basics () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "h" in
  Alcotest.(check int) "empty count" 0 (Metrics.hist_count h);
  Alcotest.(check bool) "empty mean is nan" true
    (Float.is_nan (Metrics.hist_mean h));
  Alcotest.(check bool) "empty percentile is nan" true
    (Float.is_nan (Metrics.percentile h 50.0));
  List.iter (fun v -> Metrics.observe h v) [ 30.0; 10.0; 40.0; 20.0 ];
  Alcotest.(check int) "count" 4 (Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 100.0 (Metrics.hist_sum h);
  Alcotest.(check (float 1e-9)) "mean" 25.0 (Metrics.hist_mean h);
  Alcotest.(check (float 1e-9)) "min" 10.0 (Metrics.hist_min h);
  Alcotest.(check (float 1e-9)) "max" 40.0 (Metrics.hist_max h)

let test_percentiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "h" in
  List.iter (fun v -> Metrics.observe h v) [ 30.0; 10.0; 40.0; 20.0 ];
  (* Linear interpolation between closest ranks over [0, len-1]:
     rank(p) = p/100 * 3 on the sorted [10;20;30;40]. *)
  Alcotest.(check (float 1e-9)) "p0 = min" 10.0 (Metrics.percentile h 0.0);
  Alcotest.(check (float 1e-9)) "p100 = max" 40.0 (Metrics.percentile h 100.0);
  Alcotest.(check (float 1e-9)) "p50 interpolates" 25.0
    (Metrics.percentile h 50.0);
  Alcotest.(check (float 1e-9)) "p90 interpolates" 37.0
    (Metrics.percentile h 90.0);
  Alcotest.(check bool) "out of range rejected" true
    (try
       ignore (Metrics.percentile h 101.0);
       false
     with Invalid_argument _ -> true);
  (* Growth across the initial capacity keeps every observation. *)
  let big = Metrics.histogram m "big" in
  for i = 1 to 1000 do
    Metrics.observe big (float_of_int i)
  done;
  Alcotest.(check int) "1000 observations" 1000 (Metrics.hist_count big);
  Alcotest.(check (float 1e-9)) "median of 1..1000" 500.5
    (Metrics.percentile big 50.0)

let test_timer_uses_installed_clock () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "t" in
  (* A deterministic fake clock: every reading advances 7 ns. *)
  let ticks = ref 0.0 in
  Metrics.set_clock (fun () ->
      ticks := !ticks +. 7.0;
      !ticks);
  let result = Metrics.time h (fun () -> "done") in
  (* Restore a counting clock equivalent to the default fallback. *)
  let reset = ref 0.0 in
  Metrics.set_clock (fun () ->
      reset := !reset +. 1.0;
      !reset);
  Alcotest.(check string) "thunk result passes through" "done" result;
  Alcotest.(check int) "one span recorded" 1 (Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "span is one clock step" 7.0
    (Metrics.hist_max h)

let test_ot_observer_hook () =
  (* The per-space growth observer is the per-instance replacement for
     the old process-global transform tap: after every [add_op] it
     reports the primitive transformation calls that operation caused,
     so a metrics counter plugged in here aggregates exactly this
     space's own [ot_count] — and nothing from any other space. *)
  let m = Metrics.create () in
  let c = Metrics.counter m "ot.primitive_calls" in
  let serials : (Op_id.t, int) Hashtbl.t = Hashtbl.create 8 in
  let key id =
    match Hashtbl.find_opt serials id with
    | Some s -> Jupiter_css.Order_key.Serialized s
    | None -> Jupiter_css.Order_key.Pending id.Op_id.seq
  in
  let space = Jupiter_css.State_space.create ~key_of:key () in
  Jupiter_css.State_space.set_observer space
    (fun ~level:_ ~states:_ ~transitions:_ ~ots -> Metrics.add c ots);
  let o1 = Helpers.ins ~client:1 ~seq:1 'x' 0 in
  let o2 = Helpers.ins ~client:2 ~seq:1 'y' 0 in
  Hashtbl.replace serials o1.Rlist_ot.Op.id 0;
  Hashtbl.replace serials o2.Rlist_ot.Op.id 1;
  let add o =
    ignore
      (Jupiter_css.State_space.add_op space
         (Rlist_ot.Context.with_context o ~ctx:Rlist_ot.Context.empty))
  in
  add o1;
  add o2;
  Alcotest.(check bool) "concurrent pair transforms" true
    (Jupiter_css.State_space.ot_count space > 0);
  Alcotest.(check int) "observer sees exactly the space's OT count"
    (Jupiter_css.State_space.ot_count space)
    (Metrics.counter_value c)

(* --- sink and events --------------------------------------------------- *)

let test_memory_sink () =
  let sink = Sink.memory () in
  let obs = Obs.make ~sink () in
  Alcotest.(check bool) "memory sink traces" true (Obs.tracing obs);
  Obs.emit obs
    (Event.Generate
       { replica = "c1"; op_id = Some "1.1"; intent = "ins"; queue = 0;
         tick = 0 });
  Obs.emit obs
    (Event.Deliver
       { replica = "server"; src = "c1"; op_id = Some "1.1"; transforms = 3;
         queue = 0; tick = 0 });
  Obs.emit obs
    (Event.Deliver
       { replica = "c2"; src = "server"; op_id = Some "1.1"; transforms = 2;
         queue = 0; tick = 0 });
  let events = Sink.events sink in
  Alcotest.(check int) "three events" 3 (List.length events);
  Alcotest.(check int) "kind count" 2 (Obs.count_kind events "deliver");
  Alcotest.(check int) "transform sum" 5 (Obs.sum_deliver_transforms events);
  let contains line needle =
    let n = String.length needle and l = String.length line in
    let rec go i = i + n <= l && (String.sub line i n = needle || go (i + 1)) in
    go 0
  in
  let line = Event.to_jsonl ~seq:0 (List.hd events) in
  Alcotest.(check bool) "jsonl has type tag" true
    (contains line "\"type\": \"generate\"")

let test_null_sink_disabled () =
  let obs = Obs.make () in
  Alcotest.(check bool) "null sink does not trace" false (Obs.tracing obs);
  Obs.emit obs (Event.Span { name = "x"; dur_ns = 1.0 });
  Alcotest.(check int) "nothing recorded" 0 (Sink.count obs.Obs.sink)

(* --- differential: figure2 reproduces the paper's worked schedule ------ *)

let run_figure2_traced () =
  let s = Rlist_sim.Figures.figure2 in
  let sink = Sink.memory () in
  let obs = Obs.make ~sink () in
  let t = Css.create ~initial:s.initial ~nclients:s.nclients () in
  Css.attach_obs t obs;
  let wire name set =
    set (fun ~level ~states ~transitions ~ots:_ ->
        if Obs.tracing obs then
          Obs.emit obs
            (Event.State_space_grow { replica = name; level; states; transitions }))
  in
  wire "server" (Jupiter_css.Protocol.server_set_space_observer (Css.server t));
  for i = 1 to s.nclients do
    wire
      ("c" ^ string_of_int i)
      (Jupiter_css.Protocol.client_set_space_observer (Css.client t i))
  done;
  Css.run t s.schedule;
  t, obs, Sink.events sink

let test_figure2_transform_counts () =
  let t, obs, events = run_figure2_traced () in
  (* The paper's Figure 4 walkthrough: serialized o1 => o2 => o3, the
     server transforms o1 against nothing, o2 against o1's ladder
     (2 primitive calls), o3 against both (4 calls): 6 total.  Every
     client performs the mirror-image work on the two foreign
     operations, so the system performs 24 primitive transformations. *)
  Alcotest.(check int) "server performs 6 transforms" 6
    (Css.server_ot_count t);
  Alcotest.(check int) "system performs 24 transforms" 24
    (Css.total_ot_count t);
  Alcotest.(check int) "traced deliver transforms account for all" 24
    (Obs.sum_deliver_transforms events);
  Alcotest.(check int) "metrics counter agrees" 24
    (Metrics.counter_of obs.Obs.metrics "engine.transforms")

let test_figure2_event_counts () =
  let t, obs, events = run_figure2_traced () in
  ignore t;
  Alcotest.(check int) "3 updates generated" 3
    (Metrics.counter_of obs.Obs.metrics "engine.updates_generated");
  Alcotest.(check int) "3 final reads" 3
    (Metrics.counter_of obs.Obs.metrics "engine.reads_generated");
  Alcotest.(check int) "3 c2s messages" 3
    (Metrics.counter_of obs.Obs.metrics "engine.msgs_c2s_sent");
  Alcotest.(check int) "9 s2c messages (3 ops x 3 clients)" 9
    (Metrics.counter_of obs.Obs.metrics "engine.msgs_s2c_sent");
  Alcotest.(check int) "12 deliveries traced" 12
    (Obs.count_kind events "deliver");
  Alcotest.(check int) "6 generates traced" 6
    (Obs.count_kind events "generate");
  (* Each of the 4 replicas grows its space through levels 1..3. *)
  Alcotest.(check int) "12 state-space growth steps" 12
    (Obs.count_kind events "state_space_grow")

let test_figure2_space_matches_stats () =
  let t, _obs, _events = run_figure2_traced () in
  let space = Jupiter_css.Protocol.server_space (Css.server t) in
  let st = Jupiter_css.Analysis.stats space in
  (* Figure 4: states {0,1,12,13,123,2,3}, no {23}. *)
  Alcotest.(check int) "7 states" 7 st.states;
  Alcotest.(check int) "9 transitions" 9 st.transitions;
  Alcotest.(check int) "depth 3" 3 st.depth;
  Alcotest.(check int)
    "O(1) transition count equals stats" st.transitions
    (Jupiter_css.State_space.num_transitions space)

(* --- the no-op configuration changes nothing --------------------------- *)

let behaviour_fingerprint t =
  List.map
    (fun (r, d) -> Format.asprintf "%a" Replica_id.pp r, Document.to_string d)
    (Css.behavior t)

let test_noop_obs_is_transparent () =
  let run ~instrument =
    let t = Css.create ~nclients:4 () in
    if instrument then Css.attach_obs t (Obs.make ());
    let rng = Random.State.make [| 77 |] in
    let schedule =
      Css.run_random t ~rng
        ~params:{ Rlist_sim.Schedule.default_params with updates = 60 }
    in
    t, schedule
  in
  let plain, sched_plain = run ~instrument:false in
  let instrumented, sched_obs = run ~instrument:true in
  Alcotest.(check int) "same schedule length" (List.length sched_plain)
    (List.length sched_obs);
  Alcotest.(check (list (pair string string)))
    "byte-identical behaviours"
    (behaviour_fingerprint plain)
    (behaviour_fingerprint instrumented);
  Alcotest.(check string) "same final document"
    (Document.to_string (Css.server_document plain))
    (Document.to_string (Css.server_document instrumented));
  Alcotest.(check int) "same transform count" (Css.total_ot_count plain)
    (Css.total_ot_count instrumented);
  (* ...and the metrics were still collected. *)
  match Css.obs instrumented with
  | None -> Alcotest.fail "obs not attached"
  | Some obs ->
    Alcotest.(check int) "updates counted" 60
      (Metrics.counter_of obs.Obs.metrics "engine.updates_generated")

let test_timed_driver_latency_histogram () =
  let obs = Obs.make () in
  let t = Css.create ~nclients:3 () in
  Css.attach_obs t obs;
  let rng = Random.State.make [| 9 |] in
  ignore
    (Css.run_timed t ~rng
       ~params:{ Rlist_sim.Schedule.default_timed_params with t_updates = 20 });
  let m = obs.Obs.metrics in
  match
    Metrics.fold m ~init:None ~f:(fun acc name metric ->
        if name = "engine.virtual_latency" then Some metric else acc)
  with
  | Some (Metrics.Histogram h) ->
    (* one latency sample per scheduled message arrival *)
    Alcotest.(check bool) "latency samples recorded" true
      (Metrics.hist_count h > 0);
    Alcotest.(check bool) "latencies positive" true (Metrics.hist_min h > 0.0)
  | _ -> Alcotest.fail "virtual-latency histogram missing"

(* --- p2p engine -------------------------------------------------------- *)

let test_p2p_counters_consistent () =
  let module E = Rlist_sim.P2p_engine.Make (Jupiter_css.Distributed_protocol) in
  let sink = Sink.memory () in
  let obs = Obs.make ~sink () in
  let t = E.create ~npeers:3 () in
  E.attach_obs t obs;
  let rng = Random.State.make [| 5 |] in
  ignore
    (E.run_random t ~rng
       ~params:{ Rlist_sim.Schedule.default_params with updates = 30 });
  let m = obs.Obs.metrics in
  Alcotest.(check bool) "deliveries happened" true
    (Metrics.counter_of m "p2p.deliveries" > 0);
  Alcotest.(check int) "counted transforms equal the protocols' total"
    (E.total_ot_count t)
    (Metrics.counter_of m "p2p.transforms");
  Alcotest.(check int) "traced deliver transforms match deliveries' share"
    (Obs.sum_deliver_transforms (Sink.events sink))
    (Metrics.counter_of m "p2p.transforms")

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "timer" `Quick test_timer_uses_installed_clock;
          Alcotest.test_case "ot primitive-call hook" `Quick
            test_ot_observer_hook;
        ] );
      ( "sink",
        [
          Alcotest.test_case "memory sink" `Quick test_memory_sink;
          Alcotest.test_case "null sink" `Quick test_null_sink_disabled;
        ] );
      ( "figure2 differential",
        [
          Alcotest.test_case "transform counts" `Quick
            test_figure2_transform_counts;
          Alcotest.test_case "event counts" `Quick test_figure2_event_counts;
          Alcotest.test_case "space stats" `Quick
            test_figure2_space_matches_stats;
        ] );
      ( "transparency",
        [
          Alcotest.test_case "no-op obs is transparent" `Quick
            test_noop_obs_is_transparent;
          Alcotest.test_case "timed driver fills latency histogram" `Quick
            test_timed_driver_latency_histogram;
        ] );
      ( "p2p",
        [
          Alcotest.test_case "p2p counters consistent" `Quick
            test_p2p_counters_consistent;
        ] );
    ]
