(* Differential tests for the rope-backed document: random operation
   scripts are replayed against both {!Document} (the rope) and
   {!Document_reference} (the seed's linked list, kept as an oracle),
   and every observation the rest of the system can make of a document
   must agree. *)

open Rlist_model
module Rope = Document
module Oracle = Document_reference

(* A script is a list of abstract editing steps; positions are seeds
   reduced modulo the current document length at replay time, so every
   script is valid on both implementations by construction. *)
type step =
  | Ins of char * int
  | Del of int

let gen_step =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun c p -> Ins (c, p)) (char_range 'a' 'z') (int_range 0 10_000);
        map (fun p -> Del p) (int_range 0 10_000);
      ])

let gen_script = QCheck2.Gen.(list_size (int_range 0 120) gen_step)

let pp_step = function
  | Ins (c, p) -> Printf.sprintf "Ins(%c,%d)" c p
  | Del p -> Printf.sprintf "Del(%d)" p

let print_script script = String.concat "; " (List.map pp_step script)

(* Replay a script on both implementations, checking the deleted
   elements pairwise; returns the final pair. *)
let replay script =
  let step (rope, oracle, seq) = function
    | Ins (c, pseed) ->
      let pos = pseed mod (Rope.length rope + 1) in
      let e = Element.make ~value:c ~id:(Op_id.make ~client:7 ~seq) in
      Rope.insert rope ~pos e, Oracle.insert oracle ~pos e, seq + 1
    | Del pseed ->
      if Rope.length rope = 0 then rope, oracle, seq
      else
        let pos = pseed mod Rope.length rope in
        let del_r, rope' = Rope.delete rope ~pos in
        let del_o, oracle' = Oracle.delete oracle ~pos in
        if not (Element.equal del_r del_o) then
          failwith "delete returned different elements";
        rope', oracle', seq
  in
  let rope, oracle, _ = List.fold_left step (Rope.empty, Oracle.empty, 1) script in
  rope, oracle

let same_elements rope oracle =
  let er = Rope.elements rope and eo = Oracle.elements oracle in
  List.length er = List.length eo && List.for_all2 Element.equal er eo

let qtest ?(count = 300) ?print name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ?print gen prop)

let prop_observations_agree =
  qtest "to_string/length/elements/nth agree with the oracle"
    ~print:print_script gen_script
    (fun script ->
      let rope, oracle = replay script in
      String.equal (Rope.to_string rope) (Oracle.to_string oracle)
      && Rope.length rope = Oracle.length oracle
      && same_elements rope oracle
      && List.for_all
           (fun i -> Element.equal (Rope.nth rope i) (Oracle.nth oracle i))
           (List.init (Rope.length rope) Fun.id))

let prop_order_pairs_agree =
  qtest ~count:100 "order_pairs agree with the oracle" gen_script
    (fun script ->
      let rope, oracle = replay script in
      let pr = Rope.order_pairs rope and po = Oracle.order_pairs oracle in
      List.length pr = List.length po
      && List.for_all2
           (fun (a, b) (a', b') -> Element.equal a a' && Element.equal b b')
           pr po)

let prop_membership_agrees =
  qtest "mem/index_of agree with the oracle, present and absent"
    QCheck2.Gen.(pair gen_script (int_range 0 10_000))
    (fun (script, probe_seed) ->
      let rope, oracle = replay script in
      let present =
        Rope.fold
          (fun acc e ->
            acc
            && Rope.mem rope e = Oracle.mem oracle e
            && Rope.index_of rope e = Oracle.index_of oracle e)
          true rope
      in
      (* An identifier no script step ever allocates. *)
      let foreign =
        Element.make ~value:'?' ~id:(Op_id.make ~client:99 ~seq:(probe_seed + 1))
      in
      present
      && Rope.mem rope foreign = Oracle.mem oracle foreign
      && Rope.index_of rope foreign = Oracle.index_of oracle foreign)

let prop_compatible_agrees =
  qtest ~count:150 "compatible verdicts agree with the oracle"
    QCheck2.Gen.(pair gen_script gen_script)
    (fun (s1, s2) ->
      let r1, o1 = replay s1 and r2, o2 = replay s2 in
      Bool.equal (Rope.compatible r1 r2) (Oracle.compatible o1 o2)
      && Bool.equal (Rope.compatible r1 r1) (Oracle.compatible o1 o1))

let prop_equal_compare_agree =
  qtest ~count:150 "equal/compare agree with the oracle"
    QCheck2.Gen.(pair gen_script gen_script)
    (fun (s1, s2) ->
      let r1, o1 = replay s1 and r2, o2 = replay s2 in
      let sign c = Stdlib.compare c 0 in
      Bool.equal (Rope.equal r1 r2) (Oracle.equal o1 o2)
      && sign (Rope.compare r1 r2) = sign (Oracle.compare o1 o2))

let prop_duplicates_agree =
  qtest ~count:150 "has_duplicates agrees with the oracle on raw element lists"
    QCheck2.Gen.(
      list_size (int_range 0 30)
        (map2
           (fun c s -> Element.make ~value:c ~id:(Op_id.make ~client:3 ~seq:s))
           (char_range 'a' 'z') (int_range 1 10)))
    (fun es ->
      Bool.equal
        (Rope.has_duplicates (Rope.of_elements es))
        (Oracle.has_duplicates (Oracle.of_elements es))
      &&
      (* ... and it survives deleting down to a prefix. *)
      let rec drain rope oracle =
        if Rope.length rope = 0 then true
        else begin
          Bool.equal (Rope.has_duplicates rope) (Oracle.has_duplicates oracle)
          &&
          let _, rope' = Rope.delete rope ~pos:(Rope.length rope - 1) in
          let _, oracle' = Oracle.delete oracle ~pos:(Oracle.length oracle - 1) in
          drain rope' oracle'
        end
      in
      drain (Rope.of_elements es) (Oracle.of_elements es))

(* Bounds-check error cases: both implementations must reject the same
   out-of-range positions with Invalid_argument. *)
let raises_invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

let test_bounds () =
  let e = Element.make ~value:'x' ~id:(Op_id.make ~client:1 ~seq:1) in
  let rope = Rope.of_string "abc" in
  let oracle = Oracle.of_string "abc" in
  Alcotest.(check bool)
    "insert past end" true
    (raises_invalid (fun () -> Rope.insert rope ~pos:4 e)
    && raises_invalid (fun () -> Oracle.insert oracle ~pos:4 e));
  Alcotest.(check bool)
    "insert negative" true
    (raises_invalid (fun () -> Rope.insert rope ~pos:(-1) e)
    && raises_invalid (fun () -> Oracle.insert oracle ~pos:(-1) e));
  Alcotest.(check bool)
    "delete at length" true
    (raises_invalid (fun () -> Rope.delete rope ~pos:3)
    && raises_invalid (fun () -> Oracle.delete oracle ~pos:3));
  Alcotest.(check bool)
    "delete negative" true
    (raises_invalid (fun () -> Rope.delete rope ~pos:(-1))
    && raises_invalid (fun () -> Oracle.delete oracle ~pos:(-1)));
  Alcotest.(check bool)
    "nth at length" true
    (raises_invalid (fun () -> Rope.nth rope 3)
    && raises_invalid (fun () -> Oracle.nth oracle 3));
  Alcotest.(check bool)
    "nth negative" true
    (raises_invalid (fun () -> Rope.nth rope (-1))
    && raises_invalid (fun () -> Oracle.nth oracle (-1)));
  Alcotest.(check bool)
    "delete on empty" true
    (raises_invalid (fun () -> Rope.delete Rope.empty ~pos:0)
    && raises_invalid (fun () -> Oracle.delete Oracle.empty ~pos:0))

(* A deterministic large-document exercise: 10^4 front/back/middle
   inserts keep the rope balanced enough for interactive use; the
   final string must match an oracle built in one shot. *)
let test_large_document () =
  let n = 10_000 in
  let elt i =
    Element.make
      ~value:(Char.chr (Char.code 'a' + (i mod 26)))
      ~id:(Op_id.make ~client:5 ~seq:(i + 1))
  in
  let rope = ref Rope.empty in
  for i = 0 to n - 1 do
    let pos =
      match i mod 3 with
      | 0 -> 0
      | 1 -> Rope.length !rope
      | _ -> Rope.length !rope / 2
    in
    rope := Rope.insert !rope ~pos (elt i)
  done;
  Alcotest.(check int) "length" n (Rope.length !rope);
  let oracle = Oracle.of_elements (Rope.elements !rope) in
  Alcotest.(check string)
    "content" (Oracle.to_string oracle) (Rope.to_string !rope);
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "nth %d" i) true
        (Element.equal (Rope.nth !rope i) (Oracle.nth oracle i)))
    [ 0; 1; n / 2; n - 2; n - 1 ];
  (* Drain from the middle and compare the survivors. *)
  let r = ref !rope in
  for _ = 1 to n / 2 do
    let _, r' = Rope.delete !r ~pos:(Rope.length !r / 2) in
    r := r'
  done;
  Alcotest.(check int) "length after drain" (n / 2) (Rope.length !r);
  Alcotest.(check bool) "no duplicates" false (Rope.has_duplicates !r)

let () =
  Alcotest.run "document"
    [
      ( "differential",
        [
          prop_observations_agree;
          prop_order_pairs_agree;
          prop_membership_agrees;
          prop_compatible_agrees;
          prop_equal_compare_agree;
          prop_duplicates_agree;
        ] );
      ( "bounds",
        [ Alcotest.test_case "out-of-range positions" `Quick test_bounds ] );
      ( "scale",
        [ Alcotest.test_case "10^4-element rope" `Quick test_large_document ] );
    ]
