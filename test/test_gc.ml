(* The continuous-GC acceptance suite: compaction is semantically
   transparent.  A GC driver runs out of band (heartbeats injected only
   into empty channels, no RNG draws, no sequence numbers), so driving
   the same seed with and without a GC policy must produce the same
   schedule, the same behavior, and the same final documents — the GC
   run just retains less metadata.  The differential properties check
   exactly that, across fault models and both delivery paths; the unit
   tests below them pin the policy parser, the driver's trigger and
   snapshot arithmetic, and the transport-level dedup pruning. *)

open Rlist_model
module Faults = Rlist_net.Faults
module Transport = Rlist_net.Transport
module E = Rlist_sim.Engine.Make (Jupiter_css.Pruned_protocol)

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print:string_of_int gen prop)

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let params = { Rlist_sim.Schedule.default_params with updates = 30 }

let fault_models =
  List.map
    (fun n -> n, Option.get (Faults.preset n))
    [ "drop"; "dup"; "reorder"; "partition"; "chaos"; "heavy-loss" ]

let net_for seed =
  let _, faults = List.nth fault_models (seed mod List.length fault_models) in
  Transport.config ~faults ~seed ()

(* An aggressive policy so that short random runs still cycle: every
   trigger kind armed, tiny thresholds, snapshots on. *)
let eager_policy =
  {
    Rlist_gc.triggers =
      [ Rlist_gc.Every_ops 8; Rlist_gc.Metadata_above 64; Rlist_gc.Ack_lag 8 ];
    retain_keys = 16;
    snapshot_every = 1;
  }

type outcome = {
  schedule : Rlist_sim.Schedule.t;
  behavior : (Replica_id.t * Document.t) list;
  finals : string list;
  converged : bool;
  cycles : int;
}

let run_p (type c s a b)
    (module P : Rlist_sim.Protocol_intf.PROTOCOL
      with type client = c
       and type server = s
       and type c2s = a
       and type s2c = b) ?gc ?(batching = false) ~faulty seed =
  let module E = Rlist_sim.Engine.Make (P) in
  let net = if faulty then Some (net_for seed) else None in
  let t = E.create ?net ?gc ~batching ~nclients:3 () in
  let rng = Random.State.make [| seed; 0xFA17 |] in
  let schedule = E.run_random t ~rng ~params in
  {
    schedule;
    behavior = E.behavior t;
    finals =
      Document.to_string (E.server_document t)
      :: List.init 3 (fun i -> Document.to_string (E.client_document t (i + 1)));
    converged = E.converged t;
    cycles =
      (match E.gc_stats t with None -> 0 | Some s -> s.Rlist_gc.cycles);
  }

let run = run_p (module Jupiter_css.Pruned_protocol)

let behavior_equal =
  List.equal (fun (r1, d1) (r2, d2) ->
      Replica_id.equal r1 r2 && Document.equal d1 d2)

(* Protocols without an acknowledgement frontier ([gc_support = None])
   still accept a policy — cycles degrade to transport-level pruning —
   so the transparency property is checked for them too. *)
let transparent ?(p = `Pruned) ?batching ~faulty seed =
  let go ?gc () =
    match p with
    | `Pruned -> run_p (module Jupiter_css.Pruned_protocol) ?gc ?batching ~faulty seed
    | `Css -> run_p (module Jupiter_css.Protocol) ?gc ?batching ~faulty seed
    | `Cscw -> run_p (module Jupiter_cscw.Protocol) ?gc ?batching ~faulty seed
  in
  let off = go () in
  let on_ = go ~gc:eager_policy () in
  off.schedule = on_.schedule
  && behavior_equal off.behavior on_.behavior
  && List.equal String.equal off.finals on_.finals
  && off.converged && on_.converged

let prop_transparent_reliable =
  qtest ~count:60 "pruned: gc on = gc off (reliable)" seed_gen
    (transparent ?p:None ?batching:None ~faulty:false)

let prop_transparent_faulty =
  qtest ~count:60 "pruned: gc on = gc off (faulty, shimmed)" seed_gen
    (transparent ?p:None ?batching:None ~faulty:true)

let prop_transparent_batched =
  qtest ~count:40 "pruned: gc on = gc off (batched, reliable)" seed_gen
    (transparent ?p:None ~batching:true ~faulty:false)

let prop_transparent_batched_faulty =
  qtest ~count:40 "pruned: gc on = gc off (batched, faulty)" seed_gen
    (transparent ?p:None ~batching:true ~faulty:true)

let prop_transparent_css =
  qtest ~count:30 "css: gc on = gc off (reliable)" seed_gen
    (transparent ~p:`Css ?batching:None ~faulty:false)

let prop_transparent_css_faulty =
  qtest ~count:30 "css: gc on = gc off (faulty, shimmed)" seed_gen
    (transparent ~p:`Css ?batching:None ~faulty:true)

let prop_transparent_cscw =
  qtest ~count:30 "cscw: gc on = gc off (reliable)" seed_gen
    (transparent ~p:`Cscw ?batching:None ~faulty:false)

let prop_transparent_cscw_faulty =
  qtest ~count:30 "cscw: gc on = gc off (faulty, shimmed)" seed_gen
    (transparent ~p:`Cscw ?batching:None ~faulty:true)

(* The transparency property would hold vacuously if the driver never
   fired; make sure the eager policy actually cycles on these runs. *)
let prop_cycles_fire =
  qtest ~count:25 "eager policy actually cycles" seed_gen (fun seed ->
      (run ~gc:eager_policy ~faulty:false seed).cycles > 0)

(* --- policy parsing --------------------------------------------------- *)

let test_policy_round_trip () =
  List.iter
    (fun s ->
      match Rlist_gc.of_string s with
      | Error e -> Alcotest.failf "%S did not parse: %s" s e
      | Ok p ->
        let back =
          match Rlist_gc.of_string (Rlist_gc.to_string p) with
          | Ok p' -> p'
          | Error e -> Alcotest.failf "%S did not re-parse: %s" s e
        in
        Alcotest.(check string)
          (Printf.sprintf "round trip of %S" s)
          (Rlist_gc.to_string p) (Rlist_gc.to_string back))
    [
      "default";
      "ops=64";
      "meta=4096";
      "lag=256";
      "ops=64,meta=4096,lag=256,retain=64,snap=4";
      "snap=0,ops=1";
    ]

let test_policy_rejects () =
  List.iter
    (fun s ->
      match Rlist_gc.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" s)
    [ ""; "retain=64"; "ops=0"; "meta=-3"; "ops=sixty"; "bogus=1"; "ops" ]

(* --- driver unit tests ------------------------------------------------ *)

let test_driver_triggers () =
  let d =
    Rlist_gc.Driver.create
      {
        Rlist_gc.triggers = [ Rlist_gc.Every_ops 10; Rlist_gc.Ack_lag 5 ];
        retain_keys = 4;
        snapshot_every = 1;
      }
  in
  let due ~meta ~lag = Rlist_gc.Driver.due d ~meta ~lag in
  Alcotest.(check bool) "quiet start" true (due ~meta:0 ~lag:0 = None);
  Rlist_gc.Driver.note_ops d 9;
  Alcotest.(check bool) "one short of ops" true (due ~meta:0 ~lag:0 = None);
  Alcotest.(check bool)
    "lag fires first" true
    (due ~meta:0 ~lag:6 = Some (Rlist_gc.Ack_lag 5));
  Rlist_gc.Driver.note_ops d 1;
  Alcotest.(check bool)
    "ops trigger fires" true
    (due ~meta:0 ~lag:0 = Some (Rlist_gc.Every_ops 10));
  let cycle = Rlist_gc.Driver.begin_cycle d (Rlist_gc.Every_ops 10) in
  Alcotest.(check int) "first cycle" 1 cycle;
  Alcotest.(check bool) "no reentrant cycle" true (due ~meta:0 ~lag:99 = None);
  Rlist_gc.Driver.end_cycle d ~reclaimed_states:3 ~reclaimed_log:2
    ~reclaimed_keys:1 ~snapshot_bytes:(Some 10) ~meta:7;
  let s = Rlist_gc.Driver.stats d in
  Alcotest.(check int) "cycles" 1 s.Rlist_gc.cycles;
  Alcotest.(check int) "states" 3 s.Rlist_gc.reclaimed_states;
  Alcotest.(check int) "log" 2 s.Rlist_gc.reclaimed_log;
  Alcotest.(check int) "keys" 1 s.Rlist_gc.reclaimed_keys;
  Alcotest.(check int) "snapshots" 1 s.Rlist_gc.snapshots;
  Alcotest.(check int) "snapshot bytes" 10 s.Rlist_gc.last_snapshot_bytes;
  Alcotest.(check int) "meta peak" 7 s.Rlist_gc.meta_peak;
  Alcotest.(check bool)
    "ops counter reset by begin_cycle" true
    (due ~meta:0 ~lag:0 = None)

(* A snapshot is only due once enough operations have passed to pay
   for the previous one's bytes — the amortization that keeps per-op
   snapshot cost constant as the document grows. *)
let test_driver_snapshot_amortization () =
  let d =
    Rlist_gc.Driver.create
      {
        Rlist_gc.triggers = [ Rlist_gc.Every_ops 1 ];
        retain_keys = 4;
        snapshot_every = 1;
      }
  in
  Alcotest.(check bool)
    "first snapshot free" true
    (Rlist_gc.Driver.snapshot_due d);
  ignore (Rlist_gc.Driver.begin_cycle d (Rlist_gc.Every_ops 1));
  (* A huge snapshot: 6400 bytes = 100 ops of budget at 64 bytes/op. *)
  Rlist_gc.Driver.end_cycle d ~reclaimed_states:0 ~reclaimed_log:0
    ~reclaimed_keys:0 ~snapshot_bytes:(Some 6400) ~meta:0;
  Rlist_gc.Driver.note_ops d 99;
  Alcotest.(check bool)
    "99 ops have not paid for 6400 bytes" false
    (Rlist_gc.Driver.snapshot_due d);
  Rlist_gc.Driver.note_ops d 1;
  Alcotest.(check bool)
    "100 ops have" true
    (Rlist_gc.Driver.snapshot_due d);
  let d0 =
    Rlist_gc.Driver.create
      { Rlist_gc.default with Rlist_gc.snapshot_every = 0 }
  in
  Alcotest.(check bool)
    "snap=0 disables snapshots" false
    (Rlist_gc.Driver.snapshot_due d0)

(* --- transport dedup pruning ------------------------------------------ *)

let test_transport_prune_delivered () =
  let faults = Option.get (Faults.preset "dup") in
  let cfg = Transport.config ~shim:true ~faults ~seed:5 () in
  let ch =
    Transport.create ~key:(fun i -> Some (string_of_int i)) cfg
  in
  for i = 1 to 40 do
    Transport.send ch i;
    (* drain with a few ticks so retransmissions and dups settle *)
    for _ = 1 to 3 do
      Transport.tick ch;
      while Transport.deliverable ch > 0 do
        ignore (Transport.deliver ch)
      done
    done
  done;
  let before = Transport.dedup_keys ch in
  Alcotest.(check bool)
    (Printf.sprintf "dedup table grew (%d keys)" before)
    true (before > 8);
  let dropped = Transport.prune_delivered ch ~retain:8 in
  Alcotest.(check int) "accounting matches" (before - 8) dropped;
  Alcotest.(check int) "retained exactly" 8 (Transport.dedup_keys ch);
  (* Pruning the dedup history must not re-admit anything: keep
     draining, the stream stays exactly 1..40 with no duplicates. *)
  Alcotest.(check int) "prune again is a no-op" 0
    (Transport.prune_delivered ch ~retain:8)

(* --- stable snapshot round trip --------------------------------------- *)

let test_stable_snapshot_round_trip () =
  let doc =
    List.fold_left
      (fun d (i, c) ->
        Document.insert d ~pos:i
          (Element.make ~value:c ~id:(Op_id.make ~client:1 ~seq:(i + 1))))
      Document.empty
      [ 0, 'j'; 1, 'u'; 2, 'p'; 3, 'i'; 4, 't'; 5, 'e'; 6, 'r' ]
  in
  let snap = { Jupiter_css.Snapshot.at_serial = 7; stable_doc = doc } in
  let s = Jupiter_css.Snapshot.stable_to_string snap in
  let back = Jupiter_css.Snapshot.stable_of_string s in
  Alcotest.(check int) "serial survives" 7 back.Jupiter_css.Snapshot.at_serial;
  Alcotest.(check string)
    "document survives" "jupiter"
    (Document.to_string back.Jupiter_css.Snapshot.stable_doc);
  Alcotest.(check bool)
    "malformed input rejected" true
    (try
       ignore (Jupiter_css.Snapshot.stable_of_string "stable nonsense");
       false
     with Invalid_argument _ -> true)

(* The engine's GC driver emits the same artifact end to end. *)
let test_engine_snapshot_artifact () =
  let t = E.create ~gc:eager_policy ~nclients:2 () in
  let rng = Random.State.make [| 11; 0xFA17 |] in
  ignore (E.run_random t ~rng ~params);
  match E.gc_last_snapshot t with
  | None -> Alcotest.fail "eager policy took no snapshot"
  | Some s ->
    let snap = Jupiter_css.Snapshot.stable_of_string s in
    Alcotest.(check bool)
      "snapshot covers a pruned prefix" true
      (snap.Jupiter_css.Snapshot.at_serial >= 0)

let () =
  Alcotest.run "gc"
    [
      ( "transparency",
        [
          prop_transparent_reliable;
          prop_transparent_faulty;
          prop_transparent_batched;
          prop_transparent_batched_faulty;
          prop_transparent_css;
          prop_transparent_css_faulty;
          prop_transparent_cscw;
          prop_transparent_cscw_faulty;
          prop_cycles_fire;
        ] );
      ( "policy",
        [
          Alcotest.test_case "parse round trips" `Quick test_policy_round_trip;
          Alcotest.test_case "malformed rejected" `Quick test_policy_rejects;
        ] );
      ( "driver",
        [
          Alcotest.test_case "triggers and accounting" `Quick
            test_driver_triggers;
          Alcotest.test_case "snapshot amortization" `Quick
            test_driver_snapshot_amortization;
        ] );
      ( "transport",
        [
          Alcotest.test_case "ack-driven dedup pruning" `Quick
            test_transport_prune_delivered;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "stable snapshot round trips" `Quick
            test_stable_snapshot_round_trip;
          Alcotest.test_case "engine emits the artifact" `Quick
            test_engine_snapshot_artifact;
        ] );
    ]
