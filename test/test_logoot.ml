(* Tests for the Logoot baseline: position-identifier allocation and
   ordering, the list operations, and — as for RGA — convergence plus
   the strong list specification on random schedules. *)

open Rlist_model
module Pos = Jupiter_logoot.Position
module Llist = Jupiter_logoot.Logoot_list
module Run = Helpers.Run (Jupiter_logoot.Protocol)

(* --- positions -------------------------------------------------------- *)

let test_fences () =
  Alcotest.(check bool) "head < tail" true (Pos.compare Pos.head Pos.tail < 0)

let test_prefix_order () =
  let p = [ { Pos.digit = 5; site = 1; clock = 1 } ] in
  let q = p @ [ { Pos.digit = 1; site = 2; clock = 1 } ] in
  Alcotest.(check bool) "prefix is smaller" true (Pos.compare p q < 0);
  Alcotest.(check bool) "reflexive" true (Pos.equal p p)

let test_site_tiebreak () =
  let p = [ { Pos.digit = 5; site = 1; clock = 1 } ] in
  let q = [ { Pos.digit = 5; site = 2; clock = 1 } ] in
  Alcotest.(check bool) "site breaks ties" true (Pos.compare p q < 0)

let test_between_basic () =
  let rng = Random.State.make [| 1 |] in
  let p = Pos.between ~rng ~site:1 ~clock:1 Pos.head Pos.tail in
  Alcotest.(check bool) "above head" true (Pos.compare Pos.head p < 0);
  Alcotest.(check bool) "below tail" true (Pos.compare p Pos.tail < 0);
  Alcotest.(check bool)
    "bad bounds rejected" true
    (try
       ignore (Pos.between ~rng ~site:1 ~clock:2 p p);
       false
     with Invalid_argument _ -> true)

let test_between_adjacent_digits () =
  (* Bounds one digit apart force a descent. *)
  let rng = Random.State.make [| 2 |] in
  let p = [ { Pos.digit = 3; site = 1; clock = 1 } ] in
  let q = [ { Pos.digit = 4; site = 1; clock = 2 } ] in
  let r = Pos.between ~rng ~site:2 ~clock:1 p q in
  Alcotest.(check bool) "p < r" true (Pos.compare p r < 0);
  Alcotest.(check bool) "r < q" true (Pos.compare r q < 0)

let test_between_same_digit_sites () =
  (* Bounds with equal digits, ordered by site only. *)
  let rng = Random.State.make [| 3 |] in
  let p = [ { Pos.digit = 3; site = 1; clock = 1 } ] in
  let q = [ { Pos.digit = 3; site = 5; clock = 1 } ] in
  let r = Pos.between ~rng ~site:9 ~clock:1 p q in
  Alcotest.(check bool) "p < r" true (Pos.compare p r < 0);
  Alcotest.(check bool) "r < q" true (Pos.compare r q < 0)

let prop_between_dense =
  (* Repeatedly splitting a random interval keeps producing strictly
     inner positions — identifier space is dense. *)
  Helpers.qtest ~count:300 "allocation is dense"
    QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 1 40))
    (fun (seed, rounds) ->
      let rng = Random.State.make [| seed |] in
      let rec split lo hi clock remaining =
        remaining = 0
        ||
        let site = 1 + (clock mod 3) in
        let mid = Pos.between ~rng ~site ~clock lo hi in
        Pos.compare lo mid < 0
        && Pos.compare mid hi < 0
        && split
             (if clock mod 2 = 0 then lo else mid)
             (if clock mod 2 = 0 then mid else hi)
             (clock + 1) (remaining - 1)
      in
      split Pos.head Pos.tail 1 rounds)

(* --- list ------------------------------------------------------------- *)

let test_list_insert_delete () =
  let rng = Random.State.make [| 4 |] in
  let list = Llist.create ~rng ~site:1 ~initial:Document.empty in
  let a = Helpers.elt ~client:1 ~seq:1 'a' in
  let b = Helpers.elt ~client:1 ~seq:2 'b' in
  Llist.insert list ~elt:a ~at:(Llist.allocate list ~pos:0);
  Llist.insert list ~elt:b ~at:(Llist.allocate list ~pos:1);
  Alcotest.(check string) "ab" "ab" (Document.to_string (Llist.document list));
  Alcotest.(check bool)
    "position recorded" true
    (Llist.position_of list a.Element.id <> None);
  Llist.delete list ~target:a.Element.id;
  Alcotest.(check string) "a removed, no tombstone" "b"
    (Document.to_string (Llist.document list));
  Alcotest.(check int) "size drops" 1 (Llist.size list);
  (* duplicate delete ignored *)
  Llist.delete list ~target:a.Element.id;
  Alcotest.(check int) "idempotent" 1 (Llist.size list)

let test_list_duplicate_position_rejected () =
  let rng = Random.State.make [| 5 |] in
  let list = Llist.create ~rng ~site:1 ~initial:Document.empty in
  let a = Helpers.elt ~client:1 ~seq:1 'a' in
  let at = Llist.allocate list ~pos:0 in
  Llist.insert list ~elt:a ~at;
  Alcotest.(check bool)
    "same position rejected" true
    (try
       Llist.insert list ~elt:(Helpers.elt ~client:2 ~seq:1 'b') ~at;
       false
     with Invalid_argument _ -> true)

let test_list_initial_document () =
  let rng = Random.State.make [| 6 |] in
  let list = Llist.create ~rng ~site:1 ~initial:(Document.of_string "xyz") in
  Alcotest.(check string) "seeded" "xyz"
    (Document.to_string (Llist.document list));
  (* inserting between seeded elements works *)
  let a = Helpers.elt ~client:1 ~seq:1 'a' in
  Llist.insert list ~elt:a ~at:(Llist.allocate list ~pos:1);
  Alcotest.(check string) "into the middle" "xayz"
    (Document.to_string (Llist.document list))

(* --- protocol --------------------------------------------------------- *)

let test_figure1_logoot () =
  let t = Run.scenario Rlist_sim.Figures.figure1 in
  Alcotest.(check string)
    "effect" "effect"
    (Document.to_string (Run.E.server_document t));
  Alcotest.(check bool) "converged" true (Run.E.converged t)

let test_figure7_logoot_strong () =
  let t = Run.scenario Rlist_sim.Figures.figure7 in
  Alcotest.(check bool) "converged" true (Run.E.converged t);
  Helpers.check_satisfied "strong"
    (Rlist_spec.Strong_spec.check (Run.E.trace t))

let gen_seed = QCheck2.Gen.int_range 1 1_000_000

let params =
  { Rlist_sim.Schedule.default_params with updates = 25; deliver_bias = 0.5 }

let prop_convergence =
  Helpers.qtest ~count:60 "Logoot satisfies convergence" gen_seed (fun seed ->
      let t, _ = Run.random ~params seed in
      Run.E.converged t
      && Rlist_spec.Check.is_satisfied
           (Rlist_spec.Convergence.check_all_events (Run.E.trace t)))

let prop_strong_spec =
  Helpers.qtest ~count:60 "Logoot satisfies the strong list specification"
    gen_seed (fun seed ->
      let t, _ = Run.random ~params seed in
      let trace = Run.E.trace t in
      Result.is_ok (Rlist_spec.Trace.validate trace)
      && Rlist_spec.Check.is_satisfied (Rlist_spec.Strong_spec.check trace))

let prop_no_tombstones =
  Helpers.qtest ~count:20 "metadata equals the live document" gen_seed
    (fun seed ->
      let t, _ = Run.random ~params seed in
      Run.E.server_metadata_size t
      = Document.length (Run.E.server_document t))

let () =
  Alcotest.run "logoot"
    [
      ( "position",
        [
          Alcotest.test_case "fences" `Quick test_fences;
          Alcotest.test_case "prefix order" `Quick test_prefix_order;
          Alcotest.test_case "site tie-break" `Quick test_site_tiebreak;
          Alcotest.test_case "between: basic" `Quick test_between_basic;
          Alcotest.test_case "between: adjacent digits" `Quick
            test_between_adjacent_digits;
          Alcotest.test_case "between: same digit, site order" `Quick
            test_between_same_digit_sites;
          prop_between_dense;
        ] );
      ( "list",
        [
          Alcotest.test_case "insert and delete" `Quick
            test_list_insert_delete;
          Alcotest.test_case "duplicate position rejected" `Quick
            test_list_duplicate_position_rejected;
          Alcotest.test_case "initial document" `Quick
            test_list_initial_document;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "figure 1" `Quick test_figure1_logoot;
          Alcotest.test_case "figure 7 satisfies strong" `Quick
            test_figure7_logoot_strong;
          prop_convergence;
          prop_strong_spec;
          prop_no_tombstones;
        ] );
    ]
