(* Golden-schema test for the JSONL trace format.

   The trace format is a public artifact: `jupiter_sim report` (and
   any external tooling) consumes trace files written by earlier
   builds, so the rendering of every event variant is pinned to a
   checked-in golden file — any drift fails here and forces a
   deliberate decision — and every variant must survive an
   encode/decode round trip through [Event.of_jsonl]. *)

module Event = Rlist_obs.Event

(* One exemplar per constructor, plus the interesting edge cases:
   reads (no op id), batched ids (joined with '+'), every wire action,
   and a name that needs JSON escaping. *)
let exemplars : Event.t list =
  [
    Generate
      { replica = "c1"; op_id = Some "1.1"; intent = "ins"; queue = 1;
        tick = 0 };
    Generate
      { replica = "c2"; op_id = None; intent = "read"; queue = 0; tick = 7 };
    Send
      { src = "c1"; dst = "server"; op_id = Some "1.1"; bytes = 120;
        queue = 1; tick = 2 };
    Send
      { src = "server"; dst = "c2"; op_id = Some "1.1+2.1"; bytes = 230;
        queue = 2; tick = 5 };
    Deliver
      { replica = "server"; src = "c1"; op_id = Some "1.1"; transforms = 3;
        queue = 0; tick = 4 };
    Deliver
      { replica = "c2"; src = "server"; op_id = None; transforms = 0;
        queue = 1; tick = 6 };
    Transform { replica = "server"; count = 12 };
    Apply { replica = "c2"; op_id = Some "1.1"; doc_len = 5; tick = 9 };
    Apply { replica = "c1"; op_id = None; doc_len = 5; tick = 9 };
    Wire { channel = "c1->server"; action = "drop"; wseq = 4; info = 0;
           tick = 11 };
    Wire { channel = "c1->server"; action = "partition_drop"; wseq = 5;
           info = 0; tick = 12 };
    Wire { channel = "server->c2"; action = "dup"; wseq = 6; info = 0;
           tick = 13 };
    Wire { channel = "p1->p2"; action = "delay"; wseq = 9; info = 6;
           tick = 31 };
    Wire { channel = "server->c2"; action = "retransmit"; wseq = 4; info = 2;
           tick = 23 };
    Wire { channel = "c1->server"; action = "ack"; wseq = 7; info = 0;
           tick = 40 };
    Wire { channel = "c1->server"; action = "ack_drop"; wseq = 7; info = 0;
           tick = 41 };
    Wire { channel = "server->c2"; action = "dup_drop"; wseq = 6; info = 0;
           tick = 42 };
    Wire { channel = "p2->p1"; action = "ooo"; wseq = 8; info = 0;
           tick = 43 };
    State_space_grow
      { replica = "server"; level = 3; states = 10; transitions = 17 };
    Span { name = "quiesce \"phase\" \\ 1"; dur_ns = 12345. };
    Gc_begin { cycle = 1; trigger = "ops=64"; meta = 412; tick = 50 };
    Gc_end
      { cycle = 1; reclaimed_states = 37; reclaimed_log = 12;
        reclaimed_keys = 24; meta = 180; snapshot_bytes = 96; skipped = 1;
        tick = 51 };
  ]

let rendered () =
  String.concat "\n" (List.mapi (fun i e -> Event.to_jsonl ~seq:i e) exemplars)
  ^ "\n"

let golden_path = "golden/trace_schema.golden"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden () =
  let expected =
    try read_file golden_path
    with Sys_error msg ->
      Alcotest.failf
        "missing golden file (%s); regenerate it from the exemplar list and \
         review the diff before checking it in"
        msg
  in
  Alcotest.(check string)
    "JSONL rendering matches the checked-in schema (if this is an \
     intentional format change, regenerate golden/trace_schema.golden and \
     bump the consumers)"
    expected (rendered ())

let event = Alcotest.testable Event.pp (fun a b -> a = b)

let test_round_trip () =
  List.iteri
    (fun i e ->
      match Event.of_jsonl (Event.to_jsonl ~seq:i e) with
      | None ->
        Alcotest.failf "variant %d (%s) did not decode" i (Event.kind e)
      | Some (seq, e') ->
        Alcotest.(check int) "seq survives" i seq;
        Alcotest.check event
          (Printf.sprintf "variant %d (%s) round-trips" i (Event.kind e))
          e e')
    exemplars

let test_decoder_skips_non_events () =
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "skips %S" (if String.length line > 30 then
                                      String.sub line 0 30 else line))
        true
        (Option.is_none (Event.of_jsonl line)))
    [
      "";
      "not json at all";
      "{\"type\": \"summary\", \"scenario\": \"figure2\", \"converged\": \
       true}";
      "{\"seq\": 3, \"type\": \"no-such-kind\", \"replica\": \"c1\"}";
      "{\"seq\": 1}";
    ]

let test_accessors () =
  let gen = List.nth exemplars 0 in
  Alcotest.(check (option string)) "op_id" (Some "1.1") (Event.op_id gen);
  Alcotest.(check (option int)) "tick" (Some 0) (Event.tick gen);
  let xf = List.nth exemplars 6 in
  Alcotest.(check (option string)) "transform has no op" None
    (Event.op_id xf);
  Alcotest.(check (option int)) "transform has no tick" None (Event.tick xf);
  List.iteri
    (fun i e ->
      match Event.of_jsonl (Event.to_jsonl ~seq:i e) with
      | Some (_, e') ->
        Alcotest.(check (option string))
          "op_id stable across round trip" (Event.op_id e) (Event.op_id e')
      | None -> Alcotest.failf "variant %d did not decode" i)
    exemplars

let () =
  Alcotest.run "trace-schema"
    [
      ( "schema",
        [
          Alcotest.test_case "golden file matches" `Quick test_golden;
          Alcotest.test_case "every variant round-trips" `Quick
            test_round_trip;
          Alcotest.test_case "decoder skips non-events" `Quick
            test_decoder_skips_non_events;
          Alcotest.test_case "accessors" `Quick test_accessors;
        ] );
    ]
