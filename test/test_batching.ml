(* Unit tests for batched operation processing: State_space.add_run
   must be observationally identical to folding add_op (same states,
   transitions, forms, and — with the append fast path off — the same
   primitive transformation count), and each fast-path guard is pinned
   individually (context match, pure-append run, position tie
   fallback, mixed-batch splitting). *)

open Rlist_model
open Rlist_ot
module Space = Jupiter_css.State_space

let space_testable : Space.t Alcotest.testable =
  Alcotest.testable Space.pp Space.equal

let key_table () =
  let serials : (Op_id.t, int) Hashtbl.t = Hashtbl.create 8 in
  let key id =
    match Hashtbl.find_opt serials id with
    | Some s -> Jupiter_css.Order_key.Serialized s
    | None -> Jupiter_css.Order_key.Pending id.Op_id.seq
  in
  serials, key

(* Run the same (op, ctx) stream through two fresh spaces sharing a
   serial table: one processes [batch] with a single {!add_run}, the
   other folds {!add_op}.  Both first replay the [prefix]
   operation-by-operation.  Returns (batched space, folded space,
   add_run forms, fold forms). *)
let differential ~fastpath ~prefix ~batch =
  let serials, key = key_table () in
  List.iteri
    (fun i oc -> Hashtbl.replace serials oc.Context.op.Op.id (i + 1))
    (prefix @ batch);
  let run enabled ops_into =
    (* A fresh per-space record: the counters below are exactly this
       space's, nothing shared across test cases. *)
    let fp = Space.Fastpath.create ~enabled () in
    let space = Space.create ~fastpath:fp ~key_of:key () in
    List.iter (fun oc -> ignore (Space.add_op space oc)) prefix;
    let forms = ops_into space in
    space, forms
  in
  let batched, batched_forms =
    run fastpath (fun space -> Space.add_run space batch)
  in
  let folded, folded_forms =
    run false (fun space -> List.map (Space.add_op space) batch)
  in
  batched, folded, batched_forms, folded_forms

let check_same ?(same_ot = true) ~fastpath ~prefix ~batch () =
  let batched, folded, bf, ff = differential ~fastpath ~prefix ~batch in
  Alcotest.check space_testable "spaces equal" folded batched;
  Alcotest.(check int)
    "transition counts equal"
    (Space.num_transitions folded)
    (Space.num_transitions batched);
  Alcotest.(check (list Helpers.op)) "forms equal" ff bf;
  if same_ot then
    Alcotest.(check int) "ot counts equal" (Space.ot_count folded)
      (Space.ot_count batched)
  else
    Alcotest.(check bool)
      (Printf.sprintf "batched ot (%d) <= folded ot (%d)"
         (Space.ot_count batched) (Space.ot_count folded))
      true
      (Space.ot_count batched <= Space.ot_count folded)

(* Chain contexts the way a replica generating back to back does. *)
let chain ~ctx ops =
  let _, acc =
    List.fold_left
      (fun (ctx, acc) op ->
        Context.extend ctx op, Context.with_context op ~ctx :: acc)
      (ctx, []) ops
  in
  List.rev acc

let appends ~client ~seq0 ~pos0 n =
  List.init n (fun i ->
      Helpers.ins ~client ~seq:(seq0 + i)
        (Char.chr (Char.code 'a' + (i mod 26)))
        (pos0 + i))

(* --- Context-match fast path ---------------------------------------- *)

let test_quiescent_run () =
  let batch = chain ~ctx:Context.empty (appends ~client:1 ~seq0:1 ~pos0:0 5) in
  check_same ~fastpath:false ~prefix:[] ~batch ();
  (* A quiescent run performs no transformation at all, and every
     operation of it lands on the context-match shortcut. *)
  let batched, _, _, _ = differential ~fastpath:false ~prefix:[] ~batch in
  Alcotest.(check bool)
    "context hits counted" true
    ((Space.fastpath batched).Space.Fastpath.context_hits > 0);
  Alcotest.(check int) "no transformations" 0 (Space.ot_count batched)

(* --- Append fast path: one case per transform shape ------------------ *)

(* One concurrent foreign operation [f] (serialized first) forms a
   one-step leftmost path that a run of appends at positions 3..6 must
   cross; each foreign shape exercises one arithmetic case. *)
let crossing_case f =
  let prefix = [ Context.with_context f ~ctx:Context.empty ] in
  let batch = chain ~ctx:Context.empty (appends ~client:1 ~seq0:1 ~pos0:3 4) in
  prefix, batch

let test_cross_ins_before () =
  let prefix, batch = crossing_case (Helpers.ins ~client:2 'z' 1) in
  check_same ~same_ot:false ~fastpath:true ~prefix ~batch ();
  (* The arithmetic levels replace every crossing transformation. *)
  let batched, folded, _, _ = differential ~fastpath:true ~prefix ~batch in
  Alcotest.(check bool)
    "append hits counted" true
    ((Space.fastpath batched).Space.Fastpath.append_hits > 0);
  Alcotest.(check bool)
    (Printf.sprintf "strictly fewer transformations (%d < %d)"
       (Space.ot_count batched) (Space.ot_count folded))
    true
    (Space.ot_count batched < Space.ot_count folded)

let test_cross_ins_after () =
  let prefix, batch = crossing_case (Helpers.ins ~client:2 'z' 9) in
  check_same ~same_ot:false ~fastpath:true ~prefix ~batch ()

let test_cross_ins_tie () =
  (* Foreign insertion exactly at the run's start position: element
     priority decides, and the fast path must fall back to the
     generic squares — the transformation count stays the fold's. *)
  let prefix, batch = crossing_case (Helpers.ins ~client:2 'z' 3) in
  check_same ~same_ot:true ~fastpath:true ~prefix ~batch ()

let test_cross_del_before () =
  let prefix, batch =
    crossing_case (Helpers.del ~client:2 (Helpers.elt ~client:9 'q') 0)
  in
  check_same ~same_ot:false ~fastpath:true ~prefix ~batch ()

let test_cross_del_inside () =
  let prefix, batch =
    crossing_case (Helpers.del ~client:2 (Helpers.elt ~client:9 'q') 4)
  in
  check_same ~same_ot:false ~fastpath:true ~prefix ~batch ()

let test_fastpath_off_matches_ot () =
  (* With the toggle off, batching alone never changes the
     transformation count, whatever the run shape. *)
  List.iter
    (fun f ->
      let prefix, batch = crossing_case f in
      check_same ~same_ot:true ~fastpath:false ~prefix ~batch ())
    [
      Helpers.ins ~client:2 'z' 1;
      Helpers.ins ~client:2 'z' 3;
      Helpers.ins ~client:2 'z' 9;
      Helpers.del ~client:2 (Helpers.elt ~client:9 'q') 0;
      Helpers.del ~client:2 (Helpers.elt ~client:9 'q') 4;
    ]

(* --- Mixed batches --------------------------------------------------- *)

let test_mixed_batch_splits () =
  (* A batch whose middle operation saw a foreign operation in between
     is not one contiguous run; add_run must split it and process each
     segment where its context matches. *)
  let x = Helpers.ins ~client:2 'x' 0 in
  let a = Helpers.ins ~client:1 ~seq:1 'a' 0 in
  let b = Helpers.ins ~client:1 ~seq:2 'b' 1 in
  let c = Helpers.ins ~client:1 ~seq:3 'c' 2 in
  let ctx_ab = Context.empty in
  let ctx_b = Context.extend ctx_ab a in
  (* c was generated after x arrived at its replica. *)
  let ctx_c = Context.extend (Context.extend ctx_b b) x in
  let prefix = [ Context.with_context x ~ctx:Context.empty ] in
  let batch =
    [
      Context.with_context a ~ctx:ctx_ab;
      Context.with_context b ~ctx:ctx_b;
      Context.with_context c ~ctx:ctx_c;
    ]
  in
  check_same ~same_ot:true ~fastpath:false ~prefix ~batch ();
  check_same ~same_ot:false ~fastpath:true ~prefix ~batch ()

let test_non_insert_runs () =
  (* Runs containing deletions take the generic squares but must still
     be fold-identical, fast path on or off. *)
  let seed = appends ~client:9 ~seq0:1 ~pos0:0 4 in
  let prefix = chain ~ctx:Context.empty seed in
  let seeded =
    List.fold_left (fun ctx op -> Context.extend ctx op) Context.empty seed
  in
  let f = Helpers.ins ~client:2 'z' 2 in
  let prefix = prefix @ [ Context.with_context f ~ctx:seeded ] in
  let e1 = Helpers.elt ~client:9 ~seq:2 'b' in
  let run =
    [
      Helpers.ins ~client:1 ~seq:1 'k' 1;
      Helpers.del ~client:1 ~seq:2 e1 2;
      Helpers.ins ~client:1 ~seq:3 'm' 2;
    ]
  in
  let batch = chain ~ctx:seeded run in
  check_same ~same_ot:true ~fastpath:false ~prefix ~batch ();
  check_same ~same_ot:false ~fastpath:true ~prefix ~batch ()

(* The C16 benchmark ablation (the fast-path record's [baseline]) restores
   the seed's constant work per ladder square but must change nothing
   observable: a space built under it is equal to the normal one, with
   the same forms and transformation count. *)
let test_baseline_mode_equivalent () =
  let prefix, batch = crossing_case (Helpers.ins ~client:2 'z' 1) in
  let ops = prefix @ batch in
  let serials, key = key_table () in
  List.iteri
    (fun i oc -> Hashtbl.replace serials oc.Context.op.Op.id (i + 1))
    ops;
  let build baseline =
    let space =
      Space.create
        ~fastpath:(Space.Fastpath.create ~baseline ())
        ~key_of:key ()
    in
    let forms = List.map (Space.add_op space) ops in
    space, forms
  in
  let opt, opt_forms = build false in
  let base, base_forms = build true in
  Alcotest.check space_testable "spaces equal" opt base;
  Alcotest.(check (list Helpers.op)) "forms equal" opt_forms base_forms;
  Alcotest.(check int)
    "ot counts equal" (Space.ot_count opt) (Space.ot_count base)

(* --- Randomized fold equivalence ------------------------------------- *)

(* A synthetic server: a common seed prefix, then a burst of foreign
   operations, then one client's run arriving as a batch.  Each stream
   is generated against the document it would actually see (ops must
   be contextually consistent — concurrent deletes of the same
   position on the same state delete the same element, which the
   strict transform asserts). *)
let gen_scenario =
  QCheck2.Gen.(
    let stream ~client ~n doc0 =
      let rec go doc acc seq n =
        if n = 0 then return (List.rev acc)
        else
          let* op = Helpers.gen_op_on ~client ~seq doc in
          go (Op.apply op doc) (op :: acc) (seq + 1) (n - 1)
      in
      go doc0 [] 1 n
    in
    let* nseed = int_range 0 3 in
    let* nforeign = int_range 0 3 in
    let* nrun = int_range 2 6 in
    let* pure = frequency [ 2, return true; 1, return false ] in
    let* seed_ops = stream ~client:9 ~n:nseed Document.empty in
    let seed_doc =
      List.fold_left (fun d op -> Op.apply op d) Document.empty seed_ops
    in
    let* foreign_ops = stream ~client:2 ~n:nforeign seed_doc in
    let* run_ops =
      if pure then
        return (appends ~client:1 ~seq0:1 ~pos0:(Document.length seed_doc) nrun)
      else stream ~client:1 ~n:nrun seed_doc
    in
    return (seed_ops, foreign_ops, run_ops))

let scenario_prop ~fastpath (seed_ops, foreign_ops, run_ops) =
  let seeded =
    List.fold_left (fun ctx op -> Context.extend ctx op) Context.empty seed_ops
  in
  let prefix =
    chain ~ctx:Context.empty seed_ops @ chain ~ctx:seeded foreign_ops
  in
  let batch = chain ~ctx:seeded run_ops in
  let batched, folded, bf, ff = differential ~fastpath ~prefix ~batch in
  Space.equal folded batched
  && List.equal Op.equal ff bf
  && (fastpath || Space.ot_count folded = Space.ot_count batched)
  && Space.ot_count batched <= Space.ot_count folded

(* --- Engine-level batching: what the wire sees ----------------------- *)

module Css_engine = Rlist_sim.Engine.Make (Jupiter_css.Protocol)
module Sched = Rlist_sim.Schedule
module Transport = Rlist_net.Transport
module Faults = Rlist_net.Faults
module Stats = Rlist_net.Stats

(* Consecutive generates coalesce into one transport payload — one
   [Transport.send], hence one sequence number and one retransmission
   unit — while the per-operation counters keep counting operations. *)
let test_one_seqno_per_batch () =
  let cfg = Transport.config ~faults:Faults.none ~seed:1 () in
  let t = Css_engine.create ~net:cfg ~batching:true ~nclients:2 () in
  List.iter (Css_engine.apply_event t)
    [
      Sched.Generate (1, Intent.Insert ('a', 0));
      Sched.Generate (1, Intent.Insert ('b', 1));
      Sched.Generate (1, Intent.Insert ('c', 2));
    ];
  let st = Transport.stats cfg in
  Alcotest.(check int)
    "outbox holds three ops" 3
    (Css_engine.pending_to_server t 1);
  Alcotest.(check int) "nothing on the wire yet" 0 st.Stats.payloads;
  Css_engine.apply_event t (Sched.Deliver_to_server 1);
  Alcotest.(check int) "one payload for the batch" 1 st.Stats.payloads;
  Alcotest.(check int) "three ops inside it" 3 st.Stats.op_payloads;
  Css_engine.apply_event t (Sched.Deliver_to_client 1);
  Css_engine.apply_event t (Sched.Deliver_to_client 2);
  Alcotest.(check int) "fan-out batches stay whole" 3 st.Stats.payloads;
  Alcotest.(check int) "ops counted per operation" 9 st.Stats.op_payloads;
  Alcotest.(check bool) "converged" true (Css_engine.converged t)

(* Batches survive the fault models: the shim retransmits and
   deduplicates whole batches (their dedup key joins the member op
   ids), and the run still converges with zero contract violations.
   Deterministic per seed, so the > 0 assertions are stable. *)
let test_batch_retransmit_dedup () =
  let faults =
    { Faults.none with Faults.drop = 0.3; duplicate = 0.3; reorder = 0.2 }
  in
  let cfg = Transport.config ~faults ~seed:42 () in
  let t = Css_engine.create ~net:cfg ~batching:true ~nclients:3 () in
  let rng = Random.State.make [| 42 |] in
  let params = { Sched.default_params with updates = 40 } in
  ignore (Css_engine.run_random t ~rng ~params);
  let st = Transport.stats cfg in
  Alcotest.(check bool) "converged" true (Css_engine.converged t);
  Alcotest.(check int)
    "no contract violations" 0 st.Stats.contract_violations;
  Alcotest.(check bool)
    "batches were retransmitted" true
    (st.Stats.retransmits > 0);
  Alcotest.(check bool)
    "duplicate batches suppressed" true
    (st.Stats.dup_dropped > 0);
  Alcotest.(check bool)
    "sends coalesced" true
    (st.Stats.payloads < st.Stats.op_payloads);
  Alcotest.(check bool)
    "per-op amplification >= 1" true
    (Stats.amplification st >= 1.0)

(* Checkpoint/restore with batch payloads: a sender crash between
   batches retransmits from the checkpointed buffer, the receiver's
   sequence numbers suppress the batches it already applied, and every
   operation arrives exactly once, in order. *)
let test_batch_checkpoint_recovery () =
  let cfg =
    Transport.config ~faults:(Option.get (Faults.preset "chaos")) ~seed:13 ()
  in
  let key b = Some (String.concat "+" (List.map string_of_int b)) in
  let ch = Transport.create ~key ~weight:List.length cfg in
  let got = ref [] in
  let drain () =
    while Transport.deliverable ch > 0 do
      match Transport.deliver ch with
      | Some b -> got := !got @ b
      | None -> ()
    done
  in
  let ck = ref (Transport.sender_checkpoint ch) in
  let send_ck b =
    Transport.send ch b;
    ck := Transport.sender_checkpoint ch
  in
  List.iter send_ck [ [ 0; 1 ]; [ 2 ]; [ 3; 4; 5 ] ];
  for _ = 1 to 8 do
    drain ();
    Transport.tick ch
  done;
  Transport.drop_wire ch;
  Transport.restore_sender ch !ck;
  List.iter send_ck [ [ 6; 7 ]; [ 8; 9 ] ];
  let stalled = ref 0 in
  while Transport.pending ch > 0 do
    let any = Transport.deliverable ch > 0 in
    drain ();
    if any then stalled := 0
    else begin
      incr stalled;
      if !stalled > 100_000 then Alcotest.fail "cannot quiesce"
    end;
    Transport.tick ch
  done;
  Alcotest.(check (list int))
    "each op exactly once, in order"
    (List.init 10 Fun.id)
    !got;
  let st = Transport.stats cfg in
  Alcotest.(check bool)
    "op transmissions cover the retransmits" true
    (st.Stats.op_transmissions >= st.Stats.op_payloads)

let qtest name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:300 gen prop)

let () =
  Alcotest.run "batching"
    [
      ( "state-space",
        [
          Alcotest.test_case "quiescent run (context match)" `Quick
            test_quiescent_run;
          Alcotest.test_case "crossing insert before run" `Quick
            test_cross_ins_before;
          Alcotest.test_case "crossing insert after run" `Quick
            test_cross_ins_after;
          Alcotest.test_case "crossing insert at tie falls back" `Quick
            test_cross_ins_tie;
          Alcotest.test_case "crossing delete before run" `Quick
            test_cross_del_before;
          Alcotest.test_case "crossing delete inside run" `Quick
            test_cross_del_inside;
          Alcotest.test_case "fast path off keeps ot count" `Quick
            test_fastpath_off_matches_ot;
          Alcotest.test_case "mixed batch splits into runs" `Quick
            test_mixed_batch_splits;
          Alcotest.test_case "runs with deletions" `Quick test_non_insert_runs;
          Alcotest.test_case "baseline ablation is observationally inert"
            `Quick test_baseline_mode_equivalent;
          qtest "add_run = fold add_op (generic)" gen_scenario
            (scenario_prop ~fastpath:false);
          qtest "add_run = fold add_op (fast paths)" gen_scenario
            (scenario_prop ~fastpath:true);
        ] );
      ( "engine-wire",
        [
          Alcotest.test_case "one seqno per batch" `Quick
            test_one_seqno_per_batch;
          Alcotest.test_case "batch retransmission and dedup" `Quick
            test_batch_retransmit_dedup;
          Alcotest.test_case "checkpoint recovery with batches" `Quick
            test_batch_checkpoint_recovery;
        ] );
    ]
