(* Shared utilities for the test suites. *)

open Rlist_model

let document : Document.t Alcotest.testable =
  Alcotest.testable Document.pp_detailed Document.equal

let doc_string : Document.t Alcotest.testable =
  Alcotest.testable Document.pp (fun a b ->
      String.equal (Document.to_string a) (Document.to_string b))

let op : Rlist_ot.Op.t Alcotest.testable =
  Alcotest.testable Rlist_ot.Op.pp Rlist_ot.Op.equal

let op_id : Op_id.t Alcotest.testable = Alcotest.testable Op_id.pp Op_id.equal

let op_id_set : Op_id.Set.t Alcotest.testable =
  Alcotest.testable Op_id.Set.pp Op_id.Set.equal

let check_satisfied what result =
  match result with
  | Rlist_spec.Check.Satisfied -> ()
  | Rlist_spec.Check.Violated _ ->
    Alcotest.failf "%s: expected satisfied, got %a" what Rlist_spec.Check.pp
      result

let check_violated what result =
  match result with
  | Rlist_spec.Check.Violated _ -> ()
  | Rlist_spec.Check.Satisfied ->
    Alcotest.failf "%s: expected a violation, got satisfied" what

(* Substring search, for asserting on rendered output. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let elt ?(client = 1) ?(seq = 1) value =
  Element.make ~value ~id:(Op_id.make ~client ~seq)

let ins ?(client = 1) ?(seq = 1) value pos =
  let id = Op_id.make ~client ~seq in
  Rlist_ot.Op.make_ins ~id (Element.make ~value ~id) pos

let del ?(client = 1) ?(seq = 1) element pos =
  Rlist_ot.Op.make_del ~id:(Op_id.make ~client ~seq) element pos

(* QCheck generators. *)

let gen_char = QCheck2.Gen.char_range 'a' 'z'

(* A document of distinct elements attributed to pseudo-client 9. *)
let gen_document =
  QCheck2.Gen.(
    map
      (fun values ->
        Document.of_elements
          (List.mapi
             (fun i value ->
               Element.make ~value ~id:(Op_id.make ~client:9 ~seq:(i + 1)))
             values))
      (list_size (int_range 0 12) gen_char))

(* A pair of operations defined on the same document, from two distinct
   clients (as required for a meaningful CP1 check). *)
let gen_op_on ~client ~seq doc =
  QCheck2.Gen.(
    let len = Document.length doc in
    let insert =
      map2
        (fun value pos ->
          let id = Op_id.make ~client ~seq in
          Rlist_ot.Op.make_ins ~id (Element.make ~value ~id) pos)
        gen_char (int_range 0 len)
    in
    if len = 0 then insert
    else
      let delete =
        map
          (fun pos ->
            Rlist_ot.Op.make_del
              ~id:(Op_id.make ~client ~seq)
              (Document.nth doc pos) pos)
          (int_range 0 (len - 1))
      in
      oneof [ insert; delete ])

let gen_cp1_instance =
  QCheck2.Gen.(
    gen_document >>= fun doc ->
    gen_op_on ~client:1 ~seq:1 doc >>= fun o1 ->
    gen_op_on ~client:2 ~seq:1 doc >>= fun o2 -> return (doc, o1, o2))

(* Run a named figure scenario under a protocol's engine. *)
module Run (P : Rlist_sim.Protocol_intf.PROTOCOL) = struct
  module E = Rlist_sim.Engine.Make (P)

  let scenario (s : Rlist_sim.Figures.scenario) =
    let t = E.create ~initial:s.initial ~nclients:s.nclients () in
    E.run t s.schedule;
    t

  let random ?intent ?(nclients = 4) ?(initial = Document.empty)
      ?(params = Rlist_sim.Schedule.default_params) seed =
    let t = E.create ~initial ~nclients () in
    let rng = Random.State.make [| seed; 0xC0FFEE |] in
    let schedule = E.run_random ?intent t ~rng ~params in
    t, schedule
end

module Css_run = Run (Jupiter_css.Protocol)
module Cscw_run = Run (Jupiter_cscw.Protocol)
module Rga_run = Run (Jupiter_rga.Protocol)
module Naive_run = Run (Jupiter_cscw.Naive_p2p)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen prop)
