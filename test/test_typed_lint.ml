(* Tests for the typed interprocedural layer (lib/lint over .cmt
   artifacts): corpus loading, call-graph construction, the
   determinism-reachability pass (including witness-chain content and
   formatting), the domain-safety inventory and its shard-readiness
   report, and the graph exports.

   The corpus is test/fixtures_typed/ — eleven hand-written modules
   compiled with -bin-annot by a dune rule, carrying two seeded bugs
   (a 3-hop transitive Random chain and a module-level hashtable), a
   clean module, a suppressed sink, and one module per escape-pass
   verdict (stack-confined, instance-confined, and the closure /
   module-binding / container-nested escapes). *)

open Rlist_lint

let fixture_dir = "fixtures_typed"

let corpus = lazy (Cmt_loader.load_dir fixture_dir)

let graph = lazy (Callgraph.build (Lazy.force corpus))

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.equal (String.sub haystack i nn) needle || go (i + 1)
  in
  go 0

let test_loading () =
  let c = Lazy.force corpus in
  Alcotest.(check (list string))
    "all eleven fixture units load"
    [
      "Fx_allowed"; "Fx_clean"; "Fx_entry"; "Fx_esc_closure";
      "Fx_esc_instance"; "Fx_esc_module"; "Fx_esc_nested"; "Fx_esc_stack";
      "Fx_leaf"; "Fx_mid"; "Fx_table";
    ]
    (List.map
       (fun (u : Cmt_loader.unit_info) -> u.modname)
       (Cmt_loader.units c));
  Alcotest.(check (list string)) "no load errors" [] (Cmt_loader.errors c)

let test_graph_edges () =
  let g = Lazy.force graph in
  let calls id =
    match Callgraph.find g id with
    | Some d -> d.Callgraph.d_calls
    | None -> Alcotest.failf "node %s missing from the graph" id
  in
  Alcotest.(check (list string))
    "entry calls mid across the unit boundary" [ "Fx_mid.step" ]
    (calls "Fx_entry.transform");
  Alcotest.(check (list string))
    "mid calls leaf" [ "Fx_leaf.pick" ] (calls "Fx_mid.step");
  Alcotest.(check (list string))
    "same-unit call resolves by ident, not name" [ "Fx_allowed.jitter" ]
    (calls "Fx_allowed.transform")

let test_entry_matching () =
  let g = Lazy.force graph in
  Alcotest.(check (list string))
    "the default patterns pick up every fixture entry point"
    [
      "Fx_allowed.transform";
      "Fx_clean.server_receive";
      "Fx_entry.transform";
      "Fx_esc_closure.server_receive";
      "Fx_esc_instance.transform";
      "Fx_esc_module.transform";
      "Fx_esc_nested.server_receive";
      "Fx_esc_stack.server_receive";
      "Fx_table.server_receive_all";
    ]
    (List.sort String.compare (Typed.entry_ids g Typed.default_entries));
  Alcotest.(check (list string))
    "a dotted pattern matches the display path" [ "Fx_table.remember" ]
    (Typed.entry_ids g [ "Fx_table.rem*" ])

let test_det_reach () =
  let r = Typed.det_reach (Lazy.force graph) in
  match r.r_findings with
  | [ rand; iter ] ->
    Alcotest.(check string) "rule" "det-reach" rand.Finding.rule;
    Alcotest.(check string)
      "the finding is anchored at the sink site" "fx_leaf.ml"
      rand.Finding.file;
    Alcotest.(check int) "sink line" 3 rand.Finding.line;
    Alcotest.(check (list string))
      "witness chain runs entry -> mid -> leaf -> primitive"
      [ "Fx_entry.transform"; "Fx_mid.step"; "Fx_leaf.pick"; "Random.int" ]
      rand.Finding.chain;
    Alcotest.(check string)
      "the hash-order iteration is the second seeded bug" "fx_table.ml"
      iter.Finding.file;
    Alcotest.(check (list string))
      "with its own witness chain"
      [ "Fx_table.server_receive_all"; "Hashtbl.iter" ]
      iter.Finding.chain
  | fs ->
    Alcotest.failf
      "expected exactly the two seeded findings, got %d: %s" (List.length fs)
      (String.concat "; "
         (List.map (fun (f : Finding.t) -> f.file ^ ":" ^ f.rule) fs))

let test_suppressed_sink () =
  let r = Typed.det_reach (Lazy.force graph) in
  Alcotest.(check bool)
    "the [@lint.allow]ed sink in fx_allowed is exempt" false
    (List.exists
       (fun (f : Finding.t) -> String.equal f.file "fx_allowed.ml")
       r.r_findings);
  Alcotest.(check bool)
    "the clean module stays clean" false
    (List.exists
       (fun (f : Finding.t) -> String.equal f.file "fx_clean.ml")
       r.r_findings)

let test_witness_formatting () =
  let r = Typed.det_reach (Lazy.force graph) in
  match r.r_findings with
  | [ f; _ ] ->
    let rendered = Format.asprintf "%a" Finding.pp f in
    Alcotest.(check bool)
      "pp prints the chain on a continuation line" true
      (contains
         ~needle:
           "via Fx_entry.transform -> Fx_mid.step -> Fx_leaf.pick -> \
            Random.int"
         rendered);
    let json = Finding.to_json f in
    Alcotest.(check bool)
      "to_json carries the chain array" true
      (contains
         ~needle:
           "\"chain\":[\"Fx_entry.transform\",\"Fx_mid.step\",\"Fx_leaf.pick\",\"Random.int\"]"
         json)
  | fs -> Alcotest.failf "expected two findings, got %d" (List.length fs)

let test_untyped_json_has_no_chain () =
  let f = Finding.v ~file:"x.ml" ~line:1 ~col:1 ~rule:"poly-eq" "m" in
  Alcotest.(check bool)
    "single-site findings keep the old JSON shape" false
    (contains ~needle:"chain" (Finding.to_json f))

let test_domain_scan () =
  let muts = Typed.domain_scan (Lazy.force corpus) in
  Alcotest.(check (list (pair string string)))
    "module-level mutables: the seeded table plus the two escape seeds"
    [
      "Fx_esc_module.buf", "Buffer.t";
      "Fx_esc_nested.registry", "Hashtbl.t";
      "Fx_table.table", "Hashtbl.t";
    ]
    (List.map (fun (m : Typed.mut_entry) -> m.Typed.m_disp, m.m_kind) muts);
  List.iter
    (fun (m : Typed.mut_entry) ->
      Alcotest.(check string)
        (m.Typed.m_disp ^ " classified shared-unsafe")
        "shared-unsafe"
        (Typed.class_name m.m_class);
      Alcotest.(check bool) "not suppressed" false m.m_suppressed)
    muts;
  Alcotest.(check (list string))
    "each is a module-mutable finding"
    [ "module-mutable"; "module-mutable"; "module-mutable" ]
    (List.map (fun (f : Finding.t) -> f.rule) (Typed.domain_findings muts))

let test_domain_report () =
  let muts = Typed.domain_scan (Lazy.force corpus) in
  let json = Typed.domain_report_json muts in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "report contains %s" needle)
        true (contains ~needle json))
    [
      "\"version\":1";
      "\"shard_ready\":false";
      "\"shared-unsafe\":3";
      "\"unsuppressed_shared_unsafe\":3";
      "\"name\":\"Fx_table.table\"";
      "\"name\":\"Fx_esc_module.buf\"";
      "\"kind\":\"Hashtbl.t\"";
    ];
  Alcotest.(check bool)
    "an empty inventory is shard-ready" true
    (contains ~needle:"\"shard_ready\":true" (Typed.domain_report_json []))

let test_run_combined () =
  Alcotest.(check (list (pair string string)))
    "all three passes' findings come back merged and sorted"
    [
      "fx_esc_closure.ml", "escape";
      "fx_esc_module.ml", "module-mutable";
      "fx_esc_module.ml", "escape";
      "fx_esc_nested.ml", "module-mutable";
      "fx_esc_nested.ml", "escape";
      "fx_esc_nested.ml", "escape";
      "fx_leaf.ml", "det-reach";
      "fx_table.ml", "module-mutable";
      "fx_table.ml", "escape";
      "fx_table.ml", "det-reach";
    ]
    (List.map
       (fun (f : Finding.t) -> f.file, f.rule)
       (Typed.run (Lazy.force corpus)))

let test_exports () =
  let g = Lazy.force graph in
  let r = Typed.det_reach g in
  let dot = Callgraph.dot ~entries:r.r_entries ~reached:r.r_reached g in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "dot contains %s" needle)
        true (contains ~needle dot))
    [
      "digraph callgraph";
      "\"Fx_entry.transform\" -> \"Fx_mid.step\"";
      "fillcolor=lightblue";
      "fillcolor=salmon";
    ];
  Alcotest.(check string)
    "dot ids and labels escape quotes, angle brackets and backslashes"
    "M.(init) \\\"x\\\" \\<t\\> a\\\\b"
    (Callgraph.dot_escape "M.(init) \"x\" <t> a\\b");
  let json = Callgraph.json ~entries:r.r_entries ~reached:r.r_reached g in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "graph json contains %s" needle)
        true (contains ~needle json))
    [
      "\"version\":1";
      "[\"Fx_entry.transform\",\"Fx_mid.step\"]";
      "\"entry\":true";
      "\"sinks\":1";
    ]

let escape_result =
  lazy
    (let r = Typed.det_reach (Lazy.force graph) in
     Escape.analyze ~reached:r.Typed.r_reached (Lazy.force corpus))

let find_alloc ~file ~line =
  let esc = Lazy.force escape_result in
  match
    List.find_opt
      (fun (a : Escape.alloc) ->
        String.equal a.a_file file && a.a_line = line)
      esc.Escape.allocs
  with
  | Some a -> a
  | None -> Alcotest.failf "no allocation inventoried at %s:%d" file line

let check_alloc ~file ~line ~kind ~verdict ~chain () =
  let a = find_alloc ~file ~line in
  Alcotest.(check string) (file ^ " kind") kind a.Escape.a_kind;
  Alcotest.(check string)
    (file ^ " verdict") verdict
    (Escape.verdict_name a.a_verdict);
  Alcotest.(check (list string)) (file ^ " witness chain") chain a.a_chain

(* One fixture per verdict, each with its exact witness chain — the
   chain is the user-facing artifact, so its shape is pinned. *)
let test_escape_stack () =
  check_alloc ~file:"fx_esc_stack.ml" ~line:4 ~kind:"ref"
    ~verdict:"stack-confined" ~chain:[] ()

let test_escape_instance () =
  check_alloc ~file:"fx_esc_instance.ml" ~line:8 ~kind:"Hashtbl.t"
    ~verdict:"instance-confined"
    ~chain:
      [
        "Hashtbl.t allocated in Fx_esc_instance.create (fx_esc_instance.ml:8)";
        "returned from Fx_esc_instance.create";
      ]
    ()

let test_escape_closure () =
  check_alloc ~file:"fx_esc_closure.ml" ~line:4 ~kind:"ref"
    ~verdict:"escaping"
    ~chain:
      [
        "ref allocated in Fx_esc_closure.counter (fx_esc_closure.ml:4)";
        "module-level binding Fx_esc_closure.counter (fx_esc_closure.ml:3)";
      ]
    ()

let test_escape_module () =
  check_alloc ~file:"fx_esc_module.ml" ~line:3 ~kind:"Buffer.t"
    ~verdict:"escaping"
    ~chain:
      [
        "Buffer.t allocated in Fx_esc_module.buf (fx_esc_module.ml:3)";
        "module-level binding Fx_esc_module.buf (fx_esc_module.ml:3)";
      ]
    ()

let test_escape_nested () =
  (* the cell escapes *transitively*: stored one container level deep
     into the module-level registry *)
  check_alloc ~file:"fx_esc_nested.ml" ~line:6 ~kind:"ref"
    ~verdict:"escaping"
    ~chain:
      [
        "ref allocated in Fx_esc_nested.register (fx_esc_nested.ml:6)";
        "stored via Hashtbl.replace (fx_esc_nested.ml:7)";
        "module-level binding Fx_esc_nested.registry (fx_esc_nested.ml:3)";
      ]
    ();
  check_alloc ~file:"fx_esc_nested.ml" ~line:3 ~kind:"Hashtbl.t"
    ~verdict:"escaping"
    ~chain:
      [
        "Hashtbl.t allocated in Fx_esc_nested.registry (fx_esc_nested.ml:3)";
        "module-level binding Fx_esc_nested.registry (fx_esc_nested.ml:3)";
      ]
    ()

let test_escape_findings_and_report () =
  let esc = Lazy.force escape_result in
  Alcotest.(check int)
    "every reachable escaping allocation is a finding" 5
    (Escape.unsuppressed_escaping esc);
  Alcotest.(check (list string))
    "findings carry the escape rule"
    [ "escape"; "escape"; "escape"; "escape"; "escape" ]
    (List.map (fun (f : Finding.t) -> f.rule) (Escape.findings esc));
  let json = Escape.report_json esc in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "escape report contains %s" needle)
        true (contains ~needle json))
    [
      "\"version\":1";
      "\"escaping\":5";
      "\"stack-confined\":";
      "\"instance-confined\":";
      "\"escaping_unsuppressed\":5";
      "\"def\":\"Fx_esc_nested.register\"";
      "stored via Hashtbl.replace (fx_esc_nested.ml:7)";
    ];
  let dr =
    Typed.domain_report_json
      ~escaping_unsuppressed:(Escape.unsuppressed_escaping esc)
      []
  in
  Alcotest.(check bool)
    "unsuppressed escapes veto shard-readiness" true
    (contains ~needle:"\"shard_ready\":false" dr)

let () =
  Alcotest.run "typed-lint"
    [
      ( "corpus",
        [
          Alcotest.test_case "fixture loading" `Quick test_loading;
          Alcotest.test_case "call-graph edges" `Quick test_graph_edges;
          Alcotest.test_case "entry matching" `Quick test_entry_matching;
        ] );
      ( "determinism reachability",
        [
          Alcotest.test_case "3-hop transitive sink" `Quick test_det_reach;
          Alcotest.test_case "suppressed and clean stay quiet" `Quick
            test_suppressed_sink;
          Alcotest.test_case "witness formatting" `Quick
            test_witness_formatting;
          Alcotest.test_case "no chain on untyped findings" `Quick
            test_untyped_json_has_no_chain;
        ] );
      ( "domain safety",
        [
          Alcotest.test_case "inventory and classes" `Quick test_domain_scan;
          Alcotest.test_case "shard-readiness report" `Quick
            test_domain_report;
          Alcotest.test_case "combined run" `Quick test_run_combined;
        ] );
      ( "escape confinement",
        [
          Alcotest.test_case "stack-confined" `Quick test_escape_stack;
          Alcotest.test_case "instance-confined" `Quick test_escape_instance;
          Alcotest.test_case "closure-capture escape" `Quick
            test_escape_closure;
          Alcotest.test_case "module-binding escape" `Quick
            test_escape_module;
          Alcotest.test_case "container-nested escape" `Quick
            test_escape_nested;
          Alcotest.test_case "findings and report" `Quick
            test_escape_findings_and_report;
        ] );
      ( "exports",
        [ Alcotest.test_case "dot and json" `Quick test_exports ] );
    ]
