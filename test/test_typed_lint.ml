(* Tests for the typed interprocedural layer (lib/lint over .cmt
   artifacts): corpus loading, call-graph construction, the
   determinism-reachability pass (including witness-chain content and
   formatting), the domain-safety inventory and its shard-readiness
   report, and the graph exports.

   The corpus is test/fixtures_typed/ — six hand-written modules
   compiled with -bin-annot by a dune rule, carrying two seeded bugs
   (a 3-hop transitive Random chain and a module-level hashtable), a
   clean module, and a suppressed sink. *)

open Rlist_lint

let fixture_dir = "fixtures_typed"

let corpus = lazy (Cmt_loader.load_dir fixture_dir)

let graph = lazy (Callgraph.build (Lazy.force corpus))

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.equal (String.sub haystack i nn) needle || go (i + 1)
  in
  go 0

let test_loading () =
  let c = Lazy.force corpus in
  Alcotest.(check (list string))
    "all six fixture units load"
    [ "Fx_allowed"; "Fx_clean"; "Fx_entry"; "Fx_leaf"; "Fx_mid"; "Fx_table" ]
    (List.map
       (fun (u : Cmt_loader.unit_info) -> u.modname)
       (Cmt_loader.units c));
  Alcotest.(check (list string)) "no load errors" [] (Cmt_loader.errors c)

let test_graph_edges () =
  let g = Lazy.force graph in
  let calls id =
    match Callgraph.find g id with
    | Some d -> d.Callgraph.d_calls
    | None -> Alcotest.failf "node %s missing from the graph" id
  in
  Alcotest.(check (list string))
    "entry calls mid across the unit boundary" [ "Fx_mid.step" ]
    (calls "Fx_entry.transform");
  Alcotest.(check (list string))
    "mid calls leaf" [ "Fx_leaf.pick" ] (calls "Fx_mid.step");
  Alcotest.(check (list string))
    "same-unit call resolves by ident, not name" [ "Fx_allowed.jitter" ]
    (calls "Fx_allowed.transform")

let test_entry_matching () =
  let g = Lazy.force graph in
  Alcotest.(check (list string))
    "the default patterns pick up every fixture entry point"
    [
      "Fx_allowed.transform";
      "Fx_clean.server_receive";
      "Fx_entry.transform";
      "Fx_table.server_receive_all";
    ]
    (List.sort String.compare (Typed.entry_ids g Typed.default_entries));
  Alcotest.(check (list string))
    "a dotted pattern matches the display path" [ "Fx_table.remember" ]
    (Typed.entry_ids g [ "Fx_table.rem*" ])

let test_det_reach () =
  let r = Typed.det_reach (Lazy.force graph) in
  match r.r_findings with
  | [ rand; iter ] ->
    Alcotest.(check string) "rule" "det-reach" rand.Finding.rule;
    Alcotest.(check string)
      "the finding is anchored at the sink site" "fx_leaf.ml"
      rand.Finding.file;
    Alcotest.(check int) "sink line" 3 rand.Finding.line;
    Alcotest.(check (list string))
      "witness chain runs entry -> mid -> leaf -> primitive"
      [ "Fx_entry.transform"; "Fx_mid.step"; "Fx_leaf.pick"; "Random.int" ]
      rand.Finding.chain;
    Alcotest.(check string)
      "the hash-order iteration is the second seeded bug" "fx_table.ml"
      iter.Finding.file;
    Alcotest.(check (list string))
      "with its own witness chain"
      [ "Fx_table.server_receive_all"; "Hashtbl.iter" ]
      iter.Finding.chain
  | fs ->
    Alcotest.failf
      "expected exactly the two seeded findings, got %d: %s" (List.length fs)
      (String.concat "; "
         (List.map (fun (f : Finding.t) -> f.file ^ ":" ^ f.rule) fs))

let test_suppressed_sink () =
  let r = Typed.det_reach (Lazy.force graph) in
  Alcotest.(check bool)
    "the [@lint.allow]ed sink in fx_allowed is exempt" false
    (List.exists
       (fun (f : Finding.t) -> String.equal f.file "fx_allowed.ml")
       r.r_findings);
  Alcotest.(check bool)
    "the clean module stays clean" false
    (List.exists
       (fun (f : Finding.t) -> String.equal f.file "fx_clean.ml")
       r.r_findings)

let test_witness_formatting () =
  let r = Typed.det_reach (Lazy.force graph) in
  match r.r_findings with
  | [ f; _ ] ->
    let rendered = Format.asprintf "%a" Finding.pp f in
    Alcotest.(check bool)
      "pp prints the chain on a continuation line" true
      (contains
         ~needle:
           "via Fx_entry.transform -> Fx_mid.step -> Fx_leaf.pick -> \
            Random.int"
         rendered);
    let json = Finding.to_json f in
    Alcotest.(check bool)
      "to_json carries the chain array" true
      (contains
         ~needle:
           "\"chain\":[\"Fx_entry.transform\",\"Fx_mid.step\",\"Fx_leaf.pick\",\"Random.int\"]"
         json)
  | fs -> Alcotest.failf "expected two findings, got %d" (List.length fs)

let test_untyped_json_has_no_chain () =
  let f = Finding.v ~file:"x.ml" ~line:1 ~col:1 ~rule:"poly-eq" "m" in
  Alcotest.(check bool)
    "single-site findings keep the old JSON shape" false
    (contains ~needle:"chain" (Finding.to_json f))

let test_domain_scan () =
  let muts = Typed.domain_scan (Lazy.force corpus) in
  match muts with
  | [ m ] ->
    Alcotest.(check string) "the table is found" "Fx_table.table" m.Typed.m_disp;
    Alcotest.(check string) "kind" "Hashtbl.t" m.m_kind;
    Alcotest.(check string)
      "classified shared-unsafe" "shared-unsafe"
      (Typed.class_name m.m_class);
    Alcotest.(check bool) "not suppressed" false m.m_suppressed;
    Alcotest.(check (list string))
      "and it is a module-mutable finding" [ "module-mutable" ]
      (List.map
         (fun (f : Finding.t) -> f.rule)
         (Typed.domain_findings muts))
  | ms ->
    Alcotest.failf "expected exactly the seeded table, got %d" (List.length ms)

let test_domain_report () =
  let muts = Typed.domain_scan (Lazy.force corpus) in
  let json = Typed.domain_report_json muts in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "report contains %s" needle)
        true (contains ~needle json))
    [
      "\"version\":1";
      "\"shard_ready\":false";
      "\"shared-unsafe\":1";
      "\"unsuppressed_shared_unsafe\":1";
      "\"name\":\"Fx_table.table\"";
      "\"kind\":\"Hashtbl.t\"";
    ];
  Alcotest.(check bool)
    "an empty inventory is shard-ready" true
    (contains ~needle:"\"shard_ready\":true" (Typed.domain_report_json []))

let test_run_combined () =
  Alcotest.(check (list string))
    "both passes' findings come back merged and sorted"
    [ "det-reach"; "module-mutable"; "det-reach" ]
    (List.map
       (fun (f : Finding.t) -> f.rule)
       (Typed.run (Lazy.force corpus)))

let test_exports () =
  let g = Lazy.force graph in
  let r = Typed.det_reach g in
  let dot = Callgraph.dot ~entries:r.r_entries ~reached:r.r_reached g in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "dot contains %s" needle)
        true (contains ~needle dot))
    [
      "digraph callgraph";
      "\"Fx_entry.transform\" -> \"Fx_mid.step\"";
      "fillcolor=lightblue";
      "fillcolor=salmon";
    ];
  let json = Callgraph.json ~entries:r.r_entries ~reached:r.r_reached g in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "graph json contains %s" needle)
        true (contains ~needle json))
    [
      "\"version\":1";
      "[\"Fx_entry.transform\",\"Fx_mid.step\"]";
      "\"entry\":true";
      "\"sinks\":1";
    ]

let () =
  Alcotest.run "typed-lint"
    [
      ( "corpus",
        [
          Alcotest.test_case "fixture loading" `Quick test_loading;
          Alcotest.test_case "call-graph edges" `Quick test_graph_edges;
          Alcotest.test_case "entry matching" `Quick test_entry_matching;
        ] );
      ( "determinism reachability",
        [
          Alcotest.test_case "3-hop transitive sink" `Quick test_det_reach;
          Alcotest.test_case "suppressed and clean stay quiet" `Quick
            test_suppressed_sink;
          Alcotest.test_case "witness formatting" `Quick
            test_witness_formatting;
          Alcotest.test_case "no chain on untyped findings" `Quick
            test_untyped_json_has_no_chain;
        ] );
      ( "domain safety",
        [
          Alcotest.test_case "inventory and classes" `Quick test_domain_scan;
          Alcotest.test_case "shard-readiness report" `Quick
            test_domain_report;
          Alcotest.test_case "combined run" `Quick test_run_combined;
        ] );
      ( "exports",
        [ Alcotest.test_case "dot and json" `Quick test_exports ] );
    ]
