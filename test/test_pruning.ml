(* Tests for state-space compaction and the pruning CSS protocol: the
   space is rebased correctly, the pruned protocol is observationally
   identical to the plain CSS protocol under the same schedule, and
   the metadata actually stays bounded when everyone keeps editing. *)

open Rlist_model
open Rlist_ot
module Space = Jupiter_css.State_space
module Css = Helpers.Css_run.E
module Pruned = Rlist_sim.Engine.Make (Jupiter_css.Pruned_protocol)

(* --- State_space.compact unit tests ----------------------------------- *)

let serial_key_table () =
  let serials : (Op_id.t, int) Hashtbl.t = Hashtbl.create 8 in
  let key id =
    match Hashtbl.find_opt serials id with
    | Some s -> Jupiter_css.Order_key.Serialized s
    | None -> Jupiter_css.Order_key.Pending id.Op_id.seq
  in
  serials, key

(* A space with two serialized concurrent inserts (full square) plus a
   third op on top. *)
let build_square () =
  let serials, key = serial_key_table () in
  let space = Space.create ~key_of:key () in
  let o1 = Helpers.ins ~client:1 'a' 0 in
  let o2 = Helpers.ins ~client:2 'b' 0 in
  let o3 = Helpers.ins ~client:3 'c' 0 in
  Hashtbl.replace serials o1.Op.id 1;
  Hashtbl.replace serials o2.Op.id 2;
  Hashtbl.replace serials o3.Op.id 3;
  ignore (Space.add_op space (Context.with_context o1 ~ctx:Space.initial_state));
  ignore (Space.add_op space (Context.with_context o2 ~ctx:Space.initial_state));
  let ctx12 = Op_id.Set.of_list [ o1.Op.id; o2.Op.id ] in
  ignore (Space.add_op space (Context.with_context o3 ~ctx:ctx12));
  space, o1, o2, o3

let test_compact_noop () =
  let space, _, _, _ = build_square () in
  let before = Space.num_states space in
  let doc =
    Space.compact space ~stable:Space.initial_state ~base_doc:Document.empty
  in
  Alcotest.(check int) "nothing pruned" before (Space.num_states space);
  Alcotest.(check string) "base doc unchanged" "" (Document.to_string doc)

let test_compact_one_op () =
  let space, o1, o2, o3 = build_square () in
  let stable = Op_id.Set.singleton o1.Op.id in
  let doc = Space.compact space ~stable ~base_doc:Document.empty in
  (* States dropped: {} and {2}; kept: {1}, {1,2}, {1,2,3} — then the
     survivors are rebased by subtracting the stable set, so the space
     holds {}, {2}, {2,3} and the root is the initial state again. *)
  Alcotest.(check int) "three states left" 3 (Space.num_states space);
  Alcotest.check Helpers.op_id_set "root rebased to empty"
    Space.initial_state (Space.root space);
  Alcotest.(check string) "doc at new root" "a" (Document.to_string doc);
  Alcotest.(check bool)
    "rebased survivor present" true
    (Space.mem_state space (Op_id.Set.singleton o2.Op.id));
  Alcotest.check Helpers.op_id_set "final rebased"
    (Op_id.Set.of_list [ o2.Op.id; o3.Op.id ])
    (Space.final space);
  Alcotest.(check bool)
    "pre-rebase survivor representation gone" false
    (Space.mem_state space (Op_id.Set.of_list [ o1.Op.id; o2.Op.id ]))

let test_compact_to_final () =
  let space, o1, o2, o3 = build_square () in
  let stable = Op_id.Set.of_list [ o1.Op.id; o2.Op.id; o3.Op.id ] in
  let doc = Space.compact space ~stable ~base_doc:Document.empty in
  Alcotest.(check int) "single state left" 1 (Space.num_states space);
  (* b (client 2) outranks a, c (client 3) outranks both at position 0. *)
  Alcotest.(check string) "final document" "cba" (Document.to_string doc)

let test_compact_rejects_non_state () =
  let space, o1, _, _ = build_square () in
  let ghost = Op_id.Set.of_list [ o1.Op.id; Op_id.make ~client:9 ~seq:9 ] in
  Alcotest.(check bool)
    "unknown stable state rejected" true
    (try
       ignore (Space.compact space ~stable:ghost ~base_doc:Document.empty);
       false
     with Invalid_argument _ -> true)

let test_compact_rejects_non_prefix () =
  (* {2} is a state but not a prefix of the total order (op 1 comes
     first), so it is not a legal stable state. *)
  let space, _, o2, _ = build_square () in
  let stable = Op_id.Set.singleton o2.Op.id in
  Alcotest.(check bool)
    "non-prefix stable rejected" true
    (try
       ignore (Space.compact space ~stable ~base_doc:Document.empty);
       false
     with Invalid_argument _ -> true)

let test_add_op_after_compact () =
  (* New operations must integrate on the pruned space. *)
  let space, o1, _o2, _o3 = build_square () in
  let serials = Op_id.Set.of_list [ o1.Op.id ] in
  ignore (Space.compact space ~stable:serials ~base_doc:Document.empty);
  let o4 = Helpers.ins ~client:1 ~seq:2 'd' 0 in
  (* o4's context is {1}: legal, it contains the stable set. *)
  let form =
    Space.add_op space (Context.with_context o4 ~ctx:(Space.root space))
  in
  Alcotest.(check bool) "still an insert" true (Op.is_ins form);
  Alcotest.(check bool)
    "final includes o4" true
    (Op_id.Set.mem o4.Op.id (Space.final space))

(* --- Protocol-level --------------------------------------------------- *)

let gen_seed = QCheck2.Gen.int_range 1 1_000_000

let params =
  { Rlist_sim.Schedule.default_params with updates = 25; deliver_bias = 0.6 }

let prop_observationally_identical =
  Helpers.qtest ~count:60
    "pruned CSS behaves identically to plain CSS under the same schedule"
    gen_seed (fun seed ->
      let css, schedule = Helpers.Css_run.random ~params seed in
      let pruned = Pruned.create ~nclients:4 () in
      Pruned.run pruned schedule;
      let b1 = Css.behavior css and b2 = Pruned.behavior pruned in
      List.length b1 = List.length b2
      && List.for_all2
           (fun (r1, d1) (r2, d2) ->
             Replica_id.equal r1 r2 && Document.equal d1 d2)
           b1 b2)

let prop_weak_spec =
  Helpers.qtest ~count:40 "pruned CSS satisfies the weak list spec" gen_seed
    (fun seed ->
      let pruned = Pruned.create ~nclients:3 () in
      let rng = Random.State.make [| seed; 0xC0FFEE |] in
      ignore (Pruned.run_random pruned ~rng ~params);
      Pruned.converged pruned
      && Rlist_spec.Check.is_satisfied
           (Rlist_spec.Weak_spec.check (Pruned.trace pruned)))

let prop_metadata_bounded =
  Helpers.qtest ~count:20
    "metadata shrinks: pruned space smaller than unpruned" gen_seed
    (fun seed ->
      let big =
        { Rlist_sim.Schedule.default_params with
          updates = 120;
          deliver_bias = 0.7;
        }
      in
      let css, schedule = Helpers.Css_run.random ~params:big seed in
      let pruned = Pruned.create ~nclients:4 () in
      Pruned.run pruned schedule;
      (* Pruning can only remove states, never add any; and whenever
         the stable prefix advanced at all, it must actually have
         removed some. *)
      let p = Pruned.server_metadata_size pruned in
      let u = Css.server_metadata_size css in
      let advanced =
        Jupiter_css.Pruned_protocol.server_pruned_to (Pruned.server pruned) > 0
      in
      p <= u && ((not advanced) || p < u))

let test_pruning_round_trip () =
  (* A deterministic session: everyone edits and synchronizes twice;
     after quiescence the server has pruned close to the end. *)
  let t = Pruned.create ~nclients:3 () in
  let edit_round ch =
    List.iter
      (fun i ->
        Pruned.apply_event t (Generate (i, Intent.Insert (ch, 0))))
      [ 1; 2; 3 ];
    ignore (Pruned.quiesce t)
  in
  edit_round 'a';
  edit_round 'b';
  edit_round 'c';
  Alcotest.(check bool) "converged" true (Pruned.converged t);
  (* The stable serial only advances with acks carried by later
     updates, so after three rounds at least the first rounds are
     pruned everywhere. *)
  let server_pruned =
    Jupiter_css.Pruned_protocol.server_pruned_to (Pruned.server t)
  in
  Alcotest.(check bool)
    (Printf.sprintf "server pruned beyond round one (got %d)" server_pruned)
    true (server_pruned >= 3);
  Alcotest.(check int)
    "nine characters" 9
    (Document.length (Pruned.server_document t))

let test_silent_client_stalls_pruning () =
  (* The classic caveat: a read-only client never acknowledges, so the
     stable prefix stays at zero and nothing is pruned. *)
  let t = Pruned.create ~nclients:2 () in
  List.iter
    (fun k ->
      Pruned.apply_event t (Generate (1, Intent.Insert ('x', k)));
      ignore (Pruned.quiesce t))
    [ 0; 1; 2; 3 ];
  Alcotest.(check int)
    "client 2 never wrote: no pruning" 0
    (Jupiter_css.Pruned_protocol.server_pruned_to (Pruned.server t))

(* The remedy for the stall: heartbeats.  An explicit ack-bearing
   heartbeat from each client lets the server recompute the stable
   prefix, prune, and push [Stable] notifications that compact the
   clients too — the state spaces shrink back to a bounded size even
   though the silent client never writes. *)
let run_heartbeat_session ?net () =
  let t = Pruned.create ?net ~nclients:2 () in
  List.iter
    (fun k ->
      Pruned.apply_event t (Generate (1, Intent.Insert ('x', k)));
      ignore (Pruned.quiesce t))
    [ 0; 1; 2; 3 ];
  Alcotest.(check int)
    "stalled at zero before the heartbeats" 0
    (Jupiter_css.Pruned_protocol.server_pruned_to (Pruned.server t));
  let before = Pruned.server_metadata_size t in
  List.iter
    (fun i ->
      Pruned.inject_c2s t i
        (Jupiter_css.Pruned_protocol.client_heartbeat (Pruned.client t i)))
    [ 1; 2 ];
  ignore (Pruned.quiesce t);
  Alcotest.(check int)
    "stable prefix caught up to every serial" 4
    (Jupiter_css.Pruned_protocol.server_pruned_to (Pruned.server t));
  Alcotest.(check bool)
    (Printf.sprintf "server metadata compacted (%d -> %d)" before
       (Pruned.server_metadata_size t))
    true
    (Pruned.server_metadata_size t < before);
  Alcotest.(check bool) "still converged" true (Pruned.converged t)

let test_heartbeat_unsticks_pruning () = run_heartbeat_session ()

(* The same session over chaotic channels: the heartbeat and the
   [Stable] notifications ride the reliability shim like any other
   control message. *)
let test_heartbeat_through_faults () =
  let faults = Option.get (Rlist_net.Faults.preset "chaos") in
  run_heartbeat_session
    ~net:(Rlist_net.Transport.config ~faults ~seed:17 ())
    ()

(* And over cyclic partitions: every link is down for a window of each
   period, so the heartbeat (and the [Stable] answers) may be blocked
   or dropped repeatedly — the retransmission shim must carry them
   through once connectivity returns, and a partitioned silent client
   must not stall the stable frontier forever. *)
let test_heartbeat_through_partitions () =
  let faults = Option.get (Rlist_net.Faults.preset "partition") in
  run_heartbeat_session
    ~net:(Rlist_net.Transport.config ~faults ~seed:23 ())
    ()

let () =
  Alcotest.run "pruning"
    [
      ( "compact",
        [
          Alcotest.test_case "noop at the root" `Quick test_compact_noop;
          Alcotest.test_case "prune one operation" `Quick test_compact_one_op;
          Alcotest.test_case "collapse to final" `Quick test_compact_to_final;
          Alcotest.test_case "rejects non-states" `Quick
            test_compact_rejects_non_state;
          Alcotest.test_case "rejects non-prefixes" `Quick
            test_compact_rejects_non_prefix;
          Alcotest.test_case "operations after compaction" `Quick
            test_add_op_after_compact;
        ] );
      ( "protocol",
        [
          prop_observationally_identical;
          prop_weak_spec;
          prop_metadata_bounded;
          Alcotest.test_case "deterministic round trip" `Quick
            test_pruning_round_trip;
          Alcotest.test_case "silent client stalls pruning" `Quick
            test_silent_client_stalls_pruning;
          Alcotest.test_case "heartbeat acks unstick pruning" `Quick
            test_heartbeat_unsticks_pruning;
          Alcotest.test_case "heartbeats work through faulty channels" `Quick
            test_heartbeat_through_faults;
          Alcotest.test_case "heartbeats work through cyclic partitions" `Quick
            test_heartbeat_through_partitions;
        ] );
    ]
