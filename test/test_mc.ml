(* Tests for the bounded model checker (lib/mc): the mechanized
   theorem gate.  Convergence (Thm 6.7) and the weak list
   specification (Thm 8.2) must hold on every bounded interleaving;
   the strong list specification must be refuted on the thm81 workload
   (Thm 8.1) with a shrunk witness; CSS and CSCW must be behaviourally
   equivalent on every schedule (Thm 7.1); and partial-order reduction
   must agree with naive enumeration while exploring strictly less. *)

open Rlist_mc
module Css_mc = Mc.Cs (Jupiter_css.Protocol)
module Cscw_mc = Mc.Cs (Jupiter_cscw.Protocol)
module Pruned_mc = Mc.Cs (Jupiter_css.Pruned_protocol)
module P2p_mc = Mc.P2p (Jupiter_css.Distributed_protocol)

let find_violation outcome spec =
  List.find_opt
    (fun v -> String.equal v.Explore.v_spec spec)
    outcome.Mc.violations

let check_clean name (outcome : _ Mc.outcome) =
  Alcotest.(check int)
    (name ^ ": no violations")
    0
    (List.length outcome.Mc.violations);
  Alcotest.(check bool)
    (name ^ ": not truncated")
    false outcome.Mc.stats.Explore.truncated

(* --- Thm 8.1: the strong spec is refuted, automatically ------------- *)

let test_thm81_strong_violation () =
  let outcome =
    Css_mc.check ~specs:[ Mc.Strong ] ~workload:Workload.thm81 ()
  in
  match find_violation outcome "strong" with
  | None -> Alcotest.fail "expected a strong-spec violation on thm81"
  | Some v ->
    (match v.Explore.v_result with
    | Rlist_spec.Check.Satisfied -> Alcotest.fail "violation holds a Satisfied"
    | Rlist_spec.Check.Violated _ -> ());
    (* The shrunk witness must still replay to a violation and be
       1-minimal: dropping any single event loses the violation. *)
    let replays schedule =
      let module E = Rlist_sim.Engine.Make (Jupiter_css.Protocol) in
      let e =
        E.create ~initial:Workload.thm81.Workload.initial ~nclients:3 ()
      in
      match E.run e schedule with
      | exception Invalid_argument _ -> None
      | () -> Some (Rlist_spec.Strong_spec.check (E.trace e))
    in
    (match replays v.Explore.v_schedule with
    | Some (Rlist_spec.Check.Violated _) -> ()
    | _ -> Alcotest.fail "shrunk witness does not replay to a violation");
    let n = List.length v.Explore.v_schedule in
    List.iteri
      (fun i _ ->
        let candidate =
          List.filteri (fun j _ -> j <> i) v.Explore.v_schedule
        in
        match replays candidate with
        | Some (Rlist_spec.Check.Violated _) ->
          Alcotest.failf "witness not 1-minimal: event %d removable" (i + 1)
        | _ -> ())
      v.Explore.v_schedule;
    (* Thm 8.1 needs all three concurrent updates plus enough
       deliveries to realize the cycle: the witness stays small. *)
    Alcotest.(check bool)
      "witness has at least 3 events" true (n >= 3);
    Alcotest.(check bool)
      (Printf.sprintf "witness is small (%d events)" n)
      true (n <= 14)

(* Thm 6.7 / Thm 8.2 still hold on the very workload refuting the
   strong spec. *)
let test_thm81_conv_weak_hold () =
  check_clean "css thm81 conv+weak"
    (Css_mc.check
       ~specs:[ Mc.Convergence; Mc.Weak ]
       ~workload:Workload.thm81 ());
  check_clean "cscw thm81 conv+weak"
    (Cscw_mc.check
       ~specs:[ Mc.Convergence; Mc.Weak ]
       ~workload:Workload.thm81 ())

(* --- Bounded combinatorial workloads --------------------------------- *)

let test_combinatorial_2x2_clean () =
  let workload = Workload.combinatorial ~nclients:2 ~ops:2 in
  check_clean "css 2x2"
    (Css_mc.check ~specs:[ Mc.Convergence; Mc.Weak ] ~workload ());
  check_clean "cscw 2x2"
    (Cscw_mc.check ~specs:[ Mc.Convergence; Mc.Weak ] ~workload ())

(* --- Thm 7.1: CSS and CSCW behave identically ------------------------ *)

let test_equiv_css_cscw () =
  let equiv =
    ("equiv-cscw", Mc.behavior_of (module Jupiter_cscw.Protocol))
  in
  let workload = Workload.combinatorial ~nclients:2 ~ops:2 in
  check_clean "css~cscw 2x2" (Css_mc.check ~equiv ~specs:[] ~workload ());
  check_clean "css~cscw thm81"
    (Css_mc.check ~equiv ~specs:[] ~workload:Workload.thm81 ())

(* --- POR agrees with naive enumeration and explores less ------------- *)

let test_por_vs_naive () =
  (* Naive enumeration is only tractable at the smallest bound; the
     thm81 cross-check below covers a violating workload. *)
  let workload = Workload.combinatorial ~nclients:2 ~ops:1 in
  let specs = [ Mc.Convergence; Mc.Weak; Mc.Strong ] in
  let reduced = Css_mc.check ~por:true ~shrink:false ~specs ~workload () in
  let naive = Css_mc.check ~por:false ~shrink:false ~specs ~workload () in
  Alcotest.(check bool) "naive not truncated" false
    naive.Mc.stats.Explore.truncated;
  let verdicts outcome =
    List.sort String.compare
      (List.map (fun v -> v.Explore.v_spec) outcome.Mc.violations)
  in
  Alcotest.(check (list string))
    "identical verdicts" (verdicts naive) (verdicts reduced);
  Alcotest.(check bool)
    (Printf.sprintf "POR explores fewer configurations (%d < %d)"
       reduced.Mc.stats.Explore.states naive.Mc.stats.Explore.states)
    true
    (reduced.Mc.stats.Explore.states < naive.Mc.stats.Explore.states);
  Alcotest.(check bool)
    (Printf.sprintf "POR checks fewer interleavings (%d < %d)"
       reduced.Mc.stats.Explore.terminals naive.Mc.stats.Explore.terminals)
    true
    (reduced.Mc.stats.Explore.terminals
    < naive.Mc.stats.Explore.terminals);
  (* Something must actually have been pruned for the claim to mean
     anything. *)
  Alcotest.(check bool)
    "pruning counters are live" true
    (reduced.Mc.stats.Explore.pruned_state > 0
    || reduced.Mc.stats.Explore.pruned_sleep > 0)

let test_por_vs_naive_thm81 () =
  let specs = [ Mc.Strong ] in
  let reduced =
    Css_mc.check ~por:true ~shrink:false ~specs ~workload:Workload.thm81 ()
  in
  let naive =
    Css_mc.check ~por:false ~shrink:false ~specs ~workload:Workload.thm81 ()
  in
  Alcotest.(check bool) "naive finds it" true
    (find_violation naive "strong" <> None);
  Alcotest.(check bool) "reduced finds it" true
    (find_violation reduced "strong" <> None);
  Alcotest.(check bool) "reduced explores fewer" true
    (reduced.Mc.stats.Explore.states < naive.Mc.stats.Explore.states)

(* --- Peer-to-peer engine --------------------------------------------- *)

let test_p2p_clean () =
  let workload = Workload.combinatorial ~nclients:2 ~ops:1 in
  check_clean "css-p2p 2x1"
    (P2p_mc.check ~specs:[ Mc.Convergence; Mc.Weak ] ~workload ())

(* --- Workload catalog and clamping ----------------------------------- *)

let test_workload_catalog () =
  let catalog = Workload.catalog ~nclients:2 ~ops:2 () in
  Alcotest.(check int) "catalog includes thm81" 2 (List.length catalog);
  Alcotest.(check bool) "thm81 last" true
    (String.equal (List.nth catalog 1).Workload.wname "thm81");
  let only = Workload.catalog ~include_thm81:false ~nclients:2 ~ops:2 () in
  Alcotest.(check int) "catalog without thm81" 1 (List.length only);
  Alcotest.(check int) "thm81 updates" 3 (Workload.total_updates Workload.thm81)

let test_workload_clamp () =
  let open Rlist_model in
  let eq = Alcotest.testable Intent.pp ( = ) in
  Alcotest.check eq "insert clamped"
    (Intent.Insert ('a', 2))
    (Workload.clamp ~doc_length:2 (Intent.Insert ('a', 9)));
  Alcotest.check eq "delete clamped" (Intent.Delete 1)
    (Workload.clamp ~doc_length:2 (Intent.Delete 5));
  Alcotest.check eq "delete on empty becomes read" Intent.Read
    (Workload.clamp ~doc_length:0 (Intent.Delete 0));
  Alcotest.check eq "read unchanged" Intent.Read
    (Workload.clamp ~doc_length:0 Intent.Read)

(* --- Compaction races (continuous GC under the checker) -------------- *)

(* Every interleaving of the compaction-race workload, with a cycle
   forced after every single operation (every-ops=1): the rebase onto
   the acked-stable state races deliveries whose contexts straddle the
   stable frontier, and must stay invisible — convergence and the weak
   spec hold, and the behaviour matches plain CSS (which never
   compacts) on every terminal schedule.  A GC cycle fires as a
   function of the path, not of the reduced state, so the gate run is
   [~por:false]; the POR run cross-checks that the reduction does not
   change any verdict. *)
let test_compaction_race_clean () =
  let gc =
    {
      Rlist_gc.triggers = [ Rlist_gc.Every_ops 1 ];
      retain_keys = 2;
      snapshot_every = 1;
    }
  in
  let specs = [ Mc.Convergence; Mc.Weak ] in
  let equiv = ("equiv-css", Mc.behavior_of (module Jupiter_css.Protocol)) in
  (* Naive enumeration is only tractable on a two-client slice of the
     race (the generator streak vs the straddling delete); it is the
     gate, since a cycle fires as a function of the path and POR
     merges paths. *)
  let small =
    let open Rlist_model in
    {
      Workload.wname = "compaction-race-2";
      nclients = 2;
      initial = Document.of_string "x";
      scripts =
        [|
          [];
          [ Intent.Insert ('a', 0); Intent.Delete 1 ];
          [ Intent.Delete 0 ];
        |];
    }
  in
  let naive =
    Pruned_mc.check ~equiv ~gc ~por:false ~shrink:false ~specs
      ~workload:small ()
  in
  check_clean "pruned+gc race slice (naive)" naive;
  let reduced =
    Pruned_mc.check ~equiv ~gc ~por:true ~shrink:false ~specs ~workload:small
      ()
  in
  check_clean "pruned+gc race slice (por)" reduced;
  Alcotest.(check bool)
    (Printf.sprintf "POR explores fewer configurations (%d < %d)"
       reduced.Mc.stats.Explore.states naive.Mc.stats.Explore.states)
    true
    (reduced.Mc.stats.Explore.states < naive.Mc.stats.Explore.states);
  (* The full three-client race, reduced: still every verdict clean. *)
  let full =
    Pruned_mc.check ~equiv ~gc ~por:true ~shrink:false ~specs
      ~workload:Workload.compaction_race ()
  in
  check_clean "pruned+gc compaction race (por)" full

(* --- The shrinker in isolation --------------------------------------- *)

let test_shrink_minimal () =
  let still_fails l = List.mem 3 l && List.mem 7 l in
  let shrunk =
    Witness.shrink ~still_fails [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
  in
  Alcotest.(check (list int)) "1-minimal core" [ 3; 7 ] shrunk

let test_shrink_preserves_order () =
  let still_fails l = List.mem 9 l && List.mem 2 l in
  let shrunk = Witness.shrink ~still_fails [ 9; 1; 2; 3; 9; 2 ] in
  Alcotest.(check bool) "still fails" true (still_fails shrunk);
  Alcotest.(check int) "two events" 2 (List.length shrunk)

let () =
  Alcotest.run "mc"
    [
      ( "theorem gate",
        [
          Alcotest.test_case "thm81 strong violation found and shrunk" `Quick
            test_thm81_strong_violation;
          Alcotest.test_case "thm81 convergence and weak hold" `Quick
            test_thm81_conv_weak_hold;
          Alcotest.test_case "combinatorial 2x2 clean" `Quick
            test_combinatorial_2x2_clean;
          Alcotest.test_case "css equivalent to cscw (thm 7.1)" `Quick
            test_equiv_css_cscw;
        ] );
      ( "por",
        [
          Alcotest.test_case "por agrees with naive, explores less" `Quick
            test_por_vs_naive;
          Alcotest.test_case "por preserves the thm81 refutation" `Quick
            test_por_vs_naive_thm81;
        ] );
      ( "p2p",
        [ Alcotest.test_case "distributed css clean" `Quick test_p2p_clean ] );
      ( "gc",
        [
          Alcotest.test_case "compaction race clean, por agrees" `Quick
            test_compaction_race_clean;
        ] );
      ( "workload",
        [
          Alcotest.test_case "catalog" `Quick test_workload_catalog;
          Alcotest.test_case "clamp" `Quick test_workload_clamp;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "finds the 1-minimal core" `Quick
            test_shrink_minimal;
          Alcotest.test_case "keeps order" `Quick test_shrink_preserves_order;
        ] );
    ]
