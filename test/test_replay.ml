(* Deterministic replay of flight recordings (lib/run + lib/obs).

   The acceptance bar: dumping a faulty chaos soak and re-executing it
   from the recording header reproduces the original run bit for bit —
   same final documents on every replica, same verdicts and network
   counters (the digest), and the same decision stream in the ring.
   Also covered: the recorder's binary dump format round-trips, the
   header encodes the full spec, traces are reproducible event for
   event, the engine schedule extracted from a recording replays on
   perfect channels, and — the batching audit — batched and unbatched
   runs emit the same per-operation event multisets once batch
   membership is unfolded. *)

open Rlist_model
module Recorded = Rlist_run.Recorded
module Recorder = Rlist_obs.Recorder
module Obs = Rlist_obs.Obs
module Sink = Rlist_obs.Sink
module Event = Rlist_obs.Event
module Spans = Rlist_obs.Spans

let chaos =
  match Rlist_net.Faults.of_string "chaos" with
  | Ok f -> f
  | Error msg -> failwith msg

let chaos_spec =
  {
    (Recorded.default ~protocol:"css") with
    Recorded.faults = chaos;
    nclients = 3;
    updates = 60;
    seed = 7;
  }

let verdict_ok what (v : Recorded.verdict) =
  Alcotest.(check (list (triple string string string)))
    (what ^ ": no digest mismatches") [] v.Recorded.v_mismatches;
  (match v.Recorded.v_divergence with
  | None -> ()
  | Some (i, expected, got) ->
    Alcotest.failf "%s: decision %d diverged: expected %S, got %S" what i
      expected got);
  Alcotest.(check int)
    (what ^ ": same decision totals")
    v.Recorded.v_total_expected v.Recorded.v_total_got;
  Alcotest.(check bool) (what ^ ": verdict ok") true v.Recorded.v_ok

let record_and_verify what spec =
  let outcome, recorder = Recorded.record spec in
  let path = Filename.temp_file "jupiter" ".jfr" in
  Recorded.save ~spec ~outcome ~capacity:Recorder.default_capacity recorder
    path;
  let recording = Recorder.load path in
  Sys.remove path;
  (match Recorded.verify recording with
  | Error msg -> Alcotest.failf "%s: %s" what msg
  | Ok v ->
    verdict_ok what v;
    Alcotest.(check (list (pair string string)))
      (what ^ ": final documents identical")
      outcome.Recorded.o_finals v.Recorded.v_outcome.Recorded.o_finals);
  outcome, recording

(* The acceptance-criteria run: a chaotic soak, dumped and replayed
   bit-identically. *)
let test_chaos_soak_replays () = ignore (record_and_verify "css" chaos_spec)

let test_batched_replays () =
  ignore
    (record_and_verify "css batched"
       { chaos_spec with Recorded.batching = true; seed = 3 })

(* The GC satellite: a pruning-protocol chaos soak with continuous
   compaction on dumps a recording that replays bit-identically, the
   GC cycle decisions land in the ring, and the span report
   attributes the reclaimed metadata. *)
let gc_policy =
  match Rlist_gc.of_string "ops=16,retain=32,snap=2" with
  | Ok p -> p
  | Error msg -> failwith msg

let gc_spec =
  {
    (Recorded.default ~protocol:"css-pruned") with
    Recorded.faults = chaos;
    nclients = 3;
    updates = 80;
    seed = 11;
    gc = Some gc_policy;
  }

let test_gc_soak_replays () =
  let _, recording = record_and_verify "css-pruned gc" gc_spec in
  let gc_decisions =
    List.filter
      (function Recorder.Gc _ -> true | _ -> false)
      recording.Recorder.r_window
  in
  Alcotest.(check bool)
    "GC cycles landed in the decision ring" true (gc_decisions <> [])

let test_gc_report_attributes_reclaimed () =
  let sink = Sink.memory () in
  let obs = Obs.make ~sink () in
  ignore (Recorded.run ~obs gc_spec);
  let summary = Spans.summarize (Sink.events sink) in
  Alcotest.(check bool)
    "span summary counts GC cycles" true
    (summary.Spans.su_gc_cycles > 0);
  Alcotest.(check bool)
    "span summary attributes reclaimed metadata" true
    (summary.Spans.su_gc_reclaimed > 0)

let test_p2p_replays () =
  ignore
    (record_and_verify "ttf"
       {
         (Recorded.default ~protocol:"ttf") with
         Recorded.faults = chaos;
         nclients = 3;
         updates = 30;
         seed = 2;
       })

let test_header_round_trips () =
  let spec =
    {
      Recorded.protocol = "treedoc";
      profile = Rlist_workload.Workload.Typing;
      nclients = 5;
      updates = 123;
      seed = 99;
      faults = chaos;
      shim = true;
      rto = 20;
      batching = true;
      fastpath = true;
      gc = Some { Rlist_gc.default with Rlist_gc.snapshot_every = 2 };
    }
  in
  match Recorded.spec_of_header (Recorded.header_of spec) with
  | Error msg -> Alcotest.fail msg
  | Ok spec' ->
    Alcotest.(check string)
      "faults survive" spec'.Recorded.protocol spec.Recorded.protocol;
    Alcotest.(check bool)
      "whole spec survives" true
      (Recorded.header_of spec = Recorded.header_of spec')

let test_recording_file_round_trips () =
  let outcome, recorder = Recorded.record chaos_spec in
  let path = Filename.temp_file "jupiter" ".jfr" in
  Recorded.save ~spec:chaos_spec ~outcome
    ~capacity:Recorder.default_capacity recorder path;
  Alcotest.(check bool) "magic detected" true (Recorder.is_recording path);
  let r = Recorder.load path in
  Sys.remove path;
  Alcotest.(check int)
    "all decisions stored"
    (Recorder.total recorder)
    r.Recorder.r_total;
  Alcotest.(check (list string))
    "decision window survives the binary format"
    (List.map Recorder.decision_to_string (Recorder.window recorder))
    (List.map Recorder.decision_to_string r.Recorder.r_window)

(* Same spec, two fresh runs with the tracer on: the JSONL event
   streams must be identical line for line (this is what makes
   `replay --trace` reproducible evidence). *)
let trace_of spec =
  let sink = Sink.memory () in
  let obs = Obs.make ~sink () in
  ignore (Recorded.run ~obs spec);
  List.mapi (fun i e -> Event.to_jsonl ~seq:i e) (Sink.events sink)

let test_traces_reproducible () =
  Alcotest.(check (list string))
    "two runs of one spec emit identical traces" (trace_of chaos_spec)
    (trace_of chaos_spec)

(* The ring wraps: only the newest [capacity] decisions survive, and
   [total] keeps counting. *)
let test_ring_wraps () =
  let r = Recorder.create ~capacity:4 () in
  for i = 1 to 10 do
    Recorder.record r (Recorder.Tick i)
  done;
  Alcotest.(check int) "total counts everything" 10 (Recorder.total r);
  Alcotest.(check bool) "wrapped" true (Recorder.wrapped r);
  Alcotest.(check (list string))
    "window keeps the newest, oldest first"
    [ "tick 7"; "tick 8"; "tick 9"; "tick 10" ]
    (List.map Recorder.decision_to_string (Recorder.window r))

(* Extract the engine schedule from a recording and replay it on
   perfect channels: the feasible prefix the engine executed is a real
   schedule, so the correct protocol must still converge under it. *)
let test_schedule_extraction () =
  let _, recording = record_and_verify "for extraction" chaos_spec in
  match Recorded.schedule_of_recording recording with
  | Error msg -> Alcotest.fail msg
  | Ok schedule ->
    let generates =
      List.length
        (List.filter
           (function Rlist_sim.Schedule.Generate _ -> true | _ -> false)
           schedule)
    in
    Alcotest.(check bool)
      "extracted schedule carries the generates" true
      (generates >= chaos_spec.Recorded.updates);
    let module E = Rlist_sim.Engine.Make (Jupiter_css.Protocol) in
    let t = E.create ~nclients:chaos_spec.Recorded.nclients () in
    E.run t schedule;
    ignore (E.quiesce t);
    Alcotest.(check bool)
      "replaying it on perfect channels converges" true (E.converged t)

(* --- the batching audit (attach_obs coverage of batched paths) ------- *)

module Css_engine = Rlist_sim.Engine.Make (Jupiter_css.Protocol)
module Sched = Rlist_sim.Schedule

(* Per-operation event multiset: one (kind, replica-or-channel, op)
   entry per member operation, batch ids unfolded at '+'. *)
let per_op_multiset events =
  List.concat_map
    (fun e ->
      match Event.op_id e with
      | None -> []
      | Some joined ->
        List.map
          (fun op -> Event.kind e, op)
          (String.split_on_char '+' joined))
    events
  |> List.sort compare

let run_mode ~batching =
  let cfg =
    Rlist_net.Transport.config ~faults:Rlist_net.Faults.none ~seed:5 ()
  in
  let t = Css_engine.create ~net:cfg ~batching ~nclients:2 () in
  let sink = Sink.memory () in
  let obs = Obs.make ~sink () in
  Css_engine.attach_obs t obs;
  List.iter (Css_engine.apply_event t)
    [
      Sched.Generate (1, Intent.Insert ('a', 0));
      Sched.Generate (1, Intent.Insert ('b', 1));
      Sched.Generate (2, Intent.Insert ('c', 0));
      Sched.Generate (2, Intent.Insert ('d', 1));
    ];
  ignore (Css_engine.quiesce t);
  Alcotest.(check bool) "mode converges" true (Css_engine.converged t);
  Document.to_string (Css_engine.server_document t), Sink.events sink

let test_batched_events_cover_every_op () =
  let doc_plain, plain = run_mode ~batching:false in
  let doc_batched, batched = run_mode ~batching:true in
  Alcotest.(check string) "same final document" doc_plain doc_batched;
  (* Every operation shows up in the same per-op event multiset
     whether it travelled alone or inside a batch: if a batched code
     path skipped an emission (or dropped the joined op ids), the
     multisets would differ. *)
  Alcotest.(check (list (pair string string)))
    "same per-op generate/send/deliver/apply multiset"
    (per_op_multiset plain) (per_op_multiset batched);
  (* And the span builder agrees: every batched op has a complete
     lifecycle (generated, sent, applied at both replicas). *)
  let summary = Spans.summarize batched in
  Alcotest.(check int) "4 ops spanned" 4 summary.Spans.su_ops;
  Alcotest.(check int) "no incomplete spans" 0 summary.Spans.su_incomplete

let () =
  Alcotest.run "replay"
    [
      ( "determinism",
        [
          Alcotest.test_case "chaos soak replays bit-identically" `Quick
            test_chaos_soak_replays;
          Alcotest.test_case "batched soak replays" `Quick
            test_batched_replays;
          Alcotest.test_case "gc soak replays bit-identically" `Quick
            test_gc_soak_replays;
          Alcotest.test_case "gc report attributes reclaimed metadata"
            `Quick test_gc_report_attributes_reclaimed;
          Alcotest.test_case "p2p soak replays" `Quick test_p2p_replays;
          Alcotest.test_case "traces reproducible" `Quick
            test_traces_reproducible;
        ] );
      ( "format",
        [
          Alcotest.test_case "header round-trips" `Quick
            test_header_round_trips;
          Alcotest.test_case "recording file round-trips" `Quick
            test_recording_file_round_trips;
          Alcotest.test_case "ring wraps" `Quick test_ring_wraps;
        ] );
      ( "extraction",
        [
          Alcotest.test_case "schedule extraction replays" `Quick
            test_schedule_extraction;
        ] );
      ( "batching-audit",
        [
          Alcotest.test_case "batched paths cover every op" `Quick
            test_batched_events_cover_every_op;
        ] );
    ]
