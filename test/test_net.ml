(* The unreliable-channel layer (lib/net): fault parsing, the
   FIFO-exactly-once contract restored by the reliability shim under
   every built-in fault model, the negative control with the shim off,
   and crash / reconnect via the checkpoint API — including the
   protocol-level composition with the CSS snapshot layer. *)

open Rlist_model
module Faults = Rlist_net.Faults
module Stats = Rlist_net.Stats
module Transport = Rlist_net.Transport

let spec : Faults.spec Alcotest.testable =
  Alcotest.testable Faults.pp (fun a b -> Faults.to_string a = Faults.to_string b)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected parse error: %s" e

let err what = function
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: expected an error" what

(* Faults: parsing, presets, the partition clock. *)

let test_presets () =
  List.iter
    (fun (name, s) ->
      Alcotest.(check spec) name s (ok (Faults.of_string name));
      (* Round trip through the field syntax. *)
      Alcotest.(check spec)
        (name ^ " round-trip")
        s
        (ok (Faults.of_string (Faults.to_string s))))
    Faults.presets

let test_field_syntax () =
  let s = ok (Faults.of_string "drop=0.25,dup=0.1,delay=4,partition=60:20") in
  Alcotest.(check (float 1e-9)) "drop" 0.25 s.Faults.drop;
  Alcotest.(check (float 1e-9)) "dup" 0.1 s.Faults.duplicate;
  Alcotest.(check int) "delay" 4 s.Faults.delay;
  Alcotest.(check int) "period" 60 s.Faults.partition_period;
  Alcotest.(check int) "down" 20 s.Faults.partition_down

let test_parse_errors () =
  err "probability > 1" (Faults.of_string "drop=1.5");
  err "unknown preset" (Faults.of_string "no-such-model");
  err "unknown field" (Faults.of_string "frobnicate=1");
  err "down >= period"
    (Faults.validate
       { Faults.none with partition_period = 10; partition_down = 10 })

let test_partition_clock () =
  let s = { Faults.none with partition_period = 10; partition_down = 4 } in
  List.iter
    (fun (tick, expect) ->
      Alcotest.(check bool)
        (Printf.sprintf "down_at %d" tick)
        expect (Faults.down_at s ~tick))
    [ 0, true; 3, true; 4, false; 9, false; 10, true; 13, true; 14, false ]

(* Transport: drive a channel until every recoverable payload is out. *)

let drive ?(fuel = 100_000) ch =
  let got = ref [] in
  let stalled = ref 0 in
  while Transport.pending ch > 0 do
    let any = Transport.deliverable ch > 0 in
    while Transport.deliverable ch > 0 do
      match Transport.deliver ch with
      | Some x -> got := x :: !got
      | None -> () (* consumed internally: duplicate or resequenced *)
    done;
    if any then stalled := 0
    else begin
      incr stalled;
      if !stalled > fuel then Alcotest.fail "channel cannot quiesce"
    end;
    Transport.tick ch
  done;
  List.rev !got

let iota n = List.init n (fun i -> i)

let test_perfect_fifo () =
  let ch = Transport.perfect () in
  List.iter (Transport.send ch) (iota 10);
  Alcotest.(check bool) "not lossy" false (Transport.is_lossy ch);
  Alcotest.(check int) "pending" 10 (Transport.pending ch);
  Alcotest.(check int) "deliverable" 10 (Transport.deliverable ch);
  Alcotest.(check (list int)) "in order" (iota 10) (drive ch);
  Alcotest.(check int) "drained" 0 (Transport.pending ch)

(* The headline property: under every built-in fault model, the shim
   delivers every payload exactly once, in order. *)
let test_shim_exactly_once () =
  List.iter
    (fun (name, faults) ->
      let cfg = Transport.config ~faults ~seed:7 () in
      let ch = Transport.create cfg in
      List.iter (Transport.send ch) (iota 50);
      Alcotest.(check (list int))
        (name ^ ": exactly once, in order")
        (iota 50) (drive ch))
    Faults.presets

(* Negative control: with the shim off, drops reach the application. *)
let test_raw_lossy_drops () =
  let faults = { Faults.none with drop = 0.4 } in
  let cfg = Transport.config ~shim:false ~faults ~seed:5 () in
  let ch = Transport.create cfg in
  List.iter (Transport.send ch) (iota 100);
  let got = drive ch in
  Alcotest.(check bool)
    "some payloads were lost" true
    (List.length got < 100);
  let s = Transport.stats cfg in
  Alcotest.(check bool) "drops counted" true (s.Stats.dropped > 0);
  Alcotest.(check int) "no retransmissions without the shim" 0
    s.Stats.retransmits

(* Negative control: with the shim off, reordering is visible as
   contract violations (every payload still arrives — jitter only). *)
let test_raw_reorder_violates_fifo () =
  let faults = { Faults.none with reorder = 0.5; delay = 5 } in
  let cfg = Transport.config ~shim:false ~faults ~seed:3 () in
  let ch = Transport.create cfg in
  List.iter (Transport.send ch) (iota 50);
  let got = drive ch in
  Alcotest.(check (list int))
    "nothing lost, only reordered" (iota 50)
    (List.sort compare got);
  Alcotest.(check bool) "out of order" true (got <> iota 50);
  let s = Transport.stats cfg in
  Alcotest.(check bool)
    "contract violations recorded" true
    (s.Stats.contract_violations > 0)

let test_chaos_counters () =
  let cfg =
    Transport.config ~faults:(Option.get (Faults.preset "chaos")) ~seed:11 ()
  in
  let ch = Transport.create cfg in
  List.iter (Transport.send ch) (iota 80);
  Alcotest.(check (list int)) "exactly once" (iota 80) (drive ch);
  let s = Transport.stats cfg in
  Alcotest.(check int) "payloads" 80 s.Stats.payloads;
  Alcotest.(check int) "delivered" 80 s.Stats.delivered;
  Alcotest.(check bool) "retransmits happened" true (s.Stats.retransmits > 0);
  Alcotest.(check bool) "duplicates suppressed" true (s.Stats.dup_dropped > 0);
  Alcotest.(check bool)
    "partitions healed" true
    (s.Stats.partitions_healed > 0);
  Alcotest.(check bool) "amplification > 1" true (Stats.amplification s > 1.0)

let test_determinism () =
  let run () =
    let cfg =
      Transport.config
        ~faults:(Option.get (Faults.preset "heavy-loss"))
        ~seed:42 ()
    in
    let ch = Transport.create cfg in
    List.iter (Transport.send ch) (iota 60);
    let got = drive ch in
    got, Stats.fields (Transport.stats cfg)
  in
  let g1, f1 = run () and g2, f2 = run () in
  Alcotest.(check (list int)) "same deliveries" g1 g2;
  Alcotest.(check (list (pair string int))) "same counters" f1 f2

(* Sender crash: restore the last checkpointed sender state, reset the
   wire; retransmission resynchronises and the receiver's sequence
   numbers suppress anything it had already seen. *)
let test_sender_crash_reconnect () =
  let cfg =
    Transport.config ~faults:(Option.get (Faults.preset "chaos")) ~seed:13 ()
  in
  let ch = Transport.create cfg in
  let got = ref [] in
  let send_ck x =
    Transport.send ch x;
    Transport.sender_checkpoint ch
  in
  let ck = ref (Transport.sender_checkpoint ch) in
  List.iter (fun x -> ck := send_ck x) (iota 5);
  (* Let some of them through, then cut the connection. *)
  for _ = 1 to 8 do
    while Transport.deliverable ch > 0 do
      match Transport.deliver ch with
      | Some x -> got := x :: !got
      | None -> ()
    done;
    Transport.tick ch
  done;
  Transport.drop_wire ch;
  Transport.restore_sender ch !ck;
  List.iter (fun x -> ck := send_ck x) (List.init 5 (fun i -> i + 5));
  let rest = drive ch in
  Alcotest.(check (list int))
    "exactly once across the crash" (iota 10)
    (List.rev !got @ rest)

(* Receiver crash: the application state and the receiver channel state
   checkpoint together (write-ahead: at the top of each step, before
   the tick that lets the cumulative ack escape).  Rolled-back
   deliveries are retransmitted by the unwitting sender and re-applied;
   nothing is lost or doubled. *)
let test_receiver_crash_reconnect () =
  let cfg =
    Transport.config ~faults:(Option.get (Faults.preset "drop")) ~seed:9 ()
  in
  let ch = Transport.create cfg in
  List.iter (Transport.send ch) (iota 10);
  let got = ref [] in
  let ck = ref (Transport.receiver_checkpoint ch, []) in
  let crashed = ref false in
  let stalled = ref 0 in
  while Transport.pending ch > 0 do
    ck := (Transport.receiver_checkpoint ch, !got);
    let any = Transport.deliverable ch > 0 in
    while Transport.deliverable ch > 0 do
      match Transport.deliver ch with
      | Some x -> got := x :: !got
      | None -> ()
    done;
    if (not !crashed) && List.length !got >= 4 then begin
      crashed := true;
      let c, g = !ck in
      Transport.restore_receiver ch c;
      got := g;
      Transport.drop_wire ch
    end;
    if any then stalled := 0
    else begin
      incr stalled;
      if !stalled > 100_000 then Alcotest.fail "cannot quiesce"
    end;
    Transport.tick ch
  done;
  Alcotest.(check bool) "the crash happened" true !crashed;
  Alcotest.(check (list int)) "exactly once across the crash" (iota 10)
    (List.rev !got)

(* The operation-identifier guard: an application-level duplicate (same
   op resent as a fresh payload, e.g. after a reconnect of unknown
   outcome) is suppressed at the receiver. *)
let test_opid_guard () =
  let cfg = Transport.config ~faults:Faults.none ~seed:1 () in
  let ch = Transport.create ~key:(fun s -> Some s) cfg in
  Transport.send ch "a";
  Alcotest.(check (list string)) "first copy delivered" [ "a" ] (drive ch);
  Transport.send ch "a";
  Alcotest.(check (list string)) "second copy suppressed" [] (drive ch);
  Alcotest.(check int) "drained (suppressed but acked)" 0
    (Transport.pending ch);
  Alcotest.(check int) "guard counted it" 1
    (Transport.stats cfg).Stats.opid_dup_dropped

let test_stats_publish () =
  let cfg =
    Transport.config ~faults:(Option.get (Faults.preset "drop")) ~seed:2 ()
  in
  let ch = Transport.create cfg in
  List.iter (Transport.send ch) (iota 20);
  ignore (drive ch);
  let obs = Rlist_obs.Obs.make () in
  Stats.publish (Transport.stats cfg) obs.Rlist_obs.Obs.metrics;
  let json = Rlist_obs.Obs.metrics_json obs in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("metrics json has " ^ needle) true
        (Helpers.contains json needle))
    [ "net.payloads"; "net.retransmits"; "net.amplification" ];
  Alcotest.(check int) "payload counter value" 20
    (Rlist_obs.Metrics.counter_of obs.Rlist_obs.Obs.metrics "net.payloads")

(* Crash / reconnect composed with the protocol snapshot layer: a CSS
   client over two chaotic channels checkpoints (protocol snapshot +
   sender state of c2s + receiver state of s2c) atomically after every
   local state change — the write-ahead discipline of transport.mli —
   then crashes mid-session and resumes from the checkpoint.  The
   session still converges with the server, every op applied exactly
   once. *)
let test_css_crash_reconnect () =
  let module P = Jupiter_css.Protocol in
  let cfg =
    Transport.config ~faults:(Option.get (Faults.preset "chaos")) ~seed:21 ()
  in
  let c2s =
    Transport.create
      ~key:(fun m -> Option.map Op_id.to_string (P.c2s_op_id m))
      cfg
  in
  let s2c =
    Transport.create
      ~key:(fun m -> Option.map Op_id.to_string (P.s2c_op_id m))
      cfg
  in
  let fp = Rlist_ot.Fastpath.create () in
  let client =
    ref (P.create_client ~fastpath:fp ~nclients:1 ~id:1 ~initial:Document.empty)
  in
  let server = P.create_server ~fastpath:fp ~nclients:1 ~initial:Document.empty in
  let checkpoint () =
    ( Jupiter_css.Snapshot.client_to_string !client,
      Transport.sender_checkpoint c2s,
      Transport.receiver_checkpoint s2c )
  in
  let ck = ref (checkpoint ()) in
  let crash () =
    let snap, s, r = !ck in
    client := Jupiter_css.Snapshot.client_of_string snap;
    Transport.restore_sender c2s s;
    Transport.restore_receiver s2c r;
    Transport.drop_wire c2s;
    Transport.drop_wire s2c
  in
  let deliver_all () =
    while Transport.deliverable c2s > 0 do
      match Transport.deliver c2s with
      | Some m ->
        List.iter (fun (_, r) -> Transport.send s2c r)
          (P.server_receive server ~from:1 m)
      | None -> ()
    done;
    while Transport.deliverable s2c > 0 do
      match Transport.deliver s2c with
      | Some m -> P.client_receive !client m
      | None -> ()
    done
  in
  let generated = ref 0 in
  for round = 1 to 12 do
    if round mod 2 = 1 then begin
      incr generated;
      let value = Char.chr (Char.code 'a' + !generated) in
      (match P.client_generate !client (Intent.Insert (value, 0)) with
      | _, Some m -> Transport.send c2s m
      | _, None -> Alcotest.fail "insert produced no message");
      ck := checkpoint ()
    end;
    deliver_all ();
    (* Round 7: crash after the deliveries, before they could be
       checkpointed or acknowledged — they are rolled back and must be
       recovered from the server's retransmission buffer. *)
    if round = 7 then crash () else ck := checkpoint ();
    Transport.tick c2s;
    Transport.tick s2c
  done;
  let fuel = ref 100_000 in
  while Transport.pending c2s > 0 || Transport.pending s2c > 0 do
    deliver_all ();
    Transport.tick c2s;
    Transport.tick s2c;
    decr fuel;
    if !fuel = 0 then Alcotest.fail "session cannot quiesce"
  done;
  let cdoc = P.client_document !client and sdoc = P.server_document server in
  Alcotest.(check Helpers.document) "client and server converged" sdoc cdoc;
  Alcotest.(check int) "every op applied exactly once" !generated
    (Document.length cdoc)

let () =
  Alcotest.run "net"
    [
      ( "faults",
        [
          Alcotest.test_case "presets parse and round-trip" `Quick test_presets;
          Alcotest.test_case "field syntax" `Quick test_field_syntax;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "partition clock" `Quick test_partition_clock;
        ] );
      ( "transport",
        [
          Alcotest.test_case "perfect channel is a FIFO queue" `Quick
            test_perfect_fifo;
          Alcotest.test_case "shim: exactly once under every preset" `Quick
            test_shim_exactly_once;
          Alcotest.test_case "raw: drops reach the application" `Quick
            test_raw_lossy_drops;
          Alcotest.test_case "raw: reordering violates FIFO" `Quick
            test_raw_reorder_violates_fifo;
          Alcotest.test_case "chaos: counters add up" `Quick test_chaos_counters;
          Alcotest.test_case "determinism from the seed" `Quick test_determinism;
          Alcotest.test_case "stats publish into metrics" `Quick
            test_stats_publish;
        ] );
      ( "crash-reconnect",
        [
          Alcotest.test_case "sender crash" `Quick test_sender_crash_reconnect;
          Alcotest.test_case "receiver crash" `Quick
            test_receiver_crash_reconnect;
          Alcotest.test_case "op-id guard suppresses app-level duplicates"
            `Quick test_opid_guard;
          Alcotest.test_case "CSS client crash + snapshot restore" `Quick
            test_css_crash_reconnect;
        ] );
    ]
