(* The two-domain smoke harness (lib/run/shard_smoke): the dynamic
   witness behind the escape pass's shard_ready gate.  Each document
   runs once on the calling domain and once on its own Domain; since
   the lint proves every engine-reachable mutable allocation is stack-
   or instance-confined, the digests must be bit-identical.  The clock
   is a constant function — digests never depend on it, so the whole
   test is deterministic. *)

let now () = 0.0

let smoke ?gc ~protocol ~seed () =
  Rlist_run.Shard_smoke.run ?gc ~now ~protocol
    ~profile:Rlist_workload.Workload.Uniform ~nclients:3 ~updates:2_000
    ~chunk:500 ~seed ()

let test_digests_equal () =
  let r = smoke ~protocol:"css" ~seed:7 () in
  Alcotest.(check bool)
    "two-domain digests match the single-domain run" true
    r.Rlist_run.Shard_smoke.s_equal;
  Alcotest.(check bool)
    "the two documents are actually different documents" false
    (String.equal
       (fst r.Rlist_run.Shard_smoke.s_single)
       (snd r.Rlist_run.Shard_smoke.s_single))

let test_under_gc () =
  let r =
    smoke ~gc:Rlist_gc.default ~protocol:"css-pruned" ~seed:11 ()
  in
  Alcotest.(check bool)
    "confinement also holds with the continuous GC on" true
    r.Rlist_run.Shard_smoke.s_equal

let test_json () =
  let r = smoke ~protocol:"css" ~seed:7 () in
  let json = Rlist_run.Shard_smoke.result_to_json r in
  let contains ~needle haystack =
    let nh = String.length haystack and nn = String.length needle in
    let rec go i =
      if i + nn > nh then false
      else String.equal (String.sub haystack i nn) needle || go (i + 1)
    in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json contains %s" needle)
        true (contains ~needle json))
    [ {|"version":1|}; {|"protocol":"css"|}; {|"seeds":[7,8]|}; {|"equal":true|} ]

let test_bad_protocol () =
  Alcotest.check_raises "peer-to-peer protocols are rejected"
    (Invalid_argument "Longrun.run: peer-to-peer protocols are not soakable here")
    (fun () -> ignore (smoke ~protocol:"css-p2p" ~seed:1 ()))

let () =
  Alcotest.run "shard-smoke"
    [
      ( "digest equality",
        [
          Alcotest.test_case "two domains vs one" `Quick test_digests_equal;
          Alcotest.test_case "with continuous GC" `Quick test_under_gc;
        ] );
      ( "interface",
        [
          Alcotest.test_case "json rendering" `Quick test_json;
          Alcotest.test_case "bad protocol" `Quick test_bad_protocol;
        ] );
    ]
