(* Stack-confined: the accumulator never leaves the function — the
   dereference that does leave is an [int], which carries nothing. *)
let server_receive xs =
  let acc = ref 0 in
  List.iter (fun x -> acc := !acc + x) xs;
  !acc
