(* Escaping via closure capture: the cell is captured by a closure
   that is itself bound at module level, so every caller shares it. *)
let counter =
  let c = ref 0 in
  fun () ->
    incr c;
    !c

let server_receive () = counter ()
