(* Instance-confined: the table lives behind the record the
   constructor returns, so each caller owns its own copy. *)
type t = {
  size : int;
  tbl : (int, int) Hashtbl.t;
}

let create () = { size = 8; tbl = Hashtbl.create 8 }

let transform t k v = Hashtbl.replace t.tbl k v
