(* A protocol entry point ("transform") whose nondeterminism is two
   modules away. *)
let transform n = Fx_mid.step n * 2
