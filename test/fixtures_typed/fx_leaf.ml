(* Seeded determinism bug: the global PRNG, three calls below an
   entry point (fx_entry -> fx_mid -> here). *)
let pick n = Random.int n
