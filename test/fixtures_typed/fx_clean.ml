(* A clean entry point: pure code all the way down — neither pass may
   say anything about this module. *)
let double x = x * 2

let server_receive xs = List.map double xs
