(* Middle hop of the transitive chain: no sink of its own. *)
let step n = Fx_leaf.pick (n + 1)
