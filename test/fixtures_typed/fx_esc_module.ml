(* Escaping via a module-level binding: the buffer is process-global
   state, shared the moment two documents run on two domains. *)
let buf = Buffer.create 64

let transform s =
  Buffer.add_string buf s;
  Buffer.contents buf
