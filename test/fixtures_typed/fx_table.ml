(* Seeded domain-safety bug: module-level mutable state (a shared
   hashtable) with no suppression — and a seeded determinism bug: an
   entry point iterating it in hash-bucket order. *)
let table : (string, int) Hashtbl.t = Hashtbl.create 16

let remember k v = Hashtbl.replace table k v

let recall k = Hashtbl.find_opt table k

let server_receive_all f = Hashtbl.iter f table
