(* Container-nested escape: the cell is stored one level deep inside a
   module-level table, so it escapes transitively through its holder. *)
let registry : (string, int ref) Hashtbl.t = Hashtbl.create 4

let register k =
  let cell = ref 0 in
  Hashtbl.replace registry k cell;
  cell

let server_receive k = !(register k)
