(* A reachable sink under an explicit suppression: the typed pass must
   honor the same [@lint.allow] seams as the Parsetree pass. *)
let jitter n = (Random.int n) [@lint.allow "rand-global"]

let transform n = jitter n
