(* The regression corpus: every schedule in test/seeds/*.sched is
   replayed verbatim against every client/server protocol, asserting
   convergence and the weak list specification, plus behavioural
   equality of the two Jupiter formulations (Theorem 7.1).

   To promote a failing seed found by the fuzzers into the corpus:

     dune exec bin/jupiter_sim.exe -- record --seed N -o test/seeds/<name>.sched

   (or save the schedule the failing property printed), add a comment
   saying what it witnesses, and `dune runtest` picks it up — the glob
   in test/dune needs no edit. *)

open Rlist_model

(* `dune runtest` runs in _build/default/test; `dune exec` keeps the
   caller's directory. *)
let seeds_dir =
  if Sys.file_exists "seeds" then "seeds" else Filename.concat "test" "seeds"

let corpus () =
  Sys.readdir seeds_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".sched")
  |> List.sort compare
  |> List.map (fun f -> Filename.concat seeds_dir f)

let load path =
  match Rlist_sim.Schedule_text.load ~path with
  | Ok file -> file
  | Error msg -> Alcotest.failf "%s: %s" path msg

type result = {
  converged : bool;
  behavior : (Replica_id.t * Document.t) list;
  trace : Rlist_spec.Trace.t;
}

let replay (type c s a b)
    (module P : Rlist_sim.Protocol_intf.PROTOCOL
      with type client = c
       and type server = s
       and type c2s = a
       and type s2c = b) (file : Rlist_sim.Schedule_text.file) =
  let module E = Rlist_sim.Engine.Make (P) in
  let t = E.create ~initial:file.initial ~nclients:file.nclients () in
  E.run t file.events;
  { converged = E.converged t; behavior = E.behavior t; trace = E.trace t }

(* Every correct client/server protocol.  The naive foil is excluded:
   the corpus exists precisely because these schedules break it.  The
   strong spec is not asserted — figure7/thm81 refute it for the OT
   protocols (Theorem 8.1), by design. *)
let protocols =
  [
    "css", (fun f -> replay (module Jupiter_css.Protocol) f);
    "cscw", (fun f -> replay (module Jupiter_cscw.Protocol) f);
    "css-pruned", (fun f -> replay (module Jupiter_css.Pruned_protocol) f);
    "css-seq", (fun f -> replay (module Jupiter_css.Sequencer_protocol) f);
    "rga", (fun f -> replay (module Jupiter_rga.Protocol) f);
    "logoot", (fun f -> replay (module Jupiter_logoot.Protocol) f);
    "treedoc", (fun f -> replay (module Jupiter_treedoc.Protocol) f);
  ]

let behavior_equal =
  List.equal (fun (r1, d1) (r2, d2) ->
      Replica_id.equal r1 r2 && Document.equal d1 d2)

let check_seed path () =
  let file = load path in
  let results =
    List.map
      (fun (name, run) ->
        let r = run file in
        Alcotest.(check bool) (name ^ ": converged") true r.converged;
        Helpers.check_satisfied
          (name ^ ": convergence")
          (Rlist_spec.Convergence.check r.trace);
        Helpers.check_satisfied
          (name ^ ": weak spec")
          (Rlist_spec.Weak_spec.check r.trace);
        name, r)
      protocols
  in
  let css = List.assoc "css" results and cscw = List.assoc "cscw" results in
  Alcotest.(check bool)
    "css and cscw behaviours identical (Thm 7.1)" true
    (behavior_equal css.behavior cscw.behavior)

(* The corpus witnesses must actually witness: figure7 / thm81 refute
   the strong spec under css (that is why they are here). *)
let check_strong_refuted path () =
  let file = load path in
  let r = replay (module Jupiter_css.Protocol) file in
  Helpers.check_violated
    (path ^ ": strong spec refuted under css")
    (Rlist_spec.Strong_spec.check r.trace)

let () =
  let corpus = corpus () in
  if corpus = [] then failwith "empty regression corpus: test/seeds/*.sched";
  Alcotest.run "regressions"
    [
      ( "corpus",
        List.map
          (fun path -> Alcotest.test_case path `Quick (check_seed path))
          corpus );
      ( "witnesses",
        List.map
          (fun path ->
            Alcotest.test_case (path ^ " refutes strong") `Quick
              (check_strong_refuted path))
          [
            Filename.concat seeds_dir "figure7.sched";
            Filename.concat seeds_dir "thm81.sched";
          ] );
    ]
