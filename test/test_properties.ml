(* Property-based differential testing across the protocol zoo, on
   reliable channels and under every fault model through the
   reliability shim (the acceptance gate of the unreliable-network
   layer).

   Each property is a function of a single integer seed, and QCheck
   prints the failing seed on a counterexample; promote one into the
   regression corpus with

     dune exec bin/jupiter_sim.exe -- record --seed N -o test/seeds/<name>.sched

   Determinism is what makes the differential properties work: two
   engines driven by the same RNG seed over the same network
   configuration seed make identical scheduling and fault decisions,
   so behaviour-equivalent protocols must produce identical schedules
   and identical behaviours — even through drops, duplicates, reorder
   and partitions. *)

open Rlist_model
module Faults = Rlist_net.Faults
module Transport = Rlist_net.Transport

(* Helpers.qtest, plus a printer so a failure names its seed. *)
let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print:string_of_int gen prop)

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let params = { Rlist_sim.Schedule.default_params with updates = 25 }

let fault_models =
  List.map
    (fun n -> n, Option.get (Faults.preset n))
    [ "drop"; "dup"; "reorder"; "partition"; "chaos"; "heavy-loss" ]

(* The fault model under which a seed runs is itself seed-determined,
   so the corpus of counterexamples covers all models over time. *)
let net_for seed =
  let _, faults = List.nth fault_models (seed mod List.length fault_models) in
  Transport.config ~faults ~seed ()

type outcome = {
  schedule : Rlist_sim.Schedule.t;
  behavior : (Replica_id.t * Document.t) list;
  converged : bool;
  trace : Rlist_spec.Trace.t;
}

let run_cs (type c s a b)
    (module P : Rlist_sim.Protocol_intf.PROTOCOL
      with type client = c
       and type server = s
       and type c2s = a
       and type s2c = b) ?(batching = false) ~faulty seed =
  let module E = Rlist_sim.Engine.Make (P) in
  let net = if faulty then Some (net_for seed) else None in
  let t = E.create ?net ~batching ~nclients:3 () in
  let rng = Random.State.make [| seed; 0xFA17 |] in
  let schedule = E.run_random t ~rng ~params in
  {
    schedule;
    behavior = E.behavior t;
    converged = E.converged t;
    trace = E.trace t;
  }

let behavior_equal =
  List.equal (fun (r1, d1) (r2, d2) ->
      Replica_id.equal r1 r2 && Document.equal d1 d2)

let satisfied = function
  | Rlist_spec.Check.Satisfied -> true
  | Rlist_spec.Check.Violated _ -> false

let quiescent_ok o =
  o.converged
  && satisfied (Rlist_spec.Convergence.check o.trace)
  && satisfied (Rlist_spec.Weak_spec.check o.trace)

(* --- Theorem 7.1: CSS and CSCW are behaviourally equivalent -------- *)

(* With [batching] the equivalence gates the batched delivery path:
   both engines coalesce identically (same RNG, same deliverable
   counts), so the differential catches any divergence between a
   protocol's batch entry points and one-by-one receipt. *)
let css_equiv_cscw ?(batching = false) ~faulty seed =
  let a = run_cs (module Jupiter_css.Protocol) ~batching ~faulty seed in
  let b = run_cs (module Jupiter_cscw.Protocol) ~batching ~faulty seed in
  a.schedule = b.schedule
  && behavior_equal a.behavior b.behavior
  && quiescent_ok a && quiescent_ok b

(* --- Pruned Jupiter is observationally identical to CSS ------------ *)

let pruned_equiv_css ?(batching = false) ~faulty seed =
  let a = run_cs (module Jupiter_css.Protocol) ~batching ~faulty seed in
  let b = run_cs (module Jupiter_css.Pruned_protocol) ~batching ~faulty seed in
  a.schedule = b.schedule
  && behavior_equal a.behavior b.behavior
  && quiescent_ok b

(* --- Every protocol converges at quiescence ------------------------ *)

let cs_protocols :
    (string * (?batching:bool -> faulty:bool -> int -> outcome)) list =
  [
    "css", run_cs (module Jupiter_css.Protocol);
    "cscw", run_cs (module Jupiter_cscw.Protocol);
    "css-pruned", run_cs (module Jupiter_css.Pruned_protocol);
    "css-seq", run_cs (module Jupiter_css.Sequencer_protocol);
    "rga", run_cs (module Jupiter_rga.Protocol);
    "logoot", run_cs (module Jupiter_logoot.Protocol);
    "treedoc", run_cs (module Jupiter_treedoc.Protocol);
  ]

let run_p2p (type p m)
    (module P : Rlist_sim.P2p_protocol_intf.P2P_PROTOCOL
      with type peer = p
       and type message = m) ?(batching = false) ~faulty seed =
  let module E = Rlist_sim.P2p_engine.Make (P) in
  let net = if faulty then Some (net_for seed) else None in
  let t = E.create ?net ~batching ~npeers:3 () in
  let rng = Random.State.make [| seed; 0xFA17 |] in
  ignore (E.run_random t ~rng ~params);
  let trace = E.trace t in
  E.converged t
  && satisfied (Rlist_spec.Convergence.check trace)
  && satisfied (Rlist_spec.Weak_spec.check trace)

let p2p_protocols =
  [
    "css-p2p", run_p2p (module Jupiter_css.Distributed_protocol);
    "ttf", run_p2p (module Jupiter_ttf.Adopted_protocol);
  ]

let all_converge ?(batching = false) ~faulty seed =
  List.for_all
    (fun ((name : string), run) ->
      let o = run ?batching:(Some batching) ~faulty seed in
      quiescent_ok o
      ||
      (Printf.printf "protocol %s failed at seed %d\n%!" name seed;
       false))
    cs_protocols
  && List.for_all
       (fun ((name : string), run) ->
         run ?batching:(Some batching) ~faulty seed
         ||
         (Printf.printf "protocol %s failed at seed %d\n%!" name seed;
          false))
       p2p_protocols

(* The naive foil diverges even on perfect channels (its remote
   applies can go out of bounds on a diverged replica), so it is
   excluded from the convergence gate; what the shim still owes it is
   a clean FIFO-exactly-once channel.  The property: a naive run under
   chaos records zero contract violations, and any abort is the
   foil's own doing — never the channels failing to quiesce. *)
let naive_completes_cleanly seed =
  let net = Transport.config ~faults:(snd (List.nth fault_models 4)) ~seed () in
  let module E = Rlist_sim.Engine.Make (Jupiter_cscw.Naive_p2p) in
  let t = E.create ~net ~nclients:3 () in
  let rng = Random.State.make [| seed; 0xFA17 |] in
  (try ignore (E.run_random t ~rng ~params) with
  | Invalid_argument msg when not (Helpers.contains msg "quiesce") -> ());
  (Transport.stats net).Rlist_net.Stats.contract_violations = 0

(* --- The negative control ------------------------------------------ *)

(* Without the shim, lossy channels break the protocols' channel
   assumption and the runs demonstrably do NOT converge: the CSS
   delivery either throws (a transformation against a state its space
   no longer matches) or quiesces diverged.  With the shim, the very
   same seeds all converge.  This is the experiment that justifies the
   shim's existence. *)
let test_shimless_diverges () =
  let faults = { Faults.none with drop = 0.3 } in
  let seeds = List.init 10 (fun i -> i + 1) in
  let broken = ref 0 in
  List.iter
    (fun seed ->
      let net = Transport.config ~shim:false ~faults ~seed () in
      let module E = Rlist_sim.Engine.Make (Jupiter_css.Protocol) in
      let t = E.create ~net ~nclients:3 () in
      let rng = Random.State.make [| seed; 0xFA17 |] in
      match E.run_random t ~rng ~params with
      | _ -> if not (E.converged t) then incr broken
      | exception Invalid_argument _ -> incr broken)
    seeds;
  Alcotest.(check bool)
    (Printf.sprintf "shim-less lossy runs break the protocol (%d/10 broke)"
       !broken)
    true (!broken >= 8);
  (* Positive control: the same seeds, same fault model, shim on. *)
  List.iter
    (fun seed ->
      let net = Transport.config ~faults ~seed () in
      let module E = Rlist_sim.Engine.Make (Jupiter_css.Protocol) in
      let t = E.create ~net ~nclients:3 () in
      let rng = Random.State.make [| seed; 0xFA17 |] in
      ignore (E.run_random t ~rng ~params);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d converges with the shim" seed)
        true (E.converged t))
    seeds

let () =
  Alcotest.run "properties"
    [
      ( "differential",
        [
          qtest ~count:50 "css = cscw (reliable)" seed_gen
            (css_equiv_cscw ~batching:false ~faulty:false);
          qtest ~count:50 "css = cscw (faulty, shimmed)" seed_gen
            (css_equiv_cscw ~batching:false ~faulty:true);
          qtest ~count:25 "pruned = css (reliable)" seed_gen
            (pruned_equiv_css ~batching:false ~faulty:false);
          qtest ~count:25 "pruned = css (faulty, shimmed)" seed_gen
            (pruned_equiv_css ~batching:false ~faulty:true);
        ] );
      ( "differential-batched",
        [
          qtest ~count:50 "css = cscw (batched, reliable)" seed_gen
            (css_equiv_cscw ~batching:true ~faulty:false);
          qtest ~count:50 "css = cscw (batched, faulty, shimmed)" seed_gen
            (css_equiv_cscw ~batching:true ~faulty:true);
          qtest ~count:25 "pruned = css (batched, reliable)" seed_gen
            (pruned_equiv_css ~batching:true ~faulty:false);
          qtest ~count:25 "pruned = css (batched, faulty, shimmed)" seed_gen
            (pruned_equiv_css ~batching:true ~faulty:true);
        ] );
      ( "convergence",
        [
          qtest ~count:10 "all protocols converge (reliable)" seed_gen
            (all_converge ~batching:false ~faulty:false);
          qtest ~count:10 "all protocols converge (faulty, shimmed)" seed_gen
            (all_converge ~batching:false ~faulty:true);
          qtest ~count:10 "all protocols converge (batched, faulty)" seed_gen
            (all_converge ~batching:true ~faulty:true);
          qtest ~count:10 "naive foil gets a clean channel" seed_gen
            naive_completes_cleanly;
        ] );
      ( "negative-control",
        [
          Alcotest.test_case "no shim, lossy: divergence" `Quick
            test_shimless_diverges;
        ] );
    ]
