(* Tests for the CSS protocol and its n-ary ordered state-space:
   Algorithm 1, transition ordering, Proposition 6.6 (compactness),
   Theorem 6.7 (convergence), Theorem 8.2 (weak list specification),
   and the structural lemmas of Section 8.2 (Figures 9/10). *)

open Rlist_model
open Rlist_ot
module Space = Jupiter_css.State_space
module E = Helpers.Css_run.E

let key_table () =
  let serials : (Op_id.t, int) Hashtbl.t = Hashtbl.create 8 in
  let key id =
    match Hashtbl.find_opt serials id with
    | Some s -> Jupiter_css.Order_key.Serialized s
    | None -> Jupiter_css.Order_key.Pending id.Op_id.seq
  in
  serials, key

let in_ctx op ~ctx = Context.with_context op ~ctx

(* --- Order keys ------------------------------------------------------ *)

let test_order_key () =
  let open Jupiter_css.Order_key in
  Alcotest.(check bool) "serial order" true (compare (Serialized 1) (Serialized 2) < 0);
  Alcotest.(check bool) "pending order" true (compare (Pending 1) (Pending 2) < 0);
  Alcotest.(check bool)
    "serialized before pending" true
    (compare (Serialized 100) (Pending 1) < 0)

(* --- State-space unit tests ------------------------------------------ *)

let test_space_initial () =
  let _, key = key_table () in
  let space = Space.create ~key_of:key () in
  Alcotest.(check int) "one state" 1 (Space.num_states space);
  Alcotest.(check int) "no transitions" 0 (Space.num_transitions space);
  Alcotest.check Helpers.op_id_set "final is initial" Space.initial_state
    (Space.final space);
  Alcotest.(check (list pass)) "leftmost path empty" []
    (Space.leftmost_path space Space.initial_state)

let test_space_append () =
  let serials, key = key_table () in
  let space = Space.create ~key_of:key () in
  let o1 = Helpers.ins ~client:1 'a' 0 in
  Hashtbl.replace serials o1.Op.id 1;
  let form = Space.add_op space (in_ctx o1 ~ctx:Space.initial_state) in
  Alcotest.check Helpers.op "appended unchanged" o1 form;
  Alcotest.(check int) "two states" 2 (Space.num_states space);
  Alcotest.(check bool)
    "final contains o1" true
    (Op_id.Set.mem o1.Op.id (Space.final space))

let test_space_concurrent_square () =
  (* Two concurrent inserts: Algorithm 1 must build the full
     commuting square with correctly transformed labels. *)
  let serials, key = key_table () in
  let space = Space.create ~key_of:key () in
  let o1 = Helpers.ins ~client:1 'a' 0 in
  let o2 = Helpers.ins ~client:2 'b' 0 in
  Hashtbl.replace serials o1.Op.id 1;
  Hashtbl.replace serials o2.Op.id 2;
  ignore (Space.add_op space (in_ctx o1 ~ctx:Space.initial_state));
  let form = Space.add_op space (in_ctx o2 ~ctx:Space.initial_state) in
  (* b comes from the higher-priority client, so it keeps position 0. *)
  Alcotest.(check (option int)) "o2 stays at 0" (Some 0) (Op.position form);
  Alcotest.(check int) "four states" 4 (Space.num_states space);
  Alcotest.(check int) "four transitions" 4 (Space.num_transitions space);
  (* At the initial state, the serial order places o1 left of o2. *)
  (match Space.transitions space Space.initial_state with
  | [ t1; t2 ] ->
    Alcotest.check Helpers.op_id "o1 leftmost" o1.Op.id t1.Space.orig;
    Alcotest.check Helpers.op_id "o2 second" o2.Op.id t2.Space.orig
  | _ -> Alcotest.fail "expected two transitions");
  (* o1's transformed form at state {2} shifts right past b. *)
  match Space.transitions space (Op_id.Set.singleton o2.Op.id) with
  | [ t ] ->
    Alcotest.check Helpers.op_id "o1 on the ladder" o1.Op.id t.Space.orig;
    Alcotest.(check (option int)) "shifted to 1" (Some 1)
      (Op.position t.Space.form)
  | _ -> Alcotest.fail "expected one ladder transition"

let test_space_pending_after_serialized () =
  (* A pending own operation sorts to the right of serialized ones,
     whatever the insertion order (Figure 4, client c3). *)
  let serials, key = key_table () in
  let space = Space.create ~key_of:key () in
  let own = Helpers.ins ~client:3 'c' 0 in
  ignore (Space.add_op space (in_ctx own ~ctx:Space.initial_state));
  let remote = Helpers.ins ~client:1 'a' 0 in
  Hashtbl.replace serials remote.Op.id 1;
  ignore (Space.add_op space (in_ctx remote ~ctx:Space.initial_state));
  match Space.transitions space Space.initial_state with
  | [ t1; t2 ] ->
    Alcotest.check Helpers.op_id "remote first" remote.Op.id t1.Space.orig;
    Alcotest.check Helpers.op_id "pending own second" own.Op.id t2.Space.orig
  | _ -> Alcotest.fail "expected two transitions"

let test_space_rejects_unknown_context () =
  let serials, key = key_table () in
  let space = Space.create ~key_of:key () in
  let o = Helpers.ins ~client:1 'a' 0 in
  Hashtbl.replace serials o.Op.id 1;
  let ghost = Op_id.Set.singleton (Op_id.make ~client:7 ~seq:9) in
  Alcotest.(check bool)
    "unknown context rejected" true
    (try
       ignore (Space.add_op space (in_ctx o ~ctx:ghost));
       false
     with Invalid_argument _ -> true)

let test_space_rejects_duplicate () =
  let serials, key = key_table () in
  let space = Space.create ~key_of:key () in
  let o = Helpers.ins ~client:1 'a' 0 in
  Hashtbl.replace serials o.Op.id 1;
  ignore (Space.add_op space (in_ctx o ~ctx:Space.initial_state));
  Alcotest.(check bool)
    "duplicate processing rejected" true
    (try
       ignore (Space.add_op space (in_ctx o ~ctx:Space.initial_state));
       false
     with Invalid_argument _ -> true)

let test_space_equal () =
  let build () =
    let serials, key = key_table () in
    let space = Space.create ~key_of:key () in
    let o1 = Helpers.ins ~client:1 'a' 0 in
    let o2 = Helpers.ins ~client:2 'b' 0 in
    Hashtbl.replace serials o1.Op.id 1;
    Hashtbl.replace serials o2.Op.id 2;
    ignore (Space.add_op space (in_ctx o1 ~ctx:Space.initial_state));
    ignore (Space.add_op space (in_ctx o2 ~ctx:Space.initial_state));
    space
  in
  Alcotest.(check bool) "equal spaces" true (Space.equal (build ()) (build ()));
  let serials, key = key_table () in
  let other = Space.create ~key_of:key () in
  let o1 = Helpers.ins ~client:1 'a' 0 in
  Hashtbl.replace serials o1.Op.id 1;
  ignore (Space.add_op other (in_ctx o1 ~ctx:Space.initial_state));
  Alcotest.(check bool) "different spaces" false (Space.equal (build ()) other)

(* --- Figure-level protocol tests ------------------------------------- *)

let all_spaces t nclients =
  Jupiter_css.Protocol.server_space (E.server t)
  :: List.init nclients (fun i ->
         Jupiter_css.Protocol.client_space (E.client t (i + 1)))

let test_figure2_space () =
  (* Figure 4: 3 pairwise-concurrent operations produce the 7-state,
     9-transition space — note no state {2,3}: only states the ladders
     actually visit exist. *)
  let s = Rlist_sim.Figures.figure2 in
  let t = Helpers.Css_run.scenario s in
  let space = Jupiter_css.Protocol.server_space (E.server t) in
  Alcotest.(check int) "7 states" 7 (Space.num_states space);
  Alcotest.(check int) "9 transitions" 9 (Space.num_transitions space);
  Alcotest.(check bool)
    "state {1,2} exists" true
    (Space.mem_state space
       (Op_id.Set.of_list
          [ Op_id.make ~client:1 ~seq:1; Op_id.make ~client:2 ~seq:1 ]));
  Alcotest.(check bool)
    "state {2,3} does not exist" false
    (Space.mem_state space
       (Op_id.Set.of_list
          [ Op_id.make ~client:2 ~seq:1; Op_id.make ~client:3 ~seq:1 ]));
  List.iter
    (fun other ->
      Alcotest.(check bool) "replica spaces equal (Prop 6.6)" true
        (Space.equal space other))
    (all_spaces t s.nclients)

let test_figure2_paths_differ () =
  (* All replicas build the same space but walk different paths
     through it (Example 6.3). *)
  let s = Rlist_sim.Figures.figure2 in
  let t = Helpers.Css_run.scenario s in
  let p1 = Jupiter_css.Protocol.client_path (E.client t 1) in
  let p3 = Jupiter_css.Protocol.client_path (E.client t 3) in
  Alcotest.(check bool)
    "paths differ" false
    (List.length p1 = List.length p3
    && List.for_all2 Op_id.Set.equal p1 p3);
  (* but they end at the same final state *)
  let last l = List.nth l (List.length l - 1) in
  Alcotest.check Helpers.op_id_set "same final" (last p1) (last p3)

let test_figure3_transformation_chain () =
  (* Example 6.1: when client 1 receives o3 (context {}), the leftmost
     path is <o1, o2{1}, o4{..}> — i.e. three transformation steps. *)
  let s = Rlist_sim.Figures.figure3 in
  let t = Helpers.Css_run.scenario s in
  let space = Jupiter_css.Protocol.server_space (E.server t) in
  Alcotest.(check int) "9 states" 9 (Space.num_states space);
  Alcotest.(check int) "12 transitions" 12 (Space.num_transitions space);
  Alcotest.(check bool) "converged" true (E.converged t);
  List.iter
    (fun other ->
      Alcotest.(check bool) "spaces equal" true (Space.equal space other))
    (all_spaces t s.nclients)

let test_figure6_space () =
  let s = Rlist_sim.Figures.figure6 in
  let t = Helpers.Css_run.scenario s in
  let space = Jupiter_css.Protocol.server_space (E.server t) in
  Alcotest.(check int) "10 states" 10 (Space.num_states space);
  Alcotest.(check int) "14 transitions" 14 (Space.num_transitions space);
  Alcotest.(check bool)
    "state {1,4} exists (o4 causally after o1)" true
    (Space.mem_state space
       (Op_id.Set.of_list
          [ Op_id.make ~client:1 ~seq:1; Op_id.make ~client:1 ~seq:2 ]));
  List.iter
    (fun other ->
      Alcotest.(check bool) "spaces equal" true (Space.equal space other))
    (all_spaces t s.nclients)

let test_figure4_transformed_forms () =
  (* The exact transformed forms on the Figure 4 edges.  Operations:
     o1 = Ins(a,0)@c1, o2 = Ins(b,0)@c2, o3 = Ins(c,0)@c3, all at
     position 0; larger client = higher priority, so each later op
     stays at 0 and earlier ones shift right past it. *)
  let s = Rlist_sim.Figures.figure2 in
  let t = Helpers.Css_run.scenario s in
  let space = Jupiter_css.Protocol.server_space (E.server t) in
  let id c = Op_id.make ~client:c ~seq:1 in
  let state ids = Op_id.Set.of_list (List.map id ids) in
  let form_of ~from ~op =
    match
      List.find_opt
        (fun tr -> Op_id.equal tr.Space.orig (id op))
        (Space.transitions space (state from))
    with
    | Some tr -> tr.Space.form
    | None -> Alcotest.failf "no transition for o%d" op
  in
  let pos op = Option.get (Op.position op) in
  (* original forms at the root *)
  Alcotest.(check int) "o1 at {}" 0 (pos (form_of ~from:[] ~op:1));
  Alcotest.(check int) "o2 at {}" 0 (pos (form_of ~from:[] ~op:2));
  Alcotest.(check int) "o3 at {}" 0 (pos (form_of ~from:[] ~op:3));
  (* o1 shifts right past higher-priority inserts *)
  Alcotest.(check int) "o1{2} = Ins(a,1)" 1 (pos (form_of ~from:[ 2 ] ~op:1));
  Alcotest.(check int) "o1{3} = Ins(a,1)" 1 (pos (form_of ~from:[ 3 ] ~op:1));
  (* higher-priority ops stay at 0 against lower ones *)
  Alcotest.(check int) "o2{1} = Ins(b,0)" 0 (pos (form_of ~from:[ 1 ] ~op:2));
  Alcotest.(check int) "o3{1} = Ins(c,0)" 0 (pos (form_of ~from:[ 1 ] ~op:3));
  Alcotest.(check int)
    "o3{1,2} = Ins(c,0)" 0
    (pos (form_of ~from:[ 1; 2 ] ~op:3));
  Alcotest.(check int)
    "o2{1,3} = Ins(b,1)" 1
    (pos (form_of ~from:[ 1; 3 ] ~op:2))

let test_stats () =
  let t = Helpers.Css_run.scenario Rlist_sim.Figures.figure7 in
  let space = Jupiter_css.Protocol.server_space (E.server t) in
  let stats = Jupiter_css.Analysis.stats space in
  Alcotest.(check int) "states" 8 stats.Jupiter_css.Analysis.states;
  Alcotest.(check int) "transitions" 10 stats.Jupiter_css.Analysis.transitions;
  Alcotest.(check int) "depth" 4 stats.Jupiter_css.Analysis.depth;
  Alcotest.(check int)
    "max branching bounded by n" 3
    stats.Jupiter_css.Analysis.max_branching;
  Alcotest.(check int) "no nop forms here" 0 stats.Jupiter_css.Analysis.nop_forms;
  Alcotest.(check (list (pair int int)))
    "width per level"
    [ 0, 1; 1, 1; 2, 3; 3, 2; 4, 1 ]
    stats.Jupiter_css.Analysis.width_per_level

let test_stats_counts_nops () =
  (* Two concurrent deletions of the same element produce Nop forms on
     the ladder. *)
  let t = E.create ~initial:(Document.of_string "ab") ~nclients:2 () in
  E.run t [ Generate (1, Intent.Delete 0); Generate (2, Intent.Delete 0) ];
  ignore (E.quiesce t);
  let space = Jupiter_css.Protocol.server_space (E.server t) in
  let stats = Jupiter_css.Analysis.stats space in
  Alcotest.(check bool)
    "nop forms recorded" true
    (stats.Jupiter_css.Analysis.nop_forms > 0);
  Alcotest.(check string)
    "both deletions collapse" "b"
    (Document.to_string (E.server_document t))

(* --- Random-schedule properties -------------------------------------- *)

let gen_seed = QCheck2.Gen.int_range 1 1_000_000

let small_params =
  { Rlist_sim.Schedule.default_params with updates = 15; deliver_bias = 0.45 }

let prop_convergence =
  Helpers.qtest ~count:60 "Theorem 6.7: CSS satisfies convergence" gen_seed
    (fun seed ->
      let t, _ = Helpers.Css_run.random ~params:small_params seed in
      E.converged t
      && Rlist_spec.Check.is_satisfied
           (Rlist_spec.Convergence.check_all_events (E.trace t)))

let prop_compactness =
  Helpers.qtest ~count:60
    "Proposition 6.6: all replica state-spaces are equal at quiescence"
    gen_seed (fun seed ->
      let t, _ = Helpers.Css_run.random ~params:small_params seed in
      let space = Jupiter_css.Protocol.server_space (E.server t) in
      List.for_all
        (fun other -> Space.equal space other)
        (all_spaces t (E.nclients t)))

let prop_weak_spec =
  Helpers.qtest ~count:60 "Theorem 8.2: CSS satisfies the weak list spec"
    gen_seed (fun seed ->
      let t, _ = Helpers.Css_run.random ~params:small_params seed in
      let trace = E.trace t in
      Result.is_ok (Rlist_spec.Trace.validate trace)
      && Rlist_spec.Check.is_satisfied (Rlist_spec.Weak_spec.check trace))

let tiny_params =
  (* Small spaces so that the exponential path enumeration in the
     lemma checks stays fast. *)
  { Rlist_sim.Schedule.default_params with updates = 8; deliver_bias = 0.45 }

let prop_lemmas =
  Helpers.qtest ~count:40
    "Lemmas 6.1/6.3/8.4/8.5 and Theorem 8.7 on random spaces" gen_seed
    (fun seed ->
      let t, _ = Helpers.Css_run.random ~nclients:3 ~params:tiny_params seed in
      let space = Jupiter_css.Protocol.server_space (E.server t) in
      match
        Jupiter_css.Analysis.check_all space ~nclients:3
          ~initial:Document.empty
      with
      | Ok () -> true
      | Error e -> QCheck2.Test.fail_report e)

let prop_leftmost_lemma =
  (* Lemma 6.4: from any state, the leftmost path reaches the final
     state and consists exactly of the operations not in the state, in
     total order. *)
  Helpers.qtest ~count:40 "Lemma 6.4: leftmost transitions" gen_seed
    (fun seed ->
      let t, _ = Helpers.Css_run.random ~nclients:3 ~params:tiny_params seed in
      let space = Jupiter_css.Protocol.server_space (E.server t) in
      let final = Space.final space in
      List.for_all
        (fun state ->
          let path = Space.leftmost_path space state in
          let ops = List.map (fun tr -> tr.Space.orig) path in
          let expected = Op_id.Set.diff final state in
          Op_id.Set.equal (Op_id.Set.of_list ops) expected
          && List.length ops = Op_id.Set.cardinal expected)
        (Space.states space))

let prop_documents_confluent =
  Helpers.qtest ~count:40 "state-space replay is confluent (CP1)" gen_seed
    (fun seed ->
      let t, _ = Helpers.Css_run.random ~nclients:3 ~params:tiny_params seed in
      let space = Jupiter_css.Protocol.server_space (E.server t) in
      (* documents raises if two paths to a state disagree *)
      let docs = Jupiter_css.Analysis.documents space ~initial:Document.empty in
      List.length docs = Space.num_states space)

let prop_final_doc_matches_space =
  Helpers.qtest ~count:40 "replica document = document at final state"
    gen_seed (fun seed ->
      let t, _ = Helpers.Css_run.random ~nclients:3 ~params:tiny_params seed in
      let space = Jupiter_css.Protocol.server_space (E.server t) in
      let doc =
        Jupiter_css.Analysis.document_at space ~initial:Document.empty
          (Space.final space)
      in
      Document.equal doc (E.server_document t))

(* --- Rendering -------------------------------------------------------- *)

let test_render_dot () =
  let t = Helpers.Css_run.scenario Rlist_sim.Figures.figure2 in
  let space = Jupiter_css.Protocol.server_space (E.server t) in
  let dot =
    Jupiter_css.Render.to_dot space ~initial:Document.empty ~name:"figure4"
  in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 0
    && String.sub dot 0 7 = "digraph");
  (* 7 nodes and 9 edges *)
  let count_substring needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i acc =
      if i + n > h then acc
      else if String.sub hay i n = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "9 edges" 9 (count_substring " -> " dot)

let test_render_paths_of_figure4 () =
  (* The thick lines of Figure 4: rendering each replica's
     construction path shows the per-state documents in order. *)
  let s = Rlist_sim.Figures.figure2 in
  let t = Helpers.Css_run.scenario s in
  let space = Jupiter_css.Protocol.server_space (E.server t) in
  let render path =
    Jupiter_css.Render.path_to_ascii space ~initial:s.initial path
  in
  let c2 = render (Jupiter_css.Protocol.client_path (E.client t 2)) in
  let c3 = render (Jupiter_css.Protocol.client_path (E.client t 3)) in
  (* client 2 passes through "b" (its own op first); client 3 through
     "c"; both end at "cba". *)
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "c2 path shows b" true (contains c2 "\"b\"");
  Alcotest.(check bool) "c3 path shows c" true (contains c3 "\"c\"");
  Alcotest.(check bool) "c2 ends at cba" true (contains c2 "\"cba\"");
  Alcotest.(check bool) "c3 ends at cba" true (contains c3 "\"cba\"");
  Alcotest.(check int)
    "path length = ops + 1" 4
    (List.length (String.split_on_char '\n' c2))

let test_render_dot_labels () =
  (* DOT output carries both the state sets and the documents. *)
  let s = Rlist_sim.Figures.figure7 in
  let t = Helpers.Css_run.scenario s in
  let space = Jupiter_css.Protocol.server_space (E.server t) in
  let dot = Jupiter_css.Render.to_dot space ~initial:s.initial ~name:"f7" in
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec go i = i + n <= h && (String.sub dot i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "final document labelled" true (contains "ba");
  Alcotest.(check bool) "edge labels carry forms" true (contains "Ins(");
  Alcotest.(check bool) "deletion edges present" true (contains "Del(")

let test_render_ascii_and_path () =
  let s = Rlist_sim.Figures.figure7 in
  let t = Helpers.Css_run.scenario s in
  let space = Jupiter_css.Protocol.server_space (E.server t) in
  let ascii = Jupiter_css.Render.to_ascii space ~initial:s.initial in
  Alcotest.(check bool) "mentions final list" true
    (let needle = "\"ba\"" in
     let rec contains i =
       i + String.length needle <= String.length ascii
       && (String.sub ascii i (String.length needle) = needle
          || contains (i + 1))
     in
     contains 0);
  let path =
    Jupiter_css.Render.path_to_ascii space ~initial:s.initial
      (Jupiter_css.Protocol.server_path (E.server t))
  in
  Alcotest.(check bool) "path nonempty" true (String.length path > 0)

let () =
  Alcotest.run "css"
    [
      ( "order_key",
        [ Alcotest.test_case "ordering" `Quick test_order_key ] );
      ( "state_space",
        [
          Alcotest.test_case "initial" `Quick test_space_initial;
          Alcotest.test_case "append at final" `Quick test_space_append;
          Alcotest.test_case "concurrent square" `Quick
            test_space_concurrent_square;
          Alcotest.test_case "pending after serialized" `Quick
            test_space_pending_after_serialized;
          Alcotest.test_case "unknown context rejected" `Quick
            test_space_rejects_unknown_context;
          Alcotest.test_case "duplicate rejected" `Quick
            test_space_rejects_duplicate;
          Alcotest.test_case "structural equality" `Quick test_space_equal;
        ] );
      ( "figures",
        [
          Alcotest.test_case "figure 2/4 space" `Quick test_figure2_space;
          Alcotest.test_case "figure 4 paths differ" `Quick
            test_figure2_paths_differ;
          Alcotest.test_case "figure 3 chain" `Quick
            test_figure3_transformation_chain;
          Alcotest.test_case "figure 6 space" `Quick test_figure6_space;
          Alcotest.test_case "figure 4 transformed forms" `Quick
            test_figure4_transformed_forms;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "stats on figure 7" `Quick test_stats;
          Alcotest.test_case "stats count nop forms" `Quick
            test_stats_counts_nops;
        ] );
      ( "properties",
        [
          prop_convergence;
          prop_compactness;
          prop_weak_spec;
          prop_lemmas;
          prop_leftmost_lemma;
          prop_documents_confluent;
          prop_final_doc_matches_space;
        ] );
      ( "render",
        [
          Alcotest.test_case "dot output" `Quick test_render_dot;
          Alcotest.test_case "dot labels" `Quick test_render_dot_labels;
          Alcotest.test_case "figure 4 construction paths" `Quick
            test_render_paths_of_figure4;
          Alcotest.test_case "ascii and path" `Quick
            test_render_ascii_and_path;
        ] );
    ]
