(* Tests for the workload generators: every profile must produce valid
   intents only, drive every protocol to convergence, and exhibit its
   characteristic shape (append-only grows, churn stays short, hotspot
   concentrates at the front). *)

open Rlist_model
module E = Helpers.Css_run.E

let run_profile ?(seed = 17) ?(nclients = 3) ?(updates = 30) profile =
  let t = E.create ~nclients () in
  let rng = Random.State.make [| seed; 0xBEEF |] in
  let intent = Rlist_workload.Workload.intent_generator profile ~nclients ~rng in
  let params = Rlist_workload.Workload.params profile ~updates in
  let schedule = E.run_random ~intent t ~rng ~params in
  t, schedule

let test_profile_names () =
  List.iter
    (fun p ->
      let name = Rlist_workload.Workload.profile_name p in
      match Rlist_workload.Workload.profile_of_name name with
      | Some p' when p = p' -> ()
      | _ -> Alcotest.failf "profile %s does not round-trip" name)
    Rlist_workload.Workload.all_profiles;
  Alcotest.(check bool)
    "unknown profile" true
    (Rlist_workload.Workload.profile_of_name "nonsense" = None)

let test_every_profile_runs_and_converges () =
  List.iter
    (fun profile ->
      let t, _ = run_profile profile in
      let name = Rlist_workload.Workload.profile_name profile in
      Alcotest.(check bool) (name ^ " converged") true (E.converged t);
      match Rlist_spec.Trace.validate (E.trace t) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: invalid trace: %s" name e)
    Rlist_workload.Workload.all_profiles

let test_append_log_shape () =
  let t, schedule = run_profile Rlist_workload.Workload.Append_log ~updates:25 in
  let inserts, deletes =
    List.fold_left
      (fun (i, d) ev ->
        match ev with
        | Rlist_sim.Schedule.Generate (_, Intent.Insert _) -> i + 1, d
        | Rlist_sim.Schedule.Generate (_, Intent.Delete _) -> i, d + 1
        | _ -> i, d)
      (0, 0) schedule
  in
  Alcotest.(check int) "no deletes" 0 deletes;
  Alcotest.(check int) "25 inserts" 25 inserts;
  Alcotest.(check int)
    "document length equals insert count" 25
    (Document.length (E.server_document t))

let test_churn_stays_short () =
  let t, _ = run_profile Rlist_workload.Workload.Churn ~updates:60 in
  (* Half the updates delete, so the document stays well below the
     update count. *)
  Alcotest.(check bool)
    "short document" true
    (Document.length (E.server_document t) < 55)

let test_hotspot_concentrates_front () =
  let _, schedule = run_profile Rlist_workload.Workload.Hotspot ~updates:50 in
  let positions =
    List.filter_map
      (function
        | Rlist_sim.Schedule.Generate (_, Intent.Insert (_, p)) -> Some p
        | Rlist_sim.Schedule.Generate (_, Intent.Delete p) -> Some p
        | _ -> None)
      schedule
  in
  let near_front = List.length (List.filter (fun p -> p <= 3) positions) in
  Alcotest.(check bool)
    "most positions near the front" true
    (near_front * 2 > List.length positions)

let test_typing_is_mostly_sequential () =
  let _, schedule = run_profile Rlist_workload.Workload.Typing ~updates:40 in
  let inserts, deletes =
    List.fold_left
      (fun (i, d) ev ->
        match ev with
        | Rlist_sim.Schedule.Generate (_, Intent.Insert _) -> i + 1, d
        | Rlist_sim.Schedule.Generate (_, Intent.Delete _) -> i, d + 1
        | _ -> i, d)
      (0, 0) schedule
  in
  Alcotest.(check bool) "mostly inserts" true (inserts > deletes * 2)

let prop_intents_always_valid =
  Helpers.qtest ~count:40 "generators only produce in-bounds intents"
    QCheck2.Gen.(
      pair (int_range 1 1_000_000) (int_range 0 4))
    (fun (seed, profile_index) ->
      let profile = List.nth Rlist_workload.Workload.all_profiles profile_index in
      (* run_random would raise Invalid_argument on the first
         out-of-bounds intent. *)
      let t, _ = run_profile ~seed profile ~updates:20 in
      E.converged t)

let test_profiles_work_for_all_protocols () =
  List.iter
    (fun profile ->
      let name = Rlist_workload.Workload.profile_name profile in
      let nclients = 3 in
      let rng = Random.State.make [| 5; 0xABBA |] in
      let intent =
        Rlist_workload.Workload.intent_generator profile ~nclients ~rng
      in
      let params = Rlist_workload.Workload.params profile ~updates:20 in
      let css = E.create ~nclients () in
      let schedule = E.run_random ~intent css ~rng ~params in
      let cscw = Helpers.Cscw_run.E.create ~nclients () in
      Helpers.Cscw_run.E.run cscw schedule;
      let rga = Helpers.Rga_run.E.create ~nclients () in
      Helpers.Rga_run.E.run rga schedule;
      Alcotest.(check bool) (name ^ ": css converged") true (E.converged css);
      Alcotest.(check bool)
        (name ^ ": cscw converged")
        true
        (Helpers.Cscw_run.E.converged cscw);
      Alcotest.(check bool)
        (name ^ ": rga converged")
        true
        (Helpers.Rga_run.E.converged rga))
    Rlist_workload.Workload.all_profiles

let () =
  Alcotest.run "workload"
    [
      ( "profiles",
        [
          Alcotest.test_case "names round-trip" `Quick test_profile_names;
          Alcotest.test_case "all profiles run and converge" `Quick
            test_every_profile_runs_and_converges;
          Alcotest.test_case "append-log shape" `Quick test_append_log_shape;
          Alcotest.test_case "churn stays short" `Quick test_churn_stays_short;
          Alcotest.test_case "hotspot concentrates front" `Quick
            test_hotspot_concentrates_front;
          Alcotest.test_case "typing mostly sequential" `Quick
            test_typing_is_mostly_sequential;
          prop_intents_always_valid;
          Alcotest.test_case "all protocols, all profiles" `Quick
            test_profiles_work_for_all_protocols;
        ] );
    ]
