test/test_integration.ml: Alcotest Char Document Helpers Intent Jupiter_css Jupiter_logoot Jupiter_treedoc List QCheck2 Rlist_model Rlist_sim Rlist_spec
