test/test_css.ml: Alcotest Context Document Hashtbl Helpers Intent Jupiter_css List Op Op_id Option QCheck2 Result Rlist_model Rlist_ot Rlist_sim Rlist_spec String
