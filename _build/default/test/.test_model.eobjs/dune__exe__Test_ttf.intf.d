test/test_ttf.mli:
