test/test_pruning.mli:
