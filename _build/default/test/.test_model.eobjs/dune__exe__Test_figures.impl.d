test/test_figures.ml: Alcotest Char Document Element Format Helpers Jupiter_css List Op_id Printf Replica_id Rlist_model Rlist_ot Rlist_sim Rlist_spec String
