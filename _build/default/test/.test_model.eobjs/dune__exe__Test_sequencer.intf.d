test/test_sequencer.mli:
