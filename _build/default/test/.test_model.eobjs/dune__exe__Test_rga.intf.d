test/test_rga.mli:
