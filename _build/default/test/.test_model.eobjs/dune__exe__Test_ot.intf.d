test/test_ot.mli:
