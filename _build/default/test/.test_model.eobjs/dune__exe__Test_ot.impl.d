test/test_ot.ml: Alcotest Context Document Element Helpers Intent List Op Op_id Printf Random Rlist_model Rlist_ot Rlist_sim Rlist_spec String Transform
