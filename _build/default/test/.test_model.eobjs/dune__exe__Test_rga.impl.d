test/test_rga.ml: Alcotest Document Element Helpers Intent Jupiter_rga List Op_id QCheck2 Result Rlist_model Rlist_sim Rlist_spec
