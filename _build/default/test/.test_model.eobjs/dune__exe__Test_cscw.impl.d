test/test_cscw.ml: Alcotest Document Helpers Intent Jupiter_cscw List Op QCheck2 Replica_id Rlist_model Rlist_ot Rlist_sim Rlist_spec
