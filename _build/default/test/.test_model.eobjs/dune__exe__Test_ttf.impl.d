test/test_ttf.ml: Alcotest Document Element Helpers Intent Jupiter_ttf List Op Op_id QCheck2 Random Result Rlist_model Rlist_ot Rlist_sim Rlist_spec
