test/test_snapshot.ml: Alcotest Char Document Element Filename Fun Helpers Intent Jupiter_css List Op_id QCheck2 Random Rlist_model Rlist_ot Sys
