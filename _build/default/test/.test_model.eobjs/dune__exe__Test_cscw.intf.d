test/test_cscw.mli:
