test/test_sequencer.ml: Alcotest Document Helpers Intent Jupiter_css List QCheck2 Random Rlist_model Rlist_sim Rlist_spec
