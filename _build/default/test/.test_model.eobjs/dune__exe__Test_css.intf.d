test/test_css.mli:
