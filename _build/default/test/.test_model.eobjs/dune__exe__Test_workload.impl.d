test/test_workload.ml: Alcotest Document Helpers Intent List QCheck2 Random Rlist_model Rlist_sim Rlist_spec Rlist_workload
