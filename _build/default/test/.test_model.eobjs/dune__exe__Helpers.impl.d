test/helpers.ml: Alcotest Document Element Jupiter_cscw Jupiter_css Jupiter_rga List Op_id QCheck2 QCheck_alcotest Random Rlist_model Rlist_ot Rlist_sim Rlist_spec String
