test/test_algebra.ml: Alcotest Document Hashtbl Helpers Jupiter_css List Op Op_id QCheck2 Result Rlist_model Rlist_ot Rlist_sim Transform
