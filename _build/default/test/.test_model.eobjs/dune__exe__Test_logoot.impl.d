test/test_logoot.ml: Alcotest Document Element Helpers Jupiter_logoot QCheck2 Random Result Rlist_model Rlist_sim Rlist_spec
