test/test_treedoc.ml: Alcotest Document Element Helpers Jupiter_treedoc Op_id QCheck2 Result Rlist_model Rlist_sim Rlist_spec
