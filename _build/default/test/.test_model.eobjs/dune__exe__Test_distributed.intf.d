test/test_distributed.mli:
