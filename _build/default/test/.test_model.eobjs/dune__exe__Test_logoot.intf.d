test/test_logoot.mli:
