test/test_model.ml: Alcotest Bool Document Element Helpers Intent List Op_id QCheck2 Replica_id Rlist_model
