test/test_distributed.ml: Alcotest Document Helpers Intent Jupiter_css List QCheck2 Random Result Rlist_model Rlist_sim Rlist_spec
