test/test_pruning.ml: Alcotest Context Document Hashtbl Helpers Intent Jupiter_css List Op Op_id Printf QCheck2 Random Replica_id Rlist_model Rlist_ot Rlist_sim Rlist_spec
