test/test_figures.mli:
