test/test_treedoc.mli:
