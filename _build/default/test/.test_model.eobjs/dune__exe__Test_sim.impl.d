test/test_sim.ml: Alcotest Document Helpers Intent List Random Replica_id Result Rlist_model Rlist_sim Rlist_spec
