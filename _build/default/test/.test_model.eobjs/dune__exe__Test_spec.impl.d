test/test_spec.ml: Alcotest Conditions Convergence Document Element Event Helpers List List_order Op_id QCheck2 Replica_id Result Rlist_model Rlist_sim Rlist_spec Strong_spec Trace Weak_spec
