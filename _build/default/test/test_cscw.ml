(* Tests for the CSCW Jupiter protocol: the 2D state-space grid, the
   protocol's convergence, its equivalence with the CSS protocol
   (Theorem 7.1), the redundant-OT-elimination claim (Section 7.2),
   and the broken dOPT-style foil. *)

open Rlist_model
open Rlist_ot
module Grid = Jupiter_cscw.Two_d_space
module Css = Helpers.Css_run.E
module Cscw = Helpers.Cscw_run.E
module Naive = Helpers.Naive_run.E

(* --- 2D state-space unit tests ---------------------------------------- *)

let test_grid_empty () =
  let grid = Grid.create ~ot_counter:(ref 0) () in
  Alcotest.(check (pair int int)) "empty extent" (0, 0) (Grid.extent grid);
  Alcotest.(check int) "no cells" 0 (Grid.size grid)

let test_grid_local_then_global () =
  (* A local op at (0,0) and a concurrent global op at (0,0): the
     global op must come back transformed against the local one. *)
  let counter = ref 0 in
  let grid = Grid.create ~ot_counter:counter () in
  let local = Helpers.ins ~client:1 'a' 0 in
  let top = Grid.add_local grid local ~at_global:0 in
  Alcotest.check Helpers.op "local untransformed" local top;
  let remote = Helpers.ins ~client:2 'b' 0 in
  let transformed = Grid.add_global grid remote ~at_local:0 in
  (* b has priority (client 2 > 1), so it keeps position 0. *)
  Alcotest.(check (option int))
    "remote stays at 0" (Some 0)
    (Op.position transformed);
  Alcotest.(check (pair int int)) "extent" (1, 1) (Grid.extent grid);
  Alcotest.(check bool) "transformations counted" true (!counter > 0)

let test_grid_global_then_local () =
  let grid = Grid.create ~ot_counter:(ref 0) () in
  let remote = Helpers.ins ~client:2 'b' 0 in
  let top = Grid.add_global grid remote ~at_local:0 in
  Alcotest.check Helpers.op "global at top untransformed" remote top;
  let local = Helpers.ins ~client:1 'a' 0 in
  let transformed = Grid.add_local grid local ~at_global:0 in
  (* a has lower priority, so it shifts past b. *)
  Alcotest.(check (option int))
    "local shifted" (Some 1)
    (Op.position transformed)

let test_grid_deep_fill () =
  (* One local op lagging behind three global ops: the fill walks three
     squares. *)
  let grid = Grid.create ~ot_counter:(ref 0) () in
  List.iteri
    (fun i pos ->
      ignore
        (Grid.add_global grid
           (Helpers.ins ~client:2 ~seq:(i + 1) 'g' pos)
           ~at_local:0))
    [ 0; 1; 2 ];
  let local = Helpers.ins ~client:1 'a' 0 in
  let transformed = Grid.add_local grid local ~at_global:0 in
  Alcotest.(check bool)
    "transformed against all three" true
    (Op.position transformed <> Some 0);
  Alcotest.(check (pair int int)) "extent" (1, 3) (Grid.extent grid)

let test_grid_rejects_bad_context () =
  let grid = Grid.create ~ot_counter:(ref 0) () in
  Alcotest.(check bool)
    "future global context rejected" true
    (try
       ignore (Grid.add_local grid (Helpers.ins 'a' 0) ~at_global:1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "future local context rejected" true
    (try
       ignore (Grid.add_global grid (Helpers.ins 'a' 0) ~at_local:1);
       false
     with Invalid_argument _ -> true)

(* --- Protocol-level tests --------------------------------------------- *)

let test_figure1_cscw () =
  let t = Helpers.Cscw_run.scenario Rlist_sim.Figures.figure1 in
  Alcotest.(check string)
    "c1 converges to effect" "effect"
    (Document.to_string (Cscw.client_document t 1));
  Alcotest.(check bool) "all converged" true (Cscw.converged t)

let test_figure7_cscw () =
  (* Theorem 7.1 in action: the CSCW protocol produces the same final
     list as the CSS protocol on the strong-spec counterexample. *)
  let t = Helpers.Cscw_run.scenario Rlist_sim.Figures.figure7 in
  Alcotest.(check string)
    "final ba" "ba"
    (Document.to_string (Cscw.server_document t));
  Alcotest.(check bool) "converged" true (Cscw.converged t)

let gen_seed = QCheck2.Gen.int_range 1 1_000_000

let small_params =
  { Rlist_sim.Schedule.default_params with updates = 20; deliver_bias = 0.5 }

let prop_convergence =
  Helpers.qtest ~count:60 "CSCW satisfies convergence" gen_seed (fun seed ->
      let t, _ = Helpers.Cscw_run.random ~params:small_params seed in
      Cscw.converged t
      && Rlist_spec.Check.is_satisfied
           (Rlist_spec.Convergence.check_all_events (Cscw.trace t)))

let prop_equivalence =
  Helpers.qtest ~count:60
    "Theorem 7.1: CSS and CSCW behave identically under the same schedule"
    gen_seed (fun seed ->
      let css, schedule = Helpers.Css_run.random ~params:small_params seed in
      let cscw = Cscw.create ~nclients:4 () in
      Cscw.run cscw schedule;
      let b1 = Css.behavior css and b2 = Cscw.behavior cscw in
      List.length b1 = List.length b2
      && List.for_all2
           (fun (r1, d1) (r2, d2) ->
             Replica_id.equal r1 r2 && Document.equal d1 d2)
           b1 b2)

let prop_weak_spec =
  Helpers.qtest ~count:40 "CSCW satisfies the weak list spec (via 7.1 + 8.2)"
    gen_seed (fun seed ->
      let t, _ = Helpers.Cscw_run.random ~params:small_params seed in
      Rlist_spec.Check.is_satisfied
        (Rlist_spec.Weak_spec.check (Cscw.trace t)))

let prop_fewer_client_ots =
  (* Section 7.2: the CSCW protocol eliminates redundant OTs at
     clients — under any schedule a CSCW client performs no more
     transformations than the corresponding CSS client. *)
  Helpers.qtest ~count:40 "CSCW clients perform no more OTs than CSS clients"
    gen_seed (fun seed ->
      let css, schedule = Helpers.Css_run.random ~params:small_params seed in
      let cscw = Cscw.create ~nclients:4 () in
      Cscw.run cscw schedule;
      List.for_all
        (fun i -> Cscw.client_ot_count cscw i <= Css.client_ot_count css i)
        [ 1; 2; 3; 4 ])

(* --- The broken foil --------------------------------------------------- *)

let test_naive_figure8_divergence () =
  let t = Helpers.Naive_run.scenario Rlist_sim.Figures.figure8 in
  Alcotest.(check string)
    "c1 sees ayxc" "ayxc"
    (Document.to_string (Naive.client_document t 1));
  Alcotest.(check string)
    "c2 sees axyc" "axyc"
    (Document.to_string (Naive.client_document t 2));
  Alcotest.(check bool) "diverged" false (Naive.converged t);
  let trace = Naive.trace t in
  Helpers.check_violated "convergence" (Rlist_spec.Convergence.check trace);
  Helpers.check_violated "weak" (Rlist_spec.Weak_spec.check trace)

let test_naive_sequential_ok () =
  (* Without concurrency the naive protocol is fine — the breakage is
     specifically about transforming concurrent operations in
     different orders. *)
  let t = Naive.create ~nclients:2 () in
  Naive.run t [ Generate (1, Intent.Insert ('a', 0)) ];
  ignore (Naive.quiesce t);
  Naive.run t [ Generate (2, Intent.Insert ('b', 1)) ];
  ignore (Naive.quiesce t);
  Alcotest.(check string)
    "sequential edits converge" "ab"
    (Document.to_string (Naive.client_document t 1));
  Alcotest.(check bool) "converged" true (Naive.converged t)

let test_naive_divergence_found_by_search () =
  (* Among random highly-concurrent schedules some must break the
     naive protocol: this guards against the foil accidentally
     becoming correct.  Breakage shows up either as divergence or as a
     stale delete caught by Op.apply's element check. *)
  let params =
    { Rlist_sim.Schedule.default_params with updates = 12; deliver_bias = 0.3 }
  in
  let diverged = ref false in
  (try
     for seed = 1 to 300 do
       match Helpers.Naive_run.random ~nclients:3 ~params seed with
       | t, _ ->
         if not (Naive.converged t) then begin
           diverged := true;
           raise Exit
         end
       | exception Invalid_argument _ ->
         diverged := true;
         raise Exit
     done
   with Exit -> ());
  Alcotest.(check bool) "some schedule misbehaves" true !diverged

let () =
  Alcotest.run "cscw"
    [
      ( "two_d_space",
        [
          Alcotest.test_case "empty grid" `Quick test_grid_empty;
          Alcotest.test_case "local then global" `Quick
            test_grid_local_then_global;
          Alcotest.test_case "global then local" `Quick
            test_grid_global_then_local;
          Alcotest.test_case "deep lazy fill" `Quick test_grid_deep_fill;
          Alcotest.test_case "context bounds" `Quick
            test_grid_rejects_bad_context;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "figure 1" `Quick test_figure1_cscw;
          Alcotest.test_case "figure 7" `Quick test_figure7_cscw;
          prop_convergence;
          prop_equivalence;
          prop_weak_spec;
          prop_fewer_client_ots;
        ] );
      ( "naive foil",
        [
          Alcotest.test_case "figure 8 divergence" `Quick
            test_naive_figure8_divergence;
          Alcotest.test_case "sequential schedules fine" `Quick
            test_naive_sequential_ok;
          Alcotest.test_case "divergence found by search" `Quick
            test_naive_divergence_found_by_search;
        ] );
    ]
