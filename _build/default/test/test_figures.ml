(* Exact reproductions of the paper's figures, asserted value by value.
   Each test pins the concrete lists, state counts, and verdicts the
   paper reports; EXPERIMENTS.md cross-references these. *)

open Rlist_model
module Css = Helpers.Css_run.E
module Naive = Helpers.Naive_run.E
module Space = Jupiter_css.State_space

let doc_str engine_doc = Document.to_string engine_doc

(* Figure 1: o1 = Ins(f,1) || o2 = Del(e,5) on "efecte".  Without OT
   the replicas would end with "effece" / "effect"; with OT both reach
   "effect". *)
let test_figure1_without_ot () =
  let doc = Document.of_string "efecte" in
  let o1 = Helpers.ins ~client:1 'f' 1 in
  let o2 = Helpers.del ~client:2 (Document.nth doc 5) 5 in
  (* Naively applying the remote operation untransformed: *)
  let r1 = Rlist_ot.Op.apply o1 doc in
  (* applying Del(e,5) on "effecte" deletes the wrong element — this is
     precisely the divergence of Figure 1a:  "effece" at R1 *)
  let deleted, r1_bad = Document.delete (Rlist_ot.Op.apply o1 doc) ~pos:5 in
  Alcotest.(check char) "wrong element deleted" 't' deleted.Element.value;
  Alcotest.(check string) "R1 diverges to effece" "effece"
    (Document.to_string r1_bad);
  let r2 = Rlist_ot.Op.apply o2 doc in
  Alcotest.(check string) "R2 before o1" "efect" (Document.to_string r2);
  Alcotest.(check string) "R1 after o1" "effecte" (Document.to_string r1)

let test_figure1_with_ot () =
  let t = Helpers.Css_run.scenario Rlist_sim.Figures.figure1 in
  Alcotest.(check string) "c1" "effect" (doc_str (Css.client_document t 1));
  Alcotest.(check string) "c2" "effect" (doc_str (Css.client_document t 2));
  Alcotest.(check string) "server" "effect" (doc_str (Css.server_document t));
  (* Intermediate behaviours match Figure 1b: c1 goes efecte -> effecte
     -> effect; c2 goes efecte -> efect -> effect. *)
  let c1_states, c2_states =
    List.fold_left
      (fun (c1, c2) (replica, doc) ->
        match replica with
        | Replica_id.Client 1 -> Document.to_string doc :: c1, c2
        | Replica_id.Client 2 -> c1, Document.to_string doc :: c2
        | _ -> c1, c2)
      ([], []) (Css.behavior t)
  in
  let c1_states = List.rev c1_states and c2_states = List.rev c2_states in
  Alcotest.(check (list string))
    "c1 behaviour"
    [ "effecte"; "effecte"; "effect"; "effect" ]
    c1_states;
  Alcotest.(check (list string))
    "c2 behaviour"
    [ "efect"; "effect"; "effect"; "effect" ]
    c2_states

(* Figures 2 and 4: 3 pairwise-concurrent operations; every replica
   ends with the same 7-state space, walked along different paths. *)
let test_figure4_state_space () =
  let s = Rlist_sim.Figures.figure2 in
  let t = Helpers.Css_run.scenario s in
  let space = Jupiter_css.Protocol.server_space (Css.server t) in
  let state ids =
    Op_id.Set.of_list (List.map (fun c -> Op_id.make ~client:c ~seq:1) ids)
  in
  List.iter
    (fun ids ->
      Alcotest.(check bool)
        (Printf.sprintf "state {%s} present"
           (String.concat "," (List.map string_of_int ids)))
        true
        (Space.mem_state space (state ids)))
    [ []; [ 1 ]; [ 2 ]; [ 3 ]; [ 1; 2 ]; [ 1; 3 ]; [ 1; 2; 3 ] ];
  Alcotest.(check int) "exactly 7 states" 7 (Space.num_states space);
  Alcotest.(check bool)
    "{2,3} never materializes" false
    (Space.mem_state space (state [ 2; 3 ]));
  (* The four replicas walk four different paths but build the same
     space (Example 6.3). *)
  let paths =
    Jupiter_css.Protocol.server_path (Css.server t)
    :: List.init 3 (fun i ->
           Jupiter_css.Protocol.client_path (Css.client t (i + 1)))
  in
  let distinct =
    List.sort_uniq compare
      (List.map
         (fun p -> List.map Op_id.Set.canonical p)
         paths)
  in
  Alcotest.(check bool) "at least 3 distinct paths" true
    (List.length distinct >= 3)

(* Figure 3: when client 1 receives o3 it transforms along
   L = <o1, o2{1}, o4{1,2}> — the three-step iterated OT of
   Example 6.1. *)
let test_figure3_leftmost_sequence () =
  let s = Rlist_sim.Figures.figure3 in
  let t = Helpers.Css_run.scenario s in
  let space = Jupiter_css.Protocol.server_space (Css.server t) in
  (* Before o3 is integrated the leftmost path from {} passes o1, o2,
     o4; afterwards o3's ladder rungs hang off each of those states.
     We verify the ladder: o3's transition exists at {}, {1}, {1,2},
     and {1,2,4}. *)
  let o id_client id_seq = Op_id.make ~client:id_client ~seq:id_seq in
  let expect_rung state_ids =
    let state = Op_id.Set.of_list state_ids in
    let has_o3 =
      List.exists
        (fun tr -> Op_id.equal tr.Space.orig (o 3 1))
        (Space.transitions space state)
    in
    Alcotest.(check bool)
      (Format.asprintf "o3 rung at %a" Op_id.Set.pp state)
      true has_o3
  in
  expect_rung [];
  expect_rung [ o 1 1 ];
  expect_rung [ o 1 1; o 2 1 ];
  expect_rung [ o 1 1; o 2 1; o 1 2 ]

(* Figure 7: the strong-list-specification counterexample, list by
   list. *)
let test_figure7_lists () =
  let s = Rlist_sim.Figures.figure7 in
  let t = Helpers.Css_run.scenario s in
  let trace = Css.trace t in
  let events = Rlist_spec.Trace.events trace in
  let result_of_event i = (List.nth events i).Rlist_spec.Event.result in
  (* Event order: 0 Ins(x)@c1, 1 Del@c1, 2 Ins(a)@c2, 3 Ins(b)@c3,
     4-6 final reads. *)
  Alcotest.(check string) "w1 = x" "x" (Document.to_string (result_of_event 0));
  Alcotest.(check string) "w12 = empty" ""
    (Document.to_string (result_of_event 1));
  Alcotest.(check string) "w13 = ax" "ax"
    (Document.to_string (result_of_event 2));
  Alcotest.(check string) "w14 = xb" "xb"
    (Document.to_string (result_of_event 3));
  Alcotest.(check string) "final = ba" "ba"
    (Document.to_string (result_of_event 4));
  (* Verdicts: convergence and weak hold; strong is violated by the
     cycle (a,x),(x,b),(b,a). *)
  Helpers.check_satisfied "convergence" (Rlist_spec.Convergence.check trace);
  Helpers.check_satisfied "weak" (Rlist_spec.Weak_spec.check trace);
  Helpers.check_violated "strong" (Rlist_spec.Strong_spec.check trace);
  (* The violation is precisely a cycle among x, a, b. *)
  let g =
    Rlist_spec.List_order.of_documents
      (List.map (fun e -> e.Rlist_spec.Event.result) events)
  in
  match Rlist_spec.List_order.find_cycle g with
  | Some cycle ->
    let values =
      List.sort Char.compare (List.map (fun e -> e.Element.value) cycle)
    in
    Alcotest.(check (list char)) "cycle on a, b, x" [ 'a'; 'b'; 'x' ] values
  | None -> Alcotest.fail "expected the Figure 7 cycle"

let test_figure7_state_documents () =
  (* The documents at the 8 states of the Figure 7b state-space. *)
  let s = Rlist_sim.Figures.figure7 in
  let t = Helpers.Css_run.scenario s in
  let space = Jupiter_css.Protocol.server_space (Css.server t) in
  Alcotest.(check int) "8 states" 8 (Space.num_states space);
  let docs = Jupiter_css.Analysis.documents space ~initial:Document.empty in
  let doc_of ids =
    let target =
      Op_id.Set.of_list
        (List.map (fun (c, q) -> Op_id.make ~client:c ~seq:q) ids)
    in
    match List.find_opt (fun (st, _) -> Op_id.Set.equal st target) docs with
    | Some (_, d) -> Document.to_string d
    | None -> Alcotest.failf "missing state"
  in
  Alcotest.(check string) "{} empty" "" (doc_of []);
  Alcotest.(check string) "{1} = x" "x" (doc_of [ 1, 1 ]);
  Alcotest.(check string) "{1,2} = empty" "" (doc_of [ 1, 1; 1, 2 ]);
  Alcotest.(check string) "{1,3} = ax" "ax" (doc_of [ 1, 1; 2, 1 ]);
  Alcotest.(check string) "{1,4} = xb" "xb" (doc_of [ 1, 1; 3, 1 ]);
  Alcotest.(check string) "{1,2,3} = a" "a" (doc_of [ 1, 1; 1, 2; 2, 1 ]);
  Alcotest.(check string) "{1,2,4} = b" "b" (doc_of [ 1, 1; 1, 2; 3, 1 ]);
  Alcotest.(check string) "{1,2,3,4} = ba" "ba"
    (doc_of [ 1, 1; 1, 2; 2, 1; 3, 1 ])

(* Figure 8: the incorrect protocol's exact diverging lists. *)
let test_figure8_lists () =
  let t = Helpers.Naive_run.scenario Rlist_sim.Figures.figure8 in
  Alcotest.(check string) "c1 = ayxc" "ayxc"
    (doc_str (Naive.client_document t 1));
  Alcotest.(check string) "c2 = axyc" "axyc"
    (doc_str (Naive.client_document t 2));
  Alcotest.(check string) "c3 = ayxc" "ayxc"
    (doc_str (Naive.client_document t 3));
  let trace = Naive.trace t in
  Helpers.check_violated "convergence" (Rlist_spec.Convergence.check trace);
  Helpers.check_violated "weak" (Rlist_spec.Weak_spec.check trace)

(* Figure 8 under the *correct* protocols: same schedule, no
   divergence. *)
let test_figure8_correct_protocols () =
  let s = Rlist_sim.Figures.figure8 in
  let css = Helpers.Css_run.scenario s in
  Alcotest.(check bool) "css converges" true (Css.converged css);
  Helpers.check_satisfied "css weak"
    (Rlist_spec.Weak_spec.check (Css.trace css));
  let cscw = Helpers.Cscw_run.scenario s in
  Alcotest.(check bool) "cscw converges" true (Helpers.Cscw_run.E.converged cscw)

let () =
  Alcotest.run "figures"
    [
      ( "figure 1",
        [
          Alcotest.test_case "without OT: divergence" `Quick
            test_figure1_without_ot;
          Alcotest.test_case "with OT: convergence to effect" `Quick
            test_figure1_with_ot;
        ] );
      ( "figures 2 and 4",
        [
          Alcotest.test_case "state-space shape and paths" `Quick
            test_figure4_state_space;
        ] );
      ( "figure 3",
        [
          Alcotest.test_case "iterated transformation ladder" `Quick
            test_figure3_leftmost_sequence;
        ] );
      ( "figure 7",
        [
          Alcotest.test_case "lists and verdicts" `Quick test_figure7_lists;
          Alcotest.test_case "per-state documents" `Quick
            test_figure7_state_documents;
        ] );
      ( "figure 8",
        [
          Alcotest.test_case "naive protocol diverges" `Quick
            test_figure8_lists;
          Alcotest.test_case "correct protocols converge" `Quick
            test_figure8_correct_protocols;
        ] );
    ]
