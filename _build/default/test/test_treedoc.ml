(* Tests for the TreeDoc baseline: infix path order, allocation rules
   (right child of the predecessor / left child of the successor,
   mini-node disambiguation), tombstones, and the protocol-level
   strong-specification property. *)

open Rlist_model
module Path = Jupiter_treedoc.Tree_path
module Tlist = Jupiter_treedoc.Treedoc_list
module Run = Helpers.Run (Jupiter_treedoc.Protocol)

let step bit site seq = { Path.bit; site; seq }

(* --- paths ------------------------------------------------------------- *)

let test_infix_order () =
  let root = [] in
  let left = [ step 0 1 1 ] in
  let right = [ step 1 1 1 ] in
  let left_right = [ step 0 1 1; step 1 1 2 ] in
  Alcotest.(check bool) "left < root" true (Path.compare left root < 0);
  Alcotest.(check bool) "root < right" true (Path.compare root right < 0);
  Alcotest.(check bool) "left < left/right" true
    (Path.compare left left_right < 0);
  Alcotest.(check bool) "left/right < root" true
    (Path.compare left_right root < 0);
  Alcotest.(check bool) "reflexive" true (Path.equal right right)

let test_mini_node_order () =
  (* Sibling mini-nodes: same bit, ordered by (site, seq); subtrees
     stay with their mini-node. *)
  let a = [ step 1 1 1 ] in
  let b = [ step 1 2 1 ] in
  let a_right = [ step 1 1 1; step 1 1 2 ] in
  Alcotest.(check bool) "site order" true (Path.compare a b < 0);
  Alcotest.(check bool) "a's subtree before b" true
    (Path.compare a_right b < 0)

let test_first_step_below () =
  let parent = [ step 1 1 1 ] in
  Alcotest.(check (option int))
    "left child" (Some 0)
    (Path.first_step_below ~parent [ step 1 1 1; step 0 2 1 ]);
  Alcotest.(check (option int))
    "deep right descendant" (Some 1)
    (Path.first_step_below ~parent [ step 1 1 1; step 1 2 1; step 0 3 1 ]);
  Alcotest.(check (option int))
    "not below" None
    (Path.first_step_below ~parent [ step 0 1 1 ]);
  Alcotest.(check (option int))
    "itself" None
    (Path.first_step_below ~parent parent)

(* --- list --------------------------------------------------------------- *)

let test_list_basics () =
  let list = Tlist.create ~site:1 ~initial:Document.empty in
  let a = Helpers.elt ~client:1 ~seq:1 'a' in
  let b = Helpers.elt ~client:1 ~seq:2 'b' in
  let c = Helpers.elt ~client:1 ~seq:3 'c' in
  Tlist.insert list ~elt:a ~at:(Tlist.allocate list ~pos:0);
  Tlist.insert list ~elt:b ~at:(Tlist.allocate list ~pos:1);
  Tlist.insert list ~elt:c ~at:(Tlist.allocate list ~pos:1);
  Alcotest.(check string) "acb" "acb" (Document.to_string (Tlist.document list));
  Tlist.delete list ~target:c.Element.id;
  Alcotest.(check string) "tombstoned" "ab"
    (Document.to_string (Tlist.document list));
  Alcotest.(check int) "node kept" 3 (Tlist.size list);
  Alcotest.(check int) "one tombstone" 1 (Tlist.tombstones list);
  (* inserting next to a tombstone still works *)
  let d = Helpers.elt ~client:1 ~seq:4 'd' in
  Tlist.insert list ~elt:d ~at:(Tlist.allocate list ~pos:1);
  Alcotest.(check string) "adb" "adb"
    (Document.to_string (Tlist.document list))

let test_list_initial_and_errors () =
  let list = Tlist.create ~site:1 ~initial:(Document.of_string "xy") in
  Alcotest.(check string) "seeded" "xy"
    (Document.to_string (Tlist.document list));
  let a = Helpers.elt ~client:1 ~seq:1 'a' in
  Tlist.insert list ~elt:a ~at:(Tlist.allocate list ~pos:1);
  Alcotest.(check string) "middle insert" "xay"
    (Document.to_string (Tlist.document list));
  Alcotest.(check bool)
    "duplicate element rejected" true
    (try
       Tlist.insert list ~elt:a ~at:(Tlist.allocate list ~pos:0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "unknown delete rejected" true
    (try
       Tlist.delete list ~target:(Op_id.make ~client:9 ~seq:9);
       false
     with Invalid_argument _ -> true)

let test_concurrent_same_position () =
  (* Two sites allocate at the same visible position from the same
     state; integrating both orders deterministically at both sites. *)
  let site1 = Tlist.create ~site:1 ~initial:Document.empty in
  let site2 = Tlist.create ~site:2 ~initial:Document.empty in
  let a = Helpers.elt ~client:1 ~seq:1 'a' in
  let b = Helpers.elt ~client:2 ~seq:1 'b' in
  let at_a = Tlist.allocate site1 ~pos:0 in
  let at_b = Tlist.allocate site2 ~pos:0 in
  Tlist.insert site1 ~elt:a ~at:at_a;
  Tlist.insert site1 ~elt:b ~at:at_b;
  Tlist.insert site2 ~elt:b ~at:at_b;
  Tlist.insert site2 ~elt:a ~at:at_a;
  Alcotest.check Helpers.doc_string "both orders agree"
    (Tlist.document site1) (Tlist.document site2)

(* --- protocol ------------------------------------------------------------ *)

let test_figure1_treedoc () =
  let t = Run.scenario Rlist_sim.Figures.figure1 in
  Alcotest.(check string)
    "effect" "effect"
    (Document.to_string (Run.E.server_document t));
  Alcotest.(check bool) "converged" true (Run.E.converged t)

let test_figure7_treedoc_strong () =
  let t = Run.scenario Rlist_sim.Figures.figure7 in
  Alcotest.(check bool) "converged" true (Run.E.converged t);
  Helpers.check_satisfied "strong"
    (Rlist_spec.Strong_spec.check (Run.E.trace t))

let gen_seed = QCheck2.Gen.int_range 1 1_000_000

let params =
  { Rlist_sim.Schedule.default_params with updates = 25; deliver_bias = 0.5 }

let prop_convergence =
  Helpers.qtest ~count:60 "TreeDoc satisfies convergence" gen_seed (fun seed ->
      let t, _ = Run.random ~params seed in
      Run.E.converged t
      && Rlist_spec.Check.is_satisfied
           (Rlist_spec.Convergence.check_all_events (Run.E.trace t)))

let prop_strong_spec =
  Helpers.qtest ~count:60 "TreeDoc satisfies the strong list specification"
    gen_seed (fun seed ->
      let t, _ = Run.random ~params seed in
      let trace = Run.E.trace t in
      Result.is_ok (Rlist_spec.Trace.validate trace)
      && Rlist_spec.Check.is_satisfied (Rlist_spec.Strong_spec.check trace))

let () =
  Alcotest.run "treedoc"
    [
      ( "paths",
        [
          Alcotest.test_case "infix order" `Quick test_infix_order;
          Alcotest.test_case "mini-node order" `Quick test_mini_node_order;
          Alcotest.test_case "first step below" `Quick test_first_step_below;
        ] );
      ( "list",
        [
          Alcotest.test_case "insert/delete/tombstones" `Quick
            test_list_basics;
          Alcotest.test_case "initial document and errors" `Quick
            test_list_initial_and_errors;
          Alcotest.test_case "concurrent same position" `Quick
            test_concurrent_same_position;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "figure 1" `Quick test_figure1_treedoc;
          Alcotest.test_case "figure 7 satisfies strong" `Quick
            test_figure7_treedoc_strong;
          prop_convergence;
          prop_strong_spec;
        ] );
    ]
