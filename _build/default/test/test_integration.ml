(* Cross-protocol integration tests: the three correct protocols under
   identical schedules and adversarial scenarios — long-offline
   clients, maximal concurrency bursts, interleaved churn — plus the
   end-to-end specification verdict matrix the paper establishes:

                  convergence   weak   strong
     CSS Jupiter       yes       yes     no
     CSCW Jupiter      yes       yes     no
     RGA               yes       yes     yes
     naive dOPT         no        no     no
*)

open Rlist_model
module Css = Helpers.Css_run.E
module Cscw = Helpers.Cscw_run.E
module Rga = Helpers.Rga_run.E
module Naive = Helpers.Naive_run.E

let burst_schedule ~nclients ~per_client : Rlist_sim.Schedule.t =
  (* Every client types [per_client] characters at home, fully offline,
     then everything synchronizes: maximal concurrency. *)
  let gens =
    List.concat_map
      (fun i ->
        List.init per_client (fun k ->
            Rlist_sim.Schedule.Generate
              (i, Intent.Insert (Char.chr (Char.code 'a' + (i mod 26)), k))))
      (List.init nclients (fun i -> i + 1))
  in
  gens

let test_burst_all_protocols () =
  let nclients = 5 and per_client = 8 in
  let schedule = burst_schedule ~nclients ~per_client in
  let css = Css.create ~nclients () in
  Css.run css schedule;
  ignore (Css.quiesce css);
  Css.run css (Rlist_sim.Schedule.final_reads ~nclients);
  Alcotest.(check bool) "css converged" true (Css.converged css);
  Alcotest.(check int)
    "css kept every element" (nclients * per_client)
    (Document.length (Css.server_document css));
  Helpers.check_satisfied "css weak"
    (Rlist_spec.Weak_spec.check (Css.trace css));
  let t = Cscw.create ~nclients () in
  Cscw.run t schedule;
  ignore (Cscw.quiesce t);
  Alcotest.(check bool) "cscw converged" true (Cscw.converged t);
  Alcotest.check Helpers.doc_string "css and cscw agree"
    (Css.server_document css) (Cscw.server_document t);
  let r = Rga.create ~nclients () in
  Rga.run r schedule;
  ignore (Rga.quiesce r);
  Alcotest.(check bool) "rga converged" true (Rga.converged r);
  Alcotest.(check int)
    "rga kept every element" (nclients * per_client)
    (Document.length (Rga.server_document r))

let test_long_offline_client () =
  (* Client 3 types a long run while 1 and 2 chat and synchronize;
     client 3 then reconnects.  Its pending queue is long, every remote
     operation transforms across it. *)
  let t = Css.create ~nclients:3 () in
  (* c3 goes "offline": generates but nothing is delivered. *)
  List.iter
    (fun k -> Css.apply_event t (Generate (3, Intent.Insert ('z', k))))
    (List.init 10 (fun k -> k));
  (* c1 and c2 exchange a few edits with prompt delivery. *)
  List.iter
    (fun (i, ch) ->
      Css.apply_event t (Generate (i, Intent.Insert (ch, 0)));
      Css.apply_event t (Deliver_to_server i);
      List.iter
        (fun j -> Css.apply_event t (Deliver_to_client j))
        [ 1; 2 ]
      (* note: c3's deliveries are withheld *))
    [ 1, 'p'; 2, 'q'; 1, 'r' ];
  (* Reconnect: everything drains. *)
  ignore (Css.quiesce t);
  Alcotest.(check bool) "converged after reconnect" true (Css.converged t);
  Alcotest.(check int)
    "13 characters survive" 13
    (Document.length (Css.server_document t));
  Helpers.check_satisfied "weak after reconnect"
    (Rlist_spec.Weak_spec.check (Css.trace t))

let test_interleaved_delete_heavy () =
  (* Concurrent deletions of the same region: exercises the Del/Del ->
     Nop degeneration across protocols. *)
  let t = Css.create ~initial:(Document.of_string "abcdef") ~nclients:3 () in
  Css.run t
    [
      Generate (1, Intent.Delete 1);
      Generate (2, Intent.Delete 1);
      Generate (3, Intent.Delete 2);
      Generate (1, Intent.Delete 0);
    ];
  ignore (Css.quiesce t);
  Alcotest.(check bool) "converged" true (Css.converged t);
  Helpers.check_satisfied "weak"
    (Rlist_spec.Weak_spec.check (Css.trace t));
  (* Concurrent deletes at position 1 target the same element; the
     final document keeps at least 2 of the 6 characters. *)
  let len = Document.length (Css.server_document t) in
  Alcotest.(check bool) "between 2 and 4 left" true (len >= 2 && len <= 4)

let verdicts (trace : Rlist_spec.Trace.t) =
  ( Rlist_spec.Check.is_satisfied (Rlist_spec.Convergence.check trace),
    Rlist_spec.Check.is_satisfied (Rlist_spec.Weak_spec.check trace),
    Rlist_spec.Check.is_satisfied (Rlist_spec.Strong_spec.check trace) )

let test_verdict_matrix () =
  (* The figure 7 schedule separates weak from strong; the figure 8
     schedule separates correct from broken. *)
  let f7 = Rlist_sim.Figures.figure7 in
  let f8 = Rlist_sim.Figures.figure8 in
  let css7 = Helpers.Css_run.scenario f7 in
  Alcotest.(check (triple bool bool bool))
    "CSS on figure 7: conv+weak, not strong" (true, true, false)
    (verdicts (Css.trace css7));
  let cscw7 = Helpers.Cscw_run.scenario f7 in
  Alcotest.(check (triple bool bool bool))
    "CSCW on figure 7: conv+weak, not strong" (true, true, false)
    (verdicts (Cscw.trace cscw7));
  let rga7 = Helpers.Rga_run.scenario f7 in
  Alcotest.(check (triple bool bool bool))
    "RGA on figure 7: all three" (true, true, true)
    (verdicts (Rga.trace rga7));
  let naive8 = Helpers.Naive_run.scenario f8 in
  let conv, weak, strong = verdicts (Naive.trace naive8) in
  Alcotest.(check (triple bool bool bool))
    "naive on figure 8: none" (false, false, false)
    (conv, weak, strong)

let test_verdict_matrix_extended () =
  (* The newer protocols on the figure 7 schedule: the Jupiter
     variants match plain CSS; the CRDT baselines and the TTF protocol
     satisfy strong. *)
  let f7 = Rlist_sim.Figures.figure7 in
  let module Pruned = Rlist_sim.Engine.Make (Jupiter_css.Pruned_protocol) in
  let pruned = Pruned.create ~nclients:f7.nclients () in
  Pruned.run pruned f7.schedule;
  Alcotest.(check (triple bool bool bool))
    "pruned CSS on figure 7" (true, true, false)
    (verdicts (Pruned.trace pruned));
  let module Seq = Rlist_sim.Engine.Make (Jupiter_css.Sequencer_protocol) in
  let seq = Seq.create ~nclients:f7.nclients () in
  Seq.run seq f7.schedule;
  Alcotest.(check (triple bool bool bool))
    "sequencer CSS on figure 7" (true, true, false)
    (verdicts (Seq.trace seq));
  let module Logoot = Rlist_sim.Engine.Make (Jupiter_logoot.Protocol) in
  let logoot = Logoot.create ~nclients:f7.nclients () in
  Logoot.run logoot f7.schedule;
  Alcotest.(check (triple bool bool bool))
    "Logoot on figure 7" (true, true, true)
    (verdicts (Logoot.trace logoot));
  let module Treedoc = Rlist_sim.Engine.Make (Jupiter_treedoc.Protocol) in
  let treedoc = Treedoc.create ~nclients:f7.nclients () in
  Treedoc.run treedoc f7.schedule;
  Alcotest.(check (triple bool bool bool))
    "TreeDoc on figure 7" (true, true, true)
    (verdicts (Treedoc.trace treedoc))

let prop_css_cscw_rga_same_schedule =
  (* The two Jupiter protocols agree event by event under a replayed
     schedule.  RGA is *not* behaviour-equivalent to Jupiter — it may
     order concurrent inserts differently, so a concrete schedule
     recorded from CSS can go out of bounds on RGA — hence RGA runs
     its own driver on the same seed and is judged on its own trace. *)
  Helpers.qtest ~count:40 "one schedule, three protocols"
    (QCheck2.Gen.int_range 1 1_000_000) (fun seed ->
      let params =
        {
          Rlist_sim.Schedule.default_params with
          updates = 25;
          deliver_bias = 0.5;
        }
      in
      let css, schedule = Helpers.Css_run.random ~params seed in
      let cscw = Cscw.create ~nclients:4 () in
      Cscw.run cscw schedule;
      let rga, _ = Helpers.Rga_run.random ~params seed in
      Css.converged css && Cscw.converged cscw && Rga.converged rga
      && Document.equal (Css.server_document css) (Cscw.server_document cscw)
      && Rlist_spec.Check.is_satisfied
           (Rlist_spec.Weak_spec.check (Rga.trace rga)))

let prop_metadata_accounting =
  (* The compactness numbers used by the benchmarks must be coherent:
     at quiescence all CSS replicas have the same space, so each
     replica's metadata equals the server's; CSCW's per-replica grids
     differ. *)
  Helpers.qtest ~count:20 "CSS metadata identical across replicas"
    (QCheck2.Gen.int_range 1 1_000_000) (fun seed ->
      let css, _ =
        Helpers.Css_run.random
          ~params:{ Rlist_sim.Schedule.default_params with updates = 20 }
          seed
      in
      let server_size = Css.server_metadata_size css in
      List.for_all
        (fun i -> Css.client_metadata_size css i = server_size)
        [ 1; 2; 3; 4 ])

let test_duplicate_delivery_impossible () =
  (* Replaying a delivery event after quiescence has nothing to
     deliver: at-most-once semantics are structural. *)
  let t = Css.create ~nclients:2 () in
  Css.run t [ Generate (1, Intent.Insert ('a', 0)) ];
  ignore (Css.quiesce t);
  Alcotest.(check bool)
    "no duplicate delivery possible" true
    (try
       Css.apply_event t (Deliver_to_client 2);
       false
     with Invalid_argument _ -> true)

let test_read_only_client () =
  (* A client that never writes still sees a consistent document. *)
  let t = Css.create ~nclients:3 () in
  Css.run t
    [
      Generate (1, Intent.Insert ('a', 0));
      Generate (2, Intent.Insert ('b', 0));
      Generate (3, Intent.Read);
    ];
  ignore (Css.quiesce t);
  Css.run t [ Generate (3, Intent.Read) ];
  let trace = Css.trace t in
  let reads = Rlist_spec.Trace.reads trace in
  Alcotest.(check int) "two reads" 2 (List.length reads);
  let final_read = List.nth reads 1 in
  Alcotest.(check int)
    "final read sees both elements" 2
    (Document.length final_read.Rlist_spec.Event.result)

let () =
  Alcotest.run "integration"
    [
      ( "scenarios",
        [
          Alcotest.test_case "offline burst, all protocols" `Quick
            test_burst_all_protocols;
          Alcotest.test_case "long-offline client" `Quick
            test_long_offline_client;
          Alcotest.test_case "delete-heavy interleaving" `Quick
            test_interleaved_delete_heavy;
          Alcotest.test_case "read-only client" `Quick test_read_only_client;
          Alcotest.test_case "duplicate delivery impossible" `Quick
            test_duplicate_delivery_impossible;
        ] );
      ( "verdict matrix",
        [
          Alcotest.test_case "paper's table of verdicts" `Quick
            test_verdict_matrix;
          Alcotest.test_case "extended protocol matrix" `Quick
            test_verdict_matrix_extended;
        ] );
      ( "cross-protocol properties",
        [ prop_css_cscw_rga_same_schedule; prop_metadata_accounting ] );
    ]
