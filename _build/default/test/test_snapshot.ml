(* Tests for CSS client snapshot/restore: a restored client is
   observationally identical — same document, visible set, and
   state-space — and continues processing messages exactly like the
   original (crash recovery). *)

open Rlist_model
module E = Helpers.Css_run.E
module Proto = Jupiter_css.Protocol
module Space = Jupiter_css.State_space
module Snapshot = Jupiter_css.Snapshot

(* Drive a session to an interesting mid-point and return a client
   with pending ops, integrated remote ops, and history. *)
let mid_session_client ?(client = 2) seed =
  let t = E.create ~nclients:3 () in
  let rng = Random.State.make [| seed; 0x54AF |] in
  (* Hand-drive to a genuinely mid-flight point: everyone types,
     messages flow partially, and the observed client still has
     pending (unacknowledged) operations and un-received remote
     operations. *)
  let char () = Char.chr (Char.code 'a' + Random.State.int rng 26) in
  List.iter
    (fun i ->
      let len = Document.length (E.client_document t i) in
      E.apply_event t (Generate (i, Intent.Insert (char (), Random.State.int rng (len + 1)))))
    [ 1; 2; 3; 1; 2; 3; 2 ];
  (* deliver all client->server messages but only some broadcasts *)
  List.iter
    (fun i ->
      E.apply_event t (Deliver_to_server i);
      E.apply_event t (Deliver_to_server i))
    [ 1; 2; 3 ];
  E.apply_event t (Deliver_to_server 2);
  List.iter (fun _ -> E.apply_event t (Deliver_to_client 2)) [ (); (); () ];
  List.iter (fun _ -> E.apply_event t (Deliver_to_client 1)) [ (); () ];
  (* client 2 now generates on top of partially-received state *)
  E.apply_event t (Generate (2, Intent.Insert (char (), 0)));
  E.client t client

let roundtrip client = Snapshot.client_of_string (Snapshot.client_to_string client)

let test_roundtrip_identity () =
  let original = mid_session_client 1 in
  let restored = roundtrip original in
  Alcotest.check Helpers.document "same document"
    (Proto.client_document original)
    (Proto.client_document restored);
  Alcotest.check Helpers.op_id_set "same visible set"
    (Proto.client_visible original)
    (Proto.client_visible restored);
  Alcotest.(check bool)
    "same state-space" true
    (Space.equal (Proto.client_space original) (Proto.client_space restored))

let test_restored_client_continues () =
  (* Both the original and the restored client receive the same remote
     operation; their reactions must be identical. *)
  let original = mid_session_client 2 in
  let restored = roundtrip original in
  let remote_op =
    let id = Op_id.make ~client:9 ~seq:1 in
    Rlist_ot.Op.make_ins ~id (Element.make ~value:'Z' ~id) 0
  in
  let message =
    {
      Proto.op = remote_op;
      ctx = Op_id.Set.empty;
      serial = 1000;
      origin = 9;
    }
  in
  (* note: serial 1000 is larger than anything in the session, and the
     empty context always exists... in a pruned space it might not, but
     plain CSS clients never prune. *)
  Proto.client_receive original message;
  Proto.client_receive restored message;
  Alcotest.check Helpers.document "same document after the same message"
    (Proto.client_document original)
    (Proto.client_document restored);
  Alcotest.(check bool)
    "same space after the same message" true
    (Space.equal (Proto.client_space original) (Proto.client_space restored))

let test_restored_client_generates () =
  let original = mid_session_client 3 in
  let restored = roundtrip original in
  let gen client =
    let outcome, msg = Proto.client_generate client (Intent.Insert ('k', 0)) in
    ignore outcome;
    msg
  in
  let m1 = gen original and m2 = gen restored in
  (match m1, m2 with
  | Some a, Some b ->
    Alcotest.(check bool)
      "same generated operation" true
      (Rlist_ot.Op.equal a.Proto.op b.Proto.op);
    Alcotest.check Helpers.op_id_set "same context" a.Proto.ctx b.Proto.ctx
  | _ -> Alcotest.fail "expected messages from both");
  Alcotest.check Helpers.document "same document"
    (Proto.client_document original)
    (Proto.client_document restored)

let test_snapshot_with_initial_document () =
  let t = E.create ~initial:(Document.of_string "seed") ~nclients:2 () in
  E.run t [ Generate (1, Intent.Insert ('x', 2)); Generate (1, Intent.Delete 0) ];
  let original = E.client t 1 in
  let restored = roundtrip original in
  Alcotest.check Helpers.document "initial elements survive"
    (Proto.client_document original)
    (Proto.client_document restored)

let test_parse_errors () =
  let reject what text =
    Alcotest.(check bool)
      what true
      (try
         ignore (Snapshot.client_of_string text);
         false
       with Invalid_argument _ -> true)
  in
  reject "missing header" "client 1 1\n";
  reject "bad version" "css-client 99\n";
  reject "garbage line" "css-client 1\nfrobnicate\n";
  reject "missing root/final" "css-client 1\nclient 1 1\n";
  reject "transition without node"
    "css-client 1\nclient 1 1\nroot \nfinal \ntr 1 1 nop\n"

let test_file_roundtrip () =
  let original = mid_session_client 4 in
  let path = Filename.temp_file "css" ".snapshot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Snapshot.save_client ~path original;
      let restored = Snapshot.load_client ~path in
      Alcotest.(check bool)
        "file round trip" true
        (Space.equal
           (Proto.client_space original)
           (Proto.client_space restored)))

let prop_roundtrip_many_seeds =
  Helpers.qtest ~count:40 "snapshot round-trips on random mid-sessions"
    (QCheck2.Gen.int_range 1 1_000_000) (fun seed ->
      let original = mid_session_client seed in
      let restored = roundtrip original in
      Document.equal
        (Proto.client_document original)
        (Proto.client_document restored)
      && Space.equal (Proto.client_space original) (Proto.client_space restored)
      && Op_id.Set.equal
           (Proto.client_visible original)
           (Proto.client_visible restored))

let () =
  Alcotest.run "snapshot"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "identity" `Quick test_roundtrip_identity;
          Alcotest.test_case "continues receiving" `Quick
            test_restored_client_continues;
          Alcotest.test_case "continues generating" `Quick
            test_restored_client_generates;
          Alcotest.test_case "initial documents" `Quick
            test_snapshot_with_initial_document;
          Alcotest.test_case "file round trip" `Quick test_file_roundtrip;
          prop_roundtrip_many_seeds;
        ] );
      ( "errors",
        [ Alcotest.test_case "parse errors" `Quick test_parse_errors ] );
    ]
