(* Tests for the state-space algebra (union / of_raw) and the
   executable counterparts of Examples 8.2 and 8.3: union of replica
   spaces *with* Proposition 6.6 is idempotent, while the union of the
   Figure 8 (incorrect protocol) behaviours breaks confluence, LCA
   uniqueness, and path disjointness. *)

open Rlist_model
open Rlist_ot
module Space = Jupiter_css.State_space
module Css = Helpers.Css_run.E

let serial_key serials id =
  match Hashtbl.find_opt serials id with
  | Some s -> Jupiter_css.Order_key.Serialized s
  | None -> Jupiter_css.Order_key.Pending id.Op_id.seq

(* --- of_raw ------------------------------------------------------------ *)

let test_of_raw_validation () =
  let serials = Hashtbl.create 4 in
  let key = serial_key serials in
  let o1 = Helpers.ins ~client:1 'a' 0 in
  Hashtbl.replace serials o1.Op.id 1;
  let s1 = Op_id.Set.singleton o1.Op.id in
  Alcotest.(check bool)
    "missing target rejected" true
    (try
       ignore
         (Space.of_raw ~key_of:key ~root:Space.initial_state ~final:s1
            [
              ( Space.initial_state,
                [ { Space.orig = o1.Op.id; form = o1; target = s1 } ] );
            ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "missing root rejected" true
    (try
       ignore (Space.of_raw ~key_of:key ~root:Space.initial_state ~final:s1
                 [ s1, [] ]);
       false
     with Invalid_argument _ -> true);
  (* a valid raw space behaves like a built one *)
  let space =
    Space.of_raw ~key_of:key ~root:Space.initial_state ~final:s1
      [
        ( Space.initial_state,
          [ { Space.orig = o1.Op.id; form = o1; target = s1 } ] );
        s1, [];
      ]
  in
  Alcotest.(check int) "two states" 2 (Space.num_states space);
  Alcotest.(check int)
    "leftmost path length" 1
    (List.length (Space.leftmost_path space Space.initial_state))

(* --- union under Proposition 6.6 --------------------------------------- *)

let test_union_idempotent_for_css () =
  (* With Prop 6.6 the replica spaces are equal, so unions add
     nothing. *)
  let t = Helpers.Css_run.scenario Rlist_sim.Figures.figure2 in
  let server = Jupiter_css.Protocol.server_space (Css.server t) in
  let c2 = Jupiter_css.Protocol.client_space (Css.client t 2) in
  let u = Space.union server c2 in
  Alcotest.(check bool) "union equals server space" true
    (Space.equal u server);
  Alcotest.(check bool) "union equals client space" true (Space.equal u c2)

(* --- Example 8.2: union without Prop 6.6 -------------------------------- *)

(* The Figure 8 execution, as two per-client chains of (incorrectly)
   transformed operations over "abc":
     C1: {} -o1-> {1} -o3{1}-> {1,3} -o2{1,3}-> {1,2,3}
     C2: {} -o2-> {2} -o3{2}-> {2,3} -o1{2,3}-> {1,2,3}         *)
let figure8_union () =
  let doc = Document.of_string "abc" in
  let o1 = Helpers.ins ~client:1 'x' 2 in
  let o2 = Helpers.del ~client:2 (Document.nth doc 1) 1 in
  let o3 = Helpers.ins ~client:3 'y' 1 in
  let serials = Hashtbl.create 4 in
  Hashtbl.replace serials o1.Op.id 3;
  Hashtbl.replace serials o2.Op.id 2;
  Hashtbl.replace serials o3.Op.id 1;
  let key = serial_key serials in
  let id op = op.Op.id in
  let set ops = Op_id.Set.of_list (List.map id ops) in
  let tr orig form target = { Space.orig = orig.Op.id; form; target } in
  let np = Transform.xform_no_priority in
  let chain1 =
    (* C1's execution: o1; o3 transformed against o1; o2 transformed
       against o1 then o3{1}. *)
    let o3_1 = np o3 o1 in
    let o2_13 = np (np o2 o1) o3_1 in
    Space.of_raw ~key_of:key ~root:Space.initial_state ~final:(set [ o1; o2; o3 ])
      [
        Space.initial_state, [ tr o1 o1 (set [ o1 ]) ];
        set [ o1 ], [ tr o3 o3_1 (set [ o1; o3 ]) ];
        set [ o1; o3 ], [ tr o2 o2_13 (set [ o1; o2; o3 ]) ];
        set [ o1; o2; o3 ], [];
      ]
  in
  let chain2 =
    let o3_2 = np o3 o2 in
    let o1_23 = np (np o1 o2) o3_2 in
    Space.of_raw ~key_of:key ~root:Space.initial_state ~final:(set [ o1; o2; o3 ])
      [
        Space.initial_state, [ tr o2 o2 (set [ o2 ]) ];
        set [ o2 ], [ tr o3 o3_2 (set [ o2; o3 ]) ];
        set [ o2; o3 ], [ tr o1 o1_23 (set [ o1; o2; o3 ]) ];
        set [ o1; o2; o3 ], [];
      ]
  in
  Space.union chain1 chain2

let test_example_8_2_confluence_fails () =
  (* The two chains reach the "same" state {1,2,3} with different
     documents ("ayxc" vs "axyc") — replaying the union detects it. *)
  let u = figure8_union () in
  Alcotest.(check bool)
    "document replay detects non-confluence" true
    (try
       ignore
         (Jupiter_css.Analysis.documents u
            ~initial:(Document.of_string "abc"));
       false
     with Invalid_argument _ -> true)

let test_example_8_3_disjoint_paths_fail () =
  (* Lemma 8.5 fails on the union: the paths from the initial state to
     {1,3} and to {2,3} both involve o3. *)
  let u = figure8_union () in
  Alcotest.(check bool)
    "disjoint-paths lemma fails" true
    (Result.is_error (Jupiter_css.Analysis.check_disjoint_paths u))

let test_union_conflicting_transitions_rejected () =
  (* Merging spaces that disagree on a transition's form must fail
     loudly rather than silently pick one. *)
  let serials = Hashtbl.create 4 in
  let key = serial_key serials in
  let o1 = Helpers.ins ~client:1 'a' 0 in
  let o1' = Helpers.ins ~client:1 'a' 1 in
  (* same identity, different form *)
  Hashtbl.replace serials o1.Op.id 1;
  let s1 = Op_id.Set.singleton o1.Op.id in
  let mk form =
    Space.of_raw ~key_of:key ~root:Space.initial_state ~final:s1
      [
        ( Space.initial_state,
          [ { Space.orig = o1.Op.id; form; target = s1 } ] );
        s1, [];
      ]
  in
  Alcotest.(check bool)
    "conflict rejected" true
    (try
       ignore (Space.union (mk o1) (mk o1'));
       false
     with Invalid_argument _ -> true)

let prop_union_commutes_on_css_spaces =
  Helpers.qtest ~count:30 "union of equal spaces is equal both ways"
    (QCheck2.Gen.int_range 1 1_000_000) (fun seed ->
      let params =
        { Rlist_sim.Schedule.default_params with updates = 12 }
      in
      let t, _ = Helpers.Css_run.random ~nclients:3 ~params seed in
      let s = Jupiter_css.Protocol.server_space (Css.server t) in
      let c = Jupiter_css.Protocol.client_space (Css.client t 1) in
      Space.equal (Space.union s c) (Space.union c s))

let () =
  Alcotest.run "algebra"
    [
      ( "of_raw",
        [ Alcotest.test_case "validation" `Quick test_of_raw_validation ] );
      ( "union",
        [
          Alcotest.test_case "idempotent under Prop 6.6" `Quick
            test_union_idempotent_for_css;
          Alcotest.test_case "conflicts rejected" `Quick
            test_union_conflicting_transitions_rejected;
          prop_union_commutes_on_css_spaces;
        ] );
      ( "examples 8.2 / 8.3",
        [
          Alcotest.test_case "confluence fails on the figure-8 union" `Quick
            test_example_8_2_confluence_fails;
          Alcotest.test_case "disjoint paths fail on the figure-8 union"
            `Quick test_example_8_3_disjoint_paths_fail;
        ] );
    ]
