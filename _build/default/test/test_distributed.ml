(* Tests for the fully distributed CSS protocol (peer-to-peer, Lamport
   total order, stability-based delivery): convergence, the weak list
   specification, compactness of the shared state-space, and the
   stability mechanics themselves. *)

open Rlist_model
module E = Rlist_sim.P2p_engine.Make (Jupiter_css.Distributed_protocol)
module Space = Jupiter_css.State_space

let run_random ?(npeers = 3) ?(params = Rlist_sim.Schedule.default_params) seed
    =
  let t = E.create ~npeers () in
  let rng = Random.State.make [| seed; 0xD157 |] in
  let schedule = E.run_random t ~rng ~params in
  t, schedule

let small_params =
  { Rlist_sim.Schedule.default_params with updates = 20; deliver_bias = 0.5 }

let test_two_peer_exchange () =
  let t = E.create ~npeers:2 () in
  E.run t
    [
      Generate (1, Intent.Insert ('h', 0));
      Generate (2, Intent.Insert ('i', 0));
    ];
  Alcotest.(check int) "two broadcasts pending" 2 (E.pending_messages t);
  ignore (E.quiesce t);
  Alcotest.(check bool) "converged" true (E.converged t);
  Alcotest.(check int) "nothing buffered" 0 (E.total_buffered t);
  (* peer 2 has the higher identifier, so its insert wins the front *)
  Alcotest.(check string)
    "deterministic tie-break" "ih"
    (Document.to_string (E.document t 1))

let test_stability_delays_integration () =
  (* With three peers, an operation received from one peer must wait
     for evidence from the third before it can be integrated. *)
  let t = E.create ~npeers:3 () in
  E.apply_event t (Generate (1, Intent.Insert ('x', 0)));
  (* deliver p1's operation to p2 only *)
  E.apply_event t (Deliver (1, 2));
  Alcotest.(check string)
    "p2 has not integrated x yet" ""
    (Document.to_string (E.document t 2));
  Alcotest.(check int)
    "x is buffered at p2" 1
    (Jupiter_css.Distributed_protocol.buffered (E.peer t 2));
  (* deliver p1's operation to p3; p3 reacts with a clock announcement *)
  E.apply_event t (Deliver (1, 3));
  (* deliver p3's clock announcement to p2: now x is stable at p2 *)
  E.apply_event t (Deliver (3, 2));
  Alcotest.(check string)
    "p2 integrated after stability" "x"
    (Document.to_string (E.document t 2));
  ignore (E.quiesce t);
  Alcotest.(check bool) "converged" true (E.converged t)

let test_own_ops_optimistic () =
  let t = E.create ~npeers:3 () in
  E.apply_event t (Generate (1, Intent.Insert ('a', 0)));
  E.apply_event t (Generate (1, Intent.Insert ('b', 1)));
  Alcotest.(check string)
    "own operations applied immediately" "ab"
    (Document.to_string (E.document t 1))

let gen_seed = QCheck2.Gen.int_range 1 1_000_000

let prop_convergence =
  Helpers.qtest ~count:60 "distributed CSS converges" gen_seed (fun seed ->
      let t, _ = run_random ~params:small_params seed in
      E.converged t && E.total_buffered t = 0
      && Rlist_spec.Check.is_satisfied
           (Rlist_spec.Convergence.check_all_events (E.trace t)))

let prop_weak_spec =
  Helpers.qtest ~count:40 "distributed CSS satisfies the weak list spec"
    gen_seed (fun seed ->
      let t, _ = run_random ~params:small_params seed in
      let trace = E.trace t in
      Result.is_ok (Rlist_spec.Trace.validate trace)
      && Rlist_spec.Check.is_satisfied (Rlist_spec.Weak_spec.check trace))

let prop_compactness =
  Helpers.qtest ~count:40
    "Prop 6.6 extends: all peer state-spaces equal at quiescence" gen_seed
    (fun seed ->
      let t, _ = run_random ~params:small_params seed in
      let reference = Jupiter_css.Distributed_protocol.space (E.peer t 1) in
      List.for_all
        (fun i ->
          Space.equal reference
            (Jupiter_css.Distributed_protocol.space (E.peer t i)))
        [ 2; 3 ])

let prop_lemmas =
  Helpers.qtest ~count:25 "Section 8 lemmas hold on distributed spaces"
    gen_seed (fun seed ->
      let tiny =
        { Rlist_sim.Schedule.default_params with
          updates = 8;
          deliver_bias = 0.45;
        }
      in
      let t, _ = run_random ~npeers:3 ~params:tiny seed in
      match
        Jupiter_css.Analysis.check_all
          (Jupiter_css.Distributed_protocol.space (E.peer t 1))
          ~nclients:3 ~initial:Document.empty
      with
      | Ok () -> true
      | Error e -> QCheck2.Test.fail_report e)

let prop_more_peers =
  Helpers.qtest ~count:20 "five peers converge too" gen_seed (fun seed ->
      let t, _ = run_random ~npeers:5 ~params:small_params seed in
      E.converged t)

let test_engine_guards () =
  let t = E.create ~npeers:2 () in
  Alcotest.(check bool)
    "empty channel rejected" true
    (try
       E.apply_event t (Deliver (1, 2));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "unknown peer rejected" true
    (try
       E.apply_event t (Generate (7, Intent.Read));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "need two peers" true
    (try
       ignore (E.create ~npeers:1 ());
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "distributed"
    [
      ( "mechanics",
        [
          Alcotest.test_case "two-peer exchange" `Quick test_two_peer_exchange;
          Alcotest.test_case "stability delays integration" `Quick
            test_stability_delays_integration;
          Alcotest.test_case "own operations optimistic" `Quick
            test_own_ops_optimistic;
          Alcotest.test_case "engine guards" `Quick test_engine_guards;
        ] );
      ( "properties",
        [
          prop_convergence;
          prop_weak_spec;
          prop_compactness;
          prop_lemmas;
          prop_more_peers;
        ] );
    ]
