(* Tests for the TTF layer: the model document, the tombstone
   transformation functions (CP1 *and* CP2 — the property Jupiter's
   view functions lack), and the adOPTed-style causal-order protocol
   built on them. *)

open Rlist_model
open Rlist_ot
module Model = Jupiter_ttf.Ttf_model
module T = Jupiter_ttf.Ttf_transform
module E = Rlist_sim.P2p_engine.Make (Jupiter_ttf.Adopted_protocol)

(* --- model ------------------------------------------------------------- *)

let test_model_basics () =
  let m = Model.create ~initial:(Document.of_string "abc") in
  Alcotest.(check string) "view" "abc" (Document.to_string (Model.view m));
  Alcotest.(check int) "model length" 3 (Model.model_length m);
  let deleted = Model.delete m ~pos:1 in
  Alcotest.(check char) "deleted b" 'b' deleted.Element.value;
  Alcotest.(check string) "view hides tombstones" "ac"
    (Document.to_string (Model.view m));
  Alcotest.(check int) "model keeps tombstones" 3 (Model.model_length m);
  Alcotest.(check int) "one tombstone" 1 (Model.tombstones m);
  (* model positions of view positions skip tombstones *)
  Alcotest.(check int) "view 1 -> model 2" 2 (Model.model_position_of_view m 1);
  Alcotest.(check int) "view end -> model end" 3
    (Model.model_position_of_view m 2);
  (* insertion at a model position between tombstones *)
  Model.insert m ~elt:(Helpers.elt 'x') ~pos:1;
  Alcotest.(check string) "insert before tombstone" "axc"
    (Document.to_string (Model.view m))

let test_model_errors () =
  let m = Model.create ~initial:(Document.of_string "a") in
  Alcotest.(check bool)
    "insert out of bounds" true
    (try
       Model.insert m ~elt:(Helpers.elt 'x') ~pos:5;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "delete out of bounds" true
    (try
       ignore (Model.delete m ~pos:3);
       false
     with Invalid_argument _ -> true);
  let e = Model.element_at m 0 in
  Alcotest.(check bool)
    "duplicate insert" true
    (try
       Model.insert m ~elt:e ~pos:0;
       false
     with Invalid_argument _ -> true)

(* --- transformation ---------------------------------------------------- *)

let test_ttf_cases () =
  let ins ?(client = 1) c p = Helpers.ins ~client c p in
  let del_of doc ?(client = 2) p = Helpers.del ~client (Document.nth doc p) p in
  let doc = Document.of_string "abcde" in
  (* insertions never move under deletions *)
  Alcotest.check Helpers.op "ins unchanged by del" (ins 'x' 3)
    (T.xform (ins 'x' 3) (del_of doc 1));
  (* deletions shift right past insertions at or before *)
  Alcotest.check Helpers.op "del shifted by ins"
    (Helpers.del ~client:2 (Document.nth doc 2) 3)
    (T.xform (del_of doc 2) (ins ~client:1 'x' 1));
  Alcotest.check Helpers.op "del unchanged by later ins" (del_of doc 2)
    (T.xform (del_of doc 2) (ins ~client:1 'x' 4));
  (* del/del never interact *)
  Alcotest.check Helpers.op "del/del identity" (del_of doc 2)
    (T.xform (del_of doc 2) (del_of ~client:3 doc 2))

(* Operation generators over a fixed model state (model positions). *)
let gen_ttf_op ~client ~model_doc =
  QCheck2.Gen.(
    let len = Document.length model_doc in
    let insert =
      map2
        (fun value pos ->
          let id = Op_id.make ~client ~seq:1 in
          Op.make_ins ~id (Element.make ~value ~id) pos)
        Helpers.gen_char (int_range 0 len)
    in
    if len = 0 then insert
    else
      oneof
        [
          insert;
          map
            (fun pos ->
              Op.make_del
                ~id:(Op_id.make ~client ~seq:1)
                (Document.nth model_doc pos)
                pos)
            (int_range 0 (len - 1));
        ])

let gen_triple =
  QCheck2.Gen.(
    Helpers.gen_document >>= fun doc ->
    gen_ttf_op ~client:1 ~model_doc:doc >>= fun o1 ->
    gen_ttf_op ~client:2 ~model_doc:doc >>= fun o2 ->
    gen_ttf_op ~client:3 ~model_doc:doc >>= fun o3 -> return (doc, o1, o2, o3))

let prop_ttf_cp1 =
  Helpers.qtest ~count:2000 "TTF satisfies CP1" gen_triple
    (fun (doc, o1, o2, _) -> T.check_cp1 doc o1 o2)

let prop_ttf_cp2 =
  (* The headline: unlike the view-position functions (see test_ot),
     the TTF functions satisfy CP2. *)
  Helpers.qtest ~count:2000 "TTF satisfies CP2" gen_triple
    (fun (_, o1, o2, o3) -> T.check_cp2 o1 o2 o3)

let prop_ttf_cp2_exhaustive =
  Alcotest.test_case "TTF CP2 exhaustively on a small model" `Quick (fun () ->
      let doc = Document.of_string "ab" in
      let ops client value =
        List.concat
          [
            List.init 3 (fun p ->
                let id = Op_id.make ~client ~seq:1 in
                Op.make_ins ~id (Element.make ~value ~id) p);
            List.init 2 (fun p ->
                Op.make_del
                  ~id:(Op_id.make ~client ~seq:1)
                  (Document.nth doc p) p);
          ]
      in
      List.iter
        (fun o1 ->
          List.iter
            (fun o2 ->
              List.iter
                (fun o3 ->
                  if not (T.check_cp2 o1 o2 o3) then
                    Alcotest.failf "CP2 fails for %a / %a / %a" Op.pp o1 Op.pp
                      o2 Op.pp o3)
                (ops 3 'z'))
            (ops 2 'y'))
        (ops 1 'x'))

(* --- the adOPTed protocol ---------------------------------------------- *)

let test_adopted_figure8_schedule () =
  (* The exact scenario that broke the naive dOPT foil: three pairwise
     concurrent operations on "abc", delivered in different orders at
     different peers.  With CP2, all peers converge. *)
  let t = E.create ~initial:(Document.of_string "abc") ~npeers:3 () in
  E.run t
    [
      Generate (1, Intent.Insert ('x', 2));
      Generate (2, Intent.Delete 1);
      Generate (3, Intent.Insert ('y', 1));
      (* peer 1 hears 3 then 2; peer 2 hears 3 then 1; peer 3 hears 2
         then 1 *)
      Deliver (3, 1);
      Deliver (2, 1);
      Deliver (3, 2);
      Deliver (1, 2);
      Deliver (2, 3);
      Deliver (1, 3);
    ];
  Alcotest.(check bool) "converged where dOPT diverged" true (E.converged t);
  Alcotest.(check int) "nothing buffered" 0 (E.total_buffered t)

let test_adopted_causal_buffering () =
  (* p3 receives p2's reply before p1's original: it must buffer until
     causally ready. *)
  let t = E.create ~npeers:3 () in
  E.apply_event t (Generate (1, Intent.Insert ('a', 0)));
  E.apply_event t (Deliver (1, 2));
  (* p2 reacts with its own operation that depends on a *)
  E.apply_event t (Generate (2, Intent.Insert ('b', 1)));
  (* p3 hears p2's op first *)
  E.apply_event t (Deliver (2, 3));
  Alcotest.(check string)
    "buffered, not applied" ""
    (Document.to_string (E.document t 3));
  Alcotest.(check int)
    "one buffered" 1
    (Jupiter_ttf.Adopted_protocol.buffered (E.peer t 3));
  (* now the missing dependency arrives *)
  E.apply_event t (Deliver (1, 3));
  Alcotest.(check string)
    "both applied in causal order" "ab"
    (Document.to_string (E.document t 3));
  ignore (E.quiesce t);
  Alcotest.(check bool) "converged" true (E.converged t)

let gen_seed = QCheck2.Gen.int_range 1 1_000_000

let params =
  { Rlist_sim.Schedule.default_params with updates = 25; deliver_bias = 0.5 }

let prop_adopted_convergence =
  Helpers.qtest ~count:80 "adOPTed/TTF converges with causal order only"
    gen_seed (fun seed ->
      let t = E.create ~npeers:3 () in
      let rng = Random.State.make [| seed; 0x77F |] in
      ignore (E.run_random t ~rng ~params);
      E.converged t && E.total_buffered t = 0
      && Rlist_spec.Check.is_satisfied
           (Rlist_spec.Convergence.check_all_events (E.trace t)))

let prop_adopted_strong =
  (* Model positions never move, so like the CRDTs the TTF protocol
     preserves order relative to deleted elements: strong spec. *)
  Helpers.qtest ~count:60 "adOPTed/TTF satisfies the strong list spec"
    gen_seed (fun seed ->
      let t = E.create ~npeers:3 () in
      let rng = Random.State.make [| seed; 0x77F |] in
      ignore (E.run_random t ~rng ~params);
      let trace = E.trace t in
      Result.is_ok (Rlist_spec.Trace.validate trace)
      && Rlist_spec.Check.is_satisfied (Rlist_spec.Strong_spec.check trace))

let prop_adopted_more_peers =
  Helpers.qtest ~count:20 "five peers" gen_seed (fun seed ->
      let t = E.create ~npeers:5 () in
      let rng = Random.State.make [| seed; 0x5F |] in
      ignore (E.run_random t ~rng ~params);
      E.converged t)

let () =
  Alcotest.run "ttf"
    [
      ( "model",
        [
          Alcotest.test_case "basics" `Quick test_model_basics;
          Alcotest.test_case "errors" `Quick test_model_errors;
        ] );
      ( "transform",
        [
          Alcotest.test_case "case analysis" `Quick test_ttf_cases;
          prop_ttf_cp1;
          prop_ttf_cp2;
          prop_ttf_cp2_exhaustive;
        ] );
      ( "adopted protocol",
        [
          Alcotest.test_case "the figure-8 schedule converges" `Quick
            test_adopted_figure8_schedule;
          Alcotest.test_case "causal buffering" `Quick
            test_adopted_causal_buffering;
          prop_adopted_convergence;
          prop_adopted_strong;
          prop_adopted_more_peers;
        ] );
    ]
