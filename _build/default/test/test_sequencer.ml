(* Tests for the sequencer-decoupled CSS protocol: the center never
   transforms and holds no state, yet the clients behave exactly like
   CSS clients under any schedule — the decoupling the CSS protocol's
   "redirect originals" design makes possible. *)

open Rlist_model
module Css = Helpers.Css_run.E
module Seq = Rlist_sim.Engine.Make (Jupiter_css.Sequencer_protocol)

let gen_seed = QCheck2.Gen.int_range 1 1_000_000

let params =
  { Rlist_sim.Schedule.default_params with updates = 25; deliver_bias = 0.5 }

let test_center_is_stateless () =
  let t = Seq.create ~nclients:3 () in
  Seq.run t
    [
      Generate (1, Intent.Insert ('a', 0));
      Generate (2, Intent.Insert ('b', 0));
      Generate (3, Intent.Insert ('c', 0));
    ];
  ignore (Seq.quiesce t);
  Alcotest.(check bool) "clients converged" true (Seq.converged t);
  Alcotest.(check int) "center performed no OT" 0 (Seq.server_ot_count t);
  Alcotest.(check int) "center holds no state" 0 (Seq.server_metadata_size t);
  Alcotest.(check int)
    "center's document is empty by construction" 0
    (Document.length (Seq.server_document t))

let test_figure7 () =
  let s = Rlist_sim.Figures.figure7 in
  let t = Seq.create ~initial:s.initial ~nclients:s.nclients () in
  Seq.run t s.schedule;
  Alcotest.(check string)
    "final ba at every client" "ba"
    (Document.to_string (Seq.client_document t 1));
  Alcotest.(check bool) "clients converged" true (Seq.converged t);
  let trace = Seq.trace t in
  Helpers.check_satisfied "weak" (Rlist_spec.Weak_spec.check trace);
  Helpers.check_violated "strong" (Rlist_spec.Strong_spec.check trace)

let prop_clients_identical_to_css =
  Helpers.qtest ~count:60
    "sequencer-CSS clients behave exactly like CSS clients" gen_seed
    (fun seed ->
      let css, schedule = Helpers.Css_run.random ~params seed in
      let seq = Seq.create ~nclients:4 () in
      Seq.run seq schedule;
      List.for_all
        (fun i ->
          Document.equal (Css.client_document css i) (Seq.client_document seq i)
          && Jupiter_css.State_space.equal
               (Jupiter_css.Protocol.client_space (Css.client css i))
               (Jupiter_css.Sequencer_protocol.client_space (Seq.client seq i)))
        [ 1; 2; 3; 4 ])

let prop_convergence_and_weak =
  Helpers.qtest ~count:40 "sequencer CSS converges and satisfies weak"
    gen_seed (fun seed ->
      let t = Seq.create ~nclients:3 () in
      let rng = Random.State.make [| seed; 0xC0FFEE |] in
      ignore (Seq.run_random t ~rng ~params);
      Seq.converged t
      && Rlist_spec.Check.is_satisfied
           (Rlist_spec.Weak_spec.check (Seq.trace t)))

let prop_center_never_works =
  Helpers.qtest ~count:20 "the center does zero transformations, always"
    gen_seed (fun seed ->
      let t = Seq.create ~nclients:4 () in
      let rng = Random.State.make [| seed; 0xDEAD |] in
      ignore (Seq.run_random t ~rng ~params);
      Seq.server_ot_count t = 0 && Seq.server_metadata_size t = 0)

let () =
  Alcotest.run "sequencer"
    [
      ( "decoupled center",
        [
          Alcotest.test_case "stateless center" `Quick
            test_center_is_stateless;
          Alcotest.test_case "figure 7 via sequencer" `Quick test_figure7;
          prop_clients_identical_to_css;
          prop_convergence_and_weak;
          prop_center_never_works;
        ] );
    ]
