(* Tests for the RGA CRDT baseline: the timestamped linked list, the
   client/server protocol wrapper, convergence, and — the property
   that separates it from Jupiter — the strong list specification. *)

open Rlist_model
module Rga = Jupiter_rga.Rga_list
module E = Helpers.Rga_run.E

let test_timestamp_order () =
  Alcotest.(check bool)
    "clock major" true
    (Rga.compare_timestamp (1, 9) (2, 1) < 0);
  Alcotest.(check bool)
    "client minor" true
    (Rga.compare_timestamp (2, 1) (2, 3) < 0);
  Alcotest.(check int) "equal" 0 (Rga.compare_timestamp (2, 3) (2, 3))

let test_create_and_document () =
  let rga = Rga.create ~initial:(Document.of_string "ab") in
  Alcotest.(check string) "initial visible" "ab"
    (Document.to_string (Rga.document rga));
  Alcotest.(check int) "size" 2 (Rga.size rga);
  Alcotest.(check int) "no tombstones" 0 (Rga.tombstones rga)

let test_insert_head_and_anchor () =
  let rga = Rga.create ~initial:Document.empty in
  let a = Helpers.elt ~client:1 ~seq:1 'a' in
  Rga.insert rga ~elt:a ~after:None ~ts:(Rga.next_timestamp rga ~client:1);
  let b = Helpers.elt ~client:1 ~seq:2 'b' in
  Rga.insert rga ~elt:b ~after:(Some a.Element.id)
    ~ts:(Rga.next_timestamp rga ~client:1);
  Alcotest.(check string) "ab" "ab" (Document.to_string (Rga.document rga));
  Alcotest.(check (option Helpers.op_id))
    "anchor of pos 1" (Some a.Element.id)
    (Rga.anchor_of rga ~pos:1);
  Alcotest.(check (option Helpers.op_id)) "head anchor" None
    (Rga.anchor_of rga ~pos:0)

let test_concurrent_same_anchor_ordered_by_ts () =
  (* Two head inserts with concurrent timestamps: the larger timestamp
     ends up first. *)
  let rga = Rga.create ~initial:Document.empty in
  let a = Helpers.elt ~client:1 ~seq:1 'a' in
  let b = Helpers.elt ~client:2 ~seq:1 'b' in
  Rga.insert rga ~elt:a ~after:None ~ts:(1, 1);
  Rga.insert rga ~elt:b ~after:None ~ts:(1, 2);
  Alcotest.(check string) "larger ts first" "ba"
    (Document.to_string (Rga.document rga));
  (* Integration order must not matter. *)
  let rga2 = Rga.create ~initial:Document.empty in
  Rga.insert rga2 ~elt:b ~after:None ~ts:(1, 2);
  Rga.insert rga2 ~elt:a ~after:None ~ts:(1, 1);
  Alcotest.(check string) "commutes" "ba"
    (Document.to_string (Rga.document rga2))

let test_subtree_skipping () =
  (* The Lamport-clock subtlety: a causally-later subtree hanging off a
     skipped sibling must be skipped as a unit.  x(ts 5) after head;
     y(ts 9) after x; k(ts 10) after y; now a concurrent v(ts 8) after
     x must land after y's whole subtree: x y k v, not x y v k. *)
  let rga = Rga.create ~initial:Document.empty in
  let x = Helpers.elt ~client:1 ~seq:1 'x' in
  let y = Helpers.elt ~client:1 ~seq:2 'y' in
  let k = Helpers.elt ~client:1 ~seq:3 'k' in
  let v = Helpers.elt ~client:2 ~seq:1 'v' in
  Rga.insert rga ~elt:x ~after:None ~ts:(5, 1);
  Rga.insert rga ~elt:y ~after:(Some x.Element.id) ~ts:(9, 1);
  Rga.insert rga ~elt:k ~after:(Some y.Element.id) ~ts:(10, 1);
  Rga.insert rga ~elt:v ~after:(Some x.Element.id) ~ts:(8, 2);
  Alcotest.(check string) "subtree skipped as a unit" "xykv"
    (Document.to_string (Rga.document rga))

let test_delete_tombstone () =
  let rga = Rga.create ~initial:(Document.of_string "abc") in
  let b = Document.nth (Rga.document rga) 1 in
  Rga.delete rga ~target:b.Element.id;
  Alcotest.(check string) "b hidden" "ac"
    (Document.to_string (Rga.document rga));
  Alcotest.(check int) "node kept" 3 (Rga.size rga);
  Alcotest.(check int) "one tombstone" 1 (Rga.tombstones rga);
  (* Deletion is idempotent. *)
  Rga.delete rga ~target:b.Element.id;
  Alcotest.(check int) "still one tombstone" 1 (Rga.tombstones rga)

let test_errors () =
  let rga = Rga.create ~initial:Document.empty in
  Alcotest.(check bool)
    "unknown anchor rejected" true
    (try
       Rga.insert rga ~elt:(Helpers.elt 'a')
         ~after:(Some (Op_id.make ~client:9 ~seq:9))
         ~ts:(1, 1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "unknown delete target rejected" true
    (try
       Rga.delete rga ~target:(Op_id.make ~client:9 ~seq:9);
       false
     with Invalid_argument _ -> true);
  let a = Helpers.elt 'a' in
  Rga.insert rga ~elt:a ~after:None ~ts:(1, 1);
  Alcotest.(check bool)
    "duplicate insert rejected" true
    (try
       Rga.insert rga ~elt:a ~after:None ~ts:(2, 1);
       false
     with Invalid_argument _ -> true)

let test_lamport_clock_advances () =
  let rga = Rga.create ~initial:Document.empty in
  Rga.observe_timestamp rga (41, 2);
  let ts, client = Rga.next_timestamp rga ~client:1 in
  Alcotest.(check bool) "past observed clock" true (ts > 41);
  Alcotest.(check int) "carries client" 1 client

(* --- Protocol-level --------------------------------------------------- *)

let test_figure1_rga () =
  (* Non-conflicting concurrent insert + delete: RGA agrees with
     Jupiter on the final list. *)
  let t = Helpers.Rga_run.scenario Rlist_sim.Figures.figure1 in
  Alcotest.(check string)
    "effect" "effect"
    (Document.to_string (E.server_document t));
  Alcotest.(check bool) "converged" true (E.converged t)

let test_figure7_rga_strong () =
  (* The schedule that breaks Jupiter's strong-spec compliance is fine
     for RGA: orderings relative to the deleted x are preserved. *)
  let t = Helpers.Rga_run.scenario Rlist_sim.Figures.figure7 in
  Alcotest.(check bool) "converged" true (E.converged t);
  Helpers.check_satisfied "strong" (Rlist_spec.Strong_spec.check (E.trace t))

let gen_seed = QCheck2.Gen.int_range 1 1_000_000

let params =
  { Rlist_sim.Schedule.default_params with updates = 25; deliver_bias = 0.5 }

let prop_convergence =
  Helpers.qtest ~count:60 "RGA satisfies convergence" gen_seed (fun seed ->
      let t, _ = Helpers.Rga_run.random ~params seed in
      E.converged t
      && Rlist_spec.Check.is_satisfied
           (Rlist_spec.Convergence.check_all_events (E.trace t)))

let prop_strong_spec =
  Helpers.qtest ~count:60 "RGA satisfies the strong list specification"
    gen_seed (fun seed ->
      let t, _ = Helpers.Rga_run.random ~params seed in
      let trace = E.trace t in
      Result.is_ok (Rlist_spec.Trace.validate trace)
      && Rlist_spec.Check.is_satisfied (Rlist_spec.Strong_spec.check trace))

let prop_tombstones_accumulate =
  Helpers.qtest ~count:20 "every deletion leaves a tombstone" gen_seed
    (fun seed ->
      let churn =
        {
          Rlist_sim.Schedule.default_params with
          updates = 30;
          delete_fraction = 0.5;
        }
      in
      let t, schedule = Helpers.Rga_run.random ~params:churn seed in
      let deletes =
        List.length
          (List.filter
             (function
               | Rlist_sim.Schedule.Generate (_, Intent.Delete _) -> true
               | Rlist_sim.Schedule.Generate _
               | Rlist_sim.Schedule.Deliver_to_server _
               | Rlist_sim.Schedule.Deliver_to_client _ ->
                 false)
             schedule)
      in
      (* At quiescence every client has integrated every delete.
         Concurrent deletes of the same element collapse into one
         tombstone, so tombstones <= deletes, and the metadata always
         exceeds the live document by exactly the tombstone count. *)
      let tombstones = Jupiter_rga.Protocol.client_tombstones (E.client t 1) in
      tombstones <= deletes
      && (deletes = 0 || tombstones > 0)
      && E.client_metadata_size t 1
         = Document.length (E.client_document t 1) + tombstones)

let () =
  Alcotest.run "rga"
    [
      ( "rga_list",
        [
          Alcotest.test_case "timestamp order" `Quick test_timestamp_order;
          Alcotest.test_case "create" `Quick test_create_and_document;
          Alcotest.test_case "insert head/anchor" `Quick
            test_insert_head_and_anchor;
          Alcotest.test_case "concurrent order by timestamp" `Quick
            test_concurrent_same_anchor_ordered_by_ts;
          Alcotest.test_case "subtree skipping" `Quick test_subtree_skipping;
          Alcotest.test_case "tombstone delete" `Quick test_delete_tombstone;
          Alcotest.test_case "error cases" `Quick test_errors;
          Alcotest.test_case "lamport clock" `Quick
            test_lamport_clock_advances;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "figure 1" `Quick test_figure1_rga;
          Alcotest.test_case "figure 7 satisfies strong" `Quick
            test_figure7_rga_strong;
          prop_convergence;
          prop_strong_spec;
          prop_tombstones_accumulate;
        ] );
    ]
