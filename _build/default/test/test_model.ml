(* Unit tests for the list-model substrate: identifiers, elements,
   documents, intents. *)

open Rlist_model

let test_replica_id_order () =
  Alcotest.(check bool)
    "server before clients" true
    (Replica_id.compare Replica_id.Server (Replica_id.Client 1) < 0);
  Alcotest.(check bool)
    "clients by number" true
    (Replica_id.compare (Replica_id.Client 1) (Replica_id.Client 2) < 0);
  Alcotest.(check bool)
    "equal" true
    (Replica_id.equal (Replica_id.Client 3) (Replica_id.Client 3))

let test_replica_id_pp () =
  Alcotest.(check string) "server" "server" (Replica_id.to_string Server);
  Alcotest.(check string) "client" "c4" (Replica_id.to_string (Client 4));
  Alcotest.(check bool) "is_client" true (Replica_id.is_client (Client 1));
  Alcotest.(check int) "client_exn" 7 (Replica_id.client_exn (Client 7));
  Alcotest.check_raises "client_exn on server"
    (Invalid_argument "Replica_id.client_exn: server") (fun () ->
      ignore (Replica_id.client_exn Server))

let test_op_id_make () =
  let id = Op_id.make ~client:2 ~seq:5 in
  Alcotest.(check int) "client" 2 id.Op_id.client;
  Alcotest.(check int) "seq" 5 id.Op_id.seq;
  Alcotest.(check bool)
    "make rejects zero seq" true
    (try
       ignore (Op_id.make ~client:1 ~seq:0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "make rejects negative client" true
    (try
       ignore (Op_id.make ~client:(-1) ~seq:1);
       false
     with Invalid_argument _ -> true)

let test_op_id_initial () =
  let id = Op_id.initial ~seq:3 in
  Alcotest.(check bool) "initial" true (Op_id.is_initial id);
  Alcotest.(check bool)
    "regular is not initial" false
    (Op_id.is_initial (Op_id.make ~client:1 ~seq:1));
  Alcotest.(check string) "pp" "init.3" (Op_id.to_string id)

let test_op_id_order () =
  let a = Op_id.make ~client:1 ~seq:2 in
  let b = Op_id.make ~client:2 ~seq:1 in
  let c = Op_id.make ~client:1 ~seq:3 in
  Alcotest.(check bool) "client major" true (Op_id.compare a b < 0);
  Alcotest.(check bool) "seq minor" true (Op_id.compare a c < 0);
  Alcotest.(check bool) "equal" true (Op_id.equal a a)

let test_op_id_set_canonical () =
  let mk c s = Op_id.make ~client:c ~seq:s in
  let s1 =
    Op_id.Set.of_list [ mk 2 1; mk 1 1; mk 1 2 ]
  in
  let s2 =
    List.fold_left
      (fun acc x -> Op_id.Set.add x acc)
      Op_id.Set.empty
      [ mk 1 2; mk 2 1; mk 1 1 ]
  in
  (* Equal sets built in different orders yield structurally equal
     canonical lists — the property the state-space hash tables rely
     on. *)
  Alcotest.(check bool)
    "canonical lists equal" true
    (Op_id.Set.canonical s1 = Op_id.Set.canonical s2);
  Alcotest.(check int) "sorted" 3 (List.length (Op_id.Set.canonical s1));
  Alcotest.(check bool)
    "ascending" true
    (let rec sorted = function
       | a :: (b :: _ as rest) -> Op_id.compare a b < 0 && sorted rest
       | _ -> true
     in
     sorted (Op_id.Set.canonical s1))

let test_op_id_table () =
  let table = Op_id.Table.create 4 in
  Op_id.Table.replace table (Op_id.make ~client:1 ~seq:1) "x";
  Op_id.Table.replace table (Op_id.make ~client:1 ~seq:1) "y";
  Alcotest.(check int) "replace overwrites" 1 (Op_id.Table.length table);
  Alcotest.(check (option string))
    "lookup" (Some "y")
    (Op_id.Table.find_opt table (Op_id.make ~client:1 ~seq:1))

let test_element_identity () =
  let a = Helpers.elt ~client:1 ~seq:1 'x' in
  let b = Helpers.elt ~client:1 ~seq:1 'y' in
  let c = Helpers.elt ~client:2 ~seq:1 'x' in
  Alcotest.(check bool) "identity ignores value" true (Element.equal a b);
  Alcotest.(check bool) "identity uses client" false (Element.equal a c)

let test_element_priority () =
  let low = Helpers.elt ~client:1 'x' in
  let high = Helpers.elt ~client:3 'y' in
  Alcotest.(check bool)
    "larger client wins" true
    (Element.priority high low > 0);
  Alcotest.(check bool) "antisymmetric" true (Element.priority low high < 0);
  Alcotest.(check int) "reflexive" 0 (Element.priority low low)

let test_document_roundtrip () =
  let doc = Document.of_string "hello" in
  Alcotest.(check string) "to_string" "hello" (Document.to_string doc);
  Alcotest.(check int) "length" 5 (Document.length doc);
  Alcotest.(check bool) "not empty" false (Document.is_empty doc);
  Alcotest.(check bool) "empty" true (Document.is_empty Document.empty);
  Alcotest.(check bool)
    "initial ids" true
    (List.for_all
       (fun e -> Op_id.is_initial e.Element.id)
       (Document.elements doc))

let test_document_insert () =
  let doc = Document.of_string "ac" in
  let b = Helpers.elt 'b' in
  Alcotest.(check string)
    "middle" "abc"
    (Document.to_string (Document.insert doc ~pos:1 b));
  Alcotest.(check string)
    "head" "bac"
    (Document.to_string (Document.insert doc ~pos:0 b));
  Alcotest.(check string)
    "tail" "acb"
    (Document.to_string (Document.insert doc ~pos:2 b));
  Alcotest.(check bool)
    "out of bounds" true
    (try
       ignore (Document.insert doc ~pos:3 b);
       false
     with Invalid_argument _ -> true)

let test_document_delete () =
  let doc = Document.of_string "abc" in
  let deleted, rest = Document.delete doc ~pos:1 in
  Alcotest.(check char) "deleted element" 'b' deleted.Element.value;
  Alcotest.(check string) "rest" "ac" (Document.to_string rest);
  Alcotest.(check bool)
    "out of bounds" true
    (try
       ignore (Document.delete doc ~pos:3);
       false
     with Invalid_argument _ -> true)

let test_document_lookup () =
  let doc = Document.of_string "abc" in
  let b = Document.nth doc 1 in
  Alcotest.(check char) "nth" 'b' b.Element.value;
  Alcotest.(check (option int)) "index_of" (Some 1) (Document.index_of doc b);
  Alcotest.(check bool) "mem" true (Document.mem doc b);
  Alcotest.(check bool)
    "mem foreign" false
    (Document.mem doc (Helpers.elt 'b'))

let test_document_compatible () =
  (* Compatibility (Definition 8.2) compares relative orders of common
     elements only. *)
  let a = Helpers.elt ~client:1 ~seq:1 'a' in
  let b = Helpers.elt ~client:1 ~seq:2 'b' in
  let c = Helpers.elt ~client:1 ~seq:3 'c' in
  let doc l = Document.of_elements l in
  Alcotest.(check bool)
    "disjoint docs compatible" true
    (Document.compatible (doc [ a ]) (doc [ b ]));
  Alcotest.(check bool)
    "same order compatible" true
    (Document.compatible (doc [ a; b; c ]) (doc [ a; c ]));
  Alcotest.(check bool)
    "opposite order incompatible" false
    (Document.compatible (doc [ a; b ]) (doc [ b; a ]));
  Alcotest.(check bool)
    "interleaved common pair" false
    (Document.compatible (doc [ a; c; b ]) (doc [ b; c ]));
  Alcotest.(check bool)
    "empty compatible with all" true
    (Document.compatible Document.empty (doc [ a; b ]))

let test_document_order_pairs () =
  let doc = Document.of_string "abc" in
  let pairs = Document.order_pairs doc in
  Alcotest.(check int) "n(n-1)/2 pairs" 3 (List.length pairs);
  let values = List.map (fun (x, y) -> x.Element.value, y.Element.value) pairs in
  Alcotest.(check bool) "a before b" true (List.mem ('a', 'b') values);
  Alcotest.(check bool) "a before c" true (List.mem ('a', 'c') values);
  Alcotest.(check bool) "b before c" true (List.mem ('b', 'c') values)

let test_document_duplicates () =
  let a = Helpers.elt 'a' in
  Alcotest.(check bool)
    "duplicate detected" true
    (Document.has_duplicates (Document.of_elements [ a; a ]));
  Alcotest.(check bool)
    "no duplicates" false
    (Document.has_duplicates (Document.of_string "aa"))

let test_intent_validity () =
  Alcotest.(check bool)
    "insert at end ok" true
    (Intent.valid_for ~doc_length:3 (Intent.Insert ('x', 3)));
  Alcotest.(check bool)
    "insert past end" false
    (Intent.valid_for ~doc_length:3 (Intent.Insert ('x', 4)));
  Alcotest.(check bool)
    "delete at end" false
    (Intent.valid_for ~doc_length:3 (Intent.Delete 3));
  Alcotest.(check bool)
    "delete in range" true
    (Intent.valid_for ~doc_length:3 (Intent.Delete 2));
  Alcotest.(check bool)
    "read always" true
    (Intent.valid_for ~doc_length:0 Intent.Read);
  Alcotest.(check bool)
    "negative position" false
    (Intent.valid_for ~doc_length:3 (Intent.Insert ('x', -1)))

let prop_insert_delete_inverse =
  Helpers.qtest "insert then delete is identity"
    QCheck2.Gen.(pair Helpers.gen_document (int_range 0 20))
    (fun (doc, pos_seed) ->
      let pos = pos_seed mod (Document.length doc + 1) in
      let e = Helpers.elt ~client:8 ~seq:99 'z' in
      let doc' = Document.insert doc ~pos e in
      let deleted, doc'' = Document.delete doc' ~pos in
      Element.equal deleted e && Document.equal doc doc'')

let prop_compatible_reflexive =
  Helpers.qtest "compatibility is reflexive" Helpers.gen_document (fun doc ->
      Document.compatible doc doc)

let prop_compatible_symmetric =
  Helpers.qtest "compatibility is symmetric"
    QCheck2.Gen.(pair Helpers.gen_document Helpers.gen_document)
    (fun (d1, d2) ->
      Bool.equal (Document.compatible d1 d2) (Document.compatible d2 d1))

let () =
  Alcotest.run "model"
    [
      ( "replica_id",
        [
          Alcotest.test_case "ordering" `Quick test_replica_id_order;
          Alcotest.test_case "printing and accessors" `Quick test_replica_id_pp;
        ] );
      ( "op_id",
        [
          Alcotest.test_case "construction" `Quick test_op_id_make;
          Alcotest.test_case "initial ids" `Quick test_op_id_initial;
          Alcotest.test_case "ordering" `Quick test_op_id_order;
          Alcotest.test_case "canonical sets" `Quick test_op_id_set_canonical;
          Alcotest.test_case "hash table" `Quick test_op_id_table;
        ] );
      ( "element",
        [
          Alcotest.test_case "identity" `Quick test_element_identity;
          Alcotest.test_case "priority" `Quick test_element_priority;
        ] );
      ( "document",
        [
          Alcotest.test_case "roundtrip" `Quick test_document_roundtrip;
          Alcotest.test_case "insert" `Quick test_document_insert;
          Alcotest.test_case "delete" `Quick test_document_delete;
          Alcotest.test_case "lookup" `Quick test_document_lookup;
          Alcotest.test_case "compatibility" `Quick test_document_compatible;
          Alcotest.test_case "order pairs" `Quick test_document_order_pairs;
          Alcotest.test_case "duplicates" `Quick test_document_duplicates;
          prop_insert_delete_inverse;
          prop_compatible_reflexive;
          prop_compatible_symmetric;
        ] );
      ( "intent",
        [ Alcotest.test_case "validity" `Quick test_intent_validity ] );
    ]
