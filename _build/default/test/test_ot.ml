(* Unit and property tests for the operational-transformation layer:
   operation application, the transformation functions, CP1
   (Definition 4.4), and contexts. *)

open Rlist_model
open Rlist_ot

let apply_str op s = Document.to_string (Op.apply op (Document.of_string s))

let test_apply_ins () =
  Alcotest.(check string) "middle" "axbc" (apply_str (Helpers.ins 'x' 1) "abc");
  Alcotest.(check string) "head" "xabc" (apply_str (Helpers.ins 'x' 0) "abc");
  Alcotest.(check string) "tail" "abcx" (apply_str (Helpers.ins 'x' 3) "abc")

let test_apply_del () =
  let doc = Document.of_string "abc" in
  let b = Document.nth doc 1 in
  Alcotest.(check string)
    "delete b" "ac"
    (Document.to_string (Op.apply (Helpers.del b 1) doc))

let test_apply_del_wrong_element () =
  (* Deleting with a stale position must fail loudly: it means an
     operation escaped its context. *)
  let doc = Document.of_string "abc" in
  let b = Document.nth doc 1 in
  Alcotest.(check bool)
    "wrong position rejected" true
    (try
       ignore (Op.apply (Helpers.del b 2) doc);
       false
     with Invalid_argument _ -> true)

let test_apply_nop () =
  let doc = Document.of_string "abc" in
  Alcotest.check Helpers.document "nop" doc
    (Op.apply (Op.nop ~id:(Op_id.make ~client:1 ~seq:1)) doc)

let test_accessors () =
  let i = Helpers.ins 'x' 2 in
  Alcotest.(check bool) "is_ins" true (Op.is_ins i);
  Alcotest.(check bool) "not del" false (Op.is_del i);
  Alcotest.(check (option int)) "position" (Some 2) (Op.position i);
  let n = Op.nop ~id:(Op_id.make ~client:1 ~seq:1) in
  Alcotest.(check bool) "is_nop" true (Op.is_nop n);
  Alcotest.(check (option int)) "nop position" None (Op.position n);
  Alcotest.(check bool) "nop element" true (Op.element n = None)

(* --- Transformation cases ------------------------------------------- *)

let test_xform_ins_ins () =
  let o1 = Helpers.ins ~client:1 'x' 1 in
  let o2 = Helpers.ins ~client:2 'y' 3 in
  Alcotest.check Helpers.op "before: unchanged" o1 (Transform.xform o1 o2);
  Alcotest.check Helpers.op "after: shifted"
    (Helpers.ins ~client:2 'y' 4)
    (Transform.xform o2 o1)

let test_xform_ins_ins_tie () =
  (* Same position: the higher-priority element (larger client) stays,
     the other shifts — ending with the higher-priority element on the
     left (cf. Figure 7: final list "ba" with b from client 3). *)
  let low = Helpers.ins ~client:1 'x' 2 in
  let high = Helpers.ins ~client:2 'y' 2 in
  Alcotest.check Helpers.op "low shifts"
    (Helpers.ins ~client:1 'x' 3)
    (Transform.xform low high);
  Alcotest.check Helpers.op "high stays" high (Transform.xform high low)

let test_xform_ins_del () =
  let doc = Document.of_string "abcde" in
  let d = Helpers.del (Document.nth doc 1) 1 in
  Alcotest.check Helpers.op "insert before deletion: unchanged"
    (Helpers.ins 'x' 1)
    (Transform.xform (Helpers.ins 'x' 1) d);
  Alcotest.check Helpers.op "insert at deletion point: unchanged"
    (Helpers.ins 'x' 1)
    (Transform.xform (Helpers.ins 'x' 1) d);
  Alcotest.check Helpers.op "insert after deletion: shifted left"
    (Helpers.ins 'x' 2)
    (Transform.xform (Helpers.ins 'x' 3) d)

let test_xform_del_ins () =
  let doc = Document.of_string "abcde" in
  let del_c = Helpers.del (Document.nth doc 2) 2 in
  Alcotest.check Helpers.op "delete before insert: unchanged" del_c
    (Transform.xform del_c (Helpers.ins ~client:2 'x' 4));
  Alcotest.check Helpers.op "delete at insert point: shifted"
    (Helpers.del (Document.nth doc 2) 3)
    (Transform.xform del_c (Helpers.ins ~client:2 'x' 2));
  Alcotest.check Helpers.op "delete after insert: shifted"
    (Helpers.del (Document.nth doc 2) 3)
    (Transform.xform del_c (Helpers.ins ~client:2 'x' 0))

let test_xform_del_del () =
  let doc = Document.of_string "abcde" in
  let del_at p = Helpers.del ~client:1 (Document.nth doc p) p in
  let del2_at p = Helpers.del ~client:2 ~seq:7 (Document.nth doc p) p in
  Alcotest.check Helpers.op "before: unchanged" (del_at 1)
    (Transform.xform (del_at 1) (del2_at 3));
  Alcotest.check Helpers.op "after: shifted left"
    (Helpers.del ~client:1 (Document.nth doc 3) 2)
    (Transform.xform (del_at 3) (del2_at 1));
  Alcotest.(check bool)
    "same element cancels to Nop" true
    (Op.is_nop (Transform.xform (del_at 2) (del2_at 2)))

let test_xform_nop () =
  let o = Helpers.ins 'x' 1 in
  let n = Op.nop ~id:(Op_id.make ~client:2 ~seq:1) in
  Alcotest.check Helpers.op "against nop: unchanged" o (Transform.xform o n);
  Alcotest.(check bool) "nop stays nop" true (Op.is_nop (Transform.xform n o))

let test_figure1_transform () =
  (* The paper's Example 4.2: OT(Ins(f,1), Del(e,5)) =
     (Ins(f,1), Del(e,6)). *)
  let doc = Document.of_string "efecte" in
  let o1 = Helpers.ins ~client:1 'f' 1 in
  let o2 = Helpers.del ~client:2 (Document.nth doc 5) 5 in
  let o1', o2' = Transform.xform_pair o1 o2 in
  Alcotest.check Helpers.op "o1 unchanged" o1 o1';
  Alcotest.(check (option int)) "o2 shifted to 6" (Some 6) (Op.position o2');
  Alcotest.(check string)
    "both orders give \"effect\"" "effect"
    (Document.to_string (Op.apply o2' (Op.apply o1 doc)));
  Alcotest.(check string)
    "other order too" "effect"
    (Document.to_string (Op.apply o1' (Op.apply o2 doc)))

let test_xform_seq () =
  (* Transforming against a sequence folds left and also returns the
     sequence transformed against the operation. *)
  let doc = Document.of_string "abc" in
  let o = Helpers.ins ~client:1 'x' 0 in
  let l = [ Helpers.ins ~client:2 'y' 0; Helpers.ins ~client:3 ~seq:2 'z' 0 ] in
  let o', l' = Transform.xform_seq o l in
  Alcotest.(check int) "sequence length preserved" 2 (List.length l');
  (* Executing doc;l;o' must equal doc;o;l' element-wise. *)
  let via_l = Op.apply o' (List.fold_left (fun d x -> Op.apply x d) doc l) in
  let via_o = List.fold_left (fun d x -> Op.apply x d) (Op.apply o doc) l' in
  Alcotest.check Helpers.document "CP1 extended to sequences" via_l via_o

let test_check_cp1_example () =
  let doc = Document.of_string "efecte" in
  let o1 = Helpers.ins ~client:1 'f' 1 in
  let o2 = Helpers.del ~client:2 (Document.nth doc 5) 5 in
  Alcotest.(check bool) "cp1 holds" true (Transform.check_cp1 doc o1 o2)

let test_no_priority_breaks_cp1 () =
  (* Two inserts at the same position: without the priority tie-break
     the two execution orders give different lists. *)
  let doc = Document.of_string "ac" in
  let o1 = Helpers.ins ~client:1 'x' 1 in
  let o2 = Helpers.ins ~client:2 'y' 1 in
  let o1' = Transform.xform_no_priority o1 o2 in
  let o2' = Transform.xform_no_priority o2 o1 in
  let left = Document.to_string (Op.apply o2' (Op.apply o1 doc)) in
  let right = Document.to_string (Op.apply o1' (Op.apply o2 doc)) in
  Alcotest.(check bool) "orders diverge" false (String.equal left right)

let prop_cp1 =
  Helpers.qtest ~count:2000 "CP1 on random same-context pairs"
    Helpers.gen_cp1_instance (fun (doc, o1, o2) ->
      Transform.check_cp1 doc o1 o2)

let prop_cp1_exhaustive =
  (* All pairs of operations on a fixed 3-element document: complete
     coverage of the case analysis including every boundary. *)
  Alcotest.test_case "CP1 exhaustively on a small document" `Quick (fun () ->
      let doc = Document.of_string "abc" in
      let ops_for client =
        List.concat
          [
            List.init 4 (fun p ->
                let id = Op_id.make ~client ~seq:1 in
                Op.make_ins ~id (Element.make ~value:'x' ~id) p);
            List.init 3 (fun p ->
                Op.make_del
                  ~id:(Op_id.make ~client ~seq:1)
                  (Document.nth doc p) p);
          ]
      in
      List.iter
        (fun o1 ->
          List.iter
            (fun o2 ->
              if not (Transform.check_cp1 doc o1 o2) then
                Alcotest.failf "CP1 fails for %a / %a" Op.pp o1 Op.pp o2)
            (ops_for 2))
        (ops_for 1))

let prop_xform_preserves_kind =
  (* OTs preserve the type of operations (or degrade deletes to Nop) —
     the fact footnote 10 and Lemma 8.6 rely on. *)
  Helpers.qtest "transformation preserves operation kind"
    Helpers.gen_cp1_instance (fun (_, o1, o2) ->
      let o1' = Transform.xform o1 o2 in
      (Op.is_ins o1 && Op.is_ins o1')
      || (Op.is_del o1 && (Op.is_del o1' || Op.is_nop o1')))

let prop_xform_preserves_element =
  Helpers.qtest "transformation preserves the element"
    Helpers.gen_cp1_instance (fun (_, o1, o2) ->
      let o1' = Transform.xform o1 o2 in
      Op.is_nop o1'
      ||
      match Op.element o1, Op.element o1' with
      | Some e, Some e' -> Element.equal e e'
      | _ -> false)

(* --- CP2 -------------------------------------------------------------- *)

(* The "dOPT puzzle": an insertion and a deletion at the same position
   plus a third insertion one to the right.  Transforming o3 against
   o1 then o2{o1} gives a different operation than against o2 then
   o1{o2}. *)
let cp2_witness () =
  let doc = Document.of_string "abcd" in
  let o1 = Helpers.ins ~client:1 'x' 0 in
  let o2 = Helpers.del ~client:2 (Document.nth doc 0) 0 in
  let o3 = Helpers.ins ~client:3 'z' 1 in
  doc, o1, o2, o3

let test_cp2_violated () =
  let _, o1, o2, o3 = cp2_witness () in
  (* CP1 holds pairwise... *)
  let doc, _, _, _ = cp2_witness () in
  Alcotest.(check bool) "cp1 o1/o2" true (Transform.check_cp1 doc o1 o2);
  Alcotest.(check bool) "cp1 o1/o3" true (Transform.check_cp1 doc o1 o3);
  Alcotest.(check bool) "cp1 o2/o3" true (Transform.check_cp1 doc o2 o3);
  (* ...but CP2 does not: the transformation order matters. *)
  Alcotest.(check bool) "cp2 violated" false (Transform.check_cp2 o1 o2 o3)

let test_cp2_witness_converges_under_jupiter () =
  (* The whole point of Jupiter's total order: even though CP2 fails
     for these three operations, every replica transforms along the
     same (serialization-ordered) leftmost paths, so the system still
     converges and satisfies the weak specification. *)
  let module E = Helpers.Css_run.E in
  let t = E.create ~initial:(Document.of_string "abcd") ~nclients:3 () in
  E.run t
    [
      Generate (1, Intent.Insert ('x', 0));
      Generate (2, Intent.Delete 0);
      Generate (3, Intent.Insert ('z', 1));
    ];
  ignore (E.quiesce t);
  E.run t (Rlist_sim.Schedule.final_reads ~nclients:3);
  Alcotest.(check bool) "converged despite CP2" true (E.converged t);
  Helpers.check_satisfied "weak" (Rlist_spec.Weak_spec.check (E.trace t))

let prop_cp2_violations_exist =
  (* CP2 violations are not rare corner cases: a modest random search
     over same-context triples must find some. *)
  Alcotest.test_case "CP2 violations are abundant" `Quick (fun () ->
      let rng = Random.State.make [| 2026 |] in
      let doc = Document.of_string "abcdef" in
      let random_op client =
        let len = Document.length doc in
        if Random.State.bool rng then
          let id = Op_id.make ~client ~seq:1 in
          Op.make_ins ~id
            (Element.make ~value:'q' ~id)
            (Random.State.int rng (len + 1))
        else
          let p = Random.State.int rng len in
          Op.make_del ~id:(Op_id.make ~client ~seq:1) (Document.nth doc p) p
      in
      let violations = ref 0 in
      for _ = 1 to 500 do
        if
          not
            (Transform.check_cp2 (random_op 1) (random_op 2) (random_op 3))
        then incr violations
      done;
      Alcotest.(check bool)
        (Printf.sprintf "found %d violations in 500 triples" !violations)
        true (!violations > 0))

(* --- Contexts -------------------------------------------------------- *)

let test_context_basics () =
  let o = Helpers.ins 'x' 0 in
  let ctx = Context.extend Context.empty o in
  Alcotest.(check bool) "mem after extend" true (Context.mem ctx o);
  Alcotest.(check bool) "empty subset" true (Context.subset Context.empty ctx);
  Alcotest.(check bool) "not reverse" false (Context.subset ctx Context.empty)

let test_context_self_rejected () =
  let o = Helpers.ins 'x' 0 in
  let ctx = Context.extend Context.empty o in
  Alcotest.(check bool)
    "operation inside its own context rejected" true
    (try
       ignore (Context.with_context o ~ctx);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "ot"
    [
      ( "apply",
        [
          Alcotest.test_case "insert" `Quick test_apply_ins;
          Alcotest.test_case "delete" `Quick test_apply_del;
          Alcotest.test_case "delete checks element" `Quick
            test_apply_del_wrong_element;
          Alcotest.test_case "nop" `Quick test_apply_nop;
          Alcotest.test_case "accessors" `Quick test_accessors;
        ] );
      ( "xform",
        [
          Alcotest.test_case "ins/ins" `Quick test_xform_ins_ins;
          Alcotest.test_case "ins/ins tie-break" `Quick test_xform_ins_ins_tie;
          Alcotest.test_case "ins/del" `Quick test_xform_ins_del;
          Alcotest.test_case "del/ins" `Quick test_xform_del_ins;
          Alcotest.test_case "del/del" `Quick test_xform_del_del;
          Alcotest.test_case "nop cases" `Quick test_xform_nop;
          Alcotest.test_case "paper Figure 1 / Example 4.2" `Quick
            test_figure1_transform;
          Alcotest.test_case "sequence transform" `Quick test_xform_seq;
          Alcotest.test_case "check_cp1 on the paper example" `Quick
            test_check_cp1_example;
          Alcotest.test_case "no-priority variant breaks CP1" `Quick
            test_no_priority_breaks_cp1;
          prop_cp1;
          prop_cp1_exhaustive;
          prop_xform_preserves_kind;
          prop_xform_preserves_element;
        ] );
      ( "cp2",
        [
          Alcotest.test_case "the dOPT puzzle violates CP2" `Quick
            test_cp2_violated;
          Alcotest.test_case "Jupiter converges on the CP2 witness" `Quick
            test_cp2_witness_converges_under_jupiter;
          prop_cp2_violations_exist;
        ] );
      ( "context",
        [
          Alcotest.test_case "extend and membership" `Quick test_context_basics;
          Alcotest.test_case "self-context rejected" `Quick
            test_context_self_rejected;
        ] );
    ]
