(* Tests for the simulation substrate: schedules, the engine (FIFO
   channels, trace/behaviour recording, quiescence), determinism of the
   random driver, and the canonical figure schedules. *)

open Rlist_model
module E = Helpers.Css_run.E

let test_schedule_validate () =
  Alcotest.(check bool)
    "valid" true
    (Result.is_ok
       (Rlist_sim.Schedule.validate ~nclients:2
          [ Generate (1, Intent.Read); Deliver_to_server 2 ]));
  Alcotest.(check bool)
    "client out of range" true
    (Result.is_error
       (Rlist_sim.Schedule.validate ~nclients:2 [ Deliver_to_client 3 ]))

let test_schedule_update_count () =
  let s : Rlist_sim.Schedule.t =
    [
      Generate (1, Intent.Insert ('a', 0));
      Generate (1, Intent.Read);
      Generate (2, Intent.Delete 0);
      Deliver_to_server 1;
    ]
  in
  Alcotest.(check int) "reads don't count" 2
    (Rlist_sim.Schedule.update_count s)

let test_final_reads () =
  Alcotest.(check int)
    "one read per client" 3
    (List.length (Rlist_sim.Schedule.final_reads ~nclients:3))

let test_engine_bounds () =
  let t = E.create ~nclients:2 () in
  Alcotest.(check bool)
    "deliver from empty client channel rejected" true
    (try
       E.apply_event t (Deliver_to_server 1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "deliver to client with empty queue rejected" true
    (try
       E.apply_event t (Deliver_to_client 1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "unknown client rejected" true
    (try
       E.apply_event t (Generate (5, Intent.Read));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "out-of-bounds intent rejected" true
    (try
       E.apply_event t (Generate (1, Intent.Delete 0));
       false
     with Invalid_argument _ -> true)

let test_engine_fifo () =
  (* Two updates from the same client must reach the server in order;
     a reordering would make the second op's context unknown, which the
     CSS protocol rejects loudly.  Here we simply observe that in-order
     delivery works and produces the expected document. *)
  let t = E.create ~nclients:1 () in
  E.run t
    [
      Generate (1, Intent.Insert ('a', 0));
      Generate (1, Intent.Insert ('b', 1));
      Deliver_to_server 1;
      Deliver_to_server 1;
    ];
  Alcotest.(check string)
    "server in order" "ab"
    (Document.to_string (E.server_document t))

let test_engine_pending_and_quiesce () =
  let t = E.create ~nclients:2 () in
  E.run t [ Generate (1, Intent.Insert ('a', 0)) ];
  Alcotest.(check int) "one pending" 1 (E.pending_messages t);
  let delivered = E.quiesce t in
  Alcotest.(check int) "no pending after quiesce" 0 (E.pending_messages t);
  (* 1 client->server delivery plus a broadcast to both clients. *)
  Alcotest.(check int) "deliveries performed" 3 (List.length delivered);
  Alcotest.(check bool) "converged" true (E.converged t)

let test_engine_behavior_recorded () =
  let t = E.create ~nclients:2 () in
  E.run t [ Generate (1, Intent.Insert ('a', 0)) ];
  ignore (E.quiesce t);
  let behavior = E.behavior t in
  Alcotest.(check int) "one entry per event" 4 (List.length behavior);
  match behavior with
  | (Replica_id.Client 1, doc) :: _ ->
    Alcotest.(check string) "first entry is c1's do" "a"
      (Document.to_string doc)
  | _ -> Alcotest.fail "unexpected behaviour head"

let test_engine_trace_eids () =
  let t = E.create ~nclients:2 () in
  E.run t
    [
      Generate (1, Intent.Insert ('a', 0));
      Generate (2, Intent.Read);
      Generate (1, Intent.Insert ('b', 1));
    ];
  let trace = E.trace t in
  (match Rlist_spec.Trace.validate trace with
  | Ok () -> ()
  | Error e -> Alcotest.failf "trace invalid: %s" e);
  Alcotest.(check int) "three do events" 3
    (List.length (Rlist_spec.Trace.events trace))

let test_run_random_deterministic () =
  let t1, s1 = Helpers.Css_run.random 42 in
  let t2, s2 = Helpers.Css_run.random 42 in
  Alcotest.(check int)
    "same schedule length" (List.length s1) (List.length s2);
  Alcotest.(check bool)
    "same events" true
    (List.for_all2 (fun a b -> a = b) s1 s2);
  Alcotest.check Helpers.document "same final document"
    (E.server_document t1) (E.server_document t2)

let test_run_random_quiesces () =
  let t, schedule = Helpers.Css_run.random 7 in
  Alcotest.(check int) "no pending messages" 0 (E.pending_messages t);
  Alcotest.(check bool) "converged" true (E.converged t);
  Alcotest.(check int)
    "requested number of updates"
    Rlist_sim.Schedule.default_params.updates
    (Rlist_sim.Schedule.update_count schedule)

let test_run_random_replayable () =
  (* The concrete schedule returned by run_random must replay to the
     same behaviour on a fresh engine. *)
  let t1, schedule = Helpers.Css_run.random 11 in
  let t2 = E.create ~nclients:4 () in
  E.run t2 schedule;
  let b1 = E.behavior t1 and b2 = E.behavior t2 in
  Alcotest.(check int) "same behaviour length" (List.length b1)
    (List.length b2);
  Alcotest.(check bool)
    "same behaviour" true
    (List.for_all2
       (fun (r1, d1) (r2, d2) -> Replica_id.equal r1 r2 && Document.equal d1 d2)
       b1 b2)

let test_schedule_text_roundtrip () =
  let _, schedule = Helpers.Css_run.random 21 in
  let text =
    Rlist_sim.Schedule_text.to_string ~nclients:4 schedule
  in
  match Rlist_sim.Schedule_text.of_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok file ->
    Alcotest.(check int) "clients" 4 file.nclients;
    Alcotest.(check int)
      "same length" (List.length schedule)
      (List.length file.events);
    Alcotest.(check bool)
      "same events" true
      (List.for_all2 (fun a b -> a = b) schedule file.events);
    (* and the replay produces the same behaviour *)
    let t1 = E.create ~nclients:4 () in
    E.run t1 schedule;
    let t2 = E.create ~initial:file.initial ~nclients:file.nclients () in
    E.run t2 file.events;
    Alcotest.check Helpers.document "same final document"
      (E.server_document t1) (E.server_document t2)

let test_schedule_text_initial () =
  let text =
    Rlist_sim.Schedule_text.to_string ~initial:(Document.of_string "abc")
      ~nclients:2
      [ Generate (1, Intent.Delete 1) ]
  in
  match Rlist_sim.Schedule_text.of_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok file ->
    Alcotest.(check string)
      "initial survives" "abc"
      (Document.to_string file.initial)

let test_schedule_text_errors () =
  let check_error what text =
    match Rlist_sim.Schedule_text.of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: expected a parse error" what
  in
  check_error "missing clients" "gen 1 read\n";
  check_error "bad directive" "clients 2\nfrobnicate\n";
  check_error "bad position" "clients 2\ngen 1 ins x y\n";
  check_error "client out of range" "clients 2\ngen 3 read\n";
  check_error "bad client count" "clients zero\n"

(* --- timed driver ----------------------------------------------------- *)

let timed_params =
  { Rlist_sim.Schedule.default_timed_params with t_updates = 25 }

let test_run_timed_basics () =
  let t = E.create ~nclients:3 () in
  let rng = Random.State.make [| 31 |] in
  let schedule = E.run_timed t ~rng ~params:timed_params in
  Alcotest.(check int) "quiesced" 0 (E.pending_messages t);
  Alcotest.(check bool) "converged" true (E.converged t);
  Alcotest.(check int)
    "update count honoured" timed_params.t_updates
    (Rlist_sim.Schedule.update_count schedule);
  match Rlist_spec.Trace.validate (E.trace t) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "trace invalid: %s" e

let test_run_timed_deterministic_and_replayable () =
  let run () =
    let t = E.create ~nclients:3 () in
    let rng = Random.State.make [| 77 |] in
    let schedule = E.run_timed t ~rng ~params:timed_params in
    t, schedule
  in
  let t1, s1 = run () in
  let t2, s2 = run () in
  Alcotest.(check bool)
    "deterministic" true
    (List.length s1 = List.length s2 && List.for_all2 (fun a b -> a = b) s1 s2);
  Alcotest.check Helpers.document "same document" (E.server_document t1)
    (E.server_document t2);
  (* the realized schedule replays on CSCW with identical behaviour *)
  let cscw = Helpers.Cscw_run.E.create ~nclients:3 () in
  Helpers.Cscw_run.E.run cscw s1;
  Alcotest.check Helpers.doc_string "CSCW agrees under the timed schedule"
    (E.server_document t1)
    (Helpers.Cscw_run.E.server_document cscw)

let test_run_timed_fifo_preserved () =
  (* Two rapid updates from one client must reach the server in
     generation order even when the second draws a smaller latency:
     the protocol would reject the out-of-order context loudly, so a
     clean converged run is the proof. *)
  let t = E.create ~nclients:2 () in
  let rng = Random.State.make [| 5 |] in
  let params =
    {
      Rlist_sim.Schedule.default_timed_params with
      t_updates = 40;
      t_mean_latency = 300.0;
      t_think_time = 1.0;  (* bursts of sends per client *)
    }
  in
  ignore (E.run_timed t ~rng ~params);
  Alcotest.(check bool) "converged under bursty sends" true (E.converged t)

let test_run_timed_high_latency () =
  (* Latency much larger than think time: heavy concurrency, still
     convergent and weak-spec compliant. *)
  let t = E.create ~nclients:4 () in
  let rng = Random.State.make [| 99 |] in
  let params =
    {
      Rlist_sim.Schedule.default_timed_params with
      t_updates = 30;
      t_mean_latency = 500.0;
      t_think_time = 10.0;
    }
  in
  ignore (E.run_timed t ~rng ~params);
  Alcotest.(check bool) "converged" true (E.converged t);
  Helpers.check_satisfied "weak" (Rlist_spec.Weak_spec.check (E.trace t))

let test_figures_validate () =
  List.iter
    (fun (s : Rlist_sim.Figures.scenario) ->
      match Rlist_sim.Schedule.validate ~nclients:s.nclients s.schedule with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: invalid schedule: %s" s.sname e)
    Rlist_sim.Figures.all

let test_figures_runnable () =
  (* Every figure schedule must run to quiescence under the CSS
     protocol (figure 8 runs too — only its *naive* interpretation
     diverges). *)
  List.iter
    (fun (s : Rlist_sim.Figures.scenario) ->
      let t = Helpers.Css_run.scenario s in
      Alcotest.(check int)
        (s.sname ^ " leaves no pending messages")
        0 (E.pending_messages t))
    Rlist_sim.Figures.all

let test_figures_find () =
  Alcotest.(check bool)
    "find figure7" true
    (Rlist_sim.Figures.find "figure7" <> None);
  Alcotest.(check bool)
    "find unknown" true
    (Rlist_sim.Figures.find "figure99" = None)

let () =
  Alcotest.run "sim"
    [
      ( "schedule",
        [
          Alcotest.test_case "validate" `Quick test_schedule_validate;
          Alcotest.test_case "update_count" `Quick test_schedule_update_count;
          Alcotest.test_case "final_reads" `Quick test_final_reads;
        ] );
      ( "engine",
        [
          Alcotest.test_case "bounds checking" `Quick test_engine_bounds;
          Alcotest.test_case "FIFO channels" `Quick test_engine_fifo;
          Alcotest.test_case "pending and quiesce" `Quick
            test_engine_pending_and_quiesce;
          Alcotest.test_case "behaviour recording" `Quick
            test_engine_behavior_recorded;
          Alcotest.test_case "trace recording" `Quick test_engine_trace_eids;
        ] );
      ( "random driver",
        [
          Alcotest.test_case "deterministic" `Quick
            test_run_random_deterministic;
          Alcotest.test_case "quiesces and counts" `Quick
            test_run_random_quiesces;
          Alcotest.test_case "replayable" `Quick test_run_random_replayable;
        ] );
      ( "timed driver",
        [
          Alcotest.test_case "basics" `Quick test_run_timed_basics;
          Alcotest.test_case "deterministic and replayable" `Quick
            test_run_timed_deterministic_and_replayable;
          Alcotest.test_case "high latency" `Quick test_run_timed_high_latency;
          Alcotest.test_case "bursty sends stay FIFO" `Quick
            test_run_timed_fifo_preserved;
        ] );
      ( "schedule text",
        [
          Alcotest.test_case "round trip" `Quick test_schedule_text_roundtrip;
          Alcotest.test_case "initial document" `Quick
            test_schedule_text_initial;
          Alcotest.test_case "parse errors" `Quick test_schedule_text_errors;
        ] );
      ( "figures",
        [
          Alcotest.test_case "schedules validate" `Quick test_figures_validate;
          Alcotest.test_case "schedules run" `Quick test_figures_runnable;
          Alcotest.test_case "lookup" `Quick test_figures_find;
        ] );
    ]
