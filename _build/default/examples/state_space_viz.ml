(* Visualize n-ary ordered state-spaces for the paper's figures.

   Prints an ASCII rendering and emits Graphviz DOT files (one per
   scenario) to the current directory; render them with e.g.
     dot -Tpng figure4.dot -o figure4.png

   Also demonstrates Proposition 6.6: after quiescence the server and
   every client hold the *same* state-space, each having walked a
   different path through it.

   Run with: dune exec examples/state_space_viz.exe [-- scenario] *)

open Rlist_model
module Engine = Rlist_sim.Engine.Make (Jupiter_css.Protocol)

let render (scenario : Rlist_sim.Figures.scenario) =
  Printf.printf "=== %s ===\n%s\n\n" scenario.sname scenario.description;
  let t = Engine.create ~initial:scenario.initial ~nclients:scenario.nclients () in
  Engine.run t scenario.schedule;
  let space = Jupiter_css.Protocol.server_space (Engine.server t) in
  Printf.printf "states: %d, transitions: %d\n"
    (Jupiter_css.State_space.num_states space)
    (Jupiter_css.State_space.num_transitions space);

  (* Proposition 6.6: one compact space, shared by all replicas. *)
  let all_equal =
    List.for_all
      (fun i ->
        Jupiter_css.State_space.equal space
          (Jupiter_css.Protocol.client_space (Engine.client t i)))
      (List.init scenario.nclients (fun i -> i + 1))
  in
  Printf.printf "all %d replica state-spaces equal (Prop 6.6): %b\n"
    (scenario.nclients + 1) all_equal;

  print_endline "";
  print_string (Jupiter_css.Render.to_ascii space ~initial:scenario.initial);

  (* Each replica's behaviour is a path through the shared space. *)
  Printf.printf "\nconstruction paths (Example 6.3):\n";
  Printf.printf "server: %s\n"
    (String.concat " -> "
       (List.map
          (fun s -> "{" ^ String.concat "," (List.map Op_id.to_string (Op_id.Set.canonical s)) ^ "}")
          (Jupiter_css.Protocol.server_path (Engine.server t))));
  List.iter
    (fun i ->
      Printf.printf "c%d:     %s\n" i
        (String.concat " -> "
           (List.map
              (fun s ->
                "{"
                ^ String.concat ","
                    (List.map Op_id.to_string (Op_id.Set.canonical s))
                ^ "}")
              (Jupiter_css.Protocol.client_path (Engine.client t i)))))
    (List.init scenario.nclients (fun i -> i + 1));

  (* Emit DOT for offline rendering. *)
  let dot =
    Jupiter_css.Render.to_dot space ~initial:scenario.initial
      ~name:scenario.sname
  in
  let path = scenario.sname ^ ".dot" in
  let oc = open_out path in
  output_string oc dot;
  close_out oc;
  Printf.printf "\nwrote %s\n\n" path

let () =
  let scenarios =
    if Array.length Sys.argv > 1 then
      match Rlist_sim.Figures.find Sys.argv.(1) with
      | Some s -> [ s ]
      | None ->
        Printf.eprintf "unknown scenario %S; rendering the CSS figures\n"
          Sys.argv.(1);
        []
    else []
  in
  let scenarios =
    match scenarios with
    | [] ->
      (* Figure 8 is the broken protocol's scenario — not a CSS space. *)
      List.filter
        (fun (s : Rlist_sim.Figures.scenario) -> s.sname <> "figure8")
        Rlist_sim.Figures.all
    | l -> l
  in
  List.iter render scenarios
