examples/protocol_zoo.ml: Array Jupiter_cscw Jupiter_css Jupiter_logoot Jupiter_rga Jupiter_treedoc Jupiter_ttf List Printf Random Rlist_sim Rlist_spec Rlist_workload Sys
