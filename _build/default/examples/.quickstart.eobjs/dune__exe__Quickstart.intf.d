examples/quickstart.mli:
