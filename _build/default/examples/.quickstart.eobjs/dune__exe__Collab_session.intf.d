examples/collab_session.mli:
