examples/long_session.ml: Array Char Document Intent Jupiter_css List Printf Rlist_model Rlist_sim Sys
