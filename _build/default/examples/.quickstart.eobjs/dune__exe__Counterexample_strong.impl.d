examples/counterexample_strong.ml: Document Format Jupiter_css Jupiter_rga List Printf Rlist_model Rlist_sim Rlist_spec
