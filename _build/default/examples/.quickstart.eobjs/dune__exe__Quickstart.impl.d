examples/quickstart.ml: Document Format Intent Jupiter_css Printf Rlist_model Rlist_sim Rlist_spec
