examples/long_session.mli:
