examples/state_space_viz.mli:
