examples/protocol_zoo.mli:
