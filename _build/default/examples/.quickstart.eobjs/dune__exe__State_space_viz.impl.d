examples/state_space_viz.ml: Array Jupiter_css List Op_id Printf Rlist_model Rlist_sim String Sys
