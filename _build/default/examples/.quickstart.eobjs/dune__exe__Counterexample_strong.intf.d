examples/counterexample_strong.mli:
