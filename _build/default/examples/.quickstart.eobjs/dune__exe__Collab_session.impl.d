examples/collab_session.ml: Array Document Jupiter_cscw Jupiter_css Jupiter_rga List Printf Random Replica_id Rlist_model Rlist_sim Rlist_spec Rlist_workload Sys
