(* Theorem 8.1, live: Jupiter does not satisfy the strong list
   specification.

   This example replays the paper's Figure 7 scenario step by step:

     1. client 1 inserts x; everyone receives it;
     2. concurrently, client 1 deletes x, client 2 inserts a before x
        (seeing "ax"), and client 3 inserts b after x (seeing "xb");
     3. everything synchronizes; all replicas converge to "ba".

   A strong list order would need (a,x) from client 2's view, (x,b)
   from client 3's view, and (b,a) from the final list — a cycle.  The
   weak specification, which drops ordering constraints through
   deleted elements, is satisfied.  RGA, run on the same schedule,
   satisfies even the strong specification.

   Run with: dune exec examples/counterexample_strong.exe *)

open Rlist_model
module Css = Rlist_sim.Engine.Make (Jupiter_css.Protocol)
module Rga = Rlist_sim.Engine.Make (Jupiter_rga.Protocol)

let () =
  print_endline "=== Figure 7: Jupiter violates the strong list spec ===";
  let scenario = Rlist_sim.Figures.figure7 in
  let t = Css.create ~nclients:scenario.nclients () in
  Css.run t scenario.schedule;

  (* Walk the do events and narrate them. *)
  let trace = Css.trace t in
  List.iter
    (fun e ->
      Format.printf "  %a@." Rlist_spec.Event.pp e)
    (Rlist_spec.Trace.events trace);

  Printf.printf "all replicas converged to %S\n"
    (Document.to_string (Css.server_document t));

  Format.printf "convergence: %a@." Rlist_spec.Check.pp
    (Rlist_spec.Convergence.check trace);
  Format.printf "weak spec:   %a@." Rlist_spec.Check.pp
    (Rlist_spec.Weak_spec.check trace);
  Format.printf "strong spec: %a@." Rlist_spec.Check.pp
    (Rlist_spec.Strong_spec.check trace);

  print_endline "";
  print_endline "the n-ary ordered state-space behind it (Figure 7b):";
  print_string
    (Jupiter_css.Render.to_ascii
       (Jupiter_css.Protocol.server_space (Css.server t))
       ~initial:scenario.initial);

  print_endline "";
  print_endline "=== the same schedule under RGA (satisfies strong) ===";
  let r = Rga.create ~nclients:scenario.nclients () in
  Rga.run r scenario.schedule;
  Printf.printf "RGA converged to %S\n"
    (Document.to_string (Rga.server_document r));
  Format.printf "strong spec: %a@." Rlist_spec.Check.pp
    (Rlist_spec.Strong_spec.check (Rga.trace r))
