(* The protocol zoo: every replicated-list implementation in the
   repository on one contended workload, side by side.

   For each protocol: what coordination it relies on, what it costs
   (transformations performed, metadata retained), and which of the
   paper's specifications its trace satisfies.  The broken dOPT foil
   runs last and fails as designed.

   Run with: dune exec examples/protocol_zoo.exe [-- updates [seed]] *)


let nreplicas = 3

type row = {
  r_name : string;
  r_coordination : string;
  r_ots : int;
  r_metadata : int;
  r_converged : bool;
  r_weak : bool;
  r_strong : bool;
}

let verdicts trace =
  ( Rlist_spec.Check.is_satisfied (Rlist_spec.Convergence.check trace),
    Rlist_spec.Check.is_satisfied (Rlist_spec.Weak_spec.check trace),
    Rlist_spec.Check.is_satisfied (Rlist_spec.Strong_spec.check trace) )

(* Client/server protocols run through the star engine... *)
let star (type c s c2s s2c)
    (module P : Rlist_sim.Protocol_intf.PROTOCOL
      with type client = c
       and type server = s
       and type c2s = c2s
       and type s2c = s2c) ~coordination ~updates ~seed =
  let module E = Rlist_sim.Engine.Make (P) in
  let t = E.create ~nclients:nreplicas () in
  let rng = Random.State.make [| seed |] in
  let intent =
    Rlist_workload.Workload.intent_generator Rlist_workload.Workload.Hotspot
      ~nclients:nreplicas ~rng
  in
  let params = Rlist_workload.Workload.params Rlist_workload.Workload.Hotspot ~updates in
  ignore (E.run_random ~intent t ~rng ~params);
  let _, weak, strong = verdicts (E.trace t) in
  {
    r_name = P.name;
    r_coordination = coordination;
    r_ots = E.total_ot_count t;
    r_metadata = E.total_metadata_size t;
    r_converged = E.converged t;
    r_weak = weak;
    r_strong = strong;
  }

(* ...and serverless ones through the peer-to-peer engine. *)
let p2p (module P : Rlist_sim.P2p_protocol_intf.P2P_PROTOCOL)
    ~coordination ~updates ~seed =
  let module E = Rlist_sim.P2p_engine.Make (P) in
  let t = E.create ~npeers:nreplicas () in
  let rng = Random.State.make [| seed |] in
  let intent =
    Rlist_workload.Workload.intent_generator Rlist_workload.Workload.Hotspot
      ~nclients:nreplicas ~rng
  in
  let params =
    Rlist_workload.Workload.params Rlist_workload.Workload.Hotspot ~updates
  in
  ignore (E.run_random ~intent t ~rng ~params);
  let _, weak, strong = verdicts (E.trace t) in
  {
    r_name = P.name;
    r_coordination = coordination;
    r_ots = E.total_ot_count t;
    r_metadata = E.total_metadata_size t;
    r_converged = E.converged t;
    r_weak = weak;
    r_strong = strong;
  }

let () =
  let updates =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 60
  in
  let seed = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 3 in
  Printf.printf
    "=== Protocol zoo: hotspot workload, %d updates, %d replicas, seed %d \
     ===\n\n"
    updates nreplicas seed;
  let rows =
    [
      star (module Jupiter_css.Protocol) ~coordination:"server total order"
        ~updates ~seed;
      star (module Jupiter_cscw.Protocol) ~coordination:"server total order"
        ~updates ~seed;
      star (module Jupiter_css.Pruned_protocol)
        ~coordination:"total order + acks" ~updates ~seed;
      star (module Jupiter_css.Sequencer_protocol)
        ~coordination:"stateless sequencer" ~updates ~seed;
      p2p (module Jupiter_css.Distributed_protocol)
        ~coordination:"lamport + stability" ~updates ~seed;
      p2p (module Jupiter_ttf.Adopted_protocol) ~coordination:"causal only"
        ~updates ~seed;
      star (module Jupiter_rga.Protocol) ~coordination:"causal relay" ~updates
        ~seed;
      star (module Jupiter_logoot.Protocol) ~coordination:"causal relay"
        ~updates ~seed;
      star (module Jupiter_treedoc.Protocol) ~coordination:"causal relay"
        ~updates ~seed;
      (* The foil either diverges or crashes on a stale operation —
         both are the designed demonstration of incorrectness. *)
      (try
         star (module Jupiter_cscw.Naive_p2p) ~coordination:"(broken) none"
           ~updates ~seed
       with Invalid_argument _ ->
         {
           r_name = "naive-dopt";
           r_coordination = "(broken) none";
           r_ots = 0;
           r_metadata = 0;
           r_converged = false;
           r_weak = false;
           r_strong = false;
         });
    ]
  in
  Printf.printf "%-14s %-20s %9s %9s %10s %5s %7s\n" "protocol" "coordination"
    "OTs" "metadata" "converged" "weak" "strong";
  List.iter
    (fun r ->
      Printf.printf "%-14s %-20s %9d %9d %10b %5s %7s\n" r.r_name
        r.r_coordination r.r_ots r.r_metadata r.r_converged
        (if r.r_weak then "yes" else "NO")
        (if r.r_strong then "yes" else "NO"))
    rows;
  print_newline ();
  print_endline
    "reading guide: the Jupiter variants guarantee weak (strong fails under \
     contention, Thm 8.1); the CRDTs and the TTF protocol guarantee strong; \
     the naive dOPT foil guarantees neither (it diverges or crashes on a \
     stale operation)."
