(* A long-running editing session, addressing the paper's closing
   question about metadata overhead.

   Three protocol variants process the same unbounded stream of edits
   (batches of concurrent typing followed by synchronization):

   - plain CSS: the compact state-space grows with the entire history;
   - CSS with acknowledgement-driven pruning: the space is repeatedly
     rebased onto the stable prefix and stays small;
   - sequencer CSS: same client behaviour, but the center holds
     nothing at all.

   Run with: dune exec examples/long_session.exe [-- rounds] *)

open Rlist_model
module Css = Rlist_sim.Engine.Make (Jupiter_css.Protocol)
module Pruned = Rlist_sim.Engine.Make (Jupiter_css.Pruned_protocol)
module Seq = Rlist_sim.Engine.Make (Jupiter_css.Sequencer_protocol)

let nclients = 3

(* One round: every client types two characters concurrently, then the
   system synchronizes. *)
let round_events round : Rlist_sim.Schedule.t =
  let c = Char.chr (Char.code 'a' + (round mod 26)) in
  List.concat_map
    (fun i ->
      [
        Rlist_sim.Schedule.Generate (i, Intent.Insert (c, 0));
        Rlist_sim.Schedule.Generate (i, Intent.Insert (c, 1));
      ])
    [ 1; 2; 3 ]

let () =
  let rounds =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 40
  in
  Printf.printf
    "=== Long session: %d rounds x %d clients x 2 edits, synchronizing \
     between rounds ===\n"
    rounds nclients;
  let css = Css.create ~nclients () in
  let pruned = Pruned.create ~nclients () in
  let seq = Seq.create ~nclients () in
  for round = 0 to rounds - 1 do
    let events = round_events round in
    Css.run css events;
    ignore (Css.quiesce css);
    Pruned.run pruned events;
    ignore (Pruned.quiesce pruned);
    Seq.run seq events;
    ignore (Seq.quiesce seq);
    if (round + 1) mod 10 = 0 then
      Printf.printf
        "  after %3d rounds: css space=%6d cells | pruned space=%4d cells \
         (pruned to serial %d) | sequencer center=%d cells\n"
        (round + 1)
        (Css.server_metadata_size css)
        (Pruned.server_metadata_size pruned)
        (Jupiter_css.Pruned_protocol.server_pruned_to (Pruned.server pruned))
        (Seq.server_metadata_size seq)
  done;
  let doc = Css.server_document css in
  Printf.printf "\nall variants converged to the same %d-character document: %b\n"
    (Document.length doc)
    (Document.equal doc (Pruned.server_document pruned)
    && Document.equal doc (Seq.client_document seq 1));
  assert (Css.converged css && Pruned.converged pruned && Seq.converged seq)
