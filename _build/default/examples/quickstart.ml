(* Quickstart: two users concurrently edit the document "efecte" — the
   motivating scenario of the paper's Figure 1.

   User 1 fixes the typo by inserting 'f' at position 1 while,
   concurrently, user 2 deletes the trailing 'e' at position 5.
   Without transformation the replicas diverge; the CSS Jupiter
   protocol transforms the deletion to position 6 and both replicas
   converge to "effect".

   Run with: dune exec examples/quickstart.exe *)

open Rlist_model
module Engine = Rlist_sim.Engine.Make (Jupiter_css.Protocol)

let show engine label =
  Printf.printf "%-28s server=%-8S c1=%-8S c2=%-8S\n" label
    (Document.to_string (Engine.server_document engine))
    (Document.to_string (Engine.client_document engine 1))
    (Document.to_string (Engine.client_document engine 2))

let () =
  print_endline "=== Quickstart: the Figure 1 scenario ===";
  let engine =
    Engine.create ~initial:(Document.of_string "efecte") ~nclients:2 ()
  in
  show engine "initially:";

  (* Both users edit at the same time, before any message flows. *)
  Engine.run engine
    [
      Generate (1, Intent.Insert ('f', 1));  (* o1 = Ins(f, 1) *)
      Generate (2, Intent.Delete 5);  (* o2 = Del(e, 5) *)
    ];
  show engine "after local edits:";

  (* The server serializes o1 then o2 and broadcasts. *)
  ignore (Engine.quiesce engine);
  show engine "after synchronization:";

  assert (Engine.converged engine);
  assert (Document.to_string (Engine.server_document engine) = "effect");
  print_endline "converged: true (o2 was transformed to Del(e, 6))";

  (* The trace satisfies the paper's specifications. *)
  Engine.run engine (Rlist_sim.Schedule.final_reads ~nclients:2);
  let trace = Engine.trace engine in
  Format.printf "convergence property: %a@." Rlist_spec.Check.pp
    (Rlist_spec.Convergence.check trace);
  Format.printf "weak list spec:       %a@." Rlist_spec.Check.pp
    (Rlist_spec.Weak_spec.check trace)
