(* A small wrapper around bechamel: run each test, OLS-fit the
   monotonic clock against the run count, and print one line per test.
   Plain-text output so the harness works in pipes and CI logs. *)

open Bechamel
open Toolkit

let ns_per_run results name =
  match Hashtbl.find_opt results name with
  | None -> nan
  | Some ols -> (
    match Analyze.OLS.estimates ols with
    | Some (est :: _) -> est
    | Some [] | None -> nan)

let pretty_ns ns =
  if Float.is_nan ns then "n/a"
  else if ns < 1e3 then Printf.sprintf "%8.1f ns" ns
  else if ns < 1e6 then Printf.sprintf "%8.2f us" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
  else Printf.sprintf "%8.2f s " (ns /. 1e9)

(* [run tests] benchmarks the given bechamel tests and prints
   "name: time/run" lines, returning the raw estimates. *)
let run ?(quota = 0.5) tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"bench" tests in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols (Instance.monotonic_clock) raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) ->
        Printf.printf "  %-42s %s/op\n" name (pretty_ns est)
      | Some [] | None -> Printf.printf "  %-42s (no estimate)\n" name)
    results;
  ignore ns_per_run;
  results
