bench/experiments.ml: Document Jupiter_cscw Jupiter_css Jupiter_logoot Jupiter_rga Jupiter_ttf List Printf Random Replica_id Rlist_model Rlist_sim Rlist_spec Rlist_workload Sys
