bench/main.ml: Array Bechamel Document Element Experiments Harness Jupiter_cscw Jupiter_css Jupiter_rga Printf Random Rlist_model Rlist_ot Rlist_sim Rlist_spec Staged Sys Test
