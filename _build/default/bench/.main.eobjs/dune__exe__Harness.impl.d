bench/harness.ml: Analyze Bechamel Benchmark Float Hashtbl Instance Measure Printf Test Time Toolkit
