bench/main.mli:
