(** The Logoot replicated list: elements keyed by {!Position}
    identifiers, kept sorted; deletion actually removes (no
    tombstones), which is Logoot's advantage over TreeDoc/RGA in the
    paper's related-work taxonomy (Section 9). *)

open Rlist_model

type t

val create : rng:Random.State.t -> site:int -> initial:Document.t -> t

val document : t -> Document.t

(** Live node count — Logoot's whole metadata footprint. *)
val size : t -> int

(** [allocate t ~pos] creates a fresh position for an insertion at
    visible position [pos] (between the current neighbours). *)
val allocate : t -> pos:int -> Position.t

(** [insert t ~elt ~at] integrates a (local or remote) insertion.
    @raise Invalid_argument if the position is already occupied. *)
val insert : t -> elt:Element.t -> at:Position.t -> unit

(** [delete t ~target] removes the element; concurrent duplicate
    deletions are ignored (the element is already gone). *)
val delete : t -> target:Op_id.t -> unit

(** Position of an element, while it is present. *)
val position_of : t -> Op_id.t -> Position.t option
