lib/logoot/position.mli: Format Random
