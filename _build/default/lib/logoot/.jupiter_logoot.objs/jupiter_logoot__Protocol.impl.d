lib/logoot/protocol.ml: Element List Logoot_list Op_id Position Random Rlist_model Rlist_ot Rlist_sim Rlist_spec
