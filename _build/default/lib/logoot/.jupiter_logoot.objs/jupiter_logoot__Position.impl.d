lib/logoot/position.ml: Format Int Random
