lib/logoot/logoot_list.ml: Document Element Format List Op_id Position Printf Random Rlist_model
