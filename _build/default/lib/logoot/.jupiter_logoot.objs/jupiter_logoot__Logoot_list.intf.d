lib/logoot/logoot_list.mli: Document Element Op_id Position Random Rlist_model
