lib/logoot/protocol.mli: Element Op_id Position Rlist_model Rlist_sim
