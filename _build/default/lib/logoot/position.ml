type level = {
  digit : int;
  site : int;
  clock : int;
}

type t = level list

let base = 64

let compare_level a b =
  match Int.compare a.digit b.digit with
  | 0 -> (
    match Int.compare a.site b.site with
    | 0 -> Int.compare a.clock b.clock
    | c -> c)
  | c -> c

(* Lexicographic; a strict prefix is strictly smaller. *)
let rec compare p q =
  match p, q with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | a :: p', b :: q' -> (
    match compare_level a b with
    | 0 -> compare p' q'
    | c -> c)

let equal p q = compare p q = 0

let head = [ { digit = 0; site = min_int; clock = 0 } ]

let tail = [ { digit = base; site = max_int; clock = 0 } ]

(* Allocation.  The recursion walks the two bounds level by level:

   - a digit gap > 1 lets us finish with a fresh digit strictly in
     between (never 0, never base — so no identifier ever *ends* with
     an extreme digit);
   - a digit gap of exactly 1 descends on the low side (copying the
     low bound's level, or emitting a fresh 0-digit level when the low
     bound is exhausted — safe because the digit is still strictly
     below the high bound's);
   - equal digits either descend both bounds (identical levels),
     descend the low side (the low level is smaller by site/clock), or
     descend the high side when the low bound is exhausted (0-digit
     levels never terminate an identifier, so the high bound always
     continues). *)
let between ~rng ~site ~clock lo hi =
  if compare lo hi >= 0 then
    invalid_arg "Position.between: bounds are not ordered";
  let strip fence p = if equal p fence then [] else p in
  let lo = strip head lo and hi = strip tail hi in
  let fresh digit = { digit; site; clock } in
  let pick dl dh =
    (* a digit strictly between dl and dh *)
    dl + 1 + Random.State.int rng (dh - dl - 1)
  in
  let rec go lo hi =
    let dl =
      match lo with
      | [] -> 0
      | l :: _ -> l.digit
    in
    let dh =
      match hi with
      | [] -> base
      | h :: _ -> h.digit
    in
    if dh - dl > 1 then [ fresh (pick dl dh) ]
    else if dh - dl = 1 then
      (* adjacent digits: descend on the low side *)
      match lo with
      | l :: lo_rest -> l :: go lo_rest []
      | [] -> fresh 0 :: go [] []
    else begin
      (* equal digits *)
      match lo, hi with
      | l :: lo_rest, h :: hi_rest ->
        if compare_level l h = 0 then l :: go lo_rest hi_rest
        else begin
          (* l < h by site/clock: anything below l keeps us below h *)
          assert (compare_level l h < 0);
          l :: go lo_rest []
        end
      | [], h :: hi_rest ->
        (* dl is the virtual 0 and h.digit = 0: we cannot place our own
           site at this level, so follow the high bound down.  Internal
           0-digit levels never end an identifier, so hi_rest is
           non-empty. *)
        assert (hi_rest <> []);
        h :: go [] hi_rest
      | _ :: _, [] | [], [] ->
        (* dl = dh with hi exhausted would mean dl = base *)
        assert false
    end
  in
  let result = go lo hi in
  assert (compare (if lo = [] then head else lo) result < 0);
  assert (compare result (if hi = [] then tail else hi) < 0);
  result

let pp ppf p =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf '.')
       (fun ppf l -> Format.fprintf ppf "%d:%d:%d" l.digit l.site l.clock))
    p
