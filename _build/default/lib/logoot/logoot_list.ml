open Rlist_model

type entry = {
  at : Position.t;
  elt : Element.t;
}

type t = {
  mutable entries : entry list;  (* sorted by position *)
  rng : Random.State.t;
  site : int;
  mutable clock : int;
}

let create ~rng ~site ~initial =
  (* Seed the initial document with evenly spaced site-0 positions. *)
  let elements = Document.elements initial in
  let entries =
    List.mapi
      (fun i elt ->
        {
          at = [ { Position.digit = i + 1; site = 0; clock = 0 } ];
          elt;
        })
      elements
  in
  if List.length entries >= Position.base - 1 then
    invalid_arg "Logoot_list.create: initial document too large to seed";
  { entries; rng; site; clock = 0 }

let document t = Document.of_elements (List.map (fun e -> e.elt) t.entries)

let size t = List.length t.entries

let bounds t ~pos =
  let n = List.length t.entries in
  if pos < 0 || pos > n then
    invalid_arg (Printf.sprintf "Logoot_list: position %d out of bounds" pos);
  let lo = if pos = 0 then Position.head else (List.nth t.entries (pos - 1)).at
  and hi = if pos = n then Position.tail else (List.nth t.entries pos).at in
  lo, hi

let allocate t ~pos =
  let lo, hi = bounds t ~pos in
  t.clock <- t.clock + 1;
  Position.between ~rng:t.rng ~site:t.site ~clock:t.clock lo hi

let insert t ~elt ~at =
  let rec place = function
    | [] -> [ { at; elt } ]
    | entry :: rest as all ->
      let c = Position.compare at entry.at in
      if c < 0 then { at; elt } :: all
      else if c = 0 then
        invalid_arg
          (Format.asprintf "Logoot_list.insert: position %a already occupied"
             Position.pp at)
      else entry :: place rest
  in
  t.entries <- place t.entries

let delete t ~target =
  t.entries <-
    List.filter (fun e -> not (Op_id.equal e.elt.Element.id target)) t.entries

let position_of t id =
  List.find_map
    (fun e -> if Op_id.equal e.elt.Element.id id then Some e.at else None)
    t.entries
