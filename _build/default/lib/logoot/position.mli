(** Logoot position identifiers (Weiss, Urso, Molli 2009) — the
    tombstone-free CRDT approach the paper's related work contrasts
    with RGA and TreeDoc (Section 9).

    A position is a non-empty path of levels, each a triple
    [(digit, site, clock)]; positions are compared lexicographically.
    Between any two positions another can always be allocated by
    choosing an intermediate digit or descending a level, and the
    [(site, clock)] components make concurrently allocated positions
    distinct, so replicas sorting elements by position converge
    without coordination. *)

type level = {
  digit : int;  (** In [\[1, base - 1\]] for allocated levels. *)
  site : int;  (** Allocating client. *)
  clock : int;  (** Per-client allocation counter. *)
}

type t = level list

(** The digit space per level. *)
val base : int

val compare : t -> t -> int

val equal : t -> t -> bool

(** Virtual fences: [head] is smaller and [tail] larger than every
    allocatable position. *)
val head : t

val tail : t

(** [between ~rng ~site ~clock lo hi] allocates a fresh position
    strictly between [lo] and [hi].
    @raise Invalid_argument if [lo >= hi]. *)
val between :
  rng:Random.State.t -> site:int -> clock:int -> t -> t -> t

val pp : Format.formatter -> t -> unit
