(** Logoot as a client/server protocol for the simulation engine: the
    server is a pure relay (CRDT — no transformation, no
    serialization logic beyond FIFO fan-out), and the originator gets
    an acknowledgement to keep schedules aligned with the other
    protocols.

    Like RGA, Logoot satisfies the {e strong} list specification: the
    position order is a total order over all elements, fixed at
    insertion time, and every returned list is sorted by it. *)

open Rlist_model

type logoot_op =
  | Lins of {
      elt : Element.t;
      at : Position.t;
    }
  | Ldel of {
      id : Op_id.t;  (** The delete operation's own identity. *)
      target : Op_id.t;
    }

val op_id : logoot_op -> Op_id.t

type c2s = { lop : logoot_op }

type s2c =
  | Forward of logoot_op
  | Ack

include
  Rlist_sim.Protocol_intf.PROTOCOL with type c2s := c2s and type s2c := s2c
