(** Schedules: the temporal skeleton of an execution.

    A schedule (paper, Definition 4.7) fixes when each user operation
    is generated and when each message is delivered, independent of
    replica behaviour.  Two protocols run under the same schedule can
    then be compared event by event — the setting of the equivalence
    theorem (Theorem 7.1). *)

open Rlist_model

type event =
  | Generate of int * Intent.t
      (** [Generate (i, intent)]: client [i] performs a user intent. *)
  | Deliver_to_server of int
      (** Deliver the oldest pending message from client [i]'s channel
          to the server. *)
  | Deliver_to_client of int
      (** Deliver the oldest pending server message to client [i]. *)

type t = event list

val pp_event : Format.formatter -> event -> unit

val pp : Format.formatter -> t -> unit

(** Number of [Generate] events carrying updates (inserts/deletes). *)
val update_count : t -> int

(** [final_reads ~nclients] appends one [Read] per client — handy for
    giving the specification checkers read events at quiescence. *)
val final_reads : nclients:int -> t

(** Statically checkable sanity: client numbers within range.  (Queue
    emptiness and position validity are only checkable at run time.) *)
val validate : nclients:int -> t -> (unit, string) result

(** Parameters for random schedule generation (see
    [Engine.Make.run_random]). *)
type random_params = {
  updates : int;  (** Total update intents to generate. *)
  read_fraction : float;  (** Chance that a generated intent is a read. *)
  delete_fraction : float;  (** Chance that an update is a deletion
                                (when the document is non-empty). *)
  deliver_bias : float;  (** Chance of delivering a pending message
                             rather than generating, when both are
                             possible.  Low values produce highly
                             concurrent executions. *)
}

val default_params : random_params

(** Parameters for the timed (latency-model) driver
    ([Engine.Make.run_timed]): clients generate operations at
    exponentially distributed intervals and every message incurs an
    exponentially distributed network latency, delivered in virtual-time
    order but FIFO per channel (TCP-like). *)
type timed_params = {
  t_updates : int;  (** Total update intents to generate. *)
  t_read_fraction : float;
  t_delete_fraction : float;
  t_mean_latency : float;  (** Mean one-way message latency. *)
  t_think_time : float;  (** Mean gap between a client's operations. *)
}

val default_timed_params : timed_params
