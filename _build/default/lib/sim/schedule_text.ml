open Rlist_model

type file = {
  nclients : int;
  initial : Document.t;
  events : Schedule.t;
}

let printable c = c > ' ' && c < '\x7f'

let event_to_string = function
  | Schedule.Generate (i, Intent.Insert (c, p)) ->
    if not (printable c) then
      invalid_arg "Schedule_text: unprintable character in insert";
    Printf.sprintf "gen %d ins %c %d" i c p
  | Schedule.Generate (i, Intent.Delete p) -> Printf.sprintf "gen %d del %d" i p
  | Schedule.Generate (i, Intent.Read) -> Printf.sprintf "gen %d read" i
  | Schedule.Deliver_to_server i -> Printf.sprintf "c2s %d" i
  | Schedule.Deliver_to_client i -> Printf.sprintf "s2c %d" i

let to_string ?(initial = Document.empty) ~nclients events =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "# jupiter schedule\n";
  Buffer.add_string buffer (Printf.sprintf "clients %d\n" nclients);
  if not (Document.is_empty initial) then begin
    let s = Document.to_string initial in
    String.iter
      (fun c ->
        if not (printable c) then
          invalid_arg "Schedule_text: unprintable initial document")
      s;
    Buffer.add_string buffer (Printf.sprintf "initial %s\n" s)
  end;
  List.iter
    (fun ev ->
      Buffer.add_string buffer (event_to_string ev);
      Buffer.add_char buffer '\n')
    events;
  Buffer.contents buffer

let of_string text =
  let exception Bad of string in
  let fail lineno fmt =
    Format.kasprintf (fun s -> raise (Bad (Printf.sprintf "line %d: %s" lineno s))) fmt
  in
  try
    let nclients = ref None in
    let initial = ref Document.empty in
    let events = ref [] in
    let lines = String.split_on_char '\n' text in
    List.iteri
      (fun idx line ->
        let lineno = idx + 1 in
        let line = String.trim line in
        if line = "" || line.[0] = '#' then ()
        else
          match String.split_on_char ' ' line with
          | [ "clients"; n ] -> (
            match int_of_string_opt n with
            | Some n when n >= 1 -> nclients := Some n
            | _ -> fail lineno "bad client count %S" n)
          | [ "initial"; s ] -> initial := Document.of_string s
          | [ "gen"; i; "ins"; c; p ] -> (
            match int_of_string_opt i, int_of_string_opt p with
            | Some i, Some p when String.length c = 1 ->
              events :=
                Schedule.Generate (i, Intent.Insert (c.[0], p)) :: !events
            | _ -> fail lineno "bad insert %S" line)
          | [ "gen"; i; "del"; p ] -> (
            match int_of_string_opt i, int_of_string_opt p with
            | Some i, Some p ->
              events := Schedule.Generate (i, Intent.Delete p) :: !events
            | _ -> fail lineno "bad delete %S" line)
          | [ "gen"; i; "read" ] -> (
            match int_of_string_opt i with
            | Some i -> events := Schedule.Generate (i, Intent.Read) :: !events
            | None -> fail lineno "bad read %S" line)
          | [ "c2s"; i ] -> (
            match int_of_string_opt i with
            | Some i -> events := Schedule.Deliver_to_server i :: !events
            | None -> fail lineno "bad delivery %S" line)
          | [ "s2c"; i ] -> (
            match int_of_string_opt i with
            | Some i -> events := Schedule.Deliver_to_client i :: !events
            | None -> fail lineno "bad delivery %S" line)
          | _ -> fail lineno "unrecognized directive %S" line)
      lines;
    match !nclients with
    | None -> Error "missing 'clients' directive"
    | Some nclients ->
      let events = List.rev !events in
      (match Schedule.validate ~nclients events with
      | Ok () -> Ok { nclients; initial = !initial; events }
      | Error e -> Error e)
  with Bad msg -> Error msg

let save ~path ?initial ~nclients events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?initial ~nclients events))

let load ~path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let n = in_channel_length ic in
        of_string (really_input_string ic n))
