lib/sim/p2p_engine.ml: Array Char Document Format Intent List P2p_protocol_intf Printf Protocol_intf Queue Random Replica_id Rlist_model Rlist_spec Schedule
