lib/sim/figures.ml: Document Intent List Rlist_model Schedule
