lib/sim/p2p_engine.mli: Document Format Intent P2p_protocol_intf Random Rlist_model Rlist_spec Schedule
