lib/sim/intent_resolver.ml: Document Element Format Intent Op_id Protocol_intf Rlist_model Rlist_ot Rlist_spec
