lib/sim/p2p_protocol_intf.ml: Document Intent Op_id Protocol_intf Rlist_model
