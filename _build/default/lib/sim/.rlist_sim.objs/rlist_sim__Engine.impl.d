lib/sim/engine.ml: Array Char Document Float Intent List Printf Protocol_intf Queue Random Replica_id Rlist_model Rlist_spec Schedule
