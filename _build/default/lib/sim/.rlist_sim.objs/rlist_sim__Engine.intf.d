lib/sim/engine.mli: Document Intent Protocol_intf Random Replica_id Rlist_model Rlist_spec Schedule
