lib/sim/figures.mli: Document Rlist_model Schedule
