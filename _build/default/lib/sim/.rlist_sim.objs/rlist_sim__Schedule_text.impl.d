lib/sim/schedule_text.ml: Buffer Document Format Fun Intent List Printf Rlist_model Schedule String
