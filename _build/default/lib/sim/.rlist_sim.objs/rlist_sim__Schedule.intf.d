lib/sim/schedule.mli: Format Intent Rlist_model
