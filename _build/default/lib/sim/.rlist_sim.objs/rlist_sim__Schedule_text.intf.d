lib/sim/schedule_text.mli: Document Rlist_model Schedule
