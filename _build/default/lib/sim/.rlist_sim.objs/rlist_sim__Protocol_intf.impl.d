lib/sim/protocol_intf.ml: Document Intent Op_id Rlist_model Rlist_spec
