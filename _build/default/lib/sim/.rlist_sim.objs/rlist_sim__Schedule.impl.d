lib/sim/schedule.ml: Format Intent List Printf Rlist_model
