lib/sim/intent_resolver.mli: Document Intent Protocol_intf Rlist_model Rlist_ot
