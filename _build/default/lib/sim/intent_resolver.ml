open Rlist_model

type resolution = {
  outcome : Protocol_intf.do_outcome;
  op : Rlist_ot.Op.t option;
}

let resolve ~client ~seq ~doc intent =
  let doc_length = Document.length doc in
  if not (Intent.valid_for ~doc_length intent) then
    invalid_arg
      (Format.asprintf "client %d: intent %a out of bounds (length %d)" client
         Intent.pp intent doc_length);
  match intent with
  | Intent.Read ->
    {
      outcome = { Protocol_intf.op = Rlist_spec.Event.Do_read; op_id = None };
      op = None;
    }
  | Intent.Insert (value, pos) ->
    let id = Op_id.make ~client ~seq in
    let elt = Element.make ~value ~id in
    {
      outcome =
        {
          Protocol_intf.op = Rlist_spec.Event.Do_ins (elt, pos);
          op_id = Some id;
        };
      op = Some (Rlist_ot.Op.make_ins ~id elt pos);
    }
  | Intent.Delete pos ->
    let elt = Document.nth doc pos in
    let id = Op_id.make ~client ~seq in
    {
      outcome =
        {
          Protocol_intf.op = Rlist_spec.Event.Do_del (elt, pos);
          op_id = Some id;
        };
      op = Some (Rlist_ot.Op.make_del ~id elt pos);
    }
