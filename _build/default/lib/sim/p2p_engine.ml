open Rlist_model

type event =
  | Generate of int * Intent.t
  | Deliver of int * int

let pp_event ppf = function
  | Generate (i, intent) -> Format.fprintf ppf "p%d: %a" i Intent.pp intent
  | Deliver (src, dst) -> Format.fprintf ppf "deliver p%d->p%d" src dst

module Make (P : P2p_protocol_intf.P2P_PROTOCOL) = struct
  type t = {
    npeers : int;
    peers : P.peer array;  (* 1-based *)
    channels : (int * P.message) Queue.t array array;  (* channels.(src).(dst) *)
    mutable events : Rlist_spec.Event.t list;  (* reversed *)
    mutable next_eid : int;
    initial : Document.t;
  }

  let create ?(initial = Document.empty) ~npeers () =
    if npeers < 2 then invalid_arg "P2p_engine.create: need at least two peers";
    {
      npeers;
      peers =
        Array.init (npeers + 1) (fun i ->
            P.create_peer ~npeers ~id:(max i 1) ~initial);
      channels =
        Array.init (npeers + 1) (fun _ ->
            Array.init (npeers + 1) (fun _ -> Queue.create ()));
      events = [];
      next_eid = 0;
      initial;
    }

  let npeers t = t.npeers

  let check_peer t i =
    if i < 1 || i > t.npeers then
      invalid_arg (Printf.sprintf "P2p_engine: peer %d out of range" i)

  let broadcast t ~from message =
    for dst = 1 to t.npeers do
      if dst <> from then Queue.push (from, message) t.channels.(from).(dst)
    done

  let record_do t i (outcome : Protocol_intf.do_outcome) =
    let peer = t.peers.(i) in
    let event =
      Rlist_spec.Event.make ~eid:t.next_eid ~replica:(Replica_id.Client i)
        ~op:outcome.Protocol_intf.op ~op_id:outcome.Protocol_intf.op_id
        ~result:(P.document peer) ~visible:(P.visible peer)
    in
    t.next_eid <- t.next_eid + 1;
    t.events <- event :: t.events

  let apply_event t = function
    | Generate (i, intent) -> (
      check_peer t i;
      let outcome, message = P.generate t.peers.(i) intent in
      record_do t i outcome;
      match message with
      | None -> ()
      | Some m -> broadcast t ~from:i m)
    | Deliver (src, dst) -> (
      check_peer t src;
      check_peer t dst;
      if Queue.is_empty t.channels.(src).(dst) then
        invalid_arg
          (Printf.sprintf "P2p_engine: channel p%d->p%d is empty" src dst);
      let from, message = Queue.pop t.channels.(src).(dst) in
      match P.receive t.peers.(dst) ~from message with
      | None -> ()
      | Some reaction -> broadcast t ~from:dst reaction)

  let run t events = List.iter (apply_event t) events

  let pending_messages t =
    let count = ref 0 in
    for src = 1 to t.npeers do
      for dst = 1 to t.npeers do
        count := !count + Queue.length t.channels.(src).(dst)
      done
    done;
    !count

  let quiesce t =
    let performed = ref [] in
    (* Round-robin until no channel holds a message; reactions keep the
       loop going. *)
    let progress = ref true in
    while !progress do
      progress := false;
      for src = 1 to t.npeers do
        for dst = 1 to t.npeers do
          while not (Queue.is_empty t.channels.(src).(dst)) do
            apply_event t (Deliver (src, dst));
            performed := Deliver (src, dst) :: !performed;
            progress := true
          done
        done
      done
    done;
    assert (pending_messages t = 0);
    List.rev !performed

  let document t i =
    check_peer t i;
    P.document t.peers.(i)

  let converged t =
    let reference = document t 1 in
    let ok = ref true in
    for i = 2 to t.npeers do
      if not (Document.equal reference (document t i)) then ok := false
    done;
    !ok

  let trace t =
    Rlist_spec.Trace.make ~initial:t.initial ~events:(List.rev t.events)

  let total_ot_count t =
    let sum = ref 0 in
    for i = 1 to t.npeers do
      sum := !sum + P.ot_count t.peers.(i)
    done;
    !sum

  let total_metadata_size t =
    let sum = ref 0 in
    for i = 1 to t.npeers do
      sum := !sum + P.metadata_size t.peers.(i)
    done;
    !sum

  let total_buffered t =
    let sum = ref 0 in
    for i = 1 to t.npeers do
      sum := !sum + P.buffered t.peers.(i)
    done;
    !sum

  let peer t i =
    check_peer t i;
    t.peers.(i)

  let random_intent t rng ~params i =
    let doc_length = Document.length (document t i) in
    if Random.State.float rng 1.0 < params.Schedule.read_fraction then
      Intent.Read
    else if
      doc_length > 0
      && Random.State.float rng 1.0 < params.Schedule.delete_fraction
    then Intent.Delete (Random.State.int rng doc_length)
    else
      let value = Char.chr (Char.code 'a' + Random.State.int rng 26) in
      Intent.Insert (value, Random.State.int rng (doc_length + 1))

  let run_random ?intent t ~rng ~params =
    let performed = ref [] in
    let step ev =
      apply_event t ev;
      performed := ev :: !performed
    in
    let deliverable () =
      let evs = ref [] in
      for src = t.npeers downto 1 do
        for dst = t.npeers downto 1 do
          if not (Queue.is_empty t.channels.(src).(dst)) then
            evs := Deliver (src, dst) :: !evs
        done
      done;
      !evs
    in
    let remaining = ref params.Schedule.updates in
    while !remaining > 0 || pending_messages t > 0 do
      let deliveries = deliverable () in
      let deliver () =
        let n = List.length deliveries in
        step (List.nth deliveries (Random.State.int rng n))
      in
      let generate () =
        let i = 1 + Random.State.int rng t.npeers in
        let chosen =
          match intent with
          | None -> random_intent t rng ~params i
          | Some choose ->
            choose ~client:i ~doc_length:(Document.length (document t i))
        in
        (match chosen with
        | Intent.Read -> ()
        | Intent.Insert _ | Intent.Delete _ -> decr remaining);
        step (Generate (i, chosen))
      in
      match deliveries, !remaining with
      | [], n when n > 0 -> generate ()
      | [], _ -> assert false
      | _ :: _, 0 -> deliver ()
      | _ :: _, _ ->
        if Random.State.float rng 1.0 < params.Schedule.deliver_bias then
          deliver ()
        else generate ()
    done;
    List.iter
      (fun i -> step (Generate (i, Intent.Read)))
      (List.init t.npeers (fun i -> i + 1));
    List.rev !performed
  [@@warning "-27"]
end
