(** The paper's worked scenarios, as explicit schedules.

    Each scenario fixes the number of clients, the initial document,
    and a complete schedule — generations, every message delivery, and
    final reads — so it can be replayed verbatim against any protocol.
    The serialization order (and hence operation numbering) follows
    the paper's figures. *)

open Rlist_model

type scenario = {
  sname : string;
  description : string;
  nclients : int;
  initial : Document.t;
  schedule : Schedule.t;
}

(** Figure 1: clients 1 and 2 edit "efecte"; [o1 = Ins(f,1)] concurrent
    with [o2 = Del(e,5)]; with OT both converge to "effect". *)
val figure1 : scenario

(** Figure 2 (driving Figure 4): three pairwise-concurrent operations,
    one per client, serialized [o1 => o2 => o3]. *)
val figure2 : scenario

(** Figure 3: [o3 || (o1 || o2) -> o4], serialized
    [o1 => o2 => o3 => o4]; client 1 receives [o3] after generating
    [o4], exercising Algorithm 1's iterated transformation with
    [L = <o1, o2, o4>]. *)
val figure3 : scenario

(** Figure 6: the CSCW paper's four-operation schedule — [o4] causally
    after [o1] only, [o3] concurrent with everything. *)
val figure6 : scenario

(** Figure 7: the counterexample showing Jupiter violates the strong
    list specification: intermediate lists "ax" (client 2) and "xb"
    (client 3) against the final "ba" force a cyclic list order. *)
val figure7 : scenario

(** Figure 8 / Example 8.1: three concurrent operations on "abc",
    relayed in the order [o3, o2, o1] — under the incorrect dOPT-style
    protocol the replicas diverge ("ayxc" vs "axyc"). *)
val figure8 : scenario

val all : scenario list

val find : string -> scenario option
