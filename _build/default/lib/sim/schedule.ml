open Rlist_model

type event =
  | Generate of int * Intent.t
  | Deliver_to_server of int
  | Deliver_to_client of int

type t = event list

let pp_event ppf = function
  | Generate (i, intent) ->
    Format.fprintf ppf "c%d: %a" i Intent.pp intent
  | Deliver_to_server i -> Format.fprintf ppf "deliver c%d->server" i
  | Deliver_to_client i -> Format.fprintf ppf "deliver server->c%d" i

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]" (Format.pp_print_list pp_event) t

let update_count t =
  List.length
    (List.filter
       (function
         | Generate (_, Intent.Read) -> false
         | Generate _ -> true
         | Deliver_to_server _ | Deliver_to_client _ -> false)
       t)

let final_reads ~nclients =
  List.init nclients (fun i -> Generate (i + 1, Intent.Read))

type random_params = {
  updates : int;
  read_fraction : float;
  delete_fraction : float;
  deliver_bias : float;
}

let default_params =
  {
    updates = 40;
    read_fraction = 0.1;
    delete_fraction = 0.3;
    deliver_bias = 0.55;
  }

type timed_params = {
  t_updates : int;
  t_read_fraction : float;
  t_delete_fraction : float;
  t_mean_latency : float;
  t_think_time : float;
}

let default_timed_params =
  {
    t_updates = 40;
    t_read_fraction = 0.05;
    t_delete_fraction = 0.3;
    t_mean_latency = 50.0;  (* "milliseconds" of virtual time *)
    t_think_time = 120.0;
  }

let validate ~nclients t =
  let in_range i = 1 <= i && i <= nclients in
  let rec go k = function
    | [] -> Ok ()
    | ( Generate (i, _)
      | Deliver_to_server i
      | Deliver_to_client i )
      :: _
      when not (in_range i) ->
      Error (Printf.sprintf "event %d refers to client %d of %d" k i nclients)
    | _ :: rest -> go (k + 1) rest
  in
  go 0 t
